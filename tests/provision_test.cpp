// Tests for the package database and the provisioning planner (§VI).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "provision/packages.hpp"
#include "provision/planner.hpp"
#include "support/error.hpp"

namespace hetero::provision {
namespace {

TEST(Packages, DatabaseCoversSectionIvD) {
  for (const char* name :
       {"lifev", "trilinos", "parmetis", "suitesparse", "blas-lapack",
        "boost", "hdf5", "openmpi", "gcc", "gfortran", "gnu-make",
        "autotools", "cmake", "cfd-app"}) {
    EXPECT_NO_THROW(package(name)) << name;
  }
  EXPECT_THROW(package("petsc"), Error);
}

TEST(Packages, DependencyOrderPutsDepsFirst) {
  const auto order = dependency_order("cfd-app");
  std::map<std::string, std::size_t> position;
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (const auto& name : order) {
    for (const auto& dep : package(name).deps) {
      EXPECT_LT(position.at(dep), position.at(name))
          << dep << " must precede " << name;
    }
  }
  EXPECT_EQ(order.back(), "cfd-app");
  // The full stack is pulled in.
  EXPECT_TRUE(position.count("trilinos"));
  EXPECT_TRUE(position.count("blas-lapack"));
}

TEST(Planner, PumaNeedsNoWork) {
  const auto plan = plan_provisioning(platform::puma());
  EXPECT_DOUBLE_EQ(plan.total_hours(), 0.0);
  EXPECT_EQ(plan.source_builds(), 0);
  for (const auto& a : plan.actions) {
    EXPECT_EQ(a.method, InstallMethod::kPreinstalled);
  }
}

TEST(Planner, EllipseTakesAboutEightManHours) {
  // §VI-B: "about 8 man-hours of work by an experienced member".
  const auto plan = plan_provisioning(platform::ellipse());
  EXPECT_GT(plan.total_hours(), 6.0);
  EXPECT_LT(plan.total_hours(), 10.0);
  EXPECT_GE(plan.source_builds(), 6);
  // MPI had to be built from source; BLAS came from the vendor (ACML).
  std::map<std::string, InstallMethod> method;
  for (const auto& a : plan.actions) {
    method[a.package] = a.method;
  }
  EXPECT_EQ(method.at("openmpi"), InstallMethod::kSourceBuild);
  EXPECT_EQ(method.at("blas-lapack"), InstallMethod::kVendorLibrary);
  EXPECT_EQ(method.at("gcc"), InstallMethod::kPreinstalled);
}

TEST(Planner, LagrangeIsLighterThanEllipse) {
  // The site provides MPI and MKL, so fewer source builds are needed.
  const auto ellipse_plan = plan_provisioning(platform::ellipse());
  const auto lagrange_plan = plan_provisioning(platform::lagrange());
  EXPECT_LT(lagrange_plan.source_builds(), ellipse_plan.source_builds());
  EXPECT_LT(lagrange_plan.total_hours(), ellipse_plan.total_hours());
  EXPECT_GT(lagrange_plan.total_hours(), 4.0);
  std::map<std::string, InstallMethod> method;
  for (const auto& a : lagrange_plan.actions) {
    method[a.package] = a.method;
  }
  EXPECT_EQ(method.at("openmpi"), InstallMethod::kPreinstalled);
  EXPECT_EQ(method.at("blas-lapack"), InstallMethod::kVendorLibrary);
}

TEST(Planner, Ec2TakesAboutADayIncludingCloudSteps) {
  // §VIII: "provisioning of a machine took about a day".
  const auto plan = plan_provisioning(platform::ec2());
  EXPECT_GT(plan.total_hours(), 8.0);
  EXPECT_LT(plan.total_hours(), 14.0);
  // Cloud-specific conditioning steps are present.
  EXPECT_EQ(plan.extra_steps.size(), 5u);
  bool security_group = false;
  bool ssh_keys = false;
  for (const auto& [step, hours] : plan.extra_steps) {
    security_group |= step.find("security group") != std::string::npos;
    ssh_keys |= step.find("ssh") != std::string::npos;
  }
  EXPECT_TRUE(security_group);
  EXPECT_TRUE(ssh_keys);
  std::map<std::string, InstallMethod> method;
  for (const auto& a : plan.actions) {
    method[a.package] = a.method;
  }
  // Root + yum covers the toolchain, but CMake 2.8 was not in the repos.
  EXPECT_EQ(method.at("gcc"), InstallMethod::kSystemPackage);
  EXPECT_EQ(method.at("openmpi"), InstallMethod::kSystemPackage);
  EXPECT_EQ(method.at("cmake"), InstallMethod::kSourceBuild);
  EXPECT_EQ(method.at("trilinos"), InstallMethod::kSourceBuild);
}

TEST(Planner, EffortOrderingMatchesTheNarrative) {
  const double puma_h = plan_provisioning(platform::puma()).total_hours();
  const double lagrange_h =
      plan_provisioning(platform::lagrange()).total_hours();
  const double ellipse_h =
      plan_provisioning(platform::ellipse()).total_hours();
  const double ec2_h = plan_provisioning(platform::ec2()).total_hours();
  EXPECT_LT(puma_h, lagrange_h);
  EXPECT_LT(lagrange_h, ellipse_h);
  EXPECT_LT(ellipse_h, ec2_h);
}

TEST(Planner, TableRendersEveryAction) {
  const auto plan = plan_provisioning(platform::ec2());
  const Table table = plan.to_table();
  EXPECT_EQ(table.rows(), plan.actions.size() + plan.extra_steps.size());
  const std::string text = table.to_text();
  EXPECT_NE(text.find("yum"), std::string::npos);
  EXPECT_NE(text.find("source build"), std::string::npos);
}

TEST(Automation, ReducesPerPlatformEffort) {
  const auto plan = plan_provisioning(platform::ellipse());
  const AutomationModel model;
  const double automated = automated_hours(plan, model);
  EXPECT_LT(automated, plan.total_hours() / 2.0);
  EXPECT_GT(automated, 0.0);
  AutomationModel bad;
  bad.residual_fraction = 1.5;
  EXPECT_THROW(automated_hours(plan, bad), Error);
}

TEST(Automation, BreakEvenWithinAFewPlatforms) {
  // Across the three non-home platforms (~8-12 h each), saving 75% per
  // platform repays a 6 h authoring cost after the first one or two.
  std::vector<ProvisionPlan> plans{
      plan_provisioning(platform::ellipse()),
      plan_provisioning(platform::lagrange()),
      plan_provisioning(platform::ec2()),
  };
  const AutomationModel model;
  const int k = automation_break_even(plans, model);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 3);
}

TEST(Automation, NeverBreaksEvenOnFreePlatforms) {
  std::vector<ProvisionPlan> plans{plan_provisioning(platform::puma())};
  EXPECT_GE(automation_break_even(plans, AutomationModel{}), 1000);
}

TEST(Planner, UnknownPlatformThrows) {
  platform::PlatformSpec fake;
  fake.name = "styx";
  EXPECT_THROW(initial_state(fake), Error);
}

}  // namespace
}  // namespace hetero::provision
