// Tests for the two paper applications: the RD solver's exact-solution
// oracle and the Navier-Stokes solver against the Ethier-Steinman benchmark.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/ns_solver.hpp"
#include "apps/rd_solver.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"

namespace hetero::apps {
namespace {

simmpi::Runtime make_runtime(int ranks) {
  return simmpi::Runtime(netsim::Topology::uniform(
      ranks, 4, netsim::Fabric::infiniband_ddr_4x(),
      netsim::Fabric::shared_memory()));
}

TEST(RdExact, SatisfiesThePde) {
  // Finite-difference check of du/dt - (1/t^2) lap(u) - (2/t) u = -6.
  const mesh::Vec3 x{0.3, 0.7, 0.2};
  const double t = 1.7;
  const double h = 1e-5;
  auto u = [&](double xx, double yy, double zz, double tt) {
    return rd_exact_solution({xx, yy, zz}, tt);
  };
  const double ut =
      (u(x.x, x.y, x.z, t + h) - u(x.x, x.y, x.z, t - h)) / (2 * h);
  const double lap = (u(x.x + h, x.y, x.z, t) - 2 * u(x.x, x.y, x.z, t) +
                      u(x.x - h, x.y, x.z, t) + u(x.x, x.y + h, x.z, t) -
                      2 * u(x.x, x.y, x.z, t) + u(x.x, x.y - h, x.z, t) +
                      u(x.x, x.y, x.z + h, t) - 2 * u(x.x, x.y, x.z, t) +
                      u(x.x, x.y, x.z - h, t)) /
                     (h * h);
  const double residual =
      ut - lap / (t * t) - 2.0 / t * u(x.x, x.y, x.z, t) - (-6.0);
  EXPECT_NEAR(residual, 0.0, 1e-4);
}

class RdRanks : public ::testing::TestWithParam<int> {};

TEST_P(RdRanks, DiscreteSolutionMatchesExactToSolverTolerance) {
  auto rt = make_runtime(GetParam());
  rt.run([&](simmpi::Comm& comm) {
    RdConfig config;
    config.global_cells = 4;
    config.dt = 0.1;
    const int expected_dofs =
        5 * 5 * 5 +  // vertices of the 4^3 grid
        0;           // edges counted below
    (void)expected_dofs;
    RdSolver solver(comm, config);
    const auto records = solver.run(3);
    for (const auto& r : records) {
      EXPECT_TRUE(r.solver_converged);
      // P2 + BDF2 reproduce t^2 |x|^2 exactly: only solver tolerance left.
      EXPECT_LT(r.nodal_error, 1e-6) << "at t = " << r.time;
      EXPECT_LT(r.l2_error, 1e-6);
      EXPECT_GT(r.solver_iterations, 0);
    }
    // Time marches as configured.
    EXPECT_NEAR(solver.current_time(), 1.0 + 3 * 0.1, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RdRanks, ::testing::Values(1, 2, 8));

class RdTimeStep : public ::testing::TestWithParam<double> {};

TEST_P(RdTimeStep, ExactnessHoldsForAnyDt) {
  // The oracle is independent of dt: BDF2 is exact on quadratic-in-time
  // solutions whatever the step size.
  auto rt = make_runtime(8);
  rt.run([&](simmpi::Comm& comm) {
    RdConfig config;
    config.global_cells = 4;
    config.dt = GetParam();
    RdSolver solver(comm, config);
    const auto r = solver.step();
    EXPECT_TRUE(r.solver_converged);
    EXPECT_LT(r.nodal_error, 1e-6) << "dt = " << GetParam();
  });
}

INSTANTIATE_TEST_SUITE_P(DtSweep, RdTimeStep,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5));

TEST(Rd, Bdf1CommitsFirstOrderError) {
  auto error_with = [&](double dt) {
    double err = 0.0;
    auto rt = make_runtime(1);
    rt.run([&](simmpi::Comm& comm) {
      RdConfig config;
      config.global_cells = 3;
      config.time_order = 1;
      config.dt = dt;
      RdSolver solver(comm, config);
      err = solver.run(2).back().nodal_error;
    });
    return err;
  };
  const double coarse = error_with(0.2);
  const double fine = error_with(0.1);
  EXPECT_GT(coarse, 1e-4);             // clearly not exact
  EXPECT_GT(coarse / fine, 1.5);       // ~2 for O(dt)
  EXPECT_LT(coarse / fine, 3.5);
}

TEST(Rd, PhaseTimingsArePositiveAndOrdered) {
  auto rt = make_runtime(4);
  rt.run([&](simmpi::Comm& comm) {
    RdConfig config;
    config.global_cells = 4;
    RdSolver solver(comm, config);
    const auto r = solver.step();
    EXPECT_GT(r.timing.assembly_s, 0.0);
    EXPECT_GT(r.timing.preconditioner_s, 0.0);
    EXPECT_GT(r.timing.solve_s, 0.0);
    // Phases partition the iteration on each rank; after the per-phase max
    // reduction the sum can only exceed the total.
    EXPECT_GE(r.timing.assembly_s + r.timing.preconditioner_s +
                  r.timing.solve_s + 1e-15,
              r.timing.total_s);
    EXPECT_GT(r.timing.total_s, r.timing.solve_s);
  });
}

TEST(Rd, WorkCountsAreConsistent) {
  auto rt = make_runtime(8);
  rt.run([&](simmpi::Comm& comm) {
    RdConfig config;
    config.global_cells = 4;
    RdSolver solver(comm, config);
    const auto r = solver.step();
    // 4^3 cells over 8 ranks: 8 cells -> 48 tets per rank.
    EXPECT_EQ(r.work.local_tets, 48);
    EXPECT_EQ(r.work.matrix_entries_assembled, 48 * 10 * 10);
    EXPECT_GT(r.work.local_nonzeros, 0);
    EXPECT_GT(r.work.halo_doubles, 0);  // every block borders others
    // Global dof count: P2 on a 4^3 cube = vertices + edges.
    EXPECT_EQ(solver.global_dofs(), 125 + 604);
  });
}

TEST(Rd, FasterCpuShortensComputePhases) {
  auto run_with_speed = [&](double speed) {
    double assembly = 0.0;
    auto rt = make_runtime(2);
    rt.run([&](simmpi::Comm& comm) {
      RdConfig config;
      config.global_cells = 4;
      config.compute_errors = false;
      config.cpu.speed_factor = speed;
      RdSolver solver(comm, config);
      assembly = solver.step().timing.assembly_s;
    });
    return assembly;
  };
  const double slow = run_with_speed(1.0);
  const double fast = run_with_speed(4.0);
  EXPECT_LT(fast, slow);
}

TEST(Rd, BicgstabMatchesCgOnTheSpdSystem) {
  auto error_with = [&](const std::string& krylov) {
    double err = 0.0;
    auto rt = make_runtime(2);
    rt.run([&](simmpi::Comm& comm) {
      RdConfig config;
      config.global_cells = 4;
      config.krylov = krylov;
      RdSolver solver(comm, config);
      err = solver.step().nodal_error;
    });
    return err;
  };
  EXPECT_LT(error_with("cg"), 1e-6);
  EXPECT_LT(error_with("bicgstab"), 1e-6);
  auto rt = make_runtime(1);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
                 RdConfig config;
                 config.krylov = "gmres";  // not offered for the SPD system
                 RdSolver solver(comm, config);
                 solver.step();
               }),
               Error);
}

TEST(Ns, BicgstabAlsoSolvesTheSaddlePoint) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    NsConfig config;
    config.global_cells = 3;
    config.krylov = "bicgstab";
    NsSolver solver(comm, config);
    const auto r = solver.step();
    EXPECT_TRUE(r.solver_converged);
    EXPECT_LT(r.nodal_error, 0.2);
  });
}

TEST(Rd, RejectsSingularStartTime) {
  auto rt = make_runtime(1);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
                 RdConfig config;
                 config.t0 = 0.0;
                 RdSolver solver(comm, config);
               }),
               Error);
}

TEST(EthierSteinman, VelocityIsDivergenceFree) {
  const double nu = 1.0;
  const double t = 0.4;
  const double h = 1e-5;
  const mesh::Vec3 pts[] = {{0.2, -0.3, 0.5}, {-0.8, 0.1, 0.9}, {0, 0, 0}};
  for (const auto& p : pts) {
    double div = 0.0;
    for (int c = 0; c < 3; ++c) {
      mesh::Vec3 hi = p;
      mesh::Vec3 lo = p;
      (c == 0 ? hi.x : c == 1 ? hi.y : hi.z) += h;
      (c == 0 ? lo.x : c == 1 ? lo.y : lo.z) -= h;
      div += (es_velocity(hi, t, nu, c) - es_velocity(lo, t, nu, c)) /
             (2 * h);
    }
    EXPECT_NEAR(div, 0.0, 1e-6);
  }
}

TEST(EthierSteinman, SatisfiesMomentumEquation) {
  // Residual of rho u_t + rho (u.grad)u - mu lap(u) + grad p at a point,
  // via central differences (rho = 1, mu = nu).
  const double nu = 1.0;
  const double t = 0.25;
  const double h = 1e-4;
  const mesh::Vec3 p{0.3, -0.2, 0.6};
  auto vel = [&](const mesh::Vec3& x, double tt, int c) {
    return es_velocity(x, tt, nu, c);
  };
  auto shift = [&](const mesh::Vec3& x, int axis, double d) {
    mesh::Vec3 y = x;
    (axis == 0 ? y.x : axis == 1 ? y.y : y.z) += d;
    return y;
  };
  for (int c = 0; c < 3; ++c) {
    const double ut = (vel(p, t + h, c) - vel(p, t - h, c)) / (2 * h);
    double conv = 0.0;
    double lap = 0.0;
    for (int a = 0; a < 3; ++a) {
      const double dua =
          (vel(shift(p, a, h), t, c) - vel(shift(p, a, -h), t, c)) / (2 * h);
      conv += vel(p, t, a) * dua;
      lap += (vel(shift(p, a, h), t, c) - 2 * vel(p, t, c) +
              vel(shift(p, a, -h), t, c)) /
             (h * h);
    }
    const double dp =
        (es_pressure(shift(p, c, h), t, nu) -
         es_pressure(shift(p, c, -h), t, nu)) /
        (2 * h);
    const double residual = ut + conv - nu * lap + dp;
    EXPECT_NEAR(residual, 0.0, 2e-3) << "component " << c;
  }
}

class NsRanks : public ::testing::TestWithParam<int> {};

TEST_P(NsRanks, TracksTheExactSolution) {
  auto rt = make_runtime(GetParam());
  rt.run([&](simmpi::Comm& comm) {
    NsConfig config;
    config.global_cells = 4;
    config.dt = 2e-3;
    NsSolver solver(comm, config);
    const auto records = solver.run(2);
    for (const auto& r : records) {
      EXPECT_TRUE(r.solver_converged);
      // P1 on a 4^3 mesh: discretization error dominates; velocities are
      // O(1), so a few percent nodal error is the expected band.
      EXPECT_LT(r.nodal_error, 0.15) << "at t = " << r.time;
      EXPECT_GT(r.solver_iterations, 0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, NsRanks, ::testing::Values(1, 4));

TEST(Ns, ErrorIsIndependentOfPartitioning) {
  // The global discrete system is identical for any rank count; only the
  // preconditioner differs, so solutions agree to solver tolerance.
  auto run_on = [&](int ranks) {
    double err = 0.0;
    auto rt = make_runtime(ranks);
    rt.run([&](simmpi::Comm& comm) {
      NsConfig config;
      config.global_cells = 3;
      config.solver_tolerance = 1e-10;
      NsSolver solver(comm, config);
      err = solver.step().nodal_error;
    });
    return err;
  };
  const double serial = run_on(1);
  const double parallel = run_on(4);
  EXPECT_NEAR(serial, parallel, 1e-5 + 0.01 * serial);
}

TEST(Ns, TaylorHoodIsFarMoreAccurateThanP1P1) {
  auto run_with_order = [&](int order) {
    double l2 = 0.0;
    auto rt = make_runtime(4);
    rt.run([&](simmpi::Comm& comm) {
      NsConfig config;
      config.global_cells = 4;
      config.velocity_order = order;
      NsSolver solver(comm, config);
      const auto r = solver.step();
      EXPECT_TRUE(r.solver_converged) << "order " << order;
      l2 = r.l2_error;
    });
    return l2;
  };
  const double p1 = run_with_order(1);
  const double th = run_with_order(2);
  // P2 velocity converges one order faster; on this mesh the gap is ~15x.
  EXPECT_GT(p1 / th, 5.0);
}

TEST(Ns, TaylorHoodDofCount) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    NsConfig config;
    config.global_cells = 3;
    config.velocity_order = 2;
    NsSolver solver(comm, config);
    // 3 velocity components on P2 (vertices + edges) + P1 pressure.
    const std::int64_t vertices = 4 * 4 * 4;
    const std::int64_t edges = 3 * 3 * 16 + 3 * 9 * 4 + 27;
    EXPECT_EQ(solver.global_dofs(), 3 * (vertices + edges) + vertices);
    EXPECT_EQ(solver.velocity_space().order(), 2);
    EXPECT_EQ(solver.pressure_space().order(), 1);
  });
}

TEST(Ns, RejectsUnsupportedVelocityOrder) {
  auto rt = make_runtime(1);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
                 NsConfig config;
                 config.velocity_order = 3;
                 NsSolver solver(comm, config);
               }),
               Error);
}

TEST(Ns, DofCountIsFourPerVertex) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    NsConfig config;
    config.global_cells = 3;
    NsSolver solver(comm, config);
    EXPECT_EQ(solver.global_dofs(), 4 * 4 * 4 * 4);
  });
}

TEST(Ns, PressureIsPinnedAtCorner) {
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    NsConfig config;
    config.global_cells = 3;
    NsSolver solver(comm, config);
    solver.step();
    // Find the corner dof and compare pressure against the exact value.
    const auto& space = solver.space();
    for (int d = 0; d < space.local_dof_count(); ++d) {
      const auto& x = space.dof_coord(d);
      if (x.x < -1.0 + 1e-12 && x.y < -1.0 + 1e-12 && x.z < -1.0 + 1e-12) {
        const double exact = es_pressure(x, solver.current_time(), 1.0);
        EXPECT_NEAR(solver.solution_at(d, 3), exact, 1e-6);
      }
    }
  });
}

}  // namespace
}  // namespace hetero::apps
