// Tests for the broker: candidate enumeration (launch limits), prediction
// consistency with the experiment runner, Pareto-frontier math, constraint
// filtering with explained rejections, and end-to-end determinism.

#include <gtest/gtest.h>

#include <set>

#include "broker/broker.hpp"
#include "core/experiment.hpp"
#include "platform/platform_spec.hpp"
#include "support/error.hpp"

namespace hetero::broker {
namespace {

JobRequest million_element_request() {
  JobRequest request;
  request.app = perf::AppKind::kReactionDiffusion;
  request.total_elements = 1000000;
  request.iterations = 100;
  return request;
}

TEST(Candidates, SplitShrinksPerRankLoadAsRanksGrow) {
  const JobRequest request = million_element_request();
  EXPECT_EQ(split_cells_per_rank_axis(request, 1), 100);
  EXPECT_EQ(split_cells_per_rank_axis(request, 8), 50);
  EXPECT_EQ(split_cells_per_rank_axis(request, 125), 20);
  EXPECT_EQ(split_cells_per_rank_axis(request, 1000), 10);
  JobRequest weak;
  weak.cells_per_rank_axis = 20;
  EXPECT_EQ(split_cells_per_rank_axis(weak, 729), 20);
}

TEST(Candidates, EnumerationRespectsLaunchLimits) {
  const auto candidates = enumerate_candidates(million_element_request());
  EXPECT_GT(candidates.size(), 20u);
  for (const auto& c : candidates) {
    const auto& spec = platform::platform_by_name(c.platform);
    EXPECT_TRUE(spec.can_launch(c.ranks)) << c.label();
  }
  // The paper's limits: ellipse never above 512, lagrange never above 343,
  // puma never above its 128 cores.
  std::set<std::pair<std::string, int>> seen;
  for (const auto& c : candidates) {
    seen.insert({c.platform, c.ranks});
  }
  EXPECT_TRUE(seen.count({"ellipse", 512}));
  EXPECT_FALSE(seen.count({"ellipse", 729}));
  EXPECT_TRUE(seen.count({"lagrange", 343}));
  EXPECT_FALSE(seen.count({"lagrange", 512}));
  EXPECT_TRUE(seen.count({"puma", 125}));
  EXPECT_FALSE(seen.count({"puma", 216}));
  EXPECT_TRUE(seen.count({"ec2", 1000}));
}

TEST(Candidates, Ec2ExpandsIntoAcquisitionStrategies) {
  JobRequest request = million_element_request();
  request.ranks = 216;  // fixed rank count: one sweep entry
  const auto candidates = enumerate_candidates(request);
  int on_demand = 0;
  int mix = 0;
  int campaign = 0;
  for (const auto& c : candidates) {
    if (c.platform != "ec2") {
      EXPECT_EQ(c.strategy, Ec2Strategy::kNone);
      continue;
    }
    on_demand += c.strategy == Ec2Strategy::kOnDemand;
    mix += c.strategy == Ec2Strategy::kSpotMix;
    campaign += c.strategy == Ec2Strategy::kSpotCampaign;
  }
  EXPECT_EQ(on_demand, 1);
  EXPECT_EQ(mix, 4);  // 1..4 placement groups
  EXPECT_EQ(campaign, 1);
}

TEST(Candidates, TooFineSplitsAreDropped) {
  JobRequest request;
  request.total_elements = 8;  // 2x2x2 global mesh
  request.ranks = 8;           // would leave 1 cell per rank axis
  EXPECT_TRUE(enumerate_candidates(request).empty());
}

TEST(Predictor, AgreesWithExperimentRunnerModeledMode) {
  // The broker invariant: a prediction *is* a modeled experiment.
  JobRequest request = million_element_request();
  request.iterations = 50;
  Candidate c;
  c.platform = "lagrange";
  c.ranks = 216;
  c.cells_per_rank_axis = split_cells_per_rank_axis(request, 216);

  Predictor predictor(7);
  const auto p = predictor.predict(c, request);
  ASSERT_TRUE(p.launched);

  core::ExperimentRunner runner(7);
  core::Experiment e;
  e.app = request.app;
  e.platform = "lagrange";
  e.ranks = 216;
  e.cells_per_rank_axis = c.cells_per_rank_axis;
  const auto r = runner.run(e);
  ASSERT_TRUE(r.launched);

  EXPECT_DOUBLE_EQ(p.seconds_per_iteration, r.iteration.total_s);
  EXPECT_DOUBLE_EQ(p.run_s, r.iteration.total_s * 50);
  EXPECT_DOUBLE_EQ(p.cost_usd, r.cost_per_iteration_usd * 50);
  EXPECT_DOUBLE_EQ(p.queue_wait_s, r.queue_wait_s);
  EXPECT_DOUBLE_EQ(p.provisioning_hours, r.provisioning_hours);
  EXPECT_EQ(p.hosts, r.hosts);
}

TEST(Predictor, LaunchFailureCarriesTheSchedulerReason) {
  JobRequest request;
  request.ranks = 400;  // ellipse can launch this; lagrange cannot appear
  Candidate c;
  c.platform = "lagrange";
  c.ranks = 400;  // hand-built candidate past the IB cap
  Predictor predictor(42);
  const auto p = predictor.predict(c, request);
  EXPECT_FALSE(p.launched);
  EXPECT_NE(p.failure_reason.find("IB"), std::string::npos);
}

TEST(Frontier, HandBuiltParetoSet) {
  //           0        1       2       3         4 (dominated by 1)
  const std::vector<std::pair<double, double>> points{
      {2.0, 5.0}, {1.0, 10.0}, {0.5, 20.0}, {3.0, 7.0}, {1.5, 10.0}};
  const auto frontier = pareto_frontier(points);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].index, 2u);  // fastest
  EXPECT_EQ(frontier[1].index, 1u);
  EXPECT_EQ(frontier[2].index, 0u);  // cheapest
  // Sorted by ascending time, descending cost.
  EXPECT_LT(frontier[0].time_s, frontier[1].time_s);
  EXPECT_GT(frontier[0].cost_usd, frontier[1].cost_usd);
}

TEST(Frontier, ExactTiesAreAllKept) {
  // Two candidates at exactly the same (time, cost) do not dominate each
  // other: both must stay on the frontier (a regression dropped the
  // second), while the dominated point still goes.
  const std::vector<std::pair<double, double>> points{
      {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto frontier = pareto_frontier(points);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].index, 0u);
  EXPECT_EQ(frontier[1].index, 1u);
}

TEST(Frontier, TiedPredictionsBothSurface) {
  Prediction a;
  a.launched = true;
  a.effective_s = 10.0;
  a.cost_usd = 2.0;
  Prediction b = a;  // a distinct platform with identical economics
  Prediction worse = a;
  worse.effective_s = 11.0;
  const std::vector<Prediction> predictions{a, worse, b};
  const auto frontier = pareto_frontier(predictions);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].index, 0u);
  EXPECT_EQ(frontier[1].index, 2u);
}

TEST(Frontier, SkipsUnlaunchedPredictions) {
  Prediction ok;
  ok.launched = true;
  ok.effective_s = 10.0;
  ok.cost_usd = 1.0;
  Prediction dead;
  dead.launched = false;
  const std::vector<Prediction> predictions{dead, ok};
  const auto frontier = pareto_frontier(predictions);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].index, 1u);
}

TEST(Explain, InfeasibleConstraintsAreNamedAndQuantified) {
  JobRequest request = million_element_request();
  request.deadline_h = 0.001;
  request.budget_usd = 0.000001;
  Broker advisor(42);
  const auto rec = advisor.recommend(request, min_effective_time());
  // Nothing satisfies these constraints — but never a silent empty result:
  // every candidate is present with a human-readable reason.
  EXPECT_FALSE(rec.has_winner());
  EXPECT_TRUE(rec.ranked.empty());
  EXPECT_GT(rec.rejected.size(), 20u);
  for (const auto& rejection : rec.rejected) {
    EXPECT_FALSE(rejection.reason.empty())
        << rejection.prediction.candidate.label();
    const bool names_constraint =
        rejection.reason.find("deadline") != std::string::npos ||
        rejection.reason.find("budget") != std::string::npos ||
        rejection.reason.find("cannot launch") != std::string::npos;
    EXPECT_TRUE(names_constraint) << rejection.reason;
  }
}

TEST(Explain, RiskToleranceGatesSpotStrategies) {
  JobRequest averse = million_element_request();
  averse.risk_tolerance = 0.0;
  Broker advisor(42);
  const auto rec = advisor.recommend(averse, min_cost());
  ASSERT_TRUE(rec.has_winner());
  for (const auto& rc : rec.ranked) {
    EXPECT_NE(rc.prediction.candidate.strategy, Ec2Strategy::kSpotMix);
    EXPECT_NE(rc.prediction.candidate.strategy, Ec2Strategy::kSpotCampaign);
  }
  int spot_rejected = 0;
  for (const auto& rejection : rec.rejected) {
    spot_rejected +=
        rejection.reason.find("risk tolerance") != std::string::npos;
  }
  EXPECT_GT(spot_rejected, 0);

  // A middling tolerance admits the checkpointed campaign but not the
  // uninsured mix.
  JobRequest cautious = million_element_request();
  cautious.risk_tolerance = 0.3;
  const auto rec2 = advisor.recommend(cautious, min_cost());
  bool has_campaign = false;
  for (const auto& rc : rec2.ranked) {
    EXPECT_NE(rc.prediction.candidate.strategy, Ec2Strategy::kSpotMix);
    has_campaign |=
        rc.prediction.candidate.strategy == Ec2Strategy::kSpotCampaign;
  }
  EXPECT_TRUE(has_campaign);
}

TEST(Predictor, RiskCostIsBoundedAndZeroWithoutSpot) {
  // risk_usd is the expected dollars lost to reclaims: zero for strategies
  // with no spot exposure, and never more than the whole bill.
  Broker advisor(42);
  const auto rec =
      advisor.recommend(million_element_request(), min_effective_time());
  int risky = 0;
  auto check = [&](const Prediction& p) {
    EXPECT_GE(p.risk_usd, 0.0);
    EXPECT_LE(p.risk_usd, p.cost_usd);
    if (p.candidate.strategy == Ec2Strategy::kOnDemand ||
        p.candidate.platform != "ec2") {
      EXPECT_DOUBLE_EQ(p.risk_usd, 0.0);
    }
    risky += p.risk_usd > 0.0;
  };
  for (const auto& rc : rec.ranked) {
    check(rc.prediction);
  }
  for (const auto& rejection : rec.rejected) {
    if (rejection.prediction.launched) {
      check(rejection.prediction);
    }
  }
  EXPECT_GT(risky, 0);  // some spot strategy carries real risk
}

TEST(Explain, RiskBudgetFailsOverWithAnExplanation) {
  // A risk budget of one cent prices out every spot strategy; the broker
  // must still recommend something and each priced-out rejection must name
  // both the budget breach and the failover target.
  JobRequest request = million_element_request();
  request.risk_budget_usd = 0.01;
  Broker advisor(42);
  const auto rec = advisor.recommend(request, min_cost());
  ASSERT_TRUE(rec.has_winner());
  EXPECT_LE(rec.winner().risk_usd, 0.01);
  const std::string target = rec.winner().candidate.label();
  int priced_out = 0;
  for (const auto& rejection : rec.rejected) {
    if (rejection.reason.find("exceeds risk budget") == std::string::npos) {
      continue;
    }
    ++priced_out;
    EXPECT_NE(rejection.reason.find("failing over to " + target),
              std::string::npos)
        << rejection.reason;
  }
  EXPECT_GT(priced_out, 0);

  // An unbounded budget changes nothing: no rejection mentions it.
  JobRequest open_request = million_element_request();
  open_request.risk_budget_usd = 1e9;
  const auto rec_open = advisor.recommend(open_request, min_cost());
  for (const auto& rejection : rec_open.rejected) {
    EXPECT_EQ(rejection.reason.find("risk budget"), std::string::npos);
  }
}

TEST(Broker, RankedByObjectiveAndDeterministicInSeed) {
  const JobRequest request = million_element_request();
  Broker a(42);
  Broker b(42);
  const auto ra = a.recommend(request, min_time());
  const auto rb = b.recommend(request, min_time());
  ASSERT_TRUE(ra.has_winner());
  ASSERT_EQ(ra.ranked.size(), rb.ranked.size());
  for (std::size_t i = 0; i < ra.ranked.size(); ++i) {
    EXPECT_EQ(ra.ranked[i].prediction.candidate.label(),
              rb.ranked[i].prediction.candidate.label());
    EXPECT_DOUBLE_EQ(ra.ranked[i].score, rb.ranked[i].score);
    if (i > 0) {
      EXPECT_GE(ra.ranked[i].score, ra.ranked[i - 1].score);
    }
  }
  EXPECT_EQ(ra.frontier.size(), rb.frontier.size());
}

TEST(Broker, FrontierPointsAreMutuallyNonDominating) {
  Broker advisor(42);
  const auto rec =
      advisor.recommend(million_element_request(), min_effective_time());
  ASSERT_GE(rec.frontier.size(), 2u);
  for (std::size_t i = 1; i < rec.frontier.size(); ++i) {
    const auto& prev = rec.frontier[i - 1];
    const auto& cur = rec.frontier[i];
    // Consecutive points either trade time for cost, or tie exactly on
    // both axes (e.g. spot-mix candidates differing only in placement
    // groups, whose penalty is zero) — never dominate each other.
    const bool trades =
        cur.time_s > prev.time_s && cur.cost_usd < prev.cost_usd;
    const bool exact_tie =
        cur.time_s == prev.time_s && cur.cost_usd == prev.cost_usd;
    EXPECT_TRUE(trades || exact_tie)
        << "point " << i << ": (" << cur.time_s << ", " << cur.cost_usd
        << ") after (" << prev.time_s << ", " << prev.cost_usd << ")";
  }
}

TEST(Broker, TablesRenderEveryCandidate) {
  Broker advisor(42);
  const auto rec =
      advisor.recommend(million_element_request(), min_effective_time());
  const Table ranked = recommendation_table(rec);
  EXPECT_EQ(ranked.rows(), rec.ranked.size());
  const Table top = recommendation_table(rec, 4);
  EXPECT_EQ(top.rows(), 4u);
  EXPECT_EQ(frontier_table(rec).rows(), rec.frontier.size());
  EXPECT_EQ(rejection_table(rec).rows(), rec.rejected.size());
}

TEST(Objectives, ByNameAndBlendScoring) {
  EXPECT_EQ(objective_by_name("time").name, "time");
  EXPECT_EQ(objective_by_name("cost").name, "cost");
  EXPECT_EQ(objective_by_name("effective").name, "effective");
  EXPECT_EQ(objective_by_name("blend").name, "blend");
  EXPECT_THROW(objective_by_name("vibes"), Error);

  Prediction p;
  p.run_s = 7200.0;
  p.effective_s = 7200.0;
  p.cost_usd = 3.0;
  EXPECT_DOUBLE_EQ(min_time().score(p), 7200.0);
  EXPECT_DOUBLE_EQ(min_cost().score(p), 3.0);
  EXPECT_DOUBLE_EQ(weighted_blend(1.0, 1.0).score(p), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(weighted_blend(2.0, 0.5).score(p), 4.0 + 1.5);
  EXPECT_THROW(weighted_blend(0.0, 0.0), Error);
}

TEST(Broker, CampaignCandidateUsesTheSpotSimulator) {
  JobRequest request = million_element_request();
  request.ranks = 512;
  request.risk_tolerance = 1.0;
  Broker advisor(42);
  const auto rec = advisor.recommend(request, min_cost());
  const RankedCandidate* campaign = nullptr;
  for (const auto& rc : rec.ranked) {
    if (rc.prediction.candidate.strategy == Ec2Strategy::kSpotCampaign) {
      campaign = &rc;
      break;
    }
  }
  ASSERT_NE(campaign, nullptr);
  // The campaign bill is whole-instance-hours, so it is never below one
  // spot instance-hour per host, and the wall clock subsumes the wait.
  EXPECT_GT(campaign->prediction.cost_usd, 0.0);
  EXPECT_GT(campaign->prediction.run_s, 0.0);
  EXPECT_DOUBLE_EQ(campaign->prediction.queue_wait_s, 0.0);
  EXPECT_GT(campaign->prediction.spot_hosts, 0);
}

}  // namespace
}  // namespace hetero::broker
