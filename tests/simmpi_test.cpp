// Tests for the simulated message-passing runtime: point-to-point semantics,
// collectives, virtual clocks, statistics, and failure propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>

#include "netsim/fabric.hpp"
#include "resil/recovery.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace hetero::simmpi {
namespace {

netsim::Topology test_topology(int ranks, int ranks_per_node = 2) {
  return netsim::Topology::uniform(ranks, ranks_per_node,
                                   netsim::Fabric::gigabit_ethernet(),
                                   netsim::Fabric::shared_memory());
}

TEST(Runtime, RingPassesTokenAround) {
  Runtime rt(test_topology(4));
  std::atomic<int> final_token{0};
  rt.run([&](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    if (comm.rank() == 0) {
      comm.send(std::vector<std::int64_t>{1}, next, 0);
      const auto got = comm.recv<std::int64_t>(prev, 0);
      final_token.store(static_cast<int>(got[0]));
    } else {
      const auto got = comm.recv<std::int64_t>(prev, 0);
      comm.send(std::vector<std::int64_t>{got[0] + 1}, next, 0);
    }
  });
  EXPECT_EQ(final_token.load(), 4);
}

TEST(Runtime, MessagesMatchOnSourceAndTag) {
  Runtime rt(test_topology(2));
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<double>{1.0}, 1, 10);
      comm.send(std::vector<double>{2.0}, 1, 20);
      comm.send(std::vector<double>{3.0}, 1, 10);
    } else {
      // Receive out of send order by tag.
      const auto b = comm.recv<double>(0, 20);
      const auto a1 = comm.recv<double>(0, 10);
      const auto a2 = comm.recv<double>(0, 10);
      EXPECT_DOUBLE_EQ(b[0], 2.0);
      // Non-overtaking within the same (source, tag).
      EXPECT_DOUBLE_EQ(a1[0], 1.0);
      EXPECT_DOUBLE_EQ(a2[0], 3.0);
    }
  });
}

TEST(Runtime, ReceiveClockRespectsTransferTime) {
  auto topo = test_topology(2, 1);  // ranks on different nodes
  const double wire = topo.message_time(0, 1, 8 * 1024);
  Runtime rt(std::move(topo));
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(1024, 1.0);  // 8 KiB
      comm.send(payload, 1, 0);
    } else {
      const auto got = comm.recv<double>(0, 0);
      EXPECT_EQ(got.size(), 1024u);
      // Receiver time must be at least the wire time of the payload.
      EXPECT_GE(comm.now(), wire * 0.99);
    }
  });
}

TEST(Runtime, ComputeAdvancesOnlyLocalClock) {
  Runtime rt(test_topology(2));
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(5.0);
      EXPECT_NEAR(comm.now(), 5.0, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(comm.now(), 0.0);
    }
  });
  EXPECT_GE(rt.elapsed_sim_seconds(), 5.0);
}

TEST(Runtime, BarrierSynchronizesClocks) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    comm.compute(comm.rank() == 2 ? 7.0 : 0.5);
    comm.barrier();
    // Everyone leaves at (or after) the slowest rank's entry time.
    EXPECT_GE(comm.now(), 7.0);
  });
}

TEST(Runtime, BcastDeliversRootPayload) {
  Runtime rt(test_topology(5));
  rt.run([&](Comm& comm) {
    std::vector<std::int64_t> data;
    if (comm.rank() == 2) {
      data = {42, 43, 44};
    }
    comm.bcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[0], 42);
    EXPECT_EQ(data[2], 44);
  });
}

TEST(Runtime, AllreduceSumMinMax) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    const double r = comm.rank() + 1.0;  // 1..4
    EXPECT_DOUBLE_EQ(comm.allreduce(r, ReduceOp::kSum), 10.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(r, ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(r, ReduceOp::kMax), 4.0);
    const std::int64_t i = comm.rank();
    EXPECT_EQ(comm.allreduce(i, ReduceOp::kSum), 6);
  });
}

TEST(Runtime, AllreduceVectorIsElementwise) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    const std::vector<double> in{1.0 * comm.rank(), 10.0};
    const auto out = comm.allreduce(std::span<const double>(in),
                                    ReduceOp::kSum);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 0.0 + 1.0 + 2.0);
    EXPECT_DOUBLE_EQ(out[1], 30.0);
  });
}

TEST(Runtime, AllgathervConcatenatesByRank) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    // Rank r contributes r+1 entries of value r.
    std::vector<std::int64_t> mine(static_cast<std::size_t>(comm.rank() + 1),
                                   comm.rank());
    const auto all = comm.allgatherv(mine);
    ASSERT_EQ(all.size(), 6u);  // 1+2+3
    EXPECT_EQ(all[0], 0);
    EXPECT_EQ(all[1], 1);
    EXPECT_EQ(all[2], 1);
    EXPECT_EQ(all[3], 2);
    EXPECT_EQ(all[5], 2);
  });
}

TEST(Runtime, AlltoallvRoutesBlocksCorrectly) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    // Block for rank d holds value 100*me + d, repeated (d+1) times.
    std::vector<std::vector<std::int64_t>> out(4);
    for (int d = 0; d < 4; ++d) {
      out[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(d + 1), 100 * comm.rank() + d);
    }
    const auto in = comm.alltoallv(out);
    ASSERT_EQ(in.size(), 4u);
    for (int s = 0; s < 4; ++s) {
      const auto& block = in[static_cast<std::size_t>(s)];
      ASSERT_EQ(block.size(), static_cast<std::size_t>(comm.rank() + 1));
      for (auto v : block) {
        EXPECT_EQ(v, 100 * s + comm.rank());
      }
    }
  });
}

TEST(Runtime, AlltoallvHandlesEmptyBlocks) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    std::vector<std::vector<double>> out(3);
    if (comm.rank() == 0) {
      out[2] = {3.14};
    }
    const auto in = comm.alltoallv(out);
    if (comm.rank() == 2) {
      ASSERT_EQ(in[0].size(), 1u);
      EXPECT_DOUBLE_EQ(in[0][0], 3.14);
    } else {
      for (const auto& b : in) {
        EXPECT_TRUE(b.empty());
      }
    }
  });
}

TEST(Runtime, IrecvMatchesLikeBlockingRecv) {
  Runtime rt(test_topology(2));
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<double>{1.0}, 1, 5);
      comm.send(std::vector<double>{2.0}, 1, 6);
    } else {
      // Post both requests before any completes, wait out of order.
      auto r5 = comm.irecv<double>(0, 5);
      auto r6 = comm.irecv<double>(0, 6);
      EXPECT_TRUE(r5.valid());
      const auto b = r6.wait();
      const auto a = r5.wait();
      EXPECT_DOUBLE_EQ(a[0], 1.0);
      EXPECT_DOUBLE_EQ(b[0], 2.0);
      EXPECT_FALSE(r5.valid());
      EXPECT_THROW(r5.wait(), Error);  // consumed
    }
  });
}

TEST(Runtime, SendrecvExchangesBetweenNeighbours) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    const std::vector<std::int64_t> mine{comm.rank()};
    const auto got =
        comm.sendrecv(std::span<const std::int64_t>(mine), right, 3, left, 3);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], left);
  });
}

TEST(Runtime, GathervConcentratesAtRoot) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    std::vector<std::int64_t> mine(static_cast<std::size_t>(comm.rank() + 1),
                                   comm.rank() * 10);
    const auto all = comm.gatherv(mine, 1);
    if (comm.rank() == 1) {
      ASSERT_EQ(all.size(), 6u);  // 1 + 2 + 3
      EXPECT_EQ(all[0], 0);
      EXPECT_EQ(all[1], 10);
      EXPECT_EQ(all[3], 20);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Runtime, ScattervDistributesRootBlocks) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    std::vector<std::vector<double>> blocks;
    if (comm.rank() == 2) {
      blocks = {{0.5}, {1.5, 1.6}, {}};
    }
    const auto mine = comm.scatterv(blocks, 2);
    switch (comm.rank()) {
      case 0:
        ASSERT_EQ(mine.size(), 1u);
        EXPECT_DOUBLE_EQ(mine[0], 0.5);
        break;
      case 1:
        ASSERT_EQ(mine.size(), 2u);
        EXPECT_DOUBLE_EQ(mine[1], 1.6);
        break;
      default:
        EXPECT_TRUE(mine.empty());
    }
  });
}

TEST(Runtime, ScattervValidatesRootBlockCount) {
  Runtime rt(test_topology(2));
  EXPECT_THROW(rt.run([&](Comm& comm) {
                 std::vector<std::vector<double>> blocks{{1.0}};  // need 2
                 comm.scatterv(blocks, comm.rank() == 0 ? 0 : 0);
               }),
               Error);
}

TEST(Runtime, CollectivesAreRepeatable) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const double s =
          comm.allreduce(static_cast<double>(comm.rank() + round),
                         ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(s, 6.0 + 4.0 * round);
    }
  });
}

TEST(Runtime, StatsCountTraffic) {
  Runtime rt(test_topology(2));
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<double>(100, 1.0), 1, 0);
    } else {
      comm.recv<double>(0, 0);
    }
    comm.barrier();
  });
  EXPECT_EQ(rt.stats(0).messages_sent, 1u);
  EXPECT_EQ(rt.stats(0).bytes_sent, 800u);
  EXPECT_EQ(rt.stats(1).messages_received, 1u);
  EXPECT_EQ(rt.stats(1).bytes_received, 800u);
  EXPECT_EQ(rt.stats(0).collectives, 1u);
  EXPECT_GT(rt.stats(1).comm_seconds, 0.0);
}

TEST(Runtime, RankFailureAbortsTheJob) {
  Runtime rt(test_topology(3));
  EXPECT_THROW(rt.run([&](Comm& comm) {
                 if (comm.rank() == 1) {
                   throw Error("rank 1 exploded");
                 }
                 // Other ranks block; the abort must wake them.
                 comm.recv<double>((comm.rank() + 1) % 3, 99);
               }),
               Error);
}

TEST(Runtime, RunIsReusable) {
  Runtime rt(test_topology(2));
  for (int round = 0; round < 3; ++round) {
    rt.run([&](Comm& comm) {
      EXPECT_DOUBLE_EQ(comm.now(), 0.0);  // clocks reset per run
      comm.barrier();
    });
  }
}

TEST(Runtime, ClockNeverRunsBackwards) {
  Runtime rt(test_topology(2, 1));
  rt.run([&](Comm& comm) {
    double last = comm.now();
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 0) {
        comm.send(std::vector<double>{1.0}, 1, i);
        comm.compute(1e-3);
      } else {
        comm.recv<double>(0, i);
      }
      EXPECT_GE(comm.now(), last);
      last = comm.now();
    }
  });
}

TEST(Split, EvenOddGroupsReduceIndependently) {
  Runtime rt(test_topology(6));
  rt.run([&](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    EXPECT_EQ(sub.world_rank(), comm.rank());
    EXPECT_FALSE(sub.is_world());
    const auto sum = sub.allreduce(
        static_cast<std::int64_t>(comm.rank()), ReduceOp::kSum);
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
    // The parent communicator still works afterwards.
    EXPECT_EQ(comm.allreduce(std::int64_t{1}, ReduceOp::kSum), 6);
  });
}

TEST(Split, KeyControlsTheOrdering) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    // Reverse order: highest world rank becomes group rank 0.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
    // Gather to the group's rank 0 (world rank 3).
    const std::vector<std::int64_t> mine{comm.rank()};
    const auto all = sub.gatherv(mine, 0);
    if (sub.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      EXPECT_EQ(all[0], 3);  // ordered by group rank = reversed world
      EXPECT_EQ(all[3], 0);
    }
  });
}

TEST(Split, TagSpacesAreIsolated) {
  Runtime rt(test_topology(4));
  rt.run([&](Comm& comm) {
    Comm sub = comm.split(0, comm.rank());  // same membership as world
    if (comm.rank() == 0) {
      comm.send(std::vector<double>{1.0}, 1, 7);  // world, tag 7
      sub.send(std::vector<double>{2.0}, 1, 7);   // sub comm, same tag
    }
    if (comm.rank() == 1) {
      // The sub receive must match the sub message even though the world
      // message with the same (source, tag) arrived first.
      const auto s = sub.recv<double>(0, 7);
      EXPECT_DOUBLE_EQ(s[0], 2.0);
      const auto w = comm.recv<double>(0, 7);
      EXPECT_DOUBLE_EQ(w[0], 1.0);
    }
  });
}

TEST(Split, GroupsOperateConcurrently) {
  Runtime rt(test_topology(8));
  rt.run([&](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    // Different collectives in the two groups, repeated; any cross-group
    // interference would deadlock or corrupt results.
    for (int round = 0; round < 20; ++round) {
      if (comm.rank() % 2 == 0) {
        const auto v = sub.allreduce(1.0 * round, ReduceOp::kMax);
        EXPECT_DOUBLE_EQ(v, round);
      } else {
        std::vector<std::int64_t> mine{comm.rank() + round};
        const auto all = sub.allgatherv(mine);
        EXPECT_EQ(all.size(), 4u);
      }
    }
    comm.barrier();
  });
}

TEST(Split, NestedSplitWorks) {
  Runtime rt(test_topology(8));
  rt.run([&](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());  // two groups of 4
    Comm quarter = half.split(half.rank() / 2, half.rank());  // four of 2
    EXPECT_EQ(quarter.size(), 2);
    const auto sum = quarter.allreduce(
        static_cast<std::int64_t>(comm.rank()), ReduceOp::kSum);
    // Partner is the world-rank neighbour within the same half.
    const int base = (comm.rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

TEST(Split, SingletonGroupsDegenerateGracefully) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    // Unique colors: every rank becomes its own communicator.
    Comm solo = comm.split(comm.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_DOUBLE_EQ(solo.allreduce(3.25, ReduceOp::kSum), 3.25);
    solo.barrier();
    const auto all = solo.allgatherv(std::vector<std::int64_t>{7});
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], 7);
  });
}

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, AllCollectivesAgreeAtAnyRankCount) {
  const int p = GetParam();
  Runtime rt(test_topology(p));
  rt.run([&](Comm& comm) {
    // allreduce of rank ids.
    const double sum = comm.allreduce(static_cast<double>(comm.rank()),
                                      ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, p * (p - 1) / 2.0);
    // allgatherv of one entry each.
    const std::vector<std::int64_t> mine{comm.rank()};
    const auto all = comm.allgatherv(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
    }
    // alltoallv of rank products.
    std::vector<std::vector<std::int64_t>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      out[static_cast<std::size_t>(d)] = {
          static_cast<std::int64_t>(comm.rank()) * p + d};
    }
    const auto in = comm.alltoallv(out);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(in[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(in[static_cast<std::size_t>(s)][0],
                static_cast<std::int64_t>(s) * p + comm.rank());
    }
    // bcast from the last rank.
    std::vector<double> payload;
    if (comm.rank() == p - 1) {
      payload = {3.5, 4.5};
    }
    comm.bcast(payload, p - 1);
    ASSERT_EQ(payload.size(), 2u);
    EXPECT_DOUBLE_EQ(payload[1], 4.5);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveRanks,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(Runtime, TrafficMatrixRecordsPointToPointBytes) {
  Runtime rt(test_topology(3));
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<double>(10, 1.0), 1, 0);   // 80 B to rank 1
      comm.send(std::vector<double>(5, 1.0), 2, 0);    // 40 B to rank 2
    } else {
      comm.recv<double>(0, 0);
    }
  });
  const auto& row0 = rt.stats(0).bytes_by_dest;
  ASSERT_EQ(row0.size(), 3u);
  EXPECT_EQ(row0[0], 0u);
  EXPECT_EQ(row0[1], 80u);
  EXPECT_EQ(row0[2], 40u);
  EXPECT_EQ(rt.stats(1).bytes_by_dest[0], 0u);  // rank 1 sent nothing
}

TEST(Runtime, DeadlockedRecvFailsLoudly) {
  Runtime rt(test_topology(2));
  rt.set_recv_timeout(0.2);  // host seconds
  EXPECT_EQ(rt.recv_timeout(), 0.2);
  try {
    rt.run([&](Comm& comm) {
      if (comm.rank() == 1) {
        comm.recv<double>(0, 99);  // rank 0 never sends: deadlock
      }
    });
    FAIL() << "deadlock should have been detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(Runtime, InjectedFaultAbortsBlockedPeersWithinTheGuardWindow) {
  // Fault-injection kills a rank by throwing resil::InjectedFault from its
  // body while the peers sit in blocking receives. The abort — not the
  // deadlock guard — must wake them: the run has to fail well inside the
  // guard window and rethrow the injected fault, not a deadlock error.
  Runtime rt(test_topology(4));
  rt.set_recv_timeout(30.0);  // guard stays armed but must never fire
  const auto start = std::chrono::steady_clock::now();
  try {
    rt.run([&](Comm& comm) {
      if (comm.rank() == 2) {
        throw resil::InjectedFault(comm.rank(), 1);
      }
      // Everyone else blocks on a message only the dead rank could send.
      comm.recv<double>(2, 7);
    });
    FAIL() << "the injected fault should have aborted the job";
  } catch (const resil::InjectedFault& fault) {
    EXPECT_EQ(fault.rank(), 2);
    EXPECT_EQ(fault.step(), 1);
  }
  const double host_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(host_s, 10.0) << "peers were not aborted promptly";

  // The runtime stays usable after the abort (the next attempt of a
  // recovery loop reuses fresh runtimes, but a reused one must not wedge).
  rt.run([&](Comm& comm) { comm.barrier(); });
}

TEST(Runtime, DegradedWindowsSlowCommunicationDeterministically) {
  auto measure = [&](double active_fraction) {
    Runtime rt(test_topology(4));
    netsim::DegradationSchedule schedule;
    schedule.active_fraction = active_fraction;
    schedule.factor = 5.0;
    schedule.window_s = 1.0;
    schedule.seed = 3;
    rt.set_degradation(schedule);
    rt.run([&](Comm& comm) {
      std::vector<double> payload(1 << 14, 1.0);
      for (int round = 0; round < 20; ++round) {
        comm.allreduce(static_cast<double>(round), ReduceOp::kSum);
        const int peer = comm.rank() ^ 1;
        comm.sendrecv(std::span<const double>(payload), peer, 5, peer, 5);
      }
    });
    return rt.elapsed_sim_seconds();
  };
  const double healthy = measure(0.0);
  const double degraded = measure(1.0);
  EXPECT_GT(degraded, healthy);  // every window scaled by 5x
  // Pure-hash windows: the degraded run replays to the exact same clock.
  EXPECT_DOUBLE_EQ(degraded, measure(1.0));
}

TEST(SimClock, AdvanceToIsMonotone) {
  SimClock clock;
  clock.advance(5.0);
  clock.advance_to(3.0);  // must not go back
  EXPECT_DOUBLE_EQ(clock.time(), 5.0);
  clock.advance_to(9.0);
  EXPECT_DOUBLE_EQ(clock.time(), 9.0);
  EXPECT_THROW(clock.advance(-1.0), Error);
}

}  // namespace
}  // namespace hetero::simmpi
