// Tests for the multi-process campaign backend: chaos planning, the
// supervisor<->worker wire protocol, the shared RecordLog (including
// cross-process contention), and the supervised worker pool end to end —
// crash retry, hang detection, poison-job quarantine, shard harvesting —
// always against the byte-identity contract with the in-process pool.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"
#include "proc/chaos.hpp"
#include "proc/supervisor.hpp"
#include "proc/wire.hpp"
#include "support/error.hpp"
#include "support/record_log.hpp"
#include "svc/result_codec.hpp"

namespace hetero::proc {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path("/tmp/" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) : path("/tmp/" + name) {
    std::string cmd = "rm -rf " + path;
    std::system(cmd.c_str());
    ::mkdir(path.c_str(), 0755);
  }
  ~TempDir() {
    std::string cmd = "rm -rf " + path;
    std::system(cmd.c_str());
  }
};

/// A small modeled campaign touching several platforms and rank counts,
/// with a duplicate descriptor to exercise in-batch dedup.
std::vector<core::Experiment> small_campaign() {
  std::vector<core::Experiment> batch;
  for (const char* platform : {"puma", "ec2", "lagrange"}) {
    for (int ranks : {8, 27, 64}) {
      core::Experiment e;
      e.platform = platform;
      e.ranks = ranks;
      batch.push_back(e);
    }
  }
  core::Experiment ns = batch.front();
  ns.app = perf::AppKind::kNavierStokes;
  batch.push_back(ns);
  batch.push_back(batch.front());  // duplicate of [0]
  return batch;
}

std::vector<std::string> reference_encodings(
    const std::vector<core::Experiment>& batch, std::uint64_t seed = 42) {
  core::CampaignEngine engine(seed);
  std::vector<std::string> out;
  for (const auto& r : engine.run_batch(batch)) {
    out.push_back(svc::encode_result(r));
  }
  return out;
}

// --- chaos -------------------------------------------------------------

TEST(Chaos, ParsesSpecsAndRejectsMalformedOnes) {
  const auto spec = parse_chaos_spec("crash:0.05,hang:0.1,exit:0.25");
  EXPECT_DOUBLE_EQ(spec.crash_p, 0.05);
  EXPECT_DOUBLE_EQ(spec.hang_p, 0.1);
  EXPECT_DOUBLE_EQ(spec.exit_p, 0.25);
  EXPECT_TRUE(spec.any());

  const auto partial = parse_chaos_spec("hang:1");
  EXPECT_DOUBLE_EQ(partial.hang_p, 1.0);
  EXPECT_DOUBLE_EQ(partial.crash_p, 0.0);

  EXPECT_FALSE(parse_chaos_spec("").any());
  EXPECT_THROW(parse_chaos_spec("frobnicate:0.5"), Error);
  EXPECT_THROW(parse_chaos_spec("crash:1.5"), Error);
  EXPECT_THROW(parse_chaos_spec("crash:-0.1"), Error);
  EXPECT_THROW(parse_chaos_spec("crash"), Error);
}

TEST(Chaos, DecisionsAreDeterministicAndAttemptSensitive) {
  ChaosSpec spec;
  spec.crash_p = 0.3;
  spec.hang_p = 0.3;
  spec.exit_p = 0.3;
  std::map<int, ChaosAction> first;
  for (int key = 0; key < 64; ++key) {
    first[key] = chaos_decide(spec, 7, static_cast<std::uint64_t>(key), 0);
  }
  for (int key = 0; key < 64; ++key) {
    EXPECT_EQ(chaos_decide(spec, 7, static_cast<std::uint64_t>(key), 0),
              first[key])
        << "decision for key " << key << " must be a pure function";
  }
  // The attempt is part of the hash: a job that drew a kill on attempt 0
  // usually draws something else on attempt 1.
  int changed = 0;
  for (int key = 0; key < 64; ++key) {
    if (chaos_decide(spec, 7, static_cast<std::uint64_t>(key), 1) !=
        first[key]) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(Chaos, ZeroSpecNeverFiresAndCertainSpecAlwaysDoes) {
  for (int key = 0; key < 32; ++key) {
    EXPECT_EQ(chaos_decide(ChaosSpec{}, 1, static_cast<std::uint64_t>(key), 0),
              ChaosAction::kNone);
  }
  ChaosSpec certain;
  certain.crash_p = 1.0;
  for (int key = 0; key < 32; ++key) {
    EXPECT_EQ(chaos_decide(certain, 1, static_cast<std::uint64_t>(key), 0),
              ChaosAction::kCrash);
  }
}

// --- wire --------------------------------------------------------------

TEST(Wire, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Frame sent;
  sent.type = FrameType::kDone;
  sent.job_id = 0xDEADBEEFCAFEULL;
  sent.attempt = 3;
  sent.payload = std::string("result bytes\0with a nul", 23);
  ASSERT_TRUE(send_frame(fds[1], sent));
  Frame got;
  ASSERT_TRUE(recv_frame(fds[0], &got));
  EXPECT_EQ(got.type, FrameType::kDone);
  EXPECT_EQ(got.job_id, sent.job_id);
  EXPECT_EQ(got.attempt, sent.attempt);
  EXPECT_EQ(got.payload, sent.payload);
  ::close(fds[1]);
  // EOF is a clean false, not an exception — peer death is routine.
  EXPECT_FALSE(recv_frame(fds[0], &got));
  ::close(fds[0]);
}

TEST(Wire, TornFramesAndBadMagicReadAsPeerDeath) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Half a header, then the writer "dies".
  const std::uint32_t magic = 0x48504631;
  ASSERT_EQ(::write(fds[1], &magic, 2), 2);
  ::close(fds[1]);
  Frame got;
  EXPECT_FALSE(recv_frame(fds[0], &got));
  ::close(fds[0]);

  ASSERT_EQ(::pipe(fds), 0);
  const char garbage[24] = "this is not a frame....";
  ASSERT_EQ(::write(fds[1], garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  EXPECT_FALSE(recv_frame(fds[0], &got));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, ExperimentCodecRoundTripsEveryField) {
  core::Experiment e;
  e.app = perf::AppKind::kNavierStokes;
  e.platform = "ec2";
  e.ranks = 125;
  e.cells_per_rank_axis = 17;
  e.element_order = 2;
  e.mode = core::Mode::kDirect;
  e.direct_steps = 9;
  e.ec2_spot_mix = true;
  e.ec2_placement_groups = 4;
  e.cross_group_penalty = 0.031;
  e.ec2_spot_bid_usd = 0.77;
  e.trace_path = "/tmp/trace.json";
  e.metrics_path = "/tmp/metrics.json";
  e.faults.rank_crash_rate = 0.01;
  e.faults.launch_failure_rate = 0.02;
  e.faults.net_degrade_rate = 0.03;
  e.faults.reclaim_storm_rate = 0.04;
  e.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
  e.recovery.checkpoint_every = 5;
  e.recovery.shrink_ranks_on_crash = true;
  e.rebroker.enabled = true;
  e.rebroker.fallback_platform = "puma";
  e.rebroker.hysteresis = 0.2;
  e.rebroker.migrate_budget_usd = 1.25;
  e.rebroker.sample_every = 2;
  e.rebroker.deadline_s = 3600.0;
  e.skew.slow_core_factor = 2.5;
  e.skew.slow_core_fraction = 0.25;
  e.skew.noise_rate = 0.1;
  e.skew_assume_balanced = true;
  e.balance.enabled = true;
  e.balance.mode = "diffuse";
  e.balance.threshold = 1.3;
  e.seed = 1234567;

  const auto d = decode_experiment(encode_experiment(e));
  EXPECT_EQ(d.app, e.app);
  EXPECT_EQ(d.platform, e.platform);
  EXPECT_EQ(d.ranks, e.ranks);
  EXPECT_EQ(d.cells_per_rank_axis, e.cells_per_rank_axis);
  EXPECT_EQ(d.element_order, e.element_order);
  EXPECT_EQ(d.mode, e.mode);
  EXPECT_EQ(d.direct_steps, e.direct_steps);
  EXPECT_EQ(d.ec2_spot_mix, e.ec2_spot_mix);
  EXPECT_EQ(d.ec2_placement_groups, e.ec2_placement_groups);
  EXPECT_DOUBLE_EQ(d.cross_group_penalty, e.cross_group_penalty);
  EXPECT_DOUBLE_EQ(d.ec2_spot_bid_usd, e.ec2_spot_bid_usd);
  EXPECT_EQ(d.trace_path, e.trace_path);
  EXPECT_EQ(d.metrics_path, e.metrics_path);
  EXPECT_DOUBLE_EQ(d.faults.rank_crash_rate, e.faults.rank_crash_rate);
  EXPECT_DOUBLE_EQ(d.faults.reclaim_storm_rate, e.faults.reclaim_storm_rate);
  EXPECT_EQ(d.recovery.kind, e.recovery.kind);
  EXPECT_EQ(d.recovery.checkpoint_every, e.recovery.checkpoint_every);
  EXPECT_EQ(d.recovery.shrink_ranks_on_crash, e.recovery.shrink_ranks_on_crash);
  EXPECT_EQ(d.rebroker.enabled, e.rebroker.enabled);
  EXPECT_EQ(d.rebroker.fallback_platform, e.rebroker.fallback_platform);
  EXPECT_DOUBLE_EQ(d.rebroker.hysteresis, e.rebroker.hysteresis);
  EXPECT_DOUBLE_EQ(d.skew.slow_core_factor, e.skew.slow_core_factor);
  EXPECT_EQ(d.skew_assume_balanced, e.skew_assume_balanced);
  EXPECT_EQ(d.balance.enabled, e.balance.enabled);
  EXPECT_EQ(d.balance.mode, e.balance.mode);
  EXPECT_DOUBLE_EQ(d.balance.threshold, e.balance.threshold);
  EXPECT_EQ(d.seed, e.seed);
  // The canonical cache key sees the decoded copy as the same experiment.
  EXPECT_EQ(core::experiment_cache_key(d, 42),
            core::experiment_cache_key(e, 42));
}

TEST(Wire, ExperimentCodecRejectsVersionMismatchAndGarbage) {
  core::Experiment e;
  auto bytes = encode_experiment(e);
  bytes[0] = static_cast<char>(kExperimentCodecVersion + 1);
  EXPECT_THROW(decode_experiment(bytes), Error);
  EXPECT_THROW(decode_experiment("short"), Error);
  EXPECT_THROW(decode_experiment(""), Error);
}

// --- record log under fork-level contention ----------------------------

TEST(RecordLog, TwoProcessesAppendingLandWholeRecords) {
  TempFile f("proc_test_contention.log");
  constexpr int kWriters = 2;
  constexpr int kRecords = 200;
  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: its own open-file-description, so flock actually contends.
      support::RecordLog log(f.path);
      for (int i = 0; i < kRecords; ++i) {
        const std::string key =
            "w" + std::to_string(w) + ":" + std::to_string(i);
        log.append(key, std::string(64, static_cast<char>('a' + w)));
      }
      log.flush();
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  support::RecordLog log(f.path);
  std::set<std::string> keys;
  const auto stats = log.recover([&](std::string key, std::string value) {
    EXPECT_EQ(value.size(), 64u);
    keys.insert(std::move(key));
  });
  EXPECT_EQ(stats.recovered_records, kWriters * kRecords);
  EXPECT_EQ(stats.dropped_bytes, 0u);
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(kWriters * kRecords));
}

// --- supervisor --------------------------------------------------------

TEST(Supervisor, ResolveWorkersPrefersExplicitThenEnvironment) {
  ::unsetenv("HETEROLAB_WORKERS");
  EXPECT_EQ(resolve_workers(3), 3);
  EXPECT_EQ(resolve_workers(0), 0);
  EXPECT_EQ(resolve_workers(-1), 0);
  ::setenv("HETEROLAB_WORKERS", "5", 1);
  EXPECT_EQ(resolve_workers(-1), 5);
  EXPECT_EQ(resolve_workers(2), 2);
  EXPECT_EQ(resolve_workers(0), 0);  // explicit 0 still disables
  ::setenv("HETEROLAB_WORKERS", "not a number", 1);
  EXPECT_EQ(resolve_workers(-1), 0);
  ::unsetenv("HETEROLAB_WORKERS");
  EXPECT_EQ(make_supervisor(0, 42), nullptr);
}

TEST(Supervisor, MatchesTheInProcessPoolByteForByte) {
  const auto batch = small_campaign();
  const auto reference = reference_encodings(batch);

  ProcOptions options;
  options.workers = 2;
  Supervisor supervisor(42, options);
  core::CampaignEngineOptions eopt;
  eopt.executor = &supervisor;
  core::CampaignEngine engine(42, eopt);
  const auto results = engine.run_batch(batch);

  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(svc::encode_result(results[i]), reference[i])
        << "result " << i << " diverged from the in-process pool";
  }
  const auto stats = supervisor.stats();
  EXPECT_GT(stats.jobs_dispatched, 0u);
  EXPECT_EQ(stats.worker_crashes, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(Supervisor, SurvivesCrashAndExitChaosByteForByte) {
  const auto batch = small_campaign();
  const auto reference = reference_encodings(batch);

  ProcOptions options;
  options.workers = 3;
  options.chaos.crash_p = 0.25;
  options.chaos.exit_p = 0.25;
  // p(kill) = 0.5 per attempt: keep the quarantine threshold out of reach
  // so every job eventually lands (the quarantine path has its own test).
  options.max_crashes_per_job = 20;
  options.respawn_backoff_base_s = 0.01;
  options.respawn_backoff_cap_s = 0.05;
  Supervisor supervisor(42, options);
  core::CampaignEngineOptions eopt;
  eopt.executor = &supervisor;
  core::CampaignEngine engine(42, eopt);
  const auto results = engine.run_batch(batch);

  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(svc::encode_result(results[i]), reference[i]);
  }
  const auto stats = supervisor.stats();
  // With p(kill) = 0.5 per (job, attempt) over ~11 jobs the planned chaos
  // is deterministic in the seed; this asserts the plan actually fired.
  EXPECT_GT(stats.worker_crashes, 0u);
  EXPECT_EQ(stats.respawns, stats.worker_crashes);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(Supervisor, ReapsHungWorkersAndStillMatches) {
  const auto batch = small_campaign();
  const auto reference = reference_encodings(batch);

  ProcOptions options;
  options.workers = 2;
  options.chaos.hang_p = 0.3;
  options.max_crashes_per_job = 20;
  options.heartbeat_interval_s = 0.02;
  options.heartbeat_timeout_s = 0.25;
  options.respawn_backoff_base_s = 0.01;
  Supervisor supervisor(42, options);
  core::CampaignEngineOptions eopt;
  eopt.executor = &supervisor;
  core::CampaignEngine engine(42, eopt);
  const auto results = engine.run_batch(batch);

  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(svc::encode_result(results[i]), reference[i]);
  }
  const auto stats = supervisor.stats();
  EXPECT_GT(stats.hung_workers, 0u);
  // A hang stalls *mid-experiment* (after compute, before the shard
  // append), so the reaped worker's job is recomputed on a fresh attempt.
  EXPECT_GT(stats.redispatches, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(Supervisor, QuarantinesPoisonJobsAndCompletesTheCampaign) {
  ProcOptions options;
  options.workers = 2;
  options.chaos.crash_p = 1.0;  // every attempt of every job crashes
  options.max_crashes_per_job = 2;
  options.respawn_backoff_base_s = 0.01;
  options.respawn_backoff_cap_s = 0.02;
  Supervisor supervisor(42, options);
  core::CampaignEngineOptions eopt;
  eopt.executor = &supervisor;
  core::CampaignEngine engine(42, eopt);

  std::vector<core::Experiment> batch;
  for (int ranks : {8, 27}) {
    core::Experiment e;
    e.ranks = ranks;
    batch.push_back(e);
  }
  const auto results = engine.run_batch(batch);  // completes, no wedge
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& r : results) {
    EXPECT_FALSE(r.launched);
    EXPECT_NE(r.failure_reason.find("quarantined"), std::string::npos)
        << "got: " << r.failure_reason;
    EXPECT_NE(r.failure_reason.find("2 times"), std::string::npos)
        << "got: " << r.failure_reason;
  }
  const auto stats = supervisor.stats();
  EXPECT_EQ(stats.quarantined, batch.size());
  EXPECT_GE(stats.worker_crashes, 2u * batch.size());
}

TEST(Supervisor, HarvestsShardsFromAPreviousRun) {
  TempDir dir("proc_test_shards");
  const auto batch = small_campaign();
  const auto reference = reference_encodings(batch);

  ProcOptions options;
  options.workers = 2;
  options.shard_dir = dir.path;
  {
    Supervisor first(42, options);
    core::CampaignEngineOptions eopt;
    eopt.executor = &first;
    core::CampaignEngine engine(42, eopt);
    engine.run_batch(batch);
    EXPECT_GT(first.stats().jobs_dispatched, 0u);
  }
  // Same shard directory, fresh supervisor: every result must come from
  // the harvested shards, with nothing recomputed.
  Supervisor second(42, options);
  core::CampaignEngineOptions eopt;
  eopt.executor = &second;
  core::CampaignEngine engine(42, eopt);
  const auto results = engine.run_batch(batch);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(svc::encode_result(results[i]), reference[i]);
  }
  const auto stats = second.stats();
  EXPECT_EQ(stats.jobs_dispatched, 0u);
  EXPECT_GT(stats.shard_replays, 0u);
}

TEST(Supervisor, DestructionLeavesNoChildren) {
  {
    ProcOptions options;
    options.workers = 3;
    Supervisor supervisor(42, options);
    core::CampaignEngineOptions eopt;
    eopt.executor = &supervisor;
    core::CampaignEngine engine(42, eopt);
    core::Experiment e;
    engine.run(e);
  }
  // Everything reaped: no zombies, no stragglers.
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(Supervisor, RejectsNonsenseOptions) {
  ProcOptions bad;
  bad.workers = 0;
  EXPECT_THROW(Supervisor s(42, bad), Error);
  bad = ProcOptions{};
  bad.heartbeat_timeout_s = 0.0;
  EXPECT_THROW(Supervisor s(42, bad), Error);
  bad = ProcOptions{};
  bad.max_crashes_per_job = 0;
  EXPECT_THROW(Supervisor s(42, bad), Error);
}

}  // namespace
}  // namespace hetero::proc
