#pragma once

/// \file prop_util.hpp
/// Seed-deterministic generators and oracles for the property-based
/// numeric tests (la_prop_test.cpp). Every case is reproduced exactly by
/// its case number: the generator is a self-contained splitmix64, so a
/// failure report like "case 37" replays identically on any platform,
/// independent of the standard library's distribution implementations.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "la/csr_matrix.hpp"

namespace hetero::test {

/// splitmix64: tiny, fast, and fully specified by its seed.
class PropRng {
 public:
  explicit PropRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * u;
  }

  /// Uniform integer in [lo, hi] (inclusive; hi >= lo).
  int uniform_int(int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
  }

 private:
  std::uint64_t state_;
};

/// Random vector with entries in [lo, hi).
inline std::vector<double> random_vector(PropRng& rng, int n, double lo,
                                         double hi) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) {
    x = rng.uniform(lo, hi);
  }
  return v;
}

/// Random sparse matrix: every row gets 1..max_row_nnz entries at distinct
/// columns (always including the clamped diagonal, so no row is empty),
/// values in [lo, hi). Built through the same from_triplets path the
/// assembly uses, which sorts and merges duplicates.
inline la::CsrMatrix random_csr(PropRng& rng, int rows, int cols,
                                int max_row_nnz, double lo, double hi) {
  std::vector<la::Triplet> triplets;
  for (int i = 0; i < rows; ++i) {
    const int want = rng.uniform_int(1, max_row_nnz);
    triplets.push_back({i, std::min(i, cols - 1), rng.uniform(lo, hi)});
    for (int k = 1; k < want; ++k) {
      triplets.push_back({i, rng.uniform_int(0, cols - 1),
                          rng.uniform(lo, hi)});
    }
  }
  return la::CsrMatrix::from_triplets(rows, cols, triplets);
}

/// Dense triple-loop SpMV oracle: expands the matrix to dense storage and
/// accumulates every column in ascending order. CSR rows are column-sorted,
/// and adding the zero entries in between does not perturb the partial sums
/// (x + 0.0 == x), so this oracle reproduces the sparse kernel's exact
/// accumulation chain — the ULP budget only absorbs ±0 sign artifacts.
/// When `y0` is given, each row's chain starts from y0[i] (multiply_add).
inline std::vector<double> dense_spmv_oracle(
    const la::CsrMatrix& a, const std::vector<double>& x,
    const std::vector<double>* y0 = nullptr) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<double> dense(static_cast<std::size_t>(rows) *
                                static_cast<std::size_t>(cols),
                            0.0);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (int i = 0; i < rows; ++i) {
    for (auto k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])] =
          values[static_cast<std::size_t>(k)];
    }
  }
  std::vector<double> y(static_cast<std::size_t>(rows), 0.0);
  for (int i = 0; i < rows; ++i) {
    double acc = y0 ? (*y0)[static_cast<std::size_t>(i)] : 0.0;
    for (int j = 0; j < cols; ++j) {
      acc += dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols) +
                   static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

/// ULP distance between two finite doubles (0 when a == b, including
/// -0 vs +0). Monotone bit distance on the sign-magnitude number line.
inline std::uint64_t ulp_distance(double a, double b) {
  if (a == b) {
    return 0;
  }
  if (std::isnan(a) || std::isnan(b)) {
    return ~0ull;
  }
  auto to_ordered = [](double v) {
    std::int64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits < 0 ? std::int64_t(0x8000000000000000ull) - bits : bits;
  };
  const std::int64_t ia = to_ordered(a);
  const std::int64_t ib = to_ordered(b);
  return static_cast<std::uint64_t>(ia > ib ? ia - ib : ib - ia);
}

}  // namespace hetero::test
