// End-to-end integration tests cutting across module boundaries:
//   * the unstructured partitioner path feeding the distributed FEM stack,
//   * application checkpoint/restart across a rank-count change (the spot
//     instance elasticity scenario),
//   * the cloud-service-built topology driving a real direct run.

#include <gtest/gtest.h>

#include <cstdio>

#include "apps/ns_solver.hpp"
#include "apps/rd_solver.hpp"
#include "cloud/ec2_service.hpp"
#include "core/experiment.hpp"
#include "fem/bc.hpp"
#include "fem/error_norms.hpp"
#include "io/checkpoint.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/partitioner.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "solvers/krylov.hpp"

namespace hetero {
namespace {

/// Solves -lap(u) = 0 with a linear exact solution on a submesh produced
/// by the given element partition of a shared global mesh.
void run_partitioned_poisson(simmpi::Comm& comm,
                             const mesh::TetMesh& global,
                             const std::vector<int>& part, int order) {
  const auto sub = partition::extract_submesh(global, part, comm.rank());
  sub.validate();
  fem::FeSpace space(sub, order,
                     static_cast<std::int64_t>(global.vertex_count()));
  la::DistSystemBuilder builder(comm, space.dof_gids());
  fem::ElementKernel kernel(space, order == 1 ? 2 : 4);
  const int n = kernel.n();
  std::vector<double> ke(static_cast<std::size_t>(n * n));
  std::vector<la::GlobalId> gids(static_cast<std::size_t>(n));
  builder.begin_assembly();
  for (std::size_t t = 0; t < sub.tet_count(); ++t) {
    kernel.stiffness(t, ke);
    space.tet_dof_gids(t, gids);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        builder.add_matrix(gids[static_cast<std::size_t>(i)],
                           gids[static_cast<std::size_t>(j)],
                           ke[static_cast<std::size_t>(i * n + j)]);
      }
      builder.add_rhs(gids[static_cast<std::size_t>(i)], 0.0);
    }
  }
  builder.finalize(comm);
  auto exact = [](const mesh::Vec3& x) {
    return 2.0 * x.x - x.y + 0.5 * x.z + 1.0;
  };
  auto on_boundary = [](const mesh::Vec3& x) {
    const double eps = 1e-12;
    return x.x < eps || x.x > 1.0 - eps || x.y < eps || x.y > 1.0 - eps ||
           x.z < eps || x.z > 1.0 - eps;
  };
  const auto bc = fem::make_dirichlet(comm, space, builder.map(),
                                      builder.halo(), on_boundary, exact);
  la::DistVector x(builder.map());
  fem::apply_dirichlet(builder.matrix(), builder.rhs(), x, bc);
  solvers::Ilu0Preconditioner ilu;
  ilu.build(builder.matrix());
  solvers::SolverConfig config;
  config.rel_tolerance = 1e-12;
  config.max_iterations = 600;
  const auto report = solvers::cg_solve(comm, builder.matrix(), ilu,
                                        builder.rhs(), x, config);
  EXPECT_TRUE(report.converged);
  x.update_ghosts(comm, builder.halo());
  EXPECT_LT(fem::nodal_max_error(comm, space, builder.map(), x, exact),
            1e-8);
}

TEST(Integration, GreedyPartitionFeedsDistributedFem) {
  simmpi::Runtime rt(platform::lagrange().topology(4));
  rt.run([&](simmpi::Comm& comm) {
    // Every rank builds the same global mesh and the same deterministic
    // partition, then keeps only its elements — the ParMETIS workflow.
    const auto global = mesh::build_box_mesh({4, 4, 4});
    const auto graph = partition::build_dual_graph(global);
    const auto part = partition::partition_greedy(graph, comm.size());
    run_partitioned_poisson(comm, global, part, /*order=*/1);
  });
}

TEST(Integration, RcbPartitionFeedsDistributedFemP2) {
  simmpi::Runtime rt(platform::lagrange().topology(3));
  rt.run([&](simmpi::Comm& comm) {
    const auto global = mesh::build_box_mesh({3, 3, 3});
    const auto part = partition::partition_rcb(global, comm.size());
    run_partitioned_poisson(comm, global, part, /*order=*/2);
  });
}

TEST(Integration, ExtractSubmeshPreservesVolumeAndBoundary) {
  const auto global = mesh::build_box_mesh({4, 4, 4});
  const auto part = partition::partition_rcb(global, 5);
  double volume = 0.0;
  std::size_t tets = 0;
  for (int r = 0; r < 5; ++r) {
    const auto sub = partition::extract_submesh(global, part, r);
    sub.validate();
    volume += sub.metrics().total_volume;
    tets += sub.tet_count();
  }
  EXPECT_NEAR(volume, 1.0, 1e-12);
  EXPECT_EQ(tets, global.tet_count());
}

TEST(Integration, RdCheckpointRestartAcrossRankCounts) {
  const std::string path = "/tmp/heterolab_rd_restart.h5l";
  apps::RdConfig config;
  config.global_cells = 4;
  config.dt = 0.1;

  // Reference: 4 uninterrupted steps on 1 rank.
  double reference_error = 0.0;
  {
    simmpi::Runtime rt(platform::puma().topology(1));
    rt.run([&](simmpi::Comm& comm) {
      apps::RdSolver solver(comm, config);
      const auto records = solver.run(4);
      reference_error = records.back().nodal_error;
    });
  }

  // Run 2 steps on 1 rank, checkpoint both BDF levels.
  double t_at_checkpoint = 0.0;
  {
    simmpi::Runtime rt(platform::puma().topology(1));
    rt.run([&](simmpi::Comm& comm) {
      apps::RdSolver solver(comm, config);
      solver.run(2);
      t_at_checkpoint = solver.current_time();
      io::save_checkpoint(comm, solver.solution(), "u_now", path);
      io::save_checkpoint(comm, solver.previous_solution(), "u_prev",
                          path + ".prev");
    });
  }

  // Restart on 8 ranks (the assembly grew), run the remaining 2 steps.
  {
    simmpi::Runtime rt(platform::puma().topology(8));
    rt.run([&](simmpi::Comm& comm) {
      apps::RdSolver solver(comm, config);
      la::DistVector u_now(solver.map());
      la::DistVector u_prev(solver.map());
      io::load_checkpoint(comm, u_now, "u_now", path);
      io::load_checkpoint(comm, u_prev, "u_prev", path + ".prev");
      solver.restore_state(u_now, u_prev, t_at_checkpoint);
      const auto records = solver.run(2);
      // Same discrete trajectory: the exactness oracle must hold as if the
      // run had never been interrupted.
      EXPECT_NEAR(solver.current_time(), 1.0 + 4 * 0.1, 1e-12);
      EXPECT_LT(records.back().nodal_error, 1e-6);
      EXPECT_LT(std::fabs(records.back().nodal_error - reference_error),
                1e-6);
    });
  }
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(Integration, NsCheckpointRestartMatchesUninterruptedRun) {
  const std::string path = "/tmp/heterolab_ns_restart.h5l";
  apps::NsConfig config;
  config.global_cells = 3;
  config.dt = 2e-3;

  // Reference: 3 uninterrupted steps.
  double reference = 0.0;
  {
    simmpi::Runtime rt(platform::lagrange().topology(2));
    rt.run([&](simmpi::Comm& comm) {
      apps::NsSolver solver(comm, config);
      reference = solver.run(3).back().l2_error;
    });
  }
  // 2 steps, checkpoint, restart on a different rank count, 1 more step.
  double t_ckpt = 0.0;
  {
    simmpi::Runtime rt(platform::lagrange().topology(2));
    rt.run([&](simmpi::Comm& comm) {
      apps::NsSolver solver(comm, config);
      solver.run(2);
      t_ckpt = solver.current_time();
      io::save_checkpoint(comm, solver.state(), "x", path);
      io::save_checkpoint(comm, solver.previous_state(), "xp",
                          path + ".prev");
    });
  }
  {
    simmpi::Runtime rt(platform::lagrange().topology(4));
    rt.run([&](simmpi::Comm& comm) {
      apps::NsSolver solver(comm, config);
      la::DistVector x(solver.map());
      la::DistVector xp(solver.map());
      io::load_checkpoint(comm, x, "x", path);
      io::load_checkpoint(comm, xp, "xp", path + ".prev");
      solver.restore_state(x, xp, t_ckpt);
      const auto r = solver.run(1).back();
      EXPECT_TRUE(r.solver_converged);
      // Same discrete trajectory to solver tolerance.
      EXPECT_NEAR(r.l2_error, reference, 1e-5 + 0.01 * reference);
    });
  }
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(Integration, AbortInsideACollectivePropagates) {
  // One rank fails while the others sit inside an allreduce; the abort
  // must wake them and surface the original error, not hang.
  simmpi::Runtime rt(platform::puma().topology(4));
  try {
    rt.run([&](simmpi::Comm& comm) {
      if (comm.rank() == 2) {
        throw Error("injected failure before the collective");
      }
      comm.allreduce(1.0, simmpi::ReduceOp::kSum);  // waits for rank 2
    });
    FAIL() << "the injected failure should have propagated";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("injected failure") != std::string::npos ||
                what.find("aborted") != std::string::npos)
        << what;
  }
}

TEST(Integration, RunnerDirectModeHandlesNs) {
  core::ExperimentRunner runner(42);
  core::Experiment e;
  e.app = perf::AppKind::kNavierStokes;
  e.platform = "ec2";
  e.ranks = 1;
  e.mode = core::Mode::kDirect;
  e.cells_per_rank_axis = 3;
  e.direct_steps = 2;
  const auto r = runner.run(e);
  EXPECT_TRUE(r.launched);
  EXPECT_TRUE(r.solver_converged);
  EXPECT_GT(r.iteration.total_s, 0.0);
  EXPECT_LT(r.nodal_error, 0.5);
}

TEST(Integration, CloudAssemblyDrivesADirectRun) {
  // Instances from the EC2 simulator define the topology of a real
  // (thread-level) run of the RD application.
  cloud::Ec2Service service(9);
  service.authorize_intranet_tcp();
  const int group = service.create_placement_group("direct");
  const auto launch = service.request_on_demand("cc2.8xlarge", 1, group);
  const auto topo = service.assembly_topology(launch.instances, 8, 0.02);

  simmpi::Runtime rt(topo);
  rt.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = 4;
    config.cpu = platform::ec2().cpu_model();
    apps::RdSolver solver(comm, config);
    const auto r = solver.step();
    EXPECT_TRUE(r.solver_converged);
    EXPECT_LT(r.nodal_error, 1e-6);
  });
  // Bill the hour and shut the assembly down.
  service.advance(600.0);
  EXPECT_NEAR(service.billed_usd(), 2.40, 1e-9);
  service.terminate(launch.instances);
}

}  // namespace
}  // namespace hetero
