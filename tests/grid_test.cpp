// Tests for the grid-benchmark matrix: exact cross-product expansion,
// seed-stability of the calm core, cache-key injectivity modulo the
// objective axis, and the differential contract of the standing report —
// byte-identical across jobs levels, across the in-process and
// multi-process backends, across a cold store replay, and across a
// mid-run SIGTERM plus resume.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"
#include "grid/matrix.hpp"
#include "grid/report.hpp"
#include "proc/supervisor.hpp"
#include "support/error.hpp"
#include "svc/memo_store.hpp"
#include "svc/result_codec.hpp"

namespace hetero::grid {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) : path("/tmp/" + name) {
    std::string cmd = "rm -rf " + path;
    std::system(cmd.c_str());
    ::mkdir(path.c_str(), 0755);
  }
  ~TempDir() {
    std::string cmd = "rm -rf " + path;
    std::system(cmd.c_str());
  }
};

/// The 200-cell sampled sub-matrix every differential case runs.
MatrixSpec differential_spec() {
  MatrixSpec spec = preset("full");
  spec.sample_cells = 200;
  return spec;
}

/// Evaluates the spec through `engine` and renders the report lines.
std::vector<std::string> report_lines(const MatrixSpec& spec,
                                      core::CampaignEngine& engine,
                                      const GridRunOptions& options = {}) {
  const auto cells = expand(spec);
  const auto results = run_cells(engine, cells, options);
  std::vector<std::string> lines;
  for (const auto& record :
       build_report(spec, cells, results, kGridRunnerSeed)) {
    lines.push_back(record.dump());
  }
  return lines;
}

std::vector<std::string> reference_lines(const MatrixSpec& spec) {
  core::CampaignEngine engine(kGridRunnerSeed, {.jobs = 1});
  return report_lines(spec, engine);
}

/// Axis coordinates without the objective (cells differing only in
/// objective share one experiment descriptor).
using CellCoord = std::tuple<std::string, int, std::string, int, std::string,
                             std::string, int>;

CellCoord coord_modulo_objective(const GridCell& cell) {
  return {cell.platform, cell.ranks,   cell.app_pair, cell.resolution,
          cell.fault,    cell.skewlb,  cell.rep};
}

TEST(Matrix, CardinalityIsTheExactCrossProduct) {
  const MatrixSpec spec = preset("full");
  const auto cells = expand(spec);
  EXPECT_EQ(cardinality(spec.axes), 5LL * 10 * 3 * 2 * 3 * 3 * 3 * 2);
  ASSERT_EQ(static_cast<std::int64_t>(cells.size()), cardinality(spec.axes));
  // Indices dense and in order; labels unique (no duplicate descriptors).
  std::set<std::string> labels;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<std::int64_t>(i));
    EXPECT_TRUE(labels.insert(cell_label(cells[i])).second)
        << "duplicate cell " << cell_label(cells[i]);
  }
}

TEST(Matrix, ExpansionIsSeedStable) {
  for (const char* name : {"full", "ci", "smoke"}) {
    const MatrixSpec spec = preset(name);
    const auto a = expand(spec);
    const auto b = expand(spec);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(cell_label(a[i]), cell_label(b[i]));
      EXPECT_EQ(a[i].experiment.seed, b[i].experiment.seed);
    }
  }
}

TEST(Matrix, SamplesKeepEveryAnchorCell) {
  // Anchors: calm rd/p2 c20 time rep0 — one per (platform, ranks), and
  // every preset keeps all 50 so reports stay comparable across presets.
  for (const char* name : {"ci", "smoke"}) {
    const auto cells = expand(preset(name));
    int anchors = 0;
    for (const auto& cell : cells) {
      if (cell.fault == "calm" && cell.skewlb == "calm" && cell.rep == 0 &&
          cell.app_pair == "rd/p2" && cell.resolution == 20 &&
          cell.objective == "time") {
        ++anchors;
      }
    }
    EXPECT_EQ(anchors, 5 * 10) << name;
  }
}

TEST(Matrix, PresetRejectsUnknownNames) {
  EXPECT_THROW(preset("fulll"), Error);
  try {
    preset("nightly");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(),
                 "unknown --matrix preset: nightly (expected full|ci|smoke)");
  }
}

TEST(Matrix, SampleLargerThanCardinalityThrows) {
  MatrixSpec spec = preset("full");
  spec.sample_cells = cardinality(spec.axes) + 1;
  EXPECT_THROW(expand(spec), Error);
}

TEST(Matrix, CacheKeyInjectiveModuloObjective) {
  // Over a 1000-cell sample: cells sharing coordinates-minus-objective
  // share one cache key (objectives re-score one computed result), and
  // distinct coordinates never collide.
  MatrixSpec spec = preset("full");
  spec.sample_cells = 1000;
  const auto cells = expand(spec);
  std::map<std::string, std::set<CellCoord>> by_key;
  std::map<CellCoord, std::set<std::string>> by_coord;
  for (const auto& cell : cells) {
    const std::string key =
        core::experiment_cache_key(cell.experiment, kGridRunnerSeed);
    by_key[key].insert(coord_modulo_objective(cell));
    by_coord[coord_modulo_objective(cell)].insert(key);
  }
  for (const auto& [key, coords] : by_key) {
    EXPECT_EQ(coords.size(), 1u) << "cache key collides across cells: " << key;
  }
  for (const auto& [coord, keys] : by_coord) {
    EXPECT_EQ(keys.size(), 1u) << "one cell maps to several cache keys";
  }
  EXPECT_EQ(by_key.size(), by_coord.size());
}

TEST(Matrix, SeedPerturbationMovesEveryStochasticCellAndNoCalmCell) {
  MatrixSpec base = preset("full");
  MatrixSpec perturbed = base;
  perturbed.matrix_seed = 43;
  const auto a = expand(base);
  const auto b = expand(perturbed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stochastic, b[i].stochastic);
    if (a[i].stochastic) {
      EXPECT_NE(a[i].experiment.seed, b[i].experiment.seed)
          << "stochastic cell pinned across matrix seeds: "
          << cell_label(a[i]);
    } else {
      EXPECT_EQ(a[i].experiment.seed, b[i].experiment.seed)
          << "calm cell moved with the matrix seed: " << cell_label(a[i]);
    }
  }
}

TEST(Matrix, BalancedTwinSharesItsSkewDraws) {
  // The balanced projection must re-score the *same* lottery, so its seed
  // (and everything else but the balance flag) matches its unbalanced twin.
  const auto cells = expand(preset("full"));
  std::map<CellCoord, const GridCell*> skewed;
  for (const auto& cell : cells) {
    if (cell.skewlb == "skew" && cell.objective == "time") {
      CellCoord c = coord_modulo_objective(cell);
      std::get<5>(c) = "skew-balanced";
      skewed[c] = &cell;
    }
  }
  int pairs = 0;
  for (const auto& cell : cells) {
    if (cell.skewlb != "skew-balanced" || cell.objective != "time") continue;
    const auto it = skewed.find(coord_modulo_objective(cell));
    ASSERT_NE(it, skewed.end()) << cell_label(cell);
    EXPECT_EQ(cell.experiment.seed, it->second->experiment.seed);
    EXPECT_TRUE(cell.experiment.skew_assume_balanced);
    EXPECT_FALSE(it->second->experiment.skew_assume_balanced);
    ++pairs;
  }
  EXPECT_GT(pairs, 0);
}

TEST(Experiment, TaylorHoodModelsHeavierThanEqualOrder) {
  core::Experiment p1p1;
  p1p1.platform = "ec2";
  p1p1.ranks = 64;
  p1p1.app = perf::AppKind::kNavierStokes;
  core::Experiment p2p1 = p1p1;
  p2p1.element_order = 2;
  core::ExperimentRunner runner(kGridRunnerSeed);
  const auto base = runner.run(p1p1);
  const auto th = runner.run(p2p1);
  ASSERT_TRUE(base.launched && th.launched);
  EXPECT_GT(th.iteration.total_s, base.iteration.total_s)
      << "the Taylor-Hood velocity space carries ~8x the velocity DoFs";
}

TEST(Experiment, TaylorHoodRequiresNavierStokes) {
  core::Experiment e;
  e.platform = "puma";
  e.ranks = 8;
  e.app = perf::AppKind::kReactionDiffusion;
  e.element_order = 2;
  core::ExperimentRunner runner(kGridRunnerSeed);
  try {
    runner.run(e);
    FAIL() << "order-2 reaction-diffusion must be rejected";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find(
                  "the Taylor-Hood pair applies to the Navier-Stokes app "
                  "only (reaction-diffusion is a fixed P2 scalar "
                  "discretization)"),
              std::string::npos)
        << err.what();
  }
}

TEST(Report, ByteIdenticalAcrossJobsLevels) {
  const MatrixSpec spec = differential_spec();
  const auto reference = reference_lines(spec);
  core::CampaignEngine parallel(kGridRunnerSeed, {.jobs = 8});
  EXPECT_EQ(report_lines(spec, parallel), reference);
}

TEST(Report, ByteIdenticalAcrossProcessBackends) {
  const MatrixSpec spec = differential_spec();
  // Fork the worker pool before the reference engine spins up its thread
  // pool (fork-after-threads deadlocks).
  proc::ProcOptions popt;
  popt.workers = 4;
  proc::Supervisor supervisor(kGridRunnerSeed, popt);
  const auto reference = reference_lines(spec);
  core::CampaignEngineOptions opt;
  opt.executor = &supervisor;
  core::CampaignEngine engine(kGridRunnerSeed, opt);
  EXPECT_EQ(report_lines(spec, engine), reference);
  EXPECT_GT(supervisor.stats().jobs_dispatched, 0u);
}

TEST(Report, ColdStoreReplayIsByteIdentical) {
  const MatrixSpec spec = differential_spec();
  const auto reference = reference_lines(spec);
  TempDir dir("grid_test_store");
  const std::string path = dir.path + "/memo.log";
  {
    svc::MemoStore store(path);
    svc::MemoResultStore adapter(store);
    core::CampaignEngineOptions opt;
    opt.jobs = 1;
    opt.result_store = &adapter;
    core::CampaignEngine engine(kGridRunnerSeed, opt);
    EXPECT_EQ(report_lines(spec, engine), reference);
    EXPECT_EQ(engine.stats().store_hits, 0u);
  }
  // A cold process replays every unique experiment from disk: no compute.
  svc::MemoStore store(path);
  svc::MemoResultStore adapter(store);
  core::CampaignEngineOptions opt;
  opt.jobs = 1;
  opt.result_store = &adapter;
  core::CampaignEngine engine(kGridRunnerSeed, opt);
  EXPECT_EQ(report_lines(spec, engine), reference);
  EXPECT_EQ(engine.stats().store_hits, engine.stats().cache_misses);
  EXPECT_EQ(engine.stats().jobs_run, 0u);
}

TEST(Report, SigtermMidRunThenResumeIsByteIdentical) {
  const MatrixSpec spec = differential_spec();
  const auto reference = reference_lines(spec);
  TempDir dir("grid_test_resume");
  const std::string path = dir.path + "/memo.log";

  // Child: run the grid against the store and die by SIGTERM after two of
  // the eight 25-cell shards. The store's appends go straight to the fd,
  // so the finished shards survive the kill.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    svc::MemoStore store(path);
    svc::MemoResultStore adapter(store);
    core::CampaignEngineOptions opt;
    opt.jobs = 1;
    opt.result_store = &adapter;
    core::CampaignEngine engine(kGridRunnerSeed, opt);
    GridRunOptions run;
    run.shard_size = 25;
    run.abort_after_shards = 2;
    report_lines(spec, engine, run);
    ::_exit(7);  // unreachable: the abort hook must have killed us
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  // Resume against the same store: finished shards replay from disk, the
  // rest compute, and the final report matches the uninterrupted one.
  svc::MemoStore store(path);
  ASSERT_GT(store.size(), 0u) << "no shard survived the kill";
  svc::MemoResultStore adapter(store);
  core::CampaignEngineOptions opt;
  opt.jobs = 1;
  opt.result_store = &adapter;
  core::CampaignEngine engine(kGridRunnerSeed, opt);
  EXPECT_EQ(report_lines(spec, engine), reference);
  EXPECT_GT(engine.stats().store_hits, 0u);
  EXPECT_LT(engine.stats().jobs_run, engine.stats().cache_misses);
}

TEST(Report, BalancedNeverModelsSlowerThanUnbalanced) {
  MatrixSpec spec = preset("full");
  spec.sample_cells = 400;
  const auto cells = expand(spec);
  core::CampaignEngine engine(kGridRunnerSeed);
  const auto results = run_cells(engine, cells);
  std::map<CellCoord, double> unbalanced;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].skewlb == "skew" && results[i].launched) {
      CellCoord c = coord_modulo_objective(cells[i]);
      std::get<5>(c) = "skew-balanced";
      unbalanced[c] = results[i].iteration.total_s;
    }
  }
  int compared = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].skewlb != "skew-balanced" || !results[i].launched) continue;
    const auto it = unbalanced.find(coord_modulo_objective(cells[i]));
    if (it == unbalanced.end()) continue;  // twin not in the sample
    EXPECT_LE(results[i].iteration.total_s, it->second * (1.0 + 1e-9))
        << cell_label(cells[i]);
    ++compared;
  }
  EXPECT_GT(compared, 0) << "sample carried no launched twin pairs";
}

}  // namespace
}  // namespace hetero::grid
