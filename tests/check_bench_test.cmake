# Regression suite for tools/check_bench.py --schema grid: hand-built
# fixture reports exercise every cross-cell invariant (stream order, cell
# ids, capability/summary tallies, frontier non-domination, the
# balanced<=unbalanced rule), the --against differential gates, the
# count/forall baseline check types, and the malformed-baseline KeyError
# path (which used to traceback in svc mode instead of failing cleanly).
# Every invocation also asserts the validator never leaks a Python
# traceback — failures are diagnoses, not crashes.
# Run via: cmake -DPYTHON=<python3> -DCHECK_BENCH=<check_bench.py>
#               -DWORK_DIR=<scratch dir> -P check_bench_test.cmake

foreach(var PYTHON CHECK_BENCH WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_pass label)
  execute_process(
    COMMAND ${PYTHON} ${CHECK_BENCH} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(err MATCHES "Traceback")
    message(FATAL_ERROR "${label}: validator crashed:\n${err}")
  endif()
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${label}: expected PASS, rc=${rc}\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

function(expect_fail label pattern)
  execute_process(
    COMMAND ${PYTHON} ${CHECK_BENCH} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(err MATCHES "Traceback")
    message(FATAL_ERROR "${label}: validator crashed:\n${err}")
  endif()
  if(rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected FAIL, got PASS\nstdout: ${out}")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR
      "${label}: stderr should diagnose '${pattern}'; got: ${err}")
  endif()
endfunction()

# --- the fixture report ------------------------------------------------------
# Four cells on two platforms: a calm anchor, a skew/skew-balanced twin
# pair (20 s vs 15 s), and a capability failure. One frontier point, tallies
# consistent. Mutations below each break exactly one invariant.

set(S "\"schema\":\"heterolab-grid-v1\"")
set(HDR "{${S},\"type\":\"header\",\"matrix\":\"custom\",\"matrix_seed\":\"0x000000000000002a\",\"iterations\":100,\"cardinality\":8,\"cells\":4,\"sampled\":true,\"axes\":{}}")
set(C0 "{${S},\"type\":\"cell\",\"cell\":0,\"label\":\"puma/8/rd-p2/c20/calm/calm/time/r0\",\"platform\":\"puma\",\"ranks\":8,\"app_pair\":\"rd/p2\",\"resolution\":20,\"fault\":\"calm\",\"skewlb\":\"calm\",\"objective\":\"time\",\"rep\":0,\"stochastic\":false,\"seed\":\"0x2a\",\"launched\":true,\"queue_wait_s\":1.0,\"total_s\":10.0,\"cost_usd\":1.0,\"skew_imbalance\":1.0,\"run_s\":1000.0,\"effective_s\":1001.0,\"score\":1000.0}")
set(C1 "{${S},\"type\":\"cell\",\"cell\":1,\"label\":\"puma/8/rd-p2/c20/calm/skew/time/r0\",\"platform\":\"puma\",\"ranks\":8,\"app_pair\":\"rd/p2\",\"resolution\":20,\"fault\":\"calm\",\"skewlb\":\"skew\",\"objective\":\"time\",\"rep\":0,\"stochastic\":true,\"seed\":\"0x91\",\"launched\":true,\"queue_wait_s\":1.0,\"total_s\":20.0,\"cost_usd\":2.0,\"skew_imbalance\":1.8,\"run_s\":2000.0,\"effective_s\":2001.0,\"score\":2000.0}")
set(C2 "{${S},\"type\":\"cell\",\"cell\":2,\"label\":\"puma/8/rd-p2/c20/calm/skew-balanced/time/r0\",\"platform\":\"puma\",\"ranks\":8,\"app_pair\":\"rd/p2\",\"resolution\":20,\"fault\":\"calm\",\"skewlb\":\"skew-balanced\",\"objective\":\"time\",\"rep\":0,\"stochastic\":true,\"seed\":\"0x91\",\"launched\":true,\"queue_wait_s\":1.0,\"total_s\":15.0,\"cost_usd\":1.5,\"skew_imbalance\":1.8,\"run_s\":1500.0,\"effective_s\":1501.0,\"score\":1500.0}")
set(C3 "{${S},\"type\":\"cell\",\"cell\":3,\"label\":\"ec2/512/rd-p2/c20/calm/calm/cost/r0\",\"platform\":\"ec2\",\"ranks\":512,\"app_pair\":\"rd/p2\",\"resolution\":20,\"fault\":\"calm\",\"skewlb\":\"calm\",\"objective\":\"cost\",\"rep\":0,\"stochastic\":false,\"seed\":\"0x2a\",\"launched\":false,\"failure_reason\":\"insufficient capacity\",\"total_s\":null,\"cost_usd\":null,\"score\":null}")
set(CAP_PUMA "{${S},\"type\":\"capability\",\"platform\":\"puma\",\"cells\":3,\"launched\":3,\"failed\":0,\"max_launched_ranks\":8,\"reasons\":[]}")
set(CAP_EC2 "{${S},\"type\":\"capability\",\"platform\":\"ec2\",\"cells\":1,\"launched\":0,\"failed\":1,\"max_launched_ranks\":0,\"reasons\":[\"insufficient capacity\"]}")
set(FR0 "{${S},\"type\":\"frontier\",\"app_pair\":\"rd/p2\",\"seq\":0,\"cell\":0,\"platform\":\"puma\",\"ranks\":8,\"time_s\":10.0,\"cost_usd\":1.0}")
set(SUM "{${S},\"type\":\"summary\",\"cells\":4,\"launched\":3,\"failed\":1,\"stochastic_cells\":2,\"calm_cells\":2,\"unique_experiments\":4,\"frontier_points\":1}")

function(write_report path)
  set(content "")
  foreach(line ${ARGN})
    string(APPEND content "${${line}}\n")
  endforeach()
  file(WRITE ${path} "${content}")
endfunction()

write_report(${WORK_DIR}/good.jsonl
  HDR C0 C1 C2 C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_pass("good report" ${WORK_DIR}/good.jsonl --schema grid)

# Missing header: the stream contract is order-anchored on it.
write_report(${WORK_DIR}/noheader.jsonl
  C0 C1 C2 C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_fail("missing header" "must start with exactly one header"
  ${WORK_DIR}/noheader.jsonl --schema grid)

# Duplicate cell id (cell 1 relabeled as 0).
string(REPLACE "\"cell\":1," "\"cell\":0," C1_DUP "${C1}")
write_report(${WORK_DIR}/dup.jsonl
  HDR C0 C1_DUP C2 C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_fail("duplicate cell id" "strictly increasing"
  ${WORK_DIR}/dup.jsonl --schema grid)

# A required cell key dropped.
string(REPLACE "\"seed\":\"0x2a\"," "" C0_NOSEED "${C0}")
write_report(${WORK_DIR}/noseed.jsonl
  HDR C0_NOSEED C1 C2 C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_fail("missing cell key" "cell record missing 'seed'"
  ${WORK_DIR}/noseed.jsonl --schema grid)

# Stochastic flag contradicting the axes (a skew cell claiming calm).
string(REPLACE "\"stochastic\":true" "\"stochastic\":false" C1_FLAG "${C1}")
write_report(${WORK_DIR}/stochflag.jsonl
  HDR C0 C1_FLAG C2 C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_fail("stochastic flag" "contradicts the axes"
  ${WORK_DIR}/stochflag.jsonl --schema grid)

# A failed cell carrying numbers instead of nulls.
string(REPLACE "\"total_s\":null" "\"total_s\":5.0" C3_NUM "${C3}")
write_report(${WORK_DIR}/failedshape.jsonl
  HDR C0 C1 C2 C3_NUM CAP_PUMA CAP_EC2 FR0 SUM)
expect_fail("failed cell shape" "must be null"
  ${WORK_DIR}/failedshape.jsonl --schema grid)

# Balanced twin modeled slower than its bulk-synchronous twin.
string(REPLACE "\"total_s\":15.0" "\"total_s\":25.0" C2_SLOW "${C2}")
write_report(${WORK_DIR}/balance.jsonl
  HDR C0 C1 C2_SLOW C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_fail("balanced slower" "exceeds its unbalanced twin"
  ${WORK_DIR}/balance.jsonl --schema grid)

# Capability tally out of step with the cell records.
string(REPLACE "\"launched\":3" "\"launched\":2" CAP_BAD "${CAP_PUMA}")
write_report(${WORK_DIR}/capbad.jsonl
  HDR C0 C1 C2 C3 CAP_BAD CAP_EC2 FR0 SUM)
expect_fail("capability tally" "cell records say 3"
  ${WORK_DIR}/capbad.jsonl --schema grid)

# Summary tally out of step.
string(REPLACE "\"launched\":3" "\"launched\":2" SUM_BAD "${SUM}")
write_report(${WORK_DIR}/sumbad.jsonl
  HDR C0 C1 C2 C3 CAP_PUMA CAP_EC2 FR0 SUM_BAD)
expect_fail("summary tally" "summary launched = 2"
  ${WORK_DIR}/sumbad.jsonl --schema grid)

# A dominated frontier point: cell 3 now launches (12 s, \$2) and joins the
# frontier, but cell 0 (10 s, \$1) dominates it.
set(C3_OK "{${S},\"type\":\"cell\",\"cell\":3,\"label\":\"ec2/512/rd-p2/c20/calm/calm/cost/r0\",\"platform\":\"ec2\",\"ranks\":512,\"app_pair\":\"rd/p2\",\"resolution\":20,\"fault\":\"calm\",\"skewlb\":\"calm\",\"objective\":\"cost\",\"rep\":0,\"stochastic\":false,\"seed\":\"0x2a\",\"launched\":true,\"queue_wait_s\":2.0,\"total_s\":12.0,\"cost_usd\":2.0,\"skew_imbalance\":1.0,\"run_s\":1200.0,\"effective_s\":1202.0,\"score\":200.0}")
set(CAP_EC2_OK "{${S},\"type\":\"capability\",\"platform\":\"ec2\",\"cells\":1,\"launched\":1,\"failed\":0,\"max_launched_ranks\":512,\"reasons\":[]}")
set(FR1 "{${S},\"type\":\"frontier\",\"app_pair\":\"rd/p2\",\"seq\":1,\"cell\":3,\"platform\":\"ec2\",\"ranks\":512,\"time_s\":12.0,\"cost_usd\":2.0}")
set(SUM_FR "{${S},\"type\":\"summary\",\"cells\":4,\"launched\":4,\"failed\":0,\"stochastic_cells\":2,\"calm_cells\":2,\"unique_experiments\":4,\"frontier_points\":2}")
write_report(${WORK_DIR}/dominated.jsonl
  HDR C0 C1 C2 C3_OK CAP_PUMA CAP_EC2_OK FR0 FR1 SUM_FR)
expect_fail("dominated frontier" "dominated"
  ${WORK_DIR}/dominated.jsonl --schema grid)

# --- the --against differential gates ----------------------------------------

# A report is always byte-identical to itself.
expect_pass("against self" ${WORK_DIR}/good.jsonl --schema grid
  --against ${WORK_DIR}/good.jsonl)

# A calm cell drifting between runs is the cardinal sin.
string(REPLACE "\"total_s\":10.0" "\"total_s\":10.5" C0_DRIFT "${C0}")
string(REPLACE "\"time_s\":10.0" "\"time_s\":10.5" FR0_DRIFT "${FR0}")
write_report(${WORK_DIR}/calmdrift.jsonl
  HDR C0_DRIFT C1 C2 C3 CAP_PUMA CAP_EC2 FR0_DRIFT SUM)
expect_fail("calm drift" "calm cell drifted"
  ${WORK_DIR}/calmdrift.jsonl --schema grid
  --against ${WORK_DIR}/good.jsonl)

# Identical stochastic cells under --expect-stochastic-drift mean the
# matrix seed never reached them.
expect_fail("no stochastic drift" "byte-identical across perturbed"
  ${WORK_DIR}/good.jsonl --schema grid
  --against ${WORK_DIR}/good.jsonl --expect-stochastic-drift)

# A genuinely re-seeded report: stochastic cells moved, calm cells did not.
string(REPLACE "\"total_s\":20.0" "\"total_s\":19.0" C1_SEEDED "${C1}")
string(REPLACE "\"total_s\":15.0" "\"total_s\":14.0" C2_SEEDED "${C2}")
write_report(${WORK_DIR}/reseeded.jsonl
  HDR C0 C1_SEEDED C2_SEEDED C3 CAP_PUMA CAP_EC2 FR0 SUM)
expect_pass("stochastic drift" ${WORK_DIR}/reseeded.jsonl --schema grid
  --against ${WORK_DIR}/good.jsonl --expect-stochastic-drift)

# The flag pair is grid-only and ordered.
expect_fail("against needs grid" "apply to --schema grid"
  ${WORK_DIR}/good.jsonl --schema svc --against ${WORK_DIR}/good.jsonl)

# --- count / forall baseline checks ------------------------------------------

file(WRITE ${WORK_DIR}/count_ok.json
  "{\"checks\":[{\"type\":\"count\",\"match\":{\"type\":\"cell\"},\"min\":4,\"max\":4}]}")
expect_pass("count ok" ${WORK_DIR}/good.jsonl --schema grid
  --baseline ${WORK_DIR}/count_ok.json)

file(WRITE ${WORK_DIR}/count_bad.json
  "{\"checks\":[{\"type\":\"count\",\"match\":{\"type\":\"cell\"},\"min\":5}]}")
expect_fail("count short" "count" ${WORK_DIR}/good.jsonl --schema grid
  --baseline ${WORK_DIR}/count_bad.json)

file(WRITE ${WORK_DIR}/forall_bad.json
  "{\"checks\":[{\"type\":\"forall\",\"match\":{\"type\":\"cell\",\"launched\":true},\"field\":\"total_s\",\"min\":12.0}]}")
expect_fail("forall floor" "total_s" ${WORK_DIR}/good.jsonl --schema grid
  --baseline ${WORK_DIR}/forall_bad.json)

# A forall matching nothing must fail, not silently hold.
file(WRITE ${WORK_DIR}/forall_vacuous.json
  "{\"checks\":[{\"type\":\"forall\",\"match\":{\"platform\":\"nowhere\"},\"field\":\"total_s\",\"min\":0.0}]}")
expect_fail("vacuous forall" "vacuous" ${WORK_DIR}/good.jsonl --schema grid
  --baseline ${WORK_DIR}/forall_vacuous.json)

# --- malformed baselines fail cleanly, in every schema mode ------------------
# (the svc path used to raise a bare KeyError traceback here)

file(WRITE ${WORK_DIR}/nofield.json
  "{\"checks\":[{\"type\":\"value\",\"match\":{\"type\":\"header\"}}]}")
expect_fail("grid baseline missing key" "baseline missing key"
  ${WORK_DIR}/good.jsonl --schema grid
  --baseline ${WORK_DIR}/nofield.json)

file(WRITE ${WORK_DIR}/svc_min.jsonl
  "{\"schema\":\"heterolab-svc-v1\",\"type\":\"pong\",\"id\":1}\n{\"schema\":\"heterolab-svc-v1\",\"type\":\"bye\",\"id\":2,\"served\":1}\n")
expect_pass("svc fixture sane" ${WORK_DIR}/svc_min.jsonl --schema svc)
file(WRITE ${WORK_DIR}/svc_nofield.json
  "{\"checks\":[{\"type\":\"value\",\"match\":{\"type\":\"pong\"}}]}")
expect_fail("svc baseline missing key" "baseline missing key"
  ${WORK_DIR}/svc_min.jsonl --schema svc
  --baseline ${WORK_DIR}/svc_nofield.json)

message(STATUS "check_bench_test passed")
