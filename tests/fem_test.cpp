// Tests for the FEM layer: quadrature, shape functions, element kernels,
// dof spaces, boundary conditions, and full distributed Poisson solves with
// analytic oracles.

#include <gtest/gtest.h>

#include <cmath>

#include "fem/assembler.hpp"
#include "fem/bc.hpp"
#include "fem/bdf.hpp"
#include "fem/boundary.hpp"
#include "fem/error_norms.hpp"
#include "fem/fe_space.hpp"
#include "fem/reference.hpp"
#include "mesh/box_mesh.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"
#include "solvers/krylov.hpp"

namespace hetero::fem {
namespace {

simmpi::Runtime make_runtime(int ranks) {
  return simmpi::Runtime(netsim::Topology::uniform(
      ranks, 4, netsim::Fabric::infiniband_ddr_4x(),
      netsim::Fabric::shared_memory()));
}

double factorial(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) {
    f *= i;
  }
  return f;
}

/// Exact integral of x^a y^b z^c over the reference tetrahedron.
double monomial_integral(int a, int b, int c) {
  return factorial(a) * factorial(b) * factorial(c) /
         factorial(a + b + c + 3);
}

struct Monomial {
  int degree;
  int a, b, c;
};

class QuadratureExactness : public ::testing::TestWithParam<Monomial> {};

TEST_P(QuadratureExactness, IntegratesMonomialExactly) {
  const auto [degree, a, b, c] = GetParam();
  const auto& rule = tet_quadrature(degree);
  double sum = 0.0;
  for (const auto& qp : rule) {
    sum += qp.weight * std::pow(qp.xi.x, a) * std::pow(qp.xi.y, b) *
           std::pow(qp.xi.z, c);
  }
  EXPECT_NEAR(sum, monomial_integral(a, b, c), 1e-12)
      << "degree " << degree << " monomial " << a << b << c;
}

INSTANTIATE_TEST_SUITE_P(
    AllDegrees, QuadratureExactness,
    ::testing::Values(
        Monomial{1, 0, 0, 0}, Monomial{1, 1, 0, 0},
        Monomial{2, 2, 0, 0}, Monomial{2, 1, 1, 0},
        Monomial{3, 3, 0, 0}, Monomial{3, 1, 1, 1}, Monomial{3, 2, 1, 0},
        Monomial{4, 4, 0, 0}, Monomial{4, 2, 2, 0}, Monomial{4, 2, 1, 1},
        Monomial{4, 3, 1, 0}));

TEST(Quadrature, WeightsSumToReferenceVolume) {
  for (int degree = 1; degree <= 4; ++degree) {
    double sum = 0.0;
    for (const auto& qp : tet_quadrature(degree)) {
      sum += qp.weight;
    }
    EXPECT_NEAR(sum, 1.0 / 6.0, 1e-12) << "degree " << degree;
  }
  EXPECT_THROW(tet_quadrature(5), Error);
}

TEST(ShapeFunctions, PartitionOfUnity) {
  const mesh::Vec3 pts[] = {{0.1, 0.2, 0.3}, {0.25, 0.25, 0.25},
                            {0.0, 0.0, 0.0}, {0.6, 0.1, 0.2}};
  for (const auto& xi : pts) {
    double s1 = 0.0;
    for (double v : p1_values(xi)) {
      s1 += v;
    }
    EXPECT_NEAR(s1, 1.0, 1e-14);
    double s2 = 0.0;
    for (double v : p2_values(xi)) {
      s2 += v;
    }
    EXPECT_NEAR(s2, 1.0, 1e-14);
    // Gradients of a partition of unity sum to zero.
    mesh::Vec3 g2;
    for (const auto& g : p2_gradients(xi)) {
      g2 = g2 + g;
    }
    EXPECT_NEAR(g2.norm(), 0.0, 1e-13);
  }
}

TEST(ShapeFunctions, P2KroneckerAtNodes) {
  // Nodes: 4 vertices then 6 edge midpoints (canonical edge order).
  std::vector<mesh::Vec3> nodes = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const mesh::Vec3 verts[] = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (const auto& e : mesh::kTetEdgeVertices) {
    nodes.push_back(mesh::midpoint(verts[e[0]], verts[e[1]]));
  }
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const auto v = p2_values(nodes[n]);
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(v[i], i == n ? 1.0 : 0.0, 1e-13)
          << "shape " << i << " at node " << n;
    }
  }
}

TEST(TetGeometry, ReferenceTetIsIdentityMap) {
  mesh::TetMesh ref({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                    {{0, 1, 2, 3}});
  const auto geo = TetGeometry::compute(ref, 0);
  EXPECT_NEAR(geo.det, 1.0, 1e-14);
  const mesh::Vec3 g{1.0, 2.0, 3.0};
  const auto pg = geo.physical_grad(g);
  EXPECT_NEAR(pg.x, 1.0, 1e-14);
  EXPECT_NEAR(pg.y, 2.0, 1e-14);
  EXPECT_NEAR(pg.z, 3.0, 1e-14);
  const auto p = geo.map_point({0.2, 0.3, 0.4});
  EXPECT_NEAR(p.x, 0.2, 1e-14);
  EXPECT_NEAR(p.y, 0.3, 1e-14);
  EXPECT_NEAR(p.z, 0.4, 1e-14);
}

TEST(ElementKernel, P1MassMatrixKnownValues) {
  // For any tet of volume V: M_ii = V/10, M_ij = V/20.
  mesh::TetMesh ref({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                    {{0, 1, 2, 3}});
  FeSpace space(ref, 1, 4);
  ElementKernel kernel(space, 2);
  std::vector<double> m(16);
  kernel.mass(0, m);
  const double volume = 1.0 / 6.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(m[static_cast<std::size_t>(i * 4 + j)],
                  i == j ? volume / 10.0 : volume / 20.0, 1e-14);
    }
  }
}

TEST(ElementKernel, StiffnessRowsSumToZero) {
  const auto box = mesh::build_box_mesh({2, 2, 2});
  for (int order : {1, 2}) {
    FeSpace space(box, order, static_cast<std::int64_t>(box.vertex_count()));
    ElementKernel kernel(space, 2);
    const int n = kernel.n();
    std::vector<double> k(static_cast<std::size_t>(n * n));
    kernel.stiffness(5, k);
    for (int i = 0; i < n; ++i) {
      double row = 0.0;
      for (int j = 0; j < n; ++j) {
        row += k[static_cast<std::size_t>(i * n + j)];
      }
      EXPECT_NEAR(row, 0.0, 1e-12);
      // Symmetry.
      for (int j = 0; j < n; ++j) {
        EXPECT_NEAR(k[static_cast<std::size_t>(i * n + j)],
                    k[static_cast<std::size_t>(j * n + i)], 1e-12);
      }
    }
  }
}

TEST(ElementKernel, ConvectionRowsSumToZeroForConstantBeta) {
  const auto box = mesh::build_box_mesh({1, 1, 1});
  FeSpace space(box, 2, static_cast<std::int64_t>(box.vertex_count()));
  ElementKernel kernel(space, 3);
  const int n = kernel.n();
  std::vector<mesh::Vec3> beta(kernel.quad_count(), {1.0, -2.0, 0.5});
  std::vector<double> c(static_cast<std::size_t>(n * n));
  kernel.convection(0, beta, c);
  // sum_j (beta . grad phi_j) = beta . grad(1) = 0.
  for (int i = 0; i < n; ++i) {
    double row = 0.0;
    for (int j = 0; j < n; ++j) {
      row += c[static_cast<std::size_t>(i * n + j)];
    }
    EXPECT_NEAR(row, 0.0, 1e-12);
  }
}

TEST(ElementKernel, LumpedMassMatchesRowSums) {
  const auto box = mesh::build_box_mesh({2, 2, 2});
  for (int order : {1, 2}) {
    FeSpace space(box, order, static_cast<std::int64_t>(box.vertex_count()));
    ElementKernel kernel(space, 4);
    const int n = kernel.n();
    std::vector<double> me(static_cast<std::size_t>(n * n));
    std::vector<double> lumped(static_cast<std::size_t>(n));
    kernel.mass(7, me);
    kernel.lumped_mass(7, lumped);
    for (int i = 0; i < n; ++i) {
      double row = 0.0;
      for (int j = 0; j < n; ++j) {
        row += me[static_cast<std::size_t>(i * n + j)];
      }
      EXPECT_NEAR(lumped[static_cast<std::size_t>(i)], row, 1e-14);
    }
    // Total lumped mass over one tet = its volume.
    double total = 0.0;
    for (double v : lumped) {
      total += v;
    }
    EXPECT_NEAR(total, box.tet_volume(7), 1e-14);
  }
}

TEST(ElementKernel, LoadOfOneSumsToVolume) {
  const auto box = mesh::build_box_mesh({1, 1, 1});
  for (int order : {1, 2}) {
    FeSpace space(box, order, static_cast<std::int64_t>(box.vertex_count()));
    ElementKernel kernel(space, 4);
    double total = 0.0;
    std::vector<double> f(static_cast<std::size_t>(kernel.n()));
    for (std::size_t t = 0; t < box.tet_count(); ++t) {
      kernel.load(t, [](const mesh::Vec3&) { return 1.0; }, f);
      for (double v : f) {
        total += v;
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "order " << order;
  }
}

TEST(ElementKernel, EvalReproducesQuadraticForP2) {
  const auto box = mesh::build_box_mesh({2, 2, 2});
  FeSpace space(box, 2, static_cast<std::int64_t>(box.vertex_count()));
  ElementKernel kernel(space, 4);
  auto f = [](const mesh::Vec3& x) {
    return x.x * x.x + 2.0 * x.y * x.z - x.z + 3.0;
  };
  std::vector<double> dof_values(
      static_cast<std::size_t>(space.local_dof_count()));
  for (int d = 0; d < space.local_dof_count(); ++d) {
    dof_values[static_cast<std::size_t>(d)] = f(space.dof_coord(d));
  }
  std::vector<double> at_q(kernel.quad_count());
  std::vector<mesh::Vec3> xq(kernel.quad_count());
  for (std::size_t t = 0; t < box.tet_count(); t += 7) {
    kernel.eval_at_quad(t, dof_values, at_q);
    kernel.quad_points(t, xq);
    for (std::size_t q = 0; q < at_q.size(); ++q) {
      EXPECT_NEAR(at_q[q], f(xq[q]), 1e-12);
    }
  }
}

TEST(FeSpace, DofCountsMatchMeshEntities) {
  const auto box = mesh::build_box_mesh({2, 2, 2});
  FeSpace p1(box, 1, static_cast<std::int64_t>(box.vertex_count()));
  EXPECT_EQ(p1.local_dof_count(), static_cast<int>(box.vertex_count()));
  EXPECT_EQ(p1.dofs_per_tet(), 4);
  const auto edges = mesh::build_edges(box);
  FeSpace p2(box, 2, static_cast<std::int64_t>(box.vertex_count()));
  EXPECT_EQ(p2.local_dof_count(),
            static_cast<int>(box.vertex_count() + edges.edges.size()));
  EXPECT_EQ(p2.dofs_per_tet(), 10);
}

TEST(FeSpace, SharedEdgeDofsAgreeAcrossSubmeshes) {
  // Two adjacent submeshes must derive identical gids for interface dofs.
  mesh::BoxMeshSpec spec{4, 2, 2};
  const auto left = mesh::build_box_submesh(spec, {0, 2, 0, 2, 0, 2});
  const auto right = mesh::build_box_submesh(spec, {2, 4, 0, 2, 0, 2});
  FeSpace sl(left, 2, spec.vertex_count());
  FeSpace sr(right, 2, spec.vertex_count());
  // Collect gid -> coordinate from both; shared gids must agree on coords.
  std::map<la::GlobalId, mesh::Vec3> coords;
  for (int d = 0; d < sl.local_dof_count(); ++d) {
    coords[sl.dof_gid(d)] = sl.dof_coord(d);
  }
  int shared = 0;
  for (int d = 0; d < sr.local_dof_count(); ++d) {
    const auto it = coords.find(sr.dof_gid(d));
    if (it != coords.end()) {
      ++shared;
      EXPECT_NEAR(it->second.x, sr.dof_coord(d).x, 1e-14);
      EXPECT_NEAR(it->second.y, sr.dof_coord(d).y, 1e-14);
      EXPECT_NEAR(it->second.z, sr.dof_coord(d).z, 1e-14);
    }
  }
  // Interface plane x=0.5 of a 4x2x2 grid: 3x3 vertices + edges within it.
  EXPECT_GT(shared, 9);
}

TEST(Bdf, CoefficientsAreConsistent) {
  const auto b1 = bdf_scheme(1);
  EXPECT_DOUBLE_EQ(b1.alpha, b1.beta[0] + b1.beta[1]);
  const auto b2 = bdf_scheme(2);
  // Consistency: alpha = sum(beta) (constant solutions are stationary).
  EXPECT_DOUBLE_EQ(b2.alpha, b2.beta[0] + b2.beta[1]);
  // Second-order exactness on u(t) = t: alpha*t_{k+1} - b0*t_k - b1*t_{k-1}
  // = dt for unit dt steps.
  EXPECT_DOUBLE_EQ(b2.alpha * 2.0 - b2.beta[0] * 1.0 - b2.beta[1] * 0.0, 1.0);
  EXPECT_THROW(bdf_scheme(3), Error);
  const auto ex = bdf_extrapolation(2);
  EXPECT_DOUBLE_EQ(ex[0] + ex[1], 1.0);  // reproduces constants
}

/// Solves -laplace(u) = 0 on the unit box with Dirichlet data from the
/// linear exact solution u = x + 2y + 3z, distributed over `ranks` ranks.
/// P1 reproduces linears exactly, so the discrete solution must match to
/// solver tolerance.
void check_poisson_linear_exact(int ranks, int order) {
  auto rt = make_runtime(ranks);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{4, 4, 4};
    mesh::BlockDecomposition dec(spec, comm.size());
    const auto sub = mesh::build_box_submesh(spec, dec.box(comm.rank()));
    FeSpace space(sub, order, spec.vertex_count());
    la::DistSystemBuilder builder(comm, space.dof_gids());

    ElementKernel kernel(space, order == 1 ? 2 : 4);
    const int n = kernel.n();
    std::vector<double> ke(static_cast<std::size_t>(n * n));
    std::vector<la::GlobalId> gids(static_cast<std::size_t>(n));
    builder.begin_assembly();
    for (std::size_t t = 0; t < sub.tet_count(); ++t) {
      kernel.stiffness(t, ke);
      space.tet_dof_gids(t, gids);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          builder.add_matrix(gids[static_cast<std::size_t>(i)],
                             gids[static_cast<std::size_t>(j)],
                             ke[static_cast<std::size_t>(i * n + j)]);
        }
        builder.add_rhs(gids[static_cast<std::size_t>(i)], 0.0);
      }
    }
    builder.finalize(comm);

    auto exact = [](const mesh::Vec3& x) {
      return x.x + 2.0 * x.y + 3.0 * x.z;
    };
    auto on_boundary = [](const mesh::Vec3& x) {
      const double eps = 1e-12;
      return x.x < eps || x.x > 1.0 - eps || x.y < eps || x.y > 1.0 - eps ||
             x.z < eps || x.z > 1.0 - eps;
    };
    const DirichletData bc = make_dirichlet(comm, space, builder.map(),
                                            builder.halo(), on_boundary,
                                            exact);
    la::DistVector x(builder.map());
    apply_dirichlet(builder.matrix(), builder.rhs(), x, bc);

    solvers::Ilu0Preconditioner ilu;
    ilu.build(builder.matrix());
    solvers::SolverConfig config;
    config.rel_tolerance = 1e-12;
    config.max_iterations = 500;
    const auto report = solvers::cg_solve(comm, builder.matrix(), ilu,
                                          builder.rhs(), x, config);
    EXPECT_TRUE(report.converged);

    x.update_ghosts(comm, builder.halo());
    const double err = nodal_max_error(comm, space, builder.map(), x, exact);
    EXPECT_LT(err, 1e-8) << "ranks " << ranks << " order " << order;
    const double l2 = l2_error(comm, kernel, builder.map(), x, exact);
    EXPECT_LT(l2, 1e-8);
  });
}

TEST(Poisson, LinearExactP1Serial) { check_poisson_linear_exact(1, 1); }
TEST(Poisson, LinearExactP1TwoRanks) { check_poisson_linear_exact(2, 1); }
TEST(Poisson, LinearExactP1EightRanks) { check_poisson_linear_exact(8, 1); }
TEST(Poisson, LinearExactP2FourRanks) { check_poisson_linear_exact(4, 2); }

TEST(Poisson, QuadraticExactWithP2) {
  // -laplace(x^2 + y^2) = -4 with P2: in-space solution, f = -4 constant.
  auto rt = make_runtime(4);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{3, 3, 3};
    mesh::BlockDecomposition dec(spec, comm.size());
    const auto sub = mesh::build_box_submesh(spec, dec.box(comm.rank()));
    FeSpace space(sub, 2, spec.vertex_count());
    la::DistSystemBuilder builder(comm, space.dof_gids());
    ElementKernel kernel(space, 4);
    const int n = kernel.n();
    std::vector<double> ke(static_cast<std::size_t>(n * n));
    std::vector<double> fe(static_cast<std::size_t>(n));
    std::vector<la::GlobalId> gids(static_cast<std::size_t>(n));
    builder.begin_assembly();
    for (std::size_t t = 0; t < sub.tet_count(); ++t) {
      kernel.stiffness(t, ke);
      kernel.load(t, [](const mesh::Vec3&) { return -4.0; }, fe);
      space.tet_dof_gids(t, gids);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          builder.add_matrix(gids[static_cast<std::size_t>(i)],
                             gids[static_cast<std::size_t>(j)],
                             ke[static_cast<std::size_t>(i * n + j)]);
        }
        builder.add_rhs(gids[static_cast<std::size_t>(i)],
                        fe[static_cast<std::size_t>(i)]);
      }
    }
    builder.finalize(comm);

    auto exact = [](const mesh::Vec3& x) { return x.x * x.x + x.y * x.y; };
    auto on_boundary = [](const mesh::Vec3& x) {
      const double eps = 1e-12;
      return x.x < eps || x.x > 1.0 - eps || x.y < eps || x.y > 1.0 - eps ||
             x.z < eps || x.z > 1.0 - eps;
    };
    const DirichletData bc = make_dirichlet(comm, space, builder.map(),
                                            builder.halo(), on_boundary,
                                            exact);
    la::DistVector x(builder.map());
    apply_dirichlet(builder.matrix(), builder.rhs(), x, bc);
    solvers::Ilu0Preconditioner ilu;
    ilu.build(builder.matrix());
    solvers::SolverConfig config;
    config.rel_tolerance = 1e-12;
    config.max_iterations = 800;
    const auto report = solvers::cg_solve(comm, builder.matrix(), ilu,
                                          builder.rhs(), x, config);
    EXPECT_TRUE(report.converged);
    x.update_ghosts(comm, builder.halo());
    EXPECT_LT(nodal_max_error(comm, space, builder.map(), x, exact), 1e-7);
  });
}

TEST(Poisson, EliminatedOperatorStaysSymmetric) {
  // Symmetric Dirichlet elimination must leave the local owned block of a
  // serial Laplacian exactly symmetric (CG-compatibility).
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{3, 3, 3};
    const auto box = mesh::build_box_mesh(spec);
    FeSpace space(box, 1, spec.vertex_count());
    la::DistSystemBuilder builder(comm, space.dof_gids());
    ElementKernel kernel(space, 2);
    std::vector<double> ke(16);
    std::vector<la::GlobalId> gids(4);
    builder.begin_assembly();
    for (std::size_t t = 0; t < box.tet_count(); ++t) {
      kernel.stiffness(t, ke);
      space.tet_dof_gids(t, gids);
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          builder.add_matrix(gids[static_cast<std::size_t>(i)],
                             gids[static_cast<std::size_t>(j)],
                             ke[static_cast<std::size_t>(i * 4 + j)]);
        }
        builder.add_rhs(gids[static_cast<std::size_t>(i)], 0.0);
      }
    }
    builder.finalize(comm);
    EXPECT_LT(builder.matrix().local().symmetry_error(), 1e-13);
    auto on_boundary = [](const mesh::Vec3& x) {
      const double eps = 1e-12;
      return x.x < eps || x.x > 1.0 - eps || x.y < eps || x.y > 1.0 - eps ||
             x.z < eps || x.z > 1.0 - eps;
    };
    const auto bc =
        make_dirichlet(comm, space, builder.map(), builder.halo(),
                       on_boundary, [](const mesh::Vec3&) { return 1.0; });
    la::DistVector x(builder.map());
    apply_dirichlet(builder.matrix(), builder.rhs(), x, bc);
    EXPECT_LT(builder.matrix().local().symmetry_error(), 1e-13);
  });
}

TEST(Interpolate, ReproducesInSpaceFunctions) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{2, 2, 2};
    mesh::BlockDecomposition dec(spec, comm.size());
    const auto sub = mesh::build_box_submesh(spec, dec.box(comm.rank()));
    FeSpace space(sub, 1, spec.vertex_count());
    la::DistSystemBuilder builder(comm, space.dof_gids());
    // Minimal mass pattern so map/halo exist.
    ElementKernel kernel(space, 2);
    std::vector<double> me(16);
    std::vector<la::GlobalId> gids(4);
    builder.begin_assembly();
    for (std::size_t t = 0; t < sub.tet_count(); ++t) {
      kernel.mass(t, me);
      space.tet_dof_gids(t, gids);
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          builder.add_matrix(gids[static_cast<std::size_t>(i)],
                             gids[static_cast<std::size_t>(j)],
                             me[static_cast<std::size_t>(i * 4 + j)]);
        }
      }
    }
    builder.finalize(comm);
    auto f = [](const mesh::Vec3& x) { return 1.0 - x.x + 0.5 * x.y; };
    const auto u =
        interpolate(comm, space, builder.map(), builder.halo(), f);
    EXPECT_LT(l2_error(comm, kernel, builder.map(), u, f), 1e-13);
    EXPECT_LT(nodal_max_error(comm, space, builder.map(), u, f), 1e-13);
  });
}

TEST(TriQuadrature, IntegratesMonomialsExactly) {
  // Exact integral of x^a y^b over the reference triangle:
  // a! b! / (a+b+2)!.
  auto exact = [](int a, int b) {
    double num = 1.0;
    for (int i = 2; i <= a; ++i) num *= i;
    for (int i = 2; i <= b; ++i) num *= i;
    double den = 1.0;
    for (int i = 2; i <= a + b + 2; ++i) den *= i;
    return num / den;
  };
  const int degree_pairs[][3] = {{1, 0, 0}, {1, 1, 0}, {2, 2, 0}, {2, 1, 1},
                                 {4, 4, 0}, {4, 2, 2}, {4, 3, 1}};
  for (const auto& [deg, a, b] : degree_pairs) {
    double sum = 0.0;
    for (const auto& qp : tri_quadrature(deg)) {
      sum += qp.weight * std::pow(qp.x, a) * std::pow(qp.y, b);
    }
    EXPECT_NEAR(sum, exact(a, b), 1e-12) << "deg " << deg << " x^" << a
                                         << " y^" << b;
  }
  EXPECT_THROW(tri_quadrature(5), Error);
}

TEST(BoundaryArea, MatchesBoxGeometry) {
  const auto box = mesh::build_box_mesh({3, 3, 3});
  EXPECT_NEAR(boundary_area(box, {}), 6.0, 1e-12);       // whole unit cube
  EXPECT_NEAR(boundary_area(box, {1}), 1.0, 1e-12);      // one face
  EXPECT_NEAR(boundary_area(box, {1, 2, 5}), 3.0, 1e-12);
}

class BoundaryLoadOrder : public ::testing::TestWithParam<int> {};

TEST_P(BoundaryLoadOrder, SumsToSurfaceIntegral) {
  // sum_i int g phi_i dS = int g dS because the shapes partition unity.
  const int order = GetParam();
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{4, 4, 4};
    mesh::BlockDecomposition dec(spec, comm.size());
    const auto sub = mesh::build_box_submesh(spec, dec.box(comm.rank()));
    FeSpace space(sub, order, spec.vertex_count());
    la::DistSystemBuilder builder(comm, space.dof_gids());
    builder.begin_assembly();
    // Minimal diagonal pattern so the builder has rows for every dof.
    for (la::GlobalId g : space.dof_gids()) {
      builder.add_matrix(g, g, 1.0);
    }
    auto g = [](const mesh::Vec3& x) { return 1.0 + x.y + x.z * x.z; };
    // Integrate over the +x face (marker 2): x == 1, area 1.
    assemble_boundary_load(space, g, {2}, builder);
    builder.finalize(comm);
    double local = 0.0;
    for (int l = 0; l < builder.map().owned_count(); ++l) {
      local += builder.rhs()[l];
    }
    const double total = comm.allreduce(local, simmpi::ReduceOp::kSum);
    // int over [0,1]^2 of (1 + y + z^2) dy dz = 1 + 1/2 + 1/3.
    EXPECT_NEAR(total, 1.0 + 0.5 + 1.0 / 3.0, 1e-12) << "order " << order;
  });
}

INSTANTIATE_TEST_SUITE_P(Orders, BoundaryLoadOrder, ::testing::Values(1, 2));

TEST(H1Error, ZeroForInSpaceGradient) {
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{3, 3, 3};
    const auto box = mesh::build_box_mesh(spec);
    FeSpace space(box, 2, spec.vertex_count());
    la::DistSystemBuilder builder(comm, space.dof_gids());
    builder.begin_assembly();
    for (la::GlobalId g : space.dof_gids()) {
      builder.add_matrix(g, g, 1.0);
    }
    builder.finalize(comm);
    ElementKernel kernel(space, 4);
    auto f = [](const mesh::Vec3& x) {
      return x.x * x.x - x.y * x.z + 2.0 * x.z;
    };
    auto grad_f = [](const mesh::Vec3& x) {
      return mesh::Vec3{2.0 * x.x, -x.z, -x.y + 2.0};
    };
    const auto u = interpolate(comm, space, builder.map(), builder.halo(), f);
    EXPECT_LT(h1_seminorm_error(comm, kernel, builder.map(), u, grad_f),
              1e-12);
  });
}

TEST(H1Error, ConvergesAtFirstOrderForP1) {
  auto run_once = [&](int cells) {
    double err = 0.0;
    auto rt = make_runtime(1);
    rt.run([&](simmpi::Comm& comm) {
      mesh::BoxMeshSpec spec{cells, cells, cells};
      const auto box = mesh::build_box_mesh(spec);
      FeSpace space(box, 1, spec.vertex_count());
      la::DistSystemBuilder builder(comm, space.dof_gids());
      builder.begin_assembly();
      for (la::GlobalId g : space.dof_gids()) {
        builder.add_matrix(g, g, 1.0);
      }
      builder.finalize(comm);
      ElementKernel kernel(space, 4);
      auto f = [](const mesh::Vec3& x) { return std::sin(M_PI * x.x); };
      auto grad_f = [](const mesh::Vec3& x) {
        return mesh::Vec3{M_PI * std::cos(M_PI * x.x), 0.0, 0.0};
      };
      const auto u =
          interpolate(comm, space, builder.map(), builder.halo(), f);
      err = h1_seminorm_error(comm, kernel, builder.map(), u, grad_f);
    });
    return err;
  };
  const double coarse = run_once(2);
  const double fine = run_once(4);
  EXPECT_GT(coarse / fine, 1.6);  // ~2 for O(h)
  EXPECT_LT(coarse / fine, 2.6);
}

TEST(L2Error, ConvergesAtSecondOrderForP1) {
  // Interpolation error of a smooth non-polynomial function: O(h^2) in L2.
  auto run_once = [&](int cells) {
    double err = 0.0;
    auto rt = make_runtime(1);
    rt.run([&](simmpi::Comm& comm) {
      mesh::BoxMeshSpec spec{cells, cells, cells};
      const auto box = mesh::build_box_mesh(spec);
      FeSpace space(box, 1, spec.vertex_count());
      la::DistSystemBuilder builder(comm, space.dof_gids());
      ElementKernel kernel(space, 4);
      std::vector<double> me(16);
      std::vector<la::GlobalId> gids(4);
      builder.begin_assembly();
      for (std::size_t t = 0; t < box.tet_count(); ++t) {
        kernel.mass(t, me);
        space.tet_dof_gids(t, gids);
        for (int i = 0; i < 4; ++i) {
          builder.add_matrix(gids[static_cast<std::size_t>(i)],
                             gids[static_cast<std::size_t>(i)], 1.0);
        }
      }
      builder.finalize(comm);
      auto f = [](const mesh::Vec3& x) {
        return std::sin(M_PI * x.x) * std::cos(M_PI * x.y);
      };
      const auto u =
          interpolate(comm, space, builder.map(), builder.halo(), f);
      err = l2_error(comm, kernel, builder.map(), u, f);
    });
    return err;
  };
  const double coarse = run_once(2);
  const double fine = run_once(4);
  EXPECT_GT(coarse / fine, 3.0);  // ~4 for O(h^2)
  EXPECT_LT(coarse / fine, 5.5);
}

}  // namespace
}  // namespace hetero::fem
