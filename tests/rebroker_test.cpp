// Tests for the closed-loop re-brokering subsystem: the pure advise()
// verdict (hysteresis, deadline, and budget rules over canned drift
// traces), the mid-run migration machinery end to end (byte-identical
// replays, the exact-solution oracle across a storm-driven migration),
// the Predictor's resumed re-pricing, and the svc daemon's `rebroker`
// advisory records.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "broker/predictor.hpp"
#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"
#include "rebroker/controller.hpp"
#include "rebroker/quote.hpp"
#include "support/error.hpp"
#include "svc/result_codec.hpp"
#include "svc/service.hpp"

namespace {

using namespace hetero;

// --- advise(): the pure verdict ---------------------------------------

/// Inputs on a flat cost landscape: staying costs 0.01 $/step at pace
/// `observed`, the fallback half that at the same pace with no queue.
/// The cost rule then reads: migrate iff observed > 0.5 * (1 + h).
rebroker::AdviseInputs flat_inputs(double observed, double hysteresis) {
  rebroker::AdviseInputs in;
  in.steps_total = 100;
  in.steps_done = 10;
  in.observed_step_s = observed;
  in.stay.platform = "ec2";
  in.stay.ranks = 8;
  in.stay.can_launch = true;
  in.stay.seconds_per_step = 1.0;
  in.stay.cost_per_step_usd = 0.01;
  in.move.platform = "puma";
  in.move.ranks = 8;
  in.move.can_launch = true;
  in.move.seconds_per_step = 1.0;
  in.move.cost_per_step_usd = 0.005;
  in.move.queue_wait_s = 0.0;
  in.hysteresis = hysteresis;
  return in;
}

int verdict_flips(const std::vector<double>& trace, double hysteresis) {
  int flips = 0;
  bool have_last = false;
  bool last = false;
  for (const double observed : trace) {
    const auto a = rebroker::advise(flat_inputs(observed, hysteresis));
    if (have_last && a.migrate != last) {
      ++flips;
    }
    last = a.migrate;
    have_last = true;
  }
  return flips;
}

TEST(Advise, HysteresisPreventsFlapping) {
  // Oscillates around the zero-hysteresis parity point (observed = 0.5):
  // without a margin the verdict flips on every sample; a 25% margin
  // (threshold 0.625) never budges.
  const std::vector<double> oscillating = {0.48, 0.56, 0.47, 0.57,
                                           0.46, 0.58, 0.48, 0.56};
  EXPECT_GE(verdict_flips(oscillating, 0.0), 4);
  EXPECT_EQ(verdict_flips(oscillating, 0.25), 0);
}

TEST(Advise, VerdictFlipsOnceOnCannedDriftTrace) {
  // A degradation ramp: the verdict starts at stay, crosses the
  // hysteresis threshold exactly once, and never flaps back.
  const std::vector<double> ramp = {0.30, 0.40, 0.50, 0.60, 0.70,
                                    0.80, 0.90, 1.00, 1.10, 1.20};
  EXPECT_EQ(verdict_flips(ramp, 0.25), 1);
  EXPECT_FALSE(rebroker::advise(flat_inputs(ramp.front(), 0.25)).migrate);
  EXPECT_TRUE(rebroker::advise(flat_inputs(ramp.back(), 0.25)).migrate);
}

TEST(Advise, UnlaunchableFallbackAndBudgetGuard) {
  auto in = flat_inputs(2.0, 0.0);  // far past parity: would migrate
  ASSERT_TRUE(rebroker::advise(in).migrate);

  auto no_launch = in;
  no_launch.move.can_launch = false;
  const auto a = rebroker::advise(no_launch);
  EXPECT_FALSE(a.migrate);
  EXPECT_EQ(a.reason, "fallback cannot launch");

  auto tight = in;
  tight.migrate_budget_usd = 0.01;  // remaining fallback bill is 0.45 $
  const auto b = rebroker::advise(tight);
  EXPECT_FALSE(b.migrate);
  EXPECT_EQ(b.reason, "migration budget exceeded");
}

TEST(Advise, DeadlineOverridesCost) {
  // The fallback is cheaper but its queue misses the deadline: stay.
  auto in = flat_inputs(2.0, 0.0);
  in.move.queue_wait_s = 900.0;
  in.deadline_s = 250.0;  // stay finishes in ~180 s at the observed pace
  const auto a = rebroker::advise(in);
  EXPECT_FALSE(a.migrate);
  EXPECT_EQ(a.reason, "staying meets the deadline; fallback would miss it");

  // Storms push the stay projection past the deadline; the fallback's
  // queue still fits: migrate regardless of cost.
  auto stormy = in;
  stormy.move.queue_wait_s = 30.0;
  stormy.storm_rate = 0.1;
  stormy.backoff_expect_s = 30.0;
  stormy.redo_steps_per_storm = 4;
  const auto b = rebroker::advise(stormy);
  EXPECT_TRUE(b.migrate);
  EXPECT_EQ(b.reason, "deadline at risk; fallback meets it");
}

// --- the migration machinery end to end --------------------------------

/// The bench's stormy adaptive scenario: RD direct on ec2 with a 3%
/// spot-reclaim storm rate, re-brokering to puma under a 40 s deadline.
/// Seed 46 storms on the first attempt and migrates on the second.
core::Experiment stormy_adaptive_experiment() {
  core::Experiment e;
  e.app = perf::AppKind::kReactionDiffusion;
  e.platform = "ec2";
  e.ranks = 8;
  e.cells_per_rank_axis = 4;
  e.mode = core::Mode::kDirect;
  e.direct_steps = 16;
  e.faults.reclaim_storm_rate = 0.03;
  e.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
  e.recovery.checkpoint_every = 2;
  e.recovery.max_attempts = 2;
  e.rebroker.enabled = true;
  e.rebroker.fallback_platform = "puma";
  e.rebroker.hysteresis = 0.15;
  e.rebroker.deadline_s = 40.0;
  e.rebroker.run_label = "test-stormy";
  e.seed = 46;
  return e;
}

TEST(Rebroker, MigrationReplaysByteIdentically) {
  const auto e = stormy_adaptive_experiment();
  core::CampaignEngine first(42);
  core::CampaignEngine second(42);
  const auto r1 = first.run(e);
  const auto r2 = second.run(e);

  ASSERT_TRUE(r1.launched);
  ASSERT_GE(r1.rebroker.migrations, 1);
  ASSERT_GE(r1.rebroker.storms, 1);
  EXPECT_EQ(r1.rebroker.final_platform, "puma");
  // The whole result — every double down to the bit pattern, and the
  // complete decision trail — replays identically from the same seed.
  EXPECT_EQ(svc::encode_result(r1), svc::encode_result(r2));
  ASSERT_EQ(r1.rebroker.trail.size(), r2.rebroker.trail.size());
  EXPECT_EQ(r1.rebroker.trail, r2.rebroker.trail);
  // The trail actually narrates the migration.
  bool saw_migration_record = false;
  for (const auto& line : r1.rebroker.trail) {
    if (line.find("\"type\":\"migration\"") != std::string::npos) {
      saw_migration_record = true;
      EXPECT_NE(line.find("\"from_platform\":\"ec2\""), std::string::npos);
      EXPECT_NE(line.find("\"to_platform\":\"puma\""), std::string::npos);
      EXPECT_NE(line.find("\"checkpoint_step\""), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_migration_record);
}

TEST(Rebroker, MigrationLandsExactSolutionOracle) {
  // A storm-driven mid-run migration restores from the gid-keyed
  // checkpoint and finishes on puma; the physics must not notice. The
  // migrated run's nodal error against the exact solution is bitwise
  // equal to a calm single-platform run's: platform swaps change cost
  // models and topology timings, never the arithmetic.
  core::CampaignEngine engine(42);
  const auto migrated = engine.run(stormy_adaptive_experiment());
  ASSERT_TRUE(migrated.launched);
  ASSERT_GE(migrated.rebroker.migrations, 1);

  auto calm = stormy_adaptive_experiment();
  calm.faults.reclaim_storm_rate = 0.0;
  calm.rebroker = rebroker::Policy{};
  const auto baseline = engine.run(calm);
  ASSERT_TRUE(baseline.launched);
  EXPECT_EQ(baseline.rebroker.migrations, 0);

  EXPECT_EQ(std::bit_cast<std::uint64_t>(migrated.nodal_error),
            std::bit_cast<std::uint64_t>(baseline.nodal_error));
  EXPECT_EQ(migrated.solver_converged, baseline.solver_converged);
}

TEST(Rebroker, CalmAdaptiveRunIsExactlyStatic) {
  // Without storms the controller samples but never migrates, and the
  // result prices through the unchanged single-platform formula.
  core::CampaignEngine engine(42);
  auto adaptive = stormy_adaptive_experiment();
  adaptive.faults.reclaim_storm_rate = 0.0;
  auto is_static = adaptive;
  is_static.rebroker = rebroker::Policy{};
  const auto a = engine.run(adaptive);
  const auto s = engine.run(is_static);
  ASSERT_TRUE(a.launched);
  EXPECT_EQ(a.rebroker.migrations, 0);
  EXPECT_GT(a.rebroker.samples, 0);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cost_per_iteration_usd),
            std::bit_cast<std::uint64_t>(s.cost_per_iteration_usd));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.iteration.total_s),
            std::bit_cast<std::uint64_t>(s.iteration.total_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.nodal_error),
            std::bit_cast<std::uint64_t>(s.nodal_error));
}

// --- predictor: resumed re-pricing -------------------------------------

TEST(PredictResumed, ScalesSamePlatformQuoteByObservedDrift) {
  core::CampaignEngine engine(42);
  broker::Predictor predictor(engine);
  broker::Candidate c;
  c.platform = "ec2";
  c.ranks = 8;
  c.cells_per_rank_axis = 10;
  broker::JobRequest job;
  job.ranks = 8;
  job.iterations = 10;

  broker::ResumeState on_model;
  on_model.iterations_total = 10;
  on_model.iterations_done = 5;
  on_model.same_platform = true;
  const auto base = predictor.predict_resumed(c, job, on_model);
  ASSERT_TRUE(base.launched);
  EXPECT_DOUBLE_EQ(base.queue_wait_s, 0.0);  // the job already runs there
  EXPECT_DOUBLE_EQ(base.run_s, 5.0 * base.seconds_per_iteration);

  auto dragging = on_model;
  dragging.observed_seconds_per_iteration = 2.0 * base.seconds_per_iteration;
  const auto drifted = predictor.predict_resumed(c, job, dragging);
  ASSERT_TRUE(drifted.launched);
  // Billing is linear in seconds: a 2x slower pace doubles both the
  // remaining wall time and the remaining bill.
  EXPECT_DOUBLE_EQ(drifted.seconds_per_iteration,
                   dragging.observed_seconds_per_iteration);
  EXPECT_NEAR(drifted.run_s, 2.0 * base.run_s, 1e-9 * base.run_s);
  EXPECT_NEAR(drifted.cost_usd, 2.0 * base.cost_usd, 1e-9 * base.cost_usd);

  broker::ResumeState finished = on_model;
  finished.iterations_done = 10;
  const auto done = predictor.predict_resumed(c, job, finished);
  EXPECT_DOUBLE_EQ(done.run_s, 0.0);
  EXPECT_DOUBLE_EQ(done.cost_usd, 0.0);

  broker::ResumeState bogus = on_model;
  bogus.iterations_done = 11;
  EXPECT_THROW(predictor.predict_resumed(c, job, bogus), Error);
}

// --- svc: the rebroker advisory record ---------------------------------

TEST(SvcRebroker, AnswersAndMemoizesAdvisoryRequests) {
  svc::ServiceOptions options;
  options.jobs = 1;
  svc::Service service(options);
  const std::string line =
      R"({"id":1,"type":"rebroker","app":"rd","ranks":8,)"
      R"("platform":"ec2","fallback":"puma","steps":16,"done":4,)"
      R"("observed_s":0.05,"storms":1,"deadline_s":40})";
  const auto first = service.process_line(line);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NE(first[0].find("\"type\":\"rebroker\""), std::string::npos);
  EXPECT_NE(first[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(first[0].find("\"action\":"), std::string::npos);
  EXPECT_NE(first[0].find("\"target\":\"puma\""), std::string::npos);
  EXPECT_NE(first[0].find("\"stay_finish_s\":"), std::string::npos);
  EXPECT_NE(first[0].find("\"reason\":"), std::string::npos);

  // The warm path serves the identical payload from the request memo.
  const auto again = service.process_line(line);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(first[0], again[0]);

  // Malformed advisory requests become error records, not exceptions.
  const auto bad = service.process_line(
      R"({"id":2,"type":"rebroker","steps":4,"done":9})");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_NE(bad[0].find("\"type\":\"error\""), std::string::npos);
}

}  // namespace
