// Tests for intra-platform heterogeneity: the skew plan (resil::SkewPlan),
// the modeled slowdown helpers, the load-balancing control loop
// (lb::LoadBalancer), a property-based sweep of the capacity-weighted
// partitioners, and end-to-end direct-mode runs where a rebalanced solve
// must still pass the exact-solution oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "core/experiment.hpp"
#include "lb/load_balancer.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/graph.hpp"
#include "partition/partitioner.hpp"
#include "perf/scaling_model.hpp"
#include "prop_util.hpp"
#include "resil/skew_plan.hpp"
#include "support/error.hpp"

namespace hetero {
namespace {

// ---------------------------------------------------------------------------
// SkewPlan

TEST(SkewPlan, DefaultSpecIsInert) {
  const resil::SkewSpec spec;
  EXPECT_FALSE(spec.enabled());
  const resil::SkewPlan plan(spec, 42, "puma");
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(plan.static_factor(r), 1.0);
    EXPECT_EQ(plan.factor_at(r, 123.4), 1.0);
    EXPECT_EQ(plan.mean_factor(r), 1.0);
  }
  const resil::SkewPlan inert;
  EXPECT_FALSE(inert.enabled());
  EXPECT_EQ(inert.factor_at(7, 9.0), 1.0);
}

TEST(SkewPlan, IsAPureFunctionOfSeedAndPlatform) {
  resil::SkewSpec spec;
  spec.slow_core_fraction = 0.25;
  spec.slow_core_factor = 2.0;
  spec.noise_rate = 0.2;
  const resil::SkewPlan a(spec, 7, "ec2");
  const resil::SkewPlan b(spec, 7, "ec2");
  for (int r = 0; r < 64; ++r) {
    for (double t : {0.0, 10.0, 31.0, 1000.0}) {
      EXPECT_EQ(a.factor_at(r, t), b.factor_at(r, t));
    }
  }
  // A different platform re-rolls the slow-core lottery (some rank differs).
  const resil::SkewPlan c(spec, 7, "puma");
  bool any_differs = false;
  for (int r = 0; r < 64; ++r) {
    any_differs = any_differs || a.static_factor(r) != c.static_factor(r);
  }
  EXPECT_TRUE(any_differs);
}

TEST(SkewPlan, SlowCoreFractionIsRespectedInTheLarge) {
  resil::SkewSpec spec;
  spec.slow_core_fraction = 0.25;
  spec.slow_core_factor = 2.0;
  const resil::SkewPlan plan(spec, 99, "puma");
  int slow = 0;
  const int ranks = 4000;
  for (int r = 0; r < ranks; ++r) {
    const double f = plan.static_factor(r);
    EXPECT_TRUE(f == 1.0 || f == 2.0);
    slow += f == 2.0 ? 1 : 0;
  }
  const double fraction = static_cast<double>(slow) / ranks;
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(SkewPlan, NoiseWindowsComposeMultiplicatively) {
  resil::SkewSpec spec;
  spec.slow_core_fraction = 0.5;
  spec.slow_core_factor = 3.0;
  spec.noise_rate = 1.0;  // every window is noisy
  spec.noise_factor = 1.5;
  spec.window_s = 10.0;
  const resil::SkewPlan plan(spec, 5, "smp");
  for (int r = 0; r < 16; ++r) {
    const double s = plan.static_factor(r);
    EXPECT_EQ(plan.factor_at(r, 42.0), s * 1.5);
    EXPECT_DOUBLE_EQ(plan.mean_factor(r), s * 1.5);
  }
  // Factors are constant within one window.
  EXPECT_EQ(plan.factor_at(3, 20.0), plan.factor_at(3, 29.999));
}

TEST(SkewPlan, RejectsInvalidSpecs) {
  resil::SkewSpec bad;
  bad.slow_core_fraction = 1.5;
  EXPECT_THROW(resil::SkewPlan(bad, 1, ""), Error);
  bad = {};
  bad.slow_core_fraction = 0.5;
  bad.slow_core_factor = 0.5;  // < 1
  EXPECT_THROW(resil::SkewPlan(bad, 1, ""), Error);
  bad = {};
  bad.noise_rate = 0.1;
  bad.window_s = 0.0;
  EXPECT_THROW(resil::SkewPlan(bad, 1, ""), Error);
}

// ---------------------------------------------------------------------------
// Modeled slowdown helpers

TEST(SkewSlowdown, UnbalancedIsMaxBalancedIsHarmonic) {
  const std::vector<double> f{2.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(perf::skew_slowdown_unbalanced(f), 2.0);
  // p / sum(1/f) = 4 / (0.5 + 3) = 8/7.
  EXPECT_NEAR(perf::skew_slowdown_balanced(f), 8.0 / 7.0, 1e-12);
  EXPECT_LT(perf::skew_slowdown_balanced(f),
            perf::skew_slowdown_unbalanced(f));
}

TEST(SkewSlowdown, UniformSkewCannotBeBalancedAway) {
  const std::vector<double> f(8, 1.7);
  EXPECT_DOUBLE_EQ(perf::skew_slowdown_unbalanced(f), 1.7);
  EXPECT_DOUBLE_EQ(perf::skew_slowdown_balanced(f), 1.7);
}

TEST(SkewSlowdown, BalancedNeverExceedsUnbalanced) {
  test::PropRng rng(2026);
  for (int c = 0; c < 200; ++c) {
    const int n = rng.uniform_int(1, 64);
    std::vector<double> f(static_cast<std::size_t>(n));
    for (double& x : f) {
      x = rng.uniform(1.0, 4.0);
    }
    const double u = perf::skew_slowdown_unbalanced(f);
    const double b = perf::skew_slowdown_balanced(f);
    EXPECT_GE(u + 1e-12, b) << "case " << c;
    EXPECT_GE(b, 1.0) << "case " << c;
  }
}

// ---------------------------------------------------------------------------
// LoadBalancer

lb::BalancePolicy on_policy() {
  lb::BalancePolicy p;
  p.enabled = true;
  return p;
}

TEST(LoadBalancer, RejectsInvalidPolicies) {
  lb::BalancePolicy p = on_policy();
  p.threshold = 1.0;
  EXPECT_THROW(lb::LoadBalancer(p, 4), Error);
  p = on_policy();
  p.mode = "magic";
  EXPECT_THROW(lb::LoadBalancer(p, 4), Error);
  p = on_policy();
  p.diffusion_eta = 0.0;
  EXPECT_THROW(lb::LoadBalancer(p, 4), Error);
  p = on_policy();
  p.min_weight = 0.0;
  EXPECT_THROW(lb::LoadBalancer(p, 4), Error);
  p = on_policy();
  p.check_every = 0;
  EXPECT_THROW(lb::LoadBalancer(p, 4), Error);
  EXPECT_THROW(lb::LoadBalancer(on_policy(), 0), Error);
}

TEST(LoadBalancer, DisabledOrSoloNeverTriggers) {
  lb::BalancePolicy off;
  off.enabled = false;
  lb::LoadBalancer disabled(off, 4);
  EXPECT_FALSE(disabled.enabled());
  lb::LoadBalancer solo(on_policy(), 1);
  EXPECT_FALSE(solo.enabled());
  const std::vector<double> skewed{9.0, 1.0, 1.0, 1.0};
  const std::vector<double> one{9.0};
  for (int s = 0; s < 6; ++s) {
    EXPECT_FALSE(disabled.observe(s, std::span<const double>(skewed)));
    EXPECT_FALSE(solo.observe(s, std::span<const double>(one)));
  }
  EXPECT_EQ(disabled.outcome().checks, 0);
}

TEST(LoadBalancer, TriggersAfterWarmupWhenImbalanceExceedsThreshold) {
  lb::LoadBalancer balancer(on_policy(), 4);  // threshold 1.25, min_steps 2
  const std::vector<double> t{2.0, 1.0, 1.0, 1.0};  // imbalance 1.6
  const std::span<const double> times(t);
  EXPECT_FALSE(balancer.observe(0, times));  // EWMA warm-up
  EXPECT_TRUE(balancer.observe(1, times));
  EXPECT_NEAR(balancer.imbalance(), 1.6, 1e-12);
  EXPECT_EQ(balancer.outcome().checks, 1);
  EXPECT_NEAR(balancer.outcome().last_imbalance, 1.6, 1e-12);
}

TEST(LoadBalancer, BalancedTimesNeverTrigger) {
  lb::LoadBalancer balancer(on_policy(), 4);
  const std::vector<double> t{1.0, 1.01, 0.99, 1.0};
  for (int s = 0; s < 10; ++s) {
    EXPECT_FALSE(balancer.observe(s, std::span<const double>(t)));
  }
  EXPECT_GT(balancer.outcome().checks, 0);
  EXPECT_EQ(balancer.outcome().rebalances, 0);
}

TEST(LoadBalancer, CheckEveryAndRebalanceCapAreRespected) {
  lb::BalancePolicy p = on_policy();
  p.check_every = 3;
  p.min_steps = 1;
  p.max_rebalances = 1;
  lb::LoadBalancer balancer(p, 2);
  const std::vector<double> t{3.0, 1.0};
  const std::span<const double> times(t);
  EXPECT_FALSE(balancer.observe(0, times));  // not a check step
  EXPECT_FALSE(balancer.observe(1, times));
  EXPECT_TRUE(balancer.observe(2, times));  // (2+1) % 3 == 0
  balancer.record_rebalance();
  EXPECT_EQ(balancer.outcome().rebalances, 1);
  // Cap reached: still counts checks but never fires again.
  EXPECT_FALSE(balancer.observe(5, times));
  EXPECT_FALSE(balancer.observe(8, times));
  EXPECT_EQ(balancer.outcome().rebalances, 1);
}

TEST(LoadBalancer, RepartitionWeightsFavorFastRanksAndStayBounded) {
  lb::BalancePolicy p = on_policy();
  p.min_steps = 1;
  lb::LoadBalancer balancer(p, 4);
  const std::vector<double> t{2.0, 1.0, 1.0, 1.0};
  ASSERT_TRUE(balancer.observe(1, std::span<const double>(t)));
  balancer.record_rebalance();
  const auto& w = balancer.rank_weights();
  ASSERT_EQ(w.size(), 4u);
  const double mean = std::accumulate(w.begin(), w.end(), 0.0) / 4.0;
  EXPECT_NEAR(mean, 1.0, 1e-12);
  // The slow rank gets the smallest share; everyone stays in the clamp.
  EXPECT_LT(w[0], w[1]);
  EXPECT_DOUBLE_EQ(w[1], w[2]);
  for (double x : w) {
    EXPECT_GE(x, p.min_weight);
    EXPECT_LE(x, p.max_weight);
  }
}

TEST(LoadBalancer, DiffusionConservesWeightAndMovesTowardFastRanks) {
  lb::BalancePolicy p = on_policy();
  p.mode = "diffuse";
  p.min_steps = 1;
  lb::LoadBalancer balancer(p, 4);
  const std::vector<double> t{2.0, 1.0, 1.0, 1.0};
  ASSERT_TRUE(balancer.observe(1, std::span<const double>(t)));
  balancer.record_rebalance();
  const auto& w = balancer.rank_weights();
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, 4.0, 1e-12);      // mean stays 1
  EXPECT_LT(w[0], 1.0);              // slow rank sheds weight...
  EXPECT_GT(w[1], 1.0);              // ...to its faster neighbour
  // One bounded sweep moves less than the full repartition jump would.
  lb::BalancePolicy jump_p = on_policy();
  jump_p.min_steps = 1;
  lb::LoadBalancer jump(jump_p, 4);
  ASSERT_TRUE(jump.observe(1, std::span<const double>(t)));
  jump.record_rebalance();
  EXPECT_LT(jump.rank_weights()[0], w[0]);
}

TEST(LoadBalancer, IdenticalCopiesReachIdenticalVerdicts) {
  // The consensus pattern run_direct relies on: copies fed the same
  // allgathered stream agree bit-for-bit at every step.
  lb::BalancePolicy p = on_policy();
  p.threshold = 1.1;
  lb::LoadBalancer a(p, 3);
  lb::LoadBalancer b = a;
  test::PropRng rng(7);
  for (int s = 0; s < 20; ++s) {
    std::vector<double> t(3);
    for (double& x : t) {
      x = rng.uniform(0.5, 2.0);
    }
    const bool va = a.observe(s, std::span<const double>(t));
    const bool vb = b.observe(s, std::span<const double>(t));
    ASSERT_EQ(va, vb) << "step " << s;
    if (va) {
      a.record_rebalance();
      b.record_rebalance();
      ASSERT_EQ(a.rank_weights(), b.rank_weights());
    }
  }
  EXPECT_EQ(a.outcome().checks, b.outcome().checks);
  EXPECT_EQ(a.outcome().rebalances, b.outcome().rebalances);
}

// ---------------------------------------------------------------------------
// Property-based: weighted partitions meet their capacity-share bound.

TEST(WeightedPartitionProperty, PartSizesMeetCapacityBound) {
  for (int c = 0; c < 40; ++c) {
    test::PropRng rng(1000 + static_cast<std::uint64_t>(c));
    const int axis = rng.uniform_int(2, 5);
    const auto mesh = mesh::build_box_mesh({axis, axis, axis});
    const auto n = mesh.tet_count();
    const int parts = rng.uniform_int(2, 8);
    std::vector<double> weights(static_cast<std::size_t>(parts));
    for (double& w : weights) {
      w = rng.uniform(0.25, 4.0);
    }
    const double wsum =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    const partition::Graph g = partition::build_dual_graph(mesh);
    const std::span<const double> w(weights);
    const auto rcb = partition::partition_rcb(mesh, parts, w);
    const auto greedy = partition::partition_greedy(g, parts, w);
    // Rounding slack: each bisection level (RCB) / part hand-off (greedy)
    // may shift one element, plus the refinement pass allows one extra.
    const double slack =
        std::ceil(std::log2(static_cast<double>(parts))) + 2.0;
    for (const auto& part : {rcb, greedy}) {
      ASSERT_EQ(part.size(), n) << "case " << c;
      std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), 0);
      for (int p : part) {
        ASSERT_GE(p, 0) << "case " << c;
        ASSERT_LT(p, parts) << "case " << c;
        ++sizes[static_cast<std::size_t>(p)];
      }
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), n)
          << "case " << c;
      for (int p = 0; p < parts; ++p) {
        const double ideal = static_cast<double>(n) *
                             weights[static_cast<std::size_t>(p)] / wsum;
        EXPECT_LE(static_cast<double>(sizes[static_cast<std::size_t>(p)]),
                  1.30 * ideal + slack)
            << "case " << c << " part " << p << " ideal " << ideal;
      }
      // Deterministic: the same inputs replay the same partition.
    }
    EXPECT_EQ(rcb, partition::partition_rcb(mesh, parts, w)) << "case " << c;
    EXPECT_EQ(greedy, partition::partition_greedy(g, parts, w))
        << "case " << c;
  }
}

// ---------------------------------------------------------------------------
// End to end: direct RD runs through the ExperimentRunner.

core::Experiment direct_rd(int ranks, int steps) {
  core::Experiment e;
  e.app = perf::AppKind::kReactionDiffusion;
  e.platform = "puma";
  e.ranks = ranks;
  e.cells_per_rank_axis = 4;
  e.mode = core::Mode::kDirect;
  e.direct_steps = steps;
  return e;
}

TEST(LoadBalancedRun, CalmRunMatchesUnbalancedRunBitwise) {
  // Satellite oracle: with skew off, the balancer must never fire, and the
  // numerics (which the extra allgather cannot touch) stay bit-identical
  // to a run without the balancer.
  core::ExperimentRunner runner(42);
  core::Experiment off = direct_rd(8, 4);
  core::Experiment on = direct_rd(8, 4);
  on.balance.enabled = true;
  const auto r_off = runner.run(off);
  const auto r_on = runner.run(on);
  ASSERT_TRUE(r_off.launched);
  ASSERT_TRUE(r_on.launched);
  EXPECT_EQ(r_on.balance.rebalances, 0);
  EXPECT_GT(r_on.balance.checks, 0);
  EXPECT_LT(r_on.balance.last_imbalance, on.balance.threshold);
  EXPECT_EQ(r_on.nodal_error, r_off.nodal_error);  // bitwise
  EXPECT_EQ(r_on.iteration.solver_iterations,
            r_off.iteration.solver_iterations);
  EXPECT_TRUE(r_on.solver_converged);
}

TEST(LoadBalancedRun, SkewedRunRebalancesAndStillPassesTheOracle) {
  core::ExperimentRunner runner(42);
  core::Experiment e = direct_rd(8, 8);
  e.skew.slow_core_fraction = 0.25;
  e.skew.slow_core_factor = 2.0;
  e.balance.enabled = true;
  e.balance.threshold = 1.1;
  const auto r = runner.run(e);
  ASSERT_TRUE(r.launched);
  EXPECT_GE(r.balance.rebalances, 1);
  EXPECT_TRUE(r.solver_converged);
  // The discrete solution is the exact interpolant: a rebalanced partition
  // must reproduce it to solver tolerance like any other partition.
  EXPECT_LT(r.nodal_error, 1e-8);
  // Post-rebalance the measured imbalance must have come down from the raw
  // skewed value toward the threshold.
  EXPECT_LT(r.balance.last_imbalance, 1.3);
}

TEST(LoadBalancedRun, SkewedBalancedRunsReplayByteIdentically) {
  auto run_once = [] {
    core::ExperimentRunner runner(7);
    core::Experiment e = direct_rd(8, 6);
    e.skew.slow_core_fraction = 0.25;
    e.skew.slow_core_factor = 2.0;
    e.balance.enabled = true;
    e.balance.threshold = 1.1;
    return runner.run(e);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.nodal_error, b.nodal_error);
  EXPECT_EQ(a.iteration.total_s, b.iteration.total_s);
  EXPECT_EQ(a.balance.rebalances, b.balance.rebalances);
  EXPECT_EQ(a.balance.checks, b.balance.checks);
  EXPECT_EQ(a.balance.last_imbalance, b.balance.last_imbalance);
}

TEST(LoadBalancedRun, DiffuseModeAlsoConvergesAndPassesTheOracle) {
  core::ExperimentRunner runner(42);
  core::Experiment e = direct_rd(8, 8);
  e.skew.slow_core_fraction = 0.25;
  e.skew.slow_core_factor = 2.0;
  e.balance.enabled = true;
  e.balance.threshold = 1.1;
  e.balance.mode = "diffuse";
  const auto r = runner.run(e);
  ASSERT_TRUE(r.launched);
  EXPECT_GE(r.balance.rebalances, 1);
  EXPECT_TRUE(r.solver_converged);
  EXPECT_LT(r.nodal_error, 1e-8);
}

TEST(LoadBalancedRun, ApiRejectsConflictingConfigurations) {
  core::ExperimentRunner runner(42);
  core::Experiment e = direct_rd(8, 3);
  e.balance.enabled = true;
  e.mode = core::Mode::kModeled;
  EXPECT_THROW(runner.run(e), Error);
  e = direct_rd(8, 3);
  e.balance.enabled = true;
  e.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
  e.recovery.shrink_ranks_on_crash = true;
  EXPECT_THROW(runner.run(e), Error);
  e = direct_rd(8, 3);
  e.balance.enabled = true;
  e.rebroker.enabled = true;
  EXPECT_THROW(runner.run(e), Error);
  e = direct_rd(8, 3);
  e.balance.enabled = true;
  e.balance.threshold = 0.9;
  EXPECT_THROW(runner.run(e), Error);
}

TEST(ModeledRun, SkewDegradesModeledTimeByTheUnbalancedSlowdown) {
  core::ExperimentRunner runner(42);
  core::Experiment base;
  base.platform = "puma";
  base.ranks = 27;
  base.mode = core::Mode::kModeled;
  core::Experiment skewed = base;
  skewed.skew.slow_core_fraction = 0.25;
  skewed.skew.slow_core_factor = 2.0;
  const auto r0 = runner.run(base);
  const auto r1 = runner.run(skewed);
  ASSERT_TRUE(r0.launched);
  ASSERT_TRUE(r1.launched);
  // Compute inflates; the communication share does not, so the total grows
  // by less than 2x but visibly.
  EXPECT_GT(r1.iteration.total_s, 1.2 * r0.iteration.total_s);
  EXPECT_LT(r1.iteration.total_s, 2.0 * r0.iteration.total_s + 1e-12);
}

}  // namespace
}  // namespace hetero
