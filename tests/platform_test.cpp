// Tests for the platform specifications (Table I) and their derived models.

#include <gtest/gtest.h>

#include "platform/capability_table.hpp"
#include "platform/platform_spec.hpp"
#include "support/error.hpp"

namespace hetero::platform {
namespace {

TEST(Platforms, AllFourExistInPaperOrder) {
  const auto all = all_platforms();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name, "puma");
  EXPECT_EQ(all[1]->name, "ellipse");
  EXPECT_EQ(all[2]->name, "lagrange");
  EXPECT_EQ(all[3]->name, "ec2");
  EXPECT_THROW(platform_by_name("azure"), Error);
}

TEST(Platforms, NodeShapesMatchThePaper) {
  EXPECT_EQ(puma().cores_per_node(), 4);       // 2x Opteron 2214
  EXPECT_EQ(ellipse().cores_per_node(), 4);    // 2x Opteron 2218
  EXPECT_EQ(lagrange().cores_per_node(), 12);  // 2x 6-core Xeon X5660
  EXPECT_EQ(ec2().cores_per_node(), 16);       // 2x 8-core Xeon E5
  EXPECT_EQ(puma().max_cores(), 128);          // the 128-core home cluster
}

TEST(Platforms, CostRatesMatchSectionViiD) {
  EXPECT_DOUBLE_EQ(puma().cost_per_core_hour_usd, 0.023);
  EXPECT_DOUBLE_EQ(ellipse().cost_per_core_hour_usd, 0.05);
  EXPECT_DOUBLE_EQ(lagrange().cost_per_core_hour_usd, 0.1919);
  EXPECT_DOUBLE_EQ(ec2().cost_per_core_hour_usd, 0.15);
  EXPECT_DOUBLE_EQ(ec2().node_hour_usd, 2.40);
  EXPECT_DOUBLE_EQ(ec2().spot_node_hour_usd, 0.54);
  // Spot per core: 0.54/16 = 3.375 cents.
  EXPECT_NEAR(ec2().spot_node_hour_usd / 16.0, 0.03375, 1e-12);
}

TEST(Platforms, LaunchLimitsMatchSectionViiA) {
  EXPECT_TRUE(puma().can_launch(128));
  EXPECT_FALSE(puma().can_launch(129));
  EXPECT_TRUE(ellipse().can_launch(512));
  EXPECT_FALSE(ellipse().can_launch(513));
  EXPECT_TRUE(lagrange().can_launch(343));
  EXPECT_FALSE(lagrange().can_launch(344));
  EXPECT_TRUE(ec2().can_launch(1000));
}

TEST(Platforms, WholeNodeBillingOnlyOnEc2) {
  // One core for one hour.
  EXPECT_NEAR(puma().cost_usd(1, 3600.0), 0.023, 1e-12);
  EXPECT_NEAR(ellipse().cost_usd(1, 3600.0), 0.05, 1e-12);
  // EC2 charges the full 16-core instance even for one rank.
  EXPECT_NEAR(ec2().cost_usd(1, 3600.0), 2.40, 1e-12);
  EXPECT_NEAR(ec2().cost_usd(16, 3600.0), 2.40, 1e-12);
  EXPECT_NEAR(ec2().cost_usd(17, 3600.0), 4.80, 1e-12);
  // Spot pricing.
  EXPECT_NEAR(ec2().cost_usd(16, 3600.0, /*spot=*/true), 0.54, 1e-12);
  // No spot market on premises.
  EXPECT_THROW(puma().cost_usd(4, 3600.0, true), Error);
}

TEST(Platforms, Table2CostFormulaReproduces) {
  // Table II, last row: 63 hosts, 162.09 s/iteration -> $6.8077.
  EXPECT_NEAR(ec2().cost_usd(1000, 162.09), 6.8078, 5e-3);
  // Mix estimate: 63 hosts at 54 cents, 148.98 s -> $1.4079.
  EXPECT_NEAR(ec2().cost_usd(1000, 148.98, true), 1.4079, 5e-3);
}

TEST(Platforms, FabricsMatchInterconnects) {
  EXPECT_EQ(puma().fabric().name(), "1GbE");
  EXPECT_EQ(ellipse().fabric().name(), "1GbE");
  EXPECT_EQ(lagrange().fabric().name(), "IB 4X DDR");
  EXPECT_EQ(ec2().fabric().name(), "10GbE");
}

TEST(Platforms, CpuSpeedOrderingIsModernFirst) {
  EXPECT_GT(ec2().cpu_speed_factor, lagrange().cpu_speed_factor);
  EXPECT_GT(lagrange().cpu_speed_factor, ellipse().cpu_speed_factor);
  EXPECT_GT(ellipse().cpu_speed_factor, puma().cpu_speed_factor);
  EXPECT_DOUBLE_EQ(puma().cpu_speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(puma().cpu_model().speed_factor, 1.0);
}

TEST(Platforms, TopologyPacksRanksPerNode) {
  const auto topo = lagrange().topology(24);
  EXPECT_EQ(topo.ranks(), 24);
  EXPECT_EQ(topo.ranks_per_node(), 12);
  EXPECT_EQ(topo.nodes(), 2);
}

TEST(CapabilityTable, ContainsTheTableIRows) {
  const Table table = capability_table();
  EXPECT_EQ(table.cols(), 5u);  // attribute + 4 platforms
  const std::string text = table.to_text();
  for (const char* needle :
       {"cpu arch.", "network", "IB 4X DDR", "10GbE", "user space", "root",
        "PBS", "SGE", "shell", "Opteron 2214", "insufficient"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(CapabilityTable, SupportsSubsets) {
  const Table table = capability_table({&puma(), &ec2()});
  EXPECT_EQ(table.cols(), 3u);
}

}  // namespace
}  // namespace hetero::platform
