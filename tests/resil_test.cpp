// Unit tests for hetero::resil — the seed-deterministic fault plan, the
// recovery policy plumbing, and the netsim degradation schedule it hands
// out. The load-bearing property everywhere is statelessness: every query
// is a pure hash of (seed, coordinates), so replays and parallel evaluation
// cannot disagree.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "netsim/degradation.hpp"
#include "resil/fault_plan.hpp"
#include "resil/recovery.hpp"
#include "support/error.hpp"

namespace hetero::resil {
namespace {

FaultSpec crash_spec(double rate) {
  FaultSpec spec;
  spec.rank_crash_rate = rate;
  return spec;
}

TEST(FaultSpecTest, DefaultInjectsNothing) {
  EXPECT_FALSE(FaultSpec{}.enabled());
  EXPECT_FALSE(FaultPlan().enabled());
  EXPECT_FALSE(FaultPlan().rank_crash(8, 10, 0).has_value());
  EXPECT_FALSE(FaultPlan().launch_fails(0));
  EXPECT_FALSE(FaultPlan().reclaim_storm(0));
}

TEST(FaultSpecTest, RatesAreValidated) {
  EXPECT_THROW(FaultPlan(crash_spec(-0.1), 1), Error);
  EXPECT_THROW(FaultPlan(crash_spec(1.1), 1), Error);
  FaultSpec bad_factor;
  bad_factor.net_degrade_rate = 0.5;
  bad_factor.net_degrade_factor = 0.5;
  EXPECT_THROW(FaultPlan(bad_factor, 1), Error);
  FaultSpec bad_window;
  bad_window.net_degrade_rate = 0.5;
  bad_window.net_degrade_window_s = 0.0;
  EXPECT_THROW(FaultPlan(bad_window, 1), Error);
}

TEST(FaultPlanTest, CrashIsDeterministicAndOrderIndependent) {
  const FaultPlan plan(crash_spec(0.05), 42);
  const auto first = plan.rank_crash(8, 10, 0);
  // Re-querying (in any interleaving with other cells) gives the same cell.
  for (int attempt = 3; attempt >= 0; --attempt) {
    (void)plan.rank_crash(8, 10, attempt);
  }
  const auto again = plan.rank_crash(8, 10, 0);
  ASSERT_EQ(first.has_value(), again.has_value());
  if (first) {
    EXPECT_EQ(first->rank, again->rank);
    EXPECT_EQ(first->step, again->step);
  }
  // A fresh plan with the same (spec, seed) agrees too.
  const FaultPlan replay(crash_spec(0.05), 42);
  const auto replayed = replay.rank_crash(8, 10, 0);
  ASSERT_EQ(first.has_value(), replayed.has_value());
}

TEST(FaultPlanTest, CertainCrashHitsTheFirstExposedCell) {
  const FaultPlan plan(crash_spec(1.0), 7);
  const auto crash = plan.rank_crash(8, 10, 0);
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->step, 0);
  EXPECT_EQ(crash->rank, 0);
  // Resuming from step 6 exposes only later cells.
  const auto resumed = plan.rank_crash(8, 10, 0, 6);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->step, 6);
}

TEST(FaultPlanTest, FirstStepSkipsEarlierCells) {
  // Whatever cell fires, restarting past it must not report it again.
  const FaultPlan plan(crash_spec(0.2), 11);
  const auto crash = plan.rank_crash(8, 10, 0);
  ASSERT_TRUE(crash.has_value());
  const auto later = plan.rank_crash(8, 10, 0, crash->step + 1);
  if (later) {
    EXPECT_GT(later->step, crash->step);
  }
}

TEST(FaultPlanTest, AttemptsAreIndependentCells) {
  // With a moderate rate some attempts crash and (almost surely) not all
  // in the same cell: the attempt index really enters the hash.
  const FaultPlan plan(crash_spec(0.1), 3);
  std::set<std::pair<int, int>> cells;
  int crashes = 0;
  for (int attempt = 0; attempt < 20; ++attempt) {
    if (const auto c = plan.rank_crash(8, 10, attempt)) {
      ++crashes;
      cells.insert({c->step, c->rank});
    }
  }
  EXPECT_GT(crashes, 0);
  EXPECT_GT(cells.size(), 1u);
}

TEST(FaultPlanTest, SeedSelectsADifferentSchedule) {
  int differing = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const FaultPlan a(crash_spec(0.1), seed);
    const FaultPlan b(crash_spec(0.1), seed + 100);
    const auto ca = a.rank_crash(8, 20, 0);
    const auto cb = b.rank_crash(8, 20, 0);
    if (ca.has_value() != cb.has_value() ||
        (ca && (ca->step != cb->step || ca->rank != cb->rank))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanTest, LaunchAndStormQueriesAreDeterministic) {
  FaultSpec spec;
  spec.launch_failure_rate = 0.5;
  spec.reclaim_storm_rate = 0.5;
  const FaultPlan plan(spec, 9);
  int launch_faults = 0;
  int storms = 0;
  for (int i = 0; i < 64; ++i) {
    const bool launch = plan.launch_fails(i);
    const bool storm = plan.reclaim_storm(i);
    EXPECT_EQ(launch, plan.launch_fails(i));
    EXPECT_EQ(storm, plan.reclaim_storm(i));
    launch_faults += launch ? 1 : 0;
    storms += storm ? 1 : 0;
  }
  // Rate 0.5 over 64 trials: both some hits and some misses.
  EXPECT_GT(launch_faults, 0);
  EXPECT_LT(launch_faults, 64);
  EXPECT_GT(storms, 0);
  EXPECT_LT(storms, 64);
}

TEST(FaultPlanTest, DegradationScheduleCarriesTheSpec) {
  FaultSpec spec;
  spec.net_degrade_rate = 0.25;
  spec.net_degrade_factor = 5.0;
  spec.net_degrade_window_s = 10.0;
  const FaultPlan plan(spec, 13);
  const auto schedule = plan.degradation();
  EXPECT_TRUE(schedule.enabled());
  EXPECT_DOUBLE_EQ(schedule.active_fraction, 0.25);
  EXPECT_DOUBLE_EQ(schedule.factor, 5.0);
  EXPECT_DOUBLE_EQ(schedule.window_s, 10.0);
}

TEST(DegradationScheduleTest, DisabledIsExactlyOne) {
  const netsim::DegradationSchedule off;
  EXPECT_FALSE(off.enabled());
  for (double t : {0.0, 1.0, 59.9, 60.0, 1e6}) {
    EXPECT_EQ(off.factor_at(t), 1.0);
  }
}

TEST(DegradationScheduleTest, WindowsAreDeterministicAndBinary) {
  netsim::DegradationSchedule schedule;
  schedule.active_fraction = 0.5;
  schedule.factor = 3.0;
  schedule.seed = 21;
  int degraded = 0;
  for (int w = 0; w < 64; ++w) {
    const double t = w * schedule.window_s + 1.0;
    const double f = schedule.factor_at(t);
    EXPECT_TRUE(f == 1.0 || f == 3.0);
    // Any instant inside the same window agrees.
    EXPECT_EQ(f, schedule.factor_at(t + schedule.window_s * 0.9));
    degraded += f == 3.0 ? 1 : 0;
  }
  EXPECT_GT(degraded, 0);
  EXPECT_LT(degraded, 64);
  EXPECT_EQ(schedule.factor_at(-1.0), 1.0);
}

TEST(RecoveryTest, BackoffGrowsAndCaps) {
  RecoveryPolicy policy;
  policy.backoff_base_s = 30.0;
  policy.backoff_factor = 2.0;
  policy.backoff_cap_s = 100.0;
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 0), 30.0);
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 1), 60.0);
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 2), 100.0);  // capped, not 120
  EXPECT_DOUBLE_EQ(backoff_delay_s(policy, 10), 100.0);
}

TEST(RecoveryTest, KindNamesRoundTrip) {
  for (const auto kind :
       {RecoveryKind::kNone, RecoveryKind::kRestartScratch,
        RecoveryKind::kCheckpointRestart}) {
    EXPECT_EQ(recovery_kind_by_name(to_string(kind)), kind);
  }
  try {
    recovery_kind_by_name("bogus");
    FAIL() << "expected an Error for an unknown recovery kind";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("none|scratch|ckpt"),
              std::string::npos);
  }
}

TEST(RecoveryTest, InjectedFaultNamesRankAndStep) {
  const InjectedFault fault(3, 7);
  EXPECT_EQ(fault.rank(), 3);
  EXPECT_EQ(fault.step(), 7);
  const std::string what = fault.what();
  EXPECT_NE(what.find("rank 3"), std::string::npos);
  EXPECT_NE(what.find("step 7"), std::string::npos);
}

}  // namespace
}  // namespace hetero::resil
