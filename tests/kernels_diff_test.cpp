// Differential tests for the kernel overhaul. The golden fingerprints below
// were captured from the pre-overhaul build (the reference kernels, which
// are still compiled in as KernelMode::kReference): iteration counts,
// residuals, error norms, and solution norms printed at full %.17g
// precision. The overhaul's contract is that the fast kernels change *time*
// only, so both modes must still reproduce every digit.
//
// Also covered here: persistent halo scratch buffers staying put across
// steps and across a checkpointed 27 -> 8 rank shrink, and the frozen
// assembly scatter + DirichletPlan pair producing the same eliminated
// system as the reference make_dirichlet/apply_dirichlet path.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/ns_solver.hpp"
#include "apps/rd_solver.hpp"
#include "fem/assembler.hpp"
#include "fem/bc.hpp"
#include "fem/fe_space.hpp"
#include "io/checkpoint.hpp"
#include "la/kernels.hpp"
#include "la/system_builder.hpp"
#include "mesh/box_mesh.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"

namespace hetero {
namespace {

simmpi::Runtime make_runtime(int ranks) {
  return simmpi::Runtime(netsim::Topology::uniform(
      ranks, 4, netsim::Fabric::infiniband_ddr_4x(),
      netsim::Fabric::shared_memory()));
}

class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(la::KernelMode mode)
      : saved_(la::kernel_mode()) {
    la::set_kernel_mode(mode);
  }
  ~ScopedKernelMode() { la::set_kernel_mode(saved_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  la::KernelMode saved_;
};

/// Runs the RD solver and returns one fingerprint line per step, printed at
/// full double precision so any arithmetic drift fails the comparison.
std::vector<std::string> rd_fingerprint(int ranks, int global_cells,
                                        int order, double dt, int steps) {
  std::vector<std::string> lines;
  auto rt = make_runtime(ranks);
  rt.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = global_cells;
    config.order = order;
    config.dt = dt;
    apps::RdSolver solver(comm, config);
    for (int s = 0; s < steps; ++s) {
      const auto r = solver.step();
      const double un = solver.solution().norm2(comm);
      if (comm.rank() == 0) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "RD ranks=%d cells=%d order=%d step=%d iters=%d "
                      "conv=%d residual=%.17g nodal=%.17g l2=%.17g "
                      "unorm=%.17g",
                      ranks, global_cells, order, s, r.solver_iterations,
                      static_cast<int>(r.solver_converged), r.residual,
                      r.nodal_error, r.l2_error, un);
        lines.emplace_back(buf);
      }
    }
  });
  return lines;
}

std::vector<std::string> ns_fingerprint(int ranks, int global_cells,
                                        int vorder, int steps) {
  std::vector<std::string> lines;
  auto rt = make_runtime(ranks);
  rt.run([&](simmpi::Comm& comm) {
    apps::NsConfig config;
    config.global_cells = global_cells;
    config.velocity_order = vorder;
    apps::NsSolver solver(comm, config);
    for (int s = 0; s < steps; ++s) {
      const auto r = solver.step();
      const double xn = solver.state().norm2(comm);
      if (comm.rank() == 0) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "NS ranks=%d cells=%d vorder=%d step=%d iters=%d "
                      "conv=%d residual=%.17g nodal=%.17g l2=%.17g "
                      "xnorm=%.17g",
                      ranks, global_cells, vorder, s, r.solver_iterations,
                      static_cast<int>(r.solver_converged), r.residual,
                      r.nodal_error, r.l2_error, xn);
        lines.emplace_back(buf);
      }
    }
  });
  return lines;
}

void expect_lines(const std::vector<std::string>& got,
                  const std::vector<std::string>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "step " << i;
  }
}

// ---- golden fingerprints (captured from the seed build) -------------------

const std::vector<std::string> kRdSerial{
    "RD ranks=1 cells=4 order=2 step=0 iters=16 conv=1 "
    "residual=1.8592714872424313e-11 nodal=9.0523144535836764e-12 "
    "l2=1.5600936150586913e-12 unorm=39.562700329024182",
    "RD ranks=1 cells=4 order=2 step=1 iters=16 conv=1 "
    "residual=1.2413077366208457e-11 nodal=8.4350304518920893e-12 "
    "l2=1.4603498346213192e-12 unorm=47.082883036193088",
    "RD ranks=1 cells=4 order=2 step=2 iters=15 conv=1 "
    "residual=6.032653987688371e-11 nodal=3.8093528331728521e-11 "
    "l2=6.1488101530818658e-12 unorm=55.256994674424085"};

const std::vector<std::string> kRdEightRanks{
    "RD ranks=8 cells=4 order=2 step=0 iters=22 conv=1 "
    "residual=2.8773078530135858e-11 nodal=1.3544942945031835e-11 "
    "l2=2.4851417440466929e-12 unorm=39.562700329026754",
    "RD ranks=8 cells=4 order=2 step=1 iters=22 conv=1 "
    "residual=2.6137861633576999e-11 nodal=1.7548185127225224e-11 "
    "l2=3.1328004251552551e-12 unorm=47.08288303619711",
    "RD ranks=8 cells=4 order=2 step=2 iters=21 conv=1 "
    "residual=7.712607906503055e-11 nodal=4.9167780957759533e-11 "
    "l2=8.7515843916935806e-12 unorm=55.256994674424107"};

const std::vector<std::string> kRdP1{
    "RD ranks=8 cells=6 order=1 step=0 iters=15 conv=1 "
    "residual=1.6606771911143023e-11 nodal=5.872413666452303e-12 "
    "l2=0.015429033659441019 unorm=25.295341615046326",
    "RD ranks=8 cells=6 order=1 step=1 iters=15 conv=1 "
    "residual=1.1697690527405496e-11 nodal=5.5042082003353698e-12 "
    "l2=0.016933451907475937 unorm=27.76178082014189"};

const std::vector<std::string> kNsSerial{
    "NS ranks=1 cells=3 vorder=1 step=0 iters=11 conv=1 "
    "residual=3.427302961813413e-08 nodal=0.011286261515916336 "
    "l2=0.43455416940502517 xnorm=349.53310173945238",
    "NS ranks=1 cells=3 vorder=1 step=1 iters=11 conv=1 "
    "residual=9.1404597115550173e-10 nodal=0.025930793042775697 "
    "l2=0.43376983244220635 xnorm=346.20372448539706"};

const std::vector<std::string> kNsEightRanks{
    "NS ranks=8 cells=4 vorder=1 step=0 iters=18 conv=1 "
    "residual=1.0393830889817396e-07 nodal=0.02026646751909833 "
    "l2=0.24954694457247792 xnorm=658.77436797636562",
    "NS ranks=8 cells=4 vorder=1 step=1 iters=19 conv=1 "
    "residual=4.2557799205111596e-09 nodal=0.045980331598897695 "
    "l2=0.24900395887818072 xnorm=647.87206656625426"};

const std::vector<std::string> kNsP2{
    "NS ranks=1 cells=2 vorder=2 step=0 iters=10 conv=1 "
    "residual=1.3074157447893806e-07 nodal=0.0089538270307608081 "
    "l2=0.12287396751300722 xnorm=55.848223990815924"};

TEST(KernelGolden, RdFastModeReproducesSeedSerial) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  expect_lines(rd_fingerprint(1, 4, 2, 0.1, 3), kRdSerial);
}

TEST(KernelGolden, RdFastModeReproducesSeedEightRanks) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  expect_lines(rd_fingerprint(8, 4, 2, 0.1, 3), kRdEightRanks);
}

TEST(KernelGolden, RdFastModeReproducesSeedP1) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  expect_lines(rd_fingerprint(8, 6, 1, 0.05, 2), kRdP1);
}

TEST(KernelGolden, NsFastModeReproducesSeedSerial) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  expect_lines(ns_fingerprint(1, 3, 1, 2), kNsSerial);
}

TEST(KernelGolden, NsFastModeReproducesSeedEightRanks) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  expect_lines(ns_fingerprint(8, 4, 1, 2), kNsEightRanks);
}

TEST(KernelGolden, NsFastModeReproducesSeedP2) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  expect_lines(ns_fingerprint(1, 2, 2, 1), kNsP2);
}

TEST(KernelGolden, ReferenceModeReproducesSeedToo) {
  // The reference kernels ARE the seed implementations; a drift here means
  // the overhaul touched the specification path by accident.
  ScopedKernelMode mode(la::KernelMode::kReference);
  expect_lines(rd_fingerprint(1, 4, 2, 0.1, 3), kRdSerial);
  expect_lines(ns_fingerprint(1, 2, 2, 1), kNsP2);
}

// ---- halo scratch reuse across steps and a 27 -> 8 rank shrink ------------

TEST(HaloPersistence, ScratchStableAcrossStepsAndRankShrink) {
  ScopedKernelMode mode(la::KernelMode::kFast);
  const std::string ckpt = "/tmp/heterolab_kernels_diff_shrink.h5l";
  // global_cells=6 divides both the 3^3 and the 2^3 cube decomposition.
  const int global_cells = 6;

  // Phase 1: 27 ranks. The halo scratch must reach steady state after the
  // first step — later steps may not regrow it.
  auto rt27 = make_runtime(27);
  rt27.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = global_cells;
    config.order = 2;
    apps::RdSolver solver(comm, config);
    auto r = solver.step();
    const std::size_t cap_after_first = solver.halo().scratch_capacity();
    EXPECT_GT(cap_after_first, 0u) << "rank " << comm.rank();
    r = solver.step();
    r = solver.step();
    EXPECT_EQ(solver.halo().scratch_capacity(), cap_after_first)
        << "halo scratch regrew on rank " << comm.rank();
    EXPECT_TRUE(r.solver_converged);
    EXPECT_LT(r.nodal_error, 1e-9);
    io::save_solver_checkpoint(comm, solver.solution(),
                               solver.previous_solution(),
                               solver.current_time(), solver.steps_taken(),
                               ckpt);
  });

  // Phase 2: a reclaim took hosts — restart the same global problem on 8
  // ranks from the checkpoint (gid-redistributed) and keep stepping. The
  // survivor decomposition's halo buffers must be steady as well, and the
  // exact-solution oracle certifies the continued trajectory.
  auto rt8 = make_runtime(8);
  rt8.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = global_cells;
    config.order = 2;
    apps::RdSolver solver(comm, config);
    la::DistVector u_now(solver.map());
    la::DistVector u_prev(solver.map());
    const io::SolverCheckpointMeta meta =
        io::load_solver_checkpoint(comm, u_now, u_prev, ckpt);
    EXPECT_EQ(meta.steps_done, 3);
    solver.restore_state(u_now, u_prev, meta.time);
    auto r = solver.step();
    const std::size_t cap_after_first = solver.halo().scratch_capacity();
    EXPECT_GT(cap_after_first, 0u) << "rank " << comm.rank();
    r = solver.step();
    EXPECT_EQ(solver.halo().scratch_capacity(), cap_after_first)
        << "halo scratch regrew after shrink on rank " << comm.rank();
    EXPECT_TRUE(r.solver_converged);
    // u = t^2 |x|^2 is in the P2/BDF2 space: the restarted trajectory on
    // the smaller assembly stays exact to solver tolerance.
    EXPECT_LT(r.nodal_error, 1e-9);
  });
  std::remove(ckpt.c_str());
}

// ---- frozen-scatter assembly + DirichletPlan vs the reference path --------

TEST(DirichletReassembly, PlanMatchesReferencePathBitwiseAcrossRefills) {
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    mesh::BoxMeshSpec spec{3, 3, 3};
    mesh::BlockDecomposition dec(spec, comm.size());
    const auto sub = mesh::build_box_submesh(spec, dec.box(comm.rank()));
    fem::FeSpace space(sub, 2, spec.vertex_count());
    fem::ElementKernel kernel(space, 4);
    const int n = kernel.n();

    // Element mass/stiffness integrals, computed once and fed verbatim to
    // both builders so the only difference under test is the scatter path
    // and the elimination path.
    std::vector<std::vector<double>> me_all, ke_all;
    std::vector<double> me(static_cast<std::size_t>(n * n));
    std::vector<double> ke(static_cast<std::size_t>(n * n));
    for (std::size_t t = 0; t < sub.tet_count(); ++t) {
      kernel.mass(t, me);
      kernel.stiffness(t, ke);
      me_all.push_back(me);
      ke_all.push_back(ke);
    }

    la::DistSystemBuilder ref_builder(comm, space.dof_gids());
    la::DistSystemBuilder fast_builder(comm, space.dof_gids());

    auto on_boundary = [](const mesh::Vec3& x) {
      const double eps = 1e-12;
      return x.x < eps || x.x > 1.0 - eps || x.y < eps ||
             x.y > 1.0 - eps || x.z < eps || x.z > 1.0 - eps;
    };

    // assemble A = mc*M + K with per-dof rhs = mc, into `builder`.
    std::vector<la::GlobalId> gids(static_cast<std::size_t>(n));
    std::vector<double> ae(static_cast<std::size_t>(n * n));
    std::vector<double> re(static_cast<std::size_t>(n));
    auto assemble = [&](la::DistSystemBuilder& builder, double mc) {
      builder.begin_assembly();
      for (std::size_t t = 0; t < sub.tet_count(); ++t) {
        for (int k = 0; k < n * n; ++k) {
          const auto l = static_cast<std::size_t>(k);
          ae[l] = mc * me_all[t][l] + ke_all[t][l];
        }
        for (int i = 0; i < n; ++i) {
          re[static_cast<std::size_t>(i)] = mc;
        }
        space.tet_dof_gids(t, gids);
        builder.add_dense_block(gids, gids, ae);
        builder.add_rhs_block(gids, re);
      }
      builder.finalize(comm);
    };

    // The plan freezes the constrained set (and the flags exchange) once —
    // after the first finalize, since map()/halo() need the frozen
    // structure; the reference path rebuilds everything per cycle.
    std::unique_ptr<fem::DirichletPlan> plan;

    // Two refill cycles with different coefficients and boundary data: the
    // second pass exercises the frozen scatter replay and the cached
    // elimination slot lists on the Dirichlet rows.
    for (int cycle = 0; cycle < 2; ++cycle) {
      const double mc = 1.0 + 0.5 * cycle;
      auto g = [&](const mesh::Vec3& x) {
        return mc * (x.x + 2.0 * x.y - x.z);
      };

      std::optional<la::DistVector> x_ref;
      {
        ScopedKernelMode m(la::KernelMode::kReference);
        assemble(ref_builder, mc);
        x_ref.emplace(ref_builder.map());
        const fem::DirichletData bc =
            fem::make_dirichlet(comm, space, ref_builder.map(),
                                ref_builder.halo(), on_boundary, g);
        fem::apply_dirichlet(ref_builder.matrix(), ref_builder.rhs(), *x_ref,
                             bc);
      }

      {
        ScopedKernelMode m(la::KernelMode::kFast);
        assemble(fast_builder, mc);
        if (!plan) {
          plan = std::make_unique<fem::DirichletPlan>(
              comm, space, fast_builder.map(), fast_builder.halo(),
              on_boundary);
          EXPECT_GT(plan->constrained_count(), 0u);
        }
      }
      la::DistVector x_fast(fast_builder.map());
      {
        ScopedKernelMode m(la::KernelMode::kFast);
        plan->update(comm, fast_builder.halo(), g);
        plan->apply(fast_builder.matrix(), fast_builder.rhs(), x_fast);
      }

      const auto& a_ref = ref_builder.matrix().local();
      const auto& a_fast = fast_builder.matrix().local();
      ASSERT_EQ(a_ref.nonzeros(), a_fast.nonzeros()) << "cycle " << cycle;
      for (std::int64_t k = 0; k < a_ref.nonzeros(); ++k) {
        const auto l = static_cast<std::size_t>(k);
        ASSERT_EQ(a_ref.values()[l], a_fast.values()[l])
            << "cycle " << cycle << " slot " << k;
      }
      const auto rhs_ref = ref_builder.rhs().owned();
      const auto rhs_fast = fast_builder.rhs().owned();
      for (int i = 0; i < ref_builder.map().owned_count(); ++i) {
        const auto l = static_cast<std::size_t>(i);
        ASSERT_EQ(rhs_ref[l], rhs_fast[l]) << "cycle " << cycle;
        ASSERT_EQ((*x_ref)[i], x_fast[i]) << "cycle " << cycle;
      }
    }
  });
}

}  // namespace
}  // namespace hetero
