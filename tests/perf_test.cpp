// Tests for the weak-scaling performance model, including its agreement
// with direct (thread-level) runs of the real applications.

#include <gtest/gtest.h>

#include "apps/rd_solver.hpp"
#include "netsim/fabric.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"

namespace hetero::perf {
namespace {

TEST(WorkModel, NeighbourCounts) {
  EXPECT_EQ(typical_neighbours(1), 0);
  EXPECT_EQ(typical_neighbours(8), 3);
  EXPECT_EQ(typical_neighbours(27), 6);
  EXPECT_EQ(typical_neighbours(1000), 6);
}

TEST(WorkModel, HaloSaturatesAtInteriorRanks) {
  const ModelConfig rd = rd_model();
  EXPECT_EQ(halo_dofs_per_rank(rd, 1), 0);
  const auto h8 = halo_dofs_per_rank(rd, 8);
  const auto h27 = halo_dofs_per_rank(rd, 27);
  const auto h1000 = halo_dofs_per_rank(rd, 1000);
  EXPECT_GT(h8, 0);
  EXPECT_EQ(h27, 2 * h8);   // 6 faces vs 3
  EXPECT_EQ(h1000, h27);    // interior ranks everywhere beyond 27
}

TEST(WorkModel, CountsScaleWithCellsPerRank) {
  ModelConfig rd = rd_model();
  rd.cells_per_rank_axis = 10;
  const auto w10 = work_per_rank(rd, 27);
  rd.cells_per_rank_axis = 20;
  const auto w20 = work_per_rank(rd, 27);
  EXPECT_EQ(w20.local_tets, 8 * w10.local_tets);
  EXPECT_EQ(w20.local_rows, 8 * w10.local_rows);
  EXPECT_EQ(w20.matrix_entries_assembled, 8 * w10.matrix_entries_assembled);
}

TEST(WorkModel, MatchesDirectRunCounts) {
  // Run the real RD application at 8 ranks with 4^3 cells per rank and
  // compare the analytic per-rank counts. Boundary effects make the real
  // owned-dof counts slightly larger than the interior estimate.
  apps::WorkCounts measured;
  double avg_rows = 0.0;
  double avg_nnz = 0.0;
  simmpi::Runtime rt(platform::puma().topology(8));
  rt.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = 8;  // 4^3 cells per rank on 8 ranks
    config.compute_errors = false;
    apps::RdSolver solver(comm, config);
    const auto r = solver.step();
    // Ownership is min-rank-biased, so average the per-rank counts.
    const double rows = comm.allreduce(
        static_cast<double>(r.work.local_rows), simmpi::ReduceOp::kSum);
    const double nnz = comm.allreduce(
        static_cast<double>(r.work.local_nonzeros), simmpi::ReduceOp::kSum);
    if (comm.rank() == 0) {
      measured = r.work;
      avg_rows = rows / comm.size();
      avg_nnz = nnz / comm.size();
    }
  });
  ModelConfig rd = rd_model();
  rd.cells_per_rank_axis = 4;
  const auto modeled = work_per_rank(rd, 8);
  EXPECT_EQ(measured.local_tets, modeled.local_tets);
  EXPECT_EQ(measured.matrix_entries_assembled,
            modeled.matrix_entries_assembled);
  // Average rows / nonzeros per rank: the interior estimate is within the
  // boundary-effect band at this tiny size (surface/volume ~ 1/4).
  EXPECT_NEAR(avg_rows, static_cast<double>(modeled.local_rows),
              0.3 * static_cast<double>(modeled.local_rows));
  EXPECT_NEAR(avg_nnz, static_cast<double>(modeled.local_nonzeros),
              0.35 * static_cast<double>(modeled.local_nonzeros));
}

TEST(WorkModel, NeighbourSplitExactCases) {
  double on = 0.0;
  double off = 0.0;
  // p = 8, 2 ranks/node: every rank's single x-neighbour is its node mate.
  average_neighbour_split(8, 2, &on, &off);
  EXPECT_DOUBLE_EQ(on, 1.0);
  EXPECT_DOUBLE_EQ(off, 2.0);
  // One rank per node: everything is off-node.
  average_neighbour_split(27, 1, &on, &off);
  EXPECT_DOUBLE_EQ(on, 0.0);
  EXPECT_GT(off, 0.0);
  // Whole job on one node: everything is on-node.
  average_neighbour_split(8, 8, &on, &off);
  EXPECT_DOUBLE_EQ(off, 0.0);
  EXPECT_DOUBLE_EQ(on, 3.0);
  // Misalignment wiggles: k = 9 on 16-wide nodes has a different off-node
  // share than k = 8 (the EC2 "certain sizes" effect).
  double on8 = 0.0;
  double off8 = 0.0;
  double on9 = 0.0;
  double off9 = 0.0;
  average_neighbour_split(512, 16, &on8, &off8);
  average_neighbour_split(729, 16, &on9, &off9);
  EXPECT_NE(off8 / (on8 + off8), off9 / (on9 + off9));
}

TEST(WorkModel, HaloTrafficMatchesTheDirectRun) {
  // The model's per-exchange halo volume must agree with the bytes the real
  // halo plan moves: measured import size vs modeled halo dofs, same size.
  std::int64_t measured = 0;
  simmpi::Runtime rt(platform::puma().topology(27));
  rt.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = 9;  // 3^3 cells per rank on 27 ranks
    config.compute_errors = false;
    apps::RdSolver solver(comm, config);
    const auto r = solver.step();
    // The centre rank of the 3x3x3 decomposition is fully interior.
    const auto centre = comm.allreduce(
        comm.rank() == 13 ? r.work.halo_doubles : std::int64_t{0},
        simmpi::ReduceOp::kMax);
    if (comm.rank() == 0) {
      measured = centre;
    }
  });
  ModelConfig rd = rd_model();
  rd.cells_per_rank_axis = 3;
  const auto modeled = halo_dofs_per_rank(rd, 27);
  // The face model is a lower bound: the real ghost set adds block-edge and
  // corner dofs, an O(1/n) surplus that is large at n = 3 (here ~1.8x) and
  // shrinks to a few percent at the paper's n = 20.
  EXPECT_GT(measured, 0);
  const double ratio =
      static_cast<double>(measured) / static_cast<double>(modeled);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 2.2);
}

TEST(Projection, PhasesSumToTotal) {
  const ModelConfig rd = rd_model();
  for (int p : {1, 27, 512}) {
    const auto topo = platform::ec2().topology(p);
    const auto b = project_iteration(rd, topo, platform::ec2().cpu_model(), p);
    EXPECT_NEAR(b.total_s, b.assembly_s + b.preconditioner_s + b.solve_s,
                1e-12);
    EXPECT_GT(b.assembly_s, 0.0);
    EXPECT_GT(b.preconditioner_s, 0.0);
    EXPECT_GT(b.solve_s, 0.0);
  }
}

TEST(Projection, LagrangeStaysNearlyFlatWhereEthernetDegrades) {
  const ModelConfig rd = rd_model();
  auto total = [&](const platform::PlatformSpec& spec, int p) {
    return project_iteration(rd, spec.topology(p), spec.cpu_model(), p)
        .total_s;
  };
  // Weak-scaling degradation factor from 1 to 343 ranks.
  const double lagrange_deg =
      total(platform::lagrange(), 343) / total(platform::lagrange(), 1);
  const double ellipse_deg =
      total(platform::ellipse(), 343) / total(platform::ellipse(), 1);
  EXPECT_LT(lagrange_deg, 2.0);         // "good weak scaling"
  EXPECT_GT(ellipse_deg, 2.0);          // 1GbE falls over
  EXPECT_GT(ellipse_deg, 1.5 * lagrange_deg);
}

TEST(Projection, Ec2DegradesLessThanGigabitAtEqualScale) {
  const ModelConfig rd = rd_model();
  auto total = [&](const platform::PlatformSpec& spec, int p) {
    return project_iteration(rd, spec.topology(p), spec.cpu_model(), p)
        .total_s;
  };
  // §VII-A: 16-core instances mean fewer hosts and less wire traffic.
  const double ec2_deg = total(platform::ec2(), 512) / total(platform::ec2(), 1);
  const double ellipse_deg =
      total(platform::ellipse(), 512) / total(platform::ellipse(), 1);
  EXPECT_LT(ec2_deg, ellipse_deg);
}

TEST(Projection, FlatUpTo125ThenDegrades) {
  // "The problem scales well for all targets in the range 1-125."
  const ModelConfig rd = rd_model();
  for (const auto* spec : platform::all_platforms()) {
    const double t1 = project_iteration(rd, spec->topology(1),
                                        spec->cpu_model(), 1)
                          .total_s;
    const double t125 = project_iteration(rd, spec->topology(125),
                                          spec->cpu_model(), 125)
                            .total_s;
    // "Reasonably steady": within ~2x of the single-rank time (the 1GbE
    // platforms sit right at the shoulder of their degradation curve).
    EXPECT_LT(t125 / t1, 2.2) << spec->name << " should be steady to 125";
  }
}

TEST(Projection, NsIsMoreCommunicationBoundThanRd) {
  const ModelConfig rd = rd_model();
  const ModelConfig ns = ns_model();
  auto degradation = [&](const ModelConfig& m) {
    const auto& spec = platform::ellipse();
    const double t1 =
        project_iteration(m, spec.topology(1), spec.cpu_model(), 1).total_s;
    const double t343 =
        project_iteration(m, spec.topology(343), spec.cpu_model(), 343)
            .total_s;
    return t343 / t1;
  };
  EXPECT_GT(degradation(ns), degradation(rd));
}

TEST(Projection, SolverIterationsGrowSlowly) {
  const ModelConfig rd = rd_model();
  const auto topo1 = platform::ec2().topology(1);
  const auto topo1000 = platform::ec2().topology(1000);
  const auto b1 =
      project_iteration(rd, topo1, platform::ec2().cpu_model(), 1);
  const auto b1000 =
      project_iteration(rd, topo1000, platform::ec2().cpu_model(), 1000);
  EXPECT_GT(b1000.solver_iterations, b1.solver_iterations);
  EXPECT_LT(b1000.solver_iterations, 4.0 * b1.solver_iterations);
}

TEST(Projection, MatchesDirectRunMagnitudeAtSmallScale) {
  // The direct run (real application through the simulated MPI) and the
  // analytic projection must agree on the compute-dominated phases at a
  // small, boundary-affected size — within a factor allowing for boundary
  // effects and the coarser comm model.
  double direct_assembly = 0.0;
  double direct_total = 0.0;
  simmpi::Runtime rt(platform::puma().topology(8));
  rt.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = 8;
    config.compute_errors = false;
    config.cpu = platform::puma().cpu_model();
    apps::RdSolver solver(comm, config);
    solver.step();  // structure warm-up
    const auto r = solver.step();
    if (comm.rank() == 0) {
      direct_assembly = r.timing.assembly_s;
      direct_total = r.timing.total_s;
    }
  });
  ModelConfig rd = rd_model();
  rd.cells_per_rank_axis = 4;
  // The direct run's CG converged in far fewer iterations at this tiny
  // size; compare per-phase compute instead of the iteration-count model.
  const auto modeled = project_iteration(rd, platform::puma().topology(8),
                                         platform::puma().cpu_model(), 8);
  EXPECT_GT(direct_assembly, 0.3 * modeled.assembly_s);
  EXPECT_LT(direct_assembly, 3.0 * modeled.assembly_s);
  EXPECT_GT(direct_total, 0.0);
}

}  // namespace
}  // namespace hetero::perf
