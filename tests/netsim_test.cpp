// Tests for the network models: fabric cost functions, topology placement,
// and collective cost formulas.

#include <gtest/gtest.h>

#include "netsim/collectives.hpp"
#include "netsim/fabric.hpp"
#include "netsim/topology.hpp"
#include "support/error.hpp"

namespace hetero::netsim {
namespace {

TEST(Fabric, MessageTimeIsLatencyPlusBandwidth) {
  Fabric f(FabricParams{.name = "test",
                        .latency_s = 1e-5,
                        .bandwidth_bps = 1e8,
                        .eager_threshold_bytes = 1 << 20,
                        .rendezvous_extra_s = 0.0});
  EXPECT_NEAR(f.message_time(0), 1e-5, 1e-12);
  EXPECT_NEAR(f.message_time(100000), 1e-5 + 1e-3, 1e-9);
}

TEST(Fabric, RendezvousKicksInAtThreshold) {
  Fabric f(FabricParams{.name = "test",
                        .latency_s = 1e-5,
                        .bandwidth_bps = 1e8,
                        .eager_threshold_bytes = 1024,
                        .rendezvous_extra_s = 5e-5});
  const double below = f.message_time(1023);
  const double at = f.message_time(1024);
  EXPECT_GT(at - below, 4.9e-5);
}

TEST(Fabric, MessageTimeMonotoneInSize) {
  const Fabric f = Fabric::gigabit_ethernet();
  double prev = 0.0;
  for (std::uint64_t b = 1; b <= (1u << 22); b *= 4) {
    const double t = f.message_time(b);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Fabric, InjectionSharesNodeBandwidth) {
  const Fabric f = Fabric::ten_gigabit_ethernet();
  const double one = f.injection_time(1 << 20, 1);
  const double sixteen = f.injection_time(1 << 20, 16);
  // Sixteen concurrent flows through one NIC must be much slower than one.
  EXPECT_GT(sixteen, 8.0 * one * 0.5);
  EXPECT_GT(sixteen, one);
}

TEST(Fabric, BuiltinFabricRanking) {
  // Latency: IB << 1GbE and 10GbE (virtualized).
  EXPECT_LT(Fabric::infiniband_ddr_4x().params().latency_s,
            Fabric::gigabit_ethernet().params().latency_s / 5.0);
  // Bandwidth: 1GbE << 10GbE <= IB.
  EXPECT_LT(Fabric::gigabit_ethernet().params().bandwidth_bps * 5.0,
            Fabric::ten_gigabit_ethernet().params().bandwidth_bps);
  EXPECT_LE(Fabric::ten_gigabit_ethernet().params().bandwidth_bps,
            Fabric::infiniband_ddr_4x().params().bandwidth_bps * 1.5);
  // Shared memory beats every wire on latency.
  EXPECT_LT(Fabric::shared_memory().params().latency_s,
            Fabric::infiniband_ddr_4x().params().latency_s);
}

TEST(Fabric, EffectiveBandwidthApproachesLineRate) {
  const Fabric f = Fabric::gigabit_ethernet();
  const double eff = f.effective_bandwidth(64 << 20);
  EXPECT_GT(eff, 0.9 * f.params().bandwidth_bps);
  EXPECT_LE(eff, f.params().bandwidth_bps);
}

TEST(Fabric, RejectsBadParams) {
  EXPECT_THROW(Fabric(FabricParams{.name = "bad", .bandwidth_bps = 0.0}),
               Error);
  EXPECT_THROW(
      Fabric(FabricParams{
          .name = "bad", .latency_s = -1.0, .bandwidth_bps = 1.0}),
      Error);
}

TEST(Topology, NodeAssignmentIsBlocked) {
  auto topo = Topology::uniform(10, 4, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  EXPECT_EQ(topo.nodes(), 3);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(9), 2);
  EXPECT_TRUE(topo.same_node(0, 3));
  EXPECT_FALSE(topo.same_node(3, 4));
}

TEST(Topology, IntraNodeMessagesUseSharedMemory) {
  auto topo = Topology::uniform(8, 4, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  const double intra = topo.message_time(0, 1, 4096);
  const double inter = topo.message_time(0, 4, 4096);
  EXPECT_LT(intra * 5.0, inter);
  EXPECT_DOUBLE_EQ(topo.message_time(2, 2, 4096), 0.0);
}

TEST(Topology, CrossGroupPenaltyApplies) {
  TopologySpec spec;
  spec.ranks = 4;
  spec.ranks_per_node = 1;
  spec.node_group = {0, 0, 1, 1};
  spec.cross_group_penalty = 0.5;
  Topology topo(spec, Fabric::ten_gigabit_ethernet(),
                Fabric::shared_memory());
  const double same = topo.message_time(0, 1, 1 << 16);
  const double cross = topo.message_time(0, 2, 1 << 16);
  EXPECT_NEAR(cross, same * 1.5, same * 1e-9);
}

TEST(Topology, RejectsBadSpecs) {
  TopologySpec spec;
  spec.ranks = 4;
  spec.ranks_per_node = 2;
  spec.node_group = {0};  // wrong size: 2 nodes expected
  EXPECT_THROW(Topology(spec, Fabric::gigabit_ethernet(),
                        Fabric::shared_memory()),
               Error);
}

TEST(Topology, ExchangeTimeGrowsWithOffNodeBytes) {
  auto topo = Topology::uniform(16, 4, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  const double small = topo.exchange_time(1 << 10, 2, 1 << 10, 2);
  const double big = topo.exchange_time(1 << 20, 2, 1 << 10, 2);
  EXPECT_GT(big, small * 10.0);
}

TEST(Topology, ContentionScaleGrowsWithNodes) {
  auto one = Topology::uniform(16, 16, Fabric::gigabit_ethernet(),
                               Fabric::shared_memory());
  EXPECT_DOUBLE_EQ(one.contention_scale(), 1.0);  // single node
  auto four = Topology::uniform(16, 4, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  EXPECT_NEAR(four.contention_scale(), 1.0 + 24.0 * 3.0 / 32.0, 1e-12);
  // InfiniBand barely notices the same node count.
  auto ib = Topology::uniform(16, 4, Fabric::infiniband_ddr_4x(),
                              Fabric::shared_memory());
  EXPECT_LT(ib.contention_scale(), 1.05);
}

TEST(Topology, ContentionAffectsOnlyOffNodeMessages) {
  auto topo = Topology::uniform(8, 4, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  // Intra-node messages use shared memory: no contention factor.
  const double intra = topo.message_time(0, 1, 4096);
  auto single = Topology::uniform(4, 4, Fabric::gigabit_ethernet(),
                                  Fabric::shared_memory());
  EXPECT_DOUBLE_EQ(intra, single.message_time(0, 1, 4096));
  // Inter-node messages carry it.
  EXPECT_GT(topo.message_time(0, 4, 4096),
            Fabric::gigabit_ethernet().message_time(4096));
}

TEST(Collectives, SingleRankIsFree) {
  auto topo = Topology::uniform(1, 1, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  EXPECT_DOUBLE_EQ(barrier_time(topo), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_time(topo, 8), 0.0);
  EXPECT_DOUBLE_EQ(bcast_time(topo, 1024), 0.0);
  EXPECT_DOUBLE_EQ(alltoall_time(topo, 1024), 0.0);
}

namespace {
/// Fabric without switch contention, for tests of the pure algorithmic
/// scaling of the collective cost formulas.
Fabric flat_fabric() {
  FabricParams p = Fabric::gigabit_ethernet().params();
  p.oversubscription = 0.0;
  return Fabric(p);
}
}  // namespace

TEST(Collectives, AllreduceScalesLogarithmicallyWithoutContention) {
  auto t8 = Topology::uniform(8, 1, flat_fabric(), Fabric::shared_memory());
  auto t64 = Topology::uniform(64, 1, flat_fabric(), Fabric::shared_memory());
  const double a8 = allreduce_time(t8, 8);
  const double a64 = allreduce_time(t64, 8);
  // log2(64)/log2(8) = 2: doubling, not 8x.
  EXPECT_NEAR(a64 / a8, 2.0, 0.3);
}

TEST(Collectives, ContentionAmplifiesLargeEthernetJobs) {
  // With the oversubscription model the same comparison degrades
  // super-logarithmically — the effect behind the paper's 1GbE curves.
  auto t8 = Topology::uniform(8, 1, Fabric::gigabit_ethernet(),
                              Fabric::shared_memory());
  auto t64 = Topology::uniform(64, 1, Fabric::gigabit_ethernet(),
                               Fabric::shared_memory());
  EXPECT_GT(allreduce_time(t64, 8) / allreduce_time(t8, 8), 4.0);
  // InfiniBand stays close to the algorithmic bound.
  auto i8 = Topology::uniform(8, 1, Fabric::infiniband_ddr_4x(),
                              Fabric::shared_memory());
  auto i64 = Topology::uniform(64, 1, Fabric::infiniband_ddr_4x(),
                               Fabric::shared_memory());
  EXPECT_LT(allreduce_time(i64, 8) / allreduce_time(i8, 8), 3.5);
}

TEST(Collectives, MultiRankNodesCheapenEarlyTreeLevels) {
  auto spread = Topology::uniform(16, 1, Fabric::gigabit_ethernet(),
                                  Fabric::shared_memory());
  auto packed = Topology::uniform(16, 16, Fabric::gigabit_ethernet(),
                                  Fabric::shared_memory());
  EXPECT_LT(allreduce_time(packed, 8), allreduce_time(spread, 8) / 5.0);
}

TEST(Collectives, LatencyRankingCarriesOver) {
  auto ib = Topology::uniform(64, 12, Fabric::infiniband_ddr_4x(),
                              Fabric::shared_memory());
  auto ge = Topology::uniform(64, 4, Fabric::gigabit_ethernet(),
                              Fabric::shared_memory());
  EXPECT_LT(allreduce_time(ib, 8), allreduce_time(ge, 8) / 3.0);
}

TEST(Collectives, GatherIsLinearInRanks) {
  auto t8 = Topology::uniform(8, 1, flat_fabric(), Fabric::shared_memory());
  auto t32 = Topology::uniform(32, 1, flat_fabric(), Fabric::shared_memory());
  const double g8 = gather_time(t8, 1024);
  const double g32 = gather_time(t32, 1024);
  EXPECT_NEAR(g32 / g8, 31.0 / 7.0, 0.5);
}

TEST(Collectives, AlltoallCostsMoreThanAllgather) {
  auto topo = Topology::uniform(32, 4, Fabric::gigabit_ethernet(),
                                Fabric::shared_memory());
  EXPECT_GE(alltoall_time(topo, 8192), allgather_time(topo, 8192) * 0.5);
}

}  // namespace
}  // namespace hetero::netsim
