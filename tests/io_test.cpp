// Tests for the H5Lite dataset container and distributed checkpointing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/checkpoint.hpp"
#include "io/h5lite.hpp"
#include "la/system_builder.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"
#include "support/error.hpp"

namespace hetero::io {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path("/tmp/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(H5Lite, RoundTripsDoublesAndInts) {
  TempFile f("h5lite_roundtrip.h5l");
  {
    H5LiteWriter writer(f.path);
    writer.write_doubles("fields/u", {2, 3}, {1, 2, 3, 4, 5, 6});
    writer.write_ints("meta/steps", {4}, {10, 20, 30, 40});
    writer.close();
  }
  H5LiteReader reader(f.path);
  EXPECT_TRUE(reader.has("fields/u"));
  EXPECT_TRUE(reader.has("meta/steps"));
  EXPECT_FALSE(reader.has("missing"));
  const auto info = reader.info("fields/u");
  EXPECT_EQ(info.dtype, DType::kFloat64);
  ASSERT_EQ(info.shape.size(), 2u);
  EXPECT_EQ(info.shape[0], 2u);
  EXPECT_EQ(info.shape[1], 3u);
  EXPECT_EQ(info.element_count(), 6u);
  const auto u = reader.read_doubles("fields/u");
  ASSERT_EQ(u.size(), 6u);
  EXPECT_DOUBLE_EQ(u[4], 5.0);
  const auto steps = reader.read_ints("meta/steps");
  EXPECT_EQ(steps[3], 40);
  const auto names = reader.names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(H5Lite, RejectsBadUsage) {
  TempFile f("h5lite_bad.h5l");
  H5LiteWriter writer(f.path);
  writer.write_doubles("a", {2}, {1.0, 2.0});
  // Duplicate name.
  EXPECT_THROW(writer.write_doubles("a", {1}, {3.0}), Error);
  // Shape/data mismatch.
  EXPECT_THROW(writer.write_doubles("b", {3}, {1.0}), Error);
  writer.close();
  // Writing after close.
  EXPECT_THROW(writer.write_doubles("c", {1}, {1.0}), Error);

  H5LiteReader reader(f.path);
  EXPECT_THROW(reader.read_doubles("zzz"), Error);
  // Type confusion.
  EXPECT_THROW(reader.read_ints("a"), Error);
}

TEST(H5Lite, DetectsTruncatedFiles) {
  TempFile f("h5lite_trunc.h5l");
  {
    std::ofstream os(f.path, std::ios::binary);
    os << "definitely not a dataset file";
  }
  EXPECT_THROW(H5LiteReader reader(f.path), Error);
  EXPECT_THROW(H5LiteReader reader("/tmp/does-not-exist.h5l"), Error);
}

TEST(H5Lite, NothingIsPublishedUntilClose) {
  TempFile f("h5lite_unpublished.h5l");
  TempFile tmp("h5lite_unpublished.h5l.tmp");
  H5LiteWriter writer(f.path);
  writer.write_doubles("v", {1}, {2.0});
  // Every byte so far lives in the side file; the target path must not
  // exist yet (a crash here leaves no half-written "checkpoint").
  EXPECT_THROW(H5LiteReader premature(f.path), Error);
  {
    std::ifstream side(tmp.path, std::ios::binary);
    EXPECT_TRUE(side.good());
  }
  writer.close();
  // close() renamed the side file into place.
  {
    std::ifstream side(tmp.path, std::ios::binary);
    EXPECT_FALSE(side.good());
  }
  H5LiteReader reader(f.path);
  EXPECT_DOUBLE_EQ(reader.read_doubles("v")[0], 2.0);
}

TEST(H5Lite, CrashMidRewriteLeavesThePreviousCheckpointLoadable) {
  TempFile f("h5lite_atomic.h5l");
  TempFile tmp("h5lite_atomic.h5l.tmp");
  {
    H5LiteWriter writer(f.path);
    writer.write_doubles("state", {2}, {1.0, 2.0});
    writer.close();
  }
  {
    // Rewrite the same path, but "crash" before close(): the new bytes
    // stay in the .tmp file and never reach the published checkpoint.
    H5LiteWriter writer(f.path);
    writer.write_doubles("state", {2}, {9.0, 9.0});
    std::ifstream side(tmp.path, std::ios::binary);
    EXPECT_TRUE(side.good());
    const auto old = H5LiteReader(f.path).read_doubles("state");
    EXPECT_DOUBLE_EQ(old[0], 1.0);
    EXPECT_DOUBLE_EQ(old[1], 2.0);
    writer.close();
  }
  // Simulate the on-disk debris of a kill mid-write — a truncated .tmp
  // next to the published file — and confirm loading is unaffected.
  {
    std::ofstream os(tmp.path, std::ios::binary | std::ios::trunc);
    const std::uint64_t magic = 0x48354C4954453031ULL;
    os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    os.write("torn", 4);
  }
  const auto values = H5LiteReader(f.path).read_doubles("state");
  EXPECT_DOUBLE_EQ(values[0], 9.0);
  EXPECT_DOUBLE_EQ(values[1], 9.0);
}

TEST(H5Lite, UnclosedWriterLeavesNoFooter) {
  TempFile f("h5lite_nofooter.h5l");
  {
    // Simulate a crash: write data, skip close() by writing raw bytes that
    // start with the magic but carry no footer.
    H5LiteWriter writer(f.path);
    writer.write_doubles("a", {1}, {1.0});
    // close() runs in the destructor, so reopen and truncate the footer.
  }
  std::ofstream os(f.path, std::ios::binary | std::ios::trunc);
  const std::uint64_t magic = 0x48354C4954453031ULL;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write("payloadbytes", 12);
  os.close();
  EXPECT_THROW(H5LiteReader reader(f.path), Error);
}

/// Builds a small distributed vector with gids 0..n-1 block-distributed.
la::DistVector make_vector(simmpi::Comm& comm,
                           std::unique_ptr<la::DistSystemBuilder>& builder,
                           int n) {
  const int per = (n + comm.size() - 1) / comm.size();
  const int r0 = comm.rank() * per;
  const int r1 = std::min(n, r0 + per);
  std::vector<la::GlobalId> touched;
  for (int g = r0; g < r1; ++g) {
    touched.push_back(g);
  }
  if (touched.empty()) {
    touched.push_back(0);  // idle rank still participates
  }
  builder = std::make_unique<la::DistSystemBuilder>(comm, touched);
  builder->begin_assembly();
  for (la::GlobalId g : touched) {
    builder->add_matrix(g, g, 1.0);
  }
  builder->finalize(comm);
  return la::DistVector(builder->map());
}

TEST(Checkpoint, SurvivesARankCountChange) {
  const std::string path = "/tmp/heterolab_ckpt_test.h5l";
  const int n = 25;
  // Save on 2 ranks.
  {
    simmpi::Runtime rt(netsim::Topology::uniform(
        2, 2, netsim::Fabric::gigabit_ethernet(),
        netsim::Fabric::shared_memory()));
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto v = make_vector(comm, builder, n);
      for (int l = 0; l < v.map().owned_count(); ++l) {
        v[l] = 100.0 + static_cast<double>(v.map().gid(l));
      }
      save_checkpoint(comm, v, "state", path);
    });
  }
  // Restart on 3 ranks — spot instances disappeared, the assembly changed.
  {
    simmpi::Runtime rt(netsim::Topology::uniform(
        3, 2, netsim::Fabric::gigabit_ethernet(),
        netsim::Fabric::shared_memory()));
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto v = make_vector(comm, builder, n);
      load_checkpoint(comm, v, "state", path);
      for (int l = 0; l < v.map().owned_count(); ++l) {
        EXPECT_DOUBLE_EQ(v[l], 100.0 + static_cast<double>(v.map().gid(l)));
      }
    });
  }
  std::remove(path.c_str());
}

TEST(SolverCheckpoint, RoundTripsAcrossARankCountChange) {
  const std::string path = "/tmp/heterolab_solver_ckpt_test.h5l";
  const int n = 25;
  // Save on 2 ranks mid-run: two state vectors, the clock, the step count.
  {
    simmpi::Runtime rt(netsim::Topology::uniform(
        2, 2, netsim::Fabric::gigabit_ethernet(),
        netsim::Fabric::shared_memory()));
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto now = make_vector(comm, builder, n);
      la::DistVector prev(now.map());
      for (int l = 0; l < now.map().owned_count(); ++l) {
        now[l] = 10.0 + static_cast<double>(now.map().gid(l));
        prev[l] = -10.0 - static_cast<double>(now.map().gid(l));
      }
      save_solver_checkpoint(comm, now, prev, 3.5, 7, path);
    });
  }
  // Restart on 3 ranks: the gid-keyed format redistributes both vectors.
  {
    simmpi::Runtime rt(netsim::Topology::uniform(
        3, 2, netsim::Fabric::gigabit_ethernet(),
        netsim::Fabric::shared_memory()));
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto now = make_vector(comm, builder, n);
      la::DistVector prev(now.map());
      const SolverCheckpointMeta meta =
          load_solver_checkpoint(comm, now, prev, path);
      EXPECT_DOUBLE_EQ(meta.time, 3.5);
      EXPECT_EQ(meta.steps_done, 7);
      for (int l = 0; l < now.map().owned_count(); ++l) {
        const auto g = static_cast<double>(now.map().gid(l));
        EXPECT_DOUBLE_EQ(now[l], 10.0 + g);
        EXPECT_DOUBLE_EQ(prev[l], -10.0 - g);
      }
    });
  }
  std::remove(path.c_str());
}

TEST(SolverCheckpoint, MissingFileIsAClearError) {
  const std::string path = "/tmp/heterolab_ckpt_does_not_exist.h5l";
  std::remove(path.c_str());
  simmpi::Runtime rt(netsim::Topology::uniform(
      1, 1, netsim::Fabric::gigabit_ethernet(),
      netsim::Fabric::shared_memory()));
  try {
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto now = make_vector(comm, builder, 5);
      la::DistVector prev(now.map());
      (void)load_solver_checkpoint(comm, now, prev, path);
    });
    FAIL() << "expected an Error for a missing checkpoint file";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("cannot restore"), std::string::npos) << what;
  }
}

TEST(SolverCheckpoint, TruncatedFileIsAClearError) {
  const std::string path = "/tmp/heterolab_ckpt_truncated.h5l";
  {
    simmpi::Runtime rt(netsim::Topology::uniform(
        1, 1, netsim::Fabric::gigabit_ethernet(),
        netsim::Fabric::shared_memory()));
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto now = make_vector(comm, builder, 5);
      la::DistVector prev(now.map());
      for (int l = 0; l < now.map().owned_count(); ++l) {
        now[l] = 1.0;
        prev[l] = 2.0;
      }
      save_solver_checkpoint(comm, now, prev, 1.0, 2, path);
    });
  }
  {
    // A crash mid-write leaves a short file: cut it to 6 bytes.
    std::ofstream cut(path, std::ios::binary | std::ios::trunc);
    cut << "stub!\n";
  }
  simmpi::Runtime rt(netsim::Topology::uniform(
      1, 1, netsim::Fabric::gigabit_ethernet(),
      netsim::Fabric::shared_memory()));
  try {
    rt.run([&](simmpi::Comm& comm) {
      std::unique_ptr<la::DistSystemBuilder> builder;
      auto now = make_vector(comm, builder, 5);
      la::DistVector prev(now.map());
      (void)load_solver_checkpoint(comm, now, prev, path);
    });
    FAIL() << "expected an Error for a truncated checkpoint file";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingGidIsAnError) {
  const std::string path = "/tmp/heterolab_ckpt_missing.h5l";
  simmpi::Runtime rt(netsim::Topology::uniform(
      1, 1, netsim::Fabric::gigabit_ethernet(),
      netsim::Fabric::shared_memory()));
  EXPECT_THROW(
      rt.run([&](simmpi::Comm& comm) {
        std::unique_ptr<la::DistSystemBuilder> builder;
        auto small = make_vector(comm, builder, 5);
        save_checkpoint(comm, small, "state", path);
        std::unique_ptr<la::DistSystemBuilder> builder2;
        auto big = make_vector(comm, builder2, 10);
        load_checkpoint(comm, big, "state", path);
      }),
      Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetero::io
