// Tests for the Krylov solvers and preconditioners on distributed systems
// with known solutions.

#include <gtest/gtest.h>

#include <cmath>

#include "la/system_builder.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"
#include "solvers/krylov.hpp"
#include "solvers/preconditioner.hpp"

namespace hetero::solvers {
namespace {

simmpi::Runtime make_runtime(int ranks) {
  return simmpi::Runtime(netsim::Topology::uniform(
      ranks, 2, netsim::Fabric::infiniband_ddr_4x(),
      netsim::Fabric::shared_memory()));
}

/// Builds the 1-D Dirichlet Laplacian (tridiagonal [-1, 2, -1]) of size n
/// over `comm`, block-distributed, with rhs = A * x_exact where
/// x_exact(g) = sin(pi (g+1) / (n+1)).
struct Poisson1d {
  std::unique_ptr<la::DistSystemBuilder> builder;
  la::GlobalId n = 0;

  Poisson1d(simmpi::Comm& comm, la::GlobalId n_rows) : n(n_rows) {
    const la::GlobalId per =
        (n + comm.size() - 1) / comm.size();
    const la::GlobalId r0 = comm.rank() * per;
    const la::GlobalId r1 = std::min<la::GlobalId>(n, r0 + per);
    std::vector<la::GlobalId> touched;
    for (la::GlobalId g = r0; g < r1; ++g) {
      touched.push_back(g);
      if (g > 0) {
        touched.push_back(g - 1);
      }
      if (g + 1 < n) {
        touched.push_back(g + 1);
      }
    }
    builder = std::make_unique<la::DistSystemBuilder>(comm, touched);
    builder->begin_assembly();
    for (la::GlobalId g = r0; g < r1; ++g) {
      builder->add_matrix(g, g, 2.0);
      if (g > 0) {
        builder->add_matrix(g, g - 1, -1.0);
      }
      if (g + 1 < n) {
        builder->add_matrix(g, g + 1, -1.0);
      }
      builder->add_rhs(g, rhs_value(g));
    }
    builder->finalize(comm);
  }

  double exact(la::GlobalId g) const {
    return std::sin(M_PI * static_cast<double>(g + 1) /
                    static_cast<double>(n + 1));
  }
  double rhs_value(la::GlobalId g) const {
    const double left = g > 0 ? exact(g - 1) : 0.0;
    const double right = g + 1 < n ? exact(g + 1) : 0.0;
    return 2.0 * exact(g) - left - right;
  }

  void expect_solution(simmpi::Comm& comm, const la::DistVector& x,
                       double tol) const {
    const auto& map = builder->map();
    for (int l = 0; l < map.owned_count(); ++l) {
      EXPECT_NEAR(x[l], exact(map.gid(l)), tol) << "gid " << map.gid(l);
    }
    (void)comm;
  }
};

class CgRanks : public ::testing::TestWithParam<int> {};

TEST_P(CgRanks, SolvesPoissonExactly) {
  auto rt = make_runtime(GetParam());
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 64);
    la::DistVector x(sys.builder->map());
    JacobiPreconditioner jacobi;
    jacobi.build(sys.builder->matrix());
    SolverConfig config;
    config.rel_tolerance = 1e-12;
    const auto report = cg_solve(comm, sys.builder->matrix(), jacobi,
                                 sys.builder->rhs(), x, config);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.solver, "cg");
    EXPECT_GT(report.iterations, 0);
    EXPECT_LT(report.final_residual, 1e-10);
    sys.expect_solution(comm, x, 1e-8);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CgRanks, ::testing::Values(1, 2, 3, 4));

TEST(Cg, Ilu0BeatsIdentityOnIterationCount) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 128);
    SolverConfig config;
    config.rel_tolerance = 1e-10;
    config.max_iterations = 500;

    la::DistVector x_id(sys.builder->map());
    IdentityPreconditioner identity;
    identity.build(sys.builder->matrix());
    const auto rep_id = cg_solve(comm, sys.builder->matrix(), identity,
                                 sys.builder->rhs(), x_id, config);

    la::DistVector x_ilu(sys.builder->map());
    Ilu0Preconditioner ilu;
    ilu.build(sys.builder->matrix());
    const auto rep_ilu = cg_solve(comm, sys.builder->matrix(), ilu,
                                  sys.builder->rhs(), x_ilu, config);

    EXPECT_TRUE(rep_id.converged);
    EXPECT_TRUE(rep_ilu.converged);
    EXPECT_LT(rep_ilu.iterations, rep_id.iterations);
    sys.expect_solution(comm, x_ilu, 1e-7);
  });
}

TEST(Ilu0, ExactForSerialSystem) {
  // On one rank, ILU(0) of a tridiagonal matrix is a complete LU
  // factorization, so preconditioned CG converges in a handful of
  // iterations regardless of size.
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 200);
    la::DistVector x(sys.builder->map());
    Ilu0Preconditioner ilu;
    ilu.build(sys.builder->matrix());
    SolverConfig config;
    config.rel_tolerance = 1e-12;
    const auto report = cg_solve(comm, sys.builder->matrix(), ilu,
                                 sys.builder->rhs(), x, config);
    EXPECT_TRUE(report.converged);
    EXPECT_LE(report.iterations, 3);
    sys.expect_solution(comm, x, 1e-9);
  });
}

/// Nonsymmetric convection-diffusion system: [-1-c, 2, -1+c] stencil.
struct ConvDiff1d {
  std::unique_ptr<la::DistSystemBuilder> builder;
  la::GlobalId n = 0;
  double c = 0.4;

  ConvDiff1d(simmpi::Comm& comm, la::GlobalId n_rows) : n(n_rows) {
    const la::GlobalId per = (n + comm.size() - 1) / comm.size();
    const la::GlobalId r0 = comm.rank() * per;
    const la::GlobalId r1 = std::min<la::GlobalId>(n, r0 + per);
    std::vector<la::GlobalId> touched;
    for (la::GlobalId g = r0; g < r1; ++g) {
      touched.push_back(g);
      if (g > 0) touched.push_back(g - 1);
      if (g + 1 < n) touched.push_back(g + 1);
    }
    builder = std::make_unique<la::DistSystemBuilder>(comm, touched);
    builder->begin_assembly();
    for (la::GlobalId g = r0; g < r1; ++g) {
      builder->add_matrix(g, g, 2.0);
      if (g > 0) builder->add_matrix(g, g - 1, -1.0 - c);
      if (g + 1 < n) builder->add_matrix(g, g + 1, -1.0 + c);
      // rhs = A * ones.
      double row_sum = 2.0;
      if (g > 0) row_sum += -1.0 - c;
      if (g + 1 < n) row_sum += -1.0 + c;
      builder->add_rhs(g, row_sum);
    }
    builder->finalize(comm);
  }
};

class NonsymSolver : public ::testing::TestWithParam<const char*> {};

TEST_P(NonsymSolver, SolvesConvectionDiffusion) {
  auto rt = make_runtime(3);
  rt.run([&](simmpi::Comm& comm) {
    ConvDiff1d sys(comm, 60);
    la::DistVector x(sys.builder->map());
    Ilu0Preconditioner ilu;
    ilu.build(sys.builder->matrix());
    SolverConfig config;
    config.rel_tolerance = 1e-10;
    config.max_iterations = 400;
    config.restart = 20;
    const std::string which = GetParam();
    const auto report =
        which == "bicgstab"
            ? bicgstab_solve(comm, sys.builder->matrix(), ilu,
                             sys.builder->rhs(), x, config)
            : gmres_solve(comm, sys.builder->matrix(), ilu,
                          sys.builder->rhs(), x, config);
    EXPECT_TRUE(report.converged) << report.solver;
    const auto& map = sys.builder->map();
    for (int l = 0; l < map.owned_count(); ++l) {
      EXPECT_NEAR(x[l], 1.0, 1e-6);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Methods, NonsymSolver,
                         ::testing::Values("bicgstab", "gmres"));

TEST(Gmres, RestartPathStillConverges) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    ConvDiff1d sys(comm, 80);
    la::DistVector x(sys.builder->map());
    IdentityPreconditioner identity;
    identity.build(sys.builder->matrix());
    SolverConfig config;
    config.rel_tolerance = 1e-8;
    config.max_iterations = 2000;
    config.restart = 5;  // force many restarts
    const auto report = gmres_solve(comm, sys.builder->matrix(), identity,
                                    sys.builder->rhs(), x, config);
    EXPECT_TRUE(report.converged);
    EXPECT_GT(report.iterations, 5);
  });
}

TEST(Solvers, ResidualHistoryTracksConvergence) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 64);
    la::DistVector x(sys.builder->map());
    JacobiPreconditioner jacobi;
    jacobi.build(sys.builder->matrix());
    SolverConfig config;
    config.rel_tolerance = 1e-10;
    config.record_history = true;
    const auto report = cg_solve(comm, sys.builder->matrix(), jacobi,
                                 sys.builder->rhs(), x, config);
    EXPECT_TRUE(report.converged);
    ASSERT_EQ(report.residual_history.size(),
              static_cast<std::size_t>(report.iterations));
    // The last entry is the final residual; the history ends converged.
    EXPECT_DOUBLE_EQ(report.residual_history.back(), report.final_residual);
    EXPECT_LT(report.residual_history.back(),
              report.residual_history.front() + 1e-30);
    // Without the flag nothing is recorded.
    la::DistVector y(sys.builder->map());
    config.record_history = false;
    const auto quiet = cg_solve(comm, sys.builder->matrix(), jacobi,
                                sys.builder->rhs(), y, config);
    EXPECT_TRUE(quiet.residual_history.empty());
  });
}

TEST(Solvers, HistoryWorksForAllMethods) {
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    ConvDiff1d sys(comm, 40);
    Ilu0Preconditioner ilu;
    ilu.build(sys.builder->matrix());
    SolverConfig config;
    config.record_history = true;
    config.restart = 10;
    la::DistVector x1(sys.builder->map());
    const auto bs = bicgstab_solve(comm, sys.builder->matrix(), ilu,
                                   sys.builder->rhs(), x1, config);
    EXPECT_EQ(bs.residual_history.size(),
              static_cast<std::size_t>(bs.iterations));
    la::DistVector x2(sys.builder->map());
    const auto gm = gmres_solve(comm, sys.builder->matrix(), ilu,
                                sys.builder->rhs(), x2, config);
    EXPECT_EQ(gm.residual_history.size(),
              static_cast<std::size_t>(gm.iterations));
  });
}

TEST(Solvers, ZeroRhsConvergesImmediately) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 32);
    sys.builder->rhs().set_all(0.0);
    la::DistVector x(sys.builder->map());
    JacobiPreconditioner jacobi;
    jacobi.build(sys.builder->matrix());
    SolverConfig config;
    const auto report = cg_solve(comm, sys.builder->matrix(), jacobi,
                                 sys.builder->rhs(), x, config);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.iterations, 0);
    EXPECT_DOUBLE_EQ(x.norm2(comm), 0.0);
  });
}

TEST(Solvers, MaxIterationsIsHonoured) {
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 256);
    la::DistVector x(sys.builder->map());
    IdentityPreconditioner identity;
    identity.build(sys.builder->matrix());
    SolverConfig config;
    config.rel_tolerance = 1e-14;
    config.max_iterations = 3;
    const auto report = cg_solve(comm, sys.builder->matrix(), identity,
                                 sys.builder->rhs(), x, config);
    EXPECT_FALSE(report.converged);
    EXPECT_EQ(report.iterations, 3);
    EXPECT_GT(report.final_residual, 0.0);
  });
}

TEST(Preconditioner, FactoryNames) {
  EXPECT_EQ(make_preconditioner("identity")->name(), "identity");
  EXPECT_EQ(make_preconditioner("jacobi")->name(), "jacobi");
  EXPECT_EQ(make_preconditioner("ssor")->name(), "ssor");
  EXPECT_EQ(make_preconditioner("ilu0")->name(), "ilu0");
  EXPECT_THROW(make_preconditioner("amg"), Error);
}

TEST(Ssor, AcceleratesCgBetweenJacobiAndIlu0) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 128);
    // Poisson1d's built-in solution is an eigenvector of the stencil (CG
    // would converge in O(1) iterations for any diagonal preconditioner);
    // use a spectrally rich target instead: rhs = A w.
    const auto& map = sys.builder->map();
    la::DistVector w(map);
    for (int l = 0; l < map.local_count(); ++l) {
      const auto g = static_cast<double>(map.gid(l));
      w[l] = std::sin(0.23 * g) + 0.5 * std::cos(1.7 * g) + 0.01 * g;
    }
    sys.builder->matrix().multiply(comm, w, sys.builder->rhs());
    SolverConfig config;
    config.rel_tolerance = 1e-10;
    config.max_iterations = 600;
    auto iterations_with = [&](Preconditioner& m) {
      m.build(sys.builder->matrix());
      la::DistVector x(sys.builder->map());
      const auto report = cg_solve(comm, sys.builder->matrix(), m,
                                   sys.builder->rhs(), x, config);
      EXPECT_TRUE(report.converged) << m.name();
      for (int l = 0; l < map.owned_count(); ++l) {
        EXPECT_NEAR(x[l], w[l], 1e-6);
      }
      return report.iterations;
    };
    JacobiPreconditioner jacobi;
    SsorPreconditioner ssor;
    Ilu0Preconditioner ilu;
    const int it_jacobi = iterations_with(jacobi);
    const int it_ssor = iterations_with(ssor);
    const int it_ilu = iterations_with(ilu);
    // SSOR must beat diagonal scaling; ILU0 is at least as good as SSOR on
    // this tridiagonal system (it is exact on each local block).
    EXPECT_LT(it_ssor, it_jacobi);
    EXPECT_LE(it_ilu, it_ssor);
  });
}

TEST(Ssor, OmegaIsValidated) {
  EXPECT_THROW(SsorPreconditioner(0.0), Error);
  EXPECT_THROW(SsorPreconditioner(2.0), Error);
  EXPECT_NO_THROW(SsorPreconditioner(1.5));
}

TEST(Ssor, ApplyIsSymmetricOperator) {
  // CG requires a symmetric M^{-1}: check <M^{-1}a, b> == <a, M^{-1}b> on
  // a symmetric matrix.
  auto rt = make_runtime(1);
  rt.run([&](simmpi::Comm& comm) {
    Poisson1d sys(comm, 40);
    SsorPreconditioner ssor(1.3);
    ssor.build(sys.builder->matrix());
    const auto& map = sys.builder->map();
    la::DistVector a(map);
    la::DistVector b(map);
    for (int l = 0; l < map.owned_count(); ++l) {
      a[l] = std::sin(0.7 * l + 0.2);
      b[l] = std::cos(1.3 * l - 0.4);
    }
    la::DistVector ma(map);
    la::DistVector mb(map);
    ssor.apply(a, ma);
    ssor.apply(b, mb);
    EXPECT_NEAR(ma.dot(comm, b), a.dot(comm, mb), 1e-10);
  });
}

TEST(Preconditioner, JacobiRejectsZeroDiagonal) {
  auto rt = make_runtime(1);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
                 std::vector<la::GlobalId> touched{0, 1};
                 la::DistSystemBuilder builder(comm, touched);
                 builder.begin_assembly();
                 builder.add_matrix(0, 1, 1.0);
                 builder.add_matrix(1, 0, 1.0);
                 builder.add_matrix(0, 0, 0.0);
                 builder.add_matrix(1, 1, 1.0);
                 builder.finalize(comm);
                 JacobiPreconditioner jacobi;
                 jacobi.build(builder.matrix());
               }),
               Error);
}

}  // namespace
}  // namespace hetero::solvers
