// Property-based tests for the hot-path kernels. Each case draws a random
// matrix/vector instance from a seed-deterministic splitmix64 generator
// (tests/prop_util.hpp), runs the same operation under both kernel modes,
// and checks two properties:
//
//   1. mode equivalence — the fast kernels are BITWISE identical to the
//      reference kernels (EXPECT_EQ on doubles, not EXPECT_NEAR): the
//      overhaul's contract is "same math, less time";
//   2. oracle agreement — both modes match an independently written dense
//      triple-loop / scalar-loop oracle within a tight ULP budget. For SpMV
//      the oracle is exact by construction (column-sorted CSR accumulation
//      interleaved with +0.0 terms), so the budget only absorbs ±0 signs.
//
// The generators never touch std::uniform_real_distribution, so a failing
// case number reproduces the exact same bits on every platform.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "la/dist_vector.hpp"
#include "la/halo.hpp"
#include "la/index_map.hpp"
#include "la/kernels.hpp"
#include "netsim/fabric.hpp"
#include "prop_util.hpp"
#include "simmpi/runtime.hpp"

namespace hetero::la {
namespace {

using test::PropRng;

/// Restores the process-wide kernel mode when a test scope exits.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(KernelMode mode) : saved_(kernel_mode()) {
    set_kernel_mode(mode);
  }
  ~ScopedKernelMode() { set_kernel_mode(saved_); }
  ScopedKernelMode(const ScopedKernelMode&) = delete;
  ScopedKernelMode& operator=(const ScopedKernelMode&) = delete;

 private:
  KernelMode saved_;
};

TEST(SpmvProperty, FastMatchesReferenceBitwiseAndOracleWithinUlps) {
  constexpr int kCases = 120;
  for (int c = 0; c < kCases; ++c) {
    PropRng rng(0x5eed0000ull + static_cast<std::uint64_t>(c));
    const int rows = rng.uniform_int(1, 48);
    const int cols = rng.uniform_int(1, 48);
    const int max_row_nnz = rng.uniform_int(1, std::min(cols, 12));
    const auto a = test::random_csr(rng, rows, cols, max_row_nnz, -2.0, 2.0);
    const auto x = test::random_vector(rng, cols, -1.0, 1.0);

    std::vector<double> y_ref(static_cast<std::size_t>(rows), 0.0);
    std::vector<double> y_fast(static_cast<std::size_t>(rows), 0.0);
    {
      ScopedKernelMode mode(KernelMode::kReference);
      a.multiply(x, y_ref);
    }
    {
      ScopedKernelMode mode(KernelMode::kFast);
      a.multiply(x, y_fast);
    }
    const auto oracle = test::dense_spmv_oracle(a, x);
    for (int i = 0; i < rows; ++i) {
      const auto l = static_cast<std::size_t>(i);
      EXPECT_EQ(y_ref[l], y_fast[l])
          << "case " << c << " row " << i << ": fast differs from reference";
      EXPECT_LE(test::ulp_distance(y_ref[l], oracle[l]), 2u)
          << "case " << c << " row " << i << ": reference " << y_ref[l]
          << " vs dense oracle " << oracle[l];
    }
  }
}

TEST(SpmvProperty, MultiplyAddAccumulatesIdenticallyAcrossModes) {
  constexpr int kCases = 40;
  for (int c = 0; c < kCases; ++c) {
    PropRng rng(0xacc00000ull + static_cast<std::uint64_t>(c));
    const int rows = rng.uniform_int(1, 40);
    const int cols = rng.uniform_int(1, 40);
    const auto a = test::random_csr(rng, rows, cols,
                                    rng.uniform_int(1, std::min(cols, 10)),
                                    -3.0, 3.0);
    const auto x = test::random_vector(rng, cols, -1.0, 1.0);
    const auto y0 = test::random_vector(rng, rows, -5.0, 5.0);

    auto y_ref = y0;
    auto y_fast = y0;
    {
      ScopedKernelMode mode(KernelMode::kReference);
      a.multiply_add(x, y_ref);
    }
    {
      ScopedKernelMode mode(KernelMode::kFast);
      a.multiply_add(x, y_fast);
    }
    // Both modes seed each row's accumulator with y0[i] before streaming
    // the row's products; the oracle replays that exact chain densely.
    const auto oracle = test::dense_spmv_oracle(a, x, &y0);
    for (int i = 0; i < rows; ++i) {
      const auto l = static_cast<std::size_t>(i);
      EXPECT_EQ(y_ref[l], y_fast[l]) << "case " << c << " row " << i;
      EXPECT_LE(test::ulp_distance(y_ref[l], oracle[l]), 2u)
          << "case " << c << " row " << i;
    }
  }
}

/// Fused DistVector kernels. One single-rank runtime hosts every case: the
/// map is trivial (all owned, no ghosts), which makes the scalar oracles
/// exact replicas of the owned-entry loops, and the allreduce an identity.
TEST(VecFusedProperty, FusedOpsMatchReferenceBitwiseAndScalarOracles) {
  constexpr int kCases = 30;
  auto rt = simmpi::Runtime(netsim::Topology::uniform(
      1, 2, netsim::Fabric::gigabit_ethernet(), netsim::Fabric::shared_memory()));
  rt.run([&](simmpi::Comm& comm) {
    for (int c = 0; c < kCases; ++c) {
      PropRng rng(0xfa57beefull + static_cast<std::uint64_t>(c));
      const int n = rng.uniform_int(1, 64);
      std::vector<GlobalId> touched;
      for (int g = 0; g < n; ++g) {
        touched.push_back(g);
      }
      const auto dir = GidDirectory::build(comm, touched);
      const auto map = IndexMap::build(comm, dir, touched);
      ASSERT_EQ(map.owned_count(), n);

      const auto xs = test::random_vector(rng, n, -2.0, 2.0);
      const auto ys = test::random_vector(rng, n, -2.0, 2.0);
      const auto zs = test::random_vector(rng, n, -2.0, 2.0);
      const auto ws = test::random_vector(rng, n, -2.0, 2.0);
      const double alpha = rng.uniform(-1.5, 1.5);
      const double beta = rng.uniform(-1.5, 1.5);
      const double omega = rng.uniform(-1.5, 1.5);

      DistVector x(map), y(map), z(map), w(map);
      auto load = [&] {
        for (int i = 0; i < n; ++i) {
          x[i] = xs[static_cast<std::size_t>(i)];
          y[i] = ys[static_cast<std::size_t>(i)];
          z[i] = zs[static_cast<std::size_t>(i)];
          w[i] = ws[static_cast<std::size_t>(i)];
        }
      };

      // ---- axpy_norm2: y += alpha*x, return ||y|| -----------------------
      load();
      double nr;
      {
        ScopedKernelMode mode(KernelMode::kReference);
        nr = y.axpy_norm2(comm, alpha, x);
      }
      std::vector<double> y_ref(y.owned().begin(), y.owned().end());
      load();
      double nf;
      {
        ScopedKernelMode mode(KernelMode::kFast);
        nf = y.axpy_norm2(comm, alpha, x);
      }
      EXPECT_EQ(nr, nf) << "axpy_norm2 case " << c;
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(y_ref[static_cast<std::size_t>(i)], y[i])
            << "axpy_norm2 case " << c << " entry " << i;
      }
      {
        double acc = 0.0;
        for (int i = 0; i < n; ++i) {
          const auto l = static_cast<std::size_t>(i);
          const double v = ys[l] + alpha * xs[l];
          EXPECT_LE(test::ulp_distance(y[i], v), 0u)
              << "axpy_norm2 case " << c << " entry " << i;
          acc += v * v;
        }
        EXPECT_LE(test::ulp_distance(nf, std::sqrt(acc)), 1u)
            << "axpy_norm2 case " << c << " norm";
      }

      // ---- copy_axpy_norm2: y = x; y += alpha*z; return ||y|| -----------
      load();
      {
        ScopedKernelMode mode(KernelMode::kReference);
        nr = y.copy_axpy_norm2(comm, x, alpha, z);
      }
      y_ref.assign(y.owned().begin(), y.owned().end());
      load();
      {
        ScopedKernelMode mode(KernelMode::kFast);
        nf = y.copy_axpy_norm2(comm, x, alpha, z);
      }
      EXPECT_EQ(nr, nf) << "copy_axpy_norm2 case " << c;
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(y_ref[static_cast<std::size_t>(i)], y[i])
            << "copy_axpy_norm2 case " << c << " entry " << i;
        const auto l = static_cast<std::size_t>(i);
        EXPECT_LE(test::ulp_distance(y[i], xs[l] + alpha * zs[l]), 0u)
            << "copy_axpy_norm2 case " << c << " entry " << i;
      }

      // ---- dot_pair: (y.x, y.z) -----------------------------------------
      load();
      std::pair<double, double> dr, df;
      {
        ScopedKernelMode mode(KernelMode::kReference);
        dr = y.dot_pair(comm, x, z);
      }
      {
        ScopedKernelMode mode(KernelMode::kFast);
        df = y.dot_pair(comm, x, z);
      }
      EXPECT_EQ(dr.first, df.first) << "dot_pair case " << c;
      EXPECT_EQ(dr.second, df.second) << "dot_pair case " << c;
      {
        double d1 = 0.0, d2 = 0.0;
        for (int i = 0; i < n; ++i) {
          const auto l = static_cast<std::size_t>(i);
          d1 += ys[l] * xs[l];
          d2 += ys[l] * zs[l];
        }
        EXPECT_LE(test::ulp_distance(df.first, d1), 1u)
            << "dot_pair case " << c;
        EXPECT_LE(test::ulp_distance(df.second, d2), 1u)
            << "dot_pair case " << c;
      }

      // ---- update_search_direction: y = x + beta*(y - omega*z) ----------
      load();
      {
        ScopedKernelMode mode(KernelMode::kReference);
        y.update_search_direction(x, z, beta, omega);
      }
      y_ref.assign(y.owned().begin(), y.owned().end());
      load();
      {
        ScopedKernelMode mode(KernelMode::kFast);
        y.update_search_direction(x, z, beta, omega);
      }
      for (int i = 0; i < n; ++i) {
        const auto l = static_cast<std::size_t>(i);
        EXPECT_EQ(y_ref[l], y[i])
            << "update_search_direction case " << c << " entry " << i;
        // Oracle replays the documented axpy(-omega, z); axpby(1, x, beta)
        // evaluation order.
        double v = ys[l] + (-omega) * zs[l];
        v = 1.0 * xs[l] + beta * v;
        EXPECT_LE(test::ulp_distance(y[i], v), 0u)
            << "update_search_direction case " << c << " entry " << i;
      }

      // ---- cg_update_norm2: y += alpha*x; w -= alpha*z; return ||w|| ----
      load();
      {
        ScopedKernelMode mode(KernelMode::kReference);
        nr = cg_update_norm2(comm, y, alpha, x, w, z);
      }
      y_ref.assign(y.owned().begin(), y.owned().end());
      std::vector<double> w_ref(w.owned().begin(), w.owned().end());
      load();
      {
        ScopedKernelMode mode(KernelMode::kFast);
        nf = cg_update_norm2(comm, y, alpha, x, w, z);
      }
      EXPECT_EQ(nr, nf) << "cg_update_norm2 case " << c;
      for (int i = 0; i < n; ++i) {
        const auto l = static_cast<std::size_t>(i);
        EXPECT_EQ(y_ref[l], y[i]) << "cg_update_norm2 case " << c;
        EXPECT_EQ(w_ref[l], w[i]) << "cg_update_norm2 case " << c;
      }
      {
        double acc = 0.0;
        for (int i = 0; i < n; ++i) {
          const auto l = static_cast<std::size_t>(i);
          EXPECT_LE(test::ulp_distance(y[i], ys[l] + alpha * xs[l]), 0u)
              << "cg_update_norm2 case " << c << " x entry " << i;
          const double r = ws[l] + (-alpha) * zs[l];
          EXPECT_LE(test::ulp_distance(w[i], r), 0u)
              << "cg_update_norm2 case " << c << " r entry " << i;
          acc += r * r;
        }
        EXPECT_LE(test::ulp_distance(nf, std::sqrt(acc)), 1u)
            << "cg_update_norm2 case " << c << " norm";
      }

      // ---- add_scaled: y += alpha*x + beta*z + omega*w ------------------
      load();
      const std::vector<double> coeffs{alpha, beta, omega};
      const std::vector<const DistVector*> vs{&x, &z, &w};
      {
        ScopedKernelMode mode(KernelMode::kReference);
        y.add_scaled(coeffs, vs);
      }
      y_ref.assign(y.owned().begin(), y.owned().end());
      load();
      {
        ScopedKernelMode mode(KernelMode::kFast);
        y.add_scaled(coeffs, vs);
      }
      for (int i = 0; i < n; ++i) {
        const auto l = static_cast<std::size_t>(i);
        EXPECT_EQ(y_ref[l], y[i]) << "add_scaled case " << c << " entry " << i;
        // Left-to-right axpy sequence, as documented.
        double v = ys[l] + alpha * xs[l];
        v = v + beta * zs[l];
        v = v + omega * ws[l];
        EXPECT_LE(test::ulp_distance(y[i], v), 0u)
            << "add_scaled case " << c << " entry " << i;
      }
    }
  });
}

}  // namespace
}  // namespace hetero::la
