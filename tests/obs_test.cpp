// Observability layer: trace recorder semantics (ring buffer, Chrome JSON
// shape), scoped spans under a virtual clock, the sharded metrics registry
// under concurrent rank threads, JSON/JSONL round-trips for the bench
// output path, and an end-to-end check that an instrumented direct RD run's
// metrics agree exactly with the ExperimentResult it reports.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "obs/bench_io.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io_util.hpp"
#include "support/table.hpp"

namespace {

using namespace hetero;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Deterministic manual clock satisfying ScopedSpan's TimeSource contract.
struct FakeClock {
  double t = 0.0;
  double now() const { return t; }
};

/// Installs a recorder for the current scope and uninstalls on exit, so a
/// failing test cannot leak a dangling global recorder into later tests.
class TraceGuard {
 public:
  explicit TraceGuard(obs::TraceRecorder* recorder) {
    obs::set_current_trace(recorder);
  }
  ~TraceGuard() { obs::set_current_trace(nullptr); }
};

TEST(TraceRecorder, RecordsSpansAndInstantsPerRank) {
  obs::TraceRecorder recorder(2);
  recorder.complete(0, "send", "simmpi", 1.0, 1.5, "bytes", 64.0);
  recorder.instant(1, "spot_reclaim", "cloud", 2.0);
  recorder.complete(1, "recv", "simmpi", 2.5, 2.75);

  const auto rank0 = recorder.events(0);
  ASSERT_EQ(rank0.size(), 1u);
  EXPECT_STREQ(rank0[0].name, "send");
  EXPECT_EQ(rank0[0].phase, 'X');
  EXPECT_DOUBLE_EQ(rank0[0].ts_s, 1.0);
  EXPECT_DOUBLE_EQ(rank0[0].dur_s, 0.5);
  EXPECT_STREQ(rank0[0].arg_name, "bytes");
  EXPECT_DOUBLE_EQ(rank0[0].arg, 64.0);

  const auto rank1 = recorder.events(1);
  ASSERT_EQ(rank1.size(), 2u);
  EXPECT_EQ(rank1[0].phase, 'i');
  EXPECT_EQ(rank1[1].phase, 'X');

  const auto merged = recorder.merged();
  ASSERT_EQ(merged.size(), 3u);
  // Sorted by timestamp across ranks.
  EXPECT_DOUBLE_EQ(merged[0].ts_s, 1.0);
  EXPECT_DOUBLE_EQ(merged[2].ts_s, 2.5);
}

TEST(TraceRecorder, RingBufferKeepsNewestAndCountsDrops) {
  obs::TraceRecorder recorder(1, /*capacity_per_rank=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.complete(0, "tick", "test", i, i + 0.5);
  }
  EXPECT_EQ(recorder.recorded(0), 10u);
  EXPECT_EQ(recorder.dropped(0), 6u);
  const auto events = recorder.events(0);
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the survivors: 6, 7, 8, 9.
  EXPECT_DOUBLE_EQ(events.front().ts_s, 6.0);
  EXPECT_DOUBLE_EQ(events.back().ts_s, 9.0);
}

TEST(TraceRecorder, ScopedSpansNestUnderVirtualTime) {
#ifdef HETERO_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (HETERO_OBS=OFF)";
#endif
  obs::TraceRecorder recorder(1);
  TraceGuard guard(&recorder);
  obs::bind_trace_rank(0);

  FakeClock clock;
  {
    obs::ScopedSpan outer(clock, "outer", "test");
    clock.t = 1.0;
    {
      obs::ScopedSpan inner(clock, "inner", "test");
      inner.set_arg("work", 7.0);
      clock.t = 2.0;
    }
    clock.t = 3.0;
  }

  const auto events = recorder.events(0);
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and records) first; both lie on the same rank row.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  const double inner_begin = events[0].ts_s;
  const double inner_end = inner_begin + events[0].dur_s;
  const double outer_begin = events[1].ts_s;
  const double outer_end = outer_begin + events[1].dur_s;
  EXPECT_GE(inner_begin, outer_begin);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_DOUBLE_EQ(events[0].arg, 7.0);
}

TEST(TraceRecorder, SpansAreFreeWhenNoRecorderInstalled) {
  // No recorder installed: spans must not crash and must record nothing.
  FakeClock clock;
  {
    obs::ScopedSpan span(clock, "orphan", "test");
    clock.t = 1.0;
  }
  obs::trace_instant("orphan_instant", "test", 2.0);
  EXPECT_EQ(obs::current_trace(), nullptr);
}

TEST(TraceRecorder, ChromeJsonIsWellFormedPerRank) {
  obs::TraceRecorder recorder(3);
  // Interleave ranks with deliberately unsorted insertion order.
  recorder.complete(2, "c", "test", 3.0, 3.5);
  recorder.complete(0, "a", "test", 1.0, 2.0, "bytes", 8.0);
  recorder.instant(1, "b", "test", 2.5);

  const obs::Json doc = recorder.chrome_json();
  ASSERT_TRUE(doc.is_object());
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  int metadata = 0;
  std::vector<double> last_ts(3, -1.0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events[i];
    EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 0.0);
    const int tid = static_cast<int>(e.at("tid").as_number());
    ASSERT_GE(tid, 0);
    ASSERT_LT(tid, 3);
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      continue;
    }
    // Within a rank row, timestamps must be monotonically non-decreasing
    // (virtual microseconds), or Perfetto renders garbage.
    const double ts = e.at("ts").as_number();
    EXPECT_GE(ts, last_ts[static_cast<std::size_t>(tid)]);
    last_ts[static_cast<std::size_t>(tid)] = ts;
    if (ph == "X") {
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    } else {
      EXPECT_EQ(ph, "i");
    }
  }
  EXPECT_EQ(metadata, 3);  // one thread_name row per rank
  // Span timestamps export as microseconds.
  bool found_a = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events[i];
    if (e.at("name").as_string() == "a") {
      found_a = true;
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 1.0e6);
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 1.0e6);
      EXPECT_DOUBLE_EQ(e.at("args").at("bytes").as_number(), 8.0);
    }
  }
  EXPECT_TRUE(found_a);
}

TEST(Metrics, CountersAggregateAcrossConcurrentThreads) {
#ifdef HETERO_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (HETERO_OBS=OFF)";
#endif
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.concurrent");
  obs::Histogram& histogram = registry.histogram("test.samples");

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.increment();
        histogram.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_DOUBLE_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), kThreads);
  EXPECT_NEAR(histogram.mean(), (1.0 + kThreads) / 2.0, 1e-12);
}

TEST(Metrics, RegistryReferencesSurviveResetAndExportJson) {
#ifdef HETERO_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (HETERO_OBS=OFF)";
#endif
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("a.count");
  registry.gauge("a.gauge").set(4.5);
  counter.add(3.0);
  // Same name must return the same metric.
  registry.counter("a.count").add(1.0);
  EXPECT_DOUBLE_EQ(counter.value(), 4.0);

  const obs::Json snapshot = registry.to_json();
  EXPECT_DOUBLE_EQ(snapshot.at("counters").at("a.count").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.at("gauges").at("a.gauge").as_number(), 4.5);

  registry.reset();
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  counter.add(2.0);  // the reference is still live after reset
  EXPECT_DOUBLE_EQ(counter.value(), 2.0);
}

TEST(Json, RoundTripsThroughDumpAndParse) {
  obs::Json doc = obs::Json::object();
  doc.set("name", "heterolab");
  doc.set("count", 42);
  doc.set("ratio", 4.44);
  doc.set("ok", true);
  doc.set("missing", obs::Json(nullptr));
  obs::Json list = obs::Json::array();
  list.push_back(1.5);
  list.push_back("two");
  doc.set("list", std::move(list));

  const obs::Json parsed = obs::Json::parse(doc.dump());
  EXPECT_EQ(parsed.dump(), doc.dump());
  EXPECT_EQ(parsed.at("count").as_number(), 42.0);
  EXPECT_TRUE(parsed.at("missing").is_null());
  EXPECT_EQ(parsed.at("list")[1].as_string(), "two");
  EXPECT_THROW(obs::Json::parse("{\"unterminated\": "), Error);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  // JSON has no NaN/Infinity literal; a failed experiment's non-finite
  // phase time must degrade to null instead of aborting the export.
  EXPECT_EQ(obs::Json(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(obs::Json(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(obs::Json(-std::numeric_limits<double>::infinity()).dump(),
            "null");

  obs::Json row = obs::Json::object();
  row.set("platform", "puma");
  row.set("total_s", std::numeric_limits<double>::quiet_NaN());
  row.set("iters", 12);
  EXPECT_EQ(row.dump(), "{\"platform\":\"puma\",\"total_s\":null,"
                        "\"iters\":12}");
  // And the row still parses back: the bad cell is null, the rest is intact.
  const obs::Json parsed = obs::Json::parse(row.dump());
  EXPECT_TRUE(parsed.at("total_s").is_null());
  EXPECT_DOUBLE_EQ(parsed.at("iters").as_number(), 12.0);
}

TEST(Json, SurrogatePairsDecodeToSupplementaryPlane) {
  // \uD83D\uDE00 is U+1F600, UTF-8 f0 9f 98 80.
  const obs::Json parsed = obs::Json::parse("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(parsed.as_string(), "\xF0\x9F\x98\x80");
  // BMP escapes still decode as before.
  EXPECT_EQ(obs::Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
  EXPECT_EQ(obs::Json::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, UnpairedSurrogatesAreRejected) {
  // Lone high surrogate at end of string.
  EXPECT_THROW(obs::Json::parse("\"\\uD83D\""), Error);
  // High surrogate followed by a non-surrogate escape.
  EXPECT_THROW(obs::Json::parse("\"\\uD83D\\u0041\""), Error);
  // High surrogate followed by plain text.
  EXPECT_THROW(obs::Json::parse("\"\\uD83Dxy\""), Error);
  // Lone low surrogate.
  EXPECT_THROW(obs::Json::parse("\"\\uDE00\""), Error);
}

TEST(Json, NumberGrammarIsStrict) {
  // The scanner used to hand any sign/digit/dot soup to strtod; these are
  // all invalid JSON and must now fail to parse.
  EXPECT_THROW(obs::Json::parse("+1"), Error);
  EXPECT_THROW(obs::Json::parse("01"), Error);
  EXPECT_THROW(obs::Json::parse("-01"), Error);
  EXPECT_THROW(obs::Json::parse("1."), Error);
  EXPECT_THROW(obs::Json::parse(".5"), Error);
  EXPECT_THROW(obs::Json::parse("1e"), Error);
  EXPECT_THROW(obs::Json::parse("1e+"), Error);
  EXPECT_THROW(obs::Json::parse("--1"), Error);
  EXPECT_THROW(obs::Json::parse("1-2"), Error);
  EXPECT_THROW(obs::Json::parse("1.2.3"), Error);
  EXPECT_THROW(obs::Json::parse("[1, +2]"), Error);

  // The full valid grammar still parses.
  EXPECT_DOUBLE_EQ(obs::Json::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(obs::Json::parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(obs::Json::parse("10.25").as_number(), 10.25);
  EXPECT_DOUBLE_EQ(obs::Json::parse("2e3").as_number(), 2000.0);
  EXPECT_DOUBLE_EQ(obs::Json::parse("2E-3").as_number(), 0.002);
  EXPECT_DOUBLE_EQ(obs::Json::parse("1.5e+2").as_number(), 150.0);
}

TEST(BenchIo, FieldNamesAndCellValuesMatchTheJsonlSchema) {
  EXPECT_EQ(obs::field_name("assembly[s]"), "assembly_s");
  EXPECT_EQ(obs::field_name("full real cost[$]"), "full_real_cost_usd");
  EXPECT_EQ(obs::field_name("# mpi"), "mpi");
  EXPECT_EQ(obs::field_name("nodal error"), "nodal_error");

  EXPECT_TRUE(obs::cell_value("-").is_null());
  EXPECT_TRUE(obs::cell_value("").is_null());
  EXPECT_DOUBLE_EQ(obs::cell_value("4.44").as_number(), 4.44);
  EXPECT_EQ(obs::cell_value("FAILED: reason").as_string(), "FAILED: reason");
}

TEST(BenchIo, JsonlRoundTripsThroughWriterAndReader) {
  const std::string path = temp_path("obs_test_roundtrip.jsonl");
  {
    obs::JsonlWriter writer(path);
    obs::Json a = obs::Json::object();
    a.set("x", 1);
    obs::Json b = obs::Json::object();
    b.set("y", "two");
    writer.write(a);
    writer.write(b);
  }
  const auto records = obs::read_jsonl(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].at("x").as_number(), 1.0);
  EXPECT_EQ(records[1].at("y").as_string(), "two");
  std::remove(path.c_str());
}

/// Interposed write(2) for the EINTR regression: alternates a spurious
/// EINTR failure with a 1-byte transfer. (unistd.h write — the hook runs
/// under support::write_all, which must retry both cases.)
ssize_t eintr_stormy_write(int fd, const void* data, std::size_t size) {
  static int calls = 0;
  if (++calls % 2 == 1) {
    errno = EINTR;
    return -1;
  }
  return ::write(fd, data, size < 1 ? size : 1);
}

TEST(BenchIo, JsonlWriterLandsWholeLinesThroughEintrStorms) {
  const std::string path = temp_path("obs_test_eintr.jsonl");
  {
    obs::JsonlWriter writer(path);
    support::set_write_hook_for_tests(&eintr_stormy_write);
    for (int i = 0; i < 10; ++i) {
      obs::Json record = obs::Json::object();
      record.set("i", i);
      record.set("label", "record-" + std::to_string(i));
      writer.write(record);
    }
    support::set_write_hook_for_tests(nullptr);
  }
  // Despite every write(2) either failing with EINTR or moving one byte,
  // every record must come back whole and in order.
  const auto records = obs::read_jsonl(path);
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(records[i].at("i").as_number(), i);
    EXPECT_EQ(records[i].at("label").as_string(),
              "record-" + std::to_string(i));
  }
  std::remove(path.c_str());
}

TEST(BenchIo, ReporterStampsSchemaAndTurnsTablesIntoRecords) {
  const std::string path = temp_path("obs_test_reporter.jsonl");
  {
    const char* argv[] = {"bench", "--json", path.c_str()};
    const CliArgs args(3, argv);
    obs::BenchReporter reporter(args, "unit_bench");
    Table table({"platform", "total[s]", "status"});
    table.add_row({"puma", "13.17", "ok"});
    table.add_row({"puma", "-", "FAILED: too big"});
    reporter.add_table(table);
  }  // destructor writes the file
  const auto records = obs::read_jsonl(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("schema").as_string(), "heterolab-bench-v1");
  EXPECT_EQ(records[0].at("bench").as_string(), "unit_bench");
  EXPECT_DOUBLE_EQ(records[0].at("total_s").as_number(), 13.17);
  EXPECT_TRUE(records[1].at("total_s").is_null());
  EXPECT_EQ(records[1].at("status").as_string(), "FAILED: too big");
  std::remove(path.c_str());
}

TEST(BenchIo, ReporterWithoutJsonFlagWritesNothing) {
  const char* argv[] = {"bench"};
  const CliArgs args(1, argv);
  obs::BenchReporter reporter(args, "unit_bench");
  Table table({"a"});
  table.add_row({"1"});
  reporter.add_table(table);  // must be a no-op, not a crash
}

// End-to-end: run the real RD solver through simmpi with tracing and
// metrics on, then cross-check all three outputs against each other.
TEST(ObsIntegration, DirectRdRunProducesCoherentTraceAndMetrics) {
#ifdef HETERO_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (HETERO_OBS=OFF)";
#endif
  const std::string trace_path = temp_path("obs_test_rd.trace.json");
  obs::metrics().reset();

  core::Experiment e;
  e.app = perf::AppKind::kReactionDiffusion;
  e.platform = "puma";
  e.ranks = 8;
  e.cells_per_rank_axis = 4;
  e.mode = core::Mode::kDirect;
  e.direct_steps = 3;
  e.trace_path = trace_path;

  core::ExperimentRunner runner(42);
  const auto result = runner.run(e);
  ASSERT_TRUE(result.launched) << result.failure_reason;

  // --- metrics vs the reported result ---------------------------------------
  auto& registry = obs::metrics();
  const double steps = registry.counter("app.steps").value();
  ASSERT_EQ(steps, 3.0);
  // record_phase_metrics accumulates the same allreduced per-step maxima
  // that ExperimentResult averages, so the quotient matches exactly.
  EXPECT_NEAR(registry.counter("app.phase.assembly_s").value() / steps,
              result.iteration.assembly_s, 1e-12);
  EXPECT_NEAR(registry.counter("app.phase.preconditioner_s").value() / steps,
              result.iteration.preconditioner_s, 1e-12);
  EXPECT_NEAR(registry.counter("app.phase.solve_s").value() / steps,
              result.iteration.solve_s, 1e-12);
  EXPECT_GT(registry.counter("simmpi.messages").value(), 0.0);
  EXPECT_GT(registry.counter("la.halo.exchanges").value(), 0.0);
  // Every rank participates in one collective Krylov solve per step.
  EXPECT_DOUBLE_EQ(registry.counter("solvers.solves").value(),
                   steps * e.ranks);
  EXPECT_GT(registry.counter("solvers.iterations").value(), 0.0);

  // --- the trace file -------------------------------------------------------
  const auto records = obs::read_jsonl(trace_path);  // single-line JSON doc
  ASSERT_EQ(records.size(), 1u);
  const obs::Json& doc = records[0];
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 8u);

  std::vector<double> last_ts(8, -1.0);
  std::vector<int> spans_per_rank(8, 0);
  int metadata = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& event = events[i];
    EXPECT_DOUBLE_EQ(event.at("pid").as_number(), 0.0);
    const int tid = static_cast<int>(event.at("tid").as_number());
    ASSERT_GE(tid, 0);
    ASSERT_LT(tid, 8);
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const double ts = event.at("ts").as_number();
    EXPECT_GE(ts, last_ts[static_cast<std::size_t>(tid)]);
    last_ts[static_cast<std::size_t>(tid)] = ts;
    if (ph == "X") {
      ++spans_per_rank[static_cast<std::size_t>(tid)];
    }
  }
  EXPECT_EQ(metadata, 8);  // a thread_name row per rank
  for (int r = 0; r < 8; ++r) {
    EXPECT_GT(spans_per_rank[static_cast<std::size_t>(r)], 0)
        << "rank " << r << " recorded no spans";
  }
  std::remove(trace_path.c_str());
}

// With no trace requested, a second run must not write anything and the
// recorder global must stay uninstalled (the RAII guard in run_direct).
TEST(ObsIntegration, TracePathEmptyLeavesGlobalRecorderUninstalled) {
  core::Experiment e;
  e.platform = "puma";
  e.ranks = 1;
  e.cells_per_rank_axis = 4;
  e.mode = core::Mode::kDirect;
  e.direct_steps = 2;
  core::ExperimentRunner runner(42);
  const auto result = runner.run(e);
  ASSERT_TRUE(result.launched);
  EXPECT_EQ(obs::current_trace(), nullptr);
}

}  // namespace
