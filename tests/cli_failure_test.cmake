# CLI regression for the failure paths of `heterolab run`:
#   * an impossible launch (too many ranks for the machine) exits non-zero
#     and prints the scheduler's reason to stderr, NOT stdout;
#   * an injected fault with no recovery policy exits non-zero with the
#     unrecovered-fault reason on stderr;
#   * the same fault under --recovery ckpt exits zero.
# Run via: cmake -DHETEROLAB=<binary> -P cli_failure_test.cmake

if(NOT DEFINED HETEROLAB)
  message(FATAL_ERROR "pass -DHETEROLAB=<path to heterolab>")
endif()

function(expect_run rc_kind reason_substring)
  execute_process(
    COMMAND ${HETEROLAB} run ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc_kind STREQUAL "fail")
    if(rc EQUAL 0)
      message(FATAL_ERROR "expected non-zero exit for: ${ARGN}")
    endif()
    if(NOT err MATCHES "${reason_substring}")
      message(FATAL_ERROR
        "stderr should name the failure ('${reason_substring}') for "
        "${ARGN}; got stderr: ${err}")
    endif()
    if(out MATCHES "${reason_substring}")
      message(FATAL_ERROR
        "the failure reason leaked to stdout for ${ARGN}: ${out}")
    endif()
  else()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "expected exit 0 for: ${ARGN}; rc=${rc} stderr: ${err}")
    endif()
  endif()
endfunction()

# Impossible launch: puma has 128 cores, 512 ranks cannot start.
expect_run(fail "LAUNCH FAILED"
  --app rd --platform puma --ranks 512)

# Unrecovered injected fault (seed 4 arms a crash; policy none gives up).
expect_run(fail "unrecovered"
  --app rd --platform puma --ranks 8 --mode direct --cells 4
  --faults 0.05 --recovery none --seed 4)

# The same fault schedule recovers under checkpoint-restart.
expect_run(ok ""
  --app rd --platform puma --ranks 8 --mode direct --cells 4
  --faults 0.05 --recovery ckpt --ckpt-every 2 --seed 4)

# --- skew / balance flag-interaction audit ----------------------------------

# Skew stretches virtual-clock compute charges: meaningless outside direct
# mode, so modeled runs must refuse it loudly.
expect_run(fail "--skew .* needs --mode direct"
  --app rd --platform puma --ranks 8 --skew 2)

# The skew refinement flags are riders on --skew, never free-standing.
expect_run(fail "--skew-fraction/--skew-noise refine --skew"
  --app rd --platform puma --ranks 8 --mode direct --skew-fraction 0.5)

# A slowdown factor below 1 would be a speedup; the plan rejects it.
expect_run(fail "slow_core_factor"
  --app rd --platform puma --ranks 8 --mode direct --skew 0.5)

# Balancing samples live step times: direct mode only.
expect_run(fail "--balance .* needs .*--mode direct"
  --app rd --platform puma --ranks 8 --balance)

# Tuning flags without --balance are a silent no-op waiting to happen.
expect_run(fail "--balance-threshold/--balance-mode tune --balance"
  --app rd --platform puma --ranks 8 --mode direct --balance-threshold 1.5)

# Threshold 1.0 would re-trigger forever on rounding noise.
expect_run(fail "threshold must be > 1"
  --app rd --platform puma --ranks 8 --mode direct --balance
  --balance-threshold 1.0)

# Unknown balance modes fail fast, not at the first rebalance.
expect_run(fail "repartition.*diffuse"
  --app rd --platform puma --ranks 8 --mode direct --balance
  --balance-mode magic)

# Conflicting mid-run controllers: balance vs shrink-on-crash...
expect_run(fail "--balance conflicts with --shrink"
  --app rd --platform puma --ranks 8 --mode direct --balance
  --faults 0.05 --recovery ckpt --shrink)

# ...and balance vs re-brokering.
expect_run(fail "--balance conflicts with --rebroker"
  --app rd --platform puma --ranks 8 --mode direct --balance
  --rebroker smp)

# --steps drives the simulated run; modeled projections have no steps.
expect_run(fail "--steps .* needs .*--mode direct"
  --app rd --platform puma --ranks 8 --steps 5)
expect_run(fail "at least one time step"
  --app rd --platform puma --ranks 8 --mode direct --steps 0)

# The happy path: skewed, balanced direct run exits zero.
expect_run(ok ""
  --app rd --platform puma --ranks 8 --mode direct --cells 4
  --skew 2 --balance --balance-threshold 1.1 --steps 4)

# Unknown flags are rejected, not silently ignored.
execute_process(
  COMMAND ${HETEROLAB} run --no-such-flag 1
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag --no-such-flag was accepted")
endif()

# --- grid flag-interaction audit ---------------------------------------------
# Same contract as above, for any subcommand.

function(expect_cmd rc_kind reason_substring)
  execute_process(
    COMMAND ${HETEROLAB} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc_kind STREQUAL "fail")
    if(rc EQUAL 0)
      message(FATAL_ERROR "expected non-zero exit for: ${ARGN}")
    endif()
    if(NOT err MATCHES "${reason_substring}")
      message(FATAL_ERROR
        "stderr should name the failure ('${reason_substring}') for "
        "${ARGN}; got stderr: ${err}")
    endif()
    if(out MATCHES "${reason_substring}")
      message(FATAL_ERROR
        "the failure reason leaked to stdout for ${ARGN}: ${out}")
    endif()
  else()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "expected exit 0 for: ${ARGN}; rc=${rc} stderr: ${err}")
    endif()
  endif()
endfunction()

# A preset is a fixed cell set; a custom sample is another. Never both.
expect_cmd(fail
  "--matrix picks a preset cell set. it conflicts with --cells N .pick one."
  grid --matrix ci --cells 10 --out -)

# Sampling riders without their principal flag are silent no-ops waiting
# to happen.
expect_cmd(fail "--sample-seed seeds the --cells sample: pass --cells N"
  grid --sample-seed 9 --out -)
expect_cmd(fail
  "--abort-after-shards interrupts a resumable run: pass --store PATH"
  grid --abort-after-shards 1 --out -)

# Degenerate values fail fast with the flag named.
expect_cmd(fail "--cells needs at least one cell"
  grid --cells 0 --out -)
expect_cmd(fail "--iterations must be positive"
  grid --matrix smoke --iterations 0 --out -)
expect_cmd(fail "--shard-size must be positive"
  grid --matrix smoke --shard-size 0 --out -)

# Unknown presets are rejected before any expansion work.
expect_cmd(fail "unknown --matrix preset: nightly .expected full.ci.smoke."
  grid --matrix nightly --out -)

# The happy path: the smoke preset renders a report to stdout.
expect_cmd(ok "" grid --matrix smoke --out -)

# Unknown flags on grid are rejected like everywhere else.
execute_process(
  COMMAND ${HETEROLAB} grid --frobnicate 1 --out -
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag --frobnicate was accepted by grid")
endif()

message(STATUS "cli_failure_test passed")
