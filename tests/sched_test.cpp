// Tests for the batch-scheduler simulators: queue waits, launch limits, and
// per-platform behaviour.

#include <gtest/gtest.h>

#include "platform/platform_spec.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace hetero::sched {
namespace {

TEST(MakeScheduler, PicksThePlatformKind) {
  EXPECT_EQ(make_scheduler(platform::puma())->name(), "pbs");
  EXPECT_EQ(make_scheduler(platform::ellipse())->name(), "sge");
  EXPECT_EQ(make_scheduler(platform::lagrange())->name(), "pbs");
  EXPECT_EQ(make_scheduler(platform::ec2())->name(), "shell");
}

TEST(Pbs, LaunchesWithinCapacity) {
  Rng rng(1);
  PbsScheduler pbs(platform::puma());
  const auto out = pbs.submit({64, 3600.0}, rng);
  EXPECT_TRUE(out.launched);
  EXPECT_GT(out.wait_s, 0.0);
  EXPECT_TRUE(out.failure_reason.empty());
}

TEST(Pbs, RejectsOversizedJobsWithAReason) {
  Rng rng(1);
  PbsScheduler pbs(platform::puma());
  const auto out = pbs.submit({256, 3600.0}, rng);
  EXPECT_FALSE(out.launched);
  EXPECT_NE(out.failure_reason.find("128 cores"), std::string::npos);
}

TEST(Sge, EllipseFailsAbove512Ranks) {
  Rng rng(1);
  SgeScheduler sge(platform::ellipse());
  EXPECT_TRUE(sge.submit({512, 0.0}, rng).launched);
  const auto out = sge.submit({513, 0.0}, rng);
  EXPECT_FALSE(out.launched);
  EXPECT_NE(out.failure_reason.find("mpiexec"), std::string::npos);
}

TEST(Pbs, LagrangeFailsAbove343Ranks) {
  Rng rng(1);
  PbsScheduler pbs(platform::lagrange());
  EXPECT_TRUE(pbs.submit({343, 0.0}, rng).launched);
  const auto out = pbs.submit({344, 0.0}, rng);
  EXPECT_FALSE(out.launched);
  EXPECT_NE(out.failure_reason.find("IB"), std::string::npos);
}

TEST(Shell, Ec2ProvidesLargeAssembliesQuickly) {
  Rng rng(1);
  ShellLauncher shell(platform::ec2());
  const auto out = shell.submit({1000, 0.0}, rng);
  EXPECT_TRUE(out.launched);
  // Minutes, not hours: the cloud's availability advantage.
  EXPECT_LT(out.wait_s, 30.0 * 60.0);
}

TEST(Schedulers, AverageWaitOrderingMatchesAvailability) {
  // EC2 boot << puma's internal queue << ellipse << lagrange's grid queue.
  auto mean_wait = [](Scheduler& s, int ranks) {
    Rng rng(7);
    SampleStats stats;
    for (int i = 0; i < 200; ++i) {
      const auto out = s.submit({ranks, 3600.0}, rng);
      EXPECT_TRUE(out.launched);
      stats.add(out.wait_s);
    }
    return stats.mean();
  };
  ShellLauncher ec2(platform::ec2());
  PbsScheduler puma(platform::puma());
  SgeScheduler ellipse(platform::ellipse());
  PbsScheduler lagrange(platform::lagrange());
  const double w_ec2 = mean_wait(ec2, 64);
  const double w_puma = mean_wait(puma, 64);
  const double w_ellipse = mean_wait(ellipse, 64);
  const double w_lagrange = mean_wait(lagrange, 64);
  EXPECT_LT(w_ec2, w_puma);
  EXPECT_LT(w_puma, w_ellipse);
  EXPECT_LT(w_ellipse, w_lagrange);
}

TEST(Schedulers, BiggerJobsWaitLonger) {
  PbsScheduler pbs(platform::lagrange());
  auto mean_wait = [&](int ranks) {
    Rng rng(13);
    SampleStats stats;
    for (int i = 0; i < 300; ++i) {
      stats.add(pbs.submit({ranks, 3600.0}, rng).wait_s);
    }
    return stats.mean();
  };
  EXPECT_LT(mean_wait(12), mean_wait(343));
}

TEST(Schedulers, DeterministicGivenTheSameRngState) {
  PbsScheduler pbs(platform::puma());
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(pbs.submit({8, 0.0}, a).wait_s,
                     pbs.submit({8, 0.0}, b).wait_s);
  }
}

TEST(Schedulers, RejectZeroRankJobs) {
  Rng rng(1);
  PbsScheduler pbs(platform::puma());
  EXPECT_THROW(pbs.submit({0, 0.0}, rng), Error);
}

}  // namespace
}  // namespace hetero::sched
