// Tests for distributed linear algebra: gid directory, index maps, halo
// exchange, vectors, CSR matrices, and the refillable system builder.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "la/csr_matrix.hpp"
#include "la/dist_matrix.hpp"
#include "la/dist_vector.hpp"
#include "la/halo.hpp"
#include "la/index_map.hpp"
#include "la/system_builder.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"

namespace hetero::la {
namespace {

simmpi::Runtime make_runtime(int ranks) {
  return simmpi::Runtime(netsim::Topology::uniform(
      ranks, 2, netsim::Fabric::gigabit_ethernet(),
      netsim::Fabric::shared_memory()));
}

/// 1-D overlapping decomposition: rank r touches gids [10r, 10r+10], so
/// adjacent ranks share one gid (10r) — a minimal partition interface.
std::vector<GlobalId> touched_1d(int rank) {
  std::vector<GlobalId> t;
  for (GlobalId g = 10 * rank; g <= 10 * rank + 10; ++g) {
    t.push_back(g);
  }
  return t;
}

TEST(GidDirectory, SharedGidsGoToLowestRank) {
  auto rt = make_runtime(3);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto owners = dir.lookup(comm, touched);
    for (std::size_t i = 0; i < touched.size(); ++i) {
      const GlobalId g = touched[i];
      // gid 10r (r>0) is shared between ranks r-1 and r: min rank wins.
      // The top gid (30) is touched only by the last rank, and the formula
      // g/10 - 1 = 2 happens to be that rank as well.
      if (g % 10 == 0 && g > 0) {
        EXPECT_EQ(owners[i], static_cast<int>(g / 10) - 1) << "gid " << g;
      } else {
        EXPECT_EQ(owners[i], static_cast<int>(g / 10)) << "gid " << g;
      }
    }
  });
}

TEST(GidDirectory, LookupOfUnregisteredGidThrows) {
  auto rt = make_runtime(2);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
                 const auto dir =
                     GidDirectory::build(comm, touched_1d(comm.rank()));
                 const std::vector<GlobalId> bogus{999999};
                 dir.lookup(comm, bogus);
               }),
               Error);
}

TEST(IndexMap, OwnedSetsPartitionTheGlobalIds) {
  auto rt = make_runtime(4);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto map = IndexMap::build(comm, dir, touched);
    // 4 ranks x 11 touched with 3 shared interfaces: 41 global ids.
    EXPECT_EQ(map.global_count(), 41);
    EXPECT_EQ(map.local_count(), 11);
    EXPECT_EQ(map.owned_count() + map.ghost_count(), 11);
    // Every local gid resolves back to its local index.
    for (int l = 0; l < map.local_count(); ++l) {
      EXPECT_EQ(map.local(map.gid(l)), l);
    }
    EXPECT_EQ(map.local(424242), kInvalidLocal);
    // Ghosts know a valid foreign owner.
    for (int l = map.owned_count(); l < map.local_count(); ++l) {
      EXPECT_NE(map.ghost_owner(l), comm.rank());
      EXPECT_GE(map.ghost_owner(l), 0);
      EXPECT_LT(map.ghost_owner(l), comm.size());
    }
  });
}

TEST(IndexMap, ExtraGhostsAreIncluded) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    // Rank 0 additionally needs gid 15 (owned by rank 1).
    std::vector<GlobalId> extra;
    if (comm.rank() == 0) {
      extra.push_back(15);
    }
    const auto map = IndexMap::build(comm, dir, touched, extra);
    if (comm.rank() == 0) {
      const int l = map.local(15);
      ASSERT_NE(l, kInvalidLocal);
      EXPECT_FALSE(map.is_owned_local(l));
      EXPECT_EQ(map.ghost_owner(l), 1);
    }
  });
}

TEST(HaloExchange, ImportMovesOwnerValuesToGhosts) {
  auto rt = make_runtime(3);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto map = IndexMap::build(comm, dir, touched);
    HaloExchange halo(comm, map);
    DistVector v(map);
    // Owner writes gid as the value; ghosts start poisoned.
    for (int l = 0; l < map.owned_count(); ++l) {
      v[l] = static_cast<double>(map.gid(l));
    }
    for (int l = map.owned_count(); l < map.local_count(); ++l) {
      v[l] = -1.0;
    }
    v.update_ghosts(comm, halo);
    for (int l = 0; l < map.local_count(); ++l) {
      EXPECT_DOUBLE_EQ(v[l], static_cast<double>(map.gid(l)));
    }
  });
}

TEST(HaloExchange, ExportAddAccumulatesIntoOwners) {
  auto rt = make_runtime(3);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto map = IndexMap::build(comm, dir, touched);
    HaloExchange halo(comm, map);
    DistVector v(map);
    // Everybody contributes 1 at every local slot; after export-add each
    // owned slot holds the number of ranks touching that gid.
    v.set_all(1.0);
    halo.export_add(comm, v.values());
    for (int l = 0; l < map.owned_count(); ++l) {
      const GlobalId g = map.gid(l);
      const bool shared = (g % 10 == 0) && g > 0 && g < 30;
      EXPECT_DOUBLE_EQ(v[l], shared ? 2.0 : 1.0) << "gid " << g;
    }
    // Ghost slots were zeroed by the export.
    for (int l = map.owned_count(); l < map.local_count(); ++l) {
      EXPECT_DOUBLE_EQ(v[l], 0.0);
    }
  });
}

TEST(DistVector, DotAndNormsMatchSerial) {
  auto rt = make_runtime(4);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto map = IndexMap::build(comm, dir, touched);
    DistVector x(map);
    DistVector y(map);
    // x(g) = g, y(g) = 1 over all 41 global ids.
    for (int l = 0; l < map.owned_count(); ++l) {
      x[l] = static_cast<double>(map.gid(l));
      y[l] = 1.0;
    }
    double expect_dot = 0.0;
    double expect_norm2 = 0.0;
    for (GlobalId g = 0; g <= 40; ++g) {
      expect_dot += static_cast<double>(g);
      expect_norm2 += static_cast<double>(g) * static_cast<double>(g);
    }
    EXPECT_DOUBLE_EQ(x.dot(comm, y), expect_dot);
    EXPECT_NEAR(x.norm2(comm), std::sqrt(expect_norm2), 1e-10);
    EXPECT_DOUBLE_EQ(x.norm_inf(comm), 40.0);
  });
}

TEST(DistVector, AxpyOperations) {
  auto rt = make_runtime(2);
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto map = IndexMap::build(comm, dir, touched);
    DistVector x(map);
    DistVector y(map);
    x.set_all(2.0);
    y.set_all(3.0);
    y.axpy(10.0, x);  // y = 23
    EXPECT_DOUBLE_EQ(y[0], 23.0);
    y.axpby(1.0, x, -1.0);  // y = 2 - 23 = -21
    EXPECT_DOUBLE_EQ(y[0], -21.0);
    y.scale(-1.0);
    EXPECT_DOUBLE_EQ(y[0], 21.0);
  });
}

TEST(CsrMatrix, FromTripletsMergesDuplicates) {
  const std::vector<Triplet> t{
      {0, 0, 1.0}, {0, 1, 2.0}, {0, 0, 3.0}, {1, 1, 5.0},
  };
  const auto m = CsrMatrix::from_triplets(2, 2, t);
  EXPECT_EQ(m.nonzeros(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_EQ(m.slot(1, 0), -1);
}

TEST(CsrMatrix, MultiplyKnownValues) {
  const std::vector<Triplet> t{
      {0, 0, 2.0}, {0, 2, 1.0}, {1, 1, -1.0}, {2, 0, 3.0}, {2, 2, 4.0},
  };
  const auto m = CsrMatrix::from_triplets(3, 3, t);
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3, 0.0);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
  m.multiply_add(x, y);  // doubles
  EXPECT_DOUBLE_EQ(y[2], 30.0);
  const auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[1], -1.0);
}

TEST(CsrMatrix, SymmetryErrorDetectsAsymmetry) {
  const std::vector<Triplet> sym{
      {0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
  };
  EXPECT_DOUBLE_EQ(CsrMatrix::from_triplets(2, 2, sym).symmetry_error(),
                   0.0);
  const std::vector<Triplet> asym{
      {0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -0.25}, {1, 1, 2.0},
  };
  EXPECT_DOUBLE_EQ(CsrMatrix::from_triplets(2, 2, asym).symmetry_error(),
                   0.75);
  // Entries only on one side count fully.
  const std::vector<Triplet> oneside{{0, 1, 3.0}};
  EXPECT_DOUBLE_EQ(
      CsrMatrix::from_triplets(2, 2, oneside).symmetry_error(), 3.0);
}

TEST(CsrMatrix, FrobeniusNorm) {
  const std::vector<Triplet> t{{0, 0, 3.0}, {1, 1, 4.0}};
  EXPECT_DOUBLE_EQ(CsrMatrix::from_triplets(2, 2, t).frobenius_norm(), 5.0);
}

class HaloRoundTripRanks : public ::testing::TestWithParam<int> {};

TEST_P(HaloRoundTripRanks, ImportThenExportConservesTotals) {
  // Property: setting owned values, importing ghosts, then export-adding
  // multiplies each shared dof's owned value by (1 + #ghost copies); with
  // values = 1 the global sum becomes sum over ranks of local_count.
  auto rt = make_runtime(GetParam());
  rt.run([&](simmpi::Comm& comm) {
    const auto touched = touched_1d(comm.rank());
    const auto dir = GidDirectory::build(comm, touched);
    const auto map = IndexMap::build(comm, dir, touched);
    HaloExchange halo(comm, map);
    DistVector v(map);
    for (int l = 0; l < map.owned_count(); ++l) {
      v[l] = 1.0;
    }
    v.update_ghosts(comm, halo);
    halo.export_add(comm, v.values());
    double local = 0.0;
    for (int l = 0; l < map.owned_count(); ++l) {
      local += v[l];
    }
    const double global = comm.allreduce(local, simmpi::ReduceOp::kSum);
    const auto local_counts = comm.allreduce(
        static_cast<std::int64_t>(map.local_count()), simmpi::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(global, static_cast<double>(local_counts));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HaloRoundTripRanks,
                         ::testing::Values(1, 2, 4, 6));

TEST(CsrMatrix, RejectsOutOfRangeTriplets) {
  const std::vector<Triplet> t{{0, 5, 1.0}};
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, t), Error);
}

/// Assembles a global 1-D Laplacian over gids 0..n-1 through the system
/// builder, each rank contributing its "elements" (pairs of adjacent gids)
/// like a FEM code, then compares matvec results against the serial stencil.
void check_distributed_laplacian(int ranks) {
  auto rt = make_runtime(ranks);
  const int n_elems = 12;  // elements (i, i+1), i = 0..11; gids 0..12
  rt.run([&](simmpi::Comm& comm) {
    // Block distribution of elements.
    const int per = (n_elems + comm.size() - 1) / comm.size();
    const int e0 = comm.rank() * per;
    const int e1 = std::min(n_elems, e0 + per);
    std::vector<GlobalId> touched;
    for (int e = e0; e < e1; ++e) {
      touched.push_back(e);
      touched.push_back(e + 1);
    }
    DistSystemBuilder builder(comm, touched);
    auto assemble = [&](double scale) {
      builder.begin_assembly();
      for (int e = e0; e < e1; ++e) {
        // Element stiffness [1 -1; -1 1], load [0.5, 0.5].
        builder.add_matrix(e, e, scale);
        builder.add_matrix(e, e + 1, -scale);
        builder.add_matrix(e + 1, e, -scale);
        builder.add_matrix(e + 1, e + 1, scale);
        builder.add_rhs(e, 0.5 * scale);
        builder.add_rhs(e + 1, 0.5 * scale);
      }
      builder.finalize(comm);
    };
    assemble(1.0);

    const IndexMap& map = builder.map();
    EXPECT_EQ(map.global_count(), n_elems + 1);

    // y = A x with x(g) = g^2: interior rows give -((g-1)^2 - 2g^2 + (g+1)^2)
    // = -2; boundary rows g^2 - (g±1)^2.
    DistVector x(map);
    DistVector y(map);
    for (int l = 0; l < map.local_count(); ++l) {
      x[l] = static_cast<double>(map.gid(l) * map.gid(l));
    }
    builder.matrix().multiply(comm, x, y);
    for (int l = 0; l < map.owned_count(); ++l) {
      const GlobalId g = map.gid(l);
      double expect = -2.0;
      if (g == 0) {
        expect = 0.0 - 1.0;
      } else if (g == n_elems) {
        expect = static_cast<double>(g * g - (g - 1) * (g - 1));
      }
      EXPECT_NEAR(y[l], expect, 1e-12) << "row gid " << g;
    }
    // RHS: 0.5 per incident element.
    for (int l = 0; l < map.owned_count(); ++l) {
      const GlobalId g = map.gid(l);
      const double expect = (g == 0 || g == n_elems) ? 0.5 : 1.0;
      EXPECT_NEAR(builder.rhs()[l], expect, 1e-12);
    }

    // Refill with doubled values; everything must exactly double.
    assemble(2.0);
    builder.matrix().multiply(comm, x, y);
    for (int l = 0; l < map.owned_count(); ++l) {
      const GlobalId g = map.gid(l);
      double expect = -4.0;
      if (g == 0) {
        expect = -2.0;
      } else if (g == n_elems) {
        expect = 2.0 * static_cast<double>(g * g - (g - 1) * (g - 1));
      }
      EXPECT_NEAR(y[l], expect, 1e-12);
    }
  });
}

TEST(DistSystemBuilder, LaplacianOn1Rank) { check_distributed_laplacian(1); }
TEST(DistSystemBuilder, LaplacianOn2Ranks) { check_distributed_laplacian(2); }
TEST(DistSystemBuilder, LaplacianOn4Ranks) { check_distributed_laplacian(4); }

TEST(DistSystemBuilder, DeterministicAcrossIdenticalRuns) {
  // The whole assembly pipeline (directory, routing, CSR layout) must be
  // bit-reproducible: two identical runs produce identical matvecs.
  auto run_once = [&]() {
    std::vector<double> result;
    auto rt = make_runtime(3);
    rt.run([&](simmpi::Comm& comm) {
      const int n = 12;
      const int per = (n + comm.size() - 1) / comm.size();
      const int e0 = comm.rank() * per;
      const int e1 = std::min(n, e0 + per);
      std::vector<GlobalId> touched;
      for (int e = e0; e < e1; ++e) {
        touched.push_back(e);
        touched.push_back(e + 1);
      }
      DistSystemBuilder builder(comm, touched);
      builder.begin_assembly();
      for (int e = e0; e < e1; ++e) {
        builder.add_matrix(e, e, 1.5);
        builder.add_matrix(e, e + 1, -0.5);
        builder.add_matrix(e + 1, e, -0.5);
        builder.add_matrix(e + 1, e + 1, 1.5);
      }
      builder.finalize(comm);
      DistVector x(builder.map());
      DistVector y(builder.map());
      for (int l = 0; l < x.local_count(); ++l) {
        x[l] = 0.1 * static_cast<double>(builder.map().gid(l));
      }
      builder.matrix().multiply(comm, x, y);
      const auto gathered = comm.gatherv(
          std::vector<double>(y.owned().begin(), y.owned().end()), 0);
      if (comm.rank() == 0) {
        result = gathered;
      }
    });
    return result;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(DistSystemBuilder, RefillWithChangedStructureThrows) {
  auto rt = make_runtime(2);
  EXPECT_THROW(
      rt.run([&](simmpi::Comm& comm) {
        std::vector<GlobalId> touched{comm.rank(), comm.rank() + 1};
        DistSystemBuilder builder(comm, touched);
        builder.begin_assembly();
        builder.add_matrix(comm.rank(), comm.rank(), 1.0);
        builder.finalize(comm);
        builder.begin_assembly();
        builder.add_matrix(comm.rank(), comm.rank() + 1, 1.0);  // new slot
        builder.finalize(comm);
      }),
      Error);
}

TEST(DistSystemBuilder, ContributionToUndeclaredRowThrows) {
  auto rt = make_runtime(2);
  EXPECT_THROW(rt.run([&](simmpi::Comm& comm) {
                 std::vector<GlobalId> touched{0, 1};
                 DistSystemBuilder builder(comm, touched);
                 builder.begin_assembly();
                 builder.add_matrix(50, 50, 1.0);
                 builder.finalize(comm);
               }),
               Error);
}

}  // namespace
}  // namespace hetero::la
