// Tests for the experiment runner and the paper-artifact generators.

#include <gtest/gtest.h>

#include <sstream>

#include "core/campaign.hpp"
#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "support/error.hpp"

namespace hetero::core {
namespace {

TEST(Runner, ModeledRdOnPuma) {
  ExperimentRunner runner(42);
  Experiment e;
  e.platform = "puma";
  e.ranks = 27;
  const auto r = runner.run(e);
  EXPECT_TRUE(r.launched);
  EXPECT_GT(r.iteration.total_s, 0.0);
  EXPECT_GT(r.cost_per_iteration_usd, 0.0);
  EXPECT_GT(r.queue_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(r.provisioning_hours, 0.0);  // the home platform
  EXPECT_EQ(r.hosts, 7);  // 27 ranks on 4-core nodes
}

TEST(Runner, LaunchFailuresCarryTheReason) {
  ExperimentRunner runner(42);
  Experiment e;
  e.platform = "lagrange";
  e.ranks = 512;
  const auto r = runner.run(e);
  EXPECT_FALSE(r.launched);
  EXPECT_NE(r.failure_reason.find("IB"), std::string::npos);
}

TEST(Runner, Ec2WholeNodeBillingPenalizesSmallJobs) {
  ExperimentRunner runner(42);
  Experiment one;
  one.platform = "ec2";
  one.ranks = 1;
  const auto r1 = runner.run(one);
  // One rank still pays a full cc2.8xlarge: cost rate = $2.40/h.
  const double implied_hourly =
      r1.cost_per_iteration_usd / (r1.iteration.total_s / 3600.0);
  EXPECT_NEAR(implied_hourly, 2.40, 1e-6);
}

TEST(Runner, Ec2MixUsesSpotPlusOnDemandFill) {
  ExperimentRunner runner(42);
  Experiment mix;
  mix.platform = "ec2";
  mix.ranks = 1000;
  mix.ec2_spot_mix = true;
  mix.ec2_placement_groups = 4;
  const auto r = runner.run(mix);
  EXPECT_TRUE(r.launched);
  EXPECT_EQ(r.hosts, 63);
  EXPECT_GT(r.spot_hosts, 0);
  EXPECT_LT(r.spot_hosts, 63);  // never a full spot assembly
  // Estimated (all-spot) cost is ~4.4x below the on-demand rate.
  EXPECT_NEAR(r.est_cost_per_iteration_usd * 2.40 / 0.54,
              63 * 2.40 * r.iteration.total_s / 3600.0, 1e-6);
}

TEST(Runner, MixAndFullTimesAreComparable) {
  // Table II's finding: a single placement group buys no performance.
  ExperimentRunner runner(42);
  Experiment full;
  full.platform = "ec2";
  full.ranks = 512;
  const auto rf = runner.run(full);
  Experiment mix = full;
  mix.ec2_spot_mix = true;
  mix.ec2_placement_groups = 4;
  const auto rm = runner.run(mix);
  EXPECT_NEAR(rm.iteration.total_s, rf.iteration.total_s,
              0.05 * rf.iteration.total_s);
}

TEST(Runner, DirectModeRunsTheRealApplication) {
  ExperimentRunner runner(42);
  Experiment e;
  e.platform = "lagrange";
  e.ranks = 8;
  e.mode = Mode::kDirect;
  e.cells_per_rank_axis = 3;  // 6^3 global cells, cheap
  e.direct_steps = 2;
  const auto r = runner.run(e);
  EXPECT_TRUE(r.launched);
  EXPECT_TRUE(r.solver_converged);
  EXPECT_LT(r.nodal_error, 1e-6);  // the RD exactness oracle
  EXPECT_GT(r.iteration.assembly_s, 0.0);
  EXPECT_GT(r.iteration.solve_s, 0.0);
}

TEST(Runner, DirectFaultRecoversViaCheckpointRestart) {
  // Scan a fixed seed window for a run where a crash fires *after* a
  // checkpoint was written; the policy must ride it out and the recovered
  // trajectory must still satisfy the RD exactness oracle.
  ExperimentRunner runner(42);
  Experiment base;
  base.platform = "puma";
  base.ranks = 8;
  base.mode = Mode::kDirect;
  base.cells_per_rank_axis = 3;
  base.direct_steps = 6;
  base.faults.rank_crash_rate = 0.05;
  base.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
  base.recovery.checkpoint_every = 2;
  base.recovery.max_attempts = 10;

  bool found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    Experiment e = base;
    e.seed = seed;
    const auto r = runner.run(e);
    if (!r.launched || r.resil.steps_recovered == 0) {
      continue;
    }
    found = true;
    EXPECT_TRUE(r.resil.recovered);
    EXPECT_GT(r.resil.faults_injected, 0);
    EXPECT_GT(r.resil.attempts, 1);
    EXPECT_GT(r.resil.checkpoints_written, 0);
    EXPECT_GT(r.resil.retry_delay_s, 0.0);
    EXPECT_GT(r.resil.wasted_sim_s, 0.0);
    EXPECT_EQ(r.resil.final_ranks, 8);
    EXPECT_TRUE(r.solver_converged);
    EXPECT_LT(r.nodal_error, 1e-6);  // oracle holds across the restart

    // The fault-free run of the same experiment gives the same trajectory:
    // checkpoint restore is exact, so the completed records agree.
    Experiment calm = e;
    calm.faults = resil::FaultSpec{};
    calm.recovery = resil::RecoveryPolicy{};
    const auto rc = runner.run(calm);
    ASSERT_TRUE(rc.launched);
    EXPECT_NEAR(r.nodal_error, rc.nodal_error, 1e-12);
    EXPECT_NEAR(r.iteration.total_s, rc.iteration.total_s, 1e-9);
  }
  EXPECT_TRUE(found)
      << "no seed in 1..20 produced a post-checkpoint crash";
}

TEST(Runner, DirectFaultShrinksToFewerRanksAndStillMatchesTheOracle) {
  // A crash under shrink_ranks_on_crash restarts on the next smaller cube
  // (8 -> 1); the gid-keyed checkpoint redistributes the state and the
  // survivors finish the *same* global problem.
  ExperimentRunner runner(42);
  Experiment base;
  base.platform = "puma";
  base.ranks = 8;
  base.mode = Mode::kDirect;
  base.cells_per_rank_axis = 3;
  base.direct_steps = 6;
  base.faults.rank_crash_rate = 0.05;
  base.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
  base.recovery.checkpoint_every = 2;
  base.recovery.max_attempts = 10;
  base.recovery.shrink_ranks_on_crash = true;

  bool found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    Experiment e = base;
    e.seed = seed;
    const auto r = runner.run(e);
    if (!r.launched || r.resil.faults_injected == 0) {
      continue;
    }
    found = true;
    EXPECT_EQ(r.resil.final_ranks, 1);  // 2^3 shrank to 1^3
    EXPECT_TRUE(r.solver_converged);
    EXPECT_LT(r.nodal_error, 1e-6);  // same oracle on fewer ranks
  }
  EXPECT_TRUE(found) << "no seed in 1..20 crashed at all";
}

TEST(Runner, UnrecoveredFaultReportsFailureNotAnException) {
  ExperimentRunner runner(42);
  Experiment e;
  e.platform = "puma";
  e.ranks = 8;
  e.mode = Mode::kDirect;
  e.cells_per_rank_axis = 3;
  e.direct_steps = 4;
  e.faults.rank_crash_rate = 1.0;  // every attempt dies at step 0
  e.recovery.kind = resil::RecoveryKind::kNone;
  const auto r = runner.run(e);
  EXPECT_FALSE(r.launched);
  EXPECT_NE(r.failure_reason.find("injected fault"), std::string::npos);
  EXPECT_NE(r.failure_reason.find("unrecovered"), std::string::npos);
  EXPECT_EQ(r.resil.faults_injected, 1);

  // Scratch restarts cannot make progress either when every step-0 cell is
  // armed — the policy gives up after max_attempts, not an infinite loop.
  e.recovery.kind = resil::RecoveryKind::kRestartScratch;
  e.recovery.max_attempts = 3;
  const auto rs = runner.run(e);
  EXPECT_FALSE(rs.launched);
  EXPECT_EQ(rs.resil.attempts, 3);
  EXPECT_EQ(rs.resil.faults_injected, 3);
}

TEST(Runner, TransientLaunchFailuresAreRetriedWithBackoff) {
  ExperimentRunner runner(42);
  Experiment base;
  base.platform = "puma";
  base.ranks = 27;
  base.faults.launch_failure_rate = 0.5;
  base.recovery.kind = resil::RecoveryKind::kRestartScratch;
  base.recovery.max_attempts = 8;

  bool found = false;
  for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
    Experiment e = base;
    e.seed = seed;
    const auto r = runner.run(e);
    if (!r.launched || r.resil.launch_retries == 0) {
      continue;
    }
    found = true;
    EXPECT_GT(r.resil.retry_delay_s, 0.0);
    // The backoff is charged on top of the (re-queued) scheduler wait.
    EXPECT_GT(r.queue_wait_s, r.resil.retry_delay_s);
  }
  EXPECT_TRUE(found) << "no seed in 1..20 hit a transient launch failure";
}

TEST(Runner, LaunchFailureRateOneGivesUpWithTheReason) {
  ExperimentRunner runner(42);
  Experiment e;
  e.platform = "puma";
  e.ranks = 27;
  e.faults.launch_failure_rate = 1.0;
  e.recovery.kind = resil::RecoveryKind::kRestartScratch;
  e.recovery.max_attempts = 3;
  const auto r = runner.run(e);
  EXPECT_FALSE(r.launched);
  EXPECT_NE(r.failure_reason.find("transient launch failure"),
            std::string::npos);
  EXPECT_EQ(r.resil.launch_retries, 2);  // 3 attempts = 2 retries
}

TEST(Runner, DirectModeRequiresCubicRanks) {
  ExperimentRunner runner(42);
  Experiment e;
  e.platform = "puma";
  e.ranks = 6;
  e.mode = Mode::kDirect;
  EXPECT_THROW(runner.run(e), Error);
}

TEST(Report, PaperProcessCountsAreTheCubes) {
  const auto procs = paper_process_counts();
  ASSERT_EQ(procs.size(), 10u);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const int k = static_cast<int>(i) + 1;
    EXPECT_EQ(procs[i], k * k * k);
  }
}

TEST(Report, WeakScalingFigureCoversAllPlatformsAndSizes) {
  CampaignEngine engine(42);
  const std::vector<int> procs{1, 125, 216, 512, 1000};
  const Table table = weak_scaling_figure(
      engine, perf::AppKind::kReactionDiffusion, procs);
  EXPECT_EQ(table.rows(), 4 * procs.size());
  // Failures appear exactly where the paper hit them.
  int failures = 0;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    failures += table.row(r).back().rfind("FAILED", 0) == 0;
  }
  // puma: 216, 512, 1000 (3); ellipse: 1000 (1); lagrange: 512, 1000 (2);
  // ec2: none -> 6 failures for this process list.
  EXPECT_EQ(failures, 6);
}

TEST(Report, Table2HasTheTenPaperRows) {
  CampaignEngine engine(42);
  const auto procs = paper_process_counts();
  const Table table = table2_ec2_assemblies(engine, procs);
  EXPECT_EQ(table.rows(), 10u);
  // Last row: 1000 ranks on 63 hosts.
  const auto& last = table.row(9);
  EXPECT_EQ(last[0], "1000");
  EXPECT_EQ(last[1], "63");
}

TEST(Report, CostFigureOrdersPlatformsAtSmallScale) {
  CampaignEngine engine(42);
  const std::vector<int> procs{64};
  const Table table =
      cost_figure(engine, perf::AppKind::kReactionDiffusion, procs);
  ASSERT_EQ(table.rows(), 1u);
  const auto& row = table.row(0);
  const double puma_usd = std::stod(row[1]);
  const double ellipse_usd = std::stod(row[2]);
  const double lagrange_usd = std::stod(row[3]);
  const double ec2_usd = std::stod(row[4]);
  const double mix_usd = std::stod(row[5]);
  // At 64 ranks every platform runs; puma is the cheapest per core-hour,
  // lagrange the most expensive of the fixed-price machines.
  EXPECT_LT(puma_usd, ellipse_usd);
  EXPECT_LT(ellipse_usd, lagrange_usd);
  // The spot strategy beats on-demand EC2 by ~4.4x.
  EXPECT_NEAR(ec2_usd / mix_usd, 2.40 / 0.54, 0.2);
}

TEST(Report, AvailabilityTableShowsCloudAdvantage) {
  CampaignEngine engine(42);
  const Table table = availability_table(
      engine, perf::AppKind::kReactionDiffusion, 64, 100);
  EXPECT_EQ(table.rows(), 4u);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("puma"), std::string::npos);
  EXPECT_NE(text.find("ok"), std::string::npos);
}

TEST(Report, SummaryTableCoversAllPlatformAxes) {
  CampaignEngine engine(42);
  const Table table = summary_table(engine, 125);
  EXPECT_EQ(table.rows(), 4u);
  EXPECT_EQ(table.cols(), 8u);
  // At 125 ranks everyone runs; every cell is filled.
  for (std::size_t r = 0; r < table.rows(); ++r) {
    for (const auto& cell : table.row(r)) {
      EXPECT_NE(cell, "-");
    }
  }
  // At 500 ranks puma and lagrange drop out.
  const Table big = summary_table(engine, 500);
  int dashes = 0;
  for (std::size_t r = 0; r < big.rows(); ++r) {
    dashes += big.row(r)[4] == "-";
  }
  EXPECT_EQ(dashes, 2);
}

TEST(Campaign, OnDemandCompletesWithoutInterruptions) {
  CampaignConfig config;
  config.ranks = 128;
  config.iterations = 50;
  config.use_spot = false;
  config.checkpoint_interval = 0;
  const auto r = simulate_ec2_campaign(config);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.interruptions, 0);
  EXPECT_EQ(r.iterations_redone, 0);
  EXPECT_GT(r.billed_usd, 0.0);
  EXPECT_GE(r.billed_usd, r.accrued_usd);  // whole-hour rounding
  EXPECT_GT(r.wall_clock_s, 0.0);
}

TEST(Campaign, CheckpointsBoundTheRedoneWork) {
  CampaignConfig base;
  base.ranks = 512;
  base.iterations = 300;
  base.use_spot = true;
  base.spot_bid_usd = 0.60;  // tight bid: interruptions guaranteed over hours

  CampaignConfig never = base;
  never.checkpoint_interval = 0;
  const auto r_never = simulate_ec2_campaign(never);

  CampaignConfig often = base;
  often.checkpoint_interval = 10;
  const auto r_often = simulate_ec2_campaign(often);

  EXPECT_TRUE(r_never.completed);
  EXPECT_TRUE(r_often.completed);
  if (r_often.interruptions > 0) {
    // With checkpoints every 10 iterations, each interruption redoes < 10.
    EXPECT_LE(r_often.iterations_redone, 10 * r_often.interruptions);
  }
  if (r_never.interruptions > 0) {
    EXPECT_GT(r_never.iterations_redone, 0);
  }
  EXPECT_GT(r_often.checkpoints_written, 0);
}

TEST(Campaign, DeterministicInSeed) {
  CampaignConfig config;
  config.ranks = 256;
  config.iterations = 100;
  config.checkpoint_interval = 20;
  const auto a = simulate_ec2_campaign(config);
  const auto b = simulate_ec2_campaign(config);
  EXPECT_DOUBLE_EQ(a.wall_clock_s, b.wall_clock_s);
  EXPECT_DOUBLE_EQ(a.billed_usd, b.billed_usd);
  EXPECT_EQ(a.interruptions, b.interruptions);
}

TEST(Campaign, ReclaimStormsForceInterruptionsDeterministically) {
  // Bid so high the market alone would never reclaim; only injected storms
  // can interrupt the campaign.
  CampaignConfig base;
  base.ranks = 256;
  base.iterations = 3000;  // ~12 h of wall clock: many storm-roll hours
  base.checkpoint_interval = 20;
  base.spot_bid_usd = 100.0;

  const auto calm = simulate_ec2_campaign(base);
  EXPECT_TRUE(calm.completed);
  EXPECT_EQ(calm.interruptions, 0);

  CampaignConfig stormy = base;
  stormy.faults.reclaim_storm_rate = 0.25;
  const auto a = simulate_ec2_campaign(stormy);
  const auto b = simulate_ec2_campaign(stormy);
  EXPECT_TRUE(a.completed);
  EXPECT_GT(a.interruptions, 0);
  EXPECT_GT(a.iterations_redone, 0);
  EXPECT_GT(a.wall_clock_s, calm.wall_clock_s);
  // Byte-for-byte replay: the storm schedule is a pure hash of the seed.
  EXPECT_DOUBLE_EQ(a.wall_clock_s, b.wall_clock_s);
  EXPECT_DOUBLE_EQ(a.billed_usd, b.billed_usd);
  EXPECT_DOUBLE_EQ(a.accrued_usd, b.accrued_usd);
  EXPECT_EQ(a.interruptions, b.interruptions);
  EXPECT_EQ(a.iterations_redone, b.iterations_redone);
}

TEST(Campaign, ValidatesConfig) {
  CampaignConfig bad;
  bad.iterations = 0;
  EXPECT_THROW(simulate_ec2_campaign(bad), Error);
}

TEST(Report, AllTablesRenderBothFormats) {
  CampaignEngine engine(42);
  const std::vector<int> procs{1, 64};
  std::ostringstream sink;
  for (const Table& table :
       {weak_scaling_figure(engine, perf::AppKind::kReactionDiffusion, procs),
        table2_ec2_assemblies(engine, procs),
        cost_figure(engine, perf::AppKind::kNavierStokes, procs),
        availability_table(engine, perf::AppKind::kReactionDiffusion, 64, 10),
        summary_table(engine, 64)}) {
    table.render_text(sink);
    table.render_csv(sink);
    table.render_markdown(sink);
  }
  EXPECT_GT(sink.str().size(), 1000u);
}

TEST(Runner, DeterministicAcrossRuns) {
  ExperimentRunner a(7);
  ExperimentRunner b(7);
  Experiment e;
  e.platform = "ec2";
  e.ranks = 343;
  e.ec2_spot_mix = true;
  e.ec2_placement_groups = 4;
  const auto ra = a.run(e);
  const auto rb = b.run(e);
  EXPECT_DOUBLE_EQ(ra.iteration.total_s, rb.iteration.total_s);
  EXPECT_DOUBLE_EQ(ra.cost_per_iteration_usd, rb.cost_per_iteration_usd);
  EXPECT_EQ(ra.spot_hosts, rb.spot_hosts);
  EXPECT_DOUBLE_EQ(ra.queue_wait_s, rb.queue_wait_s);
}

}  // namespace
}  // namespace hetero::core
