// Unit tests for the support module: RNG, statistics, tables, units, CLI.

#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/io_util.hpp"
#include "support/record_log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace hetero {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(2, 9);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 9);
    lo_seen |= v == 2;
    hi_seen |= v == 9;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng(13);
  SampleStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  SampleStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.exponential(0.5));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.bernoulli(0.3);
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // Parent and child should not produce identical sequences.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == child.next_u64();
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = i;
  }
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleStats, MergeEqualsBulk) {
  SampleStats a;
  SampleStats b;
  SampleStats all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStats, MergeWithEmptyIsIdentity) {
  SampleStats a;
  a.add(3.0);
  SampleStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SampleStats, EmptyMeanThrows) {
  SampleStats s;
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
}

TEST(MeanAfterWarmup, DropsLeadingSamples) {
  // The paper discards the first 5 iterations; emulate with 2 here.
  const std::vector<double> v{100.0, 50.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_after_warmup(v, 2), 2.0);
  EXPECT_THROW(mean_after_warmup(v, 5), Error);
}

TEST(Histogram, BinsAndEdgesClampCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_THROW(h.bin_count(5), Error);
}

TEST(Histogram, RenderScalesBarsToThePeak) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 8; ++i) {
    h.add(0.5);
  }
  h.add(1.5);
  const std::string out = h.render(8);
  // Peak bin gets the full width, the other gets 1/8 of it.
  EXPECT_NE(out.find("########"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Table, RendersAlignedTextWithAllRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"bb", "20"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("20"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.render_markdown(os);
  EXPECT_NE(os.str().find("|---|"), std::string::npos);
}

TEST(Units, FormatBytesPicksBinaryPrefix) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(Units, FormatSecondsPicksScale) {
  EXPECT_EQ(format_seconds(2e-6), "2.00 us");
  EXPECT_EQ(format_seconds(0.005), "5.00 ms");
  EXPECT_EQ(format_seconds(42.0), "42.00 s");
  EXPECT_EQ(format_seconds(3600.0), "60.0 min");
  EXPECT_EQ(format_seconds(7300.0), "2.03 h");
}

TEST(Units, FormatMoneyUsesCentsBelowDollar) {
  EXPECT_EQ(format_money(0.023), "2.300 cents");
  EXPECT_EQ(format_money(2.4), "$2.40");
}

TEST(Cli, ParsesAllFlagForms) {
  // Note: a bare flag followed by a non-flag token consumes it as a value,
  // so boolean flags must come last or use the --flag=true form.
  const char* argv[] = {"prog",       "--alpha=1.5", "--count", "7",
                        "positional", "--name",      "x",       "--verbose"};
  CliArgs args(8, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get_int("count", 0), 7);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_string("name", ""), "x");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe"};
  CliArgs args(3, argv);
  EXPECT_THROW(args.get_int("n", 0), Error);
  EXPECT_THROW(args.get_bool("b", false), Error);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    HETERO_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
  }
}

// --- io_util: EINTR / short-write hardening ----------------------------

int g_hook_calls = 0;

/// Adversarial write(2): every odd call fails with EINTR, every even call
/// transfers at most one byte. write_all must still land everything.
ssize_t hostile_write(int fd, const void* data, std::size_t size) {
  ++g_hook_calls;
  if (g_hook_calls % 2 == 1) {
    errno = EINTR;
    return -1;
  }
  return ::write(fd, data, size < 1 ? size : 1);
}

ssize_t broken_write(int, const void*, std::size_t) {
  errno = EIO;
  return -1;
}

struct HookGuard {
  explicit HookGuard(support::WriteHook hook) {
    support::set_write_hook_for_tests(hook);
  }
  ~HookGuard() { support::set_write_hook_for_tests(nullptr); }
};

TEST(IoUtil, WriteAllSurvivesEintrStormsAndShortWrites) {
  const std::string path = "/tmp/heterolab_io_util_test.bin";
  std::remove(path.c_str());
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const std::string payload = "twelve bytes";
  {
    HookGuard guard(&hostile_write);
    g_hook_calls = 0;
    EXPECT_TRUE(support::write_all(fd, payload.data(), payload.size()));
    // One EINTR + one 1-byte transfer per landed byte.
    EXPECT_GE(g_hook_calls, 2 * static_cast<int>(payload.size()));
  }
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, payload);
  std::remove(path.c_str());
}

TEST(IoUtil, WriteAllReportsRealErrorsInsteadOfSpinning) {
  HookGuard guard(&broken_write);
  const char byte = 'x';
  errno = 0;
  EXPECT_FALSE(support::write_all(1, &byte, 1));
  EXPECT_EQ(errno, EIO);
}

TEST(IoUtil, ReadFullDistinguishesEofShortAndError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(support::write_all(fds[1], "abc", 3));
  char buf[8] = {};
  // Short: the stream ended after 3 of 8 bytes.
  ::close(fds[1]);
  EXPECT_EQ(support::read_full(fds[0], buf, sizeof(buf)), 3);
  EXPECT_EQ(std::string(buf, 3), "abc");
  // EOF: nothing left at all.
  EXPECT_EQ(support::read_full(fds[0], buf, sizeof(buf)), 0);
  ::close(fds[0]);
  // Error: closed descriptor.
  EXPECT_EQ(support::read_full(fds[0], buf, sizeof(buf)), -1);
}

// --- record log: format + multi-process append safety ------------------

TEST(RecordLog, RoundTripsAndRecoversAcrossReopen) {
  const std::string path = "/tmp/heterolab_record_log_test.log";
  std::remove(path.c_str());
  {
    support::RecordLog log(path);
    log.append("alpha", "one");
    log.append("beta", std::string("two\0three", 9));
    log.flush();
  }
  support::RecordLog log(path);
  std::vector<std::pair<std::string, std::string>> seen;
  const auto stats = log.recover([&](std::string key, std::string value) {
    seen.emplace_back(std::move(key), std::move(value));
  });
  EXPECT_EQ(stats.recovered_records, 2u);
  EXPECT_EQ(stats.dropped_bytes, 0u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "alpha");
  EXPECT_EQ(seen[1].second, std::string("two\0three", 9));
  std::remove(path.c_str());
}

TEST(RecordLog, TornTailIsTruncatedNotFatal) {
  const std::string path = "/tmp/heterolab_record_log_torn.log";
  std::remove(path.c_str());
  {
    support::RecordLog log(path);
    log.append("intact", "value");
    log.flush();
  }
  // A crash mid-append: half a record's worth of garbage at the tail.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("\x31\x53\x4d\x48garbage", 11);
  }
  support::RecordLog log(path);
  int records = 0;
  const auto stats = log.recover([&](std::string, std::string) {
    ++records;
  });
  EXPECT_EQ(records, 1);
  EXPECT_EQ(stats.recovered_records, 1u);
  EXPECT_GT(stats.dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(RecordLog, NullLogIsInertAndChecksumIsStable) {
  support::RecordLog log("");
  EXPECT_FALSE(log.is_open());
  log.append("k", "v");  // no-op, no crash
  log.flush();
  int calls = 0;
  log.recover([&](std::string, std::string) { ++calls; });
  EXPECT_EQ(calls, 0);
  // The checksum is part of the on-disk format: pin it against drift.
  EXPECT_EQ(support::record_checksum("k", "v"), support::record_checksum("k", "v"));
  EXPECT_NE(support::record_checksum("k", "v"), support::record_checksum("k", "w"));
  EXPECT_NE(support::record_checksum("kv", ""), support::record_checksum("k", "v"));
}

}  // namespace
}  // namespace hetero
