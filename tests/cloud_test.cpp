// Tests for the EC2 simulator: catalog, spot market, service semantics,
// placement groups, and billing.

#include <gtest/gtest.h>

#include "cloud/ec2_service.hpp"
#include "cloud/instance_types.hpp"
#include "cloud/spot_market.hpp"
#include "cloud/staging.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace hetero::cloud {
namespace {

TEST(InstanceCatalog, ContainsThePaperTypes) {
  const auto& cc2 = instance_type("cc2.8xlarge");
  EXPECT_EQ(cc2.cores, 16);
  EXPECT_NEAR(cc2.ram_gb, 60.5, 1e-12);
  EXPECT_DOUBLE_EQ(cc2.on_demand_hourly_usd, 2.40);
  EXPECT_DOUBLE_EQ(cc2.typical_spot_hourly_usd, 0.54);
  EXPECT_TRUE(cc2.cluster_compute);
  EXPECT_EQ(cc2.network, "10GbE");

  const auto& micro = instance_type("t1.micro");
  EXPECT_EQ(micro.cores, 1);
  EXPECT_FALSE(micro.cluster_compute);

  const auto& cg1 = instance_type("cg1.4xlarge");
  EXPECT_EQ(cg1.gpus, 2);

  EXPECT_THROW(instance_type("p5.48xlarge"), Error);
  EXPECT_GE(instance_catalog().size(), 7u);
}

TEST(SpotMarket, PricesAreDeterministicPerSeed) {
  SpotMarket a(7);
  SpotMarket b(7);
  SpotMarket c(8);
  const auto& cc2 = instance_type("cc2.8xlarge");
  int diverged = 0;
  for (std::int64_t h = 0; h < 20; ++h) {
    EXPECT_DOUBLE_EQ(a.price(cc2, h), b.price(cc2, h));
    diverged += a.price(cc2, h) != c.price(cc2, h);
  }
  EXPECT_GT(diverged, 15);
}

TEST(SpotMarket, PricesHoverAroundTypicalWithSpikes) {
  SpotMarket market(42);
  const auto& cc2 = instance_type("cc2.8xlarge");
  int below_on_demand = 0;
  int above_on_demand = 0;
  std::vector<double> prices;
  const int hours = 500;
  for (std::int64_t h = 0; h < hours; ++h) {
    const double p = market.price(cc2, h);
    EXPECT_GT(p, 0.0);
    below_on_demand += p < cc2.on_demand_hourly_usd;
    above_on_demand += p >= cc2.on_demand_hourly_usd;
    prices.push_back(p);
  }
  // Mostly cheap, sometimes spiking above on-demand (both happen).
  EXPECT_GT(below_on_demand, hours * 3 / 4);
  EXPECT_GT(above_on_demand, 0);
  // The median tracks the long-run typical price (robust to spikes).
  EXPECT_NEAR(percentile(prices, 0.5), cc2.typical_spot_hourly_usd, 0.30);
}

TEST(SpotMarket, ClusterComputeCapacityIsScarce) {
  SpotMarket market(42);
  const auto& cc2 = instance_type("cc2.8xlarge");
  for (std::int64_t h = 0; h < 100; ++h) {
    const int cap = market.capacity(cc2, h);
    EXPECT_GE(cap, 15);
    EXPECT_LE(cap, 45);
    // The paper never assembled 63 spot hosts; the model guarantees it.
    EXPECT_LT(cap, 63);
  }
}

TEST(SpotMarket, FulfillRespectsBidAndCapacity) {
  SpotMarket market(42);
  const auto& cc2 = instance_type("cc2.8xlarge");
  EXPECT_EQ(market.fulfill(cc2, /*bid=*/0.01, 10, 0), 0);  // bid too low
  const int granted = market.fulfill(cc2, /*bid=*/50.0, 63, 0);
  EXPECT_GT(granted, 0);
  EXPECT_LE(granted, 45);
  EXPECT_LE(market.fulfill(cc2, 50.0, 5, 0), 5);
  EXPECT_THROW(market.fulfill(cc2, 1.0, -1, 0), Error);
}

TEST(Ec2Service, OnDemandAlwaysDeliversTheCount) {
  Ec2Service service(1);
  const int group = service.create_placement_group("hpc");
  const auto launch = service.request_on_demand("cc2.8xlarge", 63, group);
  EXPECT_EQ(launch.instances.size(), 63u);
  EXPECT_GT(launch.ready_after_s, 0.0);
  for (const auto& inst : launch.instances) {
    EXPECT_DOUBLE_EQ(inst.hourly_usd, 2.40);
    EXPECT_FALSE(inst.spot);
    EXPECT_EQ(inst.placement_group, group);
    EXPECT_FALSE(inst.private_ip.empty());
  }
  EXPECT_EQ(service.fleet().size(), 63u);
}

TEST(Ec2Service, SpotRequestsAreOnlyPartiallyFulfilled) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    Ec2Service service(seed);
    std::vector<int> groups;
    for (int g = 0; g < 4; ++g) {
      std::string name = "group-";
      name += std::to_string(g);
      groups.push_back(service.create_placement_group(name));
    }
    const auto launch = service.request_spot("cc2.8xlarge", 63, 1.2, groups);
    EXPECT_LT(launch.instances.size(), 63u) << "seed " << seed;
    for (const auto& inst : launch.instances) {
      EXPECT_TRUE(inst.spot);
      EXPECT_LT(inst.hourly_usd, 2.40);
    }
  }
}

TEST(Ec2Service, SpotSpreadAcrossGroupsRoundRobin) {
  Ec2Service service(3);
  std::vector<int> groups{service.create_placement_group("a"),
                          service.create_placement_group("b")};
  const auto launch = service.request_spot("cc2.8xlarge", 40, 2.0, groups);
  if (launch.instances.size() >= 2) {
    EXPECT_EQ(launch.instances[0].placement_group, groups[0]);
    EXPECT_EQ(launch.instances[1].placement_group, groups[1]);
  }
}

TEST(Ec2Service, PlacementGroupValidation) {
  Ec2Service service(1);
  EXPECT_THROW(service.request_on_demand("cc2.8xlarge", 1, 7), Error);
  // Placement groups are a Cluster Compute feature.
  const int g = service.create_placement_group("x");
  EXPECT_THROW(service.request_on_demand("m1.small", 1, g), Error);
  EXPECT_NO_THROW(service.request_on_demand("m1.small", 1));
}

TEST(Ec2Service, WholeHourBilling) {
  Ec2Service service(1);
  auto launch = service.request_on_demand("cc2.8xlarge", 2);
  service.advance(1800.0);  // 30 minutes
  EXPECT_NEAR(service.accrued_usd(), 2 * 2.40 * 0.5, 1e-9);
  // Amazon bills the full hour.
  EXPECT_NEAR(service.billed_usd(), 2 * 2.40, 1e-9);
  service.terminate(launch.instances);
  service.advance(7200.0);  // billing stopped at termination
  EXPECT_NEAR(service.billed_usd(), 2 * 2.40, 1e-9);
  EXPECT_TRUE(service.fleet().empty());
  EXPECT_THROW(service.terminate(launch.instances), Error);
}

TEST(Ec2Service, SecurityGroupGotchaBlocksMpi) {
  Ec2Service service(1);
  const auto launch = service.request_on_demand("cc2.8xlarge", 4);
  // The paper had to open intranet TCP ports before mpiexec worked.
  EXPECT_THROW(service.assembly_topology(launch.instances, 64, 0.02), Error);
  service.authorize_intranet_tcp();
  const auto topo = service.assembly_topology(launch.instances, 64, 0.02);
  EXPECT_EQ(topo.ranks(), 64);
  EXPECT_EQ(topo.ranks_per_node(), 16);
  EXPECT_EQ(topo.nodes(), 4);
}

TEST(Ec2Service, SpotInstancesAreReclaimedWhenOutbid) {
  // Bid barely above the current price; over enough market hours a spike
  // must reclaim the instances (the paper's "unpredictable nature of spot
  // requests").
  Ec2Service service(5);
  const int g = service.create_placement_group("x");
  const double now_price =
      service.market().price(instance_type("cc2.8xlarge"), 0);
  auto launch =
      service.request_spot("cc2.8xlarge", 5, now_price * 1.05, {g});
  ASSERT_GT(launch.instances.size(), 0u);
  std::size_t alive = launch.instances.size();
  int reclaim_events = 0;
  for (int hour = 0; hour < 200 && alive > 0; ++hour) {
    const auto reclaimed = service.advance(3600.0);
    if (!reclaimed.empty()) {
      ++reclaim_events;
      for (const auto& inst : reclaimed) {
        EXPECT_TRUE(inst.spot);
      }
      alive -= reclaimed.size();
      EXPECT_EQ(service.fleet().size(), alive);
    }
  }
  EXPECT_GT(reclaim_events, 0);
  EXPECT_EQ(alive, 0u);
}

TEST(Ec2Service, OnDemandInstancesAreNeverReclaimed) {
  Ec2Service service(5);
  service.request_on_demand("cc2.8xlarge", 3);
  for (int hour = 0; hour < 50; ++hour) {
    EXPECT_TRUE(service.advance(3600.0).empty());
  }
  EXPECT_EQ(service.fleet().size(), 3u);
}

TEST(Ec2Service, ReclaimStopsBilling) {
  Ec2Service service(5);
  const int g = service.create_placement_group("x");
  const double p0 = service.market().price(instance_type("cc2.8xlarge"), 0);
  auto launch = service.request_spot("cc2.8xlarge", 2, p0 * 1.01, {g});
  ASSERT_GT(launch.instances.size(), 0u);
  // Run until everything is reclaimed, then a long time more.
  for (int hour = 0; hour < 200 && !service.fleet().empty(); ++hour) {
    service.advance(3600.0);
  }
  ASSERT_TRUE(service.fleet().empty());
  const double billed_at_reclaim = service.billed_usd();
  service.advance(100.0 * 3600.0);
  EXPECT_DOUBLE_EQ(service.billed_usd(), billed_at_reclaim);
}

TEST(Ec2Service, ReclaimStormTakesEverySpotInstanceButNoOnDemand) {
  // Bid absurdly high: the market alone would never reclaim. A storm hour
  // takes every spot instance anyway — and never touches on-demand.
  resil::FaultSpec spec;
  spec.reclaim_storm_rate = 1.0;  // every hour is a storm
  Ec2Service service(5);
  service.set_fault_plan(resil::FaultPlan(spec, 99));
  const int g = service.create_placement_group("x");
  auto spot = service.request_spot("cc2.8xlarge", 4, 1000.0, {g});
  ASSERT_GT(spot.instances.size(), 0u);
  service.request_on_demand("cc2.8xlarge", 2);

  const auto reclaimed = service.advance(3600.0);
  EXPECT_EQ(reclaimed.size(), spot.instances.size());
  for (const auto& inst : reclaimed) {
    EXPECT_TRUE(inst.spot);
  }
  EXPECT_EQ(service.fleet().size(), 2u);  // the on-demand pair survives

  // Reclaimed instances stop accruing: only the 2 on-demand hourly rates
  // keep running after the storm.
  const double accrued_at_storm = service.accrued_usd();
  const double billed_at_storm = service.billed_usd();
  service.advance(3600.0 - 1.0);  // stay inside the next billing hour
  const double on_demand_rate =
      2.0 * instance_type("cc2.8xlarge").on_demand_hourly_usd;
  EXPECT_NEAR(service.accrued_usd() - accrued_at_storm,
              on_demand_rate * (3599.0 / 3600.0), 1e-9);
  EXPECT_DOUBLE_EQ(service.billed_usd() - billed_at_storm, on_demand_rate);
}

TEST(Ec2Service, StormScheduleIsDeterministicPerSeed) {
  resil::FaultSpec spec;
  spec.reclaim_storm_rate = 0.3;
  const resil::FaultPlan plan(spec, 7);
  auto storm_hours = [&](const resil::FaultPlan& p) {
    std::vector<int> hours;
    for (int h = 0; h < 100; ++h) {
      if (p.reclaim_storm(h)) {
        hours.push_back(h);
      }
    }
    return hours;
  };
  const auto first = storm_hours(plan);
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 100u);
  // Same (spec, seed) -> the same storm hours, on a fresh plan too.
  EXPECT_EQ(first, storm_hours(resil::FaultPlan(spec, 7)));
  EXPECT_NE(first, storm_hours(resil::FaultPlan(spec, 8)));

  // Two services driven through identical advances reclaim identically.
  auto run_service = [&](Ec2Service& service) {
    service.set_fault_plan(resil::FaultPlan(spec, 7));
    const int g = service.create_placement_group("x");
    service.request_spot("cc2.8xlarge", 4, 1000.0, {g});
    std::vector<std::size_t> reclaim_sizes;
    for (int h = 0; h < 20; ++h) {
      reclaim_sizes.push_back(service.advance(3600.0).size());
    }
    return reclaim_sizes;
  };
  Ec2Service a(5);
  Ec2Service b(5);
  EXPECT_EQ(run_service(a), run_service(b));
  EXPECT_DOUBLE_EQ(a.billed_usd(), b.billed_usd());
  EXPECT_DOUBLE_EQ(a.accrued_usd(), b.accrued_usd());
}

TEST(Ec2Service, AssemblyTopologyTracksPlacementGroups) {
  Ec2Service service(1);
  service.authorize_intranet_tcp();
  const int ga = service.create_placement_group("a");
  const int gb = service.create_placement_group("b");
  auto first = service.request_on_demand("cc2.8xlarge", 1, ga);
  auto second = service.request_on_demand("cc2.8xlarge", 1, gb);
  std::vector<Instance> assembly = first.instances;
  assembly.push_back(second.instances.front());
  const auto topo = service.assembly_topology(assembly, 32, 0.5);
  EXPECT_FALSE(topo.same_group(0, 16));  // ranks on different groups
  EXPECT_TRUE(topo.same_group(0, 15));
  // Not enough cores: 3 nodes of 16 cores cannot host 64 ranks.
  EXPECT_THROW(service.assembly_topology(assembly, 64, 0.0), Error);
}

TEST(Staging, BootImageIsFreePerLaunchButCostlyToPrepare) {
  const std::uint64_t gb20 = 20ull << 30;
  EXPECT_DOUBLE_EQ(staging_time_s(StagingMethod::kBootImage, gb20, 63), 0.0);
  EXPECT_GT(staging_setup_s(StagingMethod::kBootImage, gb20), 300.0);
}

TEST(Staging, NfsSerializesOnTheServer) {
  const std::uint64_t gb1 = 1ull << 30;
  const double one = staging_time_s(StagingMethod::kNfs, gb1, 1);
  const double two = staging_time_s(StagingMethod::kNfs, gb1, 2);
  const double many = staging_time_s(StagingMethod::kNfs, gb1, 63);
  // Linear in the client count above a fixed service-setup constant.
  EXPECT_NEAR(many - one, 62.0 * (two - one), 1e-6);
  EXPECT_GT(many, 2.0 * one);
  // EBS hydrates per instance in parallel: width-independent.
  EXPECT_DOUBLE_EQ(staging_time_s(StagingMethod::kEbsVolumes, gb1, 1),
                   staging_time_s(StagingMethod::kEbsVolumes, gb1, 63));
}

TEST(Staging, RecommendationMatchesThePapersChoice) {
  // Large meshes, wide assembly, image reused across many launches: the
  // resized boot image wins — exactly what §VI-D decided.
  const std::uint64_t mesh_bytes = 8ull << 30;
  EXPECT_EQ(recommend_staging(mesh_bytes, 63, 20),
            StagingMethod::kBootImage);
  // A single launch of a single instance with a small input: not worth
  // baking an image.
  EXPECT_NE(recommend_staging(100 << 20, 1, 1), StagingMethod::kBootImage);
}

TEST(Staging, Validation) {
  EXPECT_THROW(staging_time_s(StagingMethod::kNfs, 1, 0), Error);
  EXPECT_THROW(recommend_staging(1, 1, 0), Error);
  EXPECT_EQ(to_string(StagingMethod::kEbsVolumes), "EBS volumes");
}

}  // namespace
}  // namespace hetero::cloud
