// Tests for structured box meshes, block decomposition, edges, and VTK
// export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include <cmath>

#include "mesh/box_mesh.hpp"
#include "mesh/edges.hpp"
#include "mesh/refine.hpp"
#include "mesh/tet_mesh.hpp"
#include "mesh/vtk_writer.hpp"
#include "support/error.hpp"

namespace hetero::mesh {
namespace {

TEST(BoxMesh, CountsMatchFormulae) {
  for (int n : {1, 2, 3, 5}) {
    BoxMeshSpec spec{n, n, n};
    const TetMesh mesh = build_box_mesh(spec);
    EXPECT_EQ(mesh.vertex_count(),
              static_cast<std::size_t>((n + 1) * (n + 1) * (n + 1)));
    EXPECT_EQ(mesh.tet_count(), static_cast<std::size_t>(6 * n * n * n));
    mesh.validate();
  }
}

TEST(BoxMesh, TotalVolumeEqualsBoxVolume) {
  BoxMeshSpec spec{3, 4, 5, {0.0, 0.0, 0.0}, {2.0, 1.0, 3.0}};
  const TetMesh mesh = build_box_mesh(spec);
  const auto m = mesh.metrics();
  EXPECT_NEAR(m.total_volume, 2.0 * 1.0 * 3.0, 1e-12);
  EXPECT_GT(m.min_tet_volume, 0.0);
}

TEST(BoxMesh, BoundaryFaceCountIs12NSquaredPerCube) {
  for (int n : {1, 2, 4}) {
    BoxMeshSpec spec{n, n, n};
    const TetMesh mesh = build_box_mesh(spec);
    // 6 cube faces x n^2 quads x 2 triangles.
    EXPECT_EQ(mesh.boundary_faces().size(),
              static_cast<std::size_t>(12 * n * n));
  }
}

TEST(BoxMesh, BoundaryMarkersCoverAllSixSides) {
  const TetMesh mesh = build_box_mesh({2, 2, 2});
  std::set<int> markers;
  for (const auto& f : mesh.boundary_faces()) {
    markers.insert(f.marker);
  }
  EXPECT_EQ(markers, (std::set<int>{1, 2, 3, 4, 5, 6}));
}

TEST(BoxMesh, SubmeshAgreesWithFullMeshGeometry) {
  BoxMeshSpec spec{4, 4, 4};
  const TetMesh sub = build_box_submesh(spec, CellBox{1, 3, 0, 2, 2, 4});
  sub.validate();
  EXPECT_EQ(sub.tet_count(), static_cast<std::size_t>(6 * 2 * 2 * 2));
  // Each submesh vertex gid must decode back to its coordinate.
  for (std::size_t v = 0; v < sub.vertex_count(); ++v) {
    const GlobalId gid = sub.vertex_gid(static_cast<int>(v));
    const int i = static_cast<int>(gid % (spec.nx + 1));
    const int j = static_cast<int>((gid / (spec.nx + 1)) % (spec.ny + 1));
    const int k = static_cast<int>(gid / ((spec.nx + 1) * (spec.ny + 1)));
    const Vec3 expect = spec.vertex_coord(i, j, k);
    const Vec3& got = sub.vertex(static_cast<int>(v));
    EXPECT_NEAR(got.x, expect.x, 1e-14);
    EXPECT_NEAR(got.y, expect.y, 1e-14);
    EXPECT_NEAR(got.z, expect.z, 1e-14);
  }
}

TEST(BoxMesh, SubmeshesTileTheDomain) {
  BoxMeshSpec spec{4, 4, 4};
  BlockDecomposition dec(spec, 8);
  double volume = 0.0;
  for (int r = 0; r < 8; ++r) {
    const TetMesh sub = build_box_submesh(spec, dec.box(r));
    volume += sub.metrics().total_volume;
  }
  EXPECT_NEAR(volume, 1.0, 1e-12);
}

TEST(BoxMesh, SubmeshBoundaryOnlyOnDomainBoundary) {
  BoxMeshSpec spec{4, 4, 4};
  // Interior block: no boundary faces at all.
  const TetMesh inner = build_box_submesh(spec, CellBox{1, 3, 1, 3, 1, 3});
  EXPECT_TRUE(inner.boundary_faces().empty());
  // Corner block: exactly three exposed sides.
  const TetMesh corner = build_box_submesh(spec, CellBox{0, 2, 0, 2, 0, 2});
  std::set<int> markers;
  for (const auto& f : corner.boundary_faces()) {
    markers.insert(f.marker);
  }
  EXPECT_EQ(markers, (std::set<int>{1, 3, 5}));
}

TEST(BlockDecomposition, ExactCubesUseCubicGrids) {
  BoxMeshSpec spec{20, 20, 20};
  for (int p : {1, 8, 27}) {
    BlockDecomposition dec(spec, p);
    const auto g = dec.grid();
    const int k = g[0];
    EXPECT_EQ(g[1], k);
    EXPECT_EQ(g[2], k);
    EXPECT_EQ(k * k * k, p);
  }
}

TEST(BlockDecomposition, BoxesPartitionCellsExactly) {
  BoxMeshSpec spec{10, 7, 5};
  for (int p : {2, 4, 6, 10}) {
    BlockDecomposition dec(spec, p);
    std::int64_t cells = 0;
    for (int r = 0; r < p; ++r) {
      cells += dec.box(r).cells();
    }
    EXPECT_EQ(cells, spec.cell_count());
    // Every cell maps to the rank whose box contains it.
    for (int k = 0; k < spec.nz; ++k) {
      for (int j = 0; j < spec.ny; ++j) {
        for (int i = 0; i < spec.nx; ++i) {
          const int r = dec.rank_of_cell(i, j, k);
          EXPECT_TRUE(dec.box(r).contains(i, j, k));
        }
      }
    }
  }
}

TEST(BlockDecomposition, VertexOwnerTouchesTheVertex) {
  BoxMeshSpec spec{6, 6, 6};
  BlockDecomposition dec(spec, 8);
  for (int k = 0; k <= spec.nz; ++k) {
    for (int j = 0; j <= spec.ny; ++j) {
      for (int i = 0; i <= spec.nx; ++i) {
        const int owner = dec.rank_of_vertex(i, j, k);
        // Owner's box must contain a cell incident to (i, j, k).
        const CellBox box = dec.box(owner);
        bool incident = false;
        for (int dk = -1; dk <= 0 && !incident; ++dk) {
          for (int dj = -1; dj <= 0 && !incident; ++dj) {
            for (int di = -1; di <= 0 && !incident; ++di) {
              const int ci = i + di;
              const int cj = j + dj;
              const int ck = k + dk;
              if (ci >= 0 && ci < spec.nx && cj >= 0 && cj < spec.ny &&
                  ck >= 0 && ck < spec.nz && box.contains(ci, cj, ck)) {
                incident = true;
              }
            }
          }
        }
        EXPECT_TRUE(incident) << "vertex " << i << "," << j << "," << k;
      }
    }
  }
}

TEST(BlockDecomposition, FaceNeighbourCounts) {
  BoxMeshSpec spec{6, 6, 6};
  BlockDecomposition dec(spec, 27);
  int total = 0;
  for (int r = 0; r < 27; ++r) {
    total += dec.face_neighbours(r);
  }
  // 3 axes x 2 faces x interior-face count: each of the 27 blocks has
  // between 3 (corner) and 6 (centre) face neighbours.
  EXPECT_EQ(total, 2 * 3 * 3 * 3 * 2);  // 2 * number of interior block faces
  EXPECT_EQ(dec.face_neighbours(13), 6);  // centre block of the 3x3x3 grid
  EXPECT_EQ(dec.face_neighbours(0), 3);   // corner
}

TEST(BlockDecomposition, RejectsOverDecomposition) {
  BoxMeshSpec spec{2, 2, 2};
  EXPECT_THROW(BlockDecomposition(spec, 1000), Error);
}

TEST(Edges, SingleCubeHas19UniqueEdges) {
  // 12 cube edges + 6 face diagonals + 1 body diagonal.
  const TetMesh mesh = build_box_mesh({1, 1, 1});
  const EdgeSet set = build_edges(mesh);
  EXPECT_EQ(set.edges.size(), 19u);
  EXPECT_EQ(set.tet_edges.size(), mesh.tet_count());
}

TEST(Edges, TetEdgeIndicesAreConsistent) {
  const TetMesh mesh = build_box_mesh({2, 2, 2});
  const EdgeSet set = build_edges(mesh);
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    for (std::size_t e = 0; e < 6; ++e) {
      const auto& edge = set.edges[static_cast<std::size_t>(set.tet_edges[t][e])];
      const int a = mesh.tet(t)[static_cast<std::size_t>(kTetEdgeVertices[e][0])];
      const int b = mesh.tet(t)[static_cast<std::size_t>(kTetEdgeVertices[e][1])];
      EXPECT_EQ(std::min(a, b), edge[0]);
      EXPECT_EQ(std::max(a, b), edge[1]);
    }
  }
}

TEST(Edges, EdgeGidIsSymmetricAndUnique) {
  const std::int64_t nv = 1000;
  EXPECT_EQ(edge_gid(3, 7, nv), edge_gid(7, 3, nv));
  EXPECT_NE(edge_gid(3, 7, nv), edge_gid(3, 8, nv));
  EXPECT_NE(edge_gid(3, 7, nv), edge_gid(4, 7, nv));
  // Edge gids never collide with vertex gids.
  EXPECT_GE(edge_gid(0, 1, nv), nv);
  EXPECT_THROW(edge_gid(5, 5, nv), Error);
  EXPECT_THROW(edge_gid(-1, 5, nv), Error);
}

TEST(Refine, ProducesEightTimesTheTets) {
  const TetMesh coarse = build_box_mesh({2, 2, 2});
  const TetMesh fine = refine_uniform(coarse);
  fine.validate();
  EXPECT_EQ(fine.tet_count(), 8 * coarse.tet_count());
  // New vertex count: originals + one per unique edge.
  const auto edges = build_edges(coarse);
  EXPECT_EQ(fine.vertex_count(), coarse.vertex_count() + edges.edges.size());
}

TEST(Refine, ConservesVolume) {
  BoxMeshSpec spec{2, 3, 2, {0.0, 0.0, 0.0}, {2.0, 1.5, 1.0}};
  TetMesh mesh = build_box_mesh(spec);
  const double volume = mesh.metrics().total_volume;
  for (int level = 0; level < 2; ++level) {
    mesh = refine_uniform(mesh);
    EXPECT_NEAR(mesh.metrics().total_volume, volume, 1e-12);
  }
}

TEST(Refine, BoundaryFacesSplitInFourWithMarkers) {
  const TetMesh coarse = build_box_mesh({2, 2, 2});
  const TetMesh fine = refine_uniform(coarse);
  EXPECT_EQ(fine.boundary_faces().size(), 4 * coarse.boundary_faces().size());
  std::set<int> markers;
  for (const auto& f : fine.boundary_faces()) {
    markers.insert(f.marker);
  }
  EXPECT_EQ(markers, (std::set<int>{1, 2, 3, 4, 5, 6}));
  // Refined boundary faces still tile the same area: the unit cube's 6.
  double area = 0.0;
  for (const auto& f : fine.boundary_faces()) {
    const Vec3& a = fine.vertex(f.vertices[0]);
    const Vec3& b = fine.vertex(f.vertices[1]);
    const Vec3& c = fine.vertex(f.vertices[2]);
    area += 0.5 * (b - a).cross(c - a).norm();
  }
  EXPECT_NEAR(area, 6.0, 1e-12);
}

TEST(Refine, MeshQualityStaysBounded) {
  // Bey refinement cycles through finitely many similarity classes, so the
  // edge ratio must not blow up under repeated refinement.
  TetMesh mesh = build_box_mesh({1, 1, 1});
  const double initial = worst_edge_ratio(mesh);
  EXPECT_NEAR(initial, std::sqrt(3.0), 1e-12);  // Kuhn tets
  double last = initial;
  for (int level = 0; level < 3; ++level) {
    mesh = refine_uniform(mesh);
    last = worst_edge_ratio(mesh);
  }
  EXPECT_LT(last, 3.0);
}

TEST(Refine, EdgeRatioOfRegularTet) {
  TetMesh reference({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                    {{0, 1, 2, 3}});
  EXPECT_NEAR(tet_edge_ratio(reference, 0), std::sqrt(2.0), 1e-12);
}

TEST(TetMesh, ValidateCatchesBadMeshes) {
  // Out-of-range vertex index.
  TetMesh bad({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
              {{0, 1, 2, 7}});
  EXPECT_THROW(bad.validate(), Error);
  // Inverted tet (negative volume).
  TetMesh inverted({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                   {{0, 2, 1, 3}});
  EXPECT_THROW(inverted.validate(), Error);
}

TEST(VtkWriter, WritesAllSectionsAndFields) {
  const TetMesh mesh = build_box_mesh({2, 2, 2});
  VtkWriter writer(mesh);
  writer.add_scalar_field("u", std::vector<double>(mesh.vertex_count(), 1.5));
  writer.add_vector_field(
      "vel", std::vector<double>(3 * mesh.vertex_count(), 0.25));
  const std::string path = "/tmp/heterolab_vtk_test.vtk";
  writer.write(path);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(content.find("CELLS 48"), std::string::npos);
  EXPECT_NE(content.find("SCALARS u double 1"), std::string::npos);
  EXPECT_NE(content.find("VECTORS vel double"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VtkSeriesWriter, WritesStepsAndCollection) {
  const TetMesh mesh = build_box_mesh({1, 1, 1});
  VtkSeriesWriter series("/tmp/heterolab_series");
  for (int s = 0; s < 3; ++s) {
    VtkWriter frame(mesh);
    frame.add_scalar_field(
        "u", std::vector<double>(mesh.vertex_count(), 1.0 * s));
    series.add_step(0.1 * s, frame);
  }
  series.finalize();
  EXPECT_EQ(series.steps(), 3);
  std::ifstream pvd("/tmp/heterolab_series.pvd");
  std::string content((std::istreambuf_iterator<char>(pvd)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("timestep=\"0.2\""), std::string::npos);
  EXPECT_NE(content.find("heterolab_series_0002.vtk"), std::string::npos);
  // The step files exist and are valid VTK.
  std::ifstream step("/tmp/heterolab_series_0001.vtk");
  std::string line;
  std::getline(step, line);
  EXPECT_NE(line.find("vtk DataFile"), std::string::npos);
  for (int s = 0; s < 3; ++s) {
    char path[64];
    std::snprintf(path, sizeof(path), "/tmp/heterolab_series_%04d.vtk", s);
    std::remove(path);
  }
  std::remove("/tmp/heterolab_series.pvd");
}

TEST(VtkWriter, RejectsWrongFieldSizes) {
  const TetMesh mesh = build_box_mesh({1, 1, 1});
  VtkWriter writer(mesh);
  EXPECT_THROW(writer.add_scalar_field("u", {1.0}), Error);
  EXPECT_THROW(writer.add_vector_field("v", {1.0, 2.0}), Error);
}

}  // namespace
}  // namespace hetero::mesh
