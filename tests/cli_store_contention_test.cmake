# Two heterolab processes sharing one --store file, appending concurrently:
# the advisory flock in the RecordLog must keep every record whole, so a
# third (cold) process over the same store answers byte-identically to a
# reference run — and entirely from the store (no experiments recomputed).
# Run via: cmake -DHETEROLAB=... -DWORK_DIR=... -P cli_store_contention_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(store "${WORK_DIR}/shared-store.log")

# Reference outputs, computed without any store.
foreach(fig fig4 fig6)
  execute_process(
    COMMAND "${HETEROLAB}" ${fig}
    OUTPUT_FILE "${WORK_DIR}/ref-${fig}.txt"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "reference ${fig} failed with exit code ${rc}")
  endif()
endforeach()

# Two writers racing on one store: fig4 and fig6 share the rd weak-scaling
# sweep, so both processes append overlapping keys while each also runs a
# worker-process pool of its own. The shell fan-out is the point — CMake's
# execute_process cannot launch two commands concurrently.
execute_process(
  COMMAND sh -c "\
'${HETEROLAB}' fig4 --store '${store}' --workers 2 \
    > '${WORK_DIR}/race-fig4.txt' 2> '${WORK_DIR}/race-fig4.err' & p1=$!; \
'${HETEROLAB}' fig6 --store '${store}' --workers 2 \
    > '${WORK_DIR}/race-fig6.txt' 2> '${WORK_DIR}/race-fig6.err' & p2=$!; \
wait $p1 && wait $p2"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "concurrent --store writers failed with exit ${rc}")
endif()

foreach(fig fig4 fig6)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/ref-${fig}.txt" "${WORK_DIR}/race-${fig}.txt"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${fig} under store contention differs from the "
                        "store-less reference")
  endif()
endforeach()

# A cold third process over the contended store must replay rather than
# recompute: its proc summary reports 0 dispatched jobs, and its stdout is
# byte-identical to the reference.
execute_process(
  COMMAND "${HETEROLAB}" fig4 --store "${store}" --workers 2
  OUTPUT_FILE "${WORK_DIR}/replay-fig4.txt"
  ERROR_FILE "${WORK_DIR}/replay-fig4.err"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay fig4 failed with exit code ${rc}")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/ref-fig4.txt" "${WORK_DIR}/replay-fig4.txt"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "replay over the contended store differs from the "
                      "reference")
endif()
file(READ "${WORK_DIR}/replay-fig4.err" replay_err)
if(NOT replay_err MATCHES "0 dispatched")
  message(FATAL_ERROR "replay run recomputed experiments instead of "
                      "answering from the store: ${replay_err}")
endif()
