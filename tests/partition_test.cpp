// Tests for the dual graph and the ParMETIS-substitute partitioners.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <span>

#include "mesh/box_mesh.hpp"
#include "partition/graph.hpp"
#include "partition/partitioner.hpp"
#include "support/error.hpp"

namespace hetero::partition {
namespace {

TEST(DualGraph, IsSymmetricAndBounded) {
  const auto mesh = mesh::build_box_mesh({3, 3, 3});
  const Graph g = build_dual_graph(mesh);
  g.validate();
  EXPECT_EQ(g.vertex_count(), mesh.tet_count());
  for (int v = 0; v < static_cast<int>(g.vertex_count()); ++v) {
    EXPECT_LE(g.neighbours(v).size(), 4u);  // a tet has four faces
    EXPECT_GE(g.neighbours(v).size(), 1u);  // Kuhn tets always touch others
  }
}

TEST(DualGraph, SingleCubeEdgeCount) {
  // The 6 Kuhn tets of one cube form a "fan" around the main diagonal:
  // each tet shares interior faces with exactly two neighbours (a 6-cycle),
  // so the dual graph has 6 edges.
  const auto mesh = mesh::build_box_mesh({1, 1, 1});
  const Graph g = build_dual_graph(mesh);
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
}

TEST(DualGraph, GrowsAcrossCellBoundaries) {
  const auto one = mesh::build_box_mesh({1, 1, 1});
  const auto two = mesh::build_box_mesh({2, 1, 1});
  const Graph g1 = build_dual_graph(one);
  const Graph g2 = build_dual_graph(two);
  // Two cubes share a face: strictly more than twice the single-cube edges.
  EXPECT_GT(g2.edge_count(), 2 * g1.edge_count());
}

class PartitionerBalance : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerBalance, RcbBalancesAnyPartCount) {
  const int parts = GetParam();
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  const auto part = partition_rcb(mesh, parts);
  const Graph g = build_dual_graph(mesh);
  const auto m = evaluate_partition(g, part, parts);
  EXPECT_EQ(m.parts, parts);
  EXPECT_GT(m.min_part_size, 0u);
  EXPECT_LE(m.imbalance, 1.10);
}

TEST_P(PartitionerBalance, GreedyBalancesAnyPartCount) {
  const int parts = GetParam();
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  const Graph g = build_dual_graph(mesh);
  const auto part = partition_greedy(g, parts);
  const auto m = evaluate_partition(g, part, parts);
  EXPECT_GT(m.min_part_size, 0u);
  EXPECT_LE(m.imbalance, 1.35);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionerBalance,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 16));

TEST(Partitioner, RcbCutBeatsRandomByFar) {
  const auto mesh = mesh::build_box_mesh({6, 6, 6});
  const Graph g = build_dual_graph(mesh);
  const auto part = partition_rcb(mesh, 8);
  const auto m = evaluate_partition(g, part, 8);
  // Random 8-way split of n vertices cuts ~7/8 of edges; a geometric split
  // of a cube must cut far less.
  EXPECT_LT(static_cast<double>(m.edge_cut),
            0.25 * static_cast<double>(g.edge_count()));
}

TEST(Partitioner, RcbIsDeterministic) {
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  EXPECT_EQ(partition_rcb(mesh, 6), partition_rcb(mesh, 6));
}

TEST(Partitioner, GreedyRefinementKeepsAssignmentsValid) {
  const auto mesh = mesh::build_box_mesh({5, 5, 5});
  const Graph g = build_dual_graph(mesh);
  for (int parts : {2, 9}) {
    const auto part = partition_greedy(g, parts);
    std::set<int> used(part.begin(), part.end());
    EXPECT_EQ(static_cast<int>(used.size()), parts);
    for (int p : part) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, parts);
    }
  }
}

TEST(Partitioner, SinglePartIsTrivial) {
  const auto mesh = mesh::build_box_mesh({2, 2, 2});
  const auto part = partition_rcb(mesh, 1);
  for (int p : part) {
    EXPECT_EQ(p, 0);
  }
}

TEST(Partitioner, RejectsNonPositivePartCounts) {
  const auto mesh = mesh::build_box_mesh({1, 1, 1});
  EXPECT_THROW(partition_rcb(mesh, 0), Error);
  EXPECT_THROW(partition_rcb(mesh, -3), Error);
  const Graph g = build_dual_graph(mesh);
  EXPECT_THROW(partition_greedy(g, 0), Error);
}

TEST(Partitioner, MorePartsThanElementsLeavesSurplusPartsEmpty) {
  // This used to throw (RCB) and write one past the end of the partition
  // vector (greedy). Now: a valid partition where every element still lands
  // in range and the surplus parts simply stay empty.
  const auto mesh = mesh::build_box_mesh({1, 1, 1});  // 6 tets
  const Graph g = build_dual_graph(mesh);
  for (int parts : {7, 11, 64}) {
    for (const auto& part :
         {partition_rcb(mesh, parts), partition_greedy(g, parts)}) {
      ASSERT_EQ(part.size(), mesh.tet_count());
      std::set<int> used;
      for (int p : part) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, parts);
        used.insert(p);
      }
      // Nonempty parts cannot exceed the element count.
      EXPECT_LE(used.size(), mesh.tet_count());
      const auto m = evaluate_partition(g, part, parts);
      EXPECT_EQ(m.parts, parts);
      EXPECT_EQ(m.min_part_size, 0u);  // someone must be empty
      EXPECT_GE(m.max_part_size, 1u);
    }
  }
}

TEST(Partitioner, CoincidentCentroidsStayDeterministicAndValid) {
  // Four identical tets stacked on the same vertices: every centroid
  // coincides, so RCB's coordinate sort has nothing to separate. The split
  // must still terminate, stay in range, and replay identically.
  const std::vector<mesh::Vec3> verts{
      {0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  std::vector<std::array<int, 4>> tets(4, {0, 1, 2, 3});
  const mesh::TetMesh mesh(verts, tets);
  for (int parts : {2, 3, 4, 9}) {
    const auto part = partition_rcb(mesh, parts);
    ASSERT_EQ(part.size(), mesh.tet_count());
    for (int p : part) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, parts);
    }
    EXPECT_EQ(part, partition_rcb(mesh, parts));
  }
}

TEST(Partitioner, ExtractSubmeshOnEmptyRankReturnsEmptyMesh) {
  const auto mesh = mesh::build_box_mesh({1, 1, 1});  // 6 tets
  const auto part = partition_rcb(mesh, 8);           // >= 2 parts empty
  const auto m = evaluate_partition(build_dual_graph(mesh), part, 8);
  ASSERT_EQ(m.min_part_size, 0u);
  for (int rank = 0; rank < 8; ++rank) {
    const auto sub = extract_submesh(mesh, part, rank);
    std::size_t owned = 0;
    for (int p : part) {
      owned += p == rank ? 1u : 0u;
    }
    EXPECT_EQ(sub.tet_count(), owned);
    if (owned == 0) {
      EXPECT_EQ(sub.vertex_count(), 0u);
      EXPECT_TRUE(sub.boundary_faces().empty());
    }
  }
}

TEST(EvaluatePartition, KnownTinyCase) {
  // Path graph 0-1-2-3 split in the middle: one cut edge.
  Graph g;
  g.xadj = {0, 1, 3, 5, 6};
  g.adjncy = {1, 0, 2, 1, 3, 2};
  g.validate();
  const std::vector<int> part{0, 0, 1, 1};
  const auto m = evaluate_partition(g, part, 2);
  EXPECT_EQ(m.edge_cut, 1u);
  EXPECT_EQ(m.min_part_size, 2u);
  EXPECT_EQ(m.max_part_size, 2u);
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
}

TEST(EvaluatePartition, RejectsBadPartitionVectors) {
  Graph g;
  g.xadj = {0, 0};
  g.adjncy = {};
  EXPECT_THROW(evaluate_partition(g, {0, 0}, 1), Error);  // size mismatch
  EXPECT_THROW(evaluate_partition(g, {5}, 2), Error);     // id out of range
}

TEST(EvaluatePartition, EmptyInputReportsUnitImbalanceNotNaN) {
  // Zero vertices used to divide 0/parts and report NaN imbalance; the
  // contract is now 1.0 (nothing to balance) for both metrics.
  Graph g;
  g.xadj = {0};
  g.adjncy = {};
  const auto m = evaluate_partition(g, {}, 4);
  EXPECT_EQ(m.parts, 4);
  EXPECT_EQ(m.max_part_size, 0u);
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(m.weighted_imbalance, 1.0);
  EXPECT_FALSE(std::isnan(m.imbalance));
}

TEST(EvaluatePartition, UniformWeightsMatchUnweightedImbalance) {
  const auto mesh = mesh::build_box_mesh({3, 3, 3});
  const Graph g = build_dual_graph(mesh);
  const auto part = partition_rcb(mesh, 5);
  const std::vector<double> uniform(5, 1.0);
  const auto m = evaluate_partition(g, part, 5,
                                    std::span<const double>(uniform));
  const auto plain = evaluate_partition(g, part, 5);
  EXPECT_DOUBLE_EQ(m.weighted_imbalance, plain.imbalance);
  EXPECT_DOUBLE_EQ(m.imbalance, plain.imbalance);
}

TEST(EvaluatePartition, RejectsBadWeights) {
  const auto mesh = mesh::build_box_mesh({2, 2, 2});
  const Graph g = build_dual_graph(mesh);
  const auto part = partition_rcb(mesh, 2);
  const std::vector<double> short_w{1.0};
  const std::vector<double> neg_w{1.0, -0.5};
  EXPECT_THROW(evaluate_partition(g, part, 2,
                                  std::span<const double>(short_w)),
               Error);
  EXPECT_THROW(
      evaluate_partition(g, part, 2, std::span<const double>(neg_w)), Error);
  EXPECT_THROW(partition_rcb(mesh, 2, std::span<const double>(short_w)),
               Error);
  EXPECT_THROW(partition_greedy(g, 2, std::span<const double>(neg_w)),
               Error);
}

class WeightedPartitioners : public ::testing::TestWithParam<int> {};

TEST_P(WeightedPartitioners, SizesTrackCapacityWeights) {
  const int parts = GetParam();
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  const Graph g = build_dual_graph(mesh);
  // Part 0 twice as fast as the rest, last part half speed — the shape a
  // skewed rank line produces.
  std::vector<double> weights(static_cast<std::size_t>(parts), 1.0);
  weights.front() = 2.0;
  weights.back() = 0.5;
  const std::span<const double> w(weights);
  for (const auto& part :
       {partition_rcb(mesh, parts, w), partition_greedy(g, parts, w)}) {
    const auto m = evaluate_partition(g, part, parts, w);
    // Every part within a modest factor of its capacity share.
    EXPECT_LE(m.weighted_imbalance, 1.5);
    // The fast part really got more than the slow one.
    std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), 0);
    for (int p : part) {
      ++sizes[static_cast<std::size_t>(p)];
    }
    EXPECT_GT(sizes.front(), sizes.back());
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, WeightedPartitioners,
                         ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace hetero::partition
