// Tests for the dual graph and the ParMETIS-substitute partitioners.

#include <gtest/gtest.h>

#include <set>

#include "mesh/box_mesh.hpp"
#include "partition/graph.hpp"
#include "partition/partitioner.hpp"
#include "support/error.hpp"

namespace hetero::partition {
namespace {

TEST(DualGraph, IsSymmetricAndBounded) {
  const auto mesh = mesh::build_box_mesh({3, 3, 3});
  const Graph g = build_dual_graph(mesh);
  g.validate();
  EXPECT_EQ(g.vertex_count(), mesh.tet_count());
  for (int v = 0; v < static_cast<int>(g.vertex_count()); ++v) {
    EXPECT_LE(g.neighbours(v).size(), 4u);  // a tet has four faces
    EXPECT_GE(g.neighbours(v).size(), 1u);  // Kuhn tets always touch others
  }
}

TEST(DualGraph, SingleCubeEdgeCount) {
  // The 6 Kuhn tets of one cube form a "fan" around the main diagonal:
  // each tet shares interior faces with exactly two neighbours (a 6-cycle),
  // so the dual graph has 6 edges.
  const auto mesh = mesh::build_box_mesh({1, 1, 1});
  const Graph g = build_dual_graph(mesh);
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
}

TEST(DualGraph, GrowsAcrossCellBoundaries) {
  const auto one = mesh::build_box_mesh({1, 1, 1});
  const auto two = mesh::build_box_mesh({2, 1, 1});
  const Graph g1 = build_dual_graph(one);
  const Graph g2 = build_dual_graph(two);
  // Two cubes share a face: strictly more than twice the single-cube edges.
  EXPECT_GT(g2.edge_count(), 2 * g1.edge_count());
}

class PartitionerBalance : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerBalance, RcbBalancesAnyPartCount) {
  const int parts = GetParam();
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  const auto part = partition_rcb(mesh, parts);
  const Graph g = build_dual_graph(mesh);
  const auto m = evaluate_partition(g, part, parts);
  EXPECT_EQ(m.parts, parts);
  EXPECT_GT(m.min_part_size, 0u);
  EXPECT_LE(m.imbalance, 1.10);
}

TEST_P(PartitionerBalance, GreedyBalancesAnyPartCount) {
  const int parts = GetParam();
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  const Graph g = build_dual_graph(mesh);
  const auto part = partition_greedy(g, parts);
  const auto m = evaluate_partition(g, part, parts);
  EXPECT_GT(m.min_part_size, 0u);
  EXPECT_LE(m.imbalance, 1.35);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionerBalance,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 16));

TEST(Partitioner, RcbCutBeatsRandomByFar) {
  const auto mesh = mesh::build_box_mesh({6, 6, 6});
  const Graph g = build_dual_graph(mesh);
  const auto part = partition_rcb(mesh, 8);
  const auto m = evaluate_partition(g, part, 8);
  // Random 8-way split of n vertices cuts ~7/8 of edges; a geometric split
  // of a cube must cut far less.
  EXPECT_LT(static_cast<double>(m.edge_cut),
            0.25 * static_cast<double>(g.edge_count()));
}

TEST(Partitioner, RcbIsDeterministic) {
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  EXPECT_EQ(partition_rcb(mesh, 6), partition_rcb(mesh, 6));
}

TEST(Partitioner, GreedyRefinementKeepsAssignmentsValid) {
  const auto mesh = mesh::build_box_mesh({5, 5, 5});
  const Graph g = build_dual_graph(mesh);
  for (int parts : {2, 9}) {
    const auto part = partition_greedy(g, parts);
    std::set<int> used(part.begin(), part.end());
    EXPECT_EQ(static_cast<int>(used.size()), parts);
    for (int p : part) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, parts);
    }
  }
}

TEST(Partitioner, SinglePartIsTrivial) {
  const auto mesh = mesh::build_box_mesh({2, 2, 2});
  const auto part = partition_rcb(mesh, 1);
  for (int p : part) {
    EXPECT_EQ(p, 0);
  }
}

TEST(Partitioner, RejectsImpossibleInputs) {
  const auto mesh = mesh::build_box_mesh({1, 1, 1});
  EXPECT_THROW(partition_rcb(mesh, 0), Error);
  EXPECT_THROW(partition_rcb(mesh, 7), Error);  // 6 tets, 7 parts
  const Graph g = build_dual_graph(mesh);
  EXPECT_THROW(partition_greedy(g, 7), Error);
}

TEST(EvaluatePartition, KnownTinyCase) {
  // Path graph 0-1-2-3 split in the middle: one cut edge.
  Graph g;
  g.xadj = {0, 1, 3, 5, 6};
  g.adjncy = {1, 0, 2, 1, 3, 2};
  g.validate();
  const std::vector<int> part{0, 0, 1, 1};
  const auto m = evaluate_partition(g, part, 2);
  EXPECT_EQ(m.edge_cut, 1u);
  EXPECT_EQ(m.min_part_size, 2u);
  EXPECT_EQ(m.max_part_size, 2u);
  EXPECT_DOUBLE_EQ(m.imbalance, 1.0);
}

TEST(EvaluatePartition, RejectsBadPartitionVectors) {
  Graph g;
  g.xadj = {0, 0};
  g.adjncy = {};
  EXPECT_THROW(evaluate_partition(g, {0, 0}, 1), Error);  // size mismatch
  EXPECT_THROW(evaluate_partition(g, {5}, 2), Error);     // id out of range
}

}  // namespace
}  // namespace hetero::partition
