// Tests for the advisory service: wire protocol, persistent memo store
// (including corruption recovery), the bit-exact result codec, and the
// pipe transport end to end — warm restarts must be byte-identical.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "svc/memo_store.hpp"
#include "svc/protocol.hpp"
#include "svc/result_codec.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace hetero;

struct TempFile {
  explicit TempFile(const std::string& name) : path("/tmp/" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string small_request(int id, int ranks = 8,
                          const std::string& extra = "") {
  return "{\"id\":" + std::to_string(id) +
         ",\"app\":\"rd\",\"ranks\":" + std::to_string(ranks) +
         ",\"iterations\":10,\"frontier\":false" + extra + "}";
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// --- protocol ---------------------------------------------------------

TEST(SvcProtocol, ParsesDefaultsAndAllFields) {
  const auto req = svc::parse_request_line(
      R"({"id":7,"app":"ns","elements":500000,"iterations":20,)"
      R"("deadline_h":12,"budget_usd":9.5,"risk":0.25,)"
      R"("risk_budget_usd":3,"ported":true,"objective":"cost",)"
      R"("frontier":false,"top":4,"client":"alice"})");
  EXPECT_EQ(req.kind, svc::SvcRequest::Kind::kJob);
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.client, "alice");
  EXPECT_EQ(req.job.app, perf::AppKind::kNavierStokes);
  EXPECT_EQ(req.job.total_elements, 500000);
  EXPECT_EQ(req.job.iterations, 20);
  ASSERT_TRUE(req.job.deadline_h.has_value());
  EXPECT_DOUBLE_EQ(*req.job.deadline_h, 12.0);
  ASSERT_TRUE(req.job.budget_usd.has_value());
  EXPECT_DOUBLE_EQ(*req.job.budget_usd, 9.5);
  EXPECT_DOUBLE_EQ(req.job.risk_tolerance, 0.25);
  ASSERT_TRUE(req.job.risk_budget_usd.has_value());
  EXPECT_DOUBLE_EQ(*req.job.risk_budget_usd, 3.0);
  EXPECT_FALSE(req.job.include_provisioning);  // ported inverts it
  EXPECT_EQ(req.objective, "cost");
  EXPECT_FALSE(req.want_frontier);
  EXPECT_EQ(req.top, 4);

  const auto defaults = svc::parse_request_line(R"({"id":0})");
  EXPECT_EQ(defaults.client, "anon");
  EXPECT_EQ(defaults.objective, "effective");
  EXPECT_TRUE(defaults.want_frontier);
  EXPECT_TRUE(defaults.job.include_provisioning);
}

TEST(SvcProtocol, StrictParseRejections) {
  EXPECT_THROW(svc::parse_request_line(R"({"id":1,"frobnicate":1})"), Error);
  EXPECT_THROW(svc::parse_request_line(R"({"app":"rd"})"), Error);  // no id
  EXPECT_THROW(svc::parse_request_line(R"({"id":-1})"), Error);
  EXPECT_THROW(svc::parse_request_line(R"({"id":1,"app":"xx"})"), Error);
  EXPECT_THROW(
      svc::parse_request_line(R"({"id":1,"objective":"fastest"})"), Error);
  EXPECT_THROW(svc::parse_request_line(R"({"id":1,"schema":"v0"})"), Error);
  EXPECT_THROW(svc::parse_request_line(R"({"id":1,"type":"query"})"), Error);
  EXPECT_THROW(svc::parse_request_line("not json"), Error);
  EXPECT_THROW(svc::parse_request_line(R"({"id":1.5})"), Error);
}

TEST(SvcProtocol, CacheKeySeparatesEveryAnswerField) {
  const auto base = svc::parse_request_line(small_request(1));
  const std::string key = svc::request_cache_key(base, 42);
  // The id and client never reach the payload, so they must not split the
  // cache; everything that changes the answer must.
  auto other = svc::parse_request_line(small_request(999));
  other.client = "bob";
  EXPECT_EQ(svc::request_cache_key(other, 42), key);
  EXPECT_NE(svc::request_cache_key(base, 43), key);
  EXPECT_NE(svc::request_cache_key(
                svc::parse_request_line(small_request(1, 27)), 42),
            key);
  EXPECT_NE(svc::request_cache_key(
                svc::parse_request_line(
                    small_request(1, 8, ",\"objective\":\"cost\"")),
                42),
            key);
  EXPECT_NE(svc::request_cache_key(
                svc::parse_request_line(small_request(1, 8, ",\"top\":3")),
                42),
            key);
}

TEST(SvcProtocol, FinalizeSubstitutesTheIdToken) {
  EXPECT_EQ(svc::finalize_line(R"({"id":"@ID@","x":1})", 17),
            R"({"id":17,"x":1})");
  EXPECT_THROW(svc::finalize_line(R"({"id":3})", 17), Error);
}

// --- result codec -----------------------------------------------------

TEST(SvcResultCodec, RoundTripsBitExactly) {
  core::ExperimentResult r;
  r.launched = true;
  r.hosts = 13;
  r.queue_wait_s = 0.1 + 0.2;  // not representable exactly: bit test
  r.provisioning_hours = 11.65;
  r.iteration.assembly_s = 1.0 / 3.0;
  r.iteration.preconditioner_s = 2e-9;
  r.iteration.solve_s = 123.456789012345678;
  r.iteration.total_s = r.iteration.assembly_s + r.iteration.solve_s;
  r.iteration.solver_iterations = 87.0;
  r.cost_per_iteration_usd = 0.007;
  r.est_cost_per_iteration_usd = 0.0065;
  r.spot_hosts = 4;
  r.work_per_rank.local_tets = 1234567890123;
  r.work_per_rank.local_rows = 42;
  r.work_per_rank.halo_doubles = -1;
  r.work_per_rank.solver_iterations = 87;
  r.nodal_error = 3.0303e-12;
  r.solver_converged = true;
  r.resil.attempts = 3;
  r.resil.recovered = true;
  r.resil.wasted_cost_usd = 0.25;
  r.resil.final_ranks = 64;

  const auto decoded = svc::decode_result(svc::encode_result(r));
  EXPECT_EQ(decoded.launched, r.launched);
  EXPECT_EQ(decoded.hosts, r.hosts);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.queue_wait_s),
            std::bit_cast<std::uint64_t>(r.queue_wait_s));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.iteration.solve_s),
            std::bit_cast<std::uint64_t>(r.iteration.solve_s));
  EXPECT_EQ(decoded.work_per_rank.local_tets, r.work_per_rank.local_tets);
  EXPECT_EQ(decoded.work_per_rank.halo_doubles,
            r.work_per_rank.halo_doubles);
  EXPECT_EQ(decoded.resil.attempts, r.resil.attempts);
  EXPECT_EQ(decoded.resil.recovered, r.resil.recovered);
  EXPECT_EQ(decoded.resil.final_ranks, r.resil.final_ranks);
  EXPECT_EQ(svc::encode_result(decoded), svc::encode_result(r));

  core::ExperimentResult failed;
  failed.launched = false;
  failed.failure_reason = "queue limit: max 16 nodes per job";
  const auto failed2 = svc::decode_result(svc::encode_result(failed));
  EXPECT_FALSE(failed2.launched);
  EXPECT_EQ(failed2.failure_reason, failed.failure_reason);
}

TEST(SvcResultCodec, RejectsMalformedPayloads) {
  core::ExperimentResult r;
  std::string bytes = svc::encode_result(r);
  EXPECT_THROW(svc::decode_result(bytes + "x"), Error);  // trailing junk
  EXPECT_THROW(svc::decode_result(bytes.substr(0, bytes.size() - 3)), Error);
  bytes[0] = 99;  // unknown version
  EXPECT_THROW(svc::decode_result(bytes), Error);
  EXPECT_THROW(svc::decode_result(""), Error);
}

// --- memo store -------------------------------------------------------

TEST(MemoStore, PersistsAcrossReopen) {
  TempFile log("svc_memo_reopen.log");
  {
    svc::MemoStore store(log.path);
    store.append("alpha", "1");
    store.append("beta", std::string("\0\n\xff binary", 10));
    store.append("alpha", "SHADOWED");  // content-addressed: first wins
    EXPECT_EQ(store.size(), 2u);
  }
  svc::MemoStore store(log.path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().recovered_records, 2u);
  EXPECT_EQ(store.stats().dropped_bytes, 0u);
  std::string v;
  ASSERT_TRUE(store.lookup("alpha", &v));
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(store.lookup("beta", &v));
  EXPECT_EQ(v, std::string("\0\n\xff binary", 10));
  EXPECT_FALSE(store.lookup("gamma", &v));
}

TEST(MemoStore, TruncatedTailDropsOnlyTheTornRecord) {
  TempFile log("svc_memo_torn.log");
  std::size_t full_size = 0;
  {
    svc::MemoStore store(log.path);
    store.append("k1", "v1");
    store.append("k2", "v2");
    store.append("k3", "v3");
  }
  {
    std::ifstream in(log.path, std::ios::binary | std::ios::ate);
    full_size = static_cast<std::size_t>(in.tellg());
  }
  ASSERT_EQ(::truncate(log.path.c_str(),
                       static_cast<off_t>(full_size - 3)),
            0);  // tear the last record mid-value
  svc::MemoStore store(log.path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_GT(store.stats().dropped_bytes, 0u);
  std::string v;
  EXPECT_TRUE(store.lookup("k1", &v));
  EXPECT_TRUE(store.lookup("k2", &v));
  EXPECT_FALSE(store.lookup("k3", &v));
  // The log is healthy again: appends after recovery survive a reopen.
  store.append("k4", "v4");
  store.flush();
  svc::MemoStore reopened(log.path);
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_TRUE(reopened.lookup("k4", &v));
  EXPECT_EQ(v, "v4");
}

TEST(MemoStore, FlippedChecksumByteDropsTheDamagedSuffix) {
  TempFile log("svc_memo_flip.log");
  {
    svc::MemoStore store(log.path);
    store.append("k1", "value-one");
    store.append("k2", "value-two");
    store.append("k3", "value-three");
  }
  // Flip one byte inside the second record's checksum field. Records are
  // [magic u32][key_len u32][value_len u32][checksum u64][key][value]:
  // record 1 spans 20 + 2 + 9 bytes, so record 2's checksum starts at
  // offset 31 + 12.
  {
    std::fstream f(log.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(31 + 12);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(31 + 12);
    f.write(&byte, 1);
  }
  svc::MemoStore store(log.path);
  // Recovery keeps the intact prefix and drops everything from the
  // damaged record on — k3 is collateral, by design (append-only log).
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().recovered_records, 1u);
  EXPECT_GT(store.stats().dropped_bytes, 0u);
  std::string v;
  EXPECT_TRUE(store.lookup("k1", &v));
  EXPECT_EQ(v, "value-one");
  EXPECT_FALSE(store.lookup("k2", &v));
  EXPECT_FALSE(store.lookup("k3", &v));
}

TEST(MemoStore, InMemoryModeWorksWithoutAFile) {
  svc::MemoStore store("");
  store.append("k", "v");
  store.flush();
  std::string v;
  EXPECT_TRUE(store.lookup("k", &v));
  EXPECT_EQ(store.fetch_or_compute("k", [] { return std::string("X"); }),
            "v");
}

TEST(MemoStore, ConcurrentFetchOrComputeRunsTheComputeOnce) {
  svc::MemoStore store("");
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::vector<std::string> results(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          store.fetch_or_compute("shared", [&] {
            computes.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return std::string("the-answer");
          });
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results) {
    EXPECT_EQ(r, "the-answer");
  }
}

TEST(MemoStore, FailedComputeReleasesTheKeyForRetry) {
  svc::MemoStore store("");
  EXPECT_THROW(store.fetch_or_compute(
                   "k", []() -> std::string { throw Error("boom"); }),
               Error);
  EXPECT_EQ(store.fetch_or_compute("k", [] { return std::string("ok"); }),
            "ok");
}

// --- service + pipe transport -----------------------------------------

TEST(SvcServe, AnswersAStreamWithMonotoneIdsAndDrainsToBye) {
  svc::Service service(svc::ServiceOptions{});
  std::istringstream in(
      "{\"id\":0,\"type\":\"ping\"}\n" + small_request(1) + "\n" +
      "this is not json\n" +
      small_request(3, 8, ",\"frontier\":true,\"top\":2") + "\n" +
      "{\"id\":4,\"type\":\"shutdown\"}\n" + small_request(5) + "\n");
  std::ostringstream out;
  const auto stats = svc::serve_pipe(service, in, out);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.pings, 1u);
  EXPECT_EQ(stats.errors, 1u);

  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"type\":\"pong\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":null"), std::string::npos);
  // Request 3 asked for the frontier and 2 ranked alternates.
  bool saw_frontier = false;
  bool saw_ranked = false;
  for (const auto& line : lines) {
    saw_frontier |= line.find("\"type\":\"frontier\"") != std::string::npos;
    saw_ranked |= line.find("\"type\":\"ranked\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_frontier);
  EXPECT_TRUE(saw_ranked);
  // Shutdown cut the stream before request 5; the bye record is last.
  EXPECT_NE(lines.back().find("\"type\":\"bye\""), std::string::npos);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("\"id\":5"), std::string::npos);
  }
}

TEST(SvcServe, WarmRestartIsByteIdenticalAndAppendsNothing) {
  TempFile log("svc_warm_restart.log");
  const std::string requests = small_request(1) + "\n" +
                               small_request(2, 27) + "\n" +
                               small_request(3) + "\n";
  std::ostringstream cold;
  {
    svc::ServiceOptions options;
    options.store_path = log.path;
    svc::Service service(options);
    std::istringstream in(requests);
    svc::serve_pipe(service, in, cold);
    EXPECT_GT(service.store().stats().appends, 0u);
  }
  std::ostringstream warm;
  {
    svc::ServiceOptions options;
    options.store_path = log.path;
    svc::Service service(options);
    std::istringstream in(requests);
    svc::serve_pipe(service, in, warm);
    EXPECT_EQ(service.store().stats().appends, 0u);
    EXPECT_EQ(service.store().stats().hits, 3u);
  }
  EXPECT_EQ(cold.str(), warm.str());
}

TEST(SvcServe, RestartMidStreamThenReplayMatchesTheUnbrokenRun) {
  TempFile log("svc_split_stream.log");
  const std::vector<std::string> reqs = {
      small_request(1), small_request(2, 27),
      small_request(3, 8, ",\"objective\":\"cost\""), small_request(4)};
  const auto run = [&](const std::string& store_path, std::size_t begin,
                       std::size_t end) {
    std::string text;
    for (std::size_t i = begin; i < end; ++i) {
      text += reqs[i] + "\n";
    }
    svc::ServiceOptions options;
    options.store_path = store_path;
    svc::Service service(options);
    std::istringstream in(text);
    std::ostringstream out;
    svc::serve_pipe(service, in, out);
    // Strip the per-process bye record: we compare the answer streams.
    std::string joined;
    for (const auto& line : lines_of(out.str())) {
      if (line.find("\"type\":\"bye\"") == std::string::npos) {
        joined += line + "\n";
      }
    }
    return joined;
  };
  const std::string first_half = run(log.path, 0, 2);   // killed here
  const std::string second_half = run(log.path, 2, 4);  // warm restart
  TempFile fresh("svc_split_stream_fresh.log");
  const std::string unbroken = run(fresh.path, 0, 4);
  EXPECT_EQ(first_half + second_half, unbroken);
}

TEST(SvcServe, NewRequestAfterRestartReusesStoredExperiments) {
  TempFile log("svc_incremental.log");
  {
    svc::ServiceOptions options;
    options.store_path = log.path;
    svc::Service service(options);
    std::istringstream in(small_request(1) + "\n");
    std::ostringstream out;
    svc::serve_pipe(service, in, out);
  }
  // Same job, different objective: a request never seen before whose
  // experiments were all priced by the first run.
  svc::ServiceOptions options;
  options.store_path = log.path;
  svc::Service service(options);
  std::istringstream in(small_request(2, 8, ",\"objective\":\"cost\"") +
                        "\n");
  std::ostringstream out;
  svc::serve_pipe(service, in, out);
  EXPECT_GT(service.engine().stats().store_hits, 0u);
  EXPECT_NE(out.str().find("\"type\":\"decision\""), std::string::npos);
}

TEST(SvcServe, TokenBucketThrottlesAndRefills) {
  svc::ServiceOptions options;
  svc::Service probe(svc::ServiceOptions{});
  const double cost = probe.request_cost(
      svc::parse_request_line(small_request(1)));
  ASSERT_GT(cost, 0.0);
  // Capacity covers exactly one request; refill half a request per
  // observed request (throttled attempts included), so every second
  // request gets through.
  options.budget_capacity = cost;
  options.budget_refill = cost / 2;
  svc::Service service(options);
  std::istringstream in(small_request(1) + "\n" + small_request(2) + "\n" +
                        small_request(3) + "\n");
  std::ostringstream out;
  const auto stats = svc::serve_pipe(service, in, out);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.throttled, 1u);
  const auto lines = lines_of(out.str());
  EXPECT_NE(lines[0].find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"throttled\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"decision\""), std::string::npos);
}

TEST(SvcServe, UnpriceableRequestWithBudgetsAnswersErrorAndKeepsServing) {
  svc::ServiceOptions options;
  options.budget_capacity = 1000.0;
  options.budget_refill = 1000.0;
  svc::Service service(options);
  // iterations:0 parses fine but cannot be priced: with budgets on, the
  // reader thread prices it for admission. That must yield an error
  // record for the request's id — not an exception unwinding serve_pipe
  // past the joinable worker pool — and the stream must keep flowing.
  std::istringstream in(
      "{\"id\":1,\"app\":\"rd\",\"ranks\":8,\"iterations\":0}\n" +
      small_request(2) + "\n");
  std::ostringstream out;
  const auto stats = svc::serve_pipe(service, in, out);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.served, 1u);
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":2"), std::string::npos);
}

TEST(SvcServe, RejectModeAnswersEveryRequestWithDecisionOrBusy) {
  svc::Service service(svc::ServiceOptions{});
  svc::ServeOptions serve_options;
  serve_options.reject_when_full = true;
  serve_options.queue_capacity = 1;
  std::string text;
  for (int i = 0; i < 12; ++i) {
    text += small_request(i, 8) + "\n";
  }
  std::istringstream in(text);
  std::ostringstream out;
  const auto stats = svc::serve_pipe(service, in, out);
  EXPECT_EQ(stats.served + stats.busy, 12u);
  std::size_t answers = 0;
  for (const auto& line : lines_of(out.str())) {
    if (line.find("\"type\":\"decision\"") != std::string::npos ||
        line.find("\"type\":\"busy\"") != std::string::npos) {
      ++answers;
    }
  }
  EXPECT_EQ(answers, 12u);
}

TEST(SvcServe, UnixSocketSpeaksTheSameProtocol) {
  const std::string path = "/tmp/svc_test_socket_" +
                           std::to_string(::getpid()) + ".sock";
  svc::Service service(svc::ServiceOptions{});
  svc::ServeStats stats;
  std::thread server([&] {
    stats = svc::serve_unix_socket(service, path);
  });
  // Wait for the socket to appear, then connect.
  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;
  const std::string payload = "{\"id\":0,\"type\":\"ping\"}\n" +
                              small_request(1) + "\n" +
                              "{\"id\":2,\"type\":\"shutdown\"}\n";
  ASSERT_EQ(::write(fd, payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();
  EXPECT_NE(response.find("\"type\":\"pong\""), std::string::npos);
  EXPECT_NE(response.find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(response.find("\"type\":\"bye\""), std::string::npos);
  EXPECT_EQ(stats.served, 1u);
  ::unlink(path.c_str());
}

}  // namespace
