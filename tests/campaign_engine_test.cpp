// CampaignEngine: parallel campaign evaluation must be indistinguishable
// from the sequential sweep (determinism, submission-order results),
// memoization must account its hits, the thread budget must bound in-flight
// simulated threads, and failures must propagate with the lowest index.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace hetero::core {
namespace {

std::vector<Experiment> small_campaign() {
  std::vector<Experiment> batch;
  for (const char* platform : {"puma", "ellipse", "lagrange", "ec2"}) {
    for (int ranks : {1, 8, 27, 64, 125, 343, 1000}) {
      Experiment e;
      e.platform = platform;
      e.ranks = ranks;
      batch.push_back(e);
    }
  }
  Experiment mix;
  mix.platform = "ec2";
  mix.ranks = 1000;
  mix.ec2_spot_mix = true;
  mix.ec2_placement_groups = 4;
  batch.push_back(mix);
  return batch;
}

std::string results_fingerprint(const std::vector<ExperimentResult>& rs) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& r : rs) {
    out << r.launched << "|" << r.failure_reason << "|"
        << r.iteration.total_s << "|" << r.cost_per_iteration_usd << "|"
        << r.queue_wait_s << "|" << r.hosts << "|" << r.spot_hosts << "\n";
  }
  return out.str();
}

TEST(CampaignEngine, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_GE(resolve_jobs(0), 1);  // env or hardware, never less than one
}

TEST(CampaignEngine, ParallelBatchMatchesSequentialByteForByte) {
  const auto batch = small_campaign();
  CampaignEngine sequential(42, {.jobs = 1});
  CampaignEngine parallel(42, {.jobs = 8});
  EXPECT_EQ(sequential.jobs(), 1);
  EXPECT_EQ(parallel.jobs(), 8);
  const auto rs = sequential.run_batch(batch);
  const auto rp = parallel.run_batch(batch);
  ASSERT_EQ(rs.size(), batch.size());
  ASSERT_EQ(rp.size(), batch.size());
  EXPECT_EQ(results_fingerprint(rs), results_fingerprint(rp));
}

TEST(CampaignEngine, GeneratedTablesAreIdenticalAtAnyJobsLevel) {
  const auto procs = paper_process_counts();
  CampaignEngine sequential(42, {.jobs = 1});
  CampaignEngine parallel(42, {.jobs = 8});
  const std::string text_seq =
      weak_scaling_figure(sequential, perf::AppKind::kReactionDiffusion,
                          procs)
          .to_text();
  const std::string text_par =
      weak_scaling_figure(parallel, perf::AppKind::kReactionDiffusion, procs)
          .to_text();
  EXPECT_EQ(text_seq, text_par);

  const std::string cost_seq =
      cost_figure(sequential, perf::AppKind::kNavierStokes, procs).to_text();
  const std::string cost_par =
      cost_figure(parallel, perf::AppKind::kNavierStokes, procs).to_text();
  EXPECT_EQ(cost_seq, cost_par);
}

TEST(CampaignEngine, MemoizationAccountsHitsAndReplaysResults) {
  CampaignEngine engine(42, {.jobs = 2});
  Experiment e;
  e.platform = "puma";
  e.ranks = 27;

  const auto first = engine.run(e);
  auto stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.jobs_run, 1u);

  const auto second = engine.run(e);
  stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.jobs_run, 1u);  // nothing re-executed
  EXPECT_DOUBLE_EQ(first.iteration.total_s, second.iteration.total_s);
  EXPECT_DOUBLE_EQ(first.cost_per_iteration_usd,
                   second.cost_per_iteration_usd);

  // A batch of duplicates computes the descriptor once.
  const std::vector<Experiment> dupes(6, e);
  const auto results = engine.run_batch(dupes);
  stats = engine.stats();
  EXPECT_EQ(stats.jobs_run, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.iteration.total_s, first.iteration.total_s);
  }
}

TEST(CampaignEngine, CacheKeySeparatesSeedsAndDescriptors) {
  Experiment a;
  a.platform = "puma";
  a.ranks = 27;
  Experiment b = a;
  b.ranks = 64;
  EXPECT_NE(experiment_cache_key(a, 42), experiment_cache_key(b, 42));
  EXPECT_NE(experiment_cache_key(a, 42), experiment_cache_key(a, 43));
  EXPECT_EQ(experiment_cache_key(a, 42), experiment_cache_key(a, 42));
  Experiment spot = a;
  spot.platform = "ec2";
  spot.ranks = 1000;
  Experiment ondemand = spot;
  spot.ec2_spot_mix = true;
  EXPECT_NE(experiment_cache_key(spot, 42),
            experiment_cache_key(ondemand, 42));
}

TEST(CampaignEngine, CacheKeySeparatesFaultAndRecoveryConfigs) {
  Experiment plain;
  plain.platform = "puma";
  plain.ranks = 8;

  Experiment faulty = plain;
  faulty.faults.rank_crash_rate = 0.05;
  EXPECT_NE(experiment_cache_key(plain, 42),
            experiment_cache_key(faulty, 42));

  Experiment ckpt = faulty;
  ckpt.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
  EXPECT_NE(experiment_cache_key(faulty, 42),
            experiment_cache_key(ckpt, 42));

  Experiment denser = ckpt;
  denser.recovery.checkpoint_every = 5;
  EXPECT_NE(experiment_cache_key(ckpt, 42),
            experiment_cache_key(denser, 42));

  Experiment shrink = ckpt;
  shrink.recovery.shrink_ranks_on_crash = true;
  EXPECT_NE(experiment_cache_key(ckpt, 42),
            experiment_cache_key(shrink, 42));

  Experiment degraded = plain;
  degraded.faults.net_degrade_rate = 0.2;
  EXPECT_NE(experiment_cache_key(plain, 42),
            experiment_cache_key(degraded, 42));
}

TEST(CampaignEngine, FaultyDirectBatchIsIdenticalAtAnyJobsLevel) {
  // The whole point of the stateless fault plan: a batch of direct runs
  // with injected crashes, retries, and shrinking recovery replays
  // byte-identically whether evaluated on 1 worker or 8.
  std::vector<Experiment> batch;
  for (const std::uint64_t seed : {1, 2, 3, 4, 5, 6}) {
    for (const auto kind : {resil::RecoveryKind::kRestartScratch,
                            resil::RecoveryKind::kCheckpointRestart}) {
      Experiment e;
      e.platform = "puma";
      e.ranks = 8;
      e.mode = Mode::kDirect;
      e.cells_per_rank_axis = 3;
      e.direct_steps = 4;
      e.faults.rank_crash_rate = 0.04;
      e.faults.net_degrade_rate = 0.2;
      e.recovery.kind = kind;
      e.recovery.max_attempts = 8;
      e.seed = seed;
      batch.push_back(e);
    }
  }
  CampaignEngine sequential(42, {.jobs = 1});
  CampaignEngine parallel(42, {.jobs = 8});
  const auto rs = sequential.run_batch(batch);
  const auto rp = parallel.run_batch(batch);
  ASSERT_EQ(rs.size(), batch.size());
  EXPECT_EQ(results_fingerprint(rs), results_fingerprint(rp));
  auto resil_fingerprint = [](const std::vector<ExperimentResult>& results) {
    std::ostringstream out;
    out.precision(17);
    for (const auto& r : results) {
      const auto& s = r.resil;
      out << s.attempts << "|" << s.faults_injected << "|"
          << s.steps_wasted << "|" << s.steps_recovered << "|"
          << s.checkpoints_written << "|" << s.retry_delay_s << "|"
          << s.wasted_sim_s << "|" << s.wasted_cost_usd << "|"
          << s.recovered << "|" << s.final_ranks << "\n";
    }
    return out.str();
  };
  EXPECT_EQ(resil_fingerprint(rs), resil_fingerprint(rp));
  // The sweep actually exercised recovery somewhere.
  int faults = 0;
  for (const auto& r : rs) {
    faults += r.resil.faults_injected;
  }
  EXPECT_GT(faults, 0);
}

TEST(CampaignEngine, MemoizationCanBeDisabled) {
  CampaignEngine engine(42, {.jobs = 1, .memoize = false});
  Experiment e;
  e.platform = "puma";
  e.ranks = 8;
  const auto a = engine.run(e);
  const auto b = engine.run(e);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.jobs_run, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_DOUBLE_EQ(a.iteration.total_s, b.iteration.total_s);
}

TEST(CampaignEngine, DirectModeThreadBudgetBoundsInflightThreads) {
  // Four direct 8-rank jobs on 4 workers with a budget of 8 simulated
  // threads: never more than one such job (weight 8) in flight.
  CampaignEngine engine(42, {.jobs = 4, .thread_budget = 8,
                             .memoize = false});
  std::vector<Experiment> batch;
  for (int i = 0; i < 4; ++i) {
    Experiment e;
    e.platform = "puma";
    e.ranks = 8;
    e.cells_per_rank_axis = 3;
    e.mode = Mode::kDirect;
    e.direct_steps = 2;
    batch.push_back(e);
  }
  const auto results = engine.run_batch(batch);
  for (const auto& r : results) {
    EXPECT_TRUE(r.launched);
    EXPECT_TRUE(r.solver_converged);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.jobs_run, 4u);
  EXPECT_LE(stats.peak_inflight_threads, 8);
  EXPECT_GE(stats.peak_inflight_threads, 8);  // each job alone weighs 8
}

TEST(CampaignEngine, ModeledJobsRespectNarrowBudget) {
  CampaignEngine engine(42, {.jobs = 4, .thread_budget = 2,
                             .memoize = false});
  std::vector<Experiment> batch;
  for (int ranks : {1, 8, 27, 64, 125, 216}) {
    Experiment e;
    e.platform = "ellipse";
    e.ranks = ranks;
    batch.push_back(e);
  }
  engine.run_batch(batch);
  EXPECT_LE(engine.stats().peak_inflight_threads, 2);
}

TEST(CampaignEngine, MixedModeledAndDirectBatchIsDeterministic) {
  // Modeled jobs (weight 1) interleave with direct jobs (weight ranks)
  // under one budget — the TSan workhorse case — and the result must
  // still be byte-identical to the sequential sweep.
  std::vector<Experiment> batch;
  for (int ranks : {1, 8, 27, 64}) {
    Experiment m;
    m.platform = "ec2";
    m.ranks = ranks;
    batch.push_back(m);
    Experiment d;
    d.platform = "puma";
    d.ranks = ranks <= 8 ? ranks : 1;
    d.cells_per_rank_axis = 3;
    d.mode = Mode::kDirect;
    d.direct_steps = 2;
    batch.push_back(d);
  }
  CampaignEngine sequential(42, {.jobs = 1});
  CampaignEngine parallel(42, {.jobs = 4});
  const auto rs = sequential.run_batch(batch);
  const auto rp = parallel.run_batch(batch);
  EXPECT_EQ(results_fingerprint(rs), results_fingerprint(rp));
}

TEST(CampaignEngine, FirstFailureByIndexPropagates) {
  std::vector<Experiment> batch;
  Experiment ok;
  ok.platform = "puma";
  ok.ranks = 8;
  Experiment bad;  // direct mode requires cubic ranks: 6 throws
  bad.platform = "puma";
  bad.ranks = 6;
  bad.mode = Mode::kDirect;
  batch.push_back(ok);
  batch.push_back(bad);
  batch.push_back(ok);
  CampaignEngine engine(42, {.jobs = 4});
  EXPECT_THROW(engine.run_batch(batch), Error);
  // The engine survives a failed batch and keeps serving.
  const auto r = engine.run(ok);
  EXPECT_TRUE(r.launched);
}

TEST(CampaignEngine, ParallelForCoversEveryIndexOnce) {
  CampaignEngine engine(42, {.jobs = 8});
  constexpr std::size_t kN = 300;
  std::vector<int> touched(kN, 0);
  engine.parallel_for(kN, [&](std::size_t i) { touched[i] += 1; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
  EXPECT_GE(engine.stats().batches, 1u);
}

TEST(CampaignEngine, NestedParallelForRunsInline) {
  CampaignEngine engine(42, {.jobs = 4});
  std::vector<int> inner_sum(8, 0);
  engine.parallel_for(8, [&](std::size_t i) {
    // Must not deadlock: the inner loop runs inline on the worker.
    engine.parallel_for(4, [&](std::size_t j) {
      inner_sum[i] += static_cast<int>(j) + 1;
    });
  });
  for (int s : inner_sum) {
    EXPECT_EQ(s, 10);
  }
}

}  // namespace
}  // namespace hetero::core
