// Ablation (extension of §VI-D's "automatic checkpointing" future work):
// checkpoint-interval sweep for a spot-instance campaign.
//
// Spot hosts disappear whenever the market moves above the bid; everything
// since the last checkpoint is redone on restart. Frequent checkpoints
// waste I/O time, rare ones waste redone iterations — the sweep exposes the
// optimum, and the on-demand row shows what the interruption risk costs
// relative to the 4.4x price premium.

#include <iostream>

#include "core/campaign.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_checkpoint");
  const int ranks = static_cast<int>(args.get_int("ranks", 512));
  const int iterations = static_cast<int>(args.get_int("iterations", 500));

  std::cout << "# Ablation — checkpoint interval for a spot campaign (RD, "
            << ranks << " ranks, " << iterations << " iterations)\n";
  Table table({"strategy", "ckpt every", "wall clock", "billed[$]",
               "interruptions", "iters redone", "ckpts"});
  // Each campaign simulation is seeded independently, so the five
  // configurations evaluate concurrently; rows keep configuration order.
  std::vector<core::CampaignConfig> configs;
  for (int interval : {0, 5, 25, 100}) {
    core::CampaignConfig config;
    config.ranks = ranks;
    config.iterations = iterations;
    config.checkpoint_interval = interval;
    config.use_spot = true;
    configs.push_back(config);
  }
  core::CampaignConfig od;
  od.ranks = ranks;
  od.iterations = iterations;
  od.use_spot = false;
  od.checkpoint_interval = 0;
  configs.push_back(od);

  auto engine = bench::make_engine(args);
  std::vector<core::CampaignResult> results(configs.size());
  engine.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = core::simulate_ec2_campaign(configs[i]);
  });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& config = configs[i];
    const auto& r = results[i];
    table.add_row({config.use_spot ? "spot" : "on-demand",
                   config.checkpoint_interval == 0
                       ? "never"
                       : std::to_string(config.checkpoint_interval),
                   format_seconds(r.wall_clock_s),
                   fmt_double(r.billed_usd, 2),
                   std::to_string(r.interruptions),
                   std::to_string(r.iterations_redone),
                   std::to_string(r.checkpoints_written)});
  }
  out.emit(table);
  return 0;
}
