// Microbenchmarks (google-benchmark) of the numerical kernels behind the
// phase-time model: element assembly, CSR construction and spmv, mesh
// generation, edge enumeration, and partitioning. These measure *host*
// performance; the platform models translate work counts into simulated
// 2012-era times — comparing the two is how the CPU rate constants were
// sanity-checked.

#include <benchmark/benchmark.h>

#include "fem/assembler.hpp"
#include "fem/fe_space.hpp"
#include "la/csr_matrix.hpp"
#include "la/system_builder.hpp"
#include "mesh/box_mesh.hpp"
#include "mesh/edges.hpp"
#include "netsim/fabric.hpp"
#include "partition/partitioner.hpp"
#include "simmpi/runtime.hpp"
#include "solvers/preconditioner.hpp"

namespace {

using namespace hetero;

void BM_BuildBoxMesh(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto mesh = mesh::build_box_mesh({n, n, n});
    benchmark::DoNotOptimize(mesh.tet_count());
  }
  state.SetItemsProcessed(state.iterations() * 6 * n * n * n);
}
BENCHMARK(BM_BuildBoxMesh)->Arg(4)->Arg(8)->Arg(16);

void BM_EdgeEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto mesh = mesh::build_box_mesh({n, n, n});
  for (auto _ : state) {
    auto edges = mesh::build_edges(mesh);
    benchmark::DoNotOptimize(edges.edges.size());
  }
  state.SetItemsProcessed(state.iterations() * mesh.tet_count());
}
BENCHMARK(BM_EdgeEnumeration)->Arg(4)->Arg(8);

void BM_ElementStiffnessP2(benchmark::State& state) {
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  fem::FeSpace space(mesh, 2, static_cast<std::int64_t>(mesh.vertex_count()));
  fem::ElementKernel kernel(space, 4);
  std::vector<double> ke(100);
  std::size_t t = 0;
  for (auto _ : state) {
    kernel.stiffness(t, ke);
    benchmark::DoNotOptimize(ke[0]);
    t = (t + 1) % mesh.tet_count();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ElementStiffnessP2);

void BM_ElementMassP1(benchmark::State& state) {
  const auto mesh = mesh::build_box_mesh({4, 4, 4});
  fem::FeSpace space(mesh, 1, static_cast<std::int64_t>(mesh.vertex_count()));
  fem::ElementKernel kernel(space, 2);
  std::vector<double> me(16);
  std::size_t t = 0;
  for (auto _ : state) {
    kernel.mass(t, me);
    benchmark::DoNotOptimize(me[0]);
    t = (t + 1) % mesh.tet_count();
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ElementMassP1);

la::CsrMatrix make_laplacian(int n) {
  std::vector<la::Triplet> triplets;
  for (int i = 0; i < n; ++i) {
    triplets.push_back({i, i, 2.0});
    if (i > 0) {
      triplets.push_back({i, i - 1, -1.0});
    }
    if (i + 1 < n) {
      triplets.push_back({i, i + 1, -1.0});
    }
  }
  return la::CsrMatrix::from_triplets(n, n, triplets);
}

void BM_CsrSpmv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = make_laplacian(n);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y[0]);
  }
  state.SetItemsProcessed(state.iterations() * a.nonzeros());
}
BENCHMARK(BM_CsrSpmv)->Arg(1 << 12)->Arg(1 << 16);

void BM_CsrFromTriplets(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<la::Triplet> triplets;
  for (int i = 0; i < n; ++i) {
    triplets.push_back({i, i, 1.0});
    triplets.push_back({i, (i * 7 + 3) % n, 0.5});
    triplets.push_back({i, i, 1.0});  // duplicate to merge
  }
  for (auto _ : state) {
    auto m = la::CsrMatrix::from_triplets(n, n, triplets);
    benchmark::DoNotOptimize(m.nonzeros());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(triplets.size()));
}
BENCHMARK(BM_CsrFromTriplets)->Arg(1 << 12);

/// Assembles a serial tridiagonal system inside a 1-rank runtime; the
/// builder (and its map/halo/matrix) stays valid after run() returns, and
/// Preconditioner::build/apply never communicate, so they can be timed
/// outside the runtime.
std::unique_ptr<la::DistSystemBuilder> make_dist_fixture(int n) {
  auto runtime = std::make_shared<simmpi::Runtime>(netsim::Topology::uniform(
      1, 1, netsim::Fabric::shared_memory(), netsim::Fabric::shared_memory()));
  std::unique_ptr<la::DistSystemBuilder> builder;
  runtime->run([&](simmpi::Comm& comm) {
    std::vector<la::GlobalId> touched;
    for (int g = 0; g < n; ++g) {
      touched.push_back(g);
    }
    builder = std::make_unique<la::DistSystemBuilder>(comm, touched);
    builder->begin_assembly();
    for (int g = 0; g < n; ++g) {
      builder->add_matrix(g, g, 2.0);
      if (g > 0) {
        builder->add_matrix(g, g - 1, -1.0);
      }
      if (g + 1 < n) {
        builder->add_matrix(g, g + 1, -1.0);
      }
    }
    builder->finalize(comm);
  });
  return builder;
}

void BM_Ilu0Factorize(benchmark::State& state) {
  const auto builder = make_dist_fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    solvers::Ilu0Preconditioner ilu;
    ilu.build(builder->matrix());
    benchmark::DoNotOptimize(&ilu);
  }
  state.SetItemsProcessed(state.iterations() *
                          builder->matrix().local().nonzeros());
}
BENCHMARK(BM_Ilu0Factorize)->Arg(1 << 14);

void BM_Ilu0Apply(benchmark::State& state) {
  const auto builder = make_dist_fixture(static_cast<int>(state.range(0)));
  solvers::Ilu0Preconditioner ilu;
  ilu.build(builder->matrix());
  la::DistVector r(builder->map());
  la::DistVector z(builder->map());
  r.set_all(1.0);
  for (auto _ : state) {
    ilu.apply(r, z);
    benchmark::DoNotOptimize(z[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          builder->matrix().local().nonzeros());
}
BENCHMARK(BM_Ilu0Apply)->Arg(1 << 14);

void BM_Partition(benchmark::State& state) {
  const auto mesh = mesh::build_box_mesh({8, 8, 8});
  const bool greedy = state.range(0) == 1;
  const auto graph = partition::build_dual_graph(mesh);
  for (auto _ : state) {
    auto part = greedy ? partition::partition_greedy(graph, 8)
                       : partition::partition_rcb(mesh, 8);
    benchmark::DoNotOptimize(part[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mesh.tet_count()));
  state.SetLabel(greedy ? "greedy" : "rcb");
}
BENCHMARK(BM_Partition)->Arg(0)->Arg(1);

}  // namespace
