// Host microbenchmarks of the direct-mode hot-path kernels: CSR SpMV,
// fused DistVector updates, fused element assembly, and the full RD
// per-iteration step. Every case runs the *same binary* twice — once with
// the reference kernels (the executable specification) and once with the
// fast kernels — so the reported speedup is a like-for-like host-time
// ratio; the numerics are bit-identical either way (see docs/kernels.md).
//
// Unlike the virtual-clock phase timings of the figure benches, everything
// here is host wall time: the platform models charge mode-independent
// compute costs, so only a host-side measurement can see the overhaul.
// FLOP/byte columns come from the obs kernel counters (la.kernel.*,
// fem.kernel.assembly.*).
//
// `--json out.jsonl` emits heterolab-bench-v1 records gated in CI against
// bench/baselines/kernels.json (the rd_direct speedup floor).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "apps/rd_solver.hpp"
#include "bench_main.hpp"
#include "fem/assembler.hpp"
#include "fem/fe_space.hpp"
#include "la/csr_matrix.hpp"
#include "la/kernels.hpp"
#include "la/system_builder.hpp"
#include "mesh/box_mesh.hpp"
#include "netsim/fabric.hpp"
#include "obs/metrics.hpp"
#include "simmpi/runtime.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace hetero;

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best (minimum) wall time of `reps` invocations of `body`.
template <class F>
double best_of(int reps, F&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = wall_s();
    body();
    best = std::min(best, wall_s() - t0);
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

/// P2 mass+stiffness matrix of an n^3 box, assembled serially — the
/// realistic FEM sparsity the solver iterates on.
la::CsrMatrix make_fem_matrix(int cells, int order) {
  const auto mesh = mesh::build_box_mesh({cells, cells, cells});
  fem::FeSpace space(mesh, order,
                     static_cast<std::int64_t>(mesh.vertex_count()));
  fem::ElementKernel kernel(space, order == 2 ? 4 : 2);
  const int n = kernel.n();
  std::vector<double> me(static_cast<std::size_t>(n * n));
  std::vector<double> ke(static_cast<std::size_t>(n * n));
  std::vector<la::Triplet> triplets;
  triplets.reserve(mesh.tet_count() * static_cast<std::size_t>(n * n));
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    kernel.mass(t, me);
    kernel.stiffness(t, ke);
    const auto dofs = space.tet_dofs(t);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        triplets.push_back({dofs[i], dofs[j],
                            me[static_cast<std::size_t>(i * n + j)] +
                                ke[static_cast<std::size_t>(i * n + j)]});
      }
    }
  }
  const int rows = space.local_dof_count();
  return la::CsrMatrix::from_triplets(rows, rows, triplets);
}

void bench_spmv(bench::BenchOutput& out, const CliArgs& args) {
  const int cells = static_cast<int>(args.get_int("spmv_cells", 10));
  const int iters = static_cast<int>(args.get_int("spmv_iters", 40));
  const int reps = static_cast<int>(args.get_int("reps", 5));
  const auto a = make_fem_matrix(cells, 2);
  const auto rows = static_cast<std::size_t>(a.rows());
  std::vector<double> x(rows), y(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    x[i] = 1.0 + 1e-3 * static_cast<double>(i % 17);
  }

  auto run = [&](la::KernelMode mode) {
    la::set_kernel_mode(mode);
    a.multiply(x, y);  // warm (and, for SELL, build the mirror)
    return best_of(reps, [&] {
             for (int i = 0; i < iters; ++i) {
               a.multiply(x, y);
             }
           }) /
           iters;
  };
  const double ref_s = run(la::KernelMode::kReference);
  const double f0 = la::spmv_work().flops();
  const double b0 = la::spmv_work().bytes();
  const double fast_s = run(la::KernelMode::kFast);
  // One multiply's worth of modeled work (counters are per-call).
  const double calls = static_cast<double>((reps + 1) * iters + 1);
  const double flops = (la::spmv_work().flops() - f0) / calls;
  const double bytes = (la::spmv_work().bytes() - b0) / calls;

#ifdef HETERO_SPMV_SELL
  const char* layout = "sell";
#else
  const char* layout = "csr";
#endif
  Table table({"layout", "rows", "nnz", "ref[s]", "fast[s]", "speedup",
               "flops", "bytes", "intensity"});
  table.add_row({layout, fmt_int(a.rows()),
                 fmt_int(static_cast<std::int64_t>(a.nonzeros())), fmt(ref_s),
                 fmt(fast_s), fmt(ref_s / fast_s), fmt(flops), fmt(bytes),
                 fmt(flops / bytes)});
  std::cout << "## SpMV (P2 mass+stiffness, " << cells << "^3 cells)\n";
  out.emit(table, "spmv");
  std::cout << "\n";
}

void bench_vec(bench::BenchOutput& out, const CliArgs& args) {
  const int n = static_cast<int>(args.get_int("vec_n", 1 << 18));
  const int iters = static_cast<int>(args.get_int("vec_iters", 40));
  const int reps = static_cast<int>(args.get_int("reps", 5));

  Table table({"op", "n", "ref[s]", "fast[s]", "speedup"});
  auto runtime = std::make_shared<simmpi::Runtime>(netsim::Topology::uniform(
      1, 1, netsim::Fabric::shared_memory(), netsim::Fabric::shared_memory()));
  runtime->run([&](simmpi::Comm& comm) {
    std::vector<la::GlobalId> touched;
    touched.reserve(static_cast<std::size_t>(n));
    for (int g = 0; g < n; ++g) {
      touched.push_back(g);
    }
    la::DistSystemBuilder builder(comm, touched);
    builder.begin_assembly();
    for (int g = 0; g < n; ++g) {
      builder.add_matrix(g, g, 1.0);  // map() requires a finalized system
    }
    builder.finalize(comm);
    la::DistVector u(builder.map()), v(builder.map()), w(builder.map()),
        z(builder.map());
    for (int i = 0; i < n; ++i) {
      u[i] = 1.0 + 1e-6 * i;
      v[i] = 2.0 - 1e-6 * i;
      w[i] = 0.5 + 1e-7 * i;
    }

    auto row = [&](const char* op, auto&& body) {
      auto run = [&](la::KernelMode mode) {
        la::set_kernel_mode(mode);
        body();  // warm
        return best_of(reps, [&] {
                 for (int i = 0; i < iters; ++i) {
                   body();
                 }
               }) /
               iters;
      };
      const double ref_s = run(la::KernelMode::kReference);
      const double fast_s = run(la::KernelMode::kFast);
      table.add_row({op, fmt_int(n), fmt(ref_s), fmt(fast_s),
                     fmt(ref_s / fast_s)});
    };

    double sink = 0.0;
    row("axpy_norm2", [&] { sink += z.axpy_norm2(comm, 0.5, u); });
    row("copy_axpy_norm2",
        [&] { sink += z.copy_axpy_norm2(comm, u, -0.25, v); });
    row("dot_pair", [&] {
      const auto [a, b] = u.dot_pair(comm, v, w);
      sink += a + b;
    });
    row("update_search_direction",
        [&] { z.update_search_direction(u, v, 0.3, 0.7); });
    row("cg_update_norm2",
        [&] { sink += la::cg_update_norm2(comm, z, 1e-3, u, w, v); });
    if (sink == 42.0) {  // defeat dead-code elimination of the sums
      std::cout << "";
    }
  });
  std::cout << "## Fused vector kernels\n";
  out.emit(table, "vec");
  std::cout << "\n";
}

void bench_assembly(bench::BenchOutput& out, const CliArgs& args) {
  const int cells = static_cast<int>(args.get_int("assembly_cells", 6));
  const int reps = static_cast<int>(args.get_int("reps", 5));
  auto& flops_c = obs::metrics().counter("fem.kernel.assembly.flops");
  auto& bytes_c = obs::metrics().counter("fem.kernel.assembly.bytes");

  Table table(
      {"order", "tets", "ref[s]", "fast[s]", "speedup", "flops", "bytes"});
  for (const int order : {1, 2}) {
    const auto mesh = mesh::build_box_mesh({cells, cells, cells});
    fem::FeSpace space(mesh, order,
                       static_cast<std::int64_t>(mesh.vertex_count()));
    fem::ElementKernel kernel(space, order == 2 ? 4 : 2);
    const int n = kernel.n();
    std::vector<double> me(static_cast<std::size_t>(n * n));
    std::vector<double> ke(static_cast<std::size_t>(n * n));
    std::vector<double> fe(static_cast<std::size_t>(n));
    const fem::SpatialFn source = [](const mesh::Vec3&) { return -6.0; };
    auto sweep = [&] {
      for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
        kernel.mass_stiffness_load(t, source, me, ke, fe);
      }
    };
    auto run = [&](la::KernelMode mode) {
      la::set_kernel_mode(mode);
      sweep();  // warm (builds the geometry cache in fast mode)
      return best_of(reps, sweep);
    };
    const double ref_s = run(la::KernelMode::kReference);
    const double f0 = flops_c.value();
    const double b0 = bytes_c.value();
    const double fast_s = run(la::KernelMode::kFast);
    const double sweeps = static_cast<double>(reps + 1);
    table.add_row({fmt_int(order),
                   fmt_int(static_cast<std::int64_t>(mesh.tet_count())),
                   fmt(ref_s), fmt(fast_s), fmt(ref_s / fast_s),
                   fmt((flops_c.value() - f0) / sweeps),
                   fmt((bytes_c.value() - b0) / sweeps)});
  }
  std::cout << "## Element assembly (fused mass+stiffness+load sweep, "
            << cells << "^3 cells)\n";
  out.emit(table, "assembly");
  std::cout << "\n";
}

/// Full direct-mode RD per-iteration host time: assembly + Dirichlet +
/// ILU0 + CG, the paper's workhorse, at p ranks with `axis` cells per rank
/// axis. The simulated ranks are threads, so host wall time measures the
/// total host work of one step regardless of core count.
double rd_step_host_s(int ranks, int axis, int steps) {
  const int per_axis = static_cast<int>(std::lround(std::cbrt(ranks)));
  apps::RdConfig config;
  config.global_cells = axis * per_axis;
  config.order = 2;
  config.compute_errors = false;
  double elapsed = 0.0;
  auto runtime = std::make_shared<simmpi::Runtime>(netsim::Topology::uniform(
      ranks, 4, netsim::Fabric::infiniband_ddr_4x(),
      netsim::Fabric::shared_memory()));
  runtime->run([&](simmpi::Comm& comm) {
    apps::RdSolver solver(comm, config);
    comm.barrier();
    const double t0 = wall_s();
    solver.run(steps);
    comm.barrier();
    if (comm.rank() == 0) {
      elapsed = wall_s() - t0;
    }
  });
  return elapsed / steps;
}

void bench_rd_direct(bench::BenchOutput& out, const CliArgs& args) {
  const int ranks = static_cast<int>(args.get_int("ranks", 27));
  const int axis = static_cast<int>(args.get_int("axis", 6));
  const int steps = static_cast<int>(args.get_int("steps", 6));
  const int reps = static_cast<int>(args.get_int("rd_reps", 2));

  Table table({"ranks", "cells", "steps", "ref[s]", "fast[s]", "speedup"});
  for (const int p : {1, ranks}) {
    auto run = [&](la::KernelMode mode) {
      la::set_kernel_mode(mode);
      double best = std::numeric_limits<double>::infinity();
      for (int r = 0; r < reps; ++r) {
        best = std::min(best, rd_step_host_s(p, axis, steps));
      }
      return best;
    };
    const double ref_s = run(la::KernelMode::kReference);
    const double fast_s = run(la::KernelMode::kFast);
    const int per_axis = static_cast<int>(std::lround(std::cbrt(p)));
    table.add_row({fmt_int(p), fmt_int(axis * per_axis), fmt_int(steps),
                   fmt(ref_s), fmt(fast_s), fmt(ref_s / fast_s)});
  }
  std::cout << "## RD direct per-iteration host time (P2, CG+ILU0, "
            << axis << " cells/rank-axis)\n";
  out.emit(table, "rd_direct");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "kernels");

  std::cout << "# Hot-path kernel microbenchmarks (host wall time, "
               "reference vs fast)\n\n";
  bench_spmv(out, args);
  bench_vec(out, args);
  bench_assembly(out, args);
  bench_rd_direct(out, args);

  la::set_kernel_mode(la::KernelMode::kFast);
  return 0;
}
