// Regenerates Table I: the capability matrix of the four target platforms,
// plus the provisioning summary ("how we addressed the missing
// capabilities" — the coloured cells of the paper's table).

#include <iostream>

#include "netsim/fabric.hpp"
#include "platform/capability_table.hpp"
#include "provision/planner.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "table1_capabilities");

  std::cout << "# Table I — specification of the test architectures\n";
  const Table table = platform::capability_table();
  out.emit(table);

  std::cout << "\n# Porting effort summary (Section VI)\n";
  Table effort({"platform", "source builds", "man-hours", "note"});
  for (const auto* spec : platform::all_platforms()) {
    const auto plan = provision::plan_provisioning(*spec);
    std::string note = "-";
    if (spec->name == "puma") {
      note = "home platform: fully provisioned";
    } else if (spec->name == "ec2") {
      note = "bare image: yum bootstrap + cloud conditioning";
    } else {
      note = "user-space source installs";
    }
    effort.add_row({spec->name, std::to_string(plan.source_builds()),
                    fmt_double(plan.total_hours(), 1), note});
  }
  out.emit(effort);

  std::cout << "\n# Interconnect models behind the 'network' row\n";
  Table fabrics({"fabric", "latency", "bandwidth", "eager limit",
                 "node injection", "oversubscription"});
  for (const auto& fabric :
       {netsim::Fabric::gigabit_ethernet(),
        netsim::Fabric::ten_gigabit_ethernet(),
        netsim::Fabric::infiniband_ddr_4x(), netsim::Fabric::shared_memory()}) {
    const auto& p = fabric.params();
    fabrics.add_row({p.name, format_seconds(p.latency_s),
                     format_bitrate(p.bandwidth_bps * 8.0),
                     format_bytes(p.eager_threshold_bytes),
                     format_bitrate(p.node_injection_bps * 8.0),
                     fmt_double(p.oversubscription, 1)});
  }
  out.emit(fabrics);
  return 0;
}
