// The standing grid benchmark, self-checking: expands a grid-matrix
// preset, evaluates it twice (single-threaded reference, then the full
// worker pool), and fails unless the two heterolab-grid-v1 reports are
// byte-identical line by line. On top of the differential gate it
// re-asserts the balanced-vs-unbalanced invariant in-process — a balanced
// skew projection never models slower than its bulk-synchronous twin — so
// the bench is a verdict, not just a timing (the remaining cross-cell
// invariants are `tools/check_bench.py --schema grid`'s job). Exits
// non-zero on any violation.
//
//   bench_grid_matrix [--matrix full|ci|smoke] [--cells N] [--seed S]
//                     [--iterations N] [--jobs N] [--csv] [--json OUT]

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "grid/matrix.hpp"
#include "grid/report.hpp"
#include "support/error.hpp"

namespace {

using namespace hetero;

std::vector<std::string> report_lines(const grid::MatrixSpec& spec,
                                      const std::vector<grid::GridCell>& cells,
                                      core::CampaignEngine& engine) {
  const auto results = grid::run_cells(engine, cells);
  std::vector<std::string> lines;
  for (const auto& record :
       grid::build_report(spec, cells, results, grid::kGridRunnerSeed)) {
    lines.push_back(record.dump());
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetero;
  try {
    const CliArgs args(argc, argv);
    bench::BenchOutput output(args, "grid_matrix");

    grid::MatrixSpec spec = grid::preset(args.get_string("matrix", "ci"));
    if (args.has("cells")) {
      spec.name = "custom";
      spec.sample_cells = args.get_int("cells", 0);
      HETERO_REQUIRE(spec.sample_cells > 0, "--cells needs at least one cell");
    }
    spec.matrix_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    spec.iterations = static_cast<int>(args.get_int("iterations", 100));
    HETERO_REQUIRE(spec.iterations > 0, "--iterations must be positive");

    const auto cells = grid::expand(spec);

    // Single-threaded reference report: the byte-identity baseline.
    std::vector<std::string> reference;
    {
      core::CampaignEngineOptions opt;
      opt.jobs = 1;
      core::CampaignEngine engine(grid::kGridRunnerSeed, opt);
      reference = report_lines(spec, cells, engine);
    }

    // Timed run on the requested (default: hardware) worker count.
    const auto started = std::chrono::steady_clock::now();
    core::CampaignEngineStats stats;
    std::vector<std::string> lines;
    {
      auto engine = bench::make_engine(args, grid::kGridRunnerSeed);
      lines = report_lines(spec, cells, engine);
      stats = engine.stats();
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();

    // Differential gate: every report line byte-identical to the
    // single-threaded reference.
    std::uint64_t diverged = 0;
    for (std::size_t i = 0; i < lines.size() || i < reference.size(); ++i) {
      const std::string* got = i < lines.size() ? &lines[i] : nullptr;
      const std::string* want = i < reference.size() ? &reference[i] : nullptr;
      if (got && want && *got == *want) continue;
      if (++diverged <= 3) {
        std::cerr << "report line " << i << " differs across jobs levels:\n"
                  << "  got  " << (got ? *got : "<missing>") << "\n  want "
                  << (want ? *want : "<missing>") << "\n";
      }
    }

    // Matrix invariants, re-derived from the cells and results directly.
    core::CampaignEngine verify_engine(grid::kGridRunnerSeed);
    const auto results = grid::run_cells(verify_engine, cells);
    std::uint64_t launched = 0, balance_violations = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!results[i].launched) continue;
      ++launched;
      if (cells[i].skewlb != "skew-balanced") continue;
      // Find the unbalanced twin: same cell but skewlb == "skew". The
      // expansion orders skew before skew-balanced within a coordinate
      // block, so scan backwards for the matching label prefix.
      for (std::size_t j = i; j-- > 0;) {
        const auto& twin = cells[j];
        if (twin.platform != cells[i].platform ||
            twin.ranks != cells[i].ranks ||
            twin.app_pair != cells[i].app_pair ||
            twin.resolution != cells[i].resolution ||
            twin.fault != cells[i].fault) {
          break;  // left the coordinate block
        }
        if (twin.skewlb == "skew" && twin.objective == cells[i].objective &&
            twin.rep == cells[i].rep && results[j].launched) {
          const double bal = results[i].iteration.total_s;
          const double unbal = results[j].iteration.total_s;
          if (bal > unbal * (1.0 + 1e-9)) {
            ++balance_violations;
            if (balance_violations <= 3) {
              std::cerr << "balanced cell " << grid::cell_label(cells[i])
                        << " modeled " << bal << " s > unbalanced twin's "
                        << unbal << " s\n";
            }
          }
          break;
        }
      }
    }

    const bool identical = diverged == 0;
    const bool pass = identical && balance_violations == 0;

    Table table({"cells", "unique", "launched", "wall[s]", "cells/s",
                 "identical", "balance_ok"});
    table.add_row(
        {std::to_string(cells.size()), std::to_string(stats.cache_misses),
         std::to_string(launched), fmt_double(wall_s, 3),
         fmt_double(wall_s > 0 ? static_cast<double>(cells.size()) / wall_s
                               : 0.0,
                    1),
         identical ? "yes" : "NO", balance_violations == 0 ? "yes" : "NO"});
    output.emit(table, "matrix");

    obs::Json summary = obs::Json::object();
    summary.set("series", "summary");
    summary.set("matrix", spec.name);
    summary.set("cells", static_cast<std::int64_t>(cells.size()));
    summary.set("unique_experiments",
                static_cast<std::int64_t>(stats.cache_misses));
    summary.set("launched", static_cast<std::int64_t>(launched));
    summary.set("diverged_lines", static_cast<std::int64_t>(diverged));
    summary.set("balance_violations",
                static_cast<std::int64_t>(balance_violations));
    summary.set("wall_s", wall_s);
    output.record(std::move(summary));

    std::cout << "\ngrid matrix " << (pass ? "PASS" : "FAIL") << ": "
              << cells.size() << " cells, " << diverged
              << " diverged line(s), " << balance_violations
              << " balance violation(s)\n";
    return pass ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
