// Ablation: the paper's availability axis (§VIII).
//
// "IaaS's provide resources immediately, while local and grid resources are
// often subject to long queue wait times - an aspect that might offset any
// additional expense." This bench combines queue wait, one-time porting
// effort, and run time into an effective time-to-solution for a
// 1000-iteration campaign at two job sizes.

#include <iostream>

#include "bench_main.hpp"
#include "core/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_availability");
  const int iterations = static_cast<int>(args.get_int("iterations", 1000));

  auto engine = bench::make_engine(args);
  for (int ranks : {64, 343}) {
    std::cout << "# Availability — RD, " << ranks << " ranks, " << iterations
              << " iterations\n";
    const Table table = core::availability_table(
        engine, perf::AppKind::kReactionDiffusion, ranks, iterations);
    out.emit(table, "ranks=" + std::to_string(ranks));
    std::cout << "\n";
  }
  std::cout << "# The cloud's minutes-scale boot time beats hour-scale "
               "queues whenever the run itself is not much longer than the "
               "wait.\n";
  return 0;
}
