// Ablation: ranks per node vs fabric quality.
//
// The paper explains EC2's comparatively mild degradation by its 16-core
// nodes: "the on-demand assembly exploits notably fewer hosts hence the
// smaller volume of data is exchanged by the 10GbE network". This sweep
// runs the RD projection at 512 ranks with 1/4/8/16 ranks per node on each
// fabric to expose exactly that effect.

#include <iostream>

#include "netsim/fabric.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_ranks_per_node");
  const int ranks = static_cast<int>(args.get_int("ranks", 512));

  std::cout << "# Ablation — ranks per node vs fabric (RD projection at "
            << ranks << " ranks, identical CPU model)\n";
  const auto model = perf::rd_model();
  apps::CpuCostModel cpu;  // reference core so only the network varies

  Table table({"fabric", "ranks/node", "nodes", "solve[s]", "total[s]"});
  const std::pair<const char*, netsim::Fabric> fabrics[] = {
      {"1GbE", netsim::Fabric::gigabit_ethernet()},
      {"10GbE", netsim::Fabric::ten_gigabit_ethernet()},
      {"IB 4X DDR", netsim::Fabric::infiniband_ddr_4x()},
  };
  for (const auto& [name, fabric] : fabrics) {
    for (int rpn : {1, 4, 8, 16}) {
      const auto topo = netsim::Topology::uniform(
          ranks, rpn, fabric, netsim::Fabric::shared_memory());
      const auto b = perf::project_iteration(model, topo, cpu, ranks);
      table.add_row({name, std::to_string(rpn), std::to_string(topo.nodes()),
                     fmt_double(b.solve_s, 2), fmt_double(b.total_s, 2)});
    }
  }
  out.emit(table);
  std::cout << "\n# Fatter nodes -> fewer NICs sharing the same traffic -> "
               "less fabric contention; the effect is strongest on the "
               "oversubscribed Ethernet fabrics.\n";
  return 0;
}
