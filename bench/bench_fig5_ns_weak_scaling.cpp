// Regenerates Figure 5: weak scaling of the Navier-Stokes 3-D simulation
// (Ethier-Steinman problem), 20^3 elements per process, on the four
// platforms. The NS systems couple four fields and the GMRES solve performs
// many latency-bound reductions per iteration, so — as the paper reports —
// "this test does not scale well in any range", with lagrange (InfiniBand)
// degrading least and EC2 competitive at small process counts.

#include <iostream>

#include "core/report.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "fig5_ns_weak_scaling");
  const int cells = static_cast<int>(args.get_int("cells", 20));

  auto engine = bench::make_engine(args);
  std::cout << "# Figure 5 — weak scaling of the Navier-Stokes 3-D "
               "simulation (initial mesh "
            << cells << "^3 per process)\n";
  const auto procs = core::paper_process_counts();
  const Table table =
      core::weak_scaling_figure(engine, perf::AppKind::kNavierStokes, procs);
  out.emit(table);

  // The paper's qualitative claims, checked numerically on the series.
  core::Experiment small_ec2;
  small_ec2.app = perf::AppKind::kNavierStokes;
  small_ec2.platform = "ec2";
  small_ec2.ranks = 8;
  core::Experiment small_puma = small_ec2;
  small_puma.platform = "puma";
  const auto re = engine.run(small_ec2);
  const auto rp = engine.run(small_puma);
  std::cout << "\n# At 8 processes: ec2 " << fmt_double(re.iteration.total_s, 2)
            << " s/iter vs puma " << fmt_double(rp.iteration.total_s, 2)
            << " s/iter — \"for computationally intensive tasks ... EC2 "
               "performance ... can considerably improve time to completion "
               "in comparison to the department class computing clusters\"\n";
  return 0;
}
