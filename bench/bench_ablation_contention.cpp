// Sensitivity analysis: the fabric oversubscription constant.
//
// docs/calibration.md flags oversubscription as the least certain model
// constant. This sweep shows how the 1GbE weak-scaling shape (the paper's
// ellipse curve) responds to it: with 0 the curve stays flat (pure LogGP
// costs are negligible at these message sizes), and the paper's observed
// collapse beyond 125 processes needs a value in the tens — evidence that
// switch-tier contention, not link speed, drove the measured behaviour.

#include <iostream>

#include "netsim/fabric.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_contention");

  std::cout << "# Sensitivity — 1GbE oversubscription vs RD weak-scaling "
               "shape (ellipse CPU model, 4 ranks/node)\n";
  const auto model = perf::rd_model();
  const auto cpu = platform::ellipse().cpu_model();

  Table table({"oversub", "p=1", "p=64", "p=125", "p=343", "p=512",
               "degradation 1->512"});
  for (double oversub : {0.0, 6.0, 12.0, 24.0, 48.0}) {
    netsim::FabricParams params =
        netsim::Fabric::gigabit_ethernet().params();
    params.oversubscription = oversub;
    const netsim::Fabric fabric(params);
    std::vector<std::string> row{fmt_double(oversub, 0)};
    double t1 = 0.0;
    double t512 = 0.0;
    for (int p : {1, 64, 125, 343, 512}) {
      const auto topo = netsim::Topology::uniform(
          p, 4, fabric, netsim::Fabric::shared_memory());
      const double t =
          perf::project_iteration(model, topo, cpu, p).total_s;
      row.push_back(fmt_double(t, 2));
      if (p == 1) {
        t1 = t;
      }
      if (p == 512) {
        t512 = t;
      }
    }
    row.push_back(fmt_double(t512 / t1, 2));
    table.add_row(std::move(row));
  }
  out.emit(table);
  std::cout << "\n# The committed value (24) reproduces the paper's "
               "post-125 collapse; without contention the 1GbE curve would "
               "have stayed flat, contradicting the measurement.\n";
  return 0;
}
