// Chaos soak of the supervised multi-process backend: a >= 500-experiment
// modeled campaign runs on a worker pool with crash/hang/exit faults
// injected at 5% each, and every surviving row must be byte-identical to
// a fault-free single-process reference — the paper's campaigns only
// tolerate preemptible and flaky resources if retries never change
// results. Quarantined poison jobs (several chaos kills in a row) are the
// one sanctioned difference, and each must carry an explained failure.
// Exits non-zero on any mismatch, unexplained failure, or leaked child.
//
//   bench_proc_chaos_soak [--experiments N] [--workers W] [--chaos SPEC]
//                         [--max-crashes K] [--seed S] [--csv] [--json OUT]

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "core/experiment.hpp"
#include "proc/supervisor.hpp"
#include "support/error.hpp"
#include "svc/result_codec.hpp"

namespace {

using namespace hetero;

/// Deterministic modeled sweep across platforms, apps, rank counts,
/// resolutions, and seeds — at least `count` distinct descriptors, so the
/// engine's memoizer cannot collapse the batch.
std::vector<core::Experiment> soak_campaign(int count) {
  std::vector<core::Experiment> batch;
  static const char* kPlatforms[] = {"puma", "ec2", "lagrange"};
  int i = 0;
  while (static_cast<int>(batch.size()) < count) {
    core::Experiment e;
    e.platform = kPlatforms[i % 3];
    e.app = (i % 2 == 0) ? perf::AppKind::kReactionDiffusion
                         : perf::AppKind::kNavierStokes;
    static const int kRanks[] = {1, 8, 27, 64, 125};
    e.ranks = kRanks[(i / 3) % 5];
    e.cells_per_rank_axis = 10 + 10 * ((i / 15) % 2);
    e.seed = 42 + static_cast<std::uint64_t>(i / 30);
    batch.push_back(e);
    ++i;
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetero;
  try {
    const CliArgs args(argc, argv);
    bench::BenchOutput output(args, "proc_chaos_soak");
    const int count = static_cast<int>(args.get_int("experiments", 500));
    const int workers = static_cast<int>(args.get_int("workers", 4));
    const int max_crashes = static_cast<int>(args.get_int("max-crashes", 3));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const std::string spec =
        args.get_string("chaos", "crash:0.05,hang:0.05,exit:0.05");
    HETERO_REQUIRE(count > 0 && workers > 0 && max_crashes > 0,
                   "need positive --experiments, --workers, --max-crashes");

    const auto batch = soak_campaign(count);

    // Fault-free single-process reference: the byte-identity baseline.
    std::vector<std::string> reference;
    {
      core::CampaignEngine plain(seed);
      for (const auto& r : plain.run_batch(batch)) {
        reference.push_back(svc::encode_result(r));
      }
    }

    // The soak: worker pool with chaos injected, tight heartbeat so hung
    // workers are reaped in fractions of a second and the soak stays fast.
    proc::ProcOptions popt;
    popt.workers = workers;
    popt.chaos = proc::parse_chaos_spec(spec);
    popt.max_crashes_per_job = max_crashes;
    popt.heartbeat_interval_s = 0.02;
    popt.heartbeat_timeout_s = 0.3;
    popt.respawn_backoff_base_s = 0.01;
    popt.respawn_backoff_cap_s = 0.05;
    const auto started = std::chrono::steady_clock::now();
    proc::ProcStats stats;
    std::vector<core::ExperimentResult> chaotic;
    {
      proc::Supervisor supervisor(seed, popt);
      core::CampaignEngineOptions eopt;
      eopt.executor = &supervisor;
      core::CampaignEngine engine(seed, eopt);
      chaotic = engine.run_batch(batch);
      stats = supervisor.stats();
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();

    // Verdict: every row byte-identical, except quarantined rows, which
    // must be failed results naming the repeated crash.
    std::uint64_t identical = 0, quarantined = 0, violations = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::string encoded = svc::encode_result(chaotic[i]);
      if (encoded == reference[i]) {
        ++identical;
        continue;
      }
      const bool explained =
          !chaotic[i].launched &&
          chaotic[i].failure_reason.find("quarantined") != std::string::npos;
      if (explained) {
        ++quarantined;
      } else {
        ++violations;
        std::cerr << "row " << i << " differs and is not a quarantine:\n"
                  << "  got  " << encoded << "\n  want " << reference[i]
                  << "\n";
      }
    }

    // The supervisor must not leak children past its destructor.
    const bool no_children =
        ::waitpid(-1, nullptr, WNOHANG) == -1 && errno == ECHILD;
    if (!no_children) {
      std::cerr << "supervisor destructor left live child processes\n";
    }

    Table table({"experiments", "workers", "chaos", "identical",
                 "quarantined", "violations", "wall[s]"});
    table.add_row({std::to_string(batch.size()), std::to_string(workers),
                   spec, std::to_string(identical),
                   std::to_string(quarantined), std::to_string(violations),
                   fmt_double(wall_s, 2)});
    output.emit(table, "soak");

    Table fault_table({"crashes", "hung", "respawns", "redispatches",
                       "shard_replays", "dispatched"});
    fault_table.add_row(
        {std::to_string(stats.worker_crashes),
         std::to_string(stats.hung_workers), std::to_string(stats.respawns),
         std::to_string(stats.redispatches),
         std::to_string(stats.shard_replays),
         std::to_string(stats.jobs_dispatched)});
    output.emit(fault_table, "faults");

    obs::Json summary = obs::Json::object();
    summary.set("series", "summary");
    summary.set("experiments", static_cast<std::int64_t>(batch.size()));
    summary.set("identical", static_cast<std::int64_t>(identical));
    summary.set("quarantined", static_cast<std::int64_t>(quarantined));
    summary.set("violations", static_cast<std::int64_t>(violations));
    summary.set("worker_crashes",
                static_cast<std::int64_t>(stats.worker_crashes));
    summary.set("no_leaked_children", no_children ? 1 : 0);
    summary.set("wall_s", wall_s);
    output.record(std::move(summary));

    const bool pass = violations == 0 && no_children;
    std::cout << "\nsoak " << (pass ? "PASS" : "FAIL") << ": " << identical
              << " byte-identical, " << quarantined << " quarantined, "
              << violations << " violations over " << stats.worker_crashes
              << " worker deaths\n";
    return pass ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
