// Regenerates Figure 4: weak scaling of the RD 3-D simulation.
// 20^3 elements per MPI process; process counts 1, 8, 27, ..., 1000 on the
// four platforms; per-iteration assembly / preconditioner / solve / total
// times. Platform launch failures appear exactly where the paper hit them
// (puma's 128-core ceiling, ellipse above 512 ranks, lagrange above 343).
//
// Flags: --csv          emit CSV instead of the aligned table
//        --cells N      elements per rank per axis (default 20)
//        --jobs N       evaluate experiments on N worker threads; the
//                       table (and the JSONL) is byte-identical at any N
//        --validate     additionally run a small direct (thread-level)
//                       execution of the real solver and print its phase
//                       times next to the model's at the same size.

#include <iostream>

#include "bench_main.hpp"
#include "core/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "fig4_rd_weak_scaling");
  const int cells = static_cast<int>(args.get_int("cells", 20));

  auto engine = bench::make_engine(args);
  std::cout << "# Figure 4 — weak scaling of the RD 3-D simulation "
               "(initial mesh "
            << cells << "^3 per process)\n";
  const auto procs = core::paper_process_counts();
  Table table({"platform", "procs", "assembly[s]", "precond[s]", "solve[s]",
               "total[s]", "iters", "status"});
  std::vector<core::Experiment> batch;
  batch.reserve(platform::all_platforms().size() * procs.size());
  for (const auto* spec : platform::all_platforms()) {
    for (int p : procs) {
      core::Experiment e;
      e.app = perf::AppKind::kReactionDiffusion;
      e.platform = spec->name;
      e.ranks = p;
      e.cells_per_rank_axis = cells;
      batch.push_back(e);
    }
  }
  const auto results = engine.run_batch(batch);
  std::size_t i = 0;
  for (const auto* spec : platform::all_platforms()) {
    for (int p : procs) {
      const auto& r = results[i++];
      if (!r.launched) {
        table.add_row({spec->name, std::to_string(p), "-", "-", "-", "-",
                       "-", "FAILED: " + r.failure_reason});
        continue;
      }
      table.add_row({spec->name, std::to_string(p),
                     fmt_double(r.iteration.assembly_s, 3),
                     fmt_double(r.iteration.preconditioner_s, 3),
                     fmt_double(r.iteration.solve_s, 3),
                     fmt_double(r.iteration.total_s, 2),
                     fmt_double(r.iteration.solver_iterations, 0), "ok"});
    }
  }
  out.emit(table);

  if (args.get_bool("validate", false)) {
    std::cout << "\n# Direct-run validation (real solver through the "
                 "simulated MPI, 4^3 cells per rank)\n";
    Table v({"platform", "procs", "mode", "assembly[s]", "precond[s]",
             "solve[s]", "nodal error"});
    for (int p : {1, 8}) {
      core::Experiment e;
      e.platform = "puma";
      e.ranks = p;
      e.cells_per_rank_axis = 4;
      e.mode = core::Mode::kDirect;
      e.direct_steps = 3;
      const auto rd = engine.run(e);
      v.add_row({"puma", std::to_string(p), "direct",
                 fmt_double(rd.iteration.assembly_s, 3),
                 fmt_double(rd.iteration.preconditioner_s, 3),
                 fmt_double(rd.iteration.solve_s, 3),
                 fmt_double(rd.nodal_error, 10)});
      e.mode = core::Mode::kModeled;
      const auto rm = engine.run(e);
      v.add_row({"puma", std::to_string(p), "modeled",
                 fmt_double(rm.iteration.assembly_s, 3),
                 fmt_double(rm.iteration.preconditioner_s, 3),
                 fmt_double(rm.iteration.solve_s, 3), "-"});
    }
    v.render_text(std::cout);
    out.record(v, "validate");
  }
  return 0;
}
