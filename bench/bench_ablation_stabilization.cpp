// Ablation: Brezzi-Pitkaranta pressure stabilization of the equal-order
// P1/P1 Navier-Stokes discretization (the substitution DESIGN.md makes for
// the paper's Q2/Q1 elements).
//
// Too little stabilization leaves the saddle point ill-conditioned (GMRES
// struggles, pressure oscillates); too much pollutes the velocity. Direct
// runs of the real solver across delta values expose the usable window.

#include <iostream>

#include "apps/ns_solver.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_stabilization");
  const int cells = static_cast<int>(args.get_int("cells", 4));

  std::cout << "# Ablation — pressure stabilization delta (NS direct run, "
               "4 ranks, " << cells << "^3 cells, 2 steps)\n";
  Table table({"delta", "GMRES iters", "converged", "max |u - u_exact|",
               "L2(u1) error"});
  for (double delta : {0.005, 0.02, 0.05, 0.2, 1.0}) {
    simmpi::Runtime runtime(platform::lagrange().topology(4));
    int iters = 0;
    bool converged = false;
    double nodal = 0.0;
    double l2 = 0.0;
    runtime.run([&](simmpi::Comm& comm) {
      apps::NsConfig config;
      config.global_cells = cells;
      config.stabilization = delta;
      apps::NsSolver solver(comm, config);
      const auto records = solver.run(2);
      if (comm.rank() == 0) {
        iters = records.back().solver_iterations;
        converged = records.back().solver_converged;
        nodal = records.back().nodal_error;
        l2 = records.back().l2_error;
      }
    });
    table.add_row({fmt_double(delta, 3), std::to_string(iters),
                   converged ? "yes" : "no", fmt_double(nodal, 5),
                   fmt_double(l2, 6)});
  }
  out.emit(table);
  return 0;
}
