#pragma once

/// \file bench_main.hpp
/// Shared output plumbing for the bench binaries. Every main funnels its
/// tables through a BenchOutput, which renders to stdout (aligned text, or
/// CSV under `--csv`) and — when `--json <path>` is given — also appends
/// one schema-versioned JSONL record per table row, the machine-readable
/// results that `tools/check_bench.py` gates CI on.

#include <iostream>
#include <string>
#include <utility>

#include "core/campaign_engine.hpp"
#include "obs/bench_io.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace hetero::bench {

/// Engine every bench evaluates experiments through: `--jobs N` (or
/// HETEROLAB_JOBS, or the hardware thread count) workers, memoizing, with
/// output byte-identical at any jobs level.
inline core::CampaignEngine make_engine(const CliArgs& args,
                                        std::uint64_t seed = 42) {
  core::CampaignEngineOptions opt;
  opt.jobs = static_cast<int>(args.get_int("jobs", 0));
  return core::CampaignEngine(seed, opt);
}

class BenchOutput {
 public:
  /// `bench_name` becomes the "bench" field of every JSONL record.
  BenchOutput(const CliArgs& args, std::string bench_name)
      : csv_(args.get_bool("csv", false)),
        reporter_(args, std::move(bench_name)) {}

  bool csv() const { return csv_; }

  /// Renders the table to stdout and records its rows for the JSONL report.
  /// `series` tags the records of benches that emit several tables.
  void emit(const Table& table, const std::string& series = "") {
    if (csv_) {
      table.render_csv(std::cout);
    } else {
      table.render_text(std::cout);
    }
    reporter_.add_table(table, series);
  }

  /// Records table rows for the JSONL report without printing (for
  /// supplementary tables the text output renders differently).
  void record(const Table& table, const std::string& series = "") {
    reporter_.add_table(table, series);
  }

  /// Records one hand-built datapoint (non-tabular results).
  void record(obs::Json record) { reporter_.add_record(std::move(record)); }

 private:
  bool csv_;
  obs::BenchReporter reporter_;
};

}  // namespace hetero::bench
