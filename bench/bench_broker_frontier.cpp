// Broker frontier bench: the automated platform selection the paper's
// §VIII leaves as future work, run for both applications at 10^6 total
// elements. Emits the recommended deployment per objective and the full
// time/cost Pareto frontier, then asserts the paper-consistent sanity
// checks: the pure-time winner at large p is lagrange (the InfiniBand
// machine, the paper's fastest per-iteration platform), and the low-cost
// winners are puma or an EC2 spot strategy (the cheap ends of §VII-D).

#include <iostream>

#include "bench_main.hpp"
#include "broker/broker.hpp"
#include "support/cli.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "broker_frontier");

  bool sane = true;
  broker::Broker advisor(42);
  for (const auto app : {perf::AppKind::kReactionDiffusion,
                         perf::AppKind::kNavierStokes}) {
    const char* app_name =
        app == perf::AppKind::kReactionDiffusion ? "RD" : "NS";
    broker::JobRequest request;
    request.app = app;
    request.total_elements = 1000000;
    request.iterations = 100;

    std::cout << "# " << app_name
              << " at 10^6 total elements, 100 iterations\n";
    for (const auto& objective :
         {broker::min_time(), broker::min_cost(),
          broker::min_effective_time()}) {
      const auto rec = advisor.recommend(request, objective);
      if (!rec.has_winner()) {
        std::cout << "objective " << objective.name
                  << ": no feasible candidate\n";
        sane = false;
        continue;
      }
      const auto& w = rec.winner();
      std::cout << "objective " << objective.name << ": "
                << w.candidate.label() << " (run "
                << format_seconds(w.run_s) << ", effective "
                << format_seconds(w.effective_s) << ", "
                << fmt_usd(w.cost_usd) << ")\n";
      if (objective.name == "time" && w.candidate.platform != "lagrange") {
        std::cout << "  !! expected the pure-time winner to be lagrange "
                     "(IB), got " << w.candidate.platform << "\n";
        sane = false;
      }
      if (objective.name == "cost") {
        const bool cheap_winner =
            w.candidate.platform == "puma" ||
            (w.candidate.platform == "ec2" &&
             w.candidate.strategy != broker::Ec2Strategy::kOnDemand);
        if (!cheap_winner) {
          std::cout << "  !! expected the low-cost winner to be puma or an "
                       "EC2 spot strategy, got " << w.candidate.label()
                    << "\n";
          sane = false;
        }
      }
    }

    const auto rec =
        advisor.recommend(request, broker::min_effective_time());
    std::cout << "\n";
    const Table frontier = broker::frontier_table(rec);
    out.emit(frontier, app_name);
    std::cout << "\n";
  }

  std::cout << (sane ? "# sanity checks passed: time winner lagrange (IB), "
                       "cost winners puma/EC2-spot\n"
                     : "# SANITY CHECK FAILED\n");
  return sane ? 0 : 1;
}
