// Availability distributions: queue-wait histograms per platform.
//
// The paper's summary argues that the cloud's immediate availability "might
// offset any additional expense" against hour-scale local/grid queues.
// This bench samples each scheduler's wait model and prints the
// distribution (log-scale percentiles + ASCII histogram), making the
// qualitative availability row of Table I quantitative.

#include <iostream>

#include "bench_main.hpp"
#include "platform/platform_spec.hpp"
#include "sched/scheduler.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "queue_waits");
  const int ranks = static_cast<int>(args.get_int("ranks", 64));
  const int samples = static_cast<int>(args.get_int("samples", 2000));

  std::cout << "# Queue-wait distributions (" << ranks << "-rank jobs, "
            << samples << " submissions per platform)\n\n";
  Table table({"platform", "p50", "p90", "p99", "mean"});
  for (const auto* spec : platform::all_platforms()) {
    auto scheduler = sched::make_scheduler(*spec);
    Rng rng(2012);
    std::vector<double> waits;
    SampleStats stats;
    waits.reserve(static_cast<std::size_t>(samples));
    for (int i = 0; i < samples; ++i) {
      const auto out = scheduler->submit({ranks, 3600.0}, rng);
      waits.push_back(out.wait_s);
      stats.add(out.wait_s);
    }
    table.add_row({spec->name, format_seconds(percentile(waits, 0.5)),
                   format_seconds(percentile(waits, 0.9)),
                   format_seconds(percentile(waits, 0.99)),
                   format_seconds(stats.mean())});
    if (spec->name == "lagrange" || spec->name == "ec2") {
      std::cout << "## " << spec->name << " wait histogram (minutes)\n";
      Histogram h(0.0, spec->name == "ec2" ? 15.0 : 2400.0, 12);
      for (double w : waits) {
        h.add(w / 60.0);
      }
      std::cout << h.render(36) << "\n";
    }
  }
  out.emit(table);
  return 0;
}
