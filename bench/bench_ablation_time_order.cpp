// Ablation: time discretization order (the paper's BDF2 choice).
//
// The RD exact solution t^2 |x|^2 is quadratic in time, so BDF2 reproduces
// it to solver tolerance while BDF1 commits an O(dt) error — and halving dt
// halves it. Direct runs of the real solver demonstrate both, justifying
// the paper's second-order scheme.

#include <iostream>

#include "apps/rd_solver.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_time_order");

  std::cout << "# Ablation — BDF order on the RD exactness oracle "
               "(direct run, 8 ranks, 6^3 cells, 4 steps)\n";
  Table table({"scheme", "dt", "max nodal error", "exact?"});
  auto run_case = [&](int order, double dt) {
    simmpi::Runtime runtime(platform::puma().topology(8));
    double error = 0.0;
    runtime.run([&](simmpi::Comm& comm) {
      apps::RdConfig config;
      config.global_cells = 6;
      config.time_order = order;
      config.dt = dt;
      apps::RdSolver solver(comm, config);
      const auto records = solver.run(4);
      if (comm.rank() == 0) {
        error = records.back().nodal_error;
      }
    });
    table.add_row({order == 2 ? "BDF2" : "BDF1", fmt_double(dt, 3),
                   fmt_double(error, 10), error < 1e-7 ? "yes" : "no"});
    return error;
  };
  run_case(2, 0.1);
  run_case(2, 0.05);
  const double e1 = run_case(1, 0.1);
  const double e2 = run_case(1, 0.05);
  out.emit(table);
  std::cout << "\n# BDF1 error ratio for dt halving: "
            << fmt_double(e1 / e2, 2)
            << " (~2 confirms first order; BDF2 is exact on this solution)\n";
  return 0;
}
