// Load-balancing ablation: the intra-platform-heterogeneity question the
// per-platform speed model cannot answer — when a hashed fraction of ranks
// runs its compute at 2x cost (binned CPUs, noisy hypervisor hosts), how
// much of the lost time does capacity-weighted balancing win back?
//
// Two series share one JSONL report:
//   * "modeled": analytic projections on puma at 1/8/27 ranks, crossing
//     {no skew, 2x slow cores on a hashed quarter of ranks} with
//     {unbalanced, perfectly balanced}. Unbalanced steps wait for the
//     slowest rank (slowdown = max factor); balanced shares proportional
//     to speed run at the harmonic mean (docs/load_balancing.md). The
//     headline gate: at 27 ranks under 2x skew, balancing beats
//     no-balancing >= 1.2x on modeled total time.
//   * "direct": real simulated-MPI RD runs at 8 ranks, crossing skew with
//     the live balancer (threshold 1.1, repartition and diffuse modes).
//     Gates: the calm balanced run is *bitwise* the calm unbalanced run
//     (observing step times never perturbs numerics); skewed balanced
//     runs rebalance at least once and still pass the exact-solution
//     oracle.
//
// CI byte-diffs the JSONL across --jobs levels and validates it against
// bench/baselines/load_balance.json.

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "core/experiment.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "resil/skew_plan.hpp"
#include "support/hash.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_load_balance");
  auto engine = bench::make_engine(args);

  // Mirror the runner's skew-plan derivation (experiment.cpp) so the
  // analytic cells reproduce the engine's modeled results bit for bit:
  // the engine seed is make_engine's default, the experiment seed is 1.
  const std::uint64_t runner_seed = 42;
  const std::uint64_t experiment_seed = 1;

  resil::SkewSpec skew_on;
  skew_on.slow_core_fraction = 0.25;
  skew_on.slow_core_factor = 2.0;

  auto plan_for = [&](bool skewed) {
    const std::uint64_t skew_seed =
        hash_combine(hash_combine(0x736b6577ULL /* "skew" */, runner_seed),
                     experiment_seed);
    return resil::SkewPlan(skewed ? skew_on : resil::SkewSpec{}, skew_seed,
                           "puma");
  };

  // --- modeled series: analytic unbalanced vs balanced projections -------
  struct ModeledCell {
    int ranks = 0;
    bool skewed = false;
    bool balanced = false;
    double slowdown = 1.0;
    double total_s = 0.0;
  };

  const platform::PlatformSpec& puma = platform::platform_by_name("puma");
  const perf::ModelConfig model = perf::rd_model();
  std::vector<ModeledCell> modeled;
  for (const int ranks : {1, 8, 27}) {
    for (const bool skewed : {false, true}) {
      for (const bool balanced : {false, true}) {
        const resil::SkewPlan plan = plan_for(skewed);
        std::vector<double> factors;
        for (int r = 0; r < ranks; ++r) {
          factors.push_back(plan.mean_factor(r));
        }
        ModeledCell cell;
        cell.ranks = ranks;
        cell.skewed = skewed;
        cell.balanced = balanced;
        cell.slowdown =
            balanced
                ? perf::skew_slowdown_balanced(std::span<const double>(factors))
                : perf::skew_slowdown_unbalanced(
                      std::span<const double>(factors));
        apps::CpuCostModel cpu = puma.cpu_model();
        cpu.speed_factor /= cell.slowdown;
        cell.total_s =
            perf::project_iteration(model, puma.topology(ranks), cpu, ranks)
                .total_s;
        modeled.push_back(cell);
      }
    }
  }

  Table modeled_table({"ranks", "skew", "balanced", "slowdown", "total[s]"});
  for (const auto& c : modeled) {
    modeled_table.add_row({std::to_string(c.ranks), c.skewed ? "on" : "off",
                           c.balanced ? "on" : "off", fmt_double(c.slowdown, 6),
                           fmt_double(c.total_s, 6)});
  }
  std::cout << "# modeled RD on puma, 20^3 cells/rank; skew = 2x slow cores "
               "on a hashed quarter of ranks\n";
  out.emit(modeled_table, "modeled");

  auto modeled_cell = [&](int ranks, bool skewed,
                          bool balanced) -> const ModeledCell& {
    for (const auto& c : modeled) {
      if (c.ranks == ranks && c.skewed == skewed && c.balanced == balanced) {
        return c;
      }
    }
    throw Error("bench: missing modeled cell");
  };

  // --- direct series: live balancer on the simulated-MPI RD runs ---------
  struct DirectCell {
    bool skewed = false;
    bool balanced = false;
    std::string mode = "off";
    core::Experiment experiment;
    core::ExperimentResult result;
  };

  auto make_direct = [&](bool skewed, bool balanced, const std::string& mode) {
    core::Experiment e;
    e.app = perf::AppKind::kReactionDiffusion;
    e.platform = "puma";
    e.ranks = 8;
    e.cells_per_rank_axis = 4;
    e.mode = core::Mode::kDirect;
    e.direct_steps = 12;
    e.seed = experiment_seed;
    if (skewed) {
      e.skew = skew_on;
    }
    if (balanced) {
      e.balance.enabled = true;
      e.balance.threshold = 1.1;
      e.balance.mode = mode;
    }
    return e;
  };

  std::vector<DirectCell> direct;
  for (const auto& [skewed, balanced, mode] :
       std::vector<std::tuple<bool, bool, std::string>>{
           {false, false, "off"},
           {false, true, "repartition"},
           {true, false, "off"},
           {true, true, "repartition"},
           {true, true, "diffuse"}}) {
    DirectCell cell;
    cell.skewed = skewed;
    cell.balanced = balanced;
    cell.mode = mode;
    cell.experiment = make_direct(skewed, balanced, mode);
    direct.push_back(cell);
  }
  engine.parallel_for(direct.size(), [&](std::size_t i) {
    direct[i].result = engine.run(direct[i].experiment);
  });

  Table direct_table({"skew", "mode", "steps", "checks", "rebalances",
                      "imbalance", "nodal_error", "effective[s]",
                      "solver_iters"});
  for (const auto& c : direct) {
    const auto& r = c.result;
    direct_table.add_row(
        {c.skewed ? "on" : "off", c.mode,
         std::to_string(c.experiment.direct_steps),
         std::to_string(r.balance.checks), std::to_string(r.balance.rebalances),
         fmt_double(r.balance.last_imbalance, 6),
         fmt_double(r.nodal_error, 12),
         fmt_double(r.iteration.total_s * c.experiment.direct_steps, 6),
         fmt_double(r.iteration.solver_iterations, 6)});
  }
  std::cout << "\n# direct RD on puma, 8 ranks, 4^3 cells/rank, 12 steps; "
               "balance threshold 1.1\n";
  out.emit(direct_table, "direct");

  auto direct_cell = [&](bool skewed, const std::string& mode) -> DirectCell& {
    for (auto& c : direct) {
      if (c.skewed == skewed && c.mode == mode) {
        return c;
      }
    }
    throw Error("bench: missing direct cell");
  };

  // --- sanity checks ------------------------------------------------------
  bool sane = true;

  // Headline gate: at 27 ranks under 2x skew, balancing wins >= 1.2x of
  // modeled total time.
  const ModeledCell& m27u = modeled_cell(27, true, false);
  const ModeledCell& m27b = modeled_cell(27, true, true);
  const double win = m27u.total_s / m27b.total_s;
  std::cout << "\n# modeled balancing win at 27 ranks under 2x skew: "
            << fmt_double(win, 4) << "x\n";
  if (!(win >= 1.2)) {
    std::cout << "!! balancing should win >= 1.2x of modeled total time at "
                 "27 ranks under 2x skew (got "
              << fmt_double(win, 4) << "x)\n";
    sane = false;
  }

  // Zero-skew modeled cells: balancing a uniform machine is a no-op, so
  // balanced and unbalanced totals must be *exactly* equal.
  for (const int ranks : {1, 8, 27}) {
    const ModeledCell& u = modeled_cell(ranks, false, false);
    const ModeledCell& b = modeled_cell(ranks, false, true);
    if (u.total_s != b.total_s || u.slowdown != 1.0 || b.slowdown != 1.0) {
      std::cout << "!! zero-skew modeled cells must match bitwise at "
                << ranks << " ranks\n";
      sane = false;
    }
  }

  // The engine's modeled path uses the same plan and the same unbalanced
  // slowdown: its projection must equal the analytic cell bit for bit.
  {
    core::Experiment e;
    e.app = perf::AppKind::kReactionDiffusion;
    e.platform = "puma";
    e.ranks = 27;
    e.cells_per_rank_axis = model.cells_per_rank_axis;
    e.skew = skew_on;
    e.seed = experiment_seed;
    const core::ExperimentResult r = engine.run(e);
    if (r.iteration.total_s != m27u.total_s) {
      std::cout << "!! engine modeled total ("
                << fmt_double(r.iteration.total_s, 9)
                << " s) diverged from the analytic unbalanced cell ("
                << fmt_double(m27u.total_s, 9) << " s)\n";
      sane = false;
    }
  }

  // Calm direct runs: turning the balancer on must not perturb numerics —
  // it checks but never rebalances, and the oracle errors are bitwise.
  DirectCell& calm_off = direct_cell(false, "off");
  DirectCell& calm_on = direct_cell(false, "repartition");
  if (calm_on.result.balance.rebalances != 0 ||
      calm_on.result.balance.checks <= 0) {
    std::cout << "!! the calm balanced run should check but never rebalance "
                 "(checks "
              << calm_on.result.balance.checks << ", rebalances "
              << calm_on.result.balance.rebalances << ")\n";
    sane = false;
  }
  if (calm_on.result.nodal_error != calm_off.result.nodal_error ||
      calm_on.result.iteration.solver_iterations !=
          calm_off.result.iteration.solver_iterations) {
    std::cout << "!! the calm balanced run must be bitwise the calm "
                 "unbalanced run\n";
    sane = false;
  }

  // Skew really costs time in the live runs.
  DirectCell& skew_off_bal_off = calm_off;
  DirectCell& skew_on_bal_off = direct_cell(true, "off");
  if (skew_on_bal_off.result.iteration.total_s <=
      1.2 * skew_off_bal_off.result.iteration.total_s) {
    std::cout << "!! 2x skew should slow the unbalanced direct run by well "
                 "over 1.2x\n";
    sane = false;
  }

  // Skewed balanced runs rebalance and still pass the oracle, in both
  // balancing modes.
  for (const char* mode : {"repartition", "diffuse"}) {
    DirectCell& c = direct_cell(true, mode);
    if (c.result.balance.rebalances < 1) {
      std::cout << "!! the skewed " << mode << " run never rebalanced\n";
      sane = false;
    }
    if (!(c.result.nodal_error < 1e-8) || !c.result.solver_converged) {
      std::cout << "!! the skewed " << mode
                << " run should still pass the exact-solution oracle (nodal "
                << fmt_double(c.result.nodal_error, 12) << ")\n";
      sane = false;
    }
  }

  std::cout << (sane ? "\n# sanity checks passed: balancing wins back the "
                       "modeled skew loss and never perturbs calm runs\n"
                     : "\n# SANITY CHECK FAILED\n");
  return sane ? 0 : 1;
}
