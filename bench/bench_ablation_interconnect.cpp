// Ablation: what if the home cluster had a better network?
//
// The paper concludes that "a modern local computing cluster, with an
// efficient interconnection network will outperform an on-demand assembly".
// This what-if swaps puma's 1GbE for 10GbE and InfiniBand while keeping its
// Opteron cores, and compares the resulting RD weak-scaling curve against
// the real ec2 model — quantifying how much of the platform gap is *network*
// and how much is CPU generation.

#include <iostream>

#include "netsim/fabric.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_interconnect");

  std::cout << "# Ablation — puma's Opteron nodes behind different "
               "fabrics (RD weak scaling)\n";
  const auto model = perf::rd_model();
  const auto cpu = platform::puma().cpu_model();

  Table table({"fabric", "procs", "solve[s]", "total[s]"});
  const std::pair<const char*, netsim::Fabric> fabrics[] = {
      {"1GbE (real puma)", netsim::Fabric::gigabit_ethernet()},
      {"10GbE", netsim::Fabric::ten_gigabit_ethernet()},
      {"IB 4X DDR", netsim::Fabric::infiniband_ddr_4x()},
  };
  for (const auto& [name, fabric] : fabrics) {
    for (int p : {1, 27, 64, 125}) {
      const auto topo = netsim::Topology::uniform(
          p, platform::puma().cores_per_node(), fabric,
          netsim::Fabric::shared_memory());
      const auto b = perf::project_iteration(model, topo, cpu, p);
      table.add_row({name, std::to_string(p), fmt_double(b.solve_s, 2),
                     fmt_double(b.total_s, 2)});
    }
  }
  out.emit(table);

  // Reference: the real ec2 at 125 ranks (modern CPU + 10GbE).
  const auto& ec2 = platform::ec2();
  const auto b =
      perf::project_iteration(model, ec2.topology(125), ec2.cpu_model(), 125);
  std::cout << "\n# ec2 (Xeon E5 + 10GbE) at 125 procs: "
            << fmt_double(b.total_s, 2)
            << " s/iter — an IB-upgraded puma closes the *scaling* gap but "
               "not the CPU-generation gap.\n";
  return 0;
}
