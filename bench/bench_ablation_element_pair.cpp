// Ablation: mixed element pair for the Navier-Stokes application.
//
// The paper's LifeV setup uses the inf-sup stable Q2/Q1 pair; heterolab's
// default platform benches use stabilized P1/P1 (same phase structure,
// cheaper element). This direct-run comparison quantifies the trade:
// Taylor-Hood P2/P1 buys an order of accuracy per mesh at ~8x the dofs and
// a costlier assembly/solve — the reason the *platform* benches can use the
// cheap pair without changing any cross-platform conclusion.

#include <iostream>

#include "apps/ns_solver.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_element_pair");
  const int cells = static_cast<int>(args.get_int("cells", 4));

  std::cout << "# Ablation — NS element pair (direct run, 4 ranks, " << cells
            << "^3 cells, 2 steps)\n";
  Table table({"pair", "global dofs", "nnz/rank", "GMRES iters",
               "assembly[s]", "solve[s]", "max |u-u_ex|", "L2(u1) err"});
  for (int order : {1, 2}) {
    simmpi::Runtime runtime(platform::lagrange().topology(4));
    apps::StepRecord rec;
    std::int64_t dofs = 0;
    runtime.run([&](simmpi::Comm& comm) {
      apps::NsConfig config;
      config.global_cells = cells;
      config.velocity_order = order;
      config.cpu = platform::lagrange().cpu_model();
      apps::NsSolver solver(comm, config);
      const auto records = solver.run(2);
      if (comm.rank() == 0) {
        rec = records.back();
        dofs = solver.global_dofs();
      }
    });
    table.add_row({order == 1 ? "P1/P1 stab" : "Taylor-Hood P2/P1",
                   std::to_string(dofs),
                   std::to_string(rec.work.local_nonzeros),
                   std::to_string(rec.solver_iterations),
                   fmt_double(rec.timing.assembly_s, 3),
                   fmt_double(rec.timing.solve_s, 3),
                   fmt_double(rec.nodal_error, 5),
                   fmt_double(rec.l2_error, 6)});
  }
  out.emit(table);
  return 0;
}
