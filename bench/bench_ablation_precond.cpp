// Ablation: preconditioner choice (paper step iiia).
//
// Direct-mode runs of the real RD application (threads through the
// simulated MPI) comparing identity / Jacobi / local-ILU0 preconditioning:
// iteration counts, per-iteration virtual times, and the build/solve
// trade-off that makes block-ILU0 (the Ifpack-style default of the paper's
// Trilinos stack) the right choice.

#include <iostream>

#include "apps/rd_solver.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_precond");
  const int cells = static_cast<int>(args.get_int("cells", 8));

  std::cout << "# Ablation — preconditioners on the RD system (direct run, "
               "8 ranks, " << cells << "^3 global cells, lagrange model)\n";
  Table table({"preconditioner", "CG iters", "precond[s]", "solve[s]",
               "total[s]", "nodal error"});
  for (const std::string name : {"identity", "jacobi", "ilu0"}) {
    simmpi::Runtime runtime(platform::lagrange().topology(8));
    int iters = 0;
    apps::IterationTiming timing;
    double error = 0.0;
    runtime.run([&](simmpi::Comm& comm) {
      apps::RdConfig config;
      config.global_cells = cells;
      config.preconditioner = name;
      config.cpu = platform::lagrange().cpu_model();
      apps::RdSolver solver(comm, config);
      solver.step();  // structure + warm start
      const auto r = solver.step();
      if (comm.rank() == 0) {
        iters = r.solver_iterations;
        timing = r.timing;
        error = r.nodal_error;
      }
    });
    table.add_row({name, std::to_string(iters),
                   fmt_double(timing.preconditioner_s, 4),
                   fmt_double(timing.solve_s, 3),
                   fmt_double(timing.total_s, 3), fmt_double(error, 10)});
  }
  out.emit(table);
  return 0;
}
