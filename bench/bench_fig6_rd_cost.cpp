// Regenerates Figure 6: per-iteration dollar costs of the four platforms
// for the RD weak-scaling benchmark, plus the "ec2 mix" cost-aware spot
// strategy. Whole-instance billing makes EC2 disproportionately expensive
// at 1 and 8 processes (a 16-core instance is charged either way).

#include <iostream>

#include "core/report.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "fig6_rd_cost");

  auto engine = bench::make_engine(args);
  std::cout << "# Figure 6 — per-iteration costs, RD application weak "
               "scaling\n";
  const auto procs = core::paper_process_counts();
  const Table table = core::cost_figure(
      engine, perf::AppKind::kReactionDiffusion, procs);
  out.emit(table);
  std::cout << "\n# Core-hour rates: puma 2.3c (capital+operations), "
               "ellipse 5c flat, lagrange 19.19c (EUR 0.15), ec2 15c "
               "on-demand / 3.375c spot, whole 16-core instances billed.\n";
  return 0;
}
