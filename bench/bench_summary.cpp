// The paper's §VIII bottom line as one table: "each of the platforms to
// which we had access had its particular benefits and drawbacks" across
// deployment effort, availability, size, performance, and cost.

#include <iostream>

#include "bench_main.hpp"
#include "core/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "summary");
  const int ranks = static_cast<int>(args.get_int("ranks", 125));

  auto engine = bench::make_engine(args);
  std::cout << "# Summary (Section VIII) — all axes at " << ranks
            << " processes\n";
  const Table table = core::summary_table(engine, ranks);
  out.emit(table);
  std::cout <<
      "\n# puma: cheapest core-hour, zero porting — but only 128 cores.\n"
      "# ellipse: big but serial-configured SGE and a 1GbE fabric.\n"
      "# lagrange: fastest network and cores — priciest, longest queue,\n"
      "#   and an IB volume cap at 343 ranks.\n"
      "# ec2: boots in minutes at any size; whole-node billing and a\n"
      "#   virtualized fabric — the spot market changes its economics.\n";
  return 0;
}
