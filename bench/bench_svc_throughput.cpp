// Throughput of the advisory daemon's pipe transport: a 10k-request
// stream with a bounded number of unique requests, answered cold (fresh
// memo store, every unique request priced through the broker) and then
// warm (same store, new process — every answer replayed from the log).
// The paper's broker is only useful as a *service* if repeated sweeps are
// cheap, so CI gates warm_speedup >= 5x and byte-identical replay.
//
//   bench_svc_throughput [--requests N] [--unique U] [--queue Q]
//                        [--workers W] [--seed S] [--csv] [--json OUT]

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <unistd.h>

#include "bench_main.hpp"
#include "support/error.hpp"
#include "support/units.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace hetero;

/// Deterministic request stream: `unique` distinct job descriptors cycled
/// over `total` lines. Mirrors tools/gen_svc_requests.py for the CI soak.
std::string make_requests(int total, int unique) {
  static const char* kObjectives[] = {"effective", "cost", "time"};
  std::string out;
  out.reserve(static_cast<std::size_t>(total) * 112);
  for (int i = 0; i < total; ++i) {
    const int u = i % unique;
    out += "{\"id\":" + std::to_string(i);
    out += ",\"app\":\"";
    out += (u % 2 == 0 ? "rd" : "ns");
    // Element-count requests sweep the full candidate space (every rank
    // count on every platform, spot strategies included) — the expensive
    // cold path. frontier:false keeps the response a single decision
    // line, so the warm replay measures the memo store, not IO.
    out += "\",\"elements\":" + std::to_string(500000 + (u / 6) * 37500);
    out += ",\"iterations\":" + std::to_string(50 + (u % 2) * 50);
    out += ",\"objective\":\"";
    out += kObjectives[u % 3];
    out += "\",\"frontier\":false}\n";
  }
  return out;
}

struct RunResult {
  std::string output;
  double wall_s = 0.0;
  std::uint64_t served = 0;
};

RunResult run_stream(const std::string& requests, const std::string& store,
                     std::uint64_t seed, int workers, std::size_t queue) {
  svc::ServiceOptions options;
  options.seed = seed;
  options.jobs = 0;  // resolve to HETEROLAB_JOBS / hardware width
  options.store_path = store;
  svc::Service service(options);
  svc::ServeOptions serve_options;
  serve_options.queue_capacity = queue;
  serve_options.workers = workers;
  std::istringstream in(requests);
  std::ostringstream out;
  const auto started = std::chrono::steady_clock::now();
  const auto stats = svc::serve_pipe(service, in, out, serve_options);
  RunResult r;
  r.wall_s = std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - started)
                 .count();
  r.output = out.str();
  r.served = stats.served;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetero;
  try {
    const CliArgs args(argc, argv);
    bench::BenchOutput output(args, "svc_throughput");
    const int total = static_cast<int>(args.get_int("requests", 10000));
    const int unique = static_cast<int>(args.get_int("unique", 250));
    const int workers = static_cast<int>(args.get_int("workers", 1));
    const auto queue =
        static_cast<std::size_t>(args.get_int("queue", 16384));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    HETERO_REQUIRE(total > 0 && unique > 0 && unique <= total,
                   "need 0 < --unique <= --requests");

    const std::string store =
        "/tmp/bench_svc_throughput_" + std::to_string(::getpid()) + ".log";
    std::remove(store.c_str());
    const std::string requests = make_requests(total, unique);

    const RunResult cold = run_stream(requests, store, seed, workers, queue);
    const RunResult warm = run_stream(requests, store, seed, workers, queue);
    std::remove(store.c_str());

    const bool identical = cold.output == warm.output;
    const double speedup =
        warm.wall_s > 0.0 ? cold.wall_s / warm.wall_s : 0.0;

    Table table({"mode", "requests", "unique", "served", "wall[s]", "rps"});
    const auto row = [&](const char* mode, const RunResult& r) {
      table.add_row({mode, std::to_string(total), std::to_string(unique),
                     std::to_string(r.served), fmt_double(r.wall_s, 3),
                     fmt_double(static_cast<double>(total) / r.wall_s, 0)});
    };
    row("cold", cold);
    row("warm", warm);
    output.emit(table, "pipe");

    obs::Json summary = obs::Json::object();
    summary.set("series", "summary");
    summary.set("requests", total);
    summary.set("unique", unique);
    summary.set("warm_speedup", speedup);
    summary.set("identical", identical ? 1 : 0);
    summary.set("cold_wall_s", cold.wall_s);
    summary.set("warm_wall_s", warm.wall_s);
    output.record(std::move(summary));

    std::cout << "\nwarm speedup  " << fmt_double(speedup, 2)
              << "x, replay " << (identical ? "byte-identical" : "DIFFERS")
              << "\n";
    return identical ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
