// Failure-recovery ablation: the resilience question behind the paper's
// spot-market campaigns (§VII-D), asked of the *direct* simulated-MPI runs.
// Sweeps the injected rank-crash rate against the recovery policy
// (restart-from-scratch vs checkpoint-restart every 2 steps) over a small
// seed ensemble, and emits the aggregate effective time-to-solution and
// dollar cost per cell. A second series drives the broker with a risk
// budget and records the failover it explains.
//
// Sanity checks (the qualitative results this bench pins):
//   * at fault rate 0 both policies are byte-identical to a fault-free run
//     (no faults injected, one attempt);
//   * at a non-trivial fault rate checkpoint-restart completes at least as
//     many runs as scratch, and beats it in both summed effective time and
//     summed cost — checkpoints re-expose fewer steps per retry;
//   * a tight risk budget rejects the spot campaign with an explanation
//     that names the failover target.

#include <iostream>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "broker/broker.hpp"
#include "core/experiment.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_failure_recovery");
  auto engine = bench::make_engine(args);

  // Crash rates per (attempt, step, rank) cell, in per-mille so the JSONL
  // match keys stay exact integers.
  const std::vector<int> rates_pm = {0, 10, 30};
  const std::vector<resil::RecoveryKind> policies = {
      resil::RecoveryKind::kRestartScratch,
      resil::RecoveryKind::kCheckpointRestart};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};

  struct Cell {
    resil::RecoveryKind policy;
    int rate_pm;
    int runs = 0;
    int completed = 0;
    int faults = 0;
    int attempts = 0;
    int checkpoints = 0;
    int steps_wasted = 0;
    int steps_recovered = 0;
    double effective_s = 0.0;
    double cost_usd = 0.0;
    double wasted_cost_usd = 0.0;
  };

  auto make_experiment = [&](resil::RecoveryKind policy, int rate_pm,
                             std::uint64_t seed) {
    core::Experiment e;
    e.app = perf::AppKind::kReactionDiffusion;
    e.platform = "ec2";  // billed by the hour, so wasted work costs money
    e.ranks = 8;
    e.cells_per_rank_axis = 4;
    e.mode = core::Mode::kDirect;
    e.direct_steps = 10;
    e.faults.rank_crash_rate = rate_pm / 1000.0;
    e.recovery.kind = policy;
    e.recovery.checkpoint_every = 2;
    e.recovery.max_attempts = 12;
    e.seed = seed;
    return e;
  };

  // Flatten the sweep, evaluate concurrently through the memoizing engine
  // (byte-identical at any --jobs), then aggregate sequentially.
  std::vector<core::Experiment> experiments;
  for (const auto policy : policies) {
    for (const int rate_pm : rates_pm) {
      for (const auto seed : seeds) {
        experiments.push_back(make_experiment(policy, rate_pm, seed));
      }
    }
  }
  std::vector<core::ExperimentResult> results(experiments.size());
  engine.parallel_for(experiments.size(), [&](std::size_t i) {
    results[i] = engine.run(experiments[i]);
  });

  std::vector<Cell> cells;
  std::size_t next = 0;
  for (const auto policy : policies) {
    for (const int rate_pm : rates_pm) {
      Cell cell;
      cell.policy = policy;
      cell.rate_pm = rate_pm;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        const auto& e = experiments[next];
        const auto& r = results[next];
        ++next;
        ++cell.runs;
        cell.faults += r.resil.faults_injected;
        cell.attempts += r.resil.attempts;
        cell.checkpoints += r.resil.checkpoints_written;
        cell.steps_wasted += r.resil.steps_wasted;
        cell.steps_recovered += r.resil.steps_recovered;
        cell.wasted_cost_usd += r.resil.wasted_cost_usd;
        if (!r.launched) {
          continue;  // unrecovered: no time-to-solution to account
        }
        ++cell.completed;
        cell.effective_s += r.iteration.total_s * e.direct_steps +
                            r.resil.wasted_sim_s + r.resil.retry_delay_s;
        cell.cost_usd += r.cost_per_iteration_usd * e.direct_steps +
                         r.resil.wasted_cost_usd;
      }
      cells.push_back(cell);
    }
  }

  Table table({"policy", "rate_pm", "runs", "completed", "faults",
               "attempts", "ckpts", "steps wasted", "steps recovered",
               "effective[s]", "cost[$]", "wasted cost[$]"});
  for (const auto& c : cells) {
    table.add_row({resil::to_string(c.policy), std::to_string(c.rate_pm),
                   std::to_string(c.runs), std::to_string(c.completed),
                   std::to_string(c.faults), std::to_string(c.attempts),
                   std::to_string(c.checkpoints),
                   std::to_string(c.steps_wasted),
                   std::to_string(c.steps_recovered),
                   fmt_double(c.effective_s, 3), fmt_double(c.cost_usd, 4),
                   fmt_double(c.wasted_cost_usd, 4)});
  }
  std::cout << "# RD direct on ec2, 8 ranks, 10 steps, 5 seeds per cell; "
               "ckpt = checkpoint-restart every 2 steps\n";
  out.emit(table);

  auto cell_for = [&](resil::RecoveryKind policy, int rate_pm) -> Cell& {
    for (auto& c : cells) {
      if (c.policy == policy && c.rate_pm == rate_pm) {
        return c;
      }
    }
    throw Error("bench: missing sweep cell");
  };

  bool sane = true;
  for (const auto policy : policies) {
    const Cell& calm = cell_for(policy, 0);
    if (calm.faults != 0 || calm.attempts != calm.runs ||
        calm.completed != calm.runs) {
      std::cout << "!! fault-free cell of policy "
                << resil::to_string(policy)
                << " injected faults or retried\n";
      sane = false;
    }
  }
  const Cell& scratch = cell_for(resil::RecoveryKind::kRestartScratch, 30);
  const Cell& ckpt = cell_for(resil::RecoveryKind::kCheckpointRestart, 30);
  if (ckpt.completed < scratch.completed) {
    std::cout << "!! checkpoint-restart completed fewer runs than scratch\n";
    sane = false;
  }
  if (ckpt.effective_s >= scratch.effective_s ||
      ckpt.cost_usd >= scratch.cost_usd) {
    std::cout << "!! checkpoint-restart should beat scratch in effective "
                 "time and cost at rate 0.03 (ckpt "
              << fmt_double(ckpt.effective_s, 1) << " s / "
              << fmt_double(ckpt.cost_usd, 4) << " $, scratch "
              << fmt_double(scratch.effective_s, 1) << " s / "
              << fmt_double(scratch.cost_usd, 4) << " $)\n";
    sane = false;
  }

  // Broker failover under a risk budget: the checkpointed spot campaign
  // carries the redone-iteration bill share as risk_usd, so a tight budget
  // rejects it and the rejection names where the work went.
  std::cout << "\n# broker failover under a risk budget\n";
  broker::Broker advisor(engine.seed());
  Table failover({"budget[$]", "winner", "rejected", "failovers"});
  for (const double budget : {1e9, 0.01}) {
    broker::JobRequest request;
    request.ranks = 64;
    request.iterations = 500;
    request.risk_budget_usd = budget;
    request.include_provisioning = false;
    const auto rec = advisor.recommend(request, broker::min_cost());
    int failovers = 0;
    for (const auto& rejection : rec.rejected) {
      if (rejection.reason.find("failing over to") != std::string::npos) {
        ++failovers;
      }
    }
    failover.add_row({budget >= 1e9 ? "unbounded" : fmt_double(budget, 2),
                      rec.has_winner() ? rec.winner().candidate.label()
                                       : "-",
                      std::to_string(rec.rejected.size()),
                      std::to_string(failovers)});
    if (budget < 1e9) {
      if (failovers == 0 || !rec.has_winner()) {
        std::cout << "!! a $0.01 risk budget should fail spot strategies "
                     "over to a feasible candidate\n";
        sane = false;
      }
      if (rec.has_winner() &&
          rec.winner().risk_usd > *request.risk_budget_usd) {
        std::cout << "!! the winner exceeds the risk budget\n";
        sane = false;
      }
    }
  }
  out.emit(failover, "failover");

  std::cout << (sane ? "\n# sanity checks passed: ckpt-restart beats "
                       "scratch under faults; risk budget fails over\n"
                     : "\n# SANITY CHECK FAILED\n");
  return sane ? 0 : 1;
}
