// Ablation: how much would placement-group locality have to matter before
// the paper's Table II experiment could detect it?
//
// The measured result was "regular allocation in a single placement group
// does not introduce any performance benefits". This sweep varies the
// cross-group penalty from 0 to 50% and reports the mix/full time ratio at
// 1000 ranks: the per-host injection bottleneck of the virtualized 10GbE
// fabric dominates until the penalty becomes implausibly large — which is
// why the paper measured no difference.

#include <iostream>

#include "core/report.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_placement");

  auto engine = bench::make_engine(args);
  std::cout << "# Ablation — cross-placement-group penalty sweep "
               "(RD, 1000 ranks, 63 hosts)\n";
  Table table({"penalty", "full time[s]", "mix time[s]", "mix/full",
               "mix est. cost[$]"});
  const std::vector<double> penalties{0.0, 0.02, 0.05, 0.10, 0.20, 0.50};
  std::vector<core::Experiment> batch;
  batch.reserve(2 * penalties.size());
  for (double penalty : penalties) {
    core::Experiment full;
    full.platform = "ec2";
    full.ranks = 1000;
    full.cross_group_penalty = penalty;
    full.ec2_placement_groups = 1;
    batch.push_back(full);

    core::Experiment mix = full;
    mix.ec2_spot_mix = true;
    mix.ec2_placement_groups = 4;
    batch.push_back(mix);
  }
  const auto results = engine.run_batch(batch);
  for (std::size_t i = 0; i < penalties.size(); ++i) {
    const auto& rf = results[2 * i];
    const auto& rm = results[2 * i + 1];
    table.add_row({fmt_double(penalties[i], 2),
                   fmt_double(rf.iteration.total_s, 2),
                   fmt_double(rm.iteration.total_s, 2),
                   fmt_double(rm.iteration.total_s / rf.iteration.total_s, 3),
                   fmt_double(rm.est_cost_per_iteration_usd, 4)});
  }
  out.emit(table);
  return 0;
}
