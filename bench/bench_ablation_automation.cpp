// Ablation (the paper's stated future work): scripted provisioning.
//
// "Use of third party software to address mundane, repeatable tasks (e.g.
// doit) or predefined images for IaaS could significantly reduce this cost
// and will form the focus of our future work." The model: authoring the
// automation costs once; every platform then pays only the residual
// (admin interactions, site quirks). The table shows per-platform effort
// and the break-even platform count.

#include <iostream>

#include "provision/planner.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_automation");

  provision::AutomationModel model;
  model.authoring_hours = args.get_double("authoring", 6.0);
  model.residual_fraction = args.get_double("residual", 0.25);

  std::cout << "# Ablation — manual vs scripted provisioning ("
            << fmt_double(model.authoring_hours, 1)
            << " h authoring, " << fmt_double(model.residual_fraction, 2)
            << " residual)\n";
  Table table({"platform", "manual[h]", "automated[h]", "saved[h]"});
  std::vector<provision::ProvisionPlan> plans;
  double manual_total = 0.0;
  double auto_total = model.authoring_hours;
  for (const auto* spec : platform::all_platforms()) {
    auto plan = provision::plan_provisioning(*spec);
    const double manual = plan.total_hours();
    const double automated = provision::automated_hours(plan, model);
    table.add_row({spec->name, fmt_double(manual, 1),
                   fmt_double(automated, 1),
                   fmt_double(manual - automated, 1)});
    manual_total += manual;
    auto_total += automated;
    plans.push_back(std::move(plan));
  }
  table.add_row({"TOTAL", fmt_double(manual_total, 1),
                 fmt_double(auto_total, 1),
                 fmt_double(manual_total - auto_total, 1)});
  out.emit(table);
  std::cout << "\n# Break-even: automation pays for itself after "
            << provision::automation_break_even(plans, model)
            << " provisioned platform(s).\n";
  return 0;
}
