// Regenerates Figure 7: per-iteration dollar costs for the Navier-Stokes
// weak-scaling benchmark. The paper's observation: "EC2 costs less than our
// on-premise cluster and is faster as well" for this compute-intensive
// application — checked numerically below the table.

#include <iostream>

#include "core/report.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "fig7_ns_cost");

  auto engine = bench::make_engine(args);
  std::cout << "# Figure 7 — per-iteration costs, Navier-Stokes application "
               "weak scaling\n";
  const auto procs = core::paper_process_counts();
  const Table table =
      core::cost_figure(engine, perf::AppKind::kNavierStokes, procs);
  out.emit(table);

  // Spot-check the crossover claim at a mid size every platform can run.
  core::Experiment ec2;
  ec2.app = perf::AppKind::kNavierStokes;
  ec2.platform = "ec2";
  ec2.ranks = 64;
  ec2.ec2_spot_mix = true;
  ec2.ec2_placement_groups = 4;
  core::Experiment puma = ec2;
  puma.platform = "puma";
  puma.ec2_spot_mix = false;
  const auto re = engine.run(ec2);
  const auto rp = engine.run(puma);
  std::cout << "\n# At 64 processes (spot strategy): ec2 "
            << fmt_usd(re.est_cost_per_iteration_usd) << " and "
            << fmt_double(re.iteration.total_s, 1) << " s/iter vs puma "
            << fmt_usd(rp.cost_per_iteration_usd) << " and "
            << fmt_double(rp.iteration.total_s, 1)
            << " s/iter — cheaper and faster than the on-premise cluster.\n";
  return 0;
}
