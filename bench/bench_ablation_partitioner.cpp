// Ablation: mesh partitioner quality (paper step i).
//
// The paper delegates partitioning to ParMETIS "guaranteeing a proper load
// balancing". This bench compares heterolab's partitioners — structured
// blocks, recursive coordinate bisection, and greedy graph growing — on
// load imbalance and edge cut, and converts the cut into halo-exchange time
// on the 1GbE fabric to show why partition quality is a *network* concern.

#include <iostream>

#include "mesh/box_mesh.hpp"
#include "netsim/fabric.hpp"
#include "netsim/topology.hpp"
#include "partition/partitioner.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_partitioner");
  const int n = static_cast<int>(args.get_int("cells", 12));
  const int parts = static_cast<int>(args.get_int("parts", 8));

  std::cout << "# Ablation — partitioners on a " << n << "^3 box mesh, "
            << parts << " parts\n";
  const auto mesh = mesh::build_box_mesh({n, n, n});
  const auto graph = partition::build_dual_graph(mesh);

  const auto topo = netsim::Topology::uniform(
      parts, 4, netsim::Fabric::gigabit_ethernet(),
      netsim::Fabric::shared_memory());

  Table table({"partitioner", "imbalance", "edge cut", "cut fraction",
               "halo exchange[ms]"});
  auto add = [&](const std::string& name, const std::vector<int>& part) {
    const auto m = partition::evaluate_partition(graph, part, parts);
    // Each cut dual edge is one shared face: ~6 P2 dofs of 8 bytes each,
    // split across the parts.
    const auto bytes = static_cast<std::uint64_t>(
        m.edge_cut * 6 * 8 / static_cast<std::size_t>(parts));
    const double halo =
        topo.exchange_time(bytes, 6, bytes / 4, 2) * 1e3;
    table.add_row({name, fmt_double(m.imbalance, 3),
                   std::to_string(m.edge_cut),
                   fmt_double(static_cast<double>(m.edge_cut) /
                                  static_cast<double>(graph.edge_count()),
                              3),
                   fmt_double(halo, 3)});
  };

  // Structured block decomposition via the cell grid.
  {
    mesh::BoxMeshSpec spec{n, n, n};
    mesh::BlockDecomposition dec(spec, parts);
    std::vector<int> part(mesh.tet_count());
    std::size_t t = 0;
    for (int ck = 0; ck < n; ++ck) {
      for (int cj = 0; cj < n; ++cj) {
        for (int ci = 0; ci < n; ++ci) {
          const int rank = dec.rank_of_cell(ci, cj, ck);
          for (int s = 0; s < 6; ++s) {
            part[t++] = rank;
          }
        }
      }
    }
    // The box mesh emits cells in the same (x-fastest) order.
    add("block", part);
  }
  add("rcb", partition::partition_rcb(mesh, parts));
  add("greedy", partition::partition_greedy(graph, parts));

  out.emit(table);
  return 0;
}
