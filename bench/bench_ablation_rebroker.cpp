// Online re-brokering ablation: the closed-loop question behind the
// paper's mid-campaign platform switches (§VII) — when the spot market
// turns stormy, does watching the live run and migrating beat riding the
// original placement out? Sweeps a static plan (no controller, storms
// endured through the recovery policy alone) against the adaptive
// controller (deadline + hysteresis verdict, checkpoint-and-migrate to
// puma) over a seed ensemble at spot-reclaim storm rates 0 and 3% per
// step, and emits completions, effective time, and dollar cost.
//
// Sanity checks (the qualitative results this bench pins):
//   * at storm rate 0 the adaptive cells are *exactly* equal to the static
//     ones — the controller observes but never moves, and a non-migrated
//     run prices through the unchanged single-platform formula;
//   * at a 3% storm rate the adaptive plan completes strictly more runs
//     AND spends strictly fewer summed dollars than the static plan;
//   * every adaptive completion at 3% that saw a storm migrated (the
//     decision trail names source, target, and checkpoint step).
//
// `--trail PATH` concatenates the adaptive decision trails (JSONL,
// heterolab-rebroker-v1) in submission order; CI validates them with
// `tools/check_bench.py --schema rebroker` and byte-diffs them across
// --jobs levels and re-runs.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "core/experiment.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_rebroker");
  auto engine = bench::make_engine(args);

  // Storm rates per (attempt, step) cell, in per-mille so the JSONL match
  // keys stay exact integers.
  const std::vector<int> rates_pm = {0, 30};
  const std::vector<bool> plans = {false, true};  // static, adaptive
  const std::vector<std::uint64_t> seeds = {2, 3, 12, 20, 46, 49};

  struct Cell {
    bool adaptive = false;
    int rate_pm = 0;
    int runs = 0;
    int completed = 0;
    int storms = 0;
    int migrations = 0;
    int attempts = 0;
    double effective_s = 0.0;
    double cost_usd = 0.0;
    double wasted_cost_usd = 0.0;
  };

  auto make_experiment = [&](bool adaptive, int rate_pm,
                             std::uint64_t seed) {
    core::Experiment e;
    e.app = perf::AppKind::kReactionDiffusion;
    e.platform = "ec2";  // the only spot market: storms exist only here
    e.ranks = 8;
    e.cells_per_rank_axis = 4;
    e.mode = core::Mode::kDirect;
    e.direct_steps = 16;
    e.faults.reclaim_storm_rate = rate_pm / 1000.0;
    e.recovery.kind = resil::RecoveryKind::kCheckpointRestart;
    e.recovery.checkpoint_every = 2;
    e.recovery.max_attempts = 2;
    if (adaptive) {
      e.rebroker.enabled = true;
      e.rebroker.fallback_platform = "puma";
      e.rebroker.hysteresis = 0.15;
      // Calm runs finish in seconds, so staying meets this deadline and
      // puma's ~15-minute queue misses it: the controller holds still
      // until a storm pushes both sides past it and the cost rule takes
      // over (puma bills a small fraction of whole-node ec2).
      e.rebroker.deadline_s = 40.0;
      e.rebroker.run_label = "rd-ec2-r" + std::to_string(rate_pm) + "-s" +
                             std::to_string(seed);
    }
    e.seed = seed;
    return e;
  };

  // Flatten the sweep, evaluate concurrently through the memoizing engine
  // (byte-identical at any --jobs), then aggregate sequentially.
  std::vector<core::Experiment> experiments;
  for (const bool adaptive : plans) {
    for (const int rate_pm : rates_pm) {
      for (const auto seed : seeds) {
        experiments.push_back(make_experiment(adaptive, rate_pm, seed));
      }
    }
  }
  std::vector<core::ExperimentResult> results(experiments.size());
  engine.parallel_for(experiments.size(), [&](std::size_t i) {
    results[i] = engine.run(experiments[i]);
  });

  std::vector<Cell> cells;
  std::size_t next = 0;
  for (const bool adaptive : plans) {
    for (const int rate_pm : rates_pm) {
      Cell cell;
      cell.adaptive = adaptive;
      cell.rate_pm = rate_pm;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        const auto& e = experiments[next];
        const auto& r = results[next];
        ++next;
        ++cell.runs;
        cell.storms += r.rebroker.storms;
        cell.migrations += r.rebroker.migrations;
        cell.attempts += r.resil.attempts;
        // Every run pays for the work the storms threw away, finished or
        // not; only completed runs add a time-to-solution and the bill for
        // the work that actually landed.
        cell.wasted_cost_usd += r.resil.wasted_cost_usd;
        cell.cost_usd += r.resil.wasted_cost_usd;
        if (!r.launched) {
          continue;
        }
        ++cell.completed;
        cell.effective_s += r.iteration.total_s * e.direct_steps +
                            r.resil.wasted_sim_s + r.resil.retry_delay_s +
                            r.rebroker.migration_wait_s;
        cell.cost_usd += r.cost_per_iteration_usd * e.direct_steps;
      }
      cells.push_back(cell);
    }
  }

  Table table({"plan", "rate_pm", "runs", "completed", "storms",
               "migrations", "attempts", "effective[s]", "cost[$]",
               "wasted cost[$]"});
  for (const auto& c : cells) {
    table.add_row({c.adaptive ? "adaptive" : "static",
                   std::to_string(c.rate_pm), std::to_string(c.runs),
                   std::to_string(c.completed), std::to_string(c.storms),
                   std::to_string(c.migrations), std::to_string(c.attempts),
                   fmt_double(c.effective_s, 3), fmt_double(c.cost_usd, 4),
                   fmt_double(c.wasted_cost_usd, 4)});
  }
  std::cout << "# RD direct on ec2 (spot storms), 8 ranks, 16 steps, "
            << seeds.size()
            << " seeds per cell; adaptive = re-broker to puma\n";
  out.emit(table);

  auto cell_for = [&](bool adaptive, int rate_pm) -> Cell& {
    for (auto& c : cells) {
      if (c.adaptive == adaptive && c.rate_pm == rate_pm) {
        return c;
      }
    }
    throw Error("bench: missing sweep cell");
  };

  bool sane = true;
  const Cell& static0 = cell_for(false, 0);
  const Cell& adaptive0 = cell_for(true, 0);
  if (adaptive0.migrations != 0 || static0.completed != static0.runs ||
      adaptive0.completed != adaptive0.runs ||
      adaptive0.effective_s != static0.effective_s ||
      adaptive0.cost_usd != static0.cost_usd) {
    std::cout << "!! storm-free adaptive cell must match static exactly "
                 "(adaptive "
              << fmt_double(adaptive0.effective_s, 6) << " s / "
              << fmt_double(adaptive0.cost_usd, 6) << " $, static "
              << fmt_double(static0.effective_s, 6) << " s / "
              << fmt_double(static0.cost_usd, 6) << " $)\n";
    sane = false;
  }
  const Cell& static30 = cell_for(false, 30);
  const Cell& adaptive30 = cell_for(true, 30);
  if (adaptive30.completed <= static30.completed) {
    std::cout << "!! adaptive should complete strictly more runs than "
                 "static at a 3% storm rate (adaptive "
              << adaptive30.completed << ", static " << static30.completed
              << ")\n";
    sane = false;
  }
  if (adaptive30.cost_usd >= static30.cost_usd) {
    std::cout << "!! adaptive should beat static on summed cost at a 3% "
                 "storm rate (adaptive "
              << fmt_double(adaptive30.cost_usd, 4) << " $, static "
              << fmt_double(static30.cost_usd, 4) << " $)\n";
    sane = false;
  }
  if (adaptive30.migrations < 1) {
    std::cout << "!! the stormy adaptive cell never migrated\n";
    sane = false;
  }
  if (static30.completed >= static30.runs) {
    std::cout << "!! the stormy static cell should lose at least one run "
                 "(else the completion-rate comparison is vacuous)\n";
    sane = false;
  }

  // The adaptive decision trails, concatenated in submission order: the
  // determinism artifact CI byte-diffs across --jobs levels and re-runs.
  const std::string trail_path = args.get_string("trail", "");
  if (!trail_path.empty()) {
    std::ofstream trail(trail_path, std::ios::trunc);
    if (!trail.good()) {
      std::cout << "!! cannot open --trail path: " << trail_path << "\n";
      sane = false;
    } else {
      for (std::size_t i = 0; i < experiments.size(); ++i) {
        for (const auto& line : results[i].rebroker.trail) {
          trail << line << "\n";
        }
      }
    }
  }

  std::cout << (sane ? "\n# sanity checks passed: adaptive re-brokering "
                       "beats the static plan under storms and is inert "
                       "without them\n"
                     : "\n# SANITY CHECK FAILED\n");
  return sane ? 0 : 1;
}
