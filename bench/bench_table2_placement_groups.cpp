// Regenerates Table II: comparison of two EC2 cc2.8xlarge assemblies for
// the RD application — fully paid instances in a single placement group
// ("full") versus spot requests spread over four placement groups topped up
// with on-demand hosts ("mix").
//
// Reproduced findings:
//   * the single placement group buys no performance (times match);
//   * the spot strategy costs ~4.4x less per iteration;
//   * a full 63-host spot assembly is never obtained (the spot-hosts
//     column saturates below 63, as in the paper's experience).

#include <iostream>

#include "core/report.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "table2_placement_groups");

  auto engine = bench::make_engine(args);
  std::cout << "# Table II — EC2 cc2.8xlarge assemblies: full (on-demand, "
               "one placement group) vs mix (spot + on-demand, four groups)\n";
  const auto procs = core::paper_process_counts();
  const Table table = core::table2_ec2_assemblies(engine, procs);
  out.emit(table);
  std::cout << "\n# Regular $2.40/host-h vs spot ~$0.54/host-h: the mix's "
               "estimated cost is ~4.4x lower at equal time.\n";
  return 0;
}
