// Extension: strong scaling (fixed global problem), which the paper leaves
// to future work — its campaign is weak scaling only.
//
// A fixed 80^3-element RD problem is split over growing process counts:
// per-rank work shrinks while latency costs per iteration do not, so the
// network-quality gap between the platforms opens even faster than in the
// weak-scaling figures, and every platform eventually stops speeding up.

#include <cmath>
#include <iostream>

#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "bench_main.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  bench::BenchOutput out(args, "ablation_strong_scaling");
  const int global = static_cast<int>(args.get_int("global_cells", 80));

  std::cout << "# Extension — strong scaling of the RD application "
               "(fixed " << global << "^3-element mesh)\n";
  Table table({"platform", "procs", "cells/rank", "total[s]", "speedup",
               "efficiency"});
  for (const auto* spec : platform::all_platforms()) {
    double t1 = 0.0;
    for (int p : {1, 8, 27, 64, 125}) {
      if (!spec->can_launch(p)) {
        continue;
      }
      const int k = static_cast<int>(std::round(std::cbrt(p)));
      const int cells = std::max(1, global / k);
      perf::ModelConfig model = perf::rd_model();
      model.cells_per_rank_axis = cells;
      // Fixed global problem: the iteration count depends on the global
      // mesh, not on p.
      model.iteration_exponent = 0.0;
      const auto b = perf::project_iteration(model, spec->topology(p),
                                             spec->cpu_model(), p);
      if (p == 1) {
        t1 = b.total_s;
      }
      const double speedup = t1 / b.total_s;
      table.add_row({spec->name, std::to_string(p), std::to_string(cells),
                     fmt_double(b.total_s, 2), fmt_double(speedup, 2),
                     fmt_double(speedup / p, 3)});
    }
  }
  out.emit(table);
  std::cout << "\n# Parallel efficiency collapses fastest on the "
               "oversubscribed 1GbE fabrics; InfiniBand holds it longest.\n";
  return 0;
}
