file(REMOVE_RECURSE
  "CMakeFiles/heterolab.dir/heterolab.cpp.o"
  "CMakeFiles/heterolab.dir/heterolab.cpp.o.d"
  "heterolab"
  "heterolab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterolab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
