# Empty dependencies file for heterolab.
# This may be replaced when dependencies are built.
