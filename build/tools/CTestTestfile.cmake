# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_platforms "/root/repo/build/tools/heterolab" "platforms")
set_tests_properties(cli_platforms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_modeled "/root/repo/build/tools/heterolab" "run" "--app" "rd" "--platform" "ec2" "--ranks" "343" "--spot")
set_tests_properties(cli_run_modeled PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_direct "/root/repo/build/tools/heterolab" "run" "--platform" "puma" "--ranks" "8" "--mode" "direct" "--cells" "3")
set_tests_properties(cli_run_direct PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_summary "/root/repo/build/tools/heterolab" "summary" "--ranks" "64")
set_tests_properties(cli_summary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign "/root/repo/build/tools/heterolab" "campaign" "--ranks" "64" "--iterations" "20" "--ckpt" "5")
set_tests_properties(cli_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_provision "/root/repo/build/tools/heterolab" "provision" "--platform" "lagrange")
set_tests_properties(cli_provision PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_launch_failure "/root/repo/build/tools/heterolab" "run" "--platform" "lagrange" "--ranks" "512")
set_tests_properties(cli_launch_failure PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/heterolab" "frobnicate")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
