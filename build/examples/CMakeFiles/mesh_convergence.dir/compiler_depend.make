# Empty compiler generated dependencies file for mesh_convergence.
# This may be replaced when dependencies are built.
