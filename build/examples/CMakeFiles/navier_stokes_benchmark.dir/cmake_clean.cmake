file(REMOVE_RECURSE
  "CMakeFiles/navier_stokes_benchmark.dir/navier_stokes_benchmark.cpp.o"
  "CMakeFiles/navier_stokes_benchmark.dir/navier_stokes_benchmark.cpp.o.d"
  "navier_stokes_benchmark"
  "navier_stokes_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navier_stokes_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
