# Empty compiler generated dependencies file for navier_stokes_benchmark.
# This may be replaced when dependencies are built.
