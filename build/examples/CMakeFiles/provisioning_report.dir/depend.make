# Empty dependencies file for provisioning_report.
# This may be replaced when dependencies are built.
