file(REMOVE_RECURSE
  "CMakeFiles/provisioning_report.dir/provisioning_report.cpp.o"
  "CMakeFiles/provisioning_report.dir/provisioning_report.cpp.o.d"
  "provisioning_report"
  "provisioning_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
