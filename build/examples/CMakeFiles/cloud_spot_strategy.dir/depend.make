# Empty dependencies file for cloud_spot_strategy.
# This may be replaced when dependencies are built.
