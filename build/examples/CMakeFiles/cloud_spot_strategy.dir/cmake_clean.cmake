file(REMOVE_RECURSE
  "CMakeFiles/cloud_spot_strategy.dir/cloud_spot_strategy.cpp.o"
  "CMakeFiles/cloud_spot_strategy.dir/cloud_spot_strategy.cpp.o.d"
  "cloud_spot_strategy"
  "cloud_spot_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_spot_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
