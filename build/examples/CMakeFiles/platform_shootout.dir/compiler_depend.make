# Empty compiler generated dependencies file for platform_shootout.
# This may be replaced when dependencies are built.
