# Empty dependencies file for elastic_restart.
# This may be replaced when dependencies are built.
