file(REMOVE_RECURSE
  "CMakeFiles/elastic_restart.dir/elastic_restart.cpp.o"
  "CMakeFiles/elastic_restart.dir/elastic_restart.cpp.o.d"
  "elastic_restart"
  "elastic_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
