# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--cells" "4" "--steps" "2" "--vtk" "/root/repo/build/examples/smoke_rd.vtk")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_navier_stokes "/root/repo/build/examples/navier_stokes_benchmark" "--cells" "3" "--steps" "1" "--vtk" "/root/repo/build/examples/smoke_ns.vtk")
set_tests_properties(example_navier_stokes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_platform_shootout "/root/repo/build/examples/platform_shootout" "--ranks" "27" "--iterations" "10")
set_tests_properties(example_platform_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cloud_spot_strategy "/root/repo/build/examples/cloud_spot_strategy" "--hosts" "8" "--hours" "3")
set_tests_properties(example_cloud_spot_strategy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_provisioning_report "/root/repo/build/examples/provisioning_report")
set_tests_properties(example_provisioning_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mesh_convergence "/root/repo/build/examples/mesh_convergence" "--levels" "2" "--order" "1")
set_tests_properties(example_mesh_convergence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_elastic_restart "/root/repo/build/examples/elastic_restart" "--cells" "4" "--steps" "4")
set_tests_properties(example_elastic_restart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
