file(REMOVE_RECURSE
  "libhetero_partition.a"
)
