file(REMOVE_RECURSE
  "CMakeFiles/hetero_partition.dir/graph.cpp.o"
  "CMakeFiles/hetero_partition.dir/graph.cpp.o.d"
  "CMakeFiles/hetero_partition.dir/partitioner.cpp.o"
  "CMakeFiles/hetero_partition.dir/partitioner.cpp.o.d"
  "libhetero_partition.a"
  "libhetero_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
