# Empty dependencies file for hetero_partition.
# This may be replaced when dependencies are built.
