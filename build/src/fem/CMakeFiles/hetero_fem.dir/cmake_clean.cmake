file(REMOVE_RECURSE
  "CMakeFiles/hetero_fem.dir/assembler.cpp.o"
  "CMakeFiles/hetero_fem.dir/assembler.cpp.o.d"
  "CMakeFiles/hetero_fem.dir/bc.cpp.o"
  "CMakeFiles/hetero_fem.dir/bc.cpp.o.d"
  "CMakeFiles/hetero_fem.dir/boundary.cpp.o"
  "CMakeFiles/hetero_fem.dir/boundary.cpp.o.d"
  "CMakeFiles/hetero_fem.dir/error_norms.cpp.o"
  "CMakeFiles/hetero_fem.dir/error_norms.cpp.o.d"
  "CMakeFiles/hetero_fem.dir/fe_space.cpp.o"
  "CMakeFiles/hetero_fem.dir/fe_space.cpp.o.d"
  "CMakeFiles/hetero_fem.dir/reference.cpp.o"
  "CMakeFiles/hetero_fem.dir/reference.cpp.o.d"
  "libhetero_fem.a"
  "libhetero_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
