# Empty compiler generated dependencies file for hetero_fem.
# This may be replaced when dependencies are built.
