file(REMOVE_RECURSE
  "libhetero_fem.a"
)
