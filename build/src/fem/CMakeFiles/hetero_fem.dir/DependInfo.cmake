
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/assembler.cpp" "src/fem/CMakeFiles/hetero_fem.dir/assembler.cpp.o" "gcc" "src/fem/CMakeFiles/hetero_fem.dir/assembler.cpp.o.d"
  "/root/repo/src/fem/bc.cpp" "src/fem/CMakeFiles/hetero_fem.dir/bc.cpp.o" "gcc" "src/fem/CMakeFiles/hetero_fem.dir/bc.cpp.o.d"
  "/root/repo/src/fem/boundary.cpp" "src/fem/CMakeFiles/hetero_fem.dir/boundary.cpp.o" "gcc" "src/fem/CMakeFiles/hetero_fem.dir/boundary.cpp.o.d"
  "/root/repo/src/fem/error_norms.cpp" "src/fem/CMakeFiles/hetero_fem.dir/error_norms.cpp.o" "gcc" "src/fem/CMakeFiles/hetero_fem.dir/error_norms.cpp.o.d"
  "/root/repo/src/fem/fe_space.cpp" "src/fem/CMakeFiles/hetero_fem.dir/fe_space.cpp.o" "gcc" "src/fem/CMakeFiles/hetero_fem.dir/fe_space.cpp.o.d"
  "/root/repo/src/fem/reference.cpp" "src/fem/CMakeFiles/hetero_fem.dir/reference.cpp.o" "gcc" "src/fem/CMakeFiles/hetero_fem.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hetero_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/hetero_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/hetero_la.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/hetero_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hetero_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
