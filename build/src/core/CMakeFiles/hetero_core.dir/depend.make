# Empty dependencies file for hetero_core.
# This may be replaced when dependencies are built.
