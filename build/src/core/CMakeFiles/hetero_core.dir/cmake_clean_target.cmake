file(REMOVE_RECURSE
  "libhetero_core.a"
)
