file(REMOVE_RECURSE
  "CMakeFiles/hetero_core.dir/campaign.cpp.o"
  "CMakeFiles/hetero_core.dir/campaign.cpp.o.d"
  "CMakeFiles/hetero_core.dir/experiment.cpp.o"
  "CMakeFiles/hetero_core.dir/experiment.cpp.o.d"
  "CMakeFiles/hetero_core.dir/report.cpp.o"
  "CMakeFiles/hetero_core.dir/report.cpp.o.d"
  "libhetero_core.a"
  "libhetero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
