file(REMOVE_RECURSE
  "libhetero_netsim.a"
)
