file(REMOVE_RECURSE
  "CMakeFiles/hetero_netsim.dir/collectives.cpp.o"
  "CMakeFiles/hetero_netsim.dir/collectives.cpp.o.d"
  "CMakeFiles/hetero_netsim.dir/fabric.cpp.o"
  "CMakeFiles/hetero_netsim.dir/fabric.cpp.o.d"
  "CMakeFiles/hetero_netsim.dir/topology.cpp.o"
  "CMakeFiles/hetero_netsim.dir/topology.cpp.o.d"
  "libhetero_netsim.a"
  "libhetero_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
