# Empty dependencies file for hetero_netsim.
# This may be replaced when dependencies are built.
