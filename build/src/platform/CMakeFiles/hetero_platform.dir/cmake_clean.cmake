file(REMOVE_RECURSE
  "CMakeFiles/hetero_platform.dir/capability_table.cpp.o"
  "CMakeFiles/hetero_platform.dir/capability_table.cpp.o.d"
  "CMakeFiles/hetero_platform.dir/platform_spec.cpp.o"
  "CMakeFiles/hetero_platform.dir/platform_spec.cpp.o.d"
  "libhetero_platform.a"
  "libhetero_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
