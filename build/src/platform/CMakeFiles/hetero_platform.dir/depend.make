# Empty dependencies file for hetero_platform.
# This may be replaced when dependencies are built.
