file(REMOVE_RECURSE
  "libhetero_platform.a"
)
