file(REMOVE_RECURSE
  "libhetero_io.a"
)
