file(REMOVE_RECURSE
  "CMakeFiles/hetero_io.dir/checkpoint.cpp.o"
  "CMakeFiles/hetero_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hetero_io.dir/h5lite.cpp.o"
  "CMakeFiles/hetero_io.dir/h5lite.cpp.o.d"
  "libhetero_io.a"
  "libhetero_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
