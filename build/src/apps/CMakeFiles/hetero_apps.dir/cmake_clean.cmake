file(REMOVE_RECURSE
  "CMakeFiles/hetero_apps.dir/ns_solver.cpp.o"
  "CMakeFiles/hetero_apps.dir/ns_solver.cpp.o.d"
  "CMakeFiles/hetero_apps.dir/rd_solver.cpp.o"
  "CMakeFiles/hetero_apps.dir/rd_solver.cpp.o.d"
  "libhetero_apps.a"
  "libhetero_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
