file(REMOVE_RECURSE
  "libhetero_apps.a"
)
