# Empty compiler generated dependencies file for hetero_apps.
# This may be replaced when dependencies are built.
