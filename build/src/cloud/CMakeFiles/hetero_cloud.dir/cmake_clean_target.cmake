file(REMOVE_RECURSE
  "libhetero_cloud.a"
)
