
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/ec2_service.cpp" "src/cloud/CMakeFiles/hetero_cloud.dir/ec2_service.cpp.o" "gcc" "src/cloud/CMakeFiles/hetero_cloud.dir/ec2_service.cpp.o.d"
  "/root/repo/src/cloud/instance_types.cpp" "src/cloud/CMakeFiles/hetero_cloud.dir/instance_types.cpp.o" "gcc" "src/cloud/CMakeFiles/hetero_cloud.dir/instance_types.cpp.o.d"
  "/root/repo/src/cloud/spot_market.cpp" "src/cloud/CMakeFiles/hetero_cloud.dir/spot_market.cpp.o" "gcc" "src/cloud/CMakeFiles/hetero_cloud.dir/spot_market.cpp.o.d"
  "/root/repo/src/cloud/staging.cpp" "src/cloud/CMakeFiles/hetero_cloud.dir/staging.cpp.o" "gcc" "src/cloud/CMakeFiles/hetero_cloud.dir/staging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hetero_support.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hetero_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
