file(REMOVE_RECURSE
  "CMakeFiles/hetero_cloud.dir/ec2_service.cpp.o"
  "CMakeFiles/hetero_cloud.dir/ec2_service.cpp.o.d"
  "CMakeFiles/hetero_cloud.dir/instance_types.cpp.o"
  "CMakeFiles/hetero_cloud.dir/instance_types.cpp.o.d"
  "CMakeFiles/hetero_cloud.dir/spot_market.cpp.o"
  "CMakeFiles/hetero_cloud.dir/spot_market.cpp.o.d"
  "CMakeFiles/hetero_cloud.dir/staging.cpp.o"
  "CMakeFiles/hetero_cloud.dir/staging.cpp.o.d"
  "libhetero_cloud.a"
  "libhetero_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
