# Empty compiler generated dependencies file for hetero_cloud.
# This may be replaced when dependencies are built.
