
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/box_mesh.cpp" "src/mesh/CMakeFiles/hetero_mesh.dir/box_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/hetero_mesh.dir/box_mesh.cpp.o.d"
  "/root/repo/src/mesh/edges.cpp" "src/mesh/CMakeFiles/hetero_mesh.dir/edges.cpp.o" "gcc" "src/mesh/CMakeFiles/hetero_mesh.dir/edges.cpp.o.d"
  "/root/repo/src/mesh/refine.cpp" "src/mesh/CMakeFiles/hetero_mesh.dir/refine.cpp.o" "gcc" "src/mesh/CMakeFiles/hetero_mesh.dir/refine.cpp.o.d"
  "/root/repo/src/mesh/tet_mesh.cpp" "src/mesh/CMakeFiles/hetero_mesh.dir/tet_mesh.cpp.o" "gcc" "src/mesh/CMakeFiles/hetero_mesh.dir/tet_mesh.cpp.o.d"
  "/root/repo/src/mesh/vtk_writer.cpp" "src/mesh/CMakeFiles/hetero_mesh.dir/vtk_writer.cpp.o" "gcc" "src/mesh/CMakeFiles/hetero_mesh.dir/vtk_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hetero_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
