file(REMOVE_RECURSE
  "libhetero_mesh.a"
)
