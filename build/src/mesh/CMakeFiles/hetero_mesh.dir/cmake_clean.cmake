file(REMOVE_RECURSE
  "CMakeFiles/hetero_mesh.dir/box_mesh.cpp.o"
  "CMakeFiles/hetero_mesh.dir/box_mesh.cpp.o.d"
  "CMakeFiles/hetero_mesh.dir/edges.cpp.o"
  "CMakeFiles/hetero_mesh.dir/edges.cpp.o.d"
  "CMakeFiles/hetero_mesh.dir/refine.cpp.o"
  "CMakeFiles/hetero_mesh.dir/refine.cpp.o.d"
  "CMakeFiles/hetero_mesh.dir/tet_mesh.cpp.o"
  "CMakeFiles/hetero_mesh.dir/tet_mesh.cpp.o.d"
  "CMakeFiles/hetero_mesh.dir/vtk_writer.cpp.o"
  "CMakeFiles/hetero_mesh.dir/vtk_writer.cpp.o.d"
  "libhetero_mesh.a"
  "libhetero_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
