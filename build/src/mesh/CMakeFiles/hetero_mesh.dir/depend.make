# Empty dependencies file for hetero_mesh.
# This may be replaced when dependencies are built.
