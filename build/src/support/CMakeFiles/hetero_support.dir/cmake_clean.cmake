file(REMOVE_RECURSE
  "CMakeFiles/hetero_support.dir/cli.cpp.o"
  "CMakeFiles/hetero_support.dir/cli.cpp.o.d"
  "CMakeFiles/hetero_support.dir/error.cpp.o"
  "CMakeFiles/hetero_support.dir/error.cpp.o.d"
  "CMakeFiles/hetero_support.dir/log.cpp.o"
  "CMakeFiles/hetero_support.dir/log.cpp.o.d"
  "CMakeFiles/hetero_support.dir/rng.cpp.o"
  "CMakeFiles/hetero_support.dir/rng.cpp.o.d"
  "CMakeFiles/hetero_support.dir/stats.cpp.o"
  "CMakeFiles/hetero_support.dir/stats.cpp.o.d"
  "CMakeFiles/hetero_support.dir/table.cpp.o"
  "CMakeFiles/hetero_support.dir/table.cpp.o.d"
  "CMakeFiles/hetero_support.dir/units.cpp.o"
  "CMakeFiles/hetero_support.dir/units.cpp.o.d"
  "libhetero_support.a"
  "libhetero_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
