file(REMOVE_RECURSE
  "libhetero_support.a"
)
