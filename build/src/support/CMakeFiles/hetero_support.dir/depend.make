# Empty dependencies file for hetero_support.
# This may be replaced when dependencies are built.
