file(REMOVE_RECURSE
  "CMakeFiles/hetero_simmpi.dir/comm.cpp.o"
  "CMakeFiles/hetero_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/hetero_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/hetero_simmpi.dir/runtime.cpp.o.d"
  "libhetero_simmpi.a"
  "libhetero_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
