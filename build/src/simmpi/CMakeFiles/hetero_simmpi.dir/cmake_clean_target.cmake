file(REMOVE_RECURSE
  "libhetero_simmpi.a"
)
