# Empty dependencies file for hetero_simmpi.
# This may be replaced when dependencies are built.
