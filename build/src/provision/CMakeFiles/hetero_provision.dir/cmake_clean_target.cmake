file(REMOVE_RECURSE
  "libhetero_provision.a"
)
