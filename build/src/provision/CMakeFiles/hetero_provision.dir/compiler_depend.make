# Empty compiler generated dependencies file for hetero_provision.
# This may be replaced when dependencies are built.
