file(REMOVE_RECURSE
  "CMakeFiles/hetero_provision.dir/packages.cpp.o"
  "CMakeFiles/hetero_provision.dir/packages.cpp.o.d"
  "CMakeFiles/hetero_provision.dir/planner.cpp.o"
  "CMakeFiles/hetero_provision.dir/planner.cpp.o.d"
  "libhetero_provision.a"
  "libhetero_provision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_provision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
