# Empty dependencies file for hetero_solvers.
# This may be replaced when dependencies are built.
