file(REMOVE_RECURSE
  "libhetero_solvers.a"
)
