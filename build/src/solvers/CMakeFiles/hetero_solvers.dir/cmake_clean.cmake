file(REMOVE_RECURSE
  "CMakeFiles/hetero_solvers.dir/krylov.cpp.o"
  "CMakeFiles/hetero_solvers.dir/krylov.cpp.o.d"
  "CMakeFiles/hetero_solvers.dir/preconditioner.cpp.o"
  "CMakeFiles/hetero_solvers.dir/preconditioner.cpp.o.d"
  "libhetero_solvers.a"
  "libhetero_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
