# Empty compiler generated dependencies file for hetero_perf.
# This may be replaced when dependencies are built.
