file(REMOVE_RECURSE
  "libhetero_perf.a"
)
