file(REMOVE_RECURSE
  "CMakeFiles/hetero_perf.dir/scaling_model.cpp.o"
  "CMakeFiles/hetero_perf.dir/scaling_model.cpp.o.d"
  "libhetero_perf.a"
  "libhetero_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
