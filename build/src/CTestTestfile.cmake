# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("netsim")
subdirs("simmpi")
subdirs("mesh")
subdirs("partition")
subdirs("la")
subdirs("solvers")
subdirs("fem")
subdirs("io")
subdirs("apps")
subdirs("platform")
subdirs("cloud")
subdirs("sched")
subdirs("provision")
subdirs("perf")
subdirs("core")
