
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/csr_matrix.cpp" "src/la/CMakeFiles/hetero_la.dir/csr_matrix.cpp.o" "gcc" "src/la/CMakeFiles/hetero_la.dir/csr_matrix.cpp.o.d"
  "/root/repo/src/la/dist_matrix.cpp" "src/la/CMakeFiles/hetero_la.dir/dist_matrix.cpp.o" "gcc" "src/la/CMakeFiles/hetero_la.dir/dist_matrix.cpp.o.d"
  "/root/repo/src/la/dist_vector.cpp" "src/la/CMakeFiles/hetero_la.dir/dist_vector.cpp.o" "gcc" "src/la/CMakeFiles/hetero_la.dir/dist_vector.cpp.o.d"
  "/root/repo/src/la/halo.cpp" "src/la/CMakeFiles/hetero_la.dir/halo.cpp.o" "gcc" "src/la/CMakeFiles/hetero_la.dir/halo.cpp.o.d"
  "/root/repo/src/la/index_map.cpp" "src/la/CMakeFiles/hetero_la.dir/index_map.cpp.o" "gcc" "src/la/CMakeFiles/hetero_la.dir/index_map.cpp.o.d"
  "/root/repo/src/la/system_builder.cpp" "src/la/CMakeFiles/hetero_la.dir/system_builder.cpp.o" "gcc" "src/la/CMakeFiles/hetero_la.dir/system_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hetero_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/hetero_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hetero_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
