file(REMOVE_RECURSE
  "CMakeFiles/hetero_la.dir/csr_matrix.cpp.o"
  "CMakeFiles/hetero_la.dir/csr_matrix.cpp.o.d"
  "CMakeFiles/hetero_la.dir/dist_matrix.cpp.o"
  "CMakeFiles/hetero_la.dir/dist_matrix.cpp.o.d"
  "CMakeFiles/hetero_la.dir/dist_vector.cpp.o"
  "CMakeFiles/hetero_la.dir/dist_vector.cpp.o.d"
  "CMakeFiles/hetero_la.dir/halo.cpp.o"
  "CMakeFiles/hetero_la.dir/halo.cpp.o.d"
  "CMakeFiles/hetero_la.dir/index_map.cpp.o"
  "CMakeFiles/hetero_la.dir/index_map.cpp.o.d"
  "CMakeFiles/hetero_la.dir/system_builder.cpp.o"
  "CMakeFiles/hetero_la.dir/system_builder.cpp.o.d"
  "libhetero_la.a"
  "libhetero_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
