file(REMOVE_RECURSE
  "libhetero_la.a"
)
