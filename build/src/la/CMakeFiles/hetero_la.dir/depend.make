# Empty dependencies file for hetero_la.
# This may be replaced when dependencies are built.
