file(REMOVE_RECURSE
  "libhetero_sched.a"
)
