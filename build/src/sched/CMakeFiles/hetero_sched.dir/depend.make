# Empty dependencies file for hetero_sched.
# This may be replaced when dependencies are built.
