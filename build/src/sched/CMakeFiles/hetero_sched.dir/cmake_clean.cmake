file(REMOVE_RECURSE
  "CMakeFiles/hetero_sched.dir/scheduler.cpp.o"
  "CMakeFiles/hetero_sched.dir/scheduler.cpp.o.d"
  "libhetero_sched.a"
  "libhetero_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
