
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_automation.cpp" "bench/CMakeFiles/bench_ablation_automation.dir/bench_ablation_automation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_automation.dir/bench_ablation_automation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hetero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hetero_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hetero_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hetero_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/provision/CMakeFiles/hetero_provision.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hetero_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hetero_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hetero_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/hetero_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/hetero_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/hetero_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/hetero_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/hetero_la.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/hetero_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/hetero_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hetero_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
