file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_automation.dir/bench_ablation_automation.cpp.o"
  "CMakeFiles/bench_ablation_automation.dir/bench_ablation_automation.cpp.o.d"
  "bench_ablation_automation"
  "bench_ablation_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
