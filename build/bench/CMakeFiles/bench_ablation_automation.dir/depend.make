# Empty dependencies file for bench_ablation_automation.
# This may be replaced when dependencies are built.
