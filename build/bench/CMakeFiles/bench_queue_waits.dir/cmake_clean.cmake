file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_waits.dir/bench_queue_waits.cpp.o"
  "CMakeFiles/bench_queue_waits.dir/bench_queue_waits.cpp.o.d"
  "bench_queue_waits"
  "bench_queue_waits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_waits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
