# Empty compiler generated dependencies file for bench_queue_waits.
# This may be replaced when dependencies are built.
