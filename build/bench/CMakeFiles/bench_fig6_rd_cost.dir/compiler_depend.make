# Empty compiler generated dependencies file for bench_fig6_rd_cost.
# This may be replaced when dependencies are built.
