file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_element_pair.dir/bench_ablation_element_pair.cpp.o"
  "CMakeFiles/bench_ablation_element_pair.dir/bench_ablation_element_pair.cpp.o.d"
  "bench_ablation_element_pair"
  "bench_ablation_element_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_element_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
