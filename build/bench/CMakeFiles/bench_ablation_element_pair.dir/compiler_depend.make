# Empty compiler generated dependencies file for bench_ablation_element_pair.
# This may be replaced when dependencies are built.
