#!/usr/bin/env python3
"""Deterministic heterolab-svc-v1 request stream for the CI soak.

Emits `--total` request lines cycling over `--unique` distinct job
descriptors (same construction as bench_svc_throughput's generator), so a
10k-line soak prices only a bounded candidate space but exercises the
request cache, the admission queue, and the ordered emitter at full depth.
Ids are sequential from `--start-id`, which lets the warm-restart CI check
split one stream across two daemon processes and still compare against the
unbroken run.

Usage:
    tools/gen_svc_requests.py --total 10000 --unique 100 > requests.jsonl
    tools/gen_svc_requests.py --total 5000 --start-id 5000 --skip 5000
"""

import argparse
import sys

OBJECTIVES = ["effective", "cost", "time"]


def request_line(i, unique):
    u = i % unique
    app = "rd" if u % 2 == 0 else "ns"
    elements = 500000 + (u // 6) * 37500
    iterations = 50 + (u % 2) * 50
    objective = OBJECTIVES[u % 3]
    return (
        f'{{"id":{i},"app":"{app}","elements":{elements},'
        f'"iterations":{iterations},"objective":"{objective}",'
        f'"frontier":false}}'
    )


def main():
    parser = argparse.ArgumentParser(
        description="Generate a deterministic svc request stream.")
    parser.add_argument("--total", type=int, default=10000,
                        help="request lines to emit (default 10000)")
    parser.add_argument("--unique", type=int, default=100,
                        help="distinct job descriptors cycled (default 100)")
    parser.add_argument("--start-id", type=int, default=0,
                        help="id of the first emitted request (default 0)")
    parser.add_argument("--skip", type=int, default=0,
                        help="skip this many positions of the cycle first "
                             "(for split-stream replay checks)")
    parser.add_argument("--shutdown", action="store_true",
                        help="append a shutdown request after the stream")
    args = parser.parse_args()
    if args.total < 0 or args.unique <= 0:
        parser.error("need --total >= 0 and --unique > 0")

    out = sys.stdout
    for n in range(args.total):
        i = args.skip + n
        line = request_line(i, args.unique)
        # Re-stamp the id so split streams stay sequential.
        wanted = args.start_id + n
        line = line.replace(f'{{"id":{i},', f'{{"id":{wanted},', 1)
        out.write(line + "\n")
    if args.shutdown:
        out.write(
            f'{{"id":{args.start_id + args.total},"type":"shutdown"}}\n')
    return 0


if __name__ == "__main__":
    sys.exit(main())
