// heterolab — unified command-line driver for the library.
//
//   heterolab platforms                      Table I capability matrix
//   heterolab run --app rd --platform ec2 --ranks 125 [--mode direct]
//   heterolab fig4 | fig5 | table2 | fig6 | fig7 [--csv]
//   heterolab summary [--ranks 125]
//   heterolab campaign --ranks 512 --iterations 500 [--ondemand]
//                      [--ckpt 25] [--bid 0.70]
//   heterolab provision [--platform ec2]
//
// Everything is deterministic in --seed (default 42).

#include <iostream>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "platform/capability_table.hpp"
#include "provision/planner.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace {

using namespace hetero;

void render(const Table& table, const CliArgs& args) {
  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render_text(std::cout);
  }
}

int cmd_platforms(const CliArgs& args) {
  render(platform::capability_table(), args);
  return 0;
}

int cmd_run(const CliArgs& args) {
  core::Experiment e;
  e.app = args.get_string("app", "rd") == "ns"
              ? perf::AppKind::kNavierStokes
              : perf::AppKind::kReactionDiffusion;
  e.platform = args.get_string("platform", "puma");
  e.ranks = static_cast<int>(args.get_int("ranks", 8));
  e.cells_per_rank_axis = static_cast<int>(args.get_int("cells", 20));
  e.mode = args.get_string("mode", "modeled") == "direct"
               ? core::Mode::kDirect
               : core::Mode::kModeled;
  e.ec2_spot_mix = args.get_bool("spot", false);
  if (e.ec2_spot_mix) {
    e.ec2_placement_groups = 4;
  }
  if (e.mode == core::Mode::kDirect &&
      e.cells_per_rank_axis == 20 && !args.has("cells")) {
    e.cells_per_rank_axis = 4;  // keep direct runs laptop-sized by default
  }
  core::ExperimentRunner runner(
      static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto r = runner.run(e);
  if (!r.launched) {
    std::cout << "LAUNCH FAILED on " << e.platform << ": "
              << r.failure_reason << "\n";
    return 1;
  }
  std::cout << "platform      " << e.platform << " (" << r.hosts
            << " hosts)\n"
            << "provisioning  " << fmt_double(r.provisioning_hours, 1)
            << " man-hours (one-time)\n"
            << "queue wait    " << format_seconds(r.queue_wait_s) << "\n"
            << "assembly      " << fmt_double(r.iteration.assembly_s, 3)
            << " s/iter\n"
            << "precondition  "
            << fmt_double(r.iteration.preconditioner_s, 3) << " s/iter\n"
            << "solve         " << fmt_double(r.iteration.solve_s, 3)
            << " s/iter (" << fmt_double(r.iteration.solver_iterations, 0)
            << " Krylov iters)\n"
            << "total         " << fmt_double(r.iteration.total_s, 3)
            << " s/iter\n"
            << "cost          " << fmt_usd(r.cost_per_iteration_usd)
            << " per iteration\n";
  if (r.spot_hosts > 0) {
    std::cout << "spot hosts    " << r.spot_hosts << " of " << r.hosts
              << " (est. all-spot cost "
              << fmt_usd(r.est_cost_per_iteration_usd) << "/iter)\n";
  }
  if (e.mode == core::Mode::kDirect) {
    std::cout << "direct run    nodal error "
              << fmt_double(r.nodal_error, 10) << ", solver "
              << (r.solver_converged ? "converged" : "DID NOT CONVERGE")
              << "\n";
  }
  return 0;
}

int cmd_report(const std::string& which, const CliArgs& args) {
  core::ExperimentRunner runner(
      static_cast<std::uint64_t>(args.get_int("seed", 42)));
  const auto procs = core::paper_process_counts();
  if (which == "fig4") {
    render(core::weak_scaling_figure(
               runner, perf::AppKind::kReactionDiffusion, procs),
           args);
  } else if (which == "fig5") {
    render(core::weak_scaling_figure(runner, perf::AppKind::kNavierStokes,
                                     procs),
           args);
  } else if (which == "table2") {
    render(core::table2_ec2_assemblies(runner, procs), args);
  } else if (which == "fig6") {
    render(core::cost_figure(runner, perf::AppKind::kReactionDiffusion,
                             procs),
           args);
  } else if (which == "fig7") {
    render(core::cost_figure(runner, perf::AppKind::kNavierStokes, procs),
           args);
  } else if (which == "summary") {
    render(core::summary_table(
               runner, static_cast<int>(args.get_int("ranks", 125))),
           args);
  }
  return 0;
}

int cmd_campaign(const CliArgs& args) {
  core::CampaignConfig config;
  config.ranks = static_cast<int>(args.get_int("ranks", 512));
  config.iterations = static_cast<int>(args.get_int("iterations", 500));
  config.checkpoint_interval = static_cast<int>(args.get_int("ckpt", 25));
  config.use_spot = !args.get_bool("ondemand", false);
  config.spot_bid_usd = args.get_double("bid", 0.70);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto r = core::simulate_ec2_campaign(config);
  std::cout << "strategy       "
            << (config.use_spot ? "spot (bid $" +
                                      fmt_double(config.spot_bid_usd, 2) + ")"
                                : "on-demand")
            << "\n"
            << "wall clock     " << format_seconds(r.wall_clock_s) << "\n"
            << "billed         " << fmt_usd(r.billed_usd)
            << " (accrued " << fmt_usd(r.accrued_usd) << ")\n"
            << "interruptions  " << r.interruptions << " ("
            << r.iterations_redone << " iterations redone)\n"
            << "checkpoints    " << r.checkpoints_written << "\n"
            << "spot hosts     " << r.initial_spot_hosts
            << " at first acquisition\n";
  return 0;
}

int cmd_provision(const CliArgs& args) {
  const std::string only = args.get_string("platform", "");
  for (const auto* spec : platform::all_platforms()) {
    if (!only.empty() && spec->name != only) {
      continue;
    }
    const auto plan = provision::plan_provisioning(*spec);
    std::cout << "=== " << spec->name << " ("
              << fmt_double(plan.total_hours(), 1) << " man-hours) ===\n";
    plan.to_table().render_text(std::cout);
    std::cout << "\n";
  }
  return 0;
}

int usage() {
  std::cout <<
      "usage: heterolab <command> [flags]\n"
      "  platforms                         Table I capability matrix\n"
      "  run --app rd|ns --platform P --ranks N [--mode direct|modeled]\n"
      "      [--cells C] [--spot] [--seed S]\n"
      "  fig4 | fig5 | table2 | fig6 | fig7 [--csv]\n"
      "  summary [--ranks N]\n"
      "  campaign --ranks N --iterations K [--ondemand] [--ckpt I]\n"
      "      [--bid USD]\n"
      "  provision [--platform P]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetero;
  try {
    const CliArgs args(argc, argv);
    if (args.positional().empty()) {
      return usage();
    }
    const std::string command = args.positional().front();
    if (command == "platforms") {
      return cmd_platforms(args);
    }
    if (command == "run") {
      return cmd_run(args);
    }
    if (command == "fig4" || command == "fig5" || command == "table2" ||
        command == "fig6" || command == "fig7" || command == "summary") {
      return cmd_report(command, args);
    }
    if (command == "campaign") {
      return cmd_campaign(args);
    }
    if (command == "provision") {
      return cmd_provision(args);
    }
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
