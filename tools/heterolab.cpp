// heterolab — unified command-line driver for the library.
//
//   heterolab platforms                      Table I capability matrix
//   heterolab run --app rd --platform ec2 --ranks 125 [--mode direct]
//   heterolab fig4 | fig5 | table2 | fig6 | fig7 [--csv]
//   heterolab summary [--ranks 125]
//   heterolab campaign --ranks 512 --iterations 500 [--ondemand]
//                      [--ckpt 25] [--bid 0.70]
//   heterolab provision [--platform ec2]
//   heterolab broker --app rd --elements 1000000 --deadline-h 24
//                    --budget-usd 50 [--objective effective]
//
// Everything is deterministic in --seed (default 42). Unknown subcommands
// or flags print the usage and exit non-zero.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "broker/broker.hpp"
#include "grid/matrix.hpp"
#include "grid/report.hpp"
#include "core/campaign.hpp"
#include "core/campaign_engine.hpp"
#include "core/report.hpp"
#include "obs/bench_io.hpp"
#include "platform/capability_table.hpp"
#include "proc/supervisor.hpp"
#include "provision/planner.hpp"
#include "resil/recovery.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/shutdown.hpp"
#include "support/units.hpp"
#include "svc/memo_store.hpp"
#include "svc/result_codec.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace hetero;

void render(const Table& table, const CliArgs& args) {
  if (args.get_bool("csv", false)) {
    table.render_csv(std::cout);
  } else {
    table.render_text(std::cout);
  }
}

int cmd_platforms(const CliArgs& args) {
  render(platform::capability_table(), args);
  return 0;
}

/// Owns a registered shutdown-hook token; removes the hook on destruction.
class ScopedShutdownHook {
 public:
  ScopedShutdownHook() = default;
  explicit ScopedShutdownHook(std::function<void()> hook)
      : token_(support::add_shutdown_hook(std::move(hook))) {}
  ScopedShutdownHook(ScopedShutdownHook&& other) noexcept
      : token_(other.token_) {
    other.token_ = -1;
  }
  ScopedShutdownHook& operator=(ScopedShutdownHook&& other) noexcept {
    if (this != &other) {
      if (token_ >= 0) {
        support::remove_shutdown_hook(token_);
      }
      token_ = other.token_;
      other.token_ = -1;
    }
    return *this;
  }
  ~ScopedShutdownHook() {
    if (token_ >= 0) {
      support::remove_shutdown_hook(token_);
    }
  }

 private:
  int token_ = -1;
};

/// Engine plus the optional backends the flags wire behind it. Member
/// order is the teardown contract (members destroy in reverse): the engine
/// (which holds raw pointers into the others) goes first, then the
/// supervisor, then the store's flush hook, then the stores.
struct EngineBundle {
  std::unique_ptr<svc::MemoStore> store;
  std::unique_ptr<svc::MemoResultStore> result_store;
  ScopedShutdownHook store_flush_hook;
  std::unique_ptr<proc::Supervisor> supervisor;
  std::unique_ptr<core::CampaignEngine> engine;
};

/// --jobs N > HETEROLAB_JOBS > hardware concurrency; `direct_default_1`
/// makes direct-mode runs sequential unless --jobs is given explicitly
/// (each direct experiment already spawns one thread per rank).
/// --workers N > HETEROLAB_WORKERS > 0 forks a supervised worker-process
/// pool; --store PATH persists results across restarts; --proc-dir PATH
/// keeps the worker shards on disk so interrupted runs resume.
EngineBundle make_engine(const CliArgs& args, bool direct_default_1 = false,
                         std::optional<std::uint64_t> seed_override = {}) {
  EngineBundle b;
  core::CampaignEngineOptions opt;
  opt.jobs = static_cast<int>(args.get_int("jobs", 0));
  if (opt.jobs == 0 && direct_default_1 && !args.has("jobs")) {
    opt.jobs = 1;
  }
  // seed_override pins the runner seed regardless of --seed; the grid
  // subcommand uses it so --seed moves only the matrix's stochastic cells.
  const std::uint64_t seed = seed_override.has_value()
      ? *seed_override
      : static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string store_path = args.get_string("store", "");
  if (!store_path.empty()) {
    b.store = std::make_unique<svc::MemoStore>(store_path);
    b.result_store = std::make_unique<svc::MemoResultStore>(*b.store);
    opt.result_store = b.result_store.get();
    // A Ctrl-C mid-campaign must not lose appended results to the page
    // cache: fsync the store from the shutdown watcher.
    svc::MemoStore* store = b.store.get();
    b.store_flush_hook = ScopedShutdownHook([store] { store->flush(); });
  }
  proc::ProcOptions popt;
  popt.shard_dir = args.get_string("proc-dir", "");
  // Fork the workers before the engine exists: fork(2) from a process
  // that already has pool threads is a latent deadlock.
  b.supervisor = proc::make_supervisor(
      static_cast<int>(args.get_int("workers", -1)), seed, popt);
  opt.executor = b.supervisor.get();
  b.engine = std::make_unique<core::CampaignEngine>(seed, opt);
  return b;
}

/// One stderr line per supervised run; stdout stays byte-identical to
/// `--workers 0` so CSV/JSONL consumers (and the CI byte-diff gate) never
/// see the process pool.
void print_proc_stats(const proc::Supervisor* sup) {
  if (sup == nullptr) {
    return;
  }
  const auto s = sup->stats();
  std::cerr << "proc          " << sup->workers() << " worker(s): "
            << s.jobs_dispatched << " dispatched, " << s.results_completed
            << " completed, " << s.shard_replays << " shard replay(s), "
            << s.worker_crashes << " crash(es) (" << s.hung_workers
            << " hung), " << s.respawns << " respawn(s), " << s.redispatches
            << " redispatch(es), " << s.quarantined << " quarantined\n";
}

int cmd_run(const CliArgs& args) {
  core::Experiment e;
  e.app = args.get_string("app", "rd") == "ns"
              ? perf::AppKind::kNavierStokes
              : perf::AppKind::kReactionDiffusion;
  e.platform = args.get_string("platform", "puma");
  e.ranks = static_cast<int>(args.get_int("ranks", 8));
  e.cells_per_rank_axis = static_cast<int>(args.get_int("cells", 20));
  e.mode = args.get_string("mode", "modeled") == "direct"
               ? core::Mode::kDirect
               : core::Mode::kModeled;
  e.ec2_spot_mix = args.get_bool("spot", false);
  if (e.ec2_spot_mix) {
    e.ec2_placement_groups = 4;
  }
  e.faults.rank_crash_rate = args.get_double("faults", 0.0);
  e.faults.launch_failure_rate = args.get_double("launch-faults", 0.0);
  e.faults.net_degrade_rate = args.get_double("degrade", 0.0);
  e.recovery.kind =
      resil::recovery_kind_by_name(args.get_string("recovery", "none"));
  e.recovery.checkpoint_every =
      static_cast<int>(args.get_int("ckpt-every", 2));
  e.recovery.shrink_ranks_on_crash = args.get_bool("shrink", false);
  e.faults.reclaim_storm_rate = args.get_double("storm-rate", 0.0);
  if (args.has("rebroker")) {
    e.rebroker.enabled = true;
    e.rebroker.fallback_platform = args.get_string("rebroker", "puma");
    e.rebroker.hysteresis = args.get_double("rebroker-hysteresis", 0.15);
    e.rebroker.migrate_budget_usd =
        args.get_double("migrate-budget-usd", 0.0);
    e.rebroker.deadline_s = args.get_double("rebroker-deadline-s", 0.0);
    e.rebroker.sample_every =
        static_cast<int>(args.get_int("rebroker-sample-every", 1));
  }
  HETERO_REQUIRE(e.faults.rank_crash_rate == 0.0 ||
                     e.mode == core::Mode::kDirect,
                 "--faults injects rank crashes into the simulated MPI run: "
                 "needs --mode direct");
  HETERO_REQUIRE(e.faults.reclaim_storm_rate == 0.0 ||
                     e.mode == core::Mode::kDirect,
                 "--storm-rate injects spot reclaims into the simulated MPI "
                 "run: needs --mode direct");
  HETERO_REQUIRE(!e.rebroker.enabled || e.mode == core::Mode::kDirect,
                 "--rebroker monitors the simulated MPI run: needs "
                 "--mode direct");
  if (args.has("skew")) {
    e.skew.slow_core_factor = args.get_double("skew", 2.0);
    e.skew.slow_core_fraction = args.get_double("skew-fraction", 0.25);
    e.skew.noise_rate = args.get_double("skew-noise", 0.0);
  }
  e.balance.enabled = args.get_bool("balance", false);
  if (e.balance.enabled) {
    e.balance.mode = args.get_string("balance-mode", "repartition");
    e.balance.threshold = args.get_double("balance-threshold", 1.25);
  }
  HETERO_REQUIRE(!args.has("skew") || e.mode == core::Mode::kDirect,
                 "--skew stretches per-rank compute charges in the simulated "
                 "MPI run: needs --mode direct");
  HETERO_REQUIRE(args.has("skew") || (!args.has("skew-fraction") &&
                                      !args.has("skew-noise")),
                 "--skew-fraction/--skew-noise refine --skew: pass --skew "
                 "FACTOR as well");
  HETERO_REQUIRE(!e.balance.enabled || e.mode == core::Mode::kDirect,
                 "--balance rebalances the simulated MPI run: needs "
                 "--mode direct");
  HETERO_REQUIRE(e.balance.enabled || (!args.has("balance-threshold") &&
                                       !args.has("balance-mode")),
                 "--balance-threshold/--balance-mode tune --balance: pass "
                 "--balance as well");
  HETERO_REQUIRE(!(e.balance.enabled && e.recovery.shrink_ranks_on_crash),
                 "--balance conflicts with --shrink: rebalance weights are "
                 "keyed to the original rank count");
  HETERO_REQUIRE(!(e.balance.enabled && e.rebroker.enabled),
                 "--balance conflicts with --rebroker: at most one mid-run "
                 "controller may rebuild the job");
  if (e.mode == core::Mode::kDirect &&
      e.cells_per_rank_axis == 20 && !args.has("cells")) {
    e.cells_per_rank_axis = 4;  // keep direct runs laptop-sized by default
  }
  e.direct_steps = static_cast<int>(args.get_int("steps", 3));
  HETERO_REQUIRE(e.direct_steps >= 1, "--steps needs at least one time step");
  HETERO_REQUIRE(!args.has("steps") || e.mode == core::Mode::kDirect,
                 "--steps sets the simulated MPI run's step count: needs "
                 "--mode direct");
  e.trace_path = args.get_string("trace", "");
  e.metrics_path = args.get_string("metrics", "");
  HETERO_REQUIRE(e.trace_path.empty() || e.mode == core::Mode::kDirect,
                 "--trace records the simulated MPI run: needs --mode direct");
  auto bundle = make_engine(args, e.mode == core::Mode::kDirect);
  const auto r = bundle.engine->run(e);
  print_proc_stats(bundle.supervisor.get());
  obs::BenchReporter reporter(args, "heterolab_run");
  if (reporter.enabled()) {
    obs::Json record = obs::Json::object();
    record.set("app", args.get_string("app", "rd"));
    record.set("platform", e.platform);
    record.set("procs", static_cast<double>(e.ranks));
    record.set("mode",
               e.mode == core::Mode::kDirect ? "direct" : "modeled");
    record.set("launched", r.launched);
    if (r.launched) {
      record.set("hosts", static_cast<double>(r.hosts));
      record.set("queue_wait_s", r.queue_wait_s);
      record.set("provisioning_hours", r.provisioning_hours);
      record.set("assembly_s", r.iteration.assembly_s);
      record.set("precond_s", r.iteration.preconditioner_s);
      record.set("solve_s", r.iteration.solve_s);
      record.set("total_s", r.iteration.total_s);
      record.set("iters", r.iteration.solver_iterations);
      record.set("cost_usd", r.cost_per_iteration_usd);
    } else {
      record.set("failure_reason", r.failure_reason);
    }
    if (e.faults.enabled()) {
      record.set("attempts", static_cast<double>(r.resil.attempts));
      record.set("faults_injected",
                 static_cast<double>(r.resil.faults_injected));
      record.set("launch_retries",
                 static_cast<double>(r.resil.launch_retries));
      record.set("recovered", r.resil.recovered);
      record.set("retry_delay_s", r.resil.retry_delay_s);
      record.set("wasted_cost_usd", r.resil.wasted_cost_usd);
      record.set("final_ranks", static_cast<double>(r.resil.final_ranks));
    }
    if (e.rebroker.enabled) {
      record.set("rebroker_samples",
                 static_cast<double>(r.rebroker.samples));
      record.set("rebroker_decisions",
                 static_cast<double>(r.rebroker.decisions));
      record.set("rebroker_migrations",
                 static_cast<double>(r.rebroker.migrations));
      record.set("rebroker_storms",
                 static_cast<double>(r.rebroker.storms));
      record.set("final_platform", r.rebroker.final_platform);
      record.set("migration_wait_s", r.rebroker.migration_wait_s);
      record.set("migration_cost_usd", r.rebroker.migration_cost_usd);
    }
    if (e.balance.enabled) {
      record.set("lb_checks", static_cast<double>(r.balance.checks));
      record.set("lb_rebalances",
                 static_cast<double>(r.balance.rebalances));
      record.set("lb_last_imbalance", r.balance.last_imbalance);
    }
    reporter.add_record(std::move(record));
  }
  const std::string trail_path = args.get_string("rebroker-trail", "");
  if (!trail_path.empty()) {
    std::ofstream trail(trail_path, std::ios::trunc);
    HETERO_REQUIRE(trail.good(),
                   "cannot open --rebroker-trail path: " + trail_path);
    for (const auto& line : r.rebroker.trail) {
      trail << line << "\n";
    }
  }
  if (!r.launched) {
    // Diagnostics go to stderr so a piped stdout (e.g. --json to a file
    // plus shell redirection) stays machine-parseable.
    std::cerr << "LAUNCH FAILED on " << e.platform << ": "
              << r.failure_reason << "\n";
    return 1;
  }
  std::cout << "platform      " << e.platform << " (" << r.hosts
            << " hosts)\n"
            << "provisioning  " << fmt_double(r.provisioning_hours, 1)
            << " man-hours (one-time)\n"
            << "queue wait    " << format_seconds(r.queue_wait_s) << "\n"
            << "assembly      " << fmt_double(r.iteration.assembly_s, 3)
            << " s/iter\n"
            << "precondition  "
            << fmt_double(r.iteration.preconditioner_s, 3) << " s/iter\n"
            << "solve         " << fmt_double(r.iteration.solve_s, 3)
            << " s/iter (" << fmt_double(r.iteration.solver_iterations, 0)
            << " Krylov iters)\n"
            << "total         " << fmt_double(r.iteration.total_s, 3)
            << " s/iter\n"
            << "cost          " << fmt_usd(r.cost_per_iteration_usd)
            << " per iteration\n";
  if (r.spot_hosts > 0) {
    std::cout << "spot hosts    " << r.spot_hosts << " of " << r.hosts
              << " (est. all-spot cost "
              << fmt_usd(r.est_cost_per_iteration_usd) << "/iter)\n";
  }
  if (e.mode == core::Mode::kDirect) {
    std::cout << "direct run    nodal error "
              << fmt_double(r.nodal_error, 10) << ", solver "
              << (r.solver_converged ? "converged" : "DID NOT CONVERGE")
              << "\n";
  }
  if (e.faults.enabled()) {
    std::cout << "resilience    " << r.resil.attempts << " attempt(s), "
              << r.resil.faults_injected << " fault(s), "
              << r.resil.launch_retries << " launch retr"
              << (r.resil.launch_retries == 1 ? "y" : "ies") << ", policy "
              << resil::to_string(e.recovery.kind) << "\n";
    if (r.resil.faults_injected > 0) {
      std::cout << "              " << r.resil.steps_recovered
                << " step(s) recovered from checkpoints, "
                << r.resil.steps_wasted << " wasted; backoff "
                << format_seconds(r.resil.retry_delay_s) << ", wasted cost "
                << fmt_usd(r.resil.wasted_cost_usd) << ", finished on "
                << r.resil.final_ranks << " ranks\n";
    }
  }
  if (e.rebroker.enabled) {
    std::cout << "rebroker      " << r.rebroker.samples << " sample(s), "
              << r.rebroker.decisions << " decision(s), "
              << r.rebroker.migrations << " migration(s), "
              << r.rebroker.storms << " storm(s); finished on "
              << r.rebroker.final_platform << "\n";
    if (r.rebroker.migrations > 0) {
      std::cout << "              migration wait "
                << format_seconds(r.rebroker.migration_wait_s)
                << ", remaining-work cost "
                << fmt_usd(r.rebroker.migration_cost_usd) << "\n";
    }
  }
  if (e.balance.enabled) {
    std::cout << "balance       " << r.balance.checks << " check(s), "
              << r.balance.rebalances << " rebalance(s), last imbalance "
              << fmt_double(r.balance.last_imbalance, 3) << " ("
              << e.balance.mode << ")\n";
  }
  return 0;
}

int cmd_report(const std::string& which, const CliArgs& args) {
  auto bundle = make_engine(args);
  auto& engine = *bundle.engine;
  const auto procs = core::paper_process_counts();
  const Table table = [&]() -> Table {
    if (which == "fig4") {
      return core::weak_scaling_figure(engine,
                                       perf::AppKind::kReactionDiffusion,
                                       procs);
    }
    if (which == "fig5") {
      return core::weak_scaling_figure(engine, perf::AppKind::kNavierStokes,
                                       procs);
    }
    if (which == "table2") {
      return core::table2_ec2_assemblies(engine, procs);
    }
    if (which == "fig6") {
      return core::cost_figure(engine, perf::AppKind::kReactionDiffusion,
                               procs);
    }
    if (which == "fig7") {
      return core::cost_figure(engine, perf::AppKind::kNavierStokes, procs);
    }
    HETERO_REQUIRE(which == "summary", "unknown report command: " + which);
    return core::summary_table(engine,
                               static_cast<int>(args.get_int("ranks", 125)));
  }();
  render(table, args);
  print_proc_stats(bundle.supervisor.get());
  obs::BenchReporter reporter(args, "heterolab_" + which);
  reporter.add_table(table);
  return 0;
}

int cmd_campaign(const CliArgs& args) {
  core::CampaignConfig config;
  config.ranks = static_cast<int>(args.get_int("ranks", 512));
  config.cells_per_rank_axis = static_cast<int>(args.get_int("cells", 20));
  config.iterations = static_cast<int>(args.get_int("iterations", 500));
  config.checkpoint_interval = static_cast<int>(args.get_int("ckpt", 25));
  config.use_spot = !args.get_bool("ondemand", false);
  config.spot_bid_usd = args.get_double("bid", 0.70);
  config.faults.reclaim_storm_rate = args.get_double("storm-rate", 0.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto r = core::simulate_ec2_campaign(config);
  std::cout << "strategy       "
            << (config.use_spot ? "spot (bid $" +
                                      fmt_double(config.spot_bid_usd, 2) + ")"
                                : "on-demand")
            << "\n"
            << "wall clock     " << format_seconds(r.wall_clock_s) << "\n"
            << "billed         " << fmt_usd(r.billed_usd)
            << " (accrued " << fmt_usd(r.accrued_usd) << ")\n"
            << "interruptions  " << r.interruptions << " ("
            << r.iterations_redone << " iterations redone)\n"
            << "checkpoints    " << r.checkpoints_written << "\n"
            << "spot hosts     " << r.initial_spot_hosts
            << " at first acquisition\n";
  return 0;
}

svc::ServiceOptions service_options(const CliArgs& args) {
  svc::ServiceOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.jobs = static_cast<int>(args.get_int("jobs", 0));
  options.store_path = args.get_string("store", "");
  options.budget_capacity = args.get_double("budget-capacity", 0.0);
  options.budget_refill = args.get_double("budget-refill", 0.0);
  return options;
}

void print_serve_stats(const svc::ServeStats& stats, svc::Service& service) {
  // Summary goes to stderr: stdout is the response stream.
  const auto memo = service.store().stats();
  std::cerr << "served " << stats.served << " request(s), " << stats.pings
            << " ping(s), " << stats.errors << " error(s), " << stats.busy
            << " busy, " << stats.throttled << " throttled; memo "
            << memo.hits << "/" << memo.lookups << " hit(s), "
            << memo.appends << " append(s)\n";
}

/// Batch advisory mode: answer a JSONL request file through the same
/// parser, memo store, and response schema as the daemon.
int cmd_broker_batch(const CliArgs& args) {
  for (const char* flag :
       {"app", "elements", "ranks", "cells", "iterations", "deadline-h",
        "budget-usd", "objective", "risk", "risk-budget-usd", "ported",
        "top", "csv"}) {
    HETERO_REQUIRE(!args.has(flag),
                   std::string("--requests reads every job field from the "
                               "JSONL file; drop --") +
                       flag);
  }
  const std::string path = args.get_string("requests", "");
  std::ifstream in(path);
  HETERO_REQUIRE(in.good(), "cannot open requests file: " + path);
  svc::Service service(service_options(args));
  const int hook = support::add_shutdown_hook([&service] {
    service.store().flush();
    std::cerr << "broker: interrupted; memo store flushed\n";
  });
  const auto stats = svc::serve_pipe(service, in, std::cout);
  support::remove_shutdown_hook(hook);
  print_serve_stats(stats, service);
  return 0;
}

int cmd_serve(const CliArgs& args) {
  svc::Service service(service_options(args));
  // A SIGINT/SIGTERM against the daemon must not strand appended memo
  // records in the page cache; the guard's watcher runs this, prints its
  // own stderr notice, and _exits 128+signo.
  const int hook = support::add_shutdown_hook([&service] {
    service.store().flush();
    std::cerr << "serve: interrupted; memo store flushed\n";
  });
  svc::ServeOptions serve_options;
  serve_options.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 1024));
  serve_options.reject_when_full = args.get_bool("reject-when-full", false);
  serve_options.workers = static_cast<int>(args.get_int("workers", 1));
  const std::string socket_path = args.get_string("socket", "");
  const auto stats =
      socket_path.empty()
          ? svc::serve_pipe(service, std::cin, std::cout, serve_options)
          : svc::serve_unix_socket(service, socket_path, serve_options);
  support::remove_shutdown_hook(hook);
  print_serve_stats(stats, service);
  return 0;
}

int cmd_broker(const CliArgs& args) {
  if (args.has("requests")) {
    return cmd_broker_batch(args);
  }
  broker::JobRequest request;
  request.app = args.get_string("app", "rd") == "ns"
                    ? perf::AppKind::kNavierStokes
                    : perf::AppKind::kReactionDiffusion;
  request.total_elements = args.get_int("elements", 0);
  request.ranks = static_cast<int>(args.get_int("ranks", 0));
  request.cells_per_rank_axis = static_cast<int>(args.get_int("cells", 20));
  request.iterations = static_cast<int>(args.get_int("iterations", 100));
  if (args.has("deadline-h")) {
    request.deadline_h = args.get_double("deadline-h", 0.0);
  }
  if (args.has("budget-usd")) {
    request.budget_usd = args.get_double("budget-usd", 0.0);
  }
  request.risk_tolerance = args.get_double("risk", 0.5);
  if (args.has("risk-budget-usd")) {
    request.risk_budget_usd = args.get_double("risk-budget-usd", 0.0);
  }
  request.include_provisioning = !args.get_bool("ported", false);

  const auto objective =
      broker::objective_by_name(args.get_string("objective", "effective"));
  broker::Broker advisor(
      static_cast<std::uint64_t>(args.get_int("seed", 42)),
      static_cast<int>(args.get_int("jobs", 0)));
  const auto rec = advisor.recommend(request, objective);

  std::cout << "objective     " << objective.name << " — "
            << objective.description << "\n"
            << "candidates    " << rec.ranked.size() + rec.rejected.size()
            << " considered, " << rec.ranked.size() << " feasible\n";
  if (rec.has_winner()) {
    const auto& w = rec.winner();
    std::cout << "recommended   " << w.candidate.label() << " — "
              << format_seconds(w.effective_s) << " effective, "
              << fmt_usd(w.cost_usd) << "\n\n";
  } else if (rec.rejected.empty()) {
    std::cout << "recommended   nothing to rank: no deployment candidate "
                 "fits this problem (each rank needs >= 2 cells per axis; "
                 "check --elements/--ranks)\n\n";
  } else {
    std::cout << "recommended   nothing satisfies the constraints; every "
                 "rejection is explained below\n\n";
  }
  const auto limit =
      static_cast<std::size_t>(args.get_int("top", 12));
  std::cout << "--- ranked candidates (top " << limit << ") ---\n";
  render(broker::recommendation_table(rec, limit), args);
  std::cout << "\n--- time/cost Pareto frontier ---\n";
  render(broker::frontier_table(rec), args);
  if (!rec.rejected.empty()) {
    std::cout << "\n--- rejected candidates ---\n";
    render(broker::rejection_table(rec), args);
  }
  return rec.has_winner() ? 0 : 1;
}

int cmd_provision(const CliArgs& args) {
  const std::string only = args.get_string("platform", "");
  for (const auto* spec : platform::all_platforms()) {
    if (!only.empty() && spec->name != only) {
      continue;
    }
    const auto plan = provision::plan_provisioning(*spec);
    std::cout << "=== " << spec->name << " ("
              << fmt_double(plan.total_hours(), 1) << " man-hours) ===\n";
    plan.to_table().render_text(std::cout);
    std::cout << "\n";
  }
  return 0;
}

/// The standing grid benchmark: expand the matrix (preset or a sampled
/// sub-matrix), stream it through the engine shard by shard, and write the
/// heterolab-grid-v1 report. stdout (or --out) carries only the report —
/// progress and engine/backend stats go to stderr, so the report is
/// byte-identical at any --jobs/--workers level and across an interrupt +
/// --store resume. The engine always runs under the fixed grid runner
/// seed; --seed perturbs only the matrix's stochastic cells.
int cmd_grid(const CliArgs& args) {
  HETERO_REQUIRE(!(args.has("matrix") && args.has("cells")),
                 "--matrix picks a preset cell set; it conflicts with "
                 "--cells N (pick one)");
  HETERO_REQUIRE(!args.has("sample-seed") || args.has("cells"),
                 "--sample-seed seeds the --cells sample: pass --cells N "
                 "as well");
  HETERO_REQUIRE(!args.has("abort-after-shards") || args.has("store"),
                 "--abort-after-shards interrupts a resumable run: pass "
                 "--store PATH as well");
  grid::MatrixSpec spec = grid::preset(args.get_string("matrix", "full"));
  if (args.has("cells")) {
    const long long n = args.get_int("cells", 0);
    HETERO_REQUIRE(n >= 1, "--cells needs at least one cell");
    spec.name = "custom";
    spec.sample_cells = n;
    spec.sample_seed =
        static_cast<std::uint64_t>(args.get_int("sample-seed", 7));
  }
  spec.matrix_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  spec.iterations = static_cast<int>(args.get_int("iterations", 100));
  HETERO_REQUIRE(spec.iterations >= 1, "--iterations must be positive");
  const std::vector<grid::GridCell> cells = grid::expand(spec);

  grid::GridRunOptions ropt;
  ropt.shard_size = static_cast<int>(args.get_int("shard-size", 512));
  HETERO_REQUIRE(ropt.shard_size >= 1, "--shard-size must be positive");
  ropt.abort_after_shards =
      static_cast<int>(args.get_int("abort-after-shards", 0));
  HETERO_REQUIRE(ropt.abort_after_shards >= 0,
                 "--abort-after-shards must be >= 0");
  ropt.progress = [](int shard, int shards, std::int64_t done,
                     std::int64_t total) {
    std::cerr << "grid: shard " << shard << "/" << shards << " done ("
              << done << "/" << total << " cells)\n";
  };

  auto bundle = make_engine(args, false, grid::kGridRunnerSeed);
  const std::vector<core::ExperimentResult> results =
      grid::run_cells(*bundle.engine, cells, ropt);
  const std::vector<obs::Json> records =
      grid::build_report(spec, cells, results, grid::kGridRunnerSeed);
  grid::write_report(records, args.get_string("out", "-"));

  std::int64_t launched = 0;
  for (const auto& r : results) {
    launched += r.launched ? 1 : 0;
  }
  const auto stats = bundle.engine->stats();
  std::cerr << "grid: " << cells.size() << " cell(s) of the " << spec.name
            << " matrix, " << launched << " launched, " << stats.cache_hits
            << " cache hit(s), " << stats.store_hits << " store hit(s)\n";
  print_proc_stats(bundle.supervisor.get());
  return 0;
}

int usage() {
  std::cout <<
      "usage: heterolab <command> [flags]\n"
      "  platforms                         Table I capability matrix\n"
      "  run --app rd|ns --platform P --ranks N [--mode direct|modeled]\n"
      "      [--cells C] [--spot] [--seed S] [--jobs J] [--json OUT.jsonl]\n"
      "      [--trace OUT.trace.json] [--metrics OUT.metrics.json]\n"
      "      [--faults RATE] [--launch-faults RATE] [--degrade RATE]\n"
      "      [--recovery none|scratch|ckpt] [--ckpt-every K] [--shrink]\n"
      "      [--storm-rate RATE] [--rebroker PLATFORM]\n"
      "      [--rebroker-hysteresis H] [--migrate-budget-usd D]\n"
      "      [--rebroker-deadline-s S] [--rebroker-sample-every K]\n"
      "      [--rebroker-trail OUT.jsonl]\n"
      "      [--skew FACTOR] [--skew-fraction F] [--skew-noise RATE]\n"
      "      [--balance] [--balance-mode repartition|diffuse]\n"
      "      [--balance-threshold X] [--steps N]\n"
      "      [--workers W] [--store PATH] [--proc-dir DIR]\n"
      "  fig4 | fig5 | table2 | fig6 | fig7 [--csv] [--jobs J]\n"
      "      [--json OUT.jsonl] [--workers W] [--store PATH]\n"
      "      [--proc-dir DIR]\n"
      "  summary [--ranks N] [--jobs J] [--workers W] [--store PATH]\n"
      "      [--proc-dir DIR]\n"
      "  campaign --ranks N --iterations K [--ondemand] [--ckpt I]\n"
      "      [--bid USD] [--cells C] [--storm-rate RATE]\n"
      "  grid [--matrix full|ci|smoke | --cells N [--sample-seed S]]\n"
      "      [--out REPORT.jsonl] [--seed S] [--iterations K]\n"
      "      [--shard-size C] [--jobs J] [--workers W] [--store PATH]\n"
      "      [--proc-dir DIR] [--abort-after-shards K]\n"
      "      the standing grid benchmark: expand the full platform x ranks\n"
      "      x solver/element x faults x skew x objective cross product and\n"
      "      emit the heterolab-grid-v1 report (stdout, or --out); resumes\n"
      "      from --store byte-identically (see docs/grid_benchmark.md)\n"
      "  provision [--platform P]\n"
      "  broker --app rd|ns [--elements E | --ranks N [--cells C]]\n"
      "      [--iterations K] [--deadline-h H] [--budget-usd D]\n"
      "      [--objective time|cost|effective|blend] [--risk R]\n"
      "      [--risk-budget-usd D] [--ported] [--top N] [--seed S]\n"
      "      [--jobs J]\n"
      "  broker --requests FILE.jsonl [--store PATH] [--seed S] [--jobs J]\n"
      "      answer a heterolab-svc-v1 request file in batch\n"
      "  serve [--store PATH] [--socket PATH] [--queue N]\n"
      "      [--reject-when-full] [--workers W] [--jobs J] [--seed S]\n"
      "      [--budget-capacity T] [--budget-refill T]\n"
      "      advisory daemon: JSONL requests on stdin (or the Unix socket),\n"
      "      JSONL decisions on stdout (see docs/service.md)\n"
      "--jobs J evaluates experiments on J worker threads (output is\n"
      "byte-identical at any J). Default: HETEROLAB_JOBS if set, else the\n"
      "hardware thread count; direct-mode runs default to 1.\n"
      "--workers W forks W supervised worker *processes* (heartbeats,\n"
      "crash retry, poison-job quarantine; stdout stays byte-identical at\n"
      "any W). Default: HETEROLAB_WORKERS if set, else 0 (in-process).\n"
      "--store PATH persists results across restarts; --proc-dir DIR keeps\n"
      "worker shards so an interrupted campaign resumes incrementally.\n"
      "See docs/campaign_scaleout.md.\n";
  return 2;
}

/// Rejects flags the subcommand does not understand (prints usage, exits
/// non-zero) instead of silently ignoring them.
bool flags_understood(const CliArgs& args,
                      const std::vector<std::string>& allowed) {
  bool ok = true;
  for (const auto& name : args.flag_names()) {
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      std::cerr << "unknown flag for this command: --" << name << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetero;
  // Installed first, while the process is single-threaded: Ctrl-C against
  // any subcommand runs the registered cleanup hooks (flush + fsync
  // writers, kill + reap campaign workers), prints a clear stderr message,
  // and exits 128+signo instead of dying mid-write.
  support::ShutdownGuard shutdown_guard;
  try {
    const CliArgs args(argc, argv);
    if (args.positional().size() != 1) {
      if (args.positional().size() > 1) {
        std::cerr << "expected exactly one command, got: ";
        for (const auto& p : args.positional()) {
          std::cerr << p << " ";
        }
        std::cerr << "\n";
      }
      return usage();
    }
    const std::string command = args.positional().front();
    if (command == "platforms") {
      return flags_understood(args, {"csv"}) ? cmd_platforms(args) : usage();
    }
    if (command == "run") {
      return flags_understood(args, {"app", "platform", "ranks", "cells",
                                     "mode", "spot", "seed", "jobs", "json",
                                     "trace", "metrics", "faults",
                                     "launch-faults", "degrade", "recovery",
                                     "ckpt-every", "shrink", "storm-rate",
                                     "rebroker", "rebroker-hysteresis",
                                     "migrate-budget-usd",
                                     "rebroker-deadline-s",
                                     "rebroker-sample-every",
                                     "rebroker-trail", "skew",
                                     "skew-fraction", "skew-noise",
                                     "balance", "balance-mode",
                                     "balance-threshold", "steps",
                                     "workers", "store", "proc-dir"})
                 ? cmd_run(args)
                 : usage();
    }
    if (command == "fig4" || command == "fig5" || command == "table2" ||
        command == "fig6" || command == "fig7" || command == "summary") {
      const std::vector<std::string> allowed =
          command == "summary"
              ? std::vector<std::string>{"csv", "seed", "ranks", "jobs",
                                         "json", "workers", "store",
                                         "proc-dir"}
              : std::vector<std::string>{"csv", "seed", "jobs", "json",
                                         "workers", "store", "proc-dir"};
      return flags_understood(args, allowed) ? cmd_report(command, args)
                                             : usage();
    }
    if (command == "campaign") {
      return flags_understood(args, {"ranks", "iterations", "ckpt",
                                     "ondemand", "bid", "cells", "seed",
                                     "storm-rate"})
                 ? cmd_campaign(args)
                 : usage();
    }
    if (command == "grid") {
      return flags_understood(args, {"matrix", "cells", "sample-seed",
                                     "out", "seed", "iterations",
                                     "shard-size", "abort-after-shards",
                                     "jobs", "workers", "store", "proc-dir"})
                 ? cmd_grid(args)
                 : usage();
    }
    if (command == "provision") {
      return flags_understood(args, {"platform"}) ? cmd_provision(args)
                                                  : usage();
    }
    if (command == "broker") {
      return flags_understood(
                 args, {"app", "elements", "ranks", "cells", "iterations",
                        "deadline-h", "budget-usd", "objective", "risk",
                        "risk-budget-usd", "ported", "top", "seed", "jobs",
                        "csv", "requests", "store"})
                 ? cmd_broker(args)
                 : usage();
    }
    if (command == "serve") {
      return flags_understood(args, {"store", "socket", "queue",
                                     "reject-when-full", "workers", "jobs",
                                     "seed", "budget-capacity",
                                     "budget-refill"})
                 ? cmd_serve(args)
                 : usage();
    }
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
