#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml, one function per CI job.
#
# Usage: tools/ci.sh [job ...]
#   release   Release + -Werror build, full ctest, broker smoke
#   debug     Debug build, full ctest
#   bench     bench-regression: run the four paper-figure benches with
#             --json and hold them to bench/baselines/ via check_bench.py;
#             then re-run fig4 with --jobs 8 and require byte-identical
#             output (the campaign engine's determinism guarantee)
#   kernels   kernel-regression: run bench_kernels --json and hold the
#             fast/reference speedups and arithmetic intensities to
#             bench/baselines/kernels.json via check_bench.py
#   asan      ASan+UBSan build, full ctest (includes the property-based
#             numeric tests la_prop_test and kernels_diff_test)
#   tsan      TSan build, concurrency + kernel-mode tests only
#   faultsoak fault-soak: ASan+UBSan build; runs the fault-injection and
#             recovery tests plus bench_ablation_failure_recovery against
#             its baseline, and requires --jobs 8 output byte-identical to
#             --jobs 1 (fault schedules are pure hashes of the seed)
#   svc       advisory daemon: svc tests under ASan, a 10k piped-request
#             soak split across a mid-stream restart (warm replay must be
#             byte-identical to the unbroken run, stream validated by
#             check_bench.py --schema svc), and the Release
#             bench_svc_throughput warm-speedup gate
#   rebroker  closed-loop re-brokering: rebroker tests under ASan,
#             bench_ablation_rebroker against bench/baselines/rebroker.json
#             (adaptive must beat static on cost AND completion at a 3%
#             storm rate), the decision trail validated by check_bench.py
#             --schema rebroker, and a byte-identity gate on the trail
#             across --jobs 8 and a fresh same-seed re-run
#   loadbalance  per-rank skew + load balancing: partitioner/balancer tests
#             under ASan, bench_ablation_load_balance against
#             bench/baselines/load_balance.json (balancing must win >= 1.2x
#             of modeled total time at 27 ranks under 2x skew while calm
#             cells stay bitwise), and a --jobs 1 vs 8 byte-identity gate
#   procsoak  multi-process backend: proc tests under ASan, a
#             500-experiment chaos soak (5% crash/hang/exit injected; must
#             complete byte-identical minus quarantined poison jobs), and a
#             --workers 4 vs --workers 0 byte-diff gate on the CLI
#   grid      grid-benchmark matrix: grid/campaign/proc tests under ASan,
#             the self-checking bench_grid_matrix, the 500-cell ci matrix
#             validated by check_bench.py --schema grid against
#             bench/baselines/grid.json, a SIGTERM-at-50% interrupt-resume
#             byte-diff gate on the CLI, and a seed-perturbation gate
#             (--against --expect-stochastic-drift)
#   all       everything above, in that order (the default)
#
# Each job builds in its own directory (build-ci-<job>) so sanitizer and
# debug artifacts never mix. ccache is used automatically when installed.
set -eu

# Portable parallelism: GNU nproc, then POSIX getconf, then BSD sysctl.
detect_jobs() {
  nproc 2>/dev/null ||
    getconf _NPROCESSORS_ONLN 2>/dev/null ||
    sysctl -n hw.ncpu 2>/dev/null ||
    echo 4
}
JOBS="$(detect_jobs)"

LAUNCHER_FLAG=""
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER_FLAG="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

configure_and_build() {
  # $1 build dir; remaining args are extra cmake cache settings.
  dir="$1"
  shift
  # $LAUNCHER_FLAG is intentionally unquoted: empty means "no extra flag".
  # shellcheck disable=SC2086
  cmake -B "$dir" -S . $LAUNCHER_FLAG "$@"
  cmake --build "$dir" -j "$JOBS"
}

job_release() {
  echo "== ci job: release (Release + -Werror, full ctest, broker smoke) =="
  configure_and_build build-ci-release \
      -DCMAKE_BUILD_TYPE=Release -DHETERO_WERROR=ON
  ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
      --timeout 600
  if [ ! -x build-ci-release/tools/heterolab ]; then
    echo "ci: FAIL — heterolab binary missing after build" >&2
    exit 1
  fi
  if [ ! -x build-ci-release/bench/bench_broker_frontier ]; then
    echo "ci: FAIL — broker smoke binary bench_broker_frontier missing" >&2
    exit 1
  fi
  build-ci-release/tools/heterolab broker --app rd --elements 1000000 \
      --deadline-h 24 --budget-usd 50
  build-ci-release/bench/bench_broker_frontier
}

job_debug() {
  echo "== ci job: debug (Debug build, full ctest) =="
  configure_and_build build-ci-debug \
      -DCMAKE_BUILD_TYPE=Debug -DHETERO_WERROR=ON
  ctest --test-dir build-ci-debug --output-on-failure -j "$JOBS" \
      --timeout 600
}

job_bench() {
  echo "== ci job: bench (paper-figure regression gate) =="
  configure_and_build build-ci-release -DCMAKE_BUILD_TYPE=Release \
      -DHETERO_WERROR=ON
  out_dir=build-ci-release/bench-out
  mkdir -p "$out_dir"
  for bench in fig4_rd_weak_scaling fig5_ns_weak_scaling \
               fig6_rd_cost table2_placement_groups; do
    if [ ! -x build-ci-release/bench/bench_"$bench" ]; then
      echo "ci: FAIL — bench binary bench_$bench missing" >&2
      exit 1
    fi
    build-ci-release/bench/bench_"$bench" --jobs 1 \
        --json "$out_dir/$bench.jsonl"
    python3 tools/check_bench.py --baseline bench/baselines/"$bench".json \
        "$out_dir/$bench.jsonl"
  done
  # Parallel determinism gate: --jobs 8 must reproduce --jobs 1 byte for
  # byte, table and JSONL alike.
  build-ci-release/bench/bench_fig4_rd_weak_scaling --jobs 8 \
      --json "$out_dir/fig4_rd_weak_scaling.jobs8.jsonl" \
      > "$out_dir/fig4.jobs8.txt"
  build-ci-release/bench/bench_fig4_rd_weak_scaling --jobs 1 \
      > "$out_dir/fig4.jobs1.txt"
  diff "$out_dir/fig4.jobs1.txt" "$out_dir/fig4.jobs8.txt"
  diff "$out_dir/fig4_rd_weak_scaling.jsonl" \
      "$out_dir/fig4_rd_weak_scaling.jobs8.jsonl"
}

job_kernels() {
  echo "== ci job: kernels (hot-path kernel regression gate) =="
  configure_and_build build-ci-release -DCMAKE_BUILD_TYPE=Release \
      -DHETERO_WERROR=ON
  out_dir=build-ci-release/bench-out
  mkdir -p "$out_dir"
  if [ ! -x build-ci-release/bench/bench_kernels ]; then
    echo "ci: FAIL — bench binary bench_kernels missing" >&2
    exit 1
  fi
  build-ci-release/bench/bench_kernels --json "$out_dir/kernels.jsonl"
  python3 tools/check_bench.py --baseline bench/baselines/kernels.json \
      "$out_dir/kernels.jsonl"
}

job_asan() {
  echo "== ci job: asan (ASan+UBSan, full ctest) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600
}

job_tsan() {
  echo "== ci job: tsan (TSan, concurrency tests) =="
  configure_and_build build-ci-tsan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=thread
  ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(simmpi_test|resil_test|la_test|la_prop_test|kernels_diff_test|obs_test|campaign_engine_test|rebroker_test|lb_test|svc_test|proc_test|grid_test)$'
}

job_svc() {
  echo "== ci job: svc (advisory daemon: soak, warm restart, throughput) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(svc_test|cli_serve_pipe|cli_broker_requests_conflict)$'
  out_dir=build-ci-asan/svc-out
  mkdir -p "$out_dir"
  rm -f "$out_dir"/memo.log "$out_dir"/memo-fresh.log
  # 10k piped requests under ASan, split across a mid-stream restart: the
  # second process warm-starts from the first one's memo store, and the
  # concatenated answers must be byte-identical to one unbroken run.
  python3 tools/gen_svc_requests.py --total 10000 --unique 100 \
      > "$out_dir/all.jsonl"
  python3 tools/gen_svc_requests.py --total 5000 --unique 100 \
      > "$out_dir/first.jsonl"
  python3 tools/gen_svc_requests.py --total 5000 --unique 100 \
      --skip 5000 --start-id 5000 > "$out_dir/second.jsonl"
  build-ci-asan/tools/heterolab serve --store "$out_dir/memo.log" \
      --queue 16384 < "$out_dir/first.jsonl" > "$out_dir/out1.jsonl"
  build-ci-asan/tools/heterolab serve --store "$out_dir/memo.log" \
      --queue 16384 < "$out_dir/second.jsonl" > "$out_dir/out2.jsonl"
  build-ci-asan/tools/heterolab serve --store "$out_dir/memo-fresh.log" \
      --queue 16384 < "$out_dir/all.jsonl" > "$out_dir/outc.jsonl"
  cat "$out_dir/out1.jsonl" "$out_dir/out2.jsonl" \
      | grep -v '"type":"bye"' > "$out_dir/split.jsonl"
  grep -v '"type":"bye"' "$out_dir/outc.jsonl" > "$out_dir/unbroken.jsonl"
  diff "$out_dir/split.jsonl" "$out_dir/unbroken.jsonl"
  python3 tools/check_bench.py --schema svc "$out_dir/outc.jsonl"
  # Warm-restart throughput gate, in Release (timing under ASan is noise).
  configure_and_build build-ci-release -DCMAKE_BUILD_TYPE=Release \
      -DHETERO_WERROR=ON
  mkdir -p build-ci-release/bench-out
  build-ci-release/bench/bench_svc_throughput \
      --json build-ci-release/bench-out/svc_throughput.jsonl
  python3 tools/check_bench.py --baseline bench/baselines/svc.json \
      build-ci-release/bench-out/svc_throughput.jsonl
}

job_faultsoak() {
  echo "== ci job: fault-soak (ASan+UBSan fault injection + recovery) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  # The resilience surface: fault plan, recovery loop, checkpoint IO,
  # reclaim storms, broker failover, and the CLI failure paths.
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(resil_test|simmpi_test|io_test|cloud_test|core_test|campaign_engine_test|broker_test|cli_failure_test)$'
  out_dir=build-ci-asan/bench-out
  mkdir -p "$out_dir"
  build-ci-asan/bench/bench_ablation_failure_recovery --jobs 1 \
      --json "$out_dir/ablation_failure_recovery.jsonl" \
      > "$out_dir/faults.jobs1.txt"
  python3 tools/check_bench.py \
      --baseline bench/baselines/ablation_failure_recovery.json \
      "$out_dir/ablation_failure_recovery.jsonl"
  # Fault injection must not cost determinism: --jobs 8 reproduces the
  # sequential sweep byte for byte, text and JSONL alike.
  build-ci-asan/bench/bench_ablation_failure_recovery --jobs 8 \
      --json "$out_dir/ablation_failure_recovery.jobs8.jsonl" \
      > "$out_dir/faults.jobs8.txt"
  diff "$out_dir/faults.jobs1.txt" "$out_dir/faults.jobs8.txt"
  diff "$out_dir/ablation_failure_recovery.jsonl" \
      "$out_dir/ablation_failure_recovery.jobs8.jsonl"
}

job_rebroker() {
  echo "== ci job: rebroker (closed-loop re-brokering gate) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  # The closed-loop surface: controller/quote unit tests plus the
  # resilience and core suites the migration path leans on.
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(rebroker_test|resil_test|core_test|campaign_engine_test)$'
  out_dir=build-ci-asan/bench-out
  mkdir -p "$out_dir"
  # Tentpole gate: at a 3% storm rate the adaptive plan must beat the
  # static one on completion AND summed dollars, and the decision trail
  # must parse as heterolab-rebroker-v1.
  build-ci-asan/bench/bench_ablation_rebroker --jobs 1 \
      --json "$out_dir/ablation_rebroker.jsonl" \
      --trail "$out_dir/rebroker_trail.jsonl" \
      > "$out_dir/rebroker.jobs1.txt"
  python3 tools/check_bench.py --baseline bench/baselines/rebroker.json \
      "$out_dir/ablation_rebroker.jsonl"
  python3 tools/check_bench.py --schema rebroker \
      "$out_dir/rebroker_trail.jsonl"
  # Migration decisions are pure functions of seed + virtual time, so the
  # trail is a determinism artifact: --jobs 8 and a fresh same-seed process
  # must reproduce --jobs 1 byte for byte.
  build-ci-asan/bench/bench_ablation_rebroker --jobs 8 \
      --json "$out_dir/ablation_rebroker.jobs8.jsonl" \
      --trail "$out_dir/rebroker_trail.jobs8.jsonl" \
      > "$out_dir/rebroker.jobs8.txt"
  diff "$out_dir/rebroker.jobs1.txt" "$out_dir/rebroker.jobs8.txt"
  diff "$out_dir/ablation_rebroker.jsonl" \
      "$out_dir/ablation_rebroker.jobs8.jsonl"
  diff "$out_dir/rebroker_trail.jsonl" "$out_dir/rebroker_trail.jobs8.jsonl"
  build-ci-asan/bench/bench_ablation_rebroker --jobs 8 \
      --trail "$out_dir/rebroker_trail.rerun.jsonl" > /dev/null
  diff "$out_dir/rebroker_trail.jsonl" "$out_dir/rebroker_trail.rerun.jsonl"
}

job_loadbalance() {
  echo "== ci job: loadbalance (per-rank skew + balancing gate) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  # The balancing surface: skew plan, weighted partitioners, the balancer
  # itself, the core driver's rebalance loop, and the CLI flag audit.
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(lb_test|partition_test|simmpi_test|core_test|campaign_engine_test|cli_failure_test)$'
  out_dir=build-ci-asan/bench-out
  mkdir -p "$out_dir"
  # Tentpole gate: balancing must win >= 1.2x of modeled total time at 27
  # ranks under 2x slow-core skew, while every zero-skew cell stays
  # bitwise identical to its unbalanced twin.
  build-ci-asan/bench/bench_ablation_load_balance --jobs 1 \
      --json "$out_dir/ablation_load_balance.jsonl" \
      > "$out_dir/loadbalance.jobs1.txt"
  python3 tools/check_bench.py \
      --baseline bench/baselines/load_balance.json \
      "$out_dir/ablation_load_balance.jsonl"
  # Skew factors are pure hashes of (seed, platform, rank) and rebalance
  # verdicts replicate per rank, so the whole ablation is a determinism
  # artifact: --jobs 8 must reproduce --jobs 1 byte for byte.
  build-ci-asan/bench/bench_ablation_load_balance --jobs 8 \
      --json "$out_dir/ablation_load_balance.jobs8.jsonl" \
      > "$out_dir/loadbalance.jobs8.txt"
  diff "$out_dir/loadbalance.jobs1.txt" "$out_dir/loadbalance.jobs8.txt"
  diff "$out_dir/ablation_load_balance.jsonl" \
      "$out_dir/ablation_load_balance.jobs8.jsonl"
}

job_procsoak() {
  echo "== ci job: proc-soak (supervised worker pool under chaos) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  # The fault-tolerance surface: wire protocol, chaos planner, shard logs,
  # supervisor end-to-end, the shared-store contention harness, and the
  # graceful-shutdown/flush paths the CLI wires around the pool.
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(proc_test|support_test|io_test|cli_store_contention_test|cli_failure_test)$'
  out_dir=build-ci-asan/proc-out
  mkdir -p "$out_dir"
  # Tentpole gate: a 500-experiment campaign on 4 workers with 5% crash,
  # hang, and exit chaos each must complete with every surviving row
  # byte-identical to a fault-free single-process reference; quarantined
  # poison jobs must carry an explained failure. The bench exits non-zero
  # on any violation or leaked child.
  build-ci-asan/bench/bench_proc_chaos_soak --experiments 500 --workers 4 \
      --json "$out_dir/proc_chaos_soak.jsonl"
  # CLI byte-diff gate: the worker-process pool must reproduce the
  # in-process pool's stdout byte for byte (proc summary goes to stderr).
  build-ci-asan/tools/heterolab fig4 --workers 4 > "$out_dir/fig4.w4.txt"
  build-ci-asan/tools/heterolab fig4 --workers 0 > "$out_dir/fig4.w0.txt"
  diff "$out_dir/fig4.w0.txt" "$out_dir/fig4.w4.txt"
}

job_grid() {
  echo "== ci job: grid (standing grid-benchmark matrix gate) =="
  configure_and_build build-ci-asan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DHETERO_SANITIZE=address
  # The matrix surface: expansion/report/differential tests, the engine and
  # worker pool underneath, the report validator's own fixture suite, and
  # the grid flag audit inside cli_failure_test.
  ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
      --timeout 600 \
      -R '^(grid_test|campaign_engine_test|proc_test|check_bench_test|cli_failure_test)$'
  out_dir=build-ci-asan/grid-out
  rm -rf "$out_dir"
  mkdir -p "$out_dir"
  # Self-checking bench: the jobs-level report differential plus the
  # balanced<=unbalanced invariant, asserted in-process.
  build-ci-asan/bench/bench_grid_matrix --matrix ci \
      --json "$out_dir/grid_matrix.jsonl"
  # Tentpole gate: the 500-cell ci matrix through the worker-pool backend
  # with a persistent store, held to the standing baseline (anchor cells
  # pinned exactly) and the cross-cell invariants by --schema grid.
  build-ci-asan/tools/heterolab grid --matrix ci --workers 4 \
      --store "$out_dir/ci.log" --out "$out_dir/ci.jsonl"
  python3 tools/check_bench.py --schema grid \
      --baseline bench/baselines/grid.json "$out_dir/ci.jsonl"
  # Interrupt-resume gate: SIGTERM after 4 of the 8 shards (50%), then a
  # fresh process resumes from the store and must reproduce the
  # uninterrupted report byte for byte.
  rc=0
  build-ci-asan/tools/heterolab grid --matrix ci --shard-size 64 \
      --abort-after-shards 4 --store "$out_dir/resume.log" \
      --out "$out_dir/interrupted.jsonl" || rc=$?
  if [ "$rc" -ne 143 ]; then
    echo "ci: FAIL — interrupted grid run exited $rc, want 143 (SIGTERM)" >&2
    exit 1
  fi
  build-ci-asan/tools/heterolab grid --matrix ci --shard-size 64 \
      --store "$out_dir/resume.log" --out "$out_dir/resumed.jsonl"
  diff "$out_dir/ci.jsonl" "$out_dir/resumed.jsonl"
  # Seed-perturbation gate: under --seed 43 every stochastic cell launched
  # in both reports must move while no calm cell does.
  build-ci-asan/tools/heterolab grid --matrix ci --seed 43 \
      --out "$out_dir/ci.seed43.jsonl"
  python3 tools/check_bench.py --schema grid "$out_dir/ci.seed43.jsonl" \
      --against "$out_dir/ci.jsonl" --expect-stochastic-drift
}

run_job() {
  case "$1" in
    release) job_release ;;
    debug) job_debug ;;
    bench) job_bench ;;
    kernels) job_kernels ;;
    asan) job_asan ;;
    tsan) job_tsan ;;
    faultsoak) job_faultsoak ;;
    svc) job_svc ;;
    rebroker) job_rebroker ;;
    loadbalance) job_loadbalance ;;
    procsoak) job_procsoak ;;
    grid) job_grid ;;
    all) job_release; job_debug; job_bench; job_kernels; job_asan; job_tsan; job_faultsoak; job_svc; job_rebroker; job_loadbalance; job_procsoak; job_grid ;;
    *)
      echo "ci: unknown job '$1' (expected release|debug|bench|kernels|asan|tsan|faultsoak|svc|rebroker|loadbalance|procsoak|grid|all)" >&2
      exit 2
      ;;
  esac
}

if [ "$#" -eq 0 ]; then
  set -- all
fi
for job in "$@"; do
  run_job "$job"
done

echo "ci: all requested gates passed ($*)"
