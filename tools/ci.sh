#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — the tier-1 verify gate:
# configure, build with warnings-as-errors, run the full test suite, and
# smoke the broker. Usage: tools/ci.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DHETERO_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j \
    "$(nproc 2>/dev/null || echo 4)"

"$BUILD_DIR"/tools/heterolab broker --app rd --elements 1000000 \
    --deadline-h 24 --budget-usd 50
"$BUILD_DIR"/bench/bench_broker_frontier

echo "ci: all gates passed"
