#!/usr/bin/env python3
"""Gate CI on the *shape* of the paper's figures.

Reads the JSONL a bench binary wrote with --json (schema
"heterolab-bench-v1", one flat object per row) and checks it against a
baseline file from bench/baselines/.  Baselines express shape invariants
with tolerances — "lagrange stays near-flat to 343 ranks", "the mixed
placement-group assembly costs ~4.4x at the same speed" — rather than exact
numbers, so harmless model tweaks do not trip the gate but a regression in
the reproduced qualitative result does.

The same machinery gates bench_kernels (baseline kernels.json): there the
fields are host wall-time speedups of the fast kernels over the reference
kernels plus modeled FLOP/byte intensities, with generous minimums so the
gate survives machine-to-machine variance (see docs/kernels.md).

Usage:
    tools/check_bench.py --baseline bench/baselines/fig4.json RESULTS.jsonl
    tools/check_bench.py --schema svc ANSWERS.jsonl

`--schema svc` validates a heterolab-svc-v1 response stream instead (the
advisory daemon's stdout): schema tag and known record type on every line,
per-type required keys, non-decreasing response ids (the ordered-emitter
contract), frontier/ranked seq numbering, and the final "bye" record.
--baseline is optional in svc mode; when given, its checks run over the
response records too.

`--schema rebroker` validates a heterolab-rebroker-v1 decision trail (the
closed-loop controller's JSONL ledger): schema tag and known record type
(sample/decision/storm/migration) on every line, per-type required keys,
virtual timestamps non-decreasing within each run label, decision actions
restricted to stay/migrate, and migration records naming distinct source
and target platforms plus the checkpoint step they resumed from.

Baseline format (JSON):
    {
      "bench": "fig4_rd_weak_scaling",   # expected "bench" field
      "min_records": 40,                 # at least this many rows
      "checks": [
        # a numeric field of one record, by expectation or bounds:
        {"type": "value", "match": {"platform": "lagrange", "procs": 343},
         "field": "total_s", "expect": 9.42, "rel_tol": 0.10},
        {"type": "value", "match": {...}, "field": "mix_spot_hosts",
         "min": 1, "max": 45},
        # "allow_null": true skips the bounds when the cell is null (a
        # non-finite value the serializer degraded rather than aborting):
        {"type": "value", "match": {...}, "field": "total_s",
         "min": 0.1, "allow_null": true},
        # the field must be null (a launch-failure cell):
        {"type": "null", "match": {"platform": "puma", "procs": 216},
         "field": "total_s"},
        # ratio of two (record, field) picks, bounded:
        {"type": "ratio",
         "num": {"match": {"platform": "lagrange", "procs": 343},
                 "field": "total_s"},
         "den": {"match": {"platform": "lagrange", "procs": 1},
                 "field": "total_s"},
         "min": 1.0, "max": 2.0, "note": "IB keeps weak scaling flat"}
      ]
    }

Every check may carry a "note" explaining which claim of the paper it pins.
Exit status: 0 when everything holds, 1 with a FAIL line per violation.
"""

import argparse
import json
import sys

SCHEMA = "heterolab-bench-v1"
SVC_SCHEMA = "heterolab-svc-v1"

# Required keys per svc record type, beyond the universal schema/type/id.
SVC_REQUIRED = {
    "decision": ["ok", "objective", "candidates", "feasible", "rejected",
                 "frontier"],
    "ranked": ["seq", "candidate", "effective_s", "cost_usd", "score"],
    "frontier": ["seq", "candidate", "time_s", "cost_usd"],
    "pong": [],
    "error": ["reason"],
    "busy": ["queue_depth"],
    "throttled": ["client", "reason", "need_tokens", "have_tokens"],
    "rebroker": ["action", "target", "target_ranks", "stay_finish_s",
                 "move_finish_s", "stay_cost_usd", "move_cost_usd",
                 "reason"],
    "bye": ["served"],
}

REBROKER_SCHEMA = "heterolab-rebroker-v1"

# Required keys per rebroker trail record type, beyond schema/type.
REBROKER_REQUIRED = {
    "sample": ["run", "attempt", "platform", "ranks", "step",
               "virtual_time_s", "step_s", "drift", "storm_rate"],
    "decision": ["run", "attempt", "platform", "ranks", "step",
                 "virtual_time_s", "action", "stay_finish_s",
                 "move_finish_s", "stay_cost_usd", "move_cost_usd",
                 "reason"],
    "storm": ["run", "attempt", "platform", "ranks", "step",
              "virtual_time_s"],
    "migration": ["run", "attempt", "from_platform", "to_platform",
                  "from_ranks", "to_ranks", "checkpoint_step",
                  "queue_wait_s", "virtual_time_s"],
}


def load_jsonl(path):
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{line_no}: invalid JSON: {err}")
    return records


def matches(record, match):
    return all(record.get(key) == value for key, value in match.items())


def pick(records, match, context):
    found = [r for r in records if matches(r, match)]
    if not found:
        raise CheckFailure(f"{context}: no record matches {match}")
    if len(found) > 1:
        raise CheckFailure(
            f"{context}: {len(found)} records match {match}; "
            "baseline match keys must identify exactly one row")
    return found[0]


def numeric(record, field, context):
    value = record.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise CheckFailure(
            f"{context}: field '{field}' is {value!r}, expected a number")
    return float(value)


class CheckFailure(Exception):
    pass


def describe(check):
    note = check.get("note")
    kind = check.get("type", "?")
    target = check.get("match") or {
        "num": check.get("num", {}).get("match"),
        "den": check.get("den", {}).get("match"),
    }
    base = f"{kind} {check.get('field', '')} {target}"
    return f"{base} ({note})" if note else base


def run_check(check, records):
    kind = check.get("type")
    context = describe(check)
    if kind == "value":
        record = pick(records, check["match"], context)
        if check.get("allow_null") and record.get(check["field"]) is None:
            return f"{context}: null (allowed)"
        value = numeric(record, check["field"], context)
        if "expect" in check:
            expect = float(check["expect"])
            rel_tol = float(check.get("rel_tol", 0.05))
            abs_tol = float(check.get("abs_tol", 0.0))
            allowed = max(abs(expect) * rel_tol, abs_tol)
            if abs(value - expect) > allowed:
                raise CheckFailure(
                    f"{context}: {value:g} deviates from {expect:g} "
                    f"by more than {allowed:g}")
        if "min" in check and value < float(check["min"]):
            raise CheckFailure(
                f"{context}: {value:g} < minimum {check['min']:g}")
        if "max" in check and value > float(check["max"]):
            raise CheckFailure(
                f"{context}: {value:g} > maximum {check['max']:g}")
        return f"{context}: {value:g}"
    if kind == "null":
        record = pick(records, check["match"], context)
        value = record.get(check["field"], "<absent>")
        if value is not None:
            raise CheckFailure(
                f"{context}: expected null (launch failure), got {value!r}")
        return f"{context}: null as expected"
    if kind == "ratio":
        num_rec = pick(records, check["num"]["match"], context)
        den_rec = pick(records, check["den"]["match"], context)
        num = numeric(num_rec, check["num"]["field"], context)
        den = numeric(den_rec, check["den"]["field"], context)
        if den == 0.0:
            raise CheckFailure(f"{context}: denominator is zero")
        ratio = num / den
        if "min" in check and ratio < float(check["min"]):
            raise CheckFailure(
                f"{context}: ratio {ratio:g} < minimum {check['min']:g}")
        if "max" in check and ratio > float(check["max"]):
            raise CheckFailure(
                f"{context}: ratio {ratio:g} > maximum {check['max']:g}")
        return f"{context}: ratio {ratio:g}"
    raise CheckFailure(f"unknown check type: {kind!r}")


def validate_svc_stream(records):
    """Structural checks on a heterolab-svc-v1 response stream.

    Returns a list of failure strings (empty when the stream is valid).
    """
    failures = []
    last_id = None
    frontier_seq = {}  # id -> next expected frontier seq
    ranked_seq = {}    # id -> next expected ranked seq
    for index, record in enumerate(records, 1):
        where = f"record {index}"
        if record.get("schema") != SVC_SCHEMA:
            failures.append(
                f"{where}: schema {record.get('schema')!r}, "
                f"expected {SVC_SCHEMA!r}")
            continue
        rtype = record.get("type")
        if rtype not in SVC_REQUIRED:
            failures.append(f"{where}: unknown record type {rtype!r}")
            continue
        for key in SVC_REQUIRED[rtype]:
            if key not in record:
                failures.append(
                    f"{where}: {rtype} record missing key {key!r}")
        if rtype == "bye":
            if index != len(records):
                failures.append(
                    f"{where}: bye record before end of stream")
            continue
        if "id" not in record:
            failures.append(f"{where}: {rtype} record missing key 'id'")
            continue
        rid = record["id"]
        if rid is None:
            if rtype != "error":
                failures.append(
                    f"{where}: null id on a {rtype} record (only error "
                    "records for unparseable lines may carry null)")
            continue
        if not isinstance(rid, int) or isinstance(rid, bool):
            failures.append(f"{where}: id {rid!r} is not an integer")
            continue
        # The ordered emitter answers strictly in admission order, so ids
        # never decrease (equal is fine: one request, many records).
        if last_id is not None and rid < last_id:
            failures.append(
                f"{where}: id {rid} after id {last_id} — response ids "
                "must be non-decreasing")
        last_id = rid
        if rtype == "decision":
            frontier_seq[rid] = 0
            ranked_seq[rid] = 1  # seq 0 is the winner, inline in decision
            if record.get("ok") is True:
                for key in ("winner", "effective_s", "cost_usd", "score"):
                    if key not in record:
                        failures.append(
                            f"{where}: ok decision missing key {key!r}")
            elif record.get("ok") is False:
                if "reason" not in record:
                    failures.append(
                        f"{where}: not-ok decision missing key 'reason'")
        elif rtype in ("frontier", "ranked"):
            seqs = frontier_seq if rtype == "frontier" else ranked_seq
            if rid not in seqs:
                failures.append(
                    f"{where}: {rtype} record for id {rid} without a "
                    "preceding decision record")
            elif record.get("seq") != seqs[rid]:
                failures.append(
                    f"{where}: {rtype} seq {record.get('seq')!r} for id "
                    f"{rid}, expected {seqs[rid]}")
            else:
                seqs[rid] += 1
    if records and records[-1].get("type") != "bye":
        failures.append("stream does not end with a bye record")
    return failures


def validate_rebroker_stream(records):
    """Structural checks on a heterolab-rebroker-v1 decision trail.

    Returns a list of failure strings (empty when the trail is valid).
    """
    failures = []
    last_time = {}  # run label -> last virtual_time_s seen
    for index, record in enumerate(records, 1):
        where = f"record {index}"
        if record.get("schema") != REBROKER_SCHEMA:
            failures.append(
                f"{where}: schema {record.get('schema')!r}, "
                f"expected {REBROKER_SCHEMA!r}")
            continue
        rtype = record.get("type")
        if rtype not in REBROKER_REQUIRED:
            failures.append(f"{where}: unknown record type {rtype!r}")
            continue
        missing = [key for key in REBROKER_REQUIRED[rtype]
                   if key not in record]
        for key in missing:
            failures.append(f"{where}: {rtype} record missing key {key!r}")
        if missing:
            continue
        run = record["run"]
        stamp = record["virtual_time_s"]
        if not isinstance(stamp, (int, float)) or isinstance(stamp, bool):
            failures.append(
                f"{where}: virtual_time_s {stamp!r} is not a number")
            continue
        # The trail replays one virtual clock per run: within a run label,
        # timestamps never go backwards (equal is fine: a migration record
        # and the next attempt's first sample share an instant).
        if run in last_time and stamp < last_time[run]:
            failures.append(
                f"{where}: virtual_time_s {stamp:g} after "
                f"{last_time[run]:g} in run {run!r} — the virtual clock "
                "must be non-decreasing")
        last_time[run] = stamp
        if rtype == "decision":
            if record["action"] not in ("stay", "migrate"):
                failures.append(
                    f"{where}: decision action {record['action']!r}, "
                    "expected 'stay' or 'migrate'")
        elif rtype == "migration":
            if record["from_platform"] == record["to_platform"]:
                failures.append(
                    f"{where}: migration from and to the same platform "
                    f"{record['from_platform']!r}")
            step = record["checkpoint_step"]
            if not isinstance(step, (int, float)) or step < 1:
                failures.append(
                    f"{where}: migration checkpoint_step {step!r} must "
                    "be >= 1 (a migration resumes completed work)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Check bench JSONL output against a baseline.")
    parser.add_argument("results", help="JSONL written by a bench's --json")
    parser.add_argument("--baseline",
                        help="baseline JSON from bench/baselines/ "
                             "(required with --schema bench)")
    parser.add_argument("--schema", choices=["bench", "svc", "rebroker"],
                        default="bench",
                        help="bench: heterolab-bench-v1 rows gated by a "
                             "baseline; svc: a heterolab-svc-v1 response "
                             "stream's structural contract; rebroker: a "
                             "heterolab-rebroker-v1 decision trail's "
                             "structural contract")
    args = parser.parse_args()

    records = load_jsonl(args.results)

    if args.schema == "rebroker":
        failures = []
        if not records:
            failures.append(f"{args.results}: no records")
        failures.extend(validate_rebroker_stream(records))
        if failures:
            for failure in failures[:25]:
                print(f"FAIL [rebroker]: {failure}", file=sys.stderr)
            if len(failures) > 25:
                print(f"FAIL [rebroker]: ... and {len(failures) - 25} more",
                      file=sys.stderr)
            return 1
        print(f"PASS [rebroker]: {len(records)} records, "
              "trail contract holds")
        return 0

    if args.schema == "svc":
        failures = []
        if not records:
            failures.append(f"{args.results}: no records")
        failures.extend(validate_svc_stream(records))
        if args.baseline:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            for check in baseline.get("checks", []):
                try:
                    message = run_check(check, records)
                except CheckFailure as err:
                    failures.append(str(err))
                else:
                    print(f"  ok: {message}")
        if failures:
            for failure in failures[:25]:
                print(f"FAIL [svc]: {failure}", file=sys.stderr)
            if len(failures) > 25:
                print(f"FAIL [svc]: ... and {len(failures) - 25} more",
                      file=sys.stderr)
            return 1
        print(f"PASS [svc]: {len(records)} records, "
              "stream contract holds")
        return 0

    if not args.baseline:
        parser.error("--baseline is required with --schema bench")
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures = []
    if not records:
        failures.append(f"{args.results}: no records")
    for record in records:
        if record.get("schema") != SCHEMA:
            failures.append(
                f"record has schema {record.get('schema')!r}, "
                f"expected {SCHEMA!r}: {record}")
            break
    expected_bench = baseline.get("bench")
    if expected_bench and records:
        benches = {r.get("bench") for r in records}
        if benches != {expected_bench}:
            failures.append(
                f"records carry bench field(s) {sorted(benches)}, "
                f"baseline expects {expected_bench!r}")
    min_records = int(baseline.get("min_records", 1))
    if len(records) < min_records:
        failures.append(
            f"only {len(records)} records, baseline requires "
            f">= {min_records}")

    passed = 0
    for check in baseline.get("checks", []):
        try:
            message = run_check(check, records)
        except CheckFailure as err:
            failures.append(str(err))
        except KeyError as err:
            failures.append(f"{describe(check)}: baseline missing key {err}")
        else:
            passed += 1
            print(f"  ok: {message}")

    name = expected_bench or args.results
    if failures:
        for failure in failures:
            print(f"FAIL [{name}]: {failure}", file=sys.stderr)
        return 1
    print(f"PASS [{name}]: {passed} checks over {len(records)} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
