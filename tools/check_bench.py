#!/usr/bin/env python3
"""Gate CI on the *shape* of the paper's figures.

Reads the JSONL a bench binary wrote with --json (schema
"heterolab-bench-v1", one flat object per row) and checks it against a
baseline file from bench/baselines/.  Baselines express shape invariants
with tolerances — "lagrange stays near-flat to 343 ranks", "the mixed
placement-group assembly costs ~4.4x at the same speed" — rather than exact
numbers, so harmless model tweaks do not trip the gate but a regression in
the reproduced qualitative result does.

The same machinery gates bench_kernels (baseline kernels.json): there the
fields are host wall-time speedups of the fast kernels over the reference
kernels plus modeled FLOP/byte intensities, with generous minimums so the
gate survives machine-to-machine variance (see docs/kernels.md).

Usage:
    tools/check_bench.py --baseline bench/baselines/fig4.json RESULTS.jsonl
    tools/check_bench.py --schema svc ANSWERS.jsonl

`--schema svc` validates a heterolab-svc-v1 response stream instead (the
advisory daemon's stdout): schema tag and known record type on every line,
per-type required keys, non-decreasing response ids (the ordered-emitter
contract), frontier/ranked seq numbering, and the final "bye" record.
--baseline is optional in svc mode; when given, its checks run over the
response records too.

`--schema rebroker` validates a heterolab-rebroker-v1 decision trail (the
closed-loop controller's JSONL ledger): schema tag and known record type
(sample/decision/storm/migration) on every line, per-type required keys,
virtual timestamps non-decreasing within each run label, decision actions
restricted to stay/migrate, and migration records naming distinct source
and target platforms plus the checkpoint step they resumed from.

`--schema grid` validates a heterolab-grid-v1 grid-benchmark report
(docs/grid_benchmark.md): record order (header, cells, capability,
frontier, summary), per-type required keys, strictly increasing cell ids,
launched/failed field contracts, the stochastic-flag classification, and
the *cross-cell* invariants the paper's claims reduce to — a balanced
skew projection never models slower than its unbalanced twin, frontier
points reference launched calm cells with matching time/cost and are
mutually non-dominated, and capability/summary tallies match the cell
records they summarize.  `--against OTHER.jsonl` additionally compares two
reports of the same matrix: calm (non-stochastic) cells must be
byte-identical, and with --expect-stochastic-drift every stochastic cell
launched in both runs must differ (the seed-perturbation gate).
--baseline is optional in grid mode; when given, its checks run over the
report records too.

Cross-record check types (usable from any baseline):
    {"type": "count", "match": {...}, "min": 1, "max": 10}
    {"type": "forall", "match": {...}, "field": "total_s",
     "min": 0.0, "max": 100.0}     # every matching record; empty set
                                   # fails unless "allow_empty": true

Baseline format (JSON):
    {
      "bench": "fig4_rd_weak_scaling",   # expected "bench" field
      "min_records": 40,                 # at least this many rows
      "checks": [
        # a numeric field of one record, by expectation or bounds:
        {"type": "value", "match": {"platform": "lagrange", "procs": 343},
         "field": "total_s", "expect": 9.42, "rel_tol": 0.10},
        {"type": "value", "match": {...}, "field": "mix_spot_hosts",
         "min": 1, "max": 45},
        # "allow_null": true skips the bounds when the cell is null (a
        # non-finite value the serializer degraded rather than aborting):
        {"type": "value", "match": {...}, "field": "total_s",
         "min": 0.1, "allow_null": true},
        # the field must be null (a launch-failure cell):
        {"type": "null", "match": {"platform": "puma", "procs": 216},
         "field": "total_s"},
        # ratio of two (record, field) picks, bounded:
        {"type": "ratio",
         "num": {"match": {"platform": "lagrange", "procs": 343},
                 "field": "total_s"},
         "den": {"match": {"platform": "lagrange", "procs": 1},
                 "field": "total_s"},
         "min": 1.0, "max": 2.0, "note": "IB keeps weak scaling flat"}
      ]
    }

Every check may carry a "note" explaining which claim of the paper it pins.
Exit status: 0 when everything holds, 1 with a FAIL line per violation.
"""

import argparse
import json
import sys

SCHEMA = "heterolab-bench-v1"
SVC_SCHEMA = "heterolab-svc-v1"

# Required keys per svc record type, beyond the universal schema/type/id.
SVC_REQUIRED = {
    "decision": ["ok", "objective", "candidates", "feasible", "rejected",
                 "frontier"],
    "ranked": ["seq", "candidate", "effective_s", "cost_usd", "score"],
    "frontier": ["seq", "candidate", "time_s", "cost_usd"],
    "pong": [],
    "error": ["reason"],
    "busy": ["queue_depth"],
    "throttled": ["client", "reason", "need_tokens", "have_tokens"],
    "rebroker": ["action", "target", "target_ranks", "stay_finish_s",
                 "move_finish_s", "stay_cost_usd", "move_cost_usd",
                 "reason"],
    "bye": ["served"],
}

GRID_SCHEMA = "heterolab-grid-v1"

# Required keys per grid record type, beyond the universal schema/type.
GRID_REQUIRED = {
    "header": ["matrix", "matrix_seed", "iterations", "cardinality",
               "cells", "sampled", "axes"],
    "cell": ["cell", "label", "platform", "ranks", "app_pair",
             "resolution", "fault", "skewlb", "objective", "rep",
             "stochastic", "seed", "launched"],
    "capability": ["platform", "cells", "launched", "failed",
                   "max_launched_ranks", "reasons"],
    "frontier": ["app_pair", "seq", "cell", "platform", "ranks", "time_s",
                 "cost_usd"],
    "summary": ["cells", "launched", "failed", "stochastic_cells",
                "calm_cells", "unique_experiments", "frontier_points"],
}

# Record-type order of a grid report stream.
GRID_ORDER = ["header", "cell", "capability", "frontier", "summary"]

REBROKER_SCHEMA = "heterolab-rebroker-v1"

# Required keys per rebroker trail record type, beyond schema/type.
REBROKER_REQUIRED = {
    "sample": ["run", "attempt", "platform", "ranks", "step",
               "virtual_time_s", "step_s", "drift", "storm_rate"],
    "decision": ["run", "attempt", "platform", "ranks", "step",
                 "virtual_time_s", "action", "stay_finish_s",
                 "move_finish_s", "stay_cost_usd", "move_cost_usd",
                 "reason"],
    "storm": ["run", "attempt", "platform", "ranks", "step",
              "virtual_time_s"],
    "migration": ["run", "attempt", "from_platform", "to_platform",
                  "from_ranks", "to_ranks", "checkpoint_step",
                  "queue_wait_s", "virtual_time_s"],
}


def load_jsonl_raw(path):
    """Parses a JSONL file into (record, raw_line) pairs.

    The raw line (stripped of the newline) backs the byte-identity
    comparisons of grid mode's --against.
    """
    pairs = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                pairs.append((json.loads(line), line))
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{line_no}: invalid JSON: {err}")
    return pairs


def load_jsonl(path):
    return [record for record, _ in load_jsonl_raw(path)]


def matches(record, match):
    return all(record.get(key) == value for key, value in match.items())


def pick(records, match, context):
    found = [r for r in records if matches(r, match)]
    if not found:
        raise CheckFailure(f"{context}: no record matches {match}")
    if len(found) > 1:
        raise CheckFailure(
            f"{context}: {len(found)} records match {match}; "
            "baseline match keys must identify exactly one row")
    return found[0]


def numeric(record, field, context):
    value = record.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise CheckFailure(
            f"{context}: field '{field}' is {value!r}, expected a number")
    return float(value)


class CheckFailure(Exception):
    pass


def describe(check):
    note = check.get("note")
    kind = check.get("type", "?")
    target = check.get("match") or {
        "num": check.get("num", {}).get("match"),
        "den": check.get("den", {}).get("match"),
    }
    base = f"{kind} {check.get('field', '')} {target}"
    return f"{base} ({note})" if note else base


def run_check(check, records):
    kind = check.get("type")
    context = describe(check)
    if kind == "value":
        record = pick(records, check["match"], context)
        if check.get("allow_null") and record.get(check["field"]) is None:
            return f"{context}: null (allowed)"
        value = numeric(record, check["field"], context)
        if "expect" in check:
            expect = float(check["expect"])
            rel_tol = float(check.get("rel_tol", 0.05))
            abs_tol = float(check.get("abs_tol", 0.0))
            allowed = max(abs(expect) * rel_tol, abs_tol)
            if abs(value - expect) > allowed:
                raise CheckFailure(
                    f"{context}: {value:g} deviates from {expect:g} "
                    f"by more than {allowed:g}")
        if "min" in check and value < float(check["min"]):
            raise CheckFailure(
                f"{context}: {value:g} < minimum {check['min']:g}")
        if "max" in check and value > float(check["max"]):
            raise CheckFailure(
                f"{context}: {value:g} > maximum {check['max']:g}")
        return f"{context}: {value:g}"
    if kind == "null":
        record = pick(records, check["match"], context)
        value = record.get(check["field"], "<absent>")
        if value is not None:
            raise CheckFailure(
                f"{context}: expected null (launch failure), got {value!r}")
        return f"{context}: null as expected"
    if kind == "ratio":
        num_rec = pick(records, check["num"]["match"], context)
        den_rec = pick(records, check["den"]["match"], context)
        num = numeric(num_rec, check["num"]["field"], context)
        den = numeric(den_rec, check["den"]["field"], context)
        if den == 0.0:
            raise CheckFailure(f"{context}: denominator is zero")
        ratio = num / den
        if "min" in check and ratio < float(check["min"]):
            raise CheckFailure(
                f"{context}: ratio {ratio:g} < minimum {check['min']:g}")
        if "max" in check and ratio > float(check["max"]):
            raise CheckFailure(
                f"{context}: ratio {ratio:g} > maximum {check['max']:g}")
        return f"{context}: ratio {ratio:g}"
    if kind == "count":
        found = [r for r in records if matches(r, check["match"])]
        if "min" in check and len(found) < int(check["min"]):
            raise CheckFailure(
                f"{context}: {len(found)} matching records "
                f"< minimum {int(check['min'])}")
        if "max" in check and len(found) > int(check["max"]):
            raise CheckFailure(
                f"{context}: {len(found)} matching records "
                f"> maximum {int(check['max'])}")
        return f"{context}: {len(found)} records"
    if kind == "forall":
        found = [r for r in records if matches(r, check["match"])]
        if not found and not check.get("allow_empty"):
            raise CheckFailure(
                f"{context}: no record matches (a vacuous forall hides "
                "regressions; add \"allow_empty\": true to permit)")
        for record in found:
            if check.get("allow_null") and record.get(check["field"]) is None:
                continue
            value = numeric(record, check["field"], context)
            if "min" in check and value < float(check["min"]):
                raise CheckFailure(
                    f"{context}: {value:g} < minimum {check['min']:g} "
                    f"in {record.get('label') or record}")
            if "max" in check and value > float(check["max"]):
                raise CheckFailure(
                    f"{context}: {value:g} > maximum {check['max']:g} "
                    f"in {record.get('label') or record}")
        return f"{context}: holds over {len(found)} records"
    raise CheckFailure(f"unknown check type: {kind!r}")


def validate_svc_stream(records):
    """Structural checks on a heterolab-svc-v1 response stream.

    Returns a list of failure strings (empty when the stream is valid).
    """
    failures = []
    last_id = None
    frontier_seq = {}  # id -> next expected frontier seq
    ranked_seq = {}    # id -> next expected ranked seq
    for index, record in enumerate(records, 1):
        where = f"record {index}"
        if record.get("schema") != SVC_SCHEMA:
            failures.append(
                f"{where}: schema {record.get('schema')!r}, "
                f"expected {SVC_SCHEMA!r}")
            continue
        rtype = record.get("type")
        if rtype not in SVC_REQUIRED:
            failures.append(f"{where}: unknown record type {rtype!r}")
            continue
        for key in SVC_REQUIRED[rtype]:
            if key not in record:
                failures.append(
                    f"{where}: {rtype} record missing key {key!r}")
        if rtype == "bye":
            if index != len(records):
                failures.append(
                    f"{where}: bye record before end of stream")
            continue
        if "id" not in record:
            failures.append(f"{where}: {rtype} record missing key 'id'")
            continue
        rid = record["id"]
        if rid is None:
            if rtype != "error":
                failures.append(
                    f"{where}: null id on a {rtype} record (only error "
                    "records for unparseable lines may carry null)")
            continue
        if not isinstance(rid, int) or isinstance(rid, bool):
            failures.append(f"{where}: id {rid!r} is not an integer")
            continue
        # The ordered emitter answers strictly in admission order, so ids
        # never decrease (equal is fine: one request, many records).
        if last_id is not None and rid < last_id:
            failures.append(
                f"{where}: id {rid} after id {last_id} — response ids "
                "must be non-decreasing")
        last_id = rid
        if rtype == "decision":
            frontier_seq[rid] = 0
            ranked_seq[rid] = 1  # seq 0 is the winner, inline in decision
            if record.get("ok") is True:
                for key in ("winner", "effective_s", "cost_usd", "score"):
                    if key not in record:
                        failures.append(
                            f"{where}: ok decision missing key {key!r}")
            elif record.get("ok") is False:
                if "reason" not in record:
                    failures.append(
                        f"{where}: not-ok decision missing key 'reason'")
        elif rtype in ("frontier", "ranked"):
            seqs = frontier_seq if rtype == "frontier" else ranked_seq
            if rid not in seqs:
                failures.append(
                    f"{where}: {rtype} record for id {rid} without a "
                    "preceding decision record")
            elif record.get("seq") != seqs[rid]:
                failures.append(
                    f"{where}: {rtype} seq {record.get('seq')!r} for id "
                    f"{rid}, expected {seqs[rid]}")
            else:
                seqs[rid] += 1
    if records and records[-1].get("type") != "bye":
        failures.append("stream does not end with a bye record")
    return failures


def validate_rebroker_stream(records):
    """Structural checks on a heterolab-rebroker-v1 decision trail.

    Returns a list of failure strings (empty when the trail is valid).
    """
    failures = []
    last_time = {}  # run label -> last virtual_time_s seen
    for index, record in enumerate(records, 1):
        where = f"record {index}"
        if record.get("schema") != REBROKER_SCHEMA:
            failures.append(
                f"{where}: schema {record.get('schema')!r}, "
                f"expected {REBROKER_SCHEMA!r}")
            continue
        rtype = record.get("type")
        if rtype not in REBROKER_REQUIRED:
            failures.append(f"{where}: unknown record type {rtype!r}")
            continue
        missing = [key for key in REBROKER_REQUIRED[rtype]
                   if key not in record]
        for key in missing:
            failures.append(f"{where}: {rtype} record missing key {key!r}")
        if missing:
            continue
        run = record["run"]
        stamp = record["virtual_time_s"]
        if not isinstance(stamp, (int, float)) or isinstance(stamp, bool):
            failures.append(
                f"{where}: virtual_time_s {stamp!r} is not a number")
            continue
        # The trail replays one virtual clock per run: within a run label,
        # timestamps never go backwards (equal is fine: a migration record
        # and the next attempt's first sample share an instant).
        if run in last_time and stamp < last_time[run]:
            failures.append(
                f"{where}: virtual_time_s {stamp:g} after "
                f"{last_time[run]:g} in run {run!r} — the virtual clock "
                "must be non-decreasing")
        last_time[run] = stamp
        if rtype == "decision":
            if record["action"] not in ("stay", "migrate"):
                failures.append(
                    f"{where}: decision action {record['action']!r}, "
                    "expected 'stay' or 'migrate'")
        elif rtype == "migration":
            if record["from_platform"] == record["to_platform"]:
                failures.append(
                    f"{where}: migration from and to the same platform "
                    f"{record['from_platform']!r}")
            step = record["checkpoint_step"]
            if not isinstance(step, (int, float)) or step < 1:
                failures.append(
                    f"{where}: migration checkpoint_step {step!r} must "
                    "be >= 1 (a migration resumes completed work)")
    return failures


def grid_twin_key(record):
    """Groups the skew/skew-balanced twin cells: every axis but skewlb."""
    return (record.get("platform"), record.get("ranks"),
            record.get("app_pair"), record.get("resolution"),
            record.get("fault"), record.get("objective"), record.get("rep"))


def validate_grid_report(records):
    """Structural and cross-cell checks on a heterolab-grid-v1 report.

    Returns a list of failure strings (empty when the report is valid).
    """
    failures = []
    if not records:
        return ["no records"]

    # Per-record shape and the header/cells/capability/frontier/summary
    # stream order.
    stage = 0
    counts = {rtype: 0 for rtype in GRID_ORDER}
    for index, record in enumerate(records, 1):
        where = f"record {index}"
        if record.get("schema") != GRID_SCHEMA:
            failures.append(
                f"{where}: schema {record.get('schema')!r}, "
                f"expected {GRID_SCHEMA!r}")
            continue
        rtype = record.get("type")
        if rtype not in GRID_REQUIRED:
            failures.append(f"{where}: unknown record type {rtype!r}")
            continue
        counts[rtype] += 1
        order = GRID_ORDER.index(rtype)
        if order < stage:
            failures.append(
                f"{where}: {rtype} record after a {GRID_ORDER[stage]} "
                "record — order is header, cells, capability, frontier, "
                "summary")
        stage = max(stage, order)
        for key in GRID_REQUIRED[rtype]:
            if key not in record:
                failures.append(f"{where}: {rtype} record missing {key!r}")
    if counts["header"] != 1 or records[0].get("type") != "header":
        failures.append("report must start with exactly one header record")
        return failures  # everything below keys off the header
    if counts["summary"] != 1 or records[-1].get("type") != "summary":
        failures.append("report must end with exactly one summary record")

    header = records[0]
    cells = [r for r in records if r.get("type") == "cell"]
    if header.get("cells") != len(cells):
        failures.append(
            f"header claims {header.get('cells')!r} cells, report carries "
            f"{len(cells)}")

    # Cell contracts: strictly increasing ids, launched/failed field
    # shapes, and the stochastic classification (matrix-seed-dependent iff
    # spot-mix, faults, or skew are in play).
    last_id = None
    by_id = {}
    for record in cells:
        cid = record.get("cell")
        where = f"cell {cid}"
        if not isinstance(cid, int) or isinstance(cid, bool):
            failures.append(f"cell id {cid!r} is not an integer")
            continue
        if last_id is not None and cid <= last_id:
            failures.append(
                f"{where}: id after {last_id} — cell ids must be strictly "
                "increasing (duplicates would alias --against comparisons)")
        last_id = cid
        by_id[cid] = record
        calm = (record.get("platform") != "ec2-spot"
                and record.get("fault") == "calm"
                and record.get("skewlb") == "calm")
        if record.get("stochastic") is not (not calm):
            failures.append(
                f"{where}: stochastic={record.get('stochastic')!r} "
                "contradicts the axes (stochastic iff spot-mix platform, "
                "faults, or skew)")
        launched = record.get("launched")
        if launched is True:
            for field in ("queue_wait_s", "total_s", "cost_usd", "score",
                          "run_s", "effective_s", "skew_imbalance"):
                value = record.get(field)
                if not isinstance(value, (int, float)) or isinstance(
                        value, bool):
                    failures.append(
                        f"{where}: launched cell field '{field}' is "
                        f"{value!r}, expected a number")
            total = record.get("total_s")
            if isinstance(total, (int, float)) and total <= 0:
                failures.append(
                    f"{where}: launched cell total_s {total:g} must be "
                    "positive")
        elif launched is False:
            if not record.get("failure_reason"):
                failures.append(
                    f"{where}: failed cell without a failure_reason")
            for field in ("total_s", "cost_usd", "score"):
                if record.get(field, "<absent>") is not None:
                    failures.append(
                        f"{where}: failed cell field '{field}' must be "
                        f"null, got {record.get(field, '<absent>')!r}")
        else:
            failures.append(f"{where}: launched is {launched!r}, "
                            "expected true or false")

    # Balanced <= unbalanced: the same skew lottery projected under
    # perfect capacity balancing must never model slower than the
    # bulk-synchronous worst-rank wait.
    twins = {}
    for record in cells:
        if (record.get("skewlb") in ("skew", "skew-balanced")
                and record.get("launched") is True):
            twins.setdefault(grid_twin_key(record), {})[
                record["skewlb"]] = record
    for pair in twins.values():
        if "skew" not in pair or "skew-balanced" not in pair:
            continue
        unbal = pair["skew"].get("total_s")
        bal = pair["skew-balanced"].get("total_s")
        if (isinstance(unbal, (int, float)) and isinstance(bal, (int, float))
                and bal > unbal * (1 + 1e-9)):
            failures.append(
                f"cell {pair['skew-balanced'].get('cell')}: balanced "
                f"modeled time {bal:g} exceeds its unbalanced twin's "
                f"{unbal:g} (cell {pair['skew'].get('cell')})")

    # Capability tallies must match the cell records they summarize.
    tally = {}
    for record in cells:
        t = tally.setdefault(record.get("platform"), [0, 0])
        t[0] += 1
        t[1] += 1 if record.get("launched") is True else 0
    seen_platforms = set()
    for record in (r for r in records if r.get("type") == "capability"):
        platform = record.get("platform")
        seen_platforms.add(platform)
        total, launched = tally.get(platform, [0, 0])
        if record.get("cells") != total:
            failures.append(
                f"capability {platform}: claims {record.get('cells')!r} "
                f"cells, cell records say {total}")
        if record.get("launched") != launched:
            failures.append(
                f"capability {platform}: claims {record.get('launched')!r} "
                f"launched, cell records say {launched}")
        if record.get("failed") != total - launched:
            failures.append(
                f"capability {platform}: failed "
                f"{record.get('failed')!r} != cells - launched "
                f"({total - launched})")
    missing = set(tally) - seen_platforms
    if missing:
        failures.append(
            f"platforms with cells but no capability record: "
            f"{sorted(missing)}")

    # Frontier: dense seq per app pair, every point backed by a launched
    # calm cell with identical time/cost, and mutual non-domination.
    frontier = [r for r in records if r.get("type") == "frontier"]
    groups = {}
    for record in frontier:
        groups.setdefault(record.get("app_pair"), []).append(record)
    for pair_name, points in groups.items():
        for expected_seq, record in enumerate(points):
            where = f"frontier {pair_name}/{record.get('seq')!r}"
            if record.get("seq") != expected_seq:
                failures.append(
                    f"{where}: expected seq {expected_seq} (dense, "
                    "in order)")
            cell = by_id.get(record.get("cell"))
            if cell is None:
                failures.append(
                    f"{where}: references unknown cell "
                    f"{record.get('cell')!r}")
                continue
            if (cell.get("launched") is not True
                    or cell.get("fault") != "calm"
                    or cell.get("skewlb") != "calm"):
                failures.append(
                    f"{where}: cell {record.get('cell')} is not a "
                    "launched calm cell")
            if cell.get("app_pair") != pair_name:
                failures.append(
                    f"{where}: cell {record.get('cell')} belongs to "
                    f"app pair {cell.get('app_pair')!r}")
            if (record.get("time_s") != cell.get("total_s")
                    or record.get("cost_usd") != cell.get("cost_usd")):
                failures.append(
                    f"{where}: time/cost do not match cell "
                    f"{record.get('cell')}'s total_s/cost_usd")
        for a in points:
            for b in points:
                if a is b:
                    continue
                try:
                    dominated = (b["time_s"] <= a["time_s"]
                                 and b["cost_usd"] <= a["cost_usd"]
                                 and (b["time_s"] < a["time_s"]
                                      or b["cost_usd"] < a["cost_usd"]))
                except (KeyError, TypeError):
                    continue  # shape failures already reported
                if dominated:
                    failures.append(
                        f"frontier {pair_name}: point for cell "
                        f"{a.get('cell')} is dominated by cell "
                        f"{b.get('cell')} — frontier members must be "
                        "mutually non-dominated")

    # Summary tallies.
    summary = records[-1]
    if summary.get("type") == "summary":
        launched = sum(1 for r in cells if r.get("launched") is True)
        stochastic = sum(1 for r in cells if r.get("stochastic") is True)
        expected = {
            "cells": len(cells),
            "launched": launched,
            "failed": len(cells) - launched,
            "stochastic_cells": stochastic,
            "calm_cells": len(cells) - stochastic,
            "frontier_points": len(frontier),
        }
        for key, value in expected.items():
            if summary.get(key) != value:
                failures.append(
                    f"summary {key} = {summary.get(key)!r}, cell records "
                    f"say {value}")
    return failures


def compare_grid_reports(pairs, against_pairs, expect_drift):
    """Differential gate between two reports of the same matrix.

    Calm cells must be byte-identical (re-run / resume / re-seed
    stability); with expect_drift, stochastic cells launched in both runs
    must differ (the seed-perturbation gate).
    """
    failures = []

    def cell_lines(ps):
        return {rec.get("cell"): (rec, line)
                for rec, line in ps if rec.get("type") == "cell"}

    ours = cell_lines(pairs)
    theirs = cell_lines(against_pairs)
    shared = [cid for cid in ours if cid in theirs]
    if not shared:
        return ["--against: the reports share no cell ids"]
    calm_checked = 0
    for cid in shared:
        rec, line = ours[cid]
        other_rec, other_line = theirs[cid]
        if rec.get("stochastic") is False:
            calm_checked += 1
            if line != other_line:
                failures.append(
                    f"cell {cid}: calm cell drifted between the reports — "
                    "calm cells must be byte-identical across re-runs, "
                    "resumes, and matrix re-seeds")
        elif (expect_drift and rec.get("launched") is True
              and other_rec.get("launched") is True):
            if line == other_line:
                failures.append(
                    f"cell {cid}: stochastic cell byte-identical across "
                    "perturbed matrix seeds — its seed did not move")
    if calm_checked == 0:
        failures.append("--against: no calm cells shared between the "
                        "reports (nothing to pin)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Check bench JSONL output against a baseline.")
    parser.add_argument("results", help="JSONL written by a bench's --json")
    parser.add_argument("--baseline",
                        help="baseline JSON from bench/baselines/ "
                             "(required with --schema bench)")
    parser.add_argument("--schema", choices=["bench", "svc", "rebroker",
                                             "grid"],
                        default="bench",
                        help="bench: heterolab-bench-v1 rows gated by a "
                             "baseline; svc: a heterolab-svc-v1 response "
                             "stream's structural contract; rebroker: a "
                             "heterolab-rebroker-v1 decision trail's "
                             "structural contract; grid: a "
                             "heterolab-grid-v1 matrix report's cross-cell "
                             "invariants")
    parser.add_argument("--against", metavar="OTHER.jsonl",
                        help="(grid only) second report of the same matrix: "
                             "calm cells must be byte-identical")
    parser.add_argument("--expect-stochastic-drift", action="store_true",
                        help="(grid --against only) additionally require "
                             "every stochastic cell launched in both "
                             "reports to differ (seed-perturbation gate)")
    args = parser.parse_args()

    if args.schema != "grid" and (args.against
                                  or args.expect_stochastic_drift):
        parser.error("--against/--expect-stochastic-drift apply to "
                     "--schema grid only")
    if args.expect_stochastic_drift and not args.against:
        parser.error("--expect-stochastic-drift needs --against")

    pairs = load_jsonl_raw(args.results)
    records = [record for record, _ in pairs]

    if args.schema == "grid":
        failures = validate_grid_report(records)
        if args.against:
            failures.extend(compare_grid_reports(
                pairs, load_jsonl_raw(args.against),
                args.expect_stochastic_drift))
        passed = 0
        if args.baseline:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            for check in baseline.get("checks", []):
                try:
                    message = run_check(check, records)
                except CheckFailure as err:
                    failures.append(str(err))
                except KeyError as err:
                    failures.append(
                        f"{describe(check)}: baseline missing key {err}")
                else:
                    passed += 1
                    print(f"  ok: {message}")
        if failures:
            for failure in failures[:25]:
                print(f"FAIL [grid]: {failure}", file=sys.stderr)
            if len(failures) > 25:
                print(f"FAIL [grid]: ... and {len(failures) - 25} more",
                      file=sys.stderr)
            return 1
        cells = sum(1 for r in records if r.get("type") == "cell")
        print(f"PASS [grid]: {cells} cells, {passed} baseline checks, "
              "matrix invariants hold")
        return 0

    if args.schema == "rebroker":
        failures = []
        if not records:
            failures.append(f"{args.results}: no records")
        failures.extend(validate_rebroker_stream(records))
        if failures:
            for failure in failures[:25]:
                print(f"FAIL [rebroker]: {failure}", file=sys.stderr)
            if len(failures) > 25:
                print(f"FAIL [rebroker]: ... and {len(failures) - 25} more",
                      file=sys.stderr)
            return 1
        print(f"PASS [rebroker]: {len(records)} records, "
              "trail contract holds")
        return 0

    if args.schema == "svc":
        failures = []
        if not records:
            failures.append(f"{args.results}: no records")
        failures.extend(validate_svc_stream(records))
        if args.baseline:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            for check in baseline.get("checks", []):
                try:
                    message = run_check(check, records)
                except CheckFailure as err:
                    failures.append(str(err))
                except KeyError as err:
                    failures.append(
                        f"{describe(check)}: baseline missing key {err}")
                else:
                    print(f"  ok: {message}")
        if failures:
            for failure in failures[:25]:
                print(f"FAIL [svc]: {failure}", file=sys.stderr)
            if len(failures) > 25:
                print(f"FAIL [svc]: ... and {len(failures) - 25} more",
                      file=sys.stderr)
            return 1
        print(f"PASS [svc]: {len(records)} records, "
              "stream contract holds")
        return 0

    if not args.baseline:
        parser.error("--baseline is required with --schema bench")
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)

    failures = []
    if not records:
        failures.append(f"{args.results}: no records")
    for record in records:
        if record.get("schema") != SCHEMA:
            failures.append(
                f"record has schema {record.get('schema')!r}, "
                f"expected {SCHEMA!r}: {record}")
            break
    expected_bench = baseline.get("bench")
    if expected_bench and records:
        benches = {r.get("bench") for r in records}
        if benches != {expected_bench}:
            failures.append(
                f"records carry bench field(s) {sorted(benches)}, "
                f"baseline expects {expected_bench!r}")
    min_records = int(baseline.get("min_records", 1))
    if len(records) < min_records:
        failures.append(
            f"only {len(records)} records, baseline requires "
            f">= {min_records}")

    passed = 0
    for check in baseline.get("checks", []):
        try:
            message = run_check(check, records)
        except CheckFailure as err:
            failures.append(str(err))
        except KeyError as err:
            failures.append(f"{describe(check)}: baseline missing key {err}")
        else:
            passed += 1
            print(f"  ok: {message}")

    name = expected_bench or args.results
    if failures:
        for failure in failures:
            print(f"FAIL [{name}]: {failure}", file=sys.stderr)
        return 1
    print(f"PASS [{name}]: {passed} checks over {len(records)} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
