# End-to-end pipe-mode check through the real binary:
#   1. `heterolab serve` answers a small request file (cold, persistent store)
#   2. a second process over the same store answers identically (warm restart)
#   3. `heterolab broker --requests` produces the same stream (shared schema)
# Run via: cmake -DHETEROLAB=... -DWORK_DIR=... -P cli_serve_test.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(requests "${WORK_DIR}/requests.jsonl")
file(WRITE "${requests}" "\
{\"id\":0,\"type\":\"ping\"}
{\"id\":1,\"app\":\"rd\",\"elements\":1000000,\"deadline_h\":24,\"budget_usd\":50}
{\"id\":2,\"app\":\"ns\",\"ranks\":64,\"iterations\":50,\"objective\":\"cost\",\"top\":3}
{\"id\":3,\"app\":\"rd\",\"elements\":1000000,\"deadline_h\":24,\"budget_usd\":50}
{\"id\":4,\"type\":\"shutdown\"}
")

set(store "${WORK_DIR}/memo.log")

execute_process(
  COMMAND "${HETEROLAB}" serve --store "${store}"
  INPUT_FILE "${requests}"
  OUTPUT_FILE "${WORK_DIR}/cold.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold serve failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${HETEROLAB}" serve --store "${store}"
  INPUT_FILE "${requests}"
  OUTPUT_FILE "${WORK_DIR}/warm.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm serve failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/cold.jsonl" "${WORK_DIR}/warm.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm restart output differs from cold output")
endif()

execute_process(
  COMMAND "${HETEROLAB}" broker --requests "${requests}"
  OUTPUT_FILE "${WORK_DIR}/batch.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "broker --requests failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files
          "${WORK_DIR}/cold.jsonl" "${WORK_DIR}/batch.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "batch mode output differs from serve output")
endif()

file(STRINGS "${WORK_DIR}/cold.jsonl" lines)
list(LENGTH lines count)
if(count LESS 5)
  message(FATAL_ERROR "expected at least 5 response lines, got ${count}")
endif()
list(GET lines -1 last)
if(NOT last MATCHES "\"type\":\"bye\"")
  message(FATAL_ERROR "last record is not a bye record: ${last}")
endif()
