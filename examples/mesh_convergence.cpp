// Mesh-convergence study: the accuracy side of §IV ("the finer the
// reticulation ... the more precise the solution"). Solves the Poisson
// problem -lap(u) = f with a smooth manufactured solution on a sequence of
// uniformly refined meshes and reports L2 / H1 errors with their observed
// orders: P1 converges at h^2 / h^1, P2 at h^3 / h^2.
//
// Usage: mesh_convergence [--levels 3] [--order 1|2]

#include <cmath>
#include <iostream>

#include "fem/bc.hpp"
#include "fem/error_norms.hpp"
#include "mesh/box_mesh.hpp"
#include "mesh/refine.hpp"
#include "netsim/fabric.hpp"
#include "simmpi/runtime.hpp"
#include "solvers/krylov.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const int levels = static_cast<int>(args.get_int("levels", 3));
  const int order = static_cast<int>(args.get_int("order", 2));

  auto exact = [](const mesh::Vec3& p) {
    return std::sin(M_PI * p.x) * std::sin(M_PI * p.y) * p.z;
  };
  auto grad_exact = [](const mesh::Vec3& p) {
    return mesh::Vec3{M_PI * std::cos(M_PI * p.x) * std::sin(M_PI * p.y) * p.z,
                      M_PI * std::sin(M_PI * p.x) * std::cos(M_PI * p.y) * p.z,
                      std::sin(M_PI * p.x) * std::sin(M_PI * p.y)};
  };
  auto f = [](const mesh::Vec3& p) {
    // -lap(u) for the solution above.
    return 2.0 * M_PI * M_PI * std::sin(M_PI * p.x) * std::sin(M_PI * p.y) *
           p.z;
  };

  std::cout << "Poisson convergence under uniform refinement (P" << order
            << " elements)\n\n";
  Table table({"level", "cells", "dofs", "L2 error", "L2 order", "H1 error",
               "H1 order", "worst edge ratio"});

  simmpi::Runtime rt(netsim::Topology::uniform(
      1, 1, netsim::Fabric::infiniband_ddr_4x(),
      netsim::Fabric::shared_memory()));
  rt.run([&](simmpi::Comm& comm) {
    mesh::TetMesh current = mesh::build_box_mesh({2, 2, 2});
    double prev_l2 = 0.0;
    double prev_h1 = 0.0;
    for (int level = 0; level < levels; ++level) {
      if (level > 0) {
        current = mesh::refine_uniform(current);
      }
      fem::FeSpace space(current, order,
                         static_cast<std::int64_t>(current.vertex_count()));
      la::DistSystemBuilder builder(comm, space.dof_gids());
      fem::ElementKernel kernel(space, 4);
      const int n = kernel.n();
      std::vector<double> ke(static_cast<std::size_t>(n * n));
      std::vector<double> fe(static_cast<std::size_t>(n));
      std::vector<la::GlobalId> gids(static_cast<std::size_t>(n));
      builder.begin_assembly();
      for (std::size_t t = 0; t < current.tet_count(); ++t) {
        kernel.stiffness(t, ke);
        kernel.load(t, f, fe);
        space.tet_dof_gids(t, gids);
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < n; ++j) {
            builder.add_matrix(gids[static_cast<std::size_t>(i)],
                               gids[static_cast<std::size_t>(j)],
                               ke[static_cast<std::size_t>(i * n + j)]);
          }
          builder.add_rhs(gids[static_cast<std::size_t>(i)],
                          fe[static_cast<std::size_t>(i)]);
        }
      }
      builder.finalize(comm);
      auto on_boundary = [](const mesh::Vec3& x) {
        const double eps = 1e-12;
        return x.x < eps || x.x > 1.0 - eps || x.y < eps ||
               x.y > 1.0 - eps || x.z < eps || x.z > 1.0 - eps;
      };
      const auto bc = fem::make_dirichlet(comm, space, builder.map(),
                                          builder.halo(), on_boundary, exact);
      la::DistVector x(builder.map());
      fem::apply_dirichlet(builder.matrix(), builder.rhs(), x, bc);
      solvers::Ilu0Preconditioner ilu;
      ilu.build(builder.matrix());
      solvers::SolverConfig sc;
      sc.rel_tolerance = 1e-12;
      sc.max_iterations = 4000;
      const auto report =
          solvers::cg_solve(comm, builder.matrix(), ilu, builder.rhs(), x, sc);
      if (!report.converged) {
        std::cerr << "solver did not converge at level " << level << "\n";
      }
      x.update_ghosts(comm, builder.halo());
      const double l2 = fem::l2_error(comm, kernel, builder.map(), x, exact);
      const double h1 = fem::h1_seminorm_error(comm, kernel, builder.map(),
                                               x, grad_exact);
      table.add_row(
          {std::to_string(level), std::to_string(current.tet_count() / 6),
           std::to_string(builder.map().global_count()), fmt_double(l2, 7),
           level == 0 ? "-" : fmt_double(std::log2(prev_l2 / l2), 2),
           fmt_double(h1, 6),
           level == 0 ? "-" : fmt_double(std::log2(prev_h1 / h1), 2),
           fmt_double(mesh::worst_edge_ratio(current), 3)});
      prev_l2 = l2;
      prev_h1 = h1;
    }
  });
  table.render_text(std::cout);
  std::cout << "\nExpected orders: P1 -> L2 2, H1 1; P2 -> L2 3, H1 2.\n";
  return 0;
}
