// Quickstart: run the paper's first test case — the 3-D reaction-diffusion
// equation with the exact solution u = t^2 (x1^2 + x2^2 + x3^2) — on eight
// simulated MPI ranks of the "puma" home cluster, print per-step phase
// timings and exact-solution errors, and export the final field for
// ParaView (the paper's Figure 1 artifact).
//
// Usage: quickstart [--ranks 8] [--cells 8] [--steps 5] [--vtk out.vtk]

#include <iostream>

#include "apps/rd_solver.hpp"
#include "fem/error_norms.hpp"
#include "mesh/vtk_writer.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const int cells = static_cast<int>(args.get_int("cells", 8));
  const int steps = static_cast<int>(args.get_int("steps", 5));
  const std::string vtk = args.get_string("vtk", "rd_solution.vtk");
  // Optional ParaView time series: one frame per step + a .pvd collection.
  const std::string series_base = args.get_string("series", "");

  std::cout << "heterolab quickstart: RD equation, " << ranks
            << " simulated ranks on the '" << platform::puma().name
            << "' platform model, " << cells << "^3 global cells, " << steps
            << " BDF2 steps\n\n";

  const auto& spec = platform::puma();
  simmpi::Runtime runtime(spec.topology(ranks));

  Table table({"step", "t", "assembly[s]", "precond[s]", "solve[s]",
               "total[s]", "CG iters", "max nodal error"});
  runtime.run([&](simmpi::Comm& comm) {
    apps::RdConfig config;
    config.global_cells = cells;
    config.cpu = spec.cpu_model();
    apps::RdSolver solver(comm, config);
    mesh::VtkSeriesWriter series(series_base.empty() ? "unused"
                                                     : series_base);
    auto nodal_field = [&]() {
      const auto& mesh = solver.local_mesh();
      std::vector<double> nodal(mesh.vertex_count());
      for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
        const int l =
            solver.map().local(mesh.vertex_gid(static_cast<int>(v)));
        nodal[v] = l >= 0 ? solver.solution()[l] : 0.0;
      }
      return nodal;
    };
    for (int s = 0; s < steps; ++s) {
      const auto r = solver.step();
      if (comm.rank() == 0) {
        table.add_row({std::to_string(s + 1), fmt_double(r.time, 2),
                       fmt_double(r.timing.assembly_s, 3),
                       fmt_double(r.timing.preconditioner_s, 3),
                       fmt_double(r.timing.solve_s, 3),
                       fmt_double(r.timing.total_s, 3),
                       std::to_string(r.solver_iterations),
                       fmt_double(r.nodal_error, 12)});
        if (!series_base.empty()) {
          mesh::VtkWriter frame(solver.local_mesh());
          frame.add_scalar_field("u", nodal_field());
          series.add_step(r.time, frame);
        }
      }
    }
    if (comm.rank() == 0 && !series_base.empty()) {
      series.finalize();
    }
    // Rank 0's submesh (with its share of the solution) goes to ParaView.
    if (comm.rank() == 0 && !vtk.empty()) {
      const auto& space = solver.space();
      const auto& mesh = solver.local_mesh();
      std::vector<double> nodal(mesh.vertex_count());
      for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
        const int l = solver.map().local(mesh.vertex_gid(static_cast<int>(v)));
        nodal[v] = l >= 0 ? solver.solution()[l] : 0.0;
      }
      (void)space;
      mesh::VtkWriter writer(mesh);
      writer.add_scalar_field("u", std::move(nodal));
      writer.write(vtk);
    }
  });

  table.render_text(std::cout);
  std::cout << "\nThe max nodal error sits at the CG tolerance: the exact "
               "solution is quadratic in space and time, so P2 + BDF2 "
               "reproduce it exactly (the paper's correctness check).\n";
  std::cout << "Rank 0 submesh written to " << vtk << " (open in ParaView "
            << "to reproduce Figure 1's isosurfaces).\n";
  return 0;
}
