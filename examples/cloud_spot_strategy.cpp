// Cost-aware cloud assembly: walk through the paper's §VI-D / Table II
// workflow against the simulated EC2 service — create placement groups,
// bid for spot cc2.8xlarge instances, top up with on-demand hosts, check
// the security-group gotcha, run the RD projection on the resulting
// assembly, and settle the bill.
//
// Usage: cloud_spot_strategy [--hosts 63] [--bid 1.20] [--seed 42]
//                            [--hours 12]

#include <iostream>

#include "cloud/ec2_service.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const int hosts = static_cast<int>(args.get_int("hosts", 63));
  const double bid = args.get_double("bid", 1.20);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const int hours = static_cast<int>(args.get_int("hours", 12));

  cloud::Ec2Service service(seed);
  const auto& cc2 = cloud::instance_type("cc2.8xlarge");

  std::cout << "Spot price tape (cc2.8xlarge, on-demand $"
            << fmt_double(cc2.on_demand_hourly_usd, 2) << "/h):\n";
  Table tape({"hour", "spot price", "capacity", "fills 63-host bid?"});
  for (int h = 0; h < hours; ++h) {
    const double price = service.market().price(cc2, h);
    const int cap = service.market().capacity(cc2, h);
    tape.add_row({std::to_string(h), fmt_usd(price), std::to_string(cap),
                  price <= bid && cap >= hosts ? "yes" : "no"});
  }
  tape.render_text(std::cout);

  // Assemble: 4 placement groups, spot first, on-demand fill.
  std::vector<int> groups;
  for (int g = 0; g < 4; ++g) {
    groups.push_back(service.create_placement_group("hl-" + std::to_string(g)));
  }
  auto spot = service.request_spot("cc2.8xlarge", hosts, bid, groups);
  std::cout << "\nSpot request for " << hosts << " hosts at $"
            << fmt_double(bid, 2) << "/h bid: granted "
            << spot.instances.size() << " (the paper never got all 63 "
            << "either).\n";
  auto assembly = spot.instances;
  const int missing = hosts - static_cast<int>(assembly.size());
  if (missing > 0) {
    auto fill = service.request_on_demand("cc2.8xlarge", missing, groups[0]);
    assembly.insert(assembly.end(), fill.instances.begin(),
                    fill.instances.end());
    std::cout << "Topped up with " << missing << " on-demand hosts at $2.40/h.\n";
  }

  // The §VI-D gotcha: MPI traffic is blocked until the security group opens.
  std::cout << "\nTrying to assemble the cluster before opening intranet "
               "TCP ports...\n";
  try {
    service.assembly_topology(assembly, hosts * 16, 0.02);
  } catch (const Error& e) {
    std::cout << "  rejected, as on the real service: " << e.what() << "\n";
  }
  service.authorize_intranet_tcp();
  const auto topo = service.assembly_topology(assembly, hosts * 16, 0.02);

  // One iteration of the RD application on this assembly.
  const auto model = perf::rd_model();
  const auto breakdown = perf::project_iteration(
      model, topo, platform::ec2().cpu_model(), hosts * 16);
  double hourly = 0.0;
  for (const auto& inst : assembly) {
    hourly += inst.hourly_usd;
  }
  std::cout << "\nAssembly of " << assembly.size() << " hosts ("
            << spot.instances.size() << " spot): blended rate "
            << fmt_usd(hourly) << "/h\n"
            << "RD iteration on " << hosts * 16
            << " ranks: " << fmt_double(breakdown.total_s, 2) << " s -> "
            << fmt_usd(hourly * breakdown.total_s / 3600.0)
            << " per iteration (all-on-demand would be "
            << fmt_usd(hosts * 2.40 * breakdown.total_s / 3600.0) << ")\n";

  // Run for two hours of simulated time and settle the bill.
  service.advance(2.0 * 3600.0);
  std::cout << "\nAfter 2 h: accrued " << fmt_usd(service.accrued_usd())
            << ", billed (whole instance-hours) "
            << fmt_usd(service.billed_usd()) << "\n";
  service.terminate(assembly);
  std::cout << "Instances terminated; fleet size now "
            << service.fleet().size() << ".\n";
  return 0;
}
