// The porting narrative of §VI as a report: for each platform, the full
// dependency-ordered provisioning plan for the LifeV-based CFD stack —
// what is already there, what yum can deliver, what the vendor libraries
// cover, and what must be built from source — with man-hour estimates.
//
// Usage: provisioning_report [--platform puma|ellipse|lagrange|ec2]

#include <iostream>

#include "platform/platform_spec.hpp"
#include "provision/planner.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const std::string only = args.get_string("platform", "");

  for (const auto* spec : platform::all_platforms()) {
    if (!only.empty() && spec->name != only) {
      continue;
    }
    const auto plan = provision::plan_provisioning(*spec);
    std::cout << "=== " << spec->name << " — provisioning the CFD stack ("
              << fmt_double(plan.total_hours(), 1) << " man-hours, "
              << plan.source_builds() << " source builds) ===\n";
    plan.to_table().render_text(std::cout);
    std::cout << "\n";
  }
  std::cout << "The paper's experience: puma needed nothing (home "
               "platform); ellipse and lagrange took ~8 man-hours of "
               "user-space source builds each; the bare EC2 image took "
               "about a day including system update, ssh keys, the "
               "security group, and boot-partition resizing.\n";
  return 0;
}
