// Elastic restart on spot instances, end to end with the *real* solver:
//
//   1. acquire a spot assembly from the simulated EC2 service;
//   2. run the RD application (threads + virtual clocks) and checkpoint
//      both BDF history levels every few steps;
//   3. advance the market until the vendor reclaims the spot hosts;
//   4. re-acquire a (differently sized) assembly and resume from the
//      checkpoint — the gid-keyed checkpoint redistributes automatically;
//   5. verify the exactness oracle still holds after the restart.
//
// This is §VI-D's "further conditioning may provide ... automatic
// checkpointing" carried out on the actual numerical state, not a model.
//
// Usage: elastic_restart [--cells 6] [--steps 6] [--ckpt-every 2]

#include <cstdio>
#include <iostream>

#include "apps/rd_solver.hpp"
#include "cloud/ec2_service.hpp"
#include "io/checkpoint.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const int cells = static_cast<int>(args.get_int("cells", 6));
  const int steps = static_cast<int>(args.get_int("steps", 6));
  const int ckpt_every = static_cast<int>(args.get_int("ckpt-every", 2));
  const std::string ckpt = "/tmp/heterolab_elastic.h5l";

  apps::RdConfig config;
  config.global_cells = cells;
  config.cpu = platform::ec2().cpu_model();

  cloud::Ec2Service service(args.has("seed")
                                ? static_cast<std::uint64_t>(
                                      args.get_int("seed", 42))
                                : 42);
  service.authorize_intranet_tcp();
  const int group = service.create_placement_group("elastic");

  // Phase 1: a spot host runs 8 ranks, checkpointing as it goes.
  const double bid =
      service.market().price(cloud::instance_type("cc2.8xlarge"), 0) * 1.02;
  auto spot = service.request_spot("cc2.8xlarge", 1, bid, {group});
  if (spot.instances.empty()) {
    std::cout << "Spot market rejected the bid at hour 0; raising it.\n";
    spot = service.request_on_demand("cc2.8xlarge", 1, group);
  }
  std::cout << "Phase 1: 8 ranks on a "
            << (spot.instances.front().spot ? "spot" : "on-demand")
            << " cc2.8xlarge at " << fmt_usd(spot.instances.front().hourly_usd)
            << "/h, checkpoint every " << ckpt_every << " steps\n";

  double t_ckpt = 0.0;
  int steps_done = 0;
  {
    simmpi::Runtime rt(
        service.assembly_topology(spot.instances, 8, 0.02));
    rt.run([&](simmpi::Comm& comm) {
      apps::RdSolver solver(comm, config);
      for (int s = 0; s < steps; ++s) {
        const auto r = solver.step();
        if (comm.rank() == 0) {
          std::printf("  step %d  t=%.2f  total %.3f s  error %.1e\n", s + 1,
                      r.time, r.timing.total_s, r.nodal_error);
        }
        if ((s + 1) % ckpt_every == 0) {
          io::save_checkpoint(comm, solver.solution(), "u", ckpt);
          io::save_checkpoint(comm, solver.previous_solution(), "up",
                              ckpt + ".prev");
          if (comm.rank() == 0) {
            t_ckpt = solver.current_time();
            steps_done = s + 1;
          }
        }
        // Interruption after the first checkpointed window.
        if (steps_done > 0 && s + 1 == steps_done + 1) {
          break;
        }
      }
    });
  }

  // Phase 2: the market moves; the vendor reclaims the spot host.
  std::vector<cloud::Instance> reclaimed;
  int hours = 0;
  while (reclaimed.empty() && hours < 200 &&
         spot.instances.front().spot) {
    reclaimed = service.advance(3600.0);
    ++hours;
  }
  if (!reclaimed.empty()) {
    std::cout << "\nPhase 2: spot host reclaimed after " << hours
              << " h (market moved above the bid). Progress beyond the "
                 "checkpoint at t="
            << t_ckpt << " is lost.\n";
  } else {
    std::cout << "\nPhase 2: host survived the market (or was on-demand); "
                 "simulating an interruption anyway.\n";
    service.terminate(spot.instances);
  }

  // Phase 3: resume on a fresh on-demand assembly with a different width.
  auto fresh = service.request_on_demand("cc2.8xlarge", 2, group);
  std::cout << "Phase 3: resuming on 2 on-demand hosts (27 ranks) from the "
               "checkpoint\n";
  {
    simmpi::Runtime rt(service.assembly_topology(fresh.instances, 27, 0.02));
    rt.run([&](simmpi::Comm& comm) {
      apps::RdSolver solver(comm, config);
      la::DistVector u(solver.map());
      la::DistVector up(solver.map());
      io::load_checkpoint(comm, u, "u", ckpt);
      io::load_checkpoint(comm, up, "up", ckpt + ".prev");
      solver.restore_state(u, up, t_ckpt);
      for (int s = steps_done; s < steps; ++s) {
        const auto r = solver.step();
        if (comm.rank() == 0) {
          std::printf("  step %d  t=%.2f  total %.3f s  error %.1e\n", s + 1,
                      r.time, r.timing.total_s, r.nodal_error);
        }
      }
    });
  }
  std::cout << "\nThe exactness oracle holds across the interruption: the "
               "restarted trajectory is the same discrete solution.\n"
            << "Total billed: " << fmt_usd(service.billed_usd()) << "\n";
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".prev").c_str());
  return 0;
}
