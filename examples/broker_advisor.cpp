// Library-level tour of the broker: build a JobRequest, compare what each
// objective recommends, and walk the time/cost Pareto frontier — the
// decision the paper's users made by eyeballing figures 4–7, automated.
//
//   broker_advisor [--app rd|ns] [--elements 1000000] [--iterations 100]
//                  [--deadline-h H] [--budget-usd D] [--risk R] [--seed S]

#include <iostream>

#include "broker/broker.hpp"
#include "support/cli.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);

  broker::JobRequest request;
  request.app = args.get_string("app", "rd") == "ns"
                    ? perf::AppKind::kNavierStokes
                    : perf::AppKind::kReactionDiffusion;
  request.total_elements = args.get_int("elements", 1000000);
  request.iterations = static_cast<int>(args.get_int("iterations", 100));
  if (args.has("deadline-h")) {
    request.deadline_h = args.get_double("deadline-h", 0.0);
  }
  if (args.has("budget-usd")) {
    request.budget_usd = args.get_double("budget-usd", 0.0);
  }
  request.risk_tolerance = args.get_double("risk", 0.5);

  broker::Broker advisor(
      static_cast<std::uint64_t>(args.get_int("seed", 42)));

  // One request, four objectives: how much the "best" platform depends on
  // what you optimize for is the paper's central experience.
  std::cout << "=== what wins under each objective ===\n";
  for (const auto& objective :
       {broker::min_time(), broker::min_cost(),
        broker::min_effective_time(), broker::weighted_blend(1.0, 1.0)}) {
    const auto rec = advisor.recommend(request, objective);
    std::cout << objective.name << ": ";
    if (!rec.has_winner()) {
      std::cout << "infeasible (" << rec.rejected.size()
                << " candidates rejected)\n";
      continue;
    }
    const auto& w = rec.winner();
    std::cout << w.candidate.label() << " — run "
              << format_seconds(w.run_s) << ", effective "
              << format_seconds(w.effective_s) << ", "
              << fmt_usd(w.cost_usd) << "\n";
  }

  const auto rec =
      advisor.recommend(request, broker::min_effective_time());
  std::cout << "\n=== time/cost Pareto frontier ("
            << rec.frontier.size() << " points over " << rec.ranked.size()
            << " feasible candidates) ===\n";
  broker::frontier_table(rec).render_text(std::cout);

  if (!rec.rejected.empty()) {
    std::cout << "\n=== why the others were rejected ===\n";
    broker::rejection_table(rec).render_text(std::cout);
  }
  return rec.has_winner() ? 0 : 1;
}
