// Platform shootout: the paper's bottom-line comparison for one job.
// Pick an application and a process count; see, for every platform, whether
// it can run the job at all, how long provisioning and the queue take, what
// one iteration costs, and the effective time to a full campaign.
//
// Usage: platform_shootout [--app rd|ns] [--ranks 125] [--iterations 500]

#include <iostream>

#include "core/report.hpp"
#include "support/cli.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const std::string app_name = args.get_string("app", "rd");
  const int ranks = static_cast<int>(args.get_int("ranks", 125));
  const int iterations = static_cast<int>(args.get_int("iterations", 500));
  const perf::AppKind app = app_name == "ns"
                                ? perf::AppKind::kNavierStokes
                                : perf::AppKind::kReactionDiffusion;

  std::cout << "Platform shootout — "
            << (app == perf::AppKind::kNavierStokes ? "Navier-Stokes"
                                                    : "reaction-diffusion")
            << ", " << ranks << " processes, " << iterations
            << "-iteration campaign\n\n";

  core::ExperimentRunner runner(42);
  Table table({"platform", "status", "porting", "queue wait", "s/iter",
               "campaign run", "campaign cost", "effective total"});
  for (const auto* spec : platform::all_platforms()) {
    core::Experiment e;
    e.app = app;
    e.platform = spec->name;
    e.ranks = ranks;
    const auto r = runner.run(e);
    if (!r.launched) {
      table.add_row({spec->name, "FAILED: " + r.failure_reason, "-", "-",
                     "-", "-", "-", "-"});
      continue;
    }
    const double run_s = r.iteration.total_s * iterations;
    table.add_row(
        {spec->name, "ok", fmt_double(r.provisioning_hours, 1) + " h",
         format_seconds(r.queue_wait_s), fmt_double(r.iteration.total_s, 2),
         format_seconds(run_s),
         fmt_usd(r.cost_per_iteration_usd * iterations),
         format_seconds(r.queue_wait_s + run_s)});
  }
  table.render_text(std::cout);

  std::cout << "\nEach platform wins somewhere: puma is cheapest per "
               "core-hour (when the job fits its 128 cores), lagrange is "
               "fastest per iteration, ec2 starts in minutes and scales to "
               "sizes nobody else offers, and the spot market undercuts "
               "every fixed price — the paper's central observation.\n";
  return 0;
}
