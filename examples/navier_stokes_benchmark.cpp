// The paper's second test case: incompressible Navier-Stokes with the
// Ethier-Steinman exact solution (Figure 2's field). Runs the stabilized
// P1/P1 Oseen/BDF2 solver on simulated ranks, reports per-step timings and
// velocity errors, and exports velocity + pressure for ParaView.
//
// Usage: navier_stokes_benchmark [--ranks 4] [--cells 5] [--steps 3]
//                                [--dt 0.002] [--vtk ns_solution.vtk]

#include <iostream>

#include "apps/ns_solver.hpp"
#include "mesh/vtk_writer.hpp"
#include "platform/platform_spec.hpp"
#include "simmpi/runtime.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace hetero;
  const CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const int cells = static_cast<int>(args.get_int("cells", 5));
  const int steps = static_cast<int>(args.get_int("steps", 3));
  const double dt = args.get_double("dt", 0.002);
  const std::string vtk = args.get_string("vtk", "ns_solution.vtk");

  std::cout << "Ethier-Steinman Navier-Stokes benchmark: " << ranks
            << " simulated ranks (lagrange model), " << cells
            << "^3 cells on [-1,1]^3, dt = " << dt << "\n\n";

  const auto& spec = platform::lagrange();
  simmpi::Runtime runtime(spec.topology(ranks));

  Table table({"step", "t", "assembly[s]", "precond[s]", "solve[s]",
               "GMRES iters", "max |u - u_exact|", "L2(u1) error"});
  runtime.run([&](simmpi::Comm& comm) {
    apps::NsConfig config;
    config.global_cells = cells;
    config.dt = dt;
    config.cpu = spec.cpu_model();
    apps::NsSolver solver(comm, config);
    for (int s = 0; s < steps; ++s) {
      const auto r = solver.step();
      if (comm.rank() == 0) {
        table.add_row({std::to_string(s + 1), fmt_double(r.time, 4),
                       fmt_double(r.timing.assembly_s, 3),
                       fmt_double(r.timing.preconditioner_s, 3),
                       fmt_double(r.timing.solve_s, 3),
                       std::to_string(r.solver_iterations),
                       fmt_double(r.nodal_error, 5),
                       fmt_double(r.l2_error, 6)});
      }
    }
    if (comm.rank() == 0 && !vtk.empty()) {
      const auto& space = solver.space();
      const auto& mesh = space.mesh();
      std::vector<double> velocity(3 * mesh.vertex_count());
      std::vector<double> pressure(mesh.vertex_count());
      for (std::size_t v = 0; v < mesh.vertex_count(); ++v) {
        for (int c = 0; c < 3; ++c) {
          velocity[3 * v + static_cast<std::size_t>(c)] =
              solver.solution_at(static_cast<int>(v), c);
        }
        pressure[v] = solver.solution_at(static_cast<int>(v), 3);
      }
      mesh::VtkWriter writer(mesh);
      writer.add_vector_field("velocity", std::move(velocity));
      writer.add_scalar_field("pressure", std::move(pressure));
      writer.write(vtk);
    }
  });

  table.render_text(std::cout);
  std::cout << "\nVelocity errors reflect the P1 discretization at this "
               "mesh; refine --cells to watch them shrink. Rank 0's "
               "velocity/pressure field written to "
            << vtk << " (Figure 2's arrows + isosurfaces in ParaView).\n";
  return 0;
}
