#pragma once

/// \file scaling_model.hpp
/// Analytic weak-scaling performance model — the bridge from small direct
/// (thread-level) runs to the paper's 1000-process experiments.
///
/// The model composes per-iteration phase times from:
///   * per-rank work counts derived from the same cubic decomposition the
///     direct runs use (validated against them in tests);
///   * the platform's CPU rate model (apps::CpuCostModel), and
///   * netsim communication costs on the job's topology (halo exchanges,
///     allreduce latency, assembly redistribution).
///
/// Solver iterations grow with the *global* problem (weak scaling enlarges
/// the mesh): a one-level preconditioner gives roughly iters ~ p^e with
/// e ~ 1/3 for CG on the RD systems; the Navier–Stokes GMRES adds many
/// latency-bound reductions per iteration, which is what makes its curves
/// degrade everywhere — the paper's central qualitative finding.

#include <span>

#include "apps/app_common.hpp"
#include "netsim/topology.hpp"

namespace hetero::perf {

enum class AppKind { kReactionDiffusion, kNavierStokes };

/// Knobs of the projection; defaults reproduce the paper's setup.
struct ModelConfig {
  AppKind app = AppKind::kReactionDiffusion;
  /// Elements (cells) per axis held by one rank; the paper loads 20^3.
  int cells_per_rank_axis = 20;
  /// Krylov iterations at p = 1 (calibrate from a direct run).
  double base_solver_iterations = 12.0;
  /// iters(p) = base * p^iteration_exponent (weak-scaling growth).
  double iteration_exponent = 1.0 / 3.0;
  /// Latency-bound global reductions per Krylov iteration (CG ~ 3; GMRES
  /// with modified Gram-Schmidt ~ restart/2 sequential dots).
  double allreduces_per_iteration = 3.0;
  /// Halo exchanges per Krylov iteration (one per operator apply).
  double halo_exchanges_per_iteration = 1.0;
  /// Navier–Stokes velocity element order: 1 = the stabilized equal-order
  /// P1/P1 pair, 2 = the Taylor–Hood P2/P1 pair (quadratic velocity,
  /// linear pressure — inf-sup stable without stabilization, at ~6x the
  /// dofs and denser element blocks). Ignored by the RD model.
  int ns_velocity_order = 1;
};

/// Built-in configurations for the two applications.
ModelConfig rd_model();
ModelConfig ns_model();

/// Per-iteration phase times (the paper's Fig. 4/5 series).
struct PhaseBreakdown {
  double assembly_s = 0.0;
  double preconditioner_s = 0.0;
  double solve_s = 0.0;
  double total_s = 0.0;
  double solver_iterations = 0.0;
};

/// Analytic per-rank work for a p-rank weak-scaling run.
apps::WorkCounts work_per_rank(const ModelConfig& config, int ranks);

/// Number of face-neighbour ranks of a typical interior rank at p ranks.
int typical_neighbours(int ranks);

/// Average on-node / off-node split of face-neighbour pairs over all ranks
/// of the cubic decomposition, with `ranks_per_node` consecutive ranks
/// packed per node. Exact enumeration (cheap at p <= 1000): misalignment of
/// the rank grid with the node width produces the size-dependent wiggles
/// the paper observed on EC2 ("certain sizes where the performance
/// significantly deteriorates").
void average_neighbour_split(int ranks, int ranks_per_node, double* on_node,
                             double* off_node);

/// Doubles imported per halo exchange by an interior rank.
std::int64_t halo_dofs_per_rank(const ModelConfig& config, int ranks);

/// Projects one iteration (= one time step) of the application on the
/// given topology and CPU model.
PhaseBreakdown project_iteration(const ModelConfig& config,
                                 const netsim::Topology& topo,
                                 const apps::CpuCostModel& cpu, int ranks);

/// Modeled compute slowdown of a bulk-synchronous step when every rank
/// holds the *same* share of work but runs at per-rank compute-cost
/// multipliers `rank_factors` (resil::SkewPlan::mean_factor): the step
/// waits for the slowest rank, so the slowdown is max(factors).
double skew_slowdown_unbalanced(std::span<const double> rank_factors);

/// Modeled compute slowdown under *perfect* capacity-weighted balancing:
/// shares proportional to speed make every rank finish together, so p
/// ranks of speeds 1/f_r jointly run at the harmonic mean —
/// slowdown = p / sum(1 / f_r). Always <= the unbalanced slowdown; the
/// gap is what the load balancer can win back (docs/load_balancing.md).
double skew_slowdown_balanced(std::span<const double> rank_factors);

}  // namespace hetero::perf
