#include "perf/scaling_model.hpp"

#include <algorithm>
#include <cmath>

#include "netsim/collectives.hpp"
#include "support/error.hpp"

namespace hetero::perf {

ModelConfig rd_model() {
  ModelConfig c;
  c.app = AppKind::kReactionDiffusion;
  c.cells_per_rank_axis = 20;
  // BDF mass-dominated SPD systems: the iteration count barely grows with
  // the global mesh (lagrange's near-flat measured curve implies the same).
  c.base_solver_iterations = 60.0;
  c.iteration_exponent = 0.12;
  c.allreduces_per_iteration = 3.0;
  c.halo_exchanges_per_iteration = 1.0;
  return c;
}

ModelConfig ns_model() {
  ModelConfig c;
  c.app = AppKind::kNavierStokes;
  c.cells_per_rank_axis = 20;
  c.base_solver_iterations = 150.0;
  c.iteration_exponent = 0.12;
  // …but GMRES(MGS) performs sequential latency-bound dots every iteration.
  c.allreduces_per_iteration = 14.0;
  c.halo_exchanges_per_iteration = 1.0;
  return c;
}

apps::WorkCounts work_per_rank(const ModelConfig& config, int ranks) {
  HETERO_REQUIRE(ranks >= 1, "work_per_rank needs ranks >= 1");
  const auto n = static_cast<std::int64_t>(config.cells_per_rank_axis);
  apps::WorkCounts w;
  w.local_tets = 6 * n * n * n;
  if (config.app == AppKind::kReactionDiffusion) {
    // P2 scalar: ~8 dofs per cell (1 vertex + 7 edges), 10x10 element
    // matrices, ~27 nonzeros per row (measured on direct runs).
    w.local_rows = 8 * n * n * n;
    w.matrix_entries_assembled = w.local_tets * 10 * 10;
    w.local_nonzeros = 27 * w.local_rows;
  } else if (config.ns_velocity_order >= 2) {
    // Taylor-Hood P2/P1: 3 velocity components at ~8 dofs per cell plus
    // 1 pressure dof per vertex (~1 per cell) -> ~25 rows per cell;
    // 34-dof tet blocks (3 x 10 velocity + 4 pressure) and the wider P2
    // stencil push the row density to ~50 nonzeros.
    w.local_rows = 25 * n * n * n;
    w.matrix_entries_assembled = w.local_tets * 34 * 34;
    w.local_nonzeros = 50 * w.local_rows;
  } else {
    // P1 4-component blocks: 4 dofs per vertex (~1 vertex per cell),
    // (4x4)^2 element blocks, ~37 nonzeros per block row.
    w.local_rows = 4 * n * n * n;
    w.matrix_entries_assembled = w.local_tets * 16 * 16;
    w.local_nonzeros = 37 * w.local_rows;
  }
  w.halo_doubles = halo_dofs_per_rank(config, ranks);
  return w;
}

int typical_neighbours(int ranks) {
  if (ranks <= 1) {
    return 0;
  }
  const int k = static_cast<int>(std::round(std::cbrt(ranks)));
  if (k <= 1) {
    return 1;  // decomposition along fewer axes
  }
  return k == 2 ? 3 : 6;
}

std::int64_t halo_dofs_per_rank(const ModelConfig& config, int ranks) {
  const auto n = static_cast<std::int64_t>(config.cells_per_rank_axis);
  const int faces = typical_neighbours(ranks);
  if (faces == 0) {
    return 0;
  }
  // Dofs on one n x n cell interface: P2 carries vertices + in-face edges
  // (~4 n^2); the 4-component P1 system carries 4 (n+1)^2; Taylor-Hood
  // carries three P2 velocity components plus the P1 pressure trace.
  std::int64_t per_face;
  if (config.app == AppKind::kReactionDiffusion) {
    per_face = 4 * n * n;
  } else if (config.ns_velocity_order >= 2) {
    per_face = 3 * 4 * n * n + (n + 1) * (n + 1);
  } else {
    per_face = 4 * (n + 1) * (n + 1);
  }
  return faces * per_face;
}

void average_neighbour_split(int ranks, int ranks_per_node, double* on_node,
                             double* off_node) {
  HETERO_REQUIRE(ranks >= 1 && ranks_per_node >= 1,
                 "neighbour split needs positive counts");
  const int k = static_cast<int>(std::round(std::cbrt(ranks)));
  if (k * k * k != ranks || ranks == 1) {
    // Non-cubic fallback: the typical-neighbour heuristic with the x-axis
    // neighbours co-located when nodes hold more than one rank.
    const int total = typical_neighbours(ranks);
    const double on = ranks_per_node >= 2 ? std::min(total, 2) : 0;
    *on_node = on;
    *off_node = total - on;
    return;
  }
  // Exact enumeration over the k^3 grid, ranks packed x-fastest and
  // assigned to nodes in consecutive blocks of ranks_per_node.
  const int offsets[3] = {1, k, k * k};
  std::int64_t on = 0;
  std::int64_t total = 0;
  for (int z = 0; z < k; ++z) {
    for (int y = 0; y < k; ++y) {
      for (int x = 0; x < k; ++x) {
        const int r = x + k * (y + k * z);
        const int coords[3] = {x, y, z};
        for (int axis = 0; axis < 3; ++axis) {
          for (int dir = -1; dir <= 1; dir += 2) {
            const int c = coords[axis] + dir;
            if (c < 0 || c >= k) {
              continue;
            }
            const int nbr = r + dir * offsets[axis];
            ++total;
            on += (r / ranks_per_node) == (nbr / ranks_per_node);
          }
        }
      }
    }
  }
  const double per_rank_total =
      static_cast<double>(total) / static_cast<double>(ranks);
  const double per_rank_on =
      static_cast<double>(on) / static_cast<double>(ranks);
  *on_node = per_rank_on;
  *off_node = per_rank_total - per_rank_on;
}

PhaseBreakdown project_iteration(const ModelConfig& config,
                                 const netsim::Topology& topo,
                                 const apps::CpuCostModel& cpu, int ranks) {
  HETERO_REQUIRE(topo.ranks() == ranks,
                 "topology rank count must match the projection");
  const apps::WorkCounts w = work_per_rank(config, ranks);
  PhaseBreakdown out;

  // --- communication building blocks ---------------------------------------
  // Exact average neighbour split over the decomposition: wiggles with the
  // alignment between the rank grid and the node width (the EC2 "certain
  // sizes" effect from §VII-A arises here naturally).
  double on_avg = 0.0;
  double off_avg = 0.0;
  average_neighbour_split(ranks, topo.ranks_per_node(), &on_avg, &off_avg);
  const int on_node = static_cast<int>(std::round(on_avg));
  const int off_node =
      std::max(typical_neighbours(ranks) - on_node, off_avg > 0.0 ? 1 : 0);
  const auto halo_bytes = static_cast<std::uint64_t>(w.halo_doubles) * 8;
  const double off_fraction =
      (on_avg + off_avg) > 0.0 ? off_avg / (on_avg + off_avg) : 0.0;
  const auto bytes_off =
      static_cast<std::uint64_t>(static_cast<double>(halo_bytes) *
                                 off_fraction);
  const std::uint64_t bytes_on = halo_bytes - bytes_off;
  const double halo_time =
      ranks == 1 ? 0.0
                 : topo.exchange_time(bytes_off, std::max(off_node, 0),
                                      bytes_on, std::max(on_node, 0));
  const double allreduce = netsim::allreduce_time(topo, 8);

  // --- assembly (step ii) ----------------------------------------------------
  const double entries = static_cast<double>(w.matrix_entries_assembled);
  out.assembly_s = cpu.scale(entries * cpu.assembly_sec_per_entry);
  if (ranks > 1) {
    // Off-process row contributions redistribute along the same interfaces;
    // roughly 10 shipped values per interface dof, plus the alltoallv
    // round-trip latency of the exchange pattern.
    out.assembly_s += topo.exchange_time(bytes_off * 10, std::max(off_node, 1),
                                         bytes_on * 10, std::max(on_node, 0));
    out.assembly_s += 2.0 * allreduce;  // structure/consistency checks
  }

  // --- preconditioner (step iiia) -------------------------------------------
  const double nnz = static_cast<double>(w.local_nonzeros);
  out.preconditioner_s = cpu.scale(nnz * cpu.ilu_sec_per_nnz);

  // --- solve (step iiib) ------------------------------------------------------
  out.solver_iterations =
      config.base_solver_iterations *
      std::pow(static_cast<double>(ranks), config.iteration_exponent);
  const double rows = static_cast<double>(w.local_rows);
  const double per_iter_compute = cpu.scale(
      nnz * (cpu.spmv_sec_per_nnz + cpu.trisolve_sec_per_nnz) +
      10.0 * rows * cpu.vec_sec_per_entry);
  const double per_iter_comm =
      config.halo_exchanges_per_iteration * halo_time +
      config.allreduces_per_iteration * allreduce;
  out.solve_s = out.solver_iterations * (per_iter_compute + per_iter_comm);

  out.total_s = out.assembly_s + out.preconditioner_s + out.solve_s;
  return out;
}

double skew_slowdown_unbalanced(std::span<const double> rank_factors) {
  HETERO_REQUIRE(!rank_factors.empty(),
                 "skew slowdown needs at least one rank factor");
  double worst = 0.0;
  for (const double f : rank_factors) {
    HETERO_REQUIRE(f > 0.0, "skew slowdown: rank factors must be positive");
    worst = std::max(worst, f);
  }
  return worst;
}

double skew_slowdown_balanced(std::span<const double> rank_factors) {
  HETERO_REQUIRE(!rank_factors.empty(),
                 "skew slowdown needs at least one rank factor");
  double inv_sum = 0.0;
  for (const double f : rank_factors) {
    HETERO_REQUIRE(f > 0.0, "skew slowdown: rank factors must be positive");
    inv_sum += 1.0 / f;
  }
  return static_cast<double>(rank_factors.size()) / inv_sum;
}

}  // namespace hetero::perf
