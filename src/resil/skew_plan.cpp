#include "resil/skew_plan.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace hetero::resil {

namespace {

// Independent streams for the static lottery and the window noise: a seed
// that makes rank 3 a slow core says nothing about its noisy windows.
constexpr std::uint64_t kSlowSalt = 0x736c6f77ULL;       // "slow"
constexpr std::uint64_t kNoiseSalt = 0x6e6f697379ULL;    // "noisy"

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0x736b6577ULL;  // "skew"
  for (const char c : name) {
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<unsigned char>(c)));
  }
  return h;
}

double cell_unit(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                 std::uint64_t b) {
  std::uint64_t h = hash_combine(seed, salt);
  h = hash_combine(h, a);
  h = hash_combine(h, b);
  return hash_unit(h);
}

}  // namespace

SkewPlan::SkewPlan(const SkewSpec& spec, std::uint64_t seed,
                   const std::string& platform)
    : spec_(spec), seed_(hash_combine(seed, hash_name(platform))) {
  HETERO_REQUIRE(
      spec.slow_core_fraction >= 0.0 && spec.slow_core_fraction <= 1.0,
      "skew plan: slow_core_fraction must be in [0, 1]");
  HETERO_REQUIRE(spec.slow_core_factor >= 1.0,
                 "skew plan: slow_core_factor must be >= 1");
  HETERO_REQUIRE(spec.noise_rate >= 0.0 && spec.noise_rate <= 1.0,
                 "skew plan: noise_rate must be in [0, 1]");
  HETERO_REQUIRE(spec.noise_factor >= 1.0,
                 "skew plan: noise_factor must be >= 1");
  HETERO_REQUIRE(spec.window_s > 0.0, "skew plan: window_s must be positive");
}

double SkewPlan::static_factor(int rank) const {
  if (spec_.slow_core_fraction <= 0.0) return 1.0;
  const double u =
      cell_unit(seed_, kSlowSalt, static_cast<std::uint64_t>(rank), 0);
  return u < spec_.slow_core_fraction ? spec_.slow_core_factor : 1.0;
}

double SkewPlan::factor_at(int rank, double t) const {
  double f = static_factor(rank);
  if (spec_.noise_rate > 0.0 && t >= 0.0) {
    const auto window =
        static_cast<std::uint64_t>(std::floor(t / spec_.window_s));
    const double u = cell_unit(seed_, kNoiseSalt,
                               static_cast<std::uint64_t>(rank), window);
    if (u < spec_.noise_rate) {
      f *= spec_.noise_factor;
    }
  }
  return f;
}

double SkewPlan::mean_factor(int rank) const {
  return static_factor(rank) *
         (1.0 + spec_.noise_rate * (spec_.noise_factor - 1.0));
}

}  // namespace hetero::resil
