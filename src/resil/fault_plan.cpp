#include "resil/fault_plan.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"

namespace hetero::resil {

namespace {

// Domain salts keep the per-fault-kind hash streams independent: a seed that
// crashes rank 3 at step 2 says nothing about launch failures or storms.
constexpr std::uint64_t kCrashSalt = 0x6372617368ULL;    // "crash"
constexpr std::uint64_t kLaunchSalt = 0x6c61756e6368ULL; // "launch"
constexpr std::uint64_t kStormSalt = 0x73746f726dULL;    // "storm"
constexpr std::uint64_t kNetSalt = 0x6e6574ULL;          // "net"
// Per-step reclaim storms in direct runs; distinct from the hourly campaign
// stream so campaign-level replays stay byte-identical.
constexpr std::uint64_t kStepStormSalt = 0x737473746f726dULL;  // "ststorm"

double cell_unit(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                 std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = hash_combine(seed, salt);
  h = hash_combine(h, a);
  h = hash_combine(h, b);
  h = hash_combine(h, c);
  return hash_unit(h);
}

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  HETERO_REQUIRE(spec.rank_crash_rate >= 0.0 && spec.rank_crash_rate <= 1.0,
                 "fault plan: rank_crash_rate must be in [0, 1]");
  HETERO_REQUIRE(
      spec.launch_failure_rate >= 0.0 && spec.launch_failure_rate <= 1.0,
      "fault plan: launch_failure_rate must be in [0, 1]");
  HETERO_REQUIRE(
      spec.reclaim_storm_rate >= 0.0 && spec.reclaim_storm_rate <= 1.0,
      "fault plan: reclaim_storm_rate must be in [0, 1]");
  HETERO_REQUIRE(spec.net_degrade_rate >= 0.0 && spec.net_degrade_rate <= 1.0,
                 "fault plan: net_degrade_rate must be in [0, 1]");
  HETERO_REQUIRE(spec.net_degrade_factor >= 1.0,
                 "fault plan: net_degrade_factor must be >= 1");
  HETERO_REQUIRE(spec.net_degrade_window_s > 0.0,
                 "fault plan: net_degrade_window_s must be positive");
}

std::optional<RankCrash> FaultPlan::rank_crash(int ranks, int steps,
                                               int attempt,
                                               int first_step) const {
  if (spec_.rank_crash_rate <= 0.0) return std::nullopt;
  HETERO_REQUIRE(ranks >= 1 && steps >= 0 && attempt >= 0 && first_step >= 0,
                 "fault plan: rank_crash arguments must be non-negative");
  for (int step = first_step; step < steps; ++step) {
    for (int rank = 0; rank < ranks; ++rank) {
      const double u =
          cell_unit(seed_, kCrashSalt, static_cast<std::uint64_t>(attempt),
                    static_cast<std::uint64_t>(step),
                    static_cast<std::uint64_t>(rank));
      if (u < spec_.rank_crash_rate) return RankCrash{rank, step};
    }
  }
  return std::nullopt;
}

bool FaultPlan::launch_fails(int attempt) const {
  if (spec_.launch_failure_rate <= 0.0) return false;
  return cell_unit(seed_, kLaunchSalt, static_cast<std::uint64_t>(attempt), 0,
                   0) < spec_.launch_failure_rate;
}

bool FaultPlan::reclaim_storm(std::int64_t hour) const {
  if (spec_.reclaim_storm_rate <= 0.0 || hour < 0) return false;
  return cell_unit(seed_, kStormSalt, static_cast<std::uint64_t>(hour), 0,
                   0) < spec_.reclaim_storm_rate;
}

std::optional<int> FaultPlan::spot_reclaim(int steps, int attempt,
                                           int first_step) const {
  if (spec_.reclaim_storm_rate <= 0.0) return std::nullopt;
  HETERO_REQUIRE(steps >= 0 && attempt >= 0 && first_step >= 0,
                 "fault plan: spot_reclaim arguments must be non-negative");
  for (int step = first_step; step < steps; ++step) {
    const double u =
        cell_unit(seed_, kStepStormSalt, static_cast<std::uint64_t>(attempt),
                  static_cast<std::uint64_t>(step), 0);
    if (u < spec_.reclaim_storm_rate) return step;
  }
  return std::nullopt;
}

netsim::DegradationSchedule FaultPlan::degradation() const {
  netsim::DegradationSchedule schedule;
  schedule.window_s = spec_.net_degrade_window_s;
  schedule.active_fraction = spec_.net_degrade_rate;
  schedule.factor = spec_.net_degrade_factor;
  schedule.seed = hash_combine(seed_, kNetSalt);
  return schedule;
}

}  // namespace hetero::resil
