#pragma once

/// \file recovery.hpp
/// What to do when an injected fault fires. A RecoveryPolicy on Experiment
/// selects the strategy (give up, restart from scratch, or checkpoint-restart
/// every K steps — optionally on a smaller rank count, which the gid-keyed
/// checkpoint format already supports) and bounds the retries with a capped
/// exponential backoff whose delay is charged to simulated time-to-solution.
/// RecoveryStats is the ledger: how many attempts, how much work was wasted,
/// how much was saved by checkpoints, and what the detours cost in dollars.

#include <string>

#include "support/error.hpp"

namespace hetero::resil {

enum class RecoveryKind {
  kNone,              ///< First fault is fatal; the run reports failure.
  kRestartScratch,    ///< Rerun the whole job from step 0.
  kCheckpointRestart, ///< Checkpoint every K steps; resume from the last one.
};

const char* to_string(RecoveryKind kind);
/// Parses "none" | "scratch" | "ckpt" (CLI spelling); throws hetero::Error.
RecoveryKind recovery_kind_by_name(const std::string& name);

struct RecoveryPolicy {
  RecoveryKind kind = RecoveryKind::kNone;
  /// Checkpoint every K completed steps (kCheckpointRestart only).
  int checkpoint_every = 2;
  /// Total attempts (first try included) before reporting failure.
  int max_attempts = 5;
  /// Retry delay: min(cap, base * factor^retry), charged to simulated time.
  double backoff_base_s = 30.0;
  double backoff_factor = 2.0;
  double backoff_cap_s = 600.0;
  /// After a crash, restart on the next smaller cubic rank count (27 -> 8),
  /// modelling a shrunk assembly after a spot reclaim.
  bool shrink_ranks_on_crash = false;
};

/// Delay before retry number `retry` (zero-based), in simulated seconds.
double backoff_delay_s(const RecoveryPolicy& policy, int retry);

/// Per-experiment resilience ledger, surfaced as `resil.*` metrics.
struct RecoveryStats {
  int attempts = 1;            ///< Direct-run attempts (1 = fault-free).
  int faults_injected = 0;     ///< Rank crashes that fired.
  int launch_retries = 0;      ///< Transient launch failures retried.
  int steps_wasted = 0;        ///< Solver steps whose work was thrown away.
  int steps_recovered = 0;     ///< Steps salvaged from checkpoints.
  int checkpoints_written = 0;
  double retry_delay_s = 0.0;  ///< Backoff charged to time-to-solution.
  double wasted_sim_s = 0.0;   ///< Simulated seconds burnt by dead attempts.
  double wasted_cost_usd = 0.0;///< Dollars burnt by dead attempts.
  bool recovered = false;      ///< At least one fault fired and was survived.
  int final_ranks = 0;         ///< Rank count of the successful attempt.
};

/// Thrown inside a simmpi rank to simulate its host dying. Runtime::run
/// rethrows it on the launching thread after aborting the peers.
class InjectedFault : public Error {
 public:
  InjectedFault(int rank, int step);
  int rank() const { return rank_; }
  int step() const { return step_; }

 protected:
  InjectedFault(const std::string& message, int rank, int step);

 private:
  int rank_;
  int step_;
};

/// A spot-reclaim storm taking the whole allocation at the start of `step`
/// (direct runs on spot-market platforms). rank() is -1: no single host
/// died, the market did — which is how the catch site tells a storm from a
/// rank crash. Runtime::run preserves the concrete type via exception_ptr.
class SpotReclaim : public InjectedFault {
 public:
  explicit SpotReclaim(int step);
};

}  // namespace hetero::resil
