#pragma once

/// \file skew_plan.hpp
/// Seed-deterministic per-rank speed skew. A SkewSpec says *how much*
/// intra-platform heterogeneity exists; a SkewPlan derived from
/// (spec, seed, platform) says exactly *which* ranks are slow and *when*
/// the noisy-neighbor / thermal-throttle windows hit each rank. Every query
/// is a pure hash of (seed, salt, rank [, window]) — no mutable state, no
/// draw order — so the same experiment replays byte-identically at any
/// `--jobs` level, exactly like the fault plans (fault_plan.hpp).
///
/// Two effects compose multiplicatively:
///   * static slow cores: a hashed fraction of ranks runs all compute at
///     `slow_core_factor` x cost (binned CPUs, one slow DIMM, a busy
///     hypervisor host — the secondary attributes the paper's platforms
///     differ in but a per-platform speed cannot express);
///   * time-windowed noise: each (rank, floor(t / window_s)) cell is noisy
///     with probability `noise_rate`, multiplying compute by
///     `noise_factor` inside the window (cloud noisy neighbors, thermal
///     throttling bursts).

#include <cstdint>
#include <string>

namespace hetero::resil {

/// Skew knobs. All default to "off": a default SkewSpec is inert.
struct SkewSpec {
  /// Fraction of ranks that are statically slow (hashed per rank).
  double slow_core_fraction = 0.0;
  /// Compute-cost multiplier of a slow rank (>= 1; 2.0 = half speed).
  double slow_core_factor = 2.0;
  /// Fraction of (rank, window) cells with a noisy neighbor.
  double noise_rate = 0.0;
  /// Compute-cost multiplier inside a noisy window.
  double noise_factor = 1.5;
  /// Width of one noise window in virtual seconds.
  double window_s = 30.0;

  bool enabled() const {
    return (slow_core_fraction > 0.0 && slow_core_factor != 1.0) ||
           (noise_rate > 0.0 && noise_factor != 1.0);
  }
};

class SkewPlan {
 public:
  /// An inert plan: every factor is 1. Lets callers hold a SkewPlan by
  /// value without special-casing "no skew configured".
  SkewPlan() = default;
  /// `platform` is hashed into the stream: the same seed draws different
  /// slow ranks on puma and on ec2, so a migration re-rolls the lottery.
  SkewPlan(const SkewSpec& spec, std::uint64_t seed,
           const std::string& platform = "");

  const SkewSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled(); }

  /// Static compute-cost multiplier of `rank` (1.0 or slow_core_factor).
  double static_factor(int rank) const;

  /// Full multiplier at virtual time `t`: static_factor x window noise.
  double factor_at(int rank, double t) const;

  /// Expected long-run multiplier of `rank`: static_factor x
  /// (1 + noise_rate * (noise_factor - 1)). The modeled-mode analogue of
  /// factor_at — what a long run averages over many windows.
  double mean_factor(int rank) const;

 private:
  SkewSpec spec_;
  std::uint64_t seed_ = 0;
};

}  // namespace hetero::resil
