#include "resil/recovery.hpp"

#include <algorithm>
#include <cmath>

namespace hetero::resil {

const char* to_string(RecoveryKind kind) {
  switch (kind) {
    case RecoveryKind::kNone:
      return "none";
    case RecoveryKind::kRestartScratch:
      return "scratch";
    case RecoveryKind::kCheckpointRestart:
      return "ckpt";
  }
  return "?";
}

RecoveryKind recovery_kind_by_name(const std::string& name) {
  if (name == "none") return RecoveryKind::kNone;
  if (name == "scratch") return RecoveryKind::kRestartScratch;
  if (name == "ckpt") return RecoveryKind::kCheckpointRestart;
  throw Error("unknown recovery policy '" + name +
              "' (expected none|scratch|ckpt)");
}

double backoff_delay_s(const RecoveryPolicy& policy, int retry) {
  HETERO_REQUIRE(retry >= 0, "backoff: retry index must be non-negative");
  const double delay =
      policy.backoff_base_s * std::pow(policy.backoff_factor, retry);
  return std::min(policy.backoff_cap_s, delay);
}

InjectedFault::InjectedFault(int rank, int step)
    : Error("injected fault: rank " + std::to_string(rank) +
            " crashed at step " + std::to_string(step)),
      rank_(rank),
      step_(step) {}

InjectedFault::InjectedFault(const std::string& message, int rank, int step)
    : Error(message), rank_(rank), step_(step) {}

SpotReclaim::SpotReclaim(int step)
    : InjectedFault("spot reclaim: storm took the allocation at step " +
                        std::to_string(step),
                    -1, step) {}

}  // namespace hetero::resil
