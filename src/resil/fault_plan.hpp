#pragma once

/// \file fault_plan.hpp
/// Seed-deterministic fault injection. A FaultSpec says *how often* things
/// break; a FaultPlan derived from (spec, seed) says exactly *which* things
/// break: which (attempt, step, rank) cell crashes in a direct run, which
/// submission attempts hit a transient launch failure, which campaign hours
/// see a spot-reclaim storm, and which virtual-time windows have a degraded
/// network. Every query is a pure hash — no mutable state, no draw order —
/// so results are identical at any `--jobs` level and on every replay of the
/// same seed.

#include <cstdint>
#include <optional>

#include "netsim/degradation.hpp"

namespace hetero::resil {

/// Fault rates. All default to zero: a default FaultSpec injects nothing.
struct FaultSpec {
  /// P(crash) per (attempt, step, rank) cell of a direct-mode run. The run
  /// crashes at the first armed cell in execution (step-major) order.
  double rank_crash_rate = 0.0;
  /// P(transient launch failure) per scheduler submission attempt.
  double launch_failure_rate = 0.0;
  /// P(spot-reclaim storm) per campaign wall-clock hour; a storm reclaims
  /// every spot instance regardless of bid.
  double reclaim_storm_rate = 0.0;
  /// Fraction of virtual-time windows with a degraded network.
  double net_degrade_rate = 0.0;
  /// Communication-cost multiplier inside a degraded window.
  double net_degrade_factor = 3.0;
  /// Width of one degradation window in virtual seconds.
  double net_degrade_window_s = 60.0;

  bool enabled() const {
    return rank_crash_rate > 0.0 || launch_failure_rate > 0.0 ||
           reclaim_storm_rate > 0.0 || net_degrade_rate > 0.0;
  }
};

/// The cell a direct-mode attempt crashes in: `rank` dies at the start of
/// `step` (zero-based, counted over the whole run, not the attempt).
struct RankCrash {
  int rank = 0;
  int step = 0;
};

class FaultPlan {
 public:
  /// An empty plan: injects nothing. Lets callers hold a FaultPlan by value
  /// without special-casing "no faults configured".
  FaultPlan() = default;
  FaultPlan(const FaultSpec& spec, std::uint64_t seed);

  const FaultSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }
  bool enabled() const { return spec_.enabled(); }

  /// First armed cell of `attempt` at or after `first_step`, scanning steps
  /// in execution order and ranks within a step; nullopt = attempt survives.
  /// Restarting from a checkpoint (larger `first_step`) exposes fewer cells,
  /// which is exactly why checkpoint-restart converges faster than scratch.
  std::optional<RankCrash> rank_crash(int ranks, int steps, int attempt,
                                      int first_step = 0) const;

  /// Does submission `attempt` (zero-based) hit a transient launch failure?
  bool launch_fails(int attempt) const;

  /// Does campaign hour `hour` see a spot-reclaim storm?
  bool reclaim_storm(std::int64_t hour) const;

  /// First step of `attempt` at or after `first_step` hit by a spot-reclaim
  /// storm in a *direct* run on a spot-market platform; nullopt = the
  /// attempt runs storm-free. Reuses reclaim_storm_rate as a per-(attempt,
  /// step) probability, on an independent hash stream from the hourly
  /// campaign query — a storm takes the whole allocation, so no rank
  /// coordinate.
  std::optional<int> spot_reclaim(int steps, int attempt,
                                  int first_step = 0) const;

  /// Degradation windows for simmpi/netsim, keyed off this plan's seed.
  netsim::DegradationSchedule degradation() const;

 private:
  FaultSpec spec_;
  std::uint64_t seed_ = 0;
};

}  // namespace hetero::resil
