#pragma once

/// \file server.hpp
/// Transports for the advisory daemon. Two modes, one protocol:
///
///   * pipe mode — `heterolab serve < requests.jsonl > answers.jsonl`:
///     a reader thread admits lines into a bounded queue (blocking the
///     pipe for backpressure, or answering "busy" records in reject
///     mode), worker threads answer through the shared Service, and an
///     ordered emitter writes responses strictly in admission order — so
///     response ids are monotone and a warm re-run is byte-comparable to
///     a cold one.
///   * Unix-domain-socket mode — `heterolab serve --socket PATH`: one
///     thread per connection, all connections sharing the Service (and
///     therefore the engine cache, the persistent memo store, and its
///     in-flight dedup), with a global in-flight cap as admission
///     control. A "shutdown" request stops the accept loop and drains.
///
/// End of input (pipe EOF or a "shutdown" record) always drains the queue
/// before the final "bye" record: graceful drain, never dropped work.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "svc/service.hpp"

namespace hetero::svc {

struct ServeOptions {
  /// Jobs admitted but not yet answered (the bounded queue).
  std::size_t queue_capacity = 1024;
  /// Queue-full policy: false blocks the reader (pipe backpressure; keeps
  /// the response stream deterministic), true answers a "busy" record.
  bool reject_when_full = false;
  /// Worker threads answering queued requests. Each recommendation
  /// already fans out over the engine's pool, so 1 is the deterministic
  /// default; more workers overlap distinct requests and rely on the
  /// store's in-flight dedup for duplicates.
  int workers = 1;
};

struct ServeStats {
  std::uint64_t served = 0;     ///< Job requests answered (decision records).
  std::uint64_t pings = 0;
  std::uint64_t errors = 0;     ///< Malformed lines answered with "error".
  std::uint64_t busy = 0;       ///< Admission rejections (reject mode).
  std::uint64_t throttled = 0;  ///< Budget rejections.
};

/// Runs the line protocol over a stream pair until EOF or a "shutdown"
/// request, drains, emits the final "bye" record, and returns the tallies.
ServeStats serve_pipe(Service& service, std::istream& in, std::ostream& out,
                      const ServeOptions& options = {});

/// Binds a Unix-domain socket at `path` (replacing a stale one) and serves
/// connections until a "shutdown" request arrives; drains and returns the
/// tallies. Each connection speaks the same line protocol as pipe mode.
ServeStats serve_unix_socket(Service& service, const std::string& path,
                             const ServeOptions& options = {});

}  // namespace hetero::svc
