#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "broker/candidates.hpp"
#include "broker/objectives.hpp"
#include "broker/predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rebroker/controller.hpp"
#include "resil/recovery.hpp"
#include "support/error.hpp"
#include "svc/result_codec.hpp"

namespace hetero::svc {

namespace {

/// Request-level cache prefix; experiment results use MemoResultStore's
/// own `exp|` prefix in the same log.
const std::string kRequestPrefix = "req|";

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& payload) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < payload.size()) {
    const std::size_t end = payload.find('\n', start);
    lines.push_back(payload.substr(start, end - start));
    if (end == std::string::npos) {
      break;
    }
    start = end + 1;
  }
  return lines;
}

}  // namespace

Service::Service(ServiceOptions options) : options_(options) {
  store_ = std::make_unique<MemoStore>(options_.store_path);
  experiment_memo_ = std::make_unique<MemoResultStore>(*store_);
  core::CampaignEngineOptions engine_options;
  engine_options.jobs = options_.jobs;
  engine_options.result_store = experiment_memo_.get();
  engine_ = std::make_unique<core::CampaignEngine>(options_.seed,
                                                   engine_options);
  broker_ = std::make_unique<broker::Broker>(*engine_);
}

Service::~Service() = default;

double Service::request_cost(const SvcRequest& request) const {
  // The engine weighs a modeled experiment as 1 simulated thread; a
  // request prices one modeled experiment (or campaign simulation) per
  // candidate, so its weight is the candidate count. Computed from the
  // request alone: warm and cold paths charge identically.
  if (request.kind == SvcRequest::Kind::kRebroker) {
    // A rebroker advisory prices exactly two candidates: stay and move.
    return 2.0;
  }
  return static_cast<double>(
      broker::enumerate_candidates(request.job).size());
}

BudgetVerdict Service::admit(const SvcRequest& request) {
  BudgetVerdict verdict;
  if (options_.budget_capacity <= 0.0) {
    return verdict;
  }
  verdict.need_tokens = request_cost(request);
  std::lock_guard<std::mutex> lock(budget_mutex_);
  auto [it, inserted] =
      budgets_.emplace(request.client, options_.budget_capacity);
  if (!inserted) {
    // Refill on every observed request, throttled ones included: the
    // deterministic stand-in for wall-clock refill. Crediting only
    // admitted requests would permanently starve a client whose request
    // costs more than one refill (the bucket could never grow to
    // `need`); the price is that retries themselves earn tokens, which
    // docs/service.md states explicitly.
    it->second = std::min(options_.budget_capacity,
                          it->second + options_.budget_refill);
  }
  verdict.have_tokens = it->second;
  if (it->second < verdict.need_tokens) {
    verdict.admitted = false;
    obs::metrics().counter("svc.throttled").increment();
    return verdict;
  }
  it->second -= verdict.need_tokens;
  return verdict;
}

std::vector<std::string> Service::answer_rebroker(const SvcRequest& request) {
  const RebrokerQuery& rb = request.rb;
  const int left = rb.steps - rb.done;
  broker::Predictor predictor(*engine_);
  broker::JobRequest job = request.job;
  job.iterations = rb.steps;

  // Stay: the platform the campaign already runs on, at the observed pace.
  broker::Candidate stay_c;
  stay_c.platform = rb.platform;
  stay_c.ranks = request.job.ranks;
  stay_c.cells_per_rank_axis = request.job.cells_per_rank_axis;
  broker::ResumeState stay_rs;
  stay_rs.iterations_total = rb.steps;
  stay_rs.iterations_done = rb.done;
  stay_rs.observed_seconds_per_iteration = rb.observed_s;
  stay_rs.same_platform = true;
  const broker::Prediction stay_p =
      predictor.predict_resumed(stay_c, job, stay_rs);

  // Move: the fallback, from a cold submission.
  const int resolved =
      rb.target_ranks > 0
          ? rb.target_ranks
          : rebroker::largest_cubic_ranks(rb.fallback, request.job.ranks);
  broker::Candidate move_c = stay_c;
  move_c.platform = rb.fallback;
  move_c.ranks = std::max(1, resolved);
  broker::ResumeState move_rs;
  move_rs.iterations_total = rb.steps;
  move_rs.iterations_done = rb.done;
  const broker::Prediction move_p =
      predictor.predict_resumed(move_c, job, move_rs);

  // Both quotes already carry their drift/queue terms, so the verdict sees
  // observed_step_s = 0 (no double scaling) and elapsed = spent = 0: the
  // projections it returns are for the remaining work, from now.
  rebroker::AdviseInputs in;
  in.steps_total = rb.steps;
  in.steps_done = rb.done;
  in.storms_seen = rb.storms;
  in.storm_rate = rb.storms > 0 ? static_cast<double>(rb.storms) /
                                      std::max(1, rb.done)
                                : 0.0;
  in.backoff_expect_s = resil::RecoveryPolicy{}.backoff_base_s;
  in.redo_steps_per_storm = 1;
  in.stay.platform = rb.platform;
  in.stay.ranks = stay_c.ranks;
  in.stay.can_launch = true;
  in.stay.seconds_per_step = stay_p.seconds_per_iteration;
  in.stay.cost_per_step_usd = stay_p.launched ? stay_p.cost_usd / left : 0.0;
  in.move.platform = rb.fallback;
  in.move.ranks = move_c.ranks;
  in.move.can_launch = resolved >= 1 && move_p.launched;
  in.move.seconds_per_step = move_p.seconds_per_iteration;
  in.move.cost_per_step_usd = move_p.launched ? move_p.cost_usd / left : 0.0;
  in.move.queue_wait_s = move_p.queue_wait_s;
  in.hysteresis = rb.hysteresis;
  in.deadline_s = rb.deadline_s;
  in.migrate_budget_usd = rb.migrate_budget_usd;
  const rebroker::Advice advice = rebroker::advise(in);

  RebrokerAnswer answer;
  answer.migrate = advice.migrate;
  answer.target = rb.fallback;
  answer.target_ranks = move_c.ranks;
  answer.stay_finish_s = advice.stay_finish_s;
  answer.move_finish_s = advice.move_finish_s;
  answer.stay_cost_usd = advice.stay_cost_usd;
  answer.move_cost_usd = advice.move_cost_usd;
  answer.reason = advice.reason;
  return render_rebroker(answer);
}

std::vector<std::string> Service::process(const SvcRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  const std::string key =
      kRequestPrefix + request_cache_key(request, options_.seed);
  const std::string payload = store_->fetch_or_compute(key, [&] {
    obs::trace_instant("svc_compute", "svc", 0.0, "candidates",
                       request_cost(request));
    if (request.kind == SvcRequest::Kind::kRebroker) {
      return join_lines(answer_rebroker(request));
    }
    const auto objective = broker::objective_by_name(request.objective);
    const auto recommendation = broker_->recommend(request.job, objective);
    return join_lines(render_response(request, recommendation));
  });
  std::vector<std::string> lines = split_lines(payload);
  for (auto& line : lines) {
    line = finalize_line(line, request.id);
  }
  obs::metrics().counter("svc.requests").increment();
  obs::metrics()
      .histogram("svc.request_latency_s")
      .observe(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
                   .count());
  return lines;
}

std::vector<std::string> Service::process_line(const std::string& line,
                                               bool* is_shutdown) {
  if (is_shutdown != nullptr) {
    *is_shutdown = false;
  }
  SvcRequest request;
  try {
    request = parse_request_line(line);
  } catch (const Error& e) {
    obs::metrics().counter("svc.errors").increment();
    return {render_error(-1, e.what())};
  }
  switch (request.kind) {
    case SvcRequest::Kind::kPing:
      obs::metrics().counter("svc.pings").increment();
      return {render_pong(request.id)};
    case SvcRequest::Kind::kShutdown:
      if (is_shutdown != nullptr) {
        *is_shutdown = true;
      }
      return {};
    case SvcRequest::Kind::kJob:
    case SvcRequest::Kind::kRebroker:
      break;
  }
  const BudgetVerdict verdict = admit(request);
  if (!verdict.admitted) {
    return {render_throttled(request.id, request.client,
                             verdict.need_tokens, verdict.have_tokens)};
  }
  return process(request);
}

}  // namespace hetero::svc
