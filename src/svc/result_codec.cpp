#include "svc/result_codec.hpp"

#include <bit>
#include <cstdint>
#include <cstring>

#include "support/error.hpp"
#include "svc/memo_store.hpp"

namespace hetero::svc {

namespace {

/// Keeps experiment-result entries apart from request payloads in a store
/// log shared with the advisory service.
const std::string kExperimentKeyPrefix = "exp|";

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bool(std::string& out, bool v) {
  out.push_back(v ? '\1' : '\0');
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    HETERO_REQUIRE(pos + n <= bytes.size(),
                   "result codec: truncated payload");
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes[pos + i]);
    }
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  int i32() { return static_cast<int>(i64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    need(1);
    return bytes[pos++] != '\0';
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s = bytes.substr(pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

std::string encode_result(const core::ExperimentResult& r) {
  std::string out;
  out.reserve(256 + r.failure_reason.size());
  out.push_back(static_cast<char>(kResultCodecVersion));
  put_bool(out, r.launched);
  put_string(out, r.failure_reason);
  put_double(out, r.queue_wait_s);
  put_double(out, r.provisioning_hours);
  put_double(out, r.iteration.assembly_s);
  put_double(out, r.iteration.preconditioner_s);
  put_double(out, r.iteration.solve_s);
  put_double(out, r.iteration.total_s);
  put_double(out, r.iteration.solver_iterations);
  put_i64(out, r.hosts);
  put_double(out, r.cost_per_iteration_usd);
  put_double(out, r.est_cost_per_iteration_usd);
  put_i64(out, r.spot_hosts);
  put_i64(out, r.work_per_rank.local_tets);
  put_i64(out, r.work_per_rank.local_rows);
  put_i64(out, r.work_per_rank.local_nonzeros);
  put_i64(out, r.work_per_rank.matrix_entries_assembled);
  put_i64(out, r.work_per_rank.halo_doubles);
  put_i64(out, r.work_per_rank.solver_iterations);
  put_double(out, r.nodal_error);
  put_bool(out, r.solver_converged);
  put_i64(out, r.resil.attempts);
  put_i64(out, r.resil.faults_injected);
  put_i64(out, r.resil.launch_retries);
  put_i64(out, r.resil.steps_wasted);
  put_i64(out, r.resil.steps_recovered);
  put_i64(out, r.resil.checkpoints_written);
  put_double(out, r.resil.retry_delay_s);
  put_double(out, r.resil.wasted_sim_s);
  put_double(out, r.resil.wasted_cost_usd);
  put_bool(out, r.resil.recovered);
  put_i64(out, r.resil.final_ranks);
  put_i64(out, r.rebroker.samples);
  put_i64(out, r.rebroker.decisions);
  put_i64(out, r.rebroker.migrations);
  put_i64(out, r.rebroker.storms);
  put_string(out, r.rebroker.final_platform);
  put_double(out, r.rebroker.migration_wait_s);
  put_double(out, r.rebroker.migration_cost_usd);
  put_u64(out, r.rebroker.trail.size());
  for (const auto& line : r.rebroker.trail) {
    put_string(out, line);
  }
  put_i64(out, r.balance.checks);
  put_i64(out, r.balance.rebalances);
  put_double(out, r.balance.last_imbalance);
  return out;
}

core::ExperimentResult decode_result(const std::string& bytes) {
  Reader in{bytes};
  in.need(1);
  const unsigned char version =
      static_cast<unsigned char>(bytes[in.pos++]);
  HETERO_REQUIRE(version == kResultCodecVersion,
                 "result codec: unsupported version " +
                     std::to_string(version));
  core::ExperimentResult r;
  r.launched = in.boolean();
  r.failure_reason = in.str();
  r.queue_wait_s = in.f64();
  r.provisioning_hours = in.f64();
  r.iteration.assembly_s = in.f64();
  r.iteration.preconditioner_s = in.f64();
  r.iteration.solve_s = in.f64();
  r.iteration.total_s = in.f64();
  r.iteration.solver_iterations = in.f64();
  r.hosts = in.i32();
  r.cost_per_iteration_usd = in.f64();
  r.est_cost_per_iteration_usd = in.f64();
  r.spot_hosts = in.i32();
  r.work_per_rank.local_tets = in.i64();
  r.work_per_rank.local_rows = in.i64();
  r.work_per_rank.local_nonzeros = in.i64();
  r.work_per_rank.matrix_entries_assembled = in.i64();
  r.work_per_rank.halo_doubles = in.i64();
  r.work_per_rank.solver_iterations = in.i32();
  r.nodal_error = in.f64();
  r.solver_converged = in.boolean();
  r.resil.attempts = in.i32();
  r.resil.faults_injected = in.i32();
  r.resil.launch_retries = in.i32();
  r.resil.steps_wasted = in.i32();
  r.resil.steps_recovered = in.i32();
  r.resil.checkpoints_written = in.i32();
  r.resil.retry_delay_s = in.f64();
  r.resil.wasted_sim_s = in.f64();
  r.resil.wasted_cost_usd = in.f64();
  r.resil.recovered = in.boolean();
  r.resil.final_ranks = in.i32();
  r.rebroker.samples = in.i32();
  r.rebroker.decisions = in.i32();
  r.rebroker.migrations = in.i32();
  r.rebroker.storms = in.i32();
  r.rebroker.final_platform = in.str();
  r.rebroker.migration_wait_s = in.f64();
  r.rebroker.migration_cost_usd = in.f64();
  const std::uint64_t trail_lines = in.u64();
  r.rebroker.trail.reserve(trail_lines);
  for (std::uint64_t i = 0; i < trail_lines; ++i) {
    r.rebroker.trail.push_back(in.str());
  }
  r.balance.checks = in.i32();
  r.balance.rebalances = in.i32();
  r.balance.last_imbalance = in.f64();
  HETERO_REQUIRE(in.pos == bytes.size(),
                 "result codec: trailing bytes in payload");
  return r;
}

bool MemoResultStore::load(const std::string& key,
                           core::ExperimentResult& out) {
  std::string bytes;
  if (!store_.lookup(kExperimentKeyPrefix + key, &bytes)) {
    return false;
  }
  out = decode_result(bytes);
  return true;
}

void MemoResultStore::save(const std::string& key,
                           const core::ExperimentResult& result) {
  store_.append(kExperimentKeyPrefix + key, encode_result(result));
}

}  // namespace hetero::svc
