#pragma once

/// \file memo_store.hpp
/// Persistent content-addressed memo store — the heart of the advisory
/// service. The campaign engine's in-memory memoization answers repeats
/// within one process; the MemoStore extends that to an append-only on-disk
/// log so repeated sweeps are incremental *across process restarts*: a
/// daemon killed mid-stream warm-starts from the log and re-answers the
/// replayed requests byte-identically without recomputing anything.
///
/// The on-disk format is `support::RecordLog` (shared with the per-worker
/// result shards of `hetero::proc`): a flat sequence of checksummed records
///
///   [magic u32][key_len u32][value_len u32][checksum u64][key][value]
///
/// (little-endian, checksum over key+value bytes). Crash safety comes from
/// *recovery*, not from per-record fsync: open() replays the log and, on the
/// first damaged record — a torn tail from a kill, a flipped byte — drops
/// that record and everything after it (ftruncate), keeping every intact
/// record before it in service. Writers append whole records under an
/// advisory flock on an O_APPEND fd, so several *processes* sharing one
/// store file each land whole records; the file is fsynced on flush() and
/// close.
///
/// Keys are opaque content addresses (the engine's full descriptor+seed
/// cache key, or the service's request descriptor hash); values are opaque
/// bytes. fetch_or_compute() adds in-flight deduplication across concurrent
/// clients: the first caller of a missing key computes, later callers block
/// on the entry instead of recomputing.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace hetero::support {
class RecordLog;
}  // namespace hetero::support

namespace hetero::svc {

struct MemoStoreStats {
  /// Intact records replayed from the log at open.
  std::uint64_t recovered_records = 0;
  /// Bytes of damaged suffix truncated off the log at open.
  std::uint64_t dropped_bytes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  /// Records appended (new keys committed to the log / index).
  std::uint64_t appends = 0;
  /// fetch_or_compute callers that joined another caller's in-flight
  /// computation instead of starting their own.
  std::uint64_t inflight_joins = 0;
};

class MemoStore {
 public:
  /// Opens (creating if absent) the log at `path` and replays every intact
  /// record into the in-memory index; a damaged suffix is truncated off.
  /// An empty path makes a purely in-memory store (no persistence).
  explicit MemoStore(std::string path);
  /// Flushes and fsyncs the log.
  ~MemoStore();

  MemoStore(const MemoStore&) = delete;
  MemoStore& operator=(const MemoStore&) = delete;

  /// True and fills *value when `key` is present. Thread-safe.
  bool lookup(const std::string& key, std::string* value) const;

  /// Commits (key, value) to the index and appends it to the log. A key
  /// that is already present is left untouched (the log stays
  /// content-addressed: one record per key). Thread-safe.
  void append(const std::string& key, std::string value);

  /// lookup() or compute-once: the first caller of a missing key runs
  /// `compute` (without holding any store lock) and commits the result;
  /// concurrent callers of the same key block until it is ready and share
  /// the value. A compute that throws releases the key so a later caller
  /// can retry; the waiting callers see the exception.
  std::string fetch_or_compute(const std::string& key,
                               const std::function<std::string()>& compute);

  /// Flushes buffered appends to disk and fsyncs. No-op in-memory.
  void flush();

  /// Committed entries (recovered + appended).
  std::size_t size() const;
  MemoStoreStats stats() const;
  const std::string& path() const { return path_; }

 private:
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;       // computation finished (value or error)
    bool failed = false;     // compute threw; key released for retry
    std::string value;
    std::exception_ptr error;
  };

  std::string path_;
  std::unique_ptr<support::RecordLog> log_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> index_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;

  MemoStoreStats stats_;
};

/// Checksum of a record payload: chained splitmix64 over 8-byte chunks of
/// key and value plus their lengths. Exposed for the corruption tests.
std::uint64_t memo_checksum(const std::string& key, const std::string& value);

}  // namespace hetero::svc
