#include "svc/protocol.hpp"

#include <bit>
#include <cmath>

#include "broker/objectives.hpp"
#include "platform/platform_spec.hpp"
#include "support/error.hpp"

namespace hetero::svc {

namespace {

/// Doubles go into the cache key bit-exactly, like the engine's
/// experiment_cache_key: 0.02 and 0.020000001 must never alias.
void append_bits(std::string& key, double v) {
  key += std::to_string(std::bit_cast<std::uint64_t>(v));
  key.push_back('|');
}

void append_opt(std::string& key, const std::optional<double>& v) {
  if (v.has_value()) {
    append_bits(key, *v);
  } else {
    key += "-|";
  }
}

std::int64_t require_int(const obs::Json& v, const std::string& name) {
  HETERO_REQUIRE(v.is_number(), "svc request: '" + name + "' must be a number");
  const double d = v.as_number();
  HETERO_REQUIRE(d == std::floor(d), "svc request: '" + name +
                                         "' must be an integer");
  return static_cast<std::int64_t>(d);
}

double require_number(const obs::Json& v, const std::string& name) {
  HETERO_REQUIRE(v.is_number(), "svc request: '" + name + "' must be a number");
  return v.as_number();
}

bool require_bool(const obs::Json& v, const std::string& name) {
  HETERO_REQUIRE(v.is_bool(), "svc request: '" + name + "' must be a boolean");
  return v.as_bool();
}

const std::string& require_string(const obs::Json& v,
                                  const std::string& name) {
  HETERO_REQUIRE(v.is_string(), "svc request: '" + name + "' must be a string");
  return v.as_string();
}

obs::Json prediction_fields(const broker::Prediction& p) {
  obs::Json j = obs::Json::object();
  j.set("winner", p.candidate.label());
  j.set("ranks", p.candidate.ranks);
  j.set("hosts", p.hosts);
  j.set("seconds_per_iteration", p.seconds_per_iteration);
  j.set("run_s", p.run_s);
  j.set("queue_wait_s", p.queue_wait_s);
  j.set("provisioning_hours", p.provisioning_hours);
  j.set("effective_s", p.effective_s);
  j.set("cost_usd", p.cost_usd);
  j.set("risk_usd", p.risk_usd);
  return j;
}

/// Every response line starts with the same stamp; the id slot holds the
/// substitution token for cacheable records or the final number otherwise.
obs::Json stamp(const char* type) {
  obs::Json j = obs::Json::object();
  j.set("schema", kSvcSchema);
  j.set("type", type);
  j.set("id", "@ID@");
  return j;
}

obs::Json stamp_final(const char* type, std::int64_t id) {
  obs::Json j = obs::Json::object();
  j.set("schema", kSvcSchema);
  j.set("type", type);
  if (id < 0) {
    j.set("id", nullptr);
  } else {
    j.set("id", id);
  }
  return j;
}

}  // namespace

SvcRequest parse_request(const obs::Json& record) {
  HETERO_REQUIRE(record.is_object(), "svc request: record must be an object");
  SvcRequest req;
  bool saw_id = false;
  for (const auto& [key, value] : record.as_object()) {
    if (key == "schema") {
      HETERO_REQUIRE(require_string(value, key) == kSvcSchema,
                     "svc request: schema must be '" +
                         std::string(kSvcSchema) + "'");
    } else if (key == "type") {
      const std::string& type = require_string(value, key);
      if (type == "request") {
        req.kind = SvcRequest::Kind::kJob;
      } else if (type == "ping") {
        req.kind = SvcRequest::Kind::kPing;
      } else if (type == "shutdown") {
        req.kind = SvcRequest::Kind::kShutdown;
      } else if (type == "rebroker") {
        req.kind = SvcRequest::Kind::kRebroker;
      } else {
        HETERO_REQUIRE(false, "svc request: unknown type '" + type + "'");
      }
    } else if (key == "id") {
      req.id = require_int(value, key);
      HETERO_REQUIRE(req.id >= 0, "svc request: id must be >= 0");
      saw_id = true;
    } else if (key == "client") {
      req.client = require_string(value, key);
      HETERO_REQUIRE(!req.client.empty(),
                     "svc request: client must be non-empty");
    } else if (key == "app") {
      const std::string& app = require_string(value, key);
      HETERO_REQUIRE(app == "rd" || app == "ns",
                     "svc request: app must be 'rd' or 'ns'");
      req.job.app = app == "ns" ? perf::AppKind::kNavierStokes
                                : perf::AppKind::kReactionDiffusion;
    } else if (key == "elements") {
      req.job.total_elements = require_int(value, key);
    } else if (key == "ranks") {
      req.job.ranks = static_cast<int>(require_int(value, key));
    } else if (key == "cells") {
      req.job.cells_per_rank_axis = static_cast<int>(require_int(value, key));
    } else if (key == "iterations") {
      req.job.iterations = static_cast<int>(require_int(value, key));
    } else if (key == "deadline_h") {
      req.job.deadline_h = require_number(value, key);
    } else if (key == "budget_usd") {
      req.job.budget_usd = require_number(value, key);
    } else if (key == "risk") {
      req.job.risk_tolerance = require_number(value, key);
    } else if (key == "risk_budget_usd") {
      req.job.risk_budget_usd = require_number(value, key);
    } else if (key == "ported") {
      req.job.include_provisioning = !require_bool(value, key);
    } else if (key == "objective") {
      req.objective = require_string(value, key);
    } else if (key == "frontier") {
      req.want_frontier = require_bool(value, key);
    } else if (key == "top") {
      req.top = static_cast<int>(require_int(value, key));
      HETERO_REQUIRE(req.top >= 0, "svc request: top must be >= 0");
    } else if (key == "platform") {
      req.rb.platform = require_string(value, key);
    } else if (key == "fallback") {
      req.rb.fallback = require_string(value, key);
    } else if (key == "steps") {
      req.rb.steps = static_cast<int>(require_int(value, key));
    } else if (key == "done") {
      req.rb.done = static_cast<int>(require_int(value, key));
    } else if (key == "observed_s") {
      req.rb.observed_s = require_number(value, key);
      HETERO_REQUIRE(req.rb.observed_s >= 0.0,
                     "svc request: observed_s must be >= 0");
    } else if (key == "storms") {
      req.rb.storms = static_cast<int>(require_int(value, key));
      HETERO_REQUIRE(req.rb.storms >= 0,
                     "svc request: storms must be >= 0");
    } else if (key == "hysteresis") {
      req.rb.hysteresis = require_number(value, key);
      HETERO_REQUIRE(req.rb.hysteresis >= 0.0,
                     "svc request: hysteresis must be >= 0");
    } else if (key == "deadline_s") {
      req.rb.deadline_s = require_number(value, key);
      HETERO_REQUIRE(req.rb.deadline_s >= 0.0,
                     "svc request: deadline_s must be >= 0");
    } else if (key == "migrate_budget_usd") {
      req.rb.migrate_budget_usd = require_number(value, key);
      HETERO_REQUIRE(req.rb.migrate_budget_usd >= 0.0,
                     "svc request: migrate_budget_usd must be >= 0");
    } else if (key == "target_ranks") {
      req.rb.target_ranks = static_cast<int>(require_int(value, key));
      HETERO_REQUIRE(req.rb.target_ranks >= 0,
                     "svc request: target_ranks must be >= 0");
    } else {
      // Strict like the CLI's unknown-flag rejection: a typo must fail
      // loudly, not silently fall back to a default.
      HETERO_REQUIRE(false, "svc request: unknown key '" + key + "'");
    }
  }
  HETERO_REQUIRE(saw_id, "svc request: missing required key 'id'");
  if (req.kind == SvcRequest::Kind::kJob) {
    // Validates the objective name at admission time so a bad request is
    // answered with an error record, never a worker-side exception.
    broker::objective_by_name(req.objective);
  }
  if (req.kind == SvcRequest::Kind::kRebroker) {
    HETERO_REQUIRE(req.rb.steps >= 1,
                   "svc request: rebroker needs steps >= 1");
    HETERO_REQUIRE(req.rb.done >= 0 && req.rb.done < req.rb.steps,
                   "svc request: rebroker needs 0 <= done < steps");
    HETERO_REQUIRE(req.job.ranks >= 1,
                   "svc request: rebroker needs ranks >= 1");
    // Unknown platform names become error records at admission time, never
    // a worker-side exception.
    platform::platform_by_name(req.rb.platform);
    platform::platform_by_name(req.rb.fallback);
  }
  return req;
}

SvcRequest parse_request_line(const std::string& line) {
  return parse_request(obs::Json::parse(line));
}

std::string request_cache_key(const SvcRequest& request, std::uint64_t seed) {
  std::string key;
  key.reserve(128);
  key += "req-v1|";
  if (request.kind == SvcRequest::Kind::kRebroker) {
    // Own sub-namespace: job-request keys stay byte-for-byte what they
    // were, so existing memo stores keep warm-starting.
    key += "rb|";
    key += std::to_string(static_cast<int>(request.job.app));
    key.push_back('|');
    key += std::to_string(request.job.ranks);
    key.push_back('|');
    key += std::to_string(request.job.cells_per_rank_axis);
    key.push_back('|');
    key += request.rb.platform;
    key.push_back('|');
    key += request.rb.fallback;
    key.push_back('|');
    key += std::to_string(request.rb.steps);
    key.push_back('|');
    key += std::to_string(request.rb.done);
    key.push_back('|');
    append_bits(key, request.rb.observed_s);
    key += std::to_string(request.rb.storms);
    key.push_back('|');
    append_bits(key, request.rb.hysteresis);
    append_bits(key, request.rb.deadline_s);
    append_bits(key, request.rb.migrate_budget_usd);
    key += std::to_string(request.rb.target_ranks);
    key.push_back('|');
    key += std::to_string(seed);
    return key;
  }
  key += std::to_string(static_cast<int>(request.job.app));
  key.push_back('|');
  key += std::to_string(request.job.total_elements);
  key.push_back('|');
  key += std::to_string(request.job.ranks);
  key.push_back('|');
  key += std::to_string(request.job.cells_per_rank_axis);
  key.push_back('|');
  key += std::to_string(request.job.iterations);
  key.push_back('|');
  append_opt(key, request.job.deadline_h);
  append_opt(key, request.job.budget_usd);
  append_bits(key, request.job.risk_tolerance);
  append_opt(key, request.job.risk_budget_usd);
  key += request.job.include_provisioning ? "1|" : "0|";
  key += request.objective;
  key.push_back('|');
  key += request.want_frontier ? "1|" : "0|";
  key += std::to_string(request.top);
  key.push_back('|');
  key += std::to_string(seed);
  return key;
}

std::vector<std::string> render_response(
    const SvcRequest& request, const broker::Recommendation& rec) {
  std::vector<std::string> lines;
  obs::Json decision = stamp("decision");
  decision.set("ok", rec.has_winner());
  decision.set("objective", rec.objective_name);
  decision.set("candidates",
               static_cast<std::uint64_t>(rec.ranked.size() +
                                          rec.rejected.size()));
  decision.set("feasible", static_cast<std::uint64_t>(rec.ranked.size()));
  decision.set("rejected", static_cast<std::uint64_t>(rec.rejected.size()));
  decision.set("frontier", static_cast<std::uint64_t>(rec.frontier.size()));
  if (rec.has_winner()) {
    const auto& best = rec.ranked.front();
    const obs::Json fields = prediction_fields(best.prediction);
    for (const auto& [k, v] : fields.as_object()) {
      decision.set(k, v);
    }
    decision.set("score", best.score);
  } else {
    decision.set("reason",
                 rec.rejected.empty()
                     ? "no deployment candidate fits this problem"
                     : "no candidate satisfies the constraints");
  }
  lines.push_back(decision.dump());

  const std::size_t alternates =
      request.top > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(request.top),
                                  rec.ranked.size())
          : 0;
  for (std::size_t i = 1; i < alternates; ++i) {
    const auto& rc = rec.ranked[i];
    obs::Json ranked = stamp("ranked");
    ranked.set("seq", static_cast<std::uint64_t>(i));
    ranked.set("candidate", rc.prediction.candidate.label());
    ranked.set("effective_s", rc.prediction.effective_s);
    ranked.set("cost_usd", rc.prediction.cost_usd);
    ranked.set("score", rc.score);
    lines.push_back(ranked.dump());
  }

  if (request.want_frontier) {
    std::size_t seq = 0;
    for (const auto& point : rec.frontier) {
      obs::Json frontier = stamp("frontier");
      frontier.set("seq", static_cast<std::uint64_t>(seq++));
      frontier.set("candidate",
                   rec.ranked[point.index].prediction.candidate.label());
      frontier.set("time_s", point.time_s);
      frontier.set("cost_usd", point.cost_usd);
      lines.push_back(frontier.dump());
    }
  }
  return lines;
}

std::vector<std::string> render_rebroker(const RebrokerAnswer& answer) {
  obs::Json j = stamp("rebroker");
  j.set("action", answer.migrate ? "migrate" : "stay");
  j.set("target", answer.target);
  j.set("target_ranks", answer.target_ranks);
  j.set("stay_finish_s", answer.stay_finish_s);
  j.set("move_finish_s", answer.move_finish_s);
  j.set("stay_cost_usd", answer.stay_cost_usd);
  j.set("move_cost_usd", answer.move_cost_usd);
  j.set("reason", answer.reason);
  return {j.dump()};
}

std::string finalize_line(const std::string& line, std::int64_t id) {
  const std::size_t pos = line.find(kIdToken);
  HETERO_REQUIRE(pos != std::string::npos,
                 "svc response: rendered line carries no id token");
  std::string out = line;
  out.replace(pos, std::string(kIdToken).size(), std::to_string(id));
  return out;
}

std::string render_error(std::int64_t id, const std::string& reason) {
  obs::Json j = stamp_final("error", id);
  j.set("reason", reason);
  return j.dump();
}

std::string render_busy(std::int64_t id, std::size_t queue_depth) {
  obs::Json j = stamp_final("busy", id);
  j.set("queue_depth", static_cast<std::uint64_t>(queue_depth));
  return j.dump();
}

std::string render_throttled(std::int64_t id, const std::string& client,
                             double need_tokens, double have_tokens) {
  obs::Json j = stamp_final("throttled", id);
  j.set("client", client);
  j.set("reason", "client budget exhausted");
  j.set("need_tokens", need_tokens);
  j.set("have_tokens", have_tokens);
  return j.dump();
}

std::string render_pong(std::int64_t id) {
  return stamp_final("pong", id).dump();
}

std::string render_bye(std::uint64_t served) {
  obs::Json j = obs::Json::object();
  j.set("schema", kSvcSchema);
  j.set("type", "bye");
  j.set("served", served);
  return j.dump();
}

}  // namespace hetero::svc
