#pragma once

/// \file result_codec.hpp
/// Bit-exact binary codec for core::ExperimentResult — the value format of
/// the experiment-level entries in the persistent memo store. Doubles are
/// stored as their IEEE-754 bit patterns (little-endian), so a result
/// replayed from disk is indistinguishable from the freshly computed one
/// and every downstream number (predictions, response records) stays
/// byte-identical across a daemon restart.

#include <string>

#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"

namespace hetero::svc {

class MemoStore;

/// Version tag of the encoding below; bumped on layout changes so a store
/// written by an older build is simply missed, never misread.
/// v2 appended the rebroker::Outcome block (online re-brokering ledger).
/// v3 appended the lb::BalanceOutcome block (load-balancing ledger) — the
/// multi-process campaign backend ships whole results through this codec,
/// so every ledger the CLI summarises must survive the round trip.
inline constexpr unsigned char kResultCodecVersion = 3;

std::string encode_result(const core::ExperimentResult& result);

/// Throws hetero::Error on a malformed or version-mismatched payload.
core::ExperimentResult decode_result(const std::string& bytes);

/// Adapts a MemoStore onto the engine's persistence hook: experiment
/// results ride the checksummed log under the `exp|` key prefix, encoded
/// bit-exactly by the result codec. Used by the advisory daemon and by the
/// CLI's `--store` flag (incremental campaign restarts).
class MemoResultStore final : public core::ExperimentResultStore {
 public:
  explicit MemoResultStore(MemoStore& store) : store_(store) {}

  bool load(const std::string& key, core::ExperimentResult& out) override;
  void save(const std::string& key,
            const core::ExperimentResult& result) override;

 private:
  MemoStore& store_;
};

}  // namespace hetero::svc
