#pragma once

/// \file result_codec.hpp
/// Bit-exact binary codec for core::ExperimentResult — the value format of
/// the experiment-level entries in the persistent memo store. Doubles are
/// stored as their IEEE-754 bit patterns (little-endian), so a result
/// replayed from disk is indistinguishable from the freshly computed one
/// and every downstream number (predictions, response records) stays
/// byte-identical across a daemon restart.

#include <string>

#include "core/experiment.hpp"

namespace hetero::svc {

/// Version tag of the encoding below; bumped on layout changes so a store
/// written by an older build is simply missed, never misread.
/// v2 appended the rebroker::Outcome block (online re-brokering ledger).
inline constexpr unsigned char kResultCodecVersion = 2;

std::string encode_result(const core::ExperimentResult& result);

/// Throws hetero::Error on a malformed or version-mismatched payload.
core::ExperimentResult decode_result(const std::string& bytes);

}  // namespace hetero::svc
