#pragma once

/// \file service.hpp
/// The advisory service core, transport-independent: one Service owns the
/// persistent memo store, a store-backed CampaignEngine, and the broker
/// pipeline, and turns parsed requests into rendered response lines.
///
/// Caching is two-level and content-addressed, both levels in one
/// MemoStore log:
///   * "req|..." entries memoize whole response payloads keyed on the full
///     request descriptor + seed — a repeated request is answered without
///     touching the broker at all (the warm path the throughput bench
///     gates at >= 5x);
///   * "exp|..." entries are the campaign engine's memoization spilled to
///     disk via core::ExperimentResultStore — a *new* request after a
///     restart still warm-starts from every experiment any earlier request
///     priced (incremental sweeps).
///
/// Admission control (the bounded queue) lives in the transport layer
/// (server.hpp); the Service supplies the deterministic per-client
/// token-bucket budget check, priced in the engine's own simulated-thread
/// units: a modeled candidate prediction weighs 1, so one request costs
/// its candidate count. Buckets refill once per job request *observed*
/// from that client (throttled attempts included) — never per wall-clock
/// second — so budget verdicts replay identically across runs and a
/// throttled client always recovers after finitely many retries.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/broker.hpp"
#include "core/campaign_engine.hpp"
#include "svc/memo_store.hpp"
#include "svc/result_codec.hpp"
#include "svc/protocol.hpp"

namespace hetero::svc {

struct ServiceOptions {
  std::uint64_t seed = 42;
  /// Engine pool width for one recommendation (0 = --jobs resolution).
  int jobs = 1;
  /// Memo-store log path; empty = in-memory caching only (no warm start).
  std::string store_path;
  /// Token-bucket capacity per client, in simulated-thread units
  /// (candidate predictions). 0 = budgets disabled.
  double budget_capacity = 0.0;
  /// Tokens credited to a client's bucket per job request observed from
  /// that client, throttled attempts included (deterministic refill; no
  /// wall-clock involved).
  double budget_refill = 0.0;
};

struct BudgetVerdict {
  bool admitted = true;
  double need_tokens = 0.0;
  double have_tokens = 0.0;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission-side cost of a job request in simulated-thread units: the
  /// number of deployment candidates the broker will price. Deterministic
  /// in the request alone (warm and cold runs charge the same).
  double request_cost(const SvcRequest& request) const;

  /// Token-bucket check-and-charge for one job request. Call exactly once
  /// per request, in admission order, before process(). Thread-safe.
  BudgetVerdict admit(const SvcRequest& request);

  /// Answers one job request: serves the rendered payload from the
  /// request-level memo (computing and persisting it on a miss, with
  /// in-flight dedup across concurrent callers) and finalizes the id.
  /// Thread-safe.
  std::vector<std::string> process(const SvcRequest& request);

  /// Convenience one-shot path (batch mode, tests): parse + admit +
  /// process one raw input line; malformed lines become error records and
  /// pings become pongs. `is_shutdown`, when non-null, reports a shutdown
  /// request (the line itself produces no output).
  std::vector<std::string> process_line(const std::string& line,
                                        bool* is_shutdown = nullptr);

  MemoStore& store() { return *store_; }
  const core::CampaignEngine& engine() const { return *engine_; }
  std::uint64_t seed() const { return options_.seed; }

 private:

  /// Computes the rebroker advisory payload (cold path of process()).
  std::vector<std::string> answer_rebroker(const SvcRequest& request);

  ServiceOptions options_;
  std::unique_ptr<MemoStore> store_;
  std::unique_ptr<MemoResultStore> experiment_memo_;
  std::unique_ptr<core::CampaignEngine> engine_;
  std::unique_ptr<broker::Broker> broker_;

  std::mutex budget_mutex_;
  std::unordered_map<std::string, double> budgets_;
};

}  // namespace hetero::svc
