#pragma once

/// \file protocol.hpp
/// The `heterolab-svc-v1` wire protocol: line-delimited JSON, one record
/// per line, in both directions. A client streams request records
///
///   {"schema":"heterolab-svc-v1","type":"request","id":1,"app":"rd",
///    "elements":1000000,"iterations":100,"deadline_h":24,"budget_usd":50,
///    "objective":"effective"}
///
/// and receives, per request, one "decision" record (the winner and its
/// prediction, or an explained infeasibility) followed by one "frontier"
/// record per point of the time/cost Pareto frontier — the response payload
/// "Seeing Shapes in Clouds" argues for: the whole trade-off curve, not
/// just a pick. Admission control and budgets answer with "busy" /
/// "throttled" records; malformed lines with "error"; "ping" with "pong";
/// end of stream (or a "shutdown" request) with a final "bye" record after
/// the queue drains. Response ids are monotone in request order
/// (tools/check_bench.py --schema svc validates exactly this contract).
///
/// The same parser backs the one-shot batch path (`heterolab broker
/// --requests FILE.jsonl`), so the daemon and the CLI share one request
/// schema. Full reference: docs/service.md.

#include <cstdint>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "broker/job_request.hpp"
#include "obs/json.hpp"

namespace hetero::svc {

/// Version tag stamped on (and required of) every record.
inline constexpr const char* kSvcSchema = "heterolab-svc-v1";

/// Placeholder the response renderer emits in place of the numeric id.
/// Rendered payloads are id-independent — that is what makes them
/// content-addressable in the memo store; finalize_line() substitutes the
/// real id at emission time.
inline constexpr const char* kIdToken = "\"@ID@\"";

/// A `rebroker` advisory: where does a partially completed campaign stand,
/// and should it migrate? The daemon re-prices the remaining steps on the
/// current platform (at the observed pace) and on the fallback, and answers
/// with one "rebroker" record carrying the stay/move projections and the
/// hysteresis verdict — the same advise() kernel the in-process control
/// loop runs (docs/rebrokering.md).
struct RebrokerQuery {
  std::string platform = "ec2";  ///< where the campaign runs now
  std::string fallback = "puma"; ///< migration target to price
  int steps = 0;                 ///< total steps of the campaign
  int done = 0;                  ///< completed steps
  double observed_s = 0.0;       ///< live smoothed seconds per step (0 = model)
  int storms = 0;                ///< reclaim storms endured so far
  double hysteresis = 0.15;
  double deadline_s = 0.0;           ///< 0 = none
  double migrate_budget_usd = 0.0;   ///< 0 = unlimited
  int target_ranks = 0;              ///< 0 = auto (largest feasible cube)
};

struct SvcRequest {
  enum class Kind { kJob, kPing, kShutdown, kRebroker };
  Kind kind = Kind::kJob;
  /// Client-chosen correlation id; echoed on every response record.
  std::int64_t id = 0;
  /// Budget-accounting principal; requests without one share "anon".
  std::string client = "anon";

  broker::JobRequest job;
  std::string objective = "effective";
  /// Emit the frontier records (the decision record always counts them).
  bool want_frontier = true;

  /// Alternatives after the winner included in the decision record.
  int top = 0;

  /// kRebroker only: the mid-campaign state to re-price.
  RebrokerQuery rb;
};

/// Parses one request record. Strict: unknown keys, a missing/negative id,
/// a wrong schema tag, or an unknown objective all throw hetero::Error.
SvcRequest parse_request(const obs::Json& record);
SvcRequest parse_request_line(const std::string& line);

/// Canonical content address of a job request: every field that influences
/// the answer plus the engine seed, doubles encoded bit-exactly. Two
/// requests with the same key get byte-identical response payloads.
std::string request_cache_key(const SvcRequest& request, std::uint64_t seed);

/// Renders the response payload for a job request — one decision line plus
/// frontier lines — with kIdToken in place of the id (cacheable).
std::vector<std::string> render_response(const SvcRequest& request,
                                         const broker::Recommendation& rec);

/// The daemon's answer to a rebroker advisory (one "rebroker" record).
struct RebrokerAnswer {
  bool migrate = false;
  std::string target;
  int target_ranks = 0;
  double stay_finish_s = 0.0;
  double move_finish_s = 0.0;
  double stay_cost_usd = 0.0;
  double move_cost_usd = 0.0;
  std::string reason;
};

/// Renders the rebroker advisory record with kIdToken in place of the id
/// (cacheable through the same request-level memo as job decisions).
std::vector<std::string> render_rebroker(const RebrokerAnswer& answer);

/// Substitutes the numeric id for kIdToken in a rendered line.
std::string finalize_line(const std::string& line, std::int64_t id);

/// Non-cacheable records, rendered with their final id directly.
/// `id` < 0 serializes as null (a line too malformed to carry an id).
std::string render_error(std::int64_t id, const std::string& reason);
std::string render_busy(std::int64_t id, std::size_t queue_depth);
std::string render_throttled(std::int64_t id, const std::string& client,
                             double need_tokens, double have_tokens);
std::string render_pong(std::int64_t id);
std::string render_bye(std::uint64_t served);

}  // namespace hetero::svc
