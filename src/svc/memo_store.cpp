#include "svc/memo_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace hetero::svc {

namespace {

constexpr std::uint32_t kMagic = 0x484D5331;  // "HMS1"
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t checksum_bytes(std::uint64_t h, const std::string& bytes) {
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, bytes.data() + i, 8);
    h = hash_combine(h, chunk);
  }
  std::uint64_t tail = 0;
  for (std::size_t j = i; j < bytes.size(); ++j) {
    tail = (tail << 8) | static_cast<unsigned char>(bytes[j]);
  }
  return hash_combine(h, tail);
}

}  // namespace

std::uint64_t memo_checksum(const std::string& key, const std::string& value) {
  std::uint64_t h = hash_combine(key.size(), value.size());
  h = checksum_bytes(h, key);
  return checksum_bytes(h, value);
}

MemoStore::MemoStore(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    return;
  }
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  HETERO_REQUIRE(fd_ >= 0, "MemoStore: cannot open log file: " + path_);
  recover();
}

MemoStore::~MemoStore() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void MemoStore::recover() {
  // Read the whole log, replay intact records, and truncate the first
  // damaged one (plus everything after it) off the file.
  std::string data;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      HETERO_REQUIRE(n >= 0, "MemoStore: cannot read log file: " + path_);
      if (n == 0) {
        break;
      }
      data.append(buf, static_cast<std::size_t>(n));
    }
  }
  std::size_t good = 0;
  while (good + kHeaderBytes <= data.size()) {
    const char* p = data.data() + good;
    if (get_u32(p) != kMagic) {
      break;
    }
    const std::uint32_t key_len = get_u32(p + 4);
    const std::uint32_t value_len = get_u32(p + 8);
    const std::uint64_t checksum = get_u64(p + 12);
    const std::size_t total =
        kHeaderBytes + static_cast<std::size_t>(key_len) + value_len;
    if (good + total > data.size()) {
      break;  // torn tail: the record was cut off mid-write
    }
    std::string key(data, good + kHeaderBytes, key_len);
    std::string value(data, good + kHeaderBytes + key_len, value_len);
    if (memo_checksum(key, value) != checksum) {
      break;  // flipped bytes anywhere in the record
    }
    index_.insert_or_assign(std::move(key), std::move(value));
    good += total;
    ++stats_.recovered_records;
  }
  if (good < data.size()) {
    stats_.dropped_bytes = data.size() - good;
    HETERO_REQUIRE(::ftruncate(fd_, static_cast<off_t>(good)) == 0,
                   "MemoStore: cannot truncate damaged log tail: " + path_);
    obs::metrics().counter("svc.memo.dropped_bytes")
        .add(static_cast<double>(stats_.dropped_bytes));
  }
  HETERO_REQUIRE(::lseek(fd_, 0, SEEK_END) >= 0,
                 "MemoStore: cannot seek log file: " + path_);
}

bool MemoStore::lookup(const std::string& key, std::string* value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& stats = const_cast<MemoStoreStats&>(stats_);
  ++stats.lookups;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  ++stats.hits;
  if (value != nullptr) {
    *value = it->second;
  }
  return true;
}

void MemoStore::append_record_locked(const std::string& key,
                                     const std::string& value) {
  if (fd_ < 0) {
    return;
  }
  std::string record;
  record.reserve(kHeaderBytes + key.size() + value.size());
  put_u32(record, kMagic);
  put_u32(record, static_cast<std::uint32_t>(key.size()));
  put_u32(record, static_cast<std::uint32_t>(value.size()));
  put_u64(record, memo_checksum(key, value));
  record += key;
  record += value;
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n = ::write(fd_, record.data() + written,
                              record.size() - written);
    HETERO_REQUIRE(n > 0, "MemoStore: cannot append to log file: " + path_);
    written += static_cast<std::size_t>(n);
  }
}

void MemoStore::append(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) {
    return;
  }
  append_record_locked(key, value);
  index_.emplace(key, std::move(value));
  ++stats_.appends;
  obs::metrics().counter("svc.memo.appends").increment();
}

std::string MemoStore::fetch_or_compute(
    const std::string& key, const std::function<std::string()>& compute) {
  std::shared_ptr<InFlight> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      obs::metrics().counter("svc.memo.hits").increment();
      return it->second;
    }
    const auto in = inflight_.find(key);
    if (in == inflight_.end()) {
      entry = std::make_shared<InFlight>();
      inflight_.emplace(key, entry);
      owner = true;
    } else {
      entry = in->second;
      ++stats_.inflight_joins;
    }
  }
  if (!owner) {
    obs::metrics().counter("svc.memo.inflight_joins").increment();
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->done; });
    if (entry->error != nullptr) {
      std::rethrow_exception(entry->error);
    }
    return entry->value;
  }
  obs::metrics().counter("svc.memo.misses").increment();
  std::string value;
  std::exception_ptr error;
  try {
    value = compute();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error == nullptr && index_.find(key) == index_.end()) {
      append_record_locked(key, value);
      index_.emplace(key, value);
      ++stats_.appends;
      obs::metrics().counter("svc.memo.appends").increment();
    }
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->done = true;
    entry->failed = error != nullptr;
    entry->value = value;
    entry->error = error;
  }
  entry->cv.notify_all();
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
  return value;
}

void MemoStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    HETERO_REQUIRE(::fsync(fd_) == 0,
                   "MemoStore: cannot fsync log file: " + path_);
  }
}

std::size_t MemoStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

MemoStoreStats MemoStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hetero::svc
