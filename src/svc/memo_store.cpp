#include "svc/memo_store.hpp"

#include "obs/metrics.hpp"
#include "support/record_log.hpp"

namespace hetero::svc {

std::uint64_t memo_checksum(const std::string& key, const std::string& value) {
  return support::record_checksum(key, value);
}

MemoStore::MemoStore(std::string path)
    : path_(std::move(path)),
      log_(std::make_unique<support::RecordLog>(path_)) {
  const support::RecordLogStats recovery =
      log_->recover([this](std::string key, std::string value) {
        index_.insert_or_assign(std::move(key), std::move(value));
      });
  // Concurrent appenders may re-log a key another process already holds;
  // insert_or_assign keeps the last occurrence, so duplicates are harmless.
  stats_.recovered_records = recovery.recovered_records;
  stats_.dropped_bytes = recovery.dropped_bytes;
  if (recovery.dropped_bytes > 0) {
    obs::metrics().counter("svc.memo.dropped_bytes")
        .add(static_cast<double>(recovery.dropped_bytes));
  }
}

MemoStore::~MemoStore() = default;

bool MemoStore::lookup(const std::string& key, std::string* value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& stats = const_cast<MemoStoreStats&>(stats_);
  ++stats.lookups;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  ++stats.hits;
  if (value != nullptr) {
    *value = it->second;
  }
  return true;
}

void MemoStore::append(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) {
    return;
  }
  log_->append(key, value);
  index_.emplace(key, std::move(value));
  ++stats_.appends;
  obs::metrics().counter("svc.memo.appends").increment();
}

std::string MemoStore::fetch_or_compute(
    const std::string& key, const std::function<std::string()>& compute) {
  std::shared_ptr<InFlight> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      obs::metrics().counter("svc.memo.hits").increment();
      return it->second;
    }
    const auto in = inflight_.find(key);
    if (in == inflight_.end()) {
      entry = std::make_shared<InFlight>();
      inflight_.emplace(key, entry);
      owner = true;
    } else {
      entry = in->second;
      ++stats_.inflight_joins;
    }
  }
  if (!owner) {
    obs::metrics().counter("svc.memo.inflight_joins").increment();
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->cv.wait(lock, [&] { return entry->done; });
    if (entry->error != nullptr) {
      std::rethrow_exception(entry->error);
    }
    return entry->value;
  }
  obs::metrics().counter("svc.memo.misses").increment();
  std::string value;
  std::exception_ptr error;
  try {
    value = compute();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error == nullptr && index_.find(key) == index_.end()) {
      log_->append(key, value);
      index_.emplace(key, value);
      ++stats_.appends;
      obs::metrics().counter("svc.memo.appends").increment();
    }
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->done = true;
    entry->failed = error != nullptr;
    entry->value = value;
    entry->error = error;
  }
  entry->cv.notify_all();
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
  return value;
}

void MemoStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  log_->flush();
}

std::size_t MemoStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

MemoStoreStats MemoStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hetero::svc
