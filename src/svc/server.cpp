#include "svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace hetero::svc {

namespace {

/// Responses leave in admission order no matter which worker finishes
/// first: emit(seq, ...) buffers out-of-order payloads and flushes the
/// contiguous prefix. Every admitted seq must be emitted exactly once
/// (an empty payload releases the slot).
class OrderedEmitter {
 public:
  explicit OrderedEmitter(std::ostream& out) : out_(out) {}

  void emit(std::uint64_t seq, std::vector<std::string> lines) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace(seq, std::move(lines));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      for (const auto& line : pending_.begin()->second) {
        out_ << line << '\n';
      }
      pending_.erase(pending_.begin());
      ++next_;
    }
    out_.flush();
  }

 private:
  std::ostream& out_;
  std::mutex mutex_;
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, std::vector<std::string>> pending_;
};

struct WorkItem {
  std::uint64_t seq = 0;
  SvcRequest request;
};

/// Bounded MPMC queue between the admitting reader and the workers.
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        depth_gauge_(obs::metrics().gauge("svc.queue_depth")) {}

  /// False when the queue is full (caller decides: busy-reject or retry
  /// via push_blocking).
  bool try_push(WorkItem item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
      depth_gauge_.set(static_cast<double>(items_.size()));
    }
    not_empty_.notify_one();
    return true;
  }

  void push_blocking(WorkItem item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_; });
      items_.push_back(std::move(item));
      depth_gauge_.set(static_cast<double>(items_.size()));
    }
    not_empty_.notify_one();
  }

  /// False on a drained, closed queue (worker shutdown signal).
  bool pop(WorkItem& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;
    }
    item = std::move(items_.front());
    items_.pop_front();
    depth_gauge_.set(static_cast<double>(items_.size()));
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  obs::Gauge& depth_gauge_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<WorkItem> items_;
  bool closed_ = false;
};

}  // namespace

ServeStats serve_pipe(Service& service, std::istream& in, std::ostream& out,
                      const ServeOptions& options) {
  ServeStats stats;
  OrderedEmitter emitter(out);
  WorkQueue queue(options.queue_capacity);
  std::atomic<std::uint64_t> served{0};

  const int workers = options.workers < 1 ? 1 : options.workers;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      WorkItem item;
      while (queue.pop(item)) {
        std::vector<std::string> lines;
        try {
          lines = service.process(item.request);
        } catch (const Error& e) {
          lines.push_back(render_error(item.request.id, e.what()));
        } catch (const std::exception& e) {
          // bad_alloc, system_error, ...: still render an answer so the
          // seq slot is released (a swallowed slot stalls the emitter)
          // and an escaping exception doesn't terminate the daemon.
          lines.push_back(render_error(item.request.id, e.what()));
        }
        served.fetch_add(1, std::memory_order_relaxed);
        emitter.emit(item.seq, std::move(lines));
      }
    });
  }

  std::uint64_t seq = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    SvcRequest request;
    try {
      request = parse_request_line(line);
    } catch (const Error& e) {
      ++stats.errors;
      obs::metrics().counter("svc.errors").increment();
      emitter.emit(seq++, {render_error(-1, e.what())});
      continue;
    }
    if (request.kind == SvcRequest::Kind::kPing) {
      ++stats.pings;
      obs::metrics().counter("svc.pings").increment();
      emitter.emit(seq++, {render_pong(request.id)});
      continue;
    }
    if (request.kind == SvcRequest::Kind::kShutdown) {
      break;  // graceful drain below, exactly like EOF
    }
    // Budget admission happens here, on the reader, in arrival order —
    // the verdict depends only on the request stream, never on worker
    // timing, so replays are byte-identical.
    BudgetVerdict verdict;
    try {
      verdict = service.admit(request);
    } catch (const std::exception& e) {
      // A request can parse cleanly yet be un-priceable (iterations < 1,
      // no problem size): pricing it for admission throws. Answer an
      // error record like the socket path does — unwinding here would
      // std::terminate on the still-joinable worker pool.
      ++stats.errors;
      obs::metrics().counter("svc.errors").increment();
      emitter.emit(seq++, {render_error(request.id, e.what())});
      continue;
    }
    if (!verdict.admitted) {
      ++stats.throttled;
      emitter.emit(seq++, {render_throttled(request.id, request.client,
                                            verdict.need_tokens,
                                            verdict.have_tokens)});
      continue;
    }
    const std::int64_t request_id = request.id;
    WorkItem item{seq, std::move(request)};
    if (options.reject_when_full) {
      if (!queue.try_push(std::move(item))) {
        ++stats.busy;
        obs::metrics().counter("svc.busy").increment();
        emitter.emit(seq, {render_busy(request_id, queue.depth())});
      }
    } else {
      queue.push_blocking(std::move(item));
    }
    ++seq;
  }

  queue.close();
  for (auto& t : pool) {
    t.join();
  }
  stats.served = served.load(std::memory_order_relaxed);
  out << render_bye(stats.served) << '\n';
  out.flush();
  service.store().flush();
  return stats;
}

namespace {

/// One connected client: buffered line reads straight off the fd, every
/// request answered synchronously on this connection's thread.
class Connection {
 public:
  Connection(int fd, Service& service, const ServeOptions& options,
             std::atomic<int>& inflight, ServeStats& stats,
             std::mutex& stats_mutex, std::atomic<bool>& stopping)
      : fd_(fd),
        service_(service),
        options_(options),
        inflight_(inflight),
        stats_(stats),
        stats_mutex_(stats_mutex),
        stopping_(stopping) {}

  /// True when this connection asked the whole server to shut down.
  bool run() {
    std::string line;
    bool shutdown = false;
    std::uint64_t served = 0;
    while (!shutdown && read_line(line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      // Global in-flight cap = admission control across connections.
      const int depth = inflight_.fetch_add(1, std::memory_order_acq_rel);
      if (options_.reject_when_full &&
          depth >= static_cast<int>(options_.queue_capacity)) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        std::int64_t id = -1;
        try {
          id = parse_request_line(line).id;
        } catch (const Error&) {
        }
        bump([](ServeStats& s) { ++s.busy; });
        write_lines({render_busy(id, static_cast<std::size_t>(depth))});
        continue;
      }
      bool is_shutdown = false;
      std::vector<std::string> lines;
      try {
        lines = service_.process_line(line, &is_shutdown);
      } catch (const Error& e) {
        lines.push_back(render_error(-1, e.what()));
      } catch (const std::exception& e) {
        // Same fallback as the pipe workers: any escaping exception
        // would unwind the connection thread and terminate the daemon.
        lines.push_back(render_error(-1, e.what()));
      }
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      if (is_shutdown) {
        shutdown = true;
        stopping_.store(true, std::memory_order_release);
        break;
      }
      if (!lines.empty() && lines.front().find("\"type\":\"pong\"") !=
                                std::string::npos) {
        bump([](ServeStats& s) { ++s.pings; });
      } else if (!lines.empty() &&
                 lines.front().find("\"type\":\"error\"") !=
                     std::string::npos) {
        bump([](ServeStats& s) { ++s.errors; });
      } else if (!lines.empty() &&
                 lines.front().find("\"type\":\"throttled\"") !=
                     std::string::npos) {
        bump([](ServeStats& s) { ++s.throttled; });
      } else if (!lines.empty()) {
        ++served;
      }
      write_lines(lines);
    }
    bump([served](ServeStats& s) { s.served += served; });
    // Every connection gets its own goodbye so clients can detect a
    // graceful close; `served` is this connection's tally.
    write_lines({render_bye(served)});
    ::close(fd_);
    return shutdown;
  }

 private:
  template <typename Fn>
  void bump(Fn&& fn) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    fn(stats_);
  }

  bool read_line(std::string& line) {
    line.clear();
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) {
        continue;  // a signal is not end-of-stream; keep the client
      }
      if (n <= 0) {
        if (!buffer_.empty()) {
          line.swap(buffer_);
          return true;
        }
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void write_lines(const std::vector<std::string>& lines) {
    std::string out;
    for (const auto& line : lines) {
      out += line;
      out.push_back('\n');
    }
    std::size_t written = 0;
    while (written < out.size()) {
      // MSG_NOSIGNAL: a peer that already hung up (the shutdown poke, a
      // client gone after `shutdown`) must yield EPIPE, not kill the
      // daemon with SIGPIPE.
      const ssize_t n = ::send(fd_, out.data() + written,
                               out.size() - written, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) {
        continue;  // a signal mid-reply must not truncate the response
      }
      if (n <= 0) {
        return;  // client went away; nothing useful to do
      }
      written += static_cast<std::size_t>(n);
    }
  }

  int fd_;
  Service& service_;
  const ServeOptions& options_;
  std::atomic<int>& inflight_;
  ServeStats& stats_;
  std::mutex& stats_mutex_;
  std::atomic<bool>& stopping_;
  std::string buffer_;
};

}  // namespace

ServeStats serve_unix_socket(Service& service, const std::string& path,
                             const ServeOptions& options) {
  HETERO_REQUIRE(!path.empty(), "svc: socket path must be non-empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HETERO_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "svc: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HETERO_REQUIRE(listen_fd >= 0, "svc: cannot create socket");
  ::unlink(path.c_str());
  HETERO_REQUIRE(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "svc: cannot bind socket at " + path);
  HETERO_REQUIRE(::listen(listen_fd, 64) == 0,
                 "svc: cannot listen on " + path);

  ServeStats stats;
  std::mutex stats_mutex;
  std::atomic<int> inflight{0};
  std::atomic<bool> stopping{false};
  std::vector<std::thread> connections;

  while (!stopping.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping.load(std::memory_order_acquire)) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    connections.emplace_back([&, fd] {
      Connection conn(fd, service, options, inflight, stats, stats_mutex,
                      stopping);
      if (conn.run()) {
        // Unblock the accept() so the server notices the shutdown: a
        // no-op connection to our own socket.
        const int poke = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (poke >= 0) {
          ::connect(poke, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr));
          ::close(poke);
        }
      }
    });
  }

  ::close(listen_fd);
  ::unlink(path.c_str());
  for (auto& t : connections) {
    t.join();
  }
  service.store().flush();
  return stats;
}

}  // namespace hetero::svc
