#pragma once

/// \file report.hpp
/// Sharded execution and the `heterolab-grid-v1` JSONL report.
///
/// Execution streams the matrix through a `core::CampaignEngine` shard by
/// shard, so a persistent result store (`--store`) checkpoints progress at
/// shard granularity: an interrupted run restarted against the same store
/// replays finished shards from disk and completes with a final report
/// byte-identical to an uninterrupted run (the resume contract CI gates).
///
/// The report is fully deterministic — no timestamps, wall-clock readings,
/// or machine facts; engine/backend statistics go to stderr, never into the
/// report. Record order: one `header`, every `cell` in index order, one
/// `capability` per platform, `frontier` points per app pair, one
/// `summary`. See docs/grid_benchmark.md for the schema and the cross-cell
/// invariants `tools/check_bench.py --schema grid` enforces.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign_engine.hpp"
#include "grid/matrix.hpp"
#include "obs/json.hpp"

namespace hetero::grid {

inline constexpr const char* kGridSchema = "heterolab-grid-v1";

struct GridRunOptions {
  /// Cells evaluated per engine batch; the resume granularity.
  int shard_size = 512;
  /// Test hook for the interrupt-resume gate: after this many completed
  /// shards, raise SIGTERM against the own process (0 = never). With the
  /// CLI's shutdown guard installed the process flushes and exits 143,
  /// leaving the result store holding exactly the finished shards.
  int abort_after_shards = 0;
  /// Progress callback after each shard: (completed shards, total shards,
  /// completed cells, total cells). Null = silent.
  std::function<void(int, int, std::int64_t, std::int64_t)> progress;
};

/// Evaluates the cells shard by shard; results[i] corresponds to cells[i].
/// Cells sharing an experiment descriptor (the objective axis) are
/// computed once by the engine's memoization.
std::vector<core::ExperimentResult> run_cells(
    core::CampaignEngine& engine, const std::vector<GridCell>& cells,
    const GridRunOptions& options = {});

/// Builds the heterolab-grid-v1 records for an evaluated matrix.
/// `runner_seed` must be the engine seed the results were computed under
/// (kGridRunnerSeed for grid runs); it feeds the per-cell skew-imbalance
/// reporting and the unique-experiment count.
std::vector<obs::Json> build_report(
    const MatrixSpec& spec, const std::vector<GridCell>& cells,
    const std::vector<core::ExperimentResult>& results,
    std::uint64_t runner_seed);

/// Writes records as JSONL (one compact line each) to `path`, or to stdout
/// when `path` is "-".
void write_report(const std::vector<obs::Json>& records,
                  const std::string& path);

}  // namespace hetero::grid
