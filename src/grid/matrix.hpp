#pragma once

/// \file matrix.hpp
/// The grid-benchmark matrix: a deterministic, seed-stable cross product of
/// every axis the repo can vary — platform (including the EC2 spot-mix
/// assembly), rank count, solver/app, element pair, fault policy,
/// skew/balance treatment, broker objective, and a replica axis — expanded
/// into tens of thousands of experiment descriptors. This is the repo's
/// standing machine-readable benchmark (the SEE V.O. grid-benchmarking
/// technical report is the model): every cell is an `core::Experiment` the
/// CampaignEngine can evaluate, memoize, and replay byte-identically.
///
/// Determinism contract:
///   * expansion order is fixed (nested loops, outermost platform), so cell
///     indices are dense and stable for a given axis spec;
///   * *calm* cells (no faults, no skew, not spot-mix) carry a constant
///     experiment seed (42 + replica) — they form the stable comparable
///     core of the standing report and must not move when the matrix seed
///     is perturbed;
///   * *stochastic* cells (injected launch faults, per-rank skew, or the
///     EC2 spot lottery) hash their seed from (matrix seed, cell
///     coordinates) — excluding the skew/balance and objective axes, so a
///     balanced projection shares its fault and skew draws with its
///     unbalanced twin and objectives re-score one shared result.
///
/// See docs/grid_benchmark.md for the report schema and invariants.

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace hetero::grid {

/// Runner seed every grid engine must use: the matrix seed perturbs only
/// per-cell experiment seeds, never the runner stream, so calm cells are
/// comparable across differently-seeded grid runs.
inline constexpr std::uint64_t kGridRunnerSeed = 42;

/// Axis value lists; the cross product of all of them is the full matrix.
struct AxisSpec {
  /// Platform labels; "ec2-spot" is ec2 with the paper's 4-placement-group
  /// spot-mix assembly.
  std::vector<std::string> platforms;
  std::vector<int> ranks;
  /// Solver x element pair: "rd/p2" (P2 scalar reaction-diffusion),
  /// "ns/p1p1" (stabilized equal-order), "ns/p2p1" (Taylor-Hood).
  std::vector<std::string> app_pairs;
  /// Elements per axis per rank (weak-scaling load).
  std::vector<int> resolutions;
  /// "calm", "flaky-scratch", "flaky-ckpt" (transient launch faults under
  /// the named recovery policy).
  std::vector<std::string> fault_policies;
  /// "calm", "skew" (2x slow cores, bulk-synchronous), "skew-balanced"
  /// (same skew under the analytic capacity-balanced projection).
  std::vector<std::string> skew_balance;
  /// Broker objectives re-scoring each cell: "time", "cost", "effective".
  std::vector<std::string> objectives;
  /// Replica axis: independent seeds per replica.
  int seed_reps = 1;
};

/// Everything needed to reproduce a matrix bit for bit.
struct MatrixSpec {
  /// Preset name this spec came from ("full", "ci", "smoke", "custom").
  std::string name = "full";
  AxisSpec axes;
  /// Perturbs stochastic cells only (see file comment).
  std::uint64_t matrix_seed = 42;
  /// Production iterations each cell's score is computed over.
  int iterations = 100;
  /// 0 = every cell; otherwise a deterministic sample of this many cells
  /// (anchor cells always included, remainder ranked by hash).
  std::int64_t sample_cells = 0;
  std::uint64_t sample_seed = 7;
};

/// One expanded cell: the axis coordinates plus the materialized
/// experiment descriptor.
struct GridCell {
  /// Dense index in full cross-product order (stable cell id).
  std::int64_t index = 0;
  std::string platform;
  int ranks = 0;
  std::string app_pair;
  int resolution = 0;
  std::string fault;
  std::string skewlb;
  std::string objective;
  int rep = 0;
  /// True when the cell's seed derives from the matrix seed (faults, skew,
  /// or the spot lottery); false for the stable calm core.
  bool stochastic = false;
  core::Experiment experiment;
};

/// The default axes: 5 platforms x 10 rank counts x 3 app/pair combos x
/// 2 resolutions x 3 fault policies x 3 skew treatments x 3 objectives x
/// 2 replicas = 16200 cells.
AxisSpec default_axes();

/// Named presets: "full" (every cell), "ci" (500-cell sample),
/// "smoke" (64-cell sample). Throws on unknown names.
MatrixSpec preset(const std::string& name);

/// Exact cell count of the cross product.
std::int64_t cardinality(const AxisSpec& axes);

/// Expands the spec into its cell list: the full product in index order,
/// or the deterministic sample when `sample_cells` > 0 (still sorted by
/// cell index). Throws when the sample size exceeds the cardinality.
std::vector<GridCell> expand(const MatrixSpec& spec);

/// Compact coordinate label, e.g.
/// "ec2-spot/343/ns-p2p1/c20/flaky-ckpt/skew/cost/r1" — unique per cell.
std::string cell_label(const GridCell& cell);

/// Scores a launched cell result under the cell's broker objective (lower
/// is better), over `iterations` production iterations: builds the same
/// effective-time/cost accounting the broker's objectives rank.
double score_cell(const GridCell& cell, const core::ExperimentResult& result,
                  int iterations);

}  // namespace hetero::grid
