#include "grid/matrix.hpp"

#include <algorithm>

#include "broker/objectives.hpp"
#include "broker/predictor.hpp"
#include "core/report.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/units.hpp"

namespace hetero::grid {

namespace {

/// Folds a string into a hash chain byte by byte (order-dependent, so
/// "ns/p2p1" and "ns/p1p2" land in different streams).
std::uint64_t hash_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = hash_combine(h, static_cast<unsigned char>(c));
  }
  return hash_combine(h, s.size());
}

void apply_app_pair(const std::string& pair, core::Experiment* e) {
  if (pair == "rd/p2") {
    e->app = perf::AppKind::kReactionDiffusion;
    e->element_order = 1;
  } else if (pair == "ns/p1p1") {
    e->app = perf::AppKind::kNavierStokes;
    e->element_order = 1;
  } else if (pair == "ns/p2p1") {
    e->app = perf::AppKind::kNavierStokes;
    e->element_order = 2;
  } else {
    throw Error("unknown app pair: " + pair +
                " (expected rd/p2|ns/p1p1|ns/p2p1)");
  }
}

void apply_platform(const std::string& label, core::Experiment* e) {
  if (label == "ec2-spot") {
    // The paper's "mix" configuration: spot requests over 4 placement
    // groups topped up with on-demand hosts.
    e->platform = "ec2";
    e->ec2_spot_mix = true;
    e->ec2_placement_groups = 4;
  } else {
    e->platform = label;
  }
}

void apply_fault(const std::string& policy, core::Experiment* e) {
  if (policy == "calm") {
    return;
  }
  if (policy == "flaky-scratch" || policy == "flaky-ckpt") {
    e->faults.launch_failure_rate = 0.3;
    e->recovery.kind = policy == "flaky-ckpt"
                           ? resil::RecoveryKind::kCheckpointRestart
                           : resil::RecoveryKind::kRestartScratch;
    return;
  }
  throw Error("unknown fault policy: " + policy +
              " (expected calm|flaky-scratch|flaky-ckpt)");
}

void apply_skewlb(const std::string& treatment, core::Experiment* e) {
  if (treatment == "calm") {
    return;
  }
  if (treatment == "skew" || treatment == "skew-balanced") {
    e->skew.slow_core_fraction = 0.25;
    e->skew.slow_core_factor = 2.0;
    e->skew_assume_balanced = treatment == "skew-balanced";
    return;
  }
  throw Error("unknown skew treatment: " + treatment +
              " (expected calm|skew|skew-balanced)");
}

bool is_stochastic(const std::string& platform, const std::string& fault,
                   const std::string& skewlb) {
  return platform == "ec2-spot" || fault != "calm" || skewlb != "calm";
}

/// Stochastic cells hash their seed from the matrix seed and every
/// coordinate EXCEPT skew/balance and objective: a balanced projection
/// must share its fault and queue draws with its unbalanced twin, and the
/// objective axis only re-scores one shared result.
std::uint64_t cell_seed(const MatrixSpec& spec, const GridCell& cell) {
  if (!cell.stochastic) {
    return 42 + static_cast<std::uint64_t>(cell.rep);
  }
  std::uint64_t h = hash_mix(spec.matrix_seed);
  h = hash_str(h, cell.platform);
  h = hash_combine(h, static_cast<std::uint64_t>(cell.ranks));
  h = hash_str(h, cell.app_pair);
  h = hash_combine(h, static_cast<std::uint64_t>(cell.resolution));
  h = hash_str(h, cell.fault);
  h = hash_combine(h, static_cast<std::uint64_t>(cell.rep));
  return h;
}

/// Anchor cells are always kept by sampling: the calm rd/p2 core at the
/// heaviest resolution under the first objective, across every platform
/// and rank count — the stable spine baselines and frontiers rely on.
bool is_anchor(const AxisSpec& axes, const GridCell& cell) {
  return cell.fault == "calm" && cell.skewlb == "calm" && cell.rep == 0 &&
         cell.app_pair == axes.app_pairs.front() &&
         cell.resolution == axes.resolutions.back() &&
         cell.objective == axes.objectives.front();
}

}  // namespace

AxisSpec default_axes() {
  AxisSpec axes;
  axes.platforms = {"puma", "ellipse", "lagrange", "ec2", "ec2-spot"};
  axes.ranks = core::paper_process_counts();
  axes.app_pairs = {"rd/p2", "ns/p1p1", "ns/p2p1"};
  axes.resolutions = {10, 20};
  axes.fault_policies = {"calm", "flaky-scratch", "flaky-ckpt"};
  axes.skew_balance = {"calm", "skew", "skew-balanced"};
  axes.objectives = {"time", "cost", "effective"};
  axes.seed_reps = 2;
  return axes;
}

MatrixSpec preset(const std::string& name) {
  MatrixSpec spec;
  spec.name = name;
  spec.axes = default_axes();
  if (name == "full") {
    return spec;
  }
  if (name == "ci") {
    spec.sample_cells = 500;
    return spec;
  }
  if (name == "smoke") {
    spec.sample_cells = 64;
    return spec;
  }
  throw Error("unknown --matrix preset: " + name +
              " (expected full|ci|smoke)");
}

std::int64_t cardinality(const AxisSpec& axes) {
  return static_cast<std::int64_t>(axes.platforms.size()) *
         static_cast<std::int64_t>(axes.ranks.size()) *
         static_cast<std::int64_t>(axes.app_pairs.size()) *
         static_cast<std::int64_t>(axes.resolutions.size()) *
         static_cast<std::int64_t>(axes.fault_policies.size()) *
         static_cast<std::int64_t>(axes.skew_balance.size()) *
         static_cast<std::int64_t>(axes.objectives.size()) *
         static_cast<std::int64_t>(axes.seed_reps);
}

std::vector<GridCell> expand(const MatrixSpec& spec) {
  const AxisSpec& axes = spec.axes;
  HETERO_REQUIRE(!axes.platforms.empty() && !axes.ranks.empty() &&
                     !axes.app_pairs.empty() && !axes.resolutions.empty() &&
                     !axes.fault_policies.empty() &&
                     !axes.skew_balance.empty() && !axes.objectives.empty() &&
                     axes.seed_reps >= 1,
                 "grid axes must all be non-empty");
  const std::int64_t total = cardinality(axes);
  HETERO_REQUIRE(spec.sample_cells >= 0 && spec.sample_cells <= total,
                 "grid sample size must be within the matrix cardinality (" +
                     std::to_string(total) + " cells)");

  std::vector<GridCell> cells;
  cells.reserve(static_cast<std::size_t>(total));
  std::int64_t index = 0;
  for (const std::string& platform : axes.platforms) {
    for (const int ranks : axes.ranks) {
      for (const std::string& pair : axes.app_pairs) {
        for (const int resolution : axes.resolutions) {
          for (const std::string& fault : axes.fault_policies) {
            for (const std::string& skewlb : axes.skew_balance) {
              for (int rep = 0; rep < axes.seed_reps; ++rep) {
                for (const std::string& objective : axes.objectives) {
                  GridCell cell;
                  cell.index = index++;
                  cell.platform = platform;
                  cell.ranks = ranks;
                  cell.app_pair = pair;
                  cell.resolution = resolution;
                  cell.fault = fault;
                  cell.skewlb = skewlb;
                  cell.objective = objective;
                  cell.rep = rep;
                  cell.stochastic = is_stochastic(platform, fault, skewlb);

                  core::Experiment& e = cell.experiment;
                  e.mode = core::Mode::kModeled;
                  apply_platform(platform, &e);
                  apply_app_pair(pair, &e);
                  e.ranks = ranks;
                  e.cells_per_rank_axis = resolution;
                  apply_fault(fault, &e);
                  apply_skewlb(skewlb, &e);
                  e.seed = cell_seed(spec, cell);
                  cells.push_back(std::move(cell));
                }
              }
            }
          }
        }
      }
    }
  }

  if (spec.sample_cells == 0 || spec.sample_cells == total) {
    return cells;
  }
  // Deterministic sample: anchors first (in index order), the remainder
  // ranked by a hash of (sample seed, index); final order is by index.
  std::vector<std::int64_t> order(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    order[i] = static_cast<std::int64_t>(i);
  }
  auto rank_of = [&](std::int64_t i) -> std::pair<int, std::uint64_t> {
    const GridCell& c = cells[static_cast<std::size_t>(i)];
    if (is_anchor(axes, c)) {
      return {0, static_cast<std::uint64_t>(c.index)};
    }
    return {1, hash_combine(hash_mix(spec.sample_seed),
                            static_cast<std::uint64_t>(c.index))};
  };
  std::sort(order.begin(), order.end(),
            [&](std::int64_t a, std::int64_t b) {
              const auto ra = rank_of(a);
              const auto rb = rank_of(b);
              // Index is unique, so ties in the hash cannot leave the
              // comparator unstable.
              return ra != rb ? ra < rb : a < b;
            });
  order.resize(static_cast<std::size_t>(spec.sample_cells));
  std::sort(order.begin(), order.end());
  std::vector<GridCell> sampled;
  sampled.reserve(order.size());
  for (const std::int64_t i : order) {
    sampled.push_back(cells[static_cast<std::size_t>(i)]);
  }
  return sampled;
}

std::string cell_label(const GridCell& cell) {
  std::string pair = cell.app_pair;
  std::replace(pair.begin(), pair.end(), '/', '-');
  return cell.platform + "/" + std::to_string(cell.ranks) + "/" + pair +
         "/c" + std::to_string(cell.resolution) + "/" + cell.fault + "/" +
         cell.skewlb + "/" + cell.objective + "/r" + std::to_string(cell.rep);
}

double score_cell(const GridCell& cell, const core::ExperimentResult& result,
                  int iterations) {
  HETERO_REQUIRE(result.launched, "score_cell needs a launched result");
  HETERO_REQUIRE(iterations >= 1, "score_cell needs iterations >= 1");
  // The same accounting the broker's objectives rank: the production run
  // is `iterations` modeled iterations, effective time folds in queue wait
  // and the one-time porting effort (§VIII), and dead fault attempts bill
  // their wasted dollars.
  broker::Prediction p;
  p.launched = true;
  p.queue_wait_s = result.queue_wait_s;
  p.provisioning_hours = result.provisioning_hours;
  p.seconds_per_iteration = result.iteration.total_s;
  p.run_s = result.iteration.total_s * iterations;
  p.cost_usd = result.cost_per_iteration_usd * iterations +
               result.resil.wasted_cost_usd;
  p.effective_s =
      p.queue_wait_s + p.provisioning_hours * kSecondsPerHour + p.run_s;
  return broker::objective_by_name(cell.objective).score(p);
}

}  // namespace hetero::grid
