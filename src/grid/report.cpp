#include "grid/report.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "broker/frontier.hpp"
#include "obs/bench_io.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace hetero::grid {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

obs::Json string_array(const std::vector<std::string>& values) {
  obs::Json arr = obs::Json::array();
  for (const std::string& v : values) {
    arr.push_back(v);
  }
  return arr;
}

obs::Json int_array(const std::vector<int>& values) {
  obs::Json arr = obs::Json::array();
  for (const int v : values) {
    arr.push_back(v);
  }
  return arr;
}

/// Max/mean of the modeled per-rank skew factors: 1.0 on a uniform
/// platform, the headroom a balancer could win back under skew.
double skew_imbalance(const GridCell& cell, std::uint64_t runner_seed) {
  if (!cell.experiment.skew.enabled()) {
    return 1.0;
  }
  const std::vector<double> factors =
      core::modeled_skew_factors(cell.experiment, runner_seed);
  double max = 0.0;
  double sum = 0.0;
  for (const double f : factors) {
    max = std::max(max, f);
    sum += f;
  }
  return max / (sum / static_cast<double>(factors.size()));
}

}  // namespace

std::vector<core::ExperimentResult> run_cells(core::CampaignEngine& engine,
                                              const std::vector<GridCell>& cells,
                                              const GridRunOptions& options) {
  HETERO_REQUIRE(options.shard_size >= 1, "grid needs a positive shard size");
  const std::int64_t total = static_cast<std::int64_t>(cells.size());
  const int shards = static_cast<int>(
      (total + options.shard_size - 1) / options.shard_size);
  std::vector<core::ExperimentResult> results;
  results.reserve(cells.size());
  for (int shard = 0; shard < shards; ++shard) {
    const std::int64_t begin =
        static_cast<std::int64_t>(shard) * options.shard_size;
    const std::int64_t end = std::min(total, begin + options.shard_size);
    std::vector<core::Experiment> batch;
    batch.reserve(static_cast<std::size_t>(end - begin));
    for (std::int64_t i = begin; i < end; ++i) {
      batch.push_back(cells[static_cast<std::size_t>(i)].experiment);
    }
    std::vector<core::ExperimentResult> shard_results =
        engine.run_batch(batch);
    for (auto& r : shard_results) {
      results.push_back(std::move(r));
    }
    if (options.progress) {
      options.progress(shard + 1, shards, end, total);
    }
    if (options.abort_after_shards > 0 &&
        shard + 1 == options.abort_after_shards && shard + 1 < shards) {
      // Interrupt-resume test hook: a process-directed SIGTERM reaches the
      // CLI's shutdown guard (flush + exit 143); without a guard the
      // default disposition kills the process outright. Either way the
      // result store already holds every finished shard.
      ::kill(::getpid(), SIGTERM);
      for (;;) {
        ::pause();
      }
    }
  }
  return results;
}

std::vector<obs::Json> build_report(
    const MatrixSpec& spec, const std::vector<GridCell>& cells,
    const std::vector<core::ExperimentResult>& results,
    std::uint64_t runner_seed) {
  HETERO_REQUIRE(cells.size() == results.size(),
                 "build_report needs one result per cell");
  std::vector<obs::Json> records;
  records.reserve(cells.size() + 16);

  obs::Json header = obs::Json::object();
  header.set("schema", kGridSchema);
  header.set("type", "header");
  header.set("matrix", spec.name);
  header.set("matrix_seed", hex_u64(spec.matrix_seed));
  header.set("iterations", spec.iterations);
  const std::int64_t total = cardinality(spec.axes);
  header.set("cardinality", total);
  header.set("cells", static_cast<std::int64_t>(cells.size()));
  header.set("sampled", static_cast<std::int64_t>(cells.size()) != total);
  obs::Json axes = obs::Json::object();
  axes.set("platforms", string_array(spec.axes.platforms));
  axes.set("ranks", int_array(spec.axes.ranks));
  axes.set("app_pairs", string_array(spec.axes.app_pairs));
  axes.set("resolutions", int_array(spec.axes.resolutions));
  axes.set("fault_policies", string_array(spec.axes.fault_policies));
  axes.set("skew_balance", string_array(spec.axes.skew_balance));
  axes.set("objectives", string_array(spec.axes.objectives));
  axes.set("seed_reps", spec.axes.seed_reps);
  header.set("axes", std::move(axes));
  records.push_back(std::move(header));

  struct PlatformTally {
    std::int64_t cells = 0;
    std::int64_t launched = 0;
    int max_launched_ranks = 0;
    std::set<std::string> reasons;
  };
  std::map<std::string, PlatformTally> tallies;
  std::set<std::string> unique_keys;
  std::int64_t launched_cells = 0;
  std::int64_t stochastic_cells = 0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const GridCell& cell = cells[i];
    const core::ExperimentResult& r = results[i];
    unique_keys.insert(
        core::experiment_cache_key(cell.experiment, runner_seed));
    stochastic_cells += cell.stochastic ? 1 : 0;
    PlatformTally& tally = tallies[cell.platform];
    ++tally.cells;
    if (r.launched) {
      ++tally.launched;
      tally.max_launched_ranks = std::max(tally.max_launched_ranks,
                                          cell.ranks);
      ++launched_cells;
    } else {
      tally.reasons.insert(r.failure_reason);
    }

    obs::Json rec = obs::Json::object();
    rec.set("schema", kGridSchema);
    rec.set("type", "cell");
    rec.set("cell", cell.index);
    rec.set("label", cell_label(cell));
    rec.set("platform", cell.platform);
    rec.set("ranks", cell.ranks);
    rec.set("app_pair", cell.app_pair);
    rec.set("resolution", cell.resolution);
    rec.set("fault", cell.fault);
    rec.set("skewlb", cell.skewlb);
    rec.set("objective", cell.objective);
    rec.set("rep", cell.rep);
    rec.set("stochastic", cell.stochastic);
    rec.set("seed", hex_u64(cell.experiment.seed));
    rec.set("launched", r.launched);
    if (r.launched) {
      rec.set("queue_wait_s", r.queue_wait_s);
      rec.set("provisioning_hours", r.provisioning_hours);
      rec.set("assembly_s", r.iteration.assembly_s);
      rec.set("precond_s", r.iteration.preconditioner_s);
      rec.set("solve_s", r.iteration.solve_s);
      rec.set("total_s", r.iteration.total_s);
      rec.set("solver_iterations", r.iteration.solver_iterations);
      rec.set("cost_usd", r.cost_per_iteration_usd);
      rec.set("est_cost_usd", r.est_cost_per_iteration_usd);
      rec.set("hosts", r.hosts);
      rec.set("spot_hosts", r.spot_hosts);
      rec.set("launch_retries", r.resil.launch_retries);
      rec.set("retry_delay_s", r.resil.retry_delay_s);
      rec.set("skew_imbalance", skew_imbalance(cell, runner_seed));
      const double run_s = r.iteration.total_s * spec.iterations;
      rec.set("run_s", run_s);
      rec.set("effective_s", r.queue_wait_s +
                                 r.provisioning_hours * kSecondsPerHour +
                                 run_s);
      rec.set("score", score_cell(cell, r, spec.iterations));
    } else {
      rec.set("failure_reason", r.failure_reason);
      rec.set("total_s", obs::Json());
      rec.set("cost_usd", obs::Json());
      rec.set("score", obs::Json());
    }
    records.push_back(std::move(rec));
  }

  for (const std::string& platform : spec.axes.platforms) {
    const PlatformTally& tally = tallies[platform];
    obs::Json rec = obs::Json::object();
    rec.set("schema", kGridSchema);
    rec.set("type", "capability");
    rec.set("platform", platform);
    rec.set("cells", tally.cells);
    rec.set("launched", tally.launched);
    rec.set("failed", tally.cells - tally.launched);
    rec.set("max_launched_ranks", tally.max_launched_ranks);
    rec.set("reasons",
            string_array({tally.reasons.begin(), tally.reasons.end()}));
    records.push_back(std::move(rec));
  }

  // Time/cost frontier per app pair over the stable comparable core: calm
  // launched cells of the first objective at rep 0 (one point per unique
  // experiment — other objectives re-score the same result).
  std::int64_t frontier_points = 0;
  for (const std::string& pair : spec.axes.app_pairs) {
    std::vector<std::pair<double, double>> points;
    std::vector<std::size_t> owners;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const GridCell& cell = cells[i];
      if (cell.app_pair != pair || !results[i].launched ||
          cell.fault != "calm" || cell.skewlb != "calm" || cell.rep != 0 ||
          cell.objective != spec.axes.objectives.front()) {
        continue;
      }
      points.emplace_back(results[i].iteration.total_s,
                          results[i].cost_per_iteration_usd);
      owners.push_back(i);
    }
    const auto frontier = broker::pareto_frontier(points);
    int seq = 0;
    for (const auto& point : frontier) {
      const GridCell& cell = cells[owners[point.index]];
      obs::Json rec = obs::Json::object();
      rec.set("schema", kGridSchema);
      rec.set("type", "frontier");
      rec.set("app_pair", pair);
      rec.set("seq", seq++);
      rec.set("cell", cell.index);
      rec.set("platform", cell.platform);
      rec.set("ranks", cell.ranks);
      rec.set("time_s", point.time_s);
      rec.set("cost_usd", point.cost_usd);
      records.push_back(std::move(rec));
      ++frontier_points;
    }
  }

  obs::Json summary = obs::Json::object();
  summary.set("schema", kGridSchema);
  summary.set("type", "summary");
  summary.set("cells", static_cast<std::int64_t>(cells.size()));
  summary.set("launched", launched_cells);
  summary.set("failed", static_cast<std::int64_t>(cells.size()) -
                            launched_cells);
  summary.set("stochastic_cells", stochastic_cells);
  summary.set("calm_cells",
              static_cast<std::int64_t>(cells.size()) - stochastic_cells);
  summary.set("unique_experiments",
              static_cast<std::int64_t>(unique_keys.size()));
  summary.set("frontier_points", frontier_points);
  records.push_back(std::move(summary));
  return records;
}

void write_report(const std::vector<obs::Json>& records,
                  const std::string& path) {
  if (path == "-") {
    for (const obs::Json& rec : records) {
      const std::string line = rec.dump();
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fputc('\n', stdout);
    }
    std::fflush(stdout);
    return;
  }
  obs::JsonlWriter writer(path);
  for (const obs::Json& rec : records) {
    writer.write(rec);
  }
  writer.close();
}

}  // namespace hetero::grid
