#pragma once

/// \file report.hpp
/// Generators for every quantitative artifact in the paper's evaluation:
/// the weak-scaling figures (4, 5), the placement-group/spot study
/// (Table II), the cost-per-iteration figures (6, 7), and the
/// availability summary of §VIII. Each returns a support::Table ready for
/// text/CSV/markdown rendering.
///
/// Every generator evaluates its sweep as one CampaignEngine batch: rows
/// keep submission order (so output is identical at any --jobs level) and
/// points shared between artifacts — fig4 and fig6 run the same modeled
/// experiments — are computed once per engine.

#include <span>

#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"
#include "support/table.hpp"

namespace hetero::core {

/// The paper's weak-scaling process counts: cubes 1..1000.
std::vector<int> paper_process_counts();

/// Fig. 4 (RD) / Fig. 5 (NS): per-iteration assembly / preconditioner /
/// solve / total times for every platform and process count. Platforms
/// that cannot launch a size show the failure reason instead.
Table weak_scaling_figure(CampaignEngine& engine, perf::AppKind app,
                          std::span<const int> process_counts);

/// Table II: EC2 cc2.8xlarge "full" (on-demand, one placement group)
/// versus "mix" (spot + on-demand over four groups): per-iteration time and
/// real / estimated cost.
Table table2_ec2_assemblies(CampaignEngine& engine,
                            std::span<const int> process_counts);

/// Fig. 6 (RD) / Fig. 7 (NS): per-iteration cost for the four platforms
/// plus the "ec2 mix" cost-aware strategy.
Table cost_figure(CampaignEngine& engine, perf::AppKind app,
                  std::span<const int> process_counts);

/// §VIII effective-time-to-solution: queue wait + provisioning effort +
/// run time for a fixed job size on every platform.
Table availability_table(CampaignEngine& engine, perf::AppKind app,
                         int ranks, int iterations);

/// §VIII summary: one row per platform condensing every axis the paper
/// weighs — porting effort, availability, peak size, per-iteration time and
/// cost for both applications at a common size — "each of the platforms ...
/// had its particular benefits and drawbacks".
Table summary_table(CampaignEngine& engine, int ranks);

}  // namespace hetero::core
