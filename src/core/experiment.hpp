#pragma once

/// \file experiment.hpp
/// The heterolab public API: describe an application run on a target
/// platform, and get back everything the paper measures — per-iteration
/// phase times, dollar cost, queue wait, provisioning effort, and whether
/// the platform could launch the job at all.
///
/// Two execution modes share the same platform/network models:
///   * kModeled — analytic projection (perf::project_iteration); instant,
///     used for the paper's full 1..1000-rank sweeps;
///   * kDirect  — actually runs the application through the simulated MPI
///     runtime (threads + virtual clocks); used at small scale for
///     validation and for the exact-solution oracles.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "lb/load_balancer.hpp"
#include "perf/scaling_model.hpp"
#include "platform/platform_spec.hpp"
#include "rebroker/policy.hpp"
#include "resil/fault_plan.hpp"
#include "resil/recovery.hpp"
#include "resil/skew_plan.hpp"

namespace hetero::core {

enum class Mode { kModeled, kDirect };

struct Experiment {
  perf::AppKind app = perf::AppKind::kReactionDiffusion;
  std::string platform = "puma";
  int ranks = 1;
  /// Elements per axis per rank (weak scaling; the paper uses 20).
  int cells_per_rank_axis = 20;
  /// Velocity element order of the Navier–Stokes discretization: 1 = the
  /// stabilized equal-order P1/P1 pair, 2 = the Taylor–Hood P2/P1 pair
  /// (heavier blocks, more Krylov iterations — the grid benchmark's
  /// "element pair" axis). Must stay 1 for reaction–diffusion.
  int element_order = 1;
  Mode mode = Mode::kModeled;
  /// Direct mode: number of time steps to run (first steps are warm-up).
  int direct_steps = 3;

  // --- EC2-specific knobs ----------------------------------------------------
  /// Assemble from spot requests spread over several placement groups,
  /// topping up with on-demand hosts (the paper's "mix" configuration).
  bool ec2_spot_mix = false;
  int ec2_placement_groups = 1;
  /// Extra latency fraction for traffic crossing placement groups. The
  /// paper measured "no benefit" from a single group, i.e. a small value.
  double cross_group_penalty = 0.02;
  double ec2_spot_bid_usd = 1.20;

  // --- observability knobs ---------------------------------------------------
  /// Direct mode: write a Chrome trace_event JSON (one row per rank, virtual
  /// microseconds — loads in chrome://tracing / Perfetto). Empty = off.
  std::string trace_path;
  /// Write the global metrics registry as JSON after the run. Empty = off.
  std::string metrics_path;

  // --- resilience knobs ------------------------------------------------------
  /// Fault rates; all zero by default (nothing is injected). The concrete
  /// fault schedule is a pure function of (faults, seed), so runs replay
  /// byte-identically at any parallelism.
  resil::FaultSpec faults;
  /// What to do when a fault fires: give up, restart from scratch, or
  /// checkpoint-restart — with capped exponential backoff between attempts.
  resil::RecoveryPolicy recovery;

  // --- online re-brokering ---------------------------------------------------
  /// Closed-loop mid-run migration policy (direct mode only): sample live
  /// step times, re-price the remaining work, and migrate to the fallback
  /// platform when the deadline/cost verdict flips past the hysteresis
  /// margin. Disabled by default; see docs/rebrokering.md.
  rebroker::Policy rebroker;

  // --- intra-platform heterogeneity ------------------------------------------
  /// Per-rank speed skew (slow cores + noisy neighbors). Direct mode scales
  /// each rank's compute charges through the virtual clocks; modeled mode
  /// degrades the platform's uniform speed by the skew's unbalanced
  /// slowdown. All zero by default — runs are bit-identical to a skew-free
  /// build. See docs/load_balancing.md.
  resil::SkewSpec skew;
  /// Modeled mode only: project the skewed run under *perfect*
  /// capacity-weighted balancing (perf::skew_slowdown_balanced) instead of
  /// the bulk-synchronous worst-rank slowdown — the analytic counterpart
  /// of direct mode's `balance.enabled`. Requires skew to be enabled.
  bool skew_assume_balanced = false;
  /// Dynamic load balancing (direct mode only): allgather measured per-rank
  /// step times and repartition with capacity weights (or diffuse weight
  /// between neighbors) when the weighted imbalance crosses the threshold.
  lb::BalancePolicy balance;

  std::uint64_t seed = 42;
};

struct ExperimentResult {
  bool launched = false;
  std::string failure_reason;

  /// Time from submission to job start (queue / boot / setup).
  double queue_wait_s = 0.0;
  /// One-time porting effort for this platform (man-hours, §VI).
  double provisioning_hours = 0.0;

  /// Per-iteration phase times (the paper's figures 4/5).
  perf::PhaseBreakdown iteration;
  /// Nodes the job occupies.
  int hosts = 0;

  /// Dollar cost of one iteration at the real (billed) rate.
  double cost_per_iteration_usd = 0.0;
  /// EC2 mix: hypothetical all-spot estimate (Table II's "est. cost").
  double est_cost_per_iteration_usd = 0.0;

  /// Spot instances actually obtained (EC2 mix only).
  int spot_hosts = 0;

  apps::WorkCounts work_per_rank;

  // Direct mode extras: exact-solution oracles from the real run.
  double nodal_error = 0.0;
  bool solver_converged = true;

  /// Resilience ledger: attempts, wasted work, recovered steps, and what
  /// the faults cost in simulated time and dollars.
  resil::RecoveryStats resil;

  /// Re-brokering ledger: samples/decisions/migrations, storms endured, and
  /// the heterolab-rebroker-v1 decision trail. storms is filled even when
  /// the policy is disabled (a static plan still suffers the market).
  rebroker::Outcome rebroker;

  /// Load-balancing ledger: imbalance checks made, rebalances triggered,
  /// and the last weighted imbalance the balancer saw.
  lb::BalanceOutcome balance;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(std::uint64_t seed = 42);

  /// Runs one experiment; never throws for platform-capability failures
  /// (those come back as launched = false with the paper's reason).
  ExperimentResult run(const Experiment& experiment);

 private:
  ExperimentResult run_modeled(const Experiment& experiment,
                               const platform::PlatformSpec& spec);
  ExperimentResult run_direct(const Experiment& experiment,
                              const platform::PlatformSpec& spec);
  /// The experiment's fault schedule, derived from (runner seed, its seed).
  resil::FaultPlan make_plan(const Experiment& experiment) const;

  std::uint64_t seed_;
};

/// Per-rank mean compute-cost multipliers the modeled projection of this
/// experiment runs under (the resil::SkewPlan derived from the runner and
/// experiment seeds on the experiment's platform); all ones when skew is
/// disabled. Exposed so report generators (the grid benchmark) can publish
/// the skew imbalance a cell was modeled against.
std::vector<double> modeled_skew_factors(const Experiment& experiment,
                                         std::uint64_t runner_seed);

}  // namespace hetero::core
