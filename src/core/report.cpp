#include "core/report.hpp"

#include <cmath>

#include "support/units.hpp"

namespace hetero::core {

std::vector<int> paper_process_counts() {
  return {1, 8, 27, 64, 125, 216, 343, 512, 729, 1000};
}

Table weak_scaling_figure(CampaignEngine& engine, perf::AppKind app,
                          std::span<const int> process_counts) {
  Table table({"platform", "procs", "assembly[s]", "precond[s]", "solve[s]",
               "total[s]", "iters", "status"});
  std::vector<Experiment> batch;
  batch.reserve(4 * process_counts.size());
  for (const auto* spec : platform::all_platforms()) {
    for (int p : process_counts) {
      Experiment e;
      e.app = app;
      e.platform = spec->name;
      e.ranks = p;
      batch.push_back(e);
    }
  }
  const auto results = engine.run_batch(batch);
  std::size_t i = 0;
  for (const auto* spec : platform::all_platforms()) {
    for (int p : process_counts) {
      const auto& r = results[i++];
      if (!r.launched) {
        table.add_row({spec->name, std::to_string(p), "-", "-", "-", "-",
                       "-", "FAILED: " + r.failure_reason});
        continue;
      }
      table.add_row({spec->name, std::to_string(p),
                     fmt_double(r.iteration.assembly_s, 3),
                     fmt_double(r.iteration.preconditioner_s, 3),
                     fmt_double(r.iteration.solve_s, 3),
                     fmt_double(r.iteration.total_s, 2),
                     fmt_double(r.iteration.solver_iterations, 0), "ok"});
    }
  }
  return table;
}

Table table2_ec2_assemblies(CampaignEngine& engine,
                            std::span<const int> process_counts) {
  Table table({"# mpi", "# hosts", "full time[s]", "full real cost[$]",
               "mix time[s]", "mix est. cost[$]", "mix spot hosts"});
  std::vector<Experiment> batch;
  batch.reserve(2 * process_counts.size());
  for (int p : process_counts) {
    Experiment full;
    full.app = perf::AppKind::kReactionDiffusion;
    full.platform = "ec2";
    full.ranks = p;
    full.ec2_spot_mix = false;
    full.ec2_placement_groups = 1;
    batch.push_back(full);

    Experiment mix = full;
    mix.ec2_spot_mix = true;
    mix.ec2_placement_groups = 4;
    batch.push_back(mix);
  }
  const auto results = engine.run_batch(batch);
  for (std::size_t i = 0; i < process_counts.size(); ++i) {
    const auto& rf = results[2 * i];
    const auto& rm = results[2 * i + 1];
    table.add_row({std::to_string(process_counts[i]),
                   std::to_string(rf.hosts),
                   fmt_double(rf.iteration.total_s, 2),
                   fmt_double(rf.cost_per_iteration_usd, 4),
                   fmt_double(rm.iteration.total_s, 2),
                   fmt_double(rm.est_cost_per_iteration_usd, 4),
                   std::to_string(rm.spot_hosts)});
  }
  return table;
}

Table cost_figure(CampaignEngine& engine, perf::AppKind app,
                  std::span<const int> process_counts) {
  Table table({"procs", "puma[$]", "ellipse[$]", "lagrange[$]", "ec2[$]",
               "ec2 mix[$]"});
  const auto& platforms = platform::all_platforms();
  std::vector<Experiment> batch;
  batch.reserve((platforms.size() + 1) * process_counts.size());
  for (int p : process_counts) {
    for (const auto* spec : platforms) {
      Experiment e;
      e.app = app;
      e.platform = spec->name;
      e.ranks = p;
      batch.push_back(e);
    }
    Experiment mix;
    mix.app = app;
    mix.platform = "ec2";
    mix.ranks = p;
    mix.ec2_spot_mix = true;
    mix.ec2_placement_groups = 4;
    batch.push_back(mix);
  }
  const auto results = engine.run_batch(batch);
  std::size_t i = 0;
  for (int p : process_counts) {
    std::vector<std::string> row{std::to_string(p)};
    for (std::size_t s = 0; s < platforms.size(); ++s) {
      const auto& r = results[i++];
      row.push_back(r.launched ? fmt_double(r.cost_per_iteration_usd, 4)
                               : "-");
    }
    const auto& rm = results[i++];
    row.push_back(fmt_double(rm.est_cost_per_iteration_usd, 4));
    table.add_row(std::move(row));
  }
  return table;
}

Table availability_table(CampaignEngine& engine, perf::AppKind app,
                         int ranks, int iterations) {
  Table table({"platform", "provision[h]", "queue wait", "run time",
               "effective total", "cost[$]", "status"});
  std::vector<Experiment> batch;
  for (const auto* spec : platform::all_platforms()) {
    Experiment e;
    e.app = app;
    e.platform = spec->name;
    e.ranks = ranks;
    batch.push_back(e);
  }
  const auto results = engine.run_batch(batch);
  std::size_t i = 0;
  for (const auto* spec : platform::all_platforms()) {
    const auto& r = results[i++];
    if (!r.launched) {
      table.add_row({spec->name, fmt_double(r.provisioning_hours, 1), "-",
                     "-", "-", "-", "FAILED: " + r.failure_reason});
      continue;
    }
    const double run_s = r.iteration.total_s * iterations;
    const double total_s = r.queue_wait_s + run_s;
    table.add_row({spec->name, fmt_double(r.provisioning_hours, 1),
                   format_seconds(r.queue_wait_s), format_seconds(run_s),
                   format_seconds(total_s),
                   fmt_double(r.cost_per_iteration_usd * iterations, 2),
                   "ok"});
  }
  return table;
}

Table summary_table(CampaignEngine& engine, int ranks) {
  Table table({"platform", "porting[h]", "median wait", "max ranks",
               "RD s/iter", "RD $/iter", "NS s/iter", "NS $/iter"});
  std::vector<Experiment> batch;
  for (const auto* spec : platform::all_platforms()) {
    Experiment rd;
    rd.app = perf::AppKind::kReactionDiffusion;
    rd.platform = spec->name;
    rd.ranks = ranks;
    batch.push_back(rd);
    Experiment ns = rd;
    ns.app = perf::AppKind::kNavierStokes;
    batch.push_back(ns);
  }
  const auto results = engine.run_batch(batch);
  std::size_t i = 0;
  for (const auto* spec : platform::all_platforms()) {
    const auto& r_rd = results[i++];
    const auto& r_ns = results[i++];
    const std::string max_ranks =
        spec->max_ranks == 0 ? std::to_string(spec->max_cores())
                             : std::to_string(spec->max_ranks);
    if (!r_rd.launched) {
      table.add_row({spec->name, fmt_double(r_rd.provisioning_hours, 1), "-",
                     max_ranks, "-", "-", "-", "-"});
      continue;
    }
    table.add_row({spec->name, fmt_double(r_rd.provisioning_hours, 1),
                   format_seconds(r_rd.queue_wait_s), max_ranks,
                   fmt_double(r_rd.iteration.total_s, 2),
                   fmt_double(r_rd.cost_per_iteration_usd, 4),
                   fmt_double(r_ns.iteration.total_s, 2),
                   fmt_double(r_ns.cost_per_iteration_usd, 4)});
  }
  return table;
}

}  // namespace hetero::core
