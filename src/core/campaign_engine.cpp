#include "core/campaign_engine.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hetero::core {

namespace {

/// Doubles go into the key bit-exactly so 0.02 and 0.020000001 never alias.
void append_bits(std::string& key, double v) {
  key += std::to_string(std::bit_cast<std::uint64_t>(v));
  key.push_back('|');
}

void append_int(std::string& key, long long v) {
  key += std::to_string(v);
  key.push_back('|');
}

/// True on threads currently executing a pool task; parallel_for uses it to
/// run nested fan-outs inline instead of deadlocking on its own pool.
thread_local bool t_inside_pool_task = false;

}  // namespace

int resolve_jobs(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("HETEROLAB_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0' && v > 0) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::string experiment_cache_key(const Experiment& e,
                                 std::uint64_t runner_seed) {
  std::string key;
  key.reserve(128);
  append_int(key, static_cast<long long>(e.app));
  key += e.platform;
  key.push_back('|');
  append_int(key, e.ranks);
  append_int(key, e.cells_per_rank_axis);
  append_int(key, e.element_order);
  append_int(key, static_cast<long long>(e.mode));
  append_int(key, e.direct_steps);
  append_int(key, e.ec2_spot_mix ? 1 : 0);
  append_int(key, e.ec2_placement_groups);
  append_bits(key, e.cross_group_penalty);
  append_bits(key, e.ec2_spot_bid_usd);
  // Fault/recovery knobs change the result; omitting any would alias
  // memoized entries across different fault configurations.
  append_bits(key, e.faults.rank_crash_rate);
  append_bits(key, e.faults.launch_failure_rate);
  append_bits(key, e.faults.reclaim_storm_rate);
  append_bits(key, e.faults.net_degrade_rate);
  append_bits(key, e.faults.net_degrade_factor);
  append_bits(key, e.faults.net_degrade_window_s);
  append_int(key, static_cast<long long>(e.recovery.kind));
  append_int(key, e.recovery.checkpoint_every);
  append_int(key, e.recovery.max_attempts);
  append_bits(key, e.recovery.backoff_base_s);
  append_bits(key, e.recovery.backoff_factor);
  append_bits(key, e.recovery.backoff_cap_s);
  append_int(key, e.recovery.shrink_ranks_on_crash ? 1 : 0);
  // Skew and balance knobs change both timings and (post-rebalance) the
  // partition; a skewed/balanced cell must never alias a plain one.
  append_bits(key, e.skew.slow_core_fraction);
  append_bits(key, e.skew.slow_core_factor);
  append_bits(key, e.skew.noise_rate);
  append_bits(key, e.skew.noise_factor);
  append_bits(key, e.skew.window_s);
  append_int(key, e.skew_assume_balanced ? 1 : 0);
  append_int(key, e.balance.enabled ? 1 : 0);
  append_bits(key, e.balance.threshold);
  append_int(key, e.balance.check_every);
  append_int(key, e.balance.min_steps);
  append_int(key, e.balance.max_rebalances);
  key += e.balance.mode;
  key.push_back('|');
  append_bits(key, e.balance.min_weight);
  append_bits(key, e.balance.max_weight);
  append_bits(key, e.balance.diffusion_eta);
  // Re-brokering policy knobs likewise: an adaptive run and a static run
  // of the same experiment must never share a memo entry.
  append_int(key, e.rebroker.enabled ? 1 : 0);
  key += e.rebroker.fallback_platform;
  key.push_back('|');
  append_int(key, e.rebroker.target_ranks);
  append_bits(key, e.rebroker.hysteresis);
  append_bits(key, e.rebroker.migrate_budget_usd);
  append_int(key, e.rebroker.sample_every);
  append_bits(key, e.rebroker.deadline_s);
  append_int(key, e.rebroker.max_migrations);
  key += e.rebroker.run_label;
  key.push_back('|');
  append_int(key, static_cast<long long>(e.seed));
  append_int(key, static_cast<long long>(runner_seed));
  return key;
}

/// Work-stealing pool: one index deque per worker, own-queue FIFO pops,
/// tail steals from the neighbours. Only one batch is in flight at a time
/// (parallel_for serializes callers), so tasks are plain indices into the
/// current batch's body.
class CampaignEngine::Pool {
 public:
  explicit Pool(int workers) : queues_(static_cast<std::size_t>(workers)) {
    for (auto& q : queues_) {
      q = std::make_unique<Queue>();
    }
    threads_.reserve(queues_.size());
    for (std::size_t id = 0; id < queues_.size(); ++id) {
      threads_.emplace_back([this, id] { worker_main(id); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
  }

  /// Distributes [0, n) over the workers, participates in the drain, and
  /// rethrows the failure with the lowest index once everything finished.
  void run(std::size_t n, const std::function<void(std::size_t)>& body,
           obs::Gauge& queue_depth) {
    std::lock_guard<std::mutex> batch_guard(batch_mutex_);
    body_ = &body;
    queue_depth_ = &queue_depth;
    error_ = nullptr;
    error_index_ = std::numeric_limits<std::size_t>::max();
    remaining_.store(n, std::memory_order_relaxed);
    unclaimed_.store(n, std::memory_order_relaxed);
    queue_depth.set(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[i % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mutex);
      q.indices.push_back(i);
    }
    {
      // Taking the mutex orders the unclaimed_ store before any sleeping
      // worker's next predicate check, so the notify cannot be lost.
      std::lock_guard<std::mutex> lock(wake_mutex_);
    }
    wake_cv_.notify_all();

    // The submitting thread works too: pool width `jobs` means `jobs`
    // executors, not jobs + 1.
    std::size_t index = 0;
    while (claim(0, index)) {
      execute(index);
    }
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [&] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
    }
    body_ = nullptr;
    queue_depth.set(0.0);
    if (error_ != nullptr) {
      std::rethrow_exception(error_);
    }
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> indices;
  };

  bool claim(std::size_t home, std::size_t& index) {
    if (unclaimed_.load(std::memory_order_acquire) == 0) {
      return false;
    }
    // Own queue first (front: submission order), then steal tails.
    for (std::size_t attempt = 0; attempt < queues_.size(); ++attempt) {
      Queue& q = *queues_[(home + attempt) % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (q.indices.empty()) {
        continue;
      }
      if (attempt == 0) {
        index = q.indices.front();
        q.indices.pop_front();
      } else {
        index = q.indices.back();
        q.indices.pop_back();
      }
      const std::size_t left =
          unclaimed_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      if (queue_depth_ != nullptr) {
        queue_depth_->set(static_cast<double>(left));
      }
      return true;
    }
    return false;
  }

  void execute(std::size_t index) {
    const bool was_inside = t_inside_pool_task;
    t_inside_pool_task = true;
    try {
      (*body_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (index < error_index_) {
        error_index_ = index;
        error_ = std::current_exception();
      }
    }
    t_inside_pool_task = was_inside;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_cv_.notify_all();
    }
  }

  void worker_main(std::size_t id) {
    for (;;) {
      std::size_t index = 0;
      if (claim(id, index)) {
        execute(index);
        continue;
      }
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || unclaimed_.load(std::memory_order_acquire) > 0;
      });
      if (shutdown_) {
        return;
      }
    }
  }

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex batch_mutex_;  // one batch in flight at a time
  const std::function<void(std::size_t)>* body_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::size_t> unclaimed_{0};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool shutdown_ = false;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::size_t error_index_ = std::numeric_limits<std::size_t>::max();
};

struct CampaignEngine::Impl {
  explicit Impl(std::uint64_t seed)
      : runner(seed),
        cache_hit_count(obs::metrics().counter("engine.cache_hits")),
        cache_miss_count(obs::metrics().counter("engine.cache_misses")),
        jobs_completed(obs::metrics().counter("engine.jobs_completed")),
        queue_depth(obs::metrics().gauge("engine.queue_depth")),
        job_latency(obs::metrics().histogram("engine.job_latency_s")) {}

  ExperimentRunner runner;

  // Memoization: key -> entry; the first submitter computes, later ones
  // wait on the entry's condition variable (in-flight deduplication).
  struct CacheEntry {
    std::mutex mutex;
    std::condition_variable cv;
    bool ready = false;
    std::exception_ptr error;
    ExperimentResult result;
  };
  std::mutex cache_mutex;
  std::unordered_map<std::string, std::shared_ptr<CacheEntry>> cache;

  // Thread budget (in-flight simulated threads, not jobs).
  std::mutex budget_mutex;
  std::condition_variable budget_cv;
  int inflight_threads = 0;
  int peak_inflight = 0;

  // Lazily built pool (never built when jobs == 1).
  std::mutex pool_mutex;
  std::unique_ptr<Pool> pool;

  // Engine counters (stats() snapshot).
  std::atomic<std::uint64_t> jobs_run{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> store_hits{0};
  std::atomic<std::uint64_t> batches{0};

  // Hoisted obs metrics (registry references are stable).
  obs::Counter& cache_hit_count;
  obs::Counter& cache_miss_count;
  obs::Counter& jobs_completed;
  obs::Gauge& queue_depth;
  obs::Histogram& job_latency;
};

CampaignEngine::CampaignEngine(std::uint64_t seed,
                               CampaignEngineOptions options)
    : seed_(seed), options_(options) {
  jobs_ = resolve_jobs(options_.jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  budget_ = options_.thread_budget > 0 ? options_.thread_budget
                                       : std::max(jobs_, hw_threads);
  impl_ = std::make_unique<Impl>(seed_);
}

CampaignEngine::~CampaignEngine() = default;

int CampaignEngine::experiment_weight(const Experiment& e) const {
  // Trace/metrics output installs process-global observers, so those runs
  // take the whole budget and execute alone.
  if (!e.trace_path.empty() || !e.metrics_path.empty()) {
    return budget_;
  }
  return e.mode == Mode::kDirect ? std::max(1, e.ranks) : 1;
}

ExperimentResult CampaignEngine::execute_uncached(const Experiment& e) {
  const int weight = experiment_weight(e);
  {
    std::unique_lock<std::mutex> lock(impl_->budget_mutex);
    // A job heavier than the whole budget is admitted only on an idle
    // engine (and then blocks everything else until it finishes).
    impl_->budget_cv.wait(lock, [&] {
      return impl_->inflight_threads == 0 ||
             impl_->inflight_threads + weight <= budget_;
    });
    impl_->inflight_threads += weight;
    impl_->peak_inflight =
        std::max(impl_->peak_inflight, impl_->inflight_threads);
  }
  const auto started = std::chrono::steady_clock::now();
  ExperimentResult result;
  std::exception_ptr error;
  try {
    result = impl_->runner.run(e);
  } catch (...) {
    error = std::current_exception();
  }
  const double latency_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  {
    std::lock_guard<std::mutex> lock(impl_->budget_mutex);
    impl_->inflight_threads -= weight;
  }
  impl_->budget_cv.notify_all();
  impl_->jobs_run.fetch_add(1, std::memory_order_relaxed);
  impl_->jobs_completed.increment();
  impl_->job_latency.observe(latency_s);
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
  return result;
}

ExperimentResult CampaignEngine::run(const Experiment& e) {
  // With an executor installed, single runs are one-element batches so the
  // memo/store/dispatch flow stays in one place. Trace/metrics runs are
  // exempt: they must execute in *this* process for the files to appear.
  if (options_.executor != nullptr && e.trace_path.empty() &&
      e.metrics_path.empty()) {
    return run_batch_executor({e})[0];
  }
  // Side-effecting runs (trace/metrics files) are never replayed from the
  // cache: the caller wants the files written.
  if (!options_.memoize || !e.trace_path.empty() || !e.metrics_path.empty()) {
    return execute_uncached(e);
  }
  const std::string key = experiment_cache_key(e, seed_);
  std::shared_ptr<Impl::CacheEntry> entry;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(impl_->cache_mutex);
    auto it = impl_->cache.find(key);
    if (it == impl_->cache.end()) {
      entry = std::make_shared<Impl::CacheEntry>();
      impl_->cache.emplace(key, entry);
      owner = true;
    } else {
      entry = it->second;
    }
  }
  if (owner) {
    impl_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    impl_->cache_miss_count.increment();
    try {
      ExperimentResult result;
      // Second cache level: the persistent store answers across restarts.
      const bool from_store = options_.result_store != nullptr &&
                              options_.result_store->load(key, result);
      if (from_store) {
        impl_->store_hits.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().counter("engine.store_hits").increment();
      } else {
        result = execute_uncached(e);
        if (options_.result_store != nullptr) {
          options_.result_store->save(key, result);
        }
      }
      {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->result = result;
        entry->ready = true;
      }
      entry->cv.notify_all();
      return result;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->error = std::current_exception();
        entry->ready = true;
      }
      entry->cv.notify_all();
      throw;
    }
  }
  impl_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  impl_->cache_hit_count.increment();
  std::unique_lock<std::mutex> lock(entry->mutex);
  entry->cv.wait(lock, [&] { return entry->ready; });
  if (entry->error != nullptr) {
    std::rethrow_exception(entry->error);
  }
  return entry->result;
}

void CampaignEngine::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  impl_->batches.fetch_add(1, std::memory_order_relaxed);
  obs::trace_instant("batch_begin", "engine", 0.0, "tasks",
                     static_cast<double>(n));
  if (n == 0) {
    return;
  }
  // Inline path: sequential reference (jobs == 1), trivial batches, and
  // nested fan-outs from inside a pool task.
  if (jobs_ <= 1 || n == 1 || t_inside_pool_task) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(impl_->pool_mutex);
      if (impl_->pool == nullptr) {
        // The submitter participates, so spawn jobs - 1 workers.
        impl_->pool = std::make_unique<Pool>(jobs_ - 1);
      }
    }
    impl_->pool->run(n, body, impl_->queue_depth);
  }
  obs::trace_instant("batch_end", "engine", 0.0, "tasks",
                     static_cast<double>(n));
}

std::vector<ExperimentResult> CampaignEngine::run_batch(
    const std::vector<Experiment>& batch) {
  if (options_.executor != nullptr) {
    return run_batch_executor(batch);
  }
  std::vector<ExperimentResult> results(batch.size());
  parallel_for(batch.size(),
               [&](std::size_t i) { results[i] = run(batch[i]); });
  return results;
}

std::vector<ExperimentResult> CampaignEngine::run_batch_executor(
    const std::vector<Experiment>& batch) {
  const std::size_t n = batch.size();
  impl_->batches.fetch_add(1, std::memory_order_relaxed);
  obs::trace_instant("batch_begin", "engine", 0.0, "tasks",
                     static_cast<double>(n));
  std::vector<ExperimentResult> results(n);
  std::vector<std::exception_ptr> errors(n);
  // Memoization happens here, on the supervisor side: only cache misses
  // cross the process boundary, and freshly computed results come back
  // through the same entry/result-store flow as the in-process path.
  std::vector<std::shared_ptr<Impl::CacheEntry>> owned(n);
  std::vector<std::shared_ptr<Impl::CacheEntry>> waiting(n);
  std::vector<std::size_t> inline_indices;
  std::vector<std::size_t> dispatch_indices;
  std::vector<Experiment> dispatch;
  for (std::size_t i = 0; i < n; ++i) {
    const Experiment& e = batch[i];
    if (!e.trace_path.empty() || !e.metrics_path.empty()) {
      // Process-global side effects: run locally, exclusively, afterwards.
      inline_indices.push_back(i);
      continue;
    }
    if (!options_.memoize) {
      dispatch_indices.push_back(i);
      dispatch.push_back(e);
      continue;
    }
    const std::string key = experiment_cache_key(e, seed_);
    std::shared_ptr<Impl::CacheEntry> entry;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(impl_->cache_mutex);
      auto it = impl_->cache.find(key);
      if (it == impl_->cache.end()) {
        entry = std::make_shared<Impl::CacheEntry>();
        impl_->cache.emplace(key, entry);
        owner = true;
      } else {
        entry = it->second;
      }
    }
    if (!owner) {
      impl_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      impl_->cache_hit_count.increment();
      waiting[i] = entry;
      continue;
    }
    impl_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    impl_->cache_miss_count.increment();
    ExperimentResult stored;
    if (options_.result_store != nullptr &&
        options_.result_store->load(key, stored)) {
      impl_->store_hits.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("engine.store_hits").increment();
      {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->result = stored;
        entry->ready = true;
      }
      entry->cv.notify_all();
      results[i] = std::move(stored);
      continue;
    }
    owned[i] = entry;
    dispatch_indices.push_back(i);
    dispatch.push_back(e);
  }
  if (!dispatch.empty()) {
    const std::vector<ExecOutcome> outcomes =
        options_.executor->execute(dispatch);
    HETERO_CHECK(outcomes.size() == dispatch.size());
    for (std::size_t d = 0; d < dispatch.size(); ++d) {
      const std::size_t i = dispatch_indices[d];
      const ExecOutcome& out = outcomes[d];
      impl_->jobs_run.fetch_add(1, std::memory_order_relaxed);
      impl_->jobs_completed.increment();
      if (out.failed) {
        errors[i] = std::make_exception_ptr(Error(out.error));
      } else {
        results[i] = out.result;
      }
      if (owned[i] != nullptr) {
        if (!out.failed && options_.result_store != nullptr) {
          const std::string key = experiment_cache_key(batch[i], seed_);
          options_.result_store->save(key, out.result);
        }
        {
          std::lock_guard<std::mutex> lock(owned[i]->mutex);
          owned[i]->result = out.result;
          owned[i]->error = errors[i];
          owned[i]->ready = true;
        }
        owned[i]->cv.notify_all();
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (waiting[i] == nullptr) {
      continue;
    }
    std::unique_lock<std::mutex> lock(waiting[i]->mutex);
    waiting[i]->cv.wait(lock, [&] { return waiting[i]->ready; });
    if (waiting[i]->error != nullptr) {
      errors[i] = waiting[i]->error;
    } else {
      results[i] = waiting[i]->result;
    }
  }
  for (const std::size_t i : inline_indices) {
    try {
      results[i] = execute_uncached(batch[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
  obs::trace_instant("batch_end", "engine", 0.0, "tasks",
                     static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i] != nullptr) {
      std::rethrow_exception(errors[i]);
    }
  }
  return results;
}

CampaignEngineStats CampaignEngine::stats() const {
  CampaignEngineStats out;
  out.jobs_run = impl_->jobs_run.load(std::memory_order_relaxed);
  out.cache_hits = impl_->cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = impl_->cache_misses.load(std::memory_order_relaxed);
  out.store_hits = impl_->store_hits.load(std::memory_order_relaxed);
  out.batches = impl_->batches.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->budget_mutex);
    out.peak_inflight_threads = impl_->peak_inflight;
  }
  return out;
}

}  // namespace hetero::core
