#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "cloud/ec2_service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/platform_spec.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace hetero::core {

namespace {

/// Re-acquires enough hosts to reach `hosts` total, spot-first.
/// Returns instances added and the setup delay.
cloud::Launch acquire(cloud::Ec2Service& service, int hosts, int have,
                      const CampaignConfig& config,
                      const std::vector<int>& groups, int* spot_granted) {
  cloud::Launch combined;
  const int missing = hosts - have;
  if (missing <= 0) {
    return combined;
  }
  if (config.use_spot) {
    auto spot = service.request_spot("cc2.8xlarge", missing,
                                     config.spot_bid_usd, groups);
    *spot_granted = static_cast<int>(spot.instances.size());
    combined = std::move(spot);
  } else {
    *spot_granted = 0;
  }
  const int still_missing =
      missing - static_cast<int>(combined.instances.size());
  if (still_missing > 0) {
    auto fill =
        service.request_on_demand("cc2.8xlarge", still_missing, groups[0]);
    combined.instances.insert(combined.instances.end(),
                              fill.instances.begin(), fill.instances.end());
    combined.ready_after_s =
        std::max(combined.ready_after_s, fill.ready_after_s);
  }
  return combined;
}

}  // namespace

CampaignResult simulate_ec2_campaign(const CampaignConfig& config) {
  HETERO_REQUIRE(config.ranks >= 1 && config.iterations >= 1,
                 "campaign needs ranks and iterations");
  const auto& spec = platform::ec2();
  const int hosts =
      (config.ranks + spec.cores_per_node() - 1) / spec.cores_per_node();

  cloud::Ec2Service service(config.seed);
  if (config.faults.enabled()) {
    service.set_fault_plan(resil::FaultPlan(
        config.faults, hash_combine(0x73746f726dULL /* "storm" */,
                                    config.seed)));
  }
  service.authorize_intranet_tcp();
  std::vector<int> groups;
  for (int g = 0; g < 4; ++g) {
    groups.push_back(service.create_placement_group("hl-" + std::to_string(g)));
  }

  CampaignResult result;
  int spot_granted = 0;
  auto launch = acquire(service, hosts, 0, config, groups, &spot_granted);
  result.initial_spot_hosts = spot_granted;
  std::vector<cloud::Instance> assembly = launch.instances;
  service.advance(launch.ready_after_s);

  // Iteration time on the current assembly (recomputed after reshaping —
  // the blended rate changes but the topology shape stays hosts x 16).
  perf::ModelConfig model = config.app == perf::AppKind::kNavierStokes
                                ? perf::ns_model()
                                : perf::rd_model();
  HETERO_REQUIRE(config.cells_per_rank_axis >= 1,
                 "campaign needs cells_per_rank_axis >= 1");
  model.cells_per_rank_axis = config.cells_per_rank_axis;
  auto iteration_seconds = [&]() {
    const auto topo = service.assembly_topology(assembly, config.ranks, 0.02);
    return perf::project_iteration(model, topo, spec.cpu_model(),
                                   config.ranks)
        .total_s;
  };
  double iter_s = iteration_seconds();

  int done = 0;
  int last_checkpoint = 0;

  // Any advance may cross an hour boundary and lose spot hosts; purge them
  // from the assembly and report whether the job was interrupted.
  auto advance_and_purge = [&](double seconds) {
    const auto reclaimed = service.advance(seconds);
    for (const auto& gone : reclaimed) {
      assembly.erase(std::remove_if(assembly.begin(), assembly.end(),
                                    [&](const cloud::Instance& inst) {
                                      return inst.id == gone.id;
                                    }),
                     assembly.end());
    }
    return !reclaimed.empty();
  };
  auto roll_back = [&]() {
    ++result.interruptions;
    result.iterations_redone += done - last_checkpoint;
    obs::metrics().counter("campaign.interruptions").increment();
    obs::metrics()
        .counter("campaign.iterations_redone")
        .add(static_cast<double>(done - last_checkpoint));
    obs::trace_instant("spot_interruption", "campaign", service.now_s(),
                       "iterations_lost",
                       static_cast<double>(done - last_checkpoint));
    done = last_checkpoint;
  };

  while (done < config.iterations) {
    HETERO_REQUIRE(service.now_s() < config.max_wall_clock_s,
                   "campaign exceeded the wall-clock safety limit");
    // Restore a full assembly first (interruptions may have shrunk it).
    if (static_cast<int>(assembly.size()) < hosts) {
      int regranted = 0;
      auto refill =
          acquire(service, hosts, static_cast<int>(assembly.size()), config,
                  groups, &regranted);
      assembly.insert(assembly.end(), refill.instances.begin(),
                      refill.instances.end());
      if (advance_and_purge(refill.ready_after_s)) {
        roll_back();
        continue;  // lost hosts while booting; re-acquire
      }
      iter_s = iteration_seconds();
    }

    // Run until the next hour boundary (where the spot market can move).
    const double now = service.now_s();
    const double next_hour = (std::floor(now / 3600.0) + 1.0) * 3600.0;
    double budget = next_hour - now;
    while (done < config.iterations && budget >= iter_s) {
      advance_and_purge(iter_s);  // stays within the hour: no reclaims
      budget -= iter_s;
      ++done;
      if (config.checkpoint_interval > 0 &&
          (done - last_checkpoint) >= config.checkpoint_interval &&
          done < config.iterations) {
        advance_and_purge(std::min(budget, config.checkpoint_write_s));
        budget -= config.checkpoint_write_s;
        last_checkpoint = done;
        ++result.checkpoints_written;
        obs::metrics().counter("campaign.checkpoints").increment();
        obs::trace_instant("checkpoint", "campaign", service.now_s(),
                           "iterations_done", static_cast<double>(done));
        if (budget < 0.0) {
          budget = 0.0;
        }
      }
    }
    if (done >= config.iterations) {
      break;
    }
    // Cross the hour boundary: the market may reclaim spot hosts.
    if (advance_and_purge(budget + 1.0)) {
      roll_back();
    }
  }

  service.terminate(assembly);
  result.completed = true;
  result.wall_clock_s = service.now_s();
  result.billed_usd = service.billed_usd();
  result.accrued_usd = service.accrued_usd();
  return result;
}

}  // namespace hetero::core
