#pragma once

/// \file campaign_engine.hpp
/// Parallel evaluation of experiment campaigns.
///
/// The paper's evaluation is a *campaign*: hundreds of
/// (app x platform x rank-count x EC2-config) experiments, each deterministic
/// and independent of the others. The CampaignEngine turns that independence
/// into throughput without giving up reproducibility:
///
///   * a work-stealing thread pool evaluates batches concurrently, with
///     results reported in submission order — output is byte-identical to a
///     sequential sweep regardless of completion order or job count;
///   * a memoization cache keyed on the full experiment descriptor plus the
///     runner seed computes repeated points once (the broker re-evaluating
///     objectives, fig4/fig6 sharing a sweep, ablations re-running their
///     baselines);
///   * a thread budget caps *in-flight simulated threads*, not just jobs: a
///     direct-mode experiment spawns one host thread per simulated rank, so
///     it weighs `ranks` against the budget while a modeled experiment
///     weighs 1. Experiments with trace/metrics side effects run exclusively
///     (the trace recorder installation is process-global).
///
/// Instrumented with hetero::obs metrics (queue depth, cache hit/miss
/// counters, per-job latency histogram) and host-time trace instants per
/// batch.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace hetero::core {

/// Optional persistence hook for the memoization cache: the engine consults
/// it before computing a memoizable experiment and offers every freshly
/// computed result back. Implementations must be thread-safe; loads must
/// reproduce the saved result bit-exactly (svc::MemoStore adapts this onto
/// an append-only on-disk log, making repeated sweeps incremental across
/// process restarts).
class ExperimentResultStore {
 public:
  virtual ~ExperimentResultStore() = default;
  /// True and fills `out` when `key` is present.
  virtual bool load(const std::string& key, ExperimentResult& out) = 0;
  /// Offers a freshly computed result for persistence.
  virtual void save(const std::string& key, const ExperimentResult& result) = 0;
};

/// Outcome of one executor-run experiment: either a result or the message
/// of the exception the experiment body threw (an application error —
/// distinct from a *worker* failure, which the executor absorbs itself via
/// retry/quarantine and reports as a failed result).
struct ExecOutcome {
  ExperimentResult result;
  bool failed = false;
  std::string error;
};

/// Pluggable execution backend for experiment batches. When an executor is
/// installed the engine keeps its memoization/result-store layers but
/// delegates the actual computation of cache misses to the executor —
/// `proc::Supervisor` implements this over a supervised pool of forked
/// worker processes. Implementations must tolerate concurrent calls
/// (serialize internally) and must return outcomes in submission order.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;
  virtual std::vector<ExecOutcome> execute(
      const std::vector<Experiment>& batch) = 0;
};

struct CampaignEngineOptions {
  /// Concurrent jobs (pool width). 0 = resolve_jobs(0): the HETEROLAB_JOBS
  /// environment variable if set, else hardware concurrency. 1 = run
  /// everything inline on the calling thread (the sequential reference
  /// path — no pool threads are ever created).
  int jobs = 0;
  /// Cap on in-flight simulated threads (direct-mode experiments weigh
  /// `ranks`, modeled ones weigh 1). 0 = max(jobs, hardware concurrency).
  /// A single job heavier than the whole budget runs alone.
  int thread_budget = 0;
  /// Compute repeated experiment descriptors once and replay the result.
  bool memoize = true;
  /// Persistent second level of the memoization cache; not owned, must
  /// outlive the engine. nullptr (the default) keeps memoization purely
  /// in-memory. Ignored when memoize is false.
  ExperimentResultStore* result_store = nullptr;
  /// Multi-process execution backend; not owned, must outlive the engine.
  /// nullptr (the default) computes everything in-process on the thread
  /// pool. Experiments with trace/metrics side effects always run
  /// in-process (the recorder installation is process-global), and
  /// parallel_for fan-outs keep using the pool — `jobs` semantics are
  /// unchanged.
  BatchExecutor* executor = nullptr;
};

struct CampaignEngineStats {
  /// Experiments actually executed (cache misses + uncacheable runs).
  std::uint64_t jobs_run = 0;
  /// Experiments answered from the memoization cache.
  std::uint64_t cache_hits = 0;
  /// Experiments that populated the cache.
  std::uint64_t cache_misses = 0;
  /// Cache misses answered by the persistent result store (no compute).
  std::uint64_t store_hits = 0;
  /// parallel_for / run_batch invocations.
  std::uint64_t batches = 0;
  /// High-water mark of the in-flight simulated-thread weight.
  int peak_inflight_threads = 0;
};

/// Job-count resolution used by every `--jobs` consumer: an explicit
/// request wins, then a positive integer HETEROLAB_JOBS, then hardware
/// concurrency (at least 1).
int resolve_jobs(int requested);

class CampaignEngine {
 public:
  explicit CampaignEngine(std::uint64_t seed = 42,
                          CampaignEngineOptions options = {});
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Resolved pool width.
  int jobs() const { return jobs_; }
  /// Resolved in-flight simulated-thread cap.
  int thread_budget() const { return budget_; }
  /// Seed of the underlying ExperimentRunner.
  std::uint64_t seed() const { return seed_; }

  /// Runs (or replays) one experiment. Thread-safe; callable from inside
  /// parallel_for bodies. Experiments with trace/metrics output paths
  /// bypass the cache and run exclusively.
  ExperimentResult run(const Experiment& experiment);

  /// Evaluates a batch concurrently; results[i] always corresponds to
  /// batch[i], independent of completion order. Duplicate descriptors
  /// within the batch are computed once. The first failure (by submission
  /// index) is rethrown after the batch drains.
  std::vector<ExperimentResult> run_batch(const std::vector<Experiment>& batch);

  /// Generic deterministic fan-out: body(i) for i in [0, n), spread over
  /// the pool (inline when jobs == 1). Used for non-Experiment work such as
  /// campaign simulations and broker candidate prediction. Not reentrant:
  /// a body that calls parallel_for again runs that inner loop inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Snapshot of the engine counters.
  CampaignEngineStats stats() const;

 private:
  class Pool;

  std::vector<ExperimentResult> run_batch_executor(
      const std::vector<Experiment>& batch);
  ExperimentResult execute_uncached(const Experiment& experiment);
  int experiment_weight(const Experiment& experiment) const;

  std::uint64_t seed_;
  CampaignEngineOptions options_;
  int jobs_ = 1;
  int budget_ = 1;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Canonical cache key: every Experiment field that influences the result,
/// plus the runner seed. Exposed for tests.
std::string experiment_cache_key(const Experiment& experiment,
                                 std::uint64_t runner_seed);

}  // namespace hetero::core
