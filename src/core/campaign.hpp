#pragma once

/// \file campaign.hpp
/// End-to-end simulation of a multi-iteration production campaign on EC2
/// spot instances with checkpoint/restart — the "further conditioning may
/// provide a high-availability computing cluster with services such as
/// monitoring or automatic checkpointing" that §VI-D sketches as future
/// work, made concrete.
///
/// The simulator drives the cloud service hour by hour: spot instances are
/// reclaimed whenever the market moves above the bid, losing all progress
/// since the last checkpoint; replacements are (re)acquired (topping up
/// with on-demand hosts when the market is dry); every instance-hour is
/// billed Amazon-style. The checkpoint interval trades I/O overhead against
/// redone work — swept by bench_ablation_checkpoint.

#include <cstdint>

#include "perf/scaling_model.hpp"
#include "resil/fault_plan.hpp"

namespace hetero::core {

struct CampaignConfig {
  perf::AppKind app = perf::AppKind::kReactionDiffusion;
  int ranks = 512;
  /// Elements per axis per rank (the paper's weak-scaling load is 20).
  int cells_per_rank_axis = 20;
  /// Time-step iterations the campaign must complete.
  int iterations = 500;
  /// Iterations between checkpoints; 0 disables checkpointing (an
  /// interruption then restarts the whole campaign).
  int checkpoint_interval = 25;
  /// Wall-clock cost of writing one checkpoint (gather + storage), seconds.
  double checkpoint_write_s = 30.0;
  /// Acquire spot instances at this bid; on-demand fills any shortfall.
  bool use_spot = true;
  double spot_bid_usd = 0.70;
  std::uint64_t seed = 42;
  /// Injected faults (reclaim storms use `reclaim_storm_rate`); the plan is
  /// derived from `seed`, so the storm schedule replays deterministically.
  resil::FaultSpec faults;
  /// Safety valve for pathological configurations.
  double max_wall_clock_s = 60.0 * 24.0 * 3600.0;
};

struct CampaignResult {
  bool completed = false;
  double wall_clock_s = 0.0;
  /// Whole-instance-hour (Amazon-style) bill for the campaign.
  double billed_usd = 0.0;
  /// Pro-rated accrual, for comparison.
  double accrued_usd = 0.0;
  int interruptions = 0;
  int iterations_redone = 0;
  int checkpoints_written = 0;
  /// Spot instances obtained at the initial acquisition.
  int initial_spot_hosts = 0;
};

/// Runs the campaign simulation; deterministic in config.seed.
CampaignResult simulate_ec2_campaign(const CampaignConfig& config);

}  // namespace hetero::core
