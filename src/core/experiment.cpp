#include "core/experiment.hpp"

#include <cmath>
#include <memory>
#include <optional>

#include "apps/ns_solver.hpp"
#include "apps/rd_solver.hpp"
#include "cloud/ec2_service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "provision/planner.hpp"
#include "sched/scheduler.hpp"
#include "simmpi/runtime.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"

namespace hetero::core {

namespace {

perf::ModelConfig model_for(const Experiment& e) {
  perf::ModelConfig m = e.app == perf::AppKind::kReactionDiffusion
                            ? perf::rd_model()
                            : perf::ns_model();
  m.cells_per_rank_axis = e.cells_per_rank_axis;
  return m;
}

/// Installs a trace recorder for the duration of a scope; uninstalls on
/// exit so an exception inside the run cannot leave a dangling recorder.
class ScopedTraceInstall {
 public:
  explicit ScopedTraceInstall(obs::TraceRecorder* recorder) {
    obs::set_current_trace(recorder);
  }
  ScopedTraceInstall(const ScopedTraceInstall&) = delete;
  ScopedTraceInstall& operator=(const ScopedTraceInstall&) = delete;
  ~ScopedTraceInstall() { obs::set_current_trace(nullptr); }
};

}  // namespace

ExperimentRunner::ExperimentRunner(std::uint64_t seed) : seed_(seed) {}

ExperimentResult ExperimentRunner::run(const Experiment& experiment) {
  HETERO_REQUIRE(experiment.ranks >= 1, "experiment needs ranks >= 1");
  const platform::PlatformSpec& spec =
      platform::platform_by_name(experiment.platform);

  ExperimentResult result;
  result.provisioning_hours =
      provision::plan_provisioning(spec).total_hours();

  // Availability: can the platform even launch this job, and how long does
  // it sit in the queue (or wait for instance boot)?
  Rng rng(seed_ ^ experiment.seed);
  const auto scheduler = sched::make_scheduler(spec);
  const auto outcome =
      scheduler->submit({experiment.ranks, /*estimated_runtime_s=*/3600.0},
                        rng);
  if (!outcome.launched) {
    result.launched = false;
    result.failure_reason = outcome.failure_reason;
    return result;
  }
  result.launched = true;
  result.queue_wait_s = outcome.wait_s;
  result.hosts = (experiment.ranks + spec.cores_per_node() - 1) /
                 spec.cores_per_node();

  ExperimentResult run_part =
      experiment.mode == Mode::kModeled ? run_modeled(experiment, spec)
                                        : run_direct(experiment, spec);
  // Merge the run-phase output into the availability/effort scaffold.
  run_part.launched = true;
  run_part.queue_wait_s = result.queue_wait_s;
  run_part.provisioning_hours = result.provisioning_hours;
  run_part.hosts = result.hosts;
  if (!experiment.metrics_path.empty()) {
    obs::metrics().write_json(experiment.metrics_path);
  }
  return run_part;
}

ExperimentResult ExperimentRunner::run_modeled(
    const Experiment& experiment, const platform::PlatformSpec& spec) {
  ExperimentResult result;
  const perf::ModelConfig model = model_for(experiment);
  result.work_per_rank = perf::work_per_rank(model, experiment.ranks);

  if (spec.name == "ec2") {
    // Build the assembly through the cloud service so placement groups,
    // the spot market, and billing semantics all apply.
    cloud::Ec2Service service(seed_ ^ experiment.seed);
    service.authorize_intranet_tcp();
    const int hosts = (experiment.ranks + spec.cores_per_node() - 1) /
                      spec.cores_per_node();
    std::vector<int> groups;
    for (int g = 0; g < std::max(1, experiment.ec2_placement_groups); ++g) {
      groups.push_back(
          service.create_placement_group("hl-" + std::to_string(g)));
    }
    std::vector<cloud::Instance> instances;
    if (experiment.ec2_spot_mix) {
      auto spot = service.request_spot("cc2.8xlarge", hosts,
                                       experiment.ec2_spot_bid_usd, groups);
      instances = spot.instances;
      result.spot_hosts = static_cast<int>(instances.size());
      const int missing = hosts - result.spot_hosts;
      if (missing > 0) {
        // The paper "never succeeded in establishing a full 63-host spot
        // configuration" and topped up with regularly priced hosts.
        auto fill = service.request_on_demand(
            "cc2.8xlarge", missing,
            groups[static_cast<std::size_t>(result.spot_hosts) %
                   groups.size()]);
        instances.insert(instances.end(), fill.instances.begin(),
                         fill.instances.end());
      }
    } else {
      instances =
          service.request_on_demand("cc2.8xlarge", hosts, groups.front())
              .instances;
    }
    const auto topo = service.assembly_topology(
        instances, experiment.ranks, experiment.cross_group_penalty);
    result.iteration = perf::project_iteration(model, topo, spec.cpu_model(),
                                               experiment.ranks);
    // Per-iteration cost at the blended hourly rate of the assembly.
    double hourly = 0.0;
    for (const auto& inst : instances) {
      hourly += inst.hourly_usd;
    }
    result.cost_per_iteration_usd = hourly * result.iteration.total_s / 3600.0;
    result.est_cost_per_iteration_usd =
        hosts * cloud::instance_type("cc2.8xlarge").typical_spot_hourly_usd *
        result.iteration.total_s / 3600.0;
    result.hosts = hosts;
    return result;
  }

  const auto topo = spec.topology(experiment.ranks);
  result.iteration = perf::project_iteration(model, topo, spec.cpu_model(),
                                             experiment.ranks);
  result.cost_per_iteration_usd =
      spec.cost_usd(experiment.ranks, result.iteration.total_s);
  result.est_cost_per_iteration_usd = result.cost_per_iteration_usd;
  return result;
}

ExperimentResult ExperimentRunner::run_direct(
    const Experiment& experiment, const platform::PlatformSpec& spec) {
  ExperimentResult result;
  simmpi::Runtime runtime(spec.topology(experiment.ranks));

  std::unique_ptr<obs::TraceRecorder> recorder;
  std::optional<ScopedTraceInstall> install;
  if (!experiment.trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>(experiment.ranks);
    install.emplace(recorder.get());
  }

  // Global mesh: cells_per_rank_axis^3 per rank, cube decomposition.
  const int k = static_cast<int>(std::round(std::cbrt(experiment.ranks)));
  HETERO_REQUIRE(k * k * k == experiment.ranks,
                 "direct mode needs a cubic rank count (1, 8, 27, ...)");
  const int global_cells = experiment.cells_per_rank_axis * k;

  SampleStats assembly;
  SampleStats precond;
  SampleStats solve;
  SampleStats total;
  double nodal_error = 0.0;
  bool converged = true;
  apps::WorkCounts work;
  std::int64_t iters_total = 0;

  runtime.run([&](simmpi::Comm& comm) {
    std::vector<apps::StepRecord> records;
    if (experiment.app == perf::AppKind::kReactionDiffusion) {
      apps::RdConfig config;
      config.global_cells = global_cells;
      config.cpu = spec.cpu_model();
      apps::RdSolver solver(comm, config);
      records = solver.run(experiment.direct_steps);
    } else {
      apps::NsConfig config;
      config.global_cells = global_cells;
      config.cpu = spec.cpu_model();
      apps::NsSolver solver(comm, config);
      records = solver.run(experiment.direct_steps);
    }
    if (comm.rank() == 0) {
      for (const auto& r : records) {
        assembly.add(r.timing.assembly_s);
        precond.add(r.timing.preconditioner_s);
        solve.add(r.timing.solve_s);
        total.add(r.timing.total_s);
        nodal_error = std::max(nodal_error, r.nodal_error);
        converged = converged && r.solver_converged;
        work = r.work;
        iters_total += r.solver_iterations;
      }
    }
  });

  if (recorder) {
    recorder->write_chrome_json(experiment.trace_path);
  }

  result.iteration.assembly_s = assembly.mean();
  result.iteration.preconditioner_s = precond.mean();
  result.iteration.solve_s = solve.mean();
  result.iteration.total_s = total.mean();
  result.iteration.solver_iterations =
      static_cast<double>(iters_total) / experiment.direct_steps;
  result.work_per_rank = work;
  result.nodal_error = nodal_error;
  result.solver_converged = converged;
  result.cost_per_iteration_usd =
      spec.cost_usd(experiment.ranks, result.iteration.total_s);
  result.est_cost_per_iteration_usd = result.cost_per_iteration_usd;
  return result;
}

}  // namespace hetero::core
