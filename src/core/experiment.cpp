#include "core/experiment.hpp"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>

#include "apps/ns_solver.hpp"
#include "apps/rd_solver.hpp"
#include "cloud/ec2_service.hpp"
#include "io/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "provision/planner.hpp"
#include "rebroker/controller.hpp"
#include "sched/scheduler.hpp"
#include "simmpi/runtime.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/stats.hpp"

namespace hetero::core {

namespace {

perf::ModelConfig model_for(const Experiment& e) {
  perf::ModelConfig m = e.app == perf::AppKind::kReactionDiffusion
                            ? perf::rd_model()
                            : perf::ns_model();
  m.cells_per_rank_axis = e.cells_per_rank_axis;
  if (e.app == perf::AppKind::kNavierStokes) {
    m.ns_velocity_order = e.element_order;
    if (e.element_order >= 2) {
      // Taylor-Hood trades the stabilization terms for a heavier saddle
      // point: the velocity block grows and GMRES needs more iterations
      // per step than the stabilized equal-order pair.
      m.base_solver_iterations *= 1.5;
    }
  }
  return m;
}

/// Installs a trace recorder for the duration of a scope; uninstalls on
/// exit so an exception inside the run cannot leave a dangling recorder.
class ScopedTraceInstall {
 public:
  explicit ScopedTraceInstall(obs::TraceRecorder* recorder) {
    obs::set_current_trace(recorder);
  }
  ScopedTraceInstall(const ScopedTraceInstall&) = delete;
  ScopedTraceInstall& operator=(const ScopedTraceInstall&) = delete;
  ~ScopedTraceInstall() { obs::set_current_trace(nullptr); }
};

struct LbMetrics {
  obs::Counter& checks = obs::metrics().counter("lb.checks");
  obs::Counter& rebalances = obs::metrics().counter("lb.rebalances");
};

LbMetrics& lb_metrics() {
  static LbMetrics metrics;
  return metrics;
}

struct ResilMetrics {
  obs::Counter& faults = obs::metrics().counter("resil.faults_injected");
  obs::Counter& launch_retries =
      obs::metrics().counter("resil.launch_retries");
  obs::Counter& checkpoints =
      obs::metrics().counter("resil.checkpoints_written");
  obs::Counter& steps_wasted = obs::metrics().counter("resil.steps_wasted");
  obs::Counter& steps_recovered =
      obs::metrics().counter("resil.steps_recovered");
  obs::Counter& retry_delay_s = obs::metrics().counter("resil.retry_delay_s");
  obs::Counter& wasted_cost_usd =
      obs::metrics().counter("resil.wasted_cost_usd");
  obs::Counter& recoveries = obs::metrics().counter("resil.recoveries");
  obs::Counter& unrecovered = obs::metrics().counter("resil.unrecovered");
};

ResilMetrics& resil_metrics() {
  static ResilMetrics metrics;
  return metrics;
}

/// Scratch file for checkpoint-restart. Unique per (process, call) so
/// campaign-engine threads running direct experiments in parallel never
/// share a file.
std::string checkpoint_scratch_path() {
  static std::atomic<std::uint64_t> counter{0};
  return "/tmp/heterolab_ckpt_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".h5l";
}

// The two apps expose their BDF history under different names.
const la::DistVector& state_now(const apps::RdSolver& s) {
  return s.solution();
}
const la::DistVector& state_prev(const apps::RdSolver& s) {
  return s.previous_solution();
}
const la::DistVector& state_now(const apps::NsSolver& s) { return s.state(); }
const la::DistVector& state_prev(const apps::NsSolver& s) {
  return s.previous_state();
}

/// The experiment's skew plan for one platform. Salted like the fault
/// stream so skew draws never correlate with crashes or spot prices.
resil::SkewPlan make_skew_plan(const Experiment& e, std::uint64_t runner_seed,
                               const std::string& platform) {
  const std::uint64_t skew_seed =
      hash_combine(hash_combine(0x736b6577ULL /* "skew" */, runner_seed),
                   e.seed);
  return resil::SkewPlan(e.skew, skew_seed, platform);
}

/// Mean per-rank skew factors — the modeled (expected-value) view of the
/// direct-mode plan, hashed from the same stream.
std::vector<double> skew_mean_factors(const resil::SkewPlan& plan, int ranks) {
  std::vector<double> factors(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    factors[static_cast<std::size_t>(r)] = plan.mean_factor(r);
  }
  return factors;
}

}  // namespace

ExperimentRunner::ExperimentRunner(std::uint64_t seed) : seed_(seed) {}

resil::FaultPlan ExperimentRunner::make_plan(
    const Experiment& experiment) const {
  // Salted combine: the fault stream is independent of the Rng streams that
  // draw queue waits and spot prices from the same two seeds.
  const std::uint64_t plan_seed = hash_combine(
      hash_combine(0x726573696cULL /* "resil" */, seed_), experiment.seed);
  return resil::FaultPlan(experiment.faults, plan_seed);
}

ExperimentResult ExperimentRunner::run(const Experiment& experiment) {
  HETERO_REQUIRE(experiment.ranks >= 1, "experiment needs ranks >= 1");
  HETERO_REQUIRE(
      experiment.element_order == 1 || experiment.element_order == 2,
      "element_order must be 1 (P1/P1) or 2 (Taylor-Hood P2/P1)");
  HETERO_REQUIRE(experiment.element_order == 1 ||
                     experiment.app == perf::AppKind::kNavierStokes,
                 "the Taylor-Hood pair applies to the Navier-Stokes app only "
                 "(reaction-diffusion is a fixed P2 scalar discretization)");
  if (experiment.skew_assume_balanced) {
    HETERO_REQUIRE(experiment.mode == Mode::kModeled,
                   "assume-balanced is the analytic modeled projection; "
                   "direct runs balance for real via balance.enabled");
    HETERO_REQUIRE(experiment.skew.enabled(),
                   "assume-balanced needs skew enabled (a uniform platform "
                   "has nothing to balance)");
  }
  const platform::PlatformSpec& spec =
      platform::platform_by_name(experiment.platform);
  if (experiment.rebroker.enabled) {
    HETERO_REQUIRE(experiment.mode == Mode::kDirect,
                   "re-brokering needs --mode direct (the control loop "
                   "samples live step times)");
    // Validates the fallback name; throws for unknown platforms.
    platform::platform_by_name(experiment.rebroker.fallback_platform);
    if (experiment.rebroker.target_ranks > 0) {
      const int t = static_cast<int>(
          std::round(std::cbrt(experiment.rebroker.target_ranks)));
      HETERO_REQUIRE(t * t * t == experiment.rebroker.target_ranks,
                     "re-brokering target ranks must be cubic (1, 8, 27, ...)");
    }
  }
  if (experiment.balance.enabled) {
    HETERO_REQUIRE(experiment.mode == Mode::kDirect,
                   "load balancing needs --mode direct (the balancer samples "
                   "live per-rank step times)");
    HETERO_REQUIRE(!experiment.recovery.shrink_ranks_on_crash,
                   "load balancing conflicts with shrink-on-crash recovery "
                   "(weights are keyed to the original rank count)");
    HETERO_REQUIRE(!experiment.rebroker.enabled,
                   "load balancing conflicts with re-brokering (at most one "
                   "controller may rebuild the run mid-flight)");
    // Surfaces bad policy values (threshold <= 1, mode typos, ...) as API
    // errors before any solver work starts.
    lb::LoadBalancer probe(experiment.balance, experiment.ranks);
    (void)probe;
  }

  ExperimentResult result;
  result.provisioning_hours =
      provision::plan_provisioning(spec).total_hours();

  const resil::FaultPlan plan = make_plan(experiment);

  // Availability: can the platform even launch this job, and how long does
  // it sit in the queue (or wait for instance boot)? Injected *transient*
  // launch failures are retried under the recovery policy, each retry
  // charging a capped exponential backoff to the wait; capability failures
  // ("puma has only 128 cores") are never retried.
  Rng rng(seed_ ^ experiment.seed);
  std::unique_ptr<sched::Scheduler> scheduler = sched::make_scheduler(spec);
  if (plan.enabled()) {
    scheduler =
        std::make_unique<sched::FaultyScheduler>(std::move(scheduler), plan);
  }
  sched::JobOutcome outcome;
  for (int attempt = 0;; ++attempt) {
    outcome = scheduler->submit(
        {experiment.ranks, /*estimated_runtime_s=*/3600.0}, rng);
    if (outcome.launched || !outcome.transient) break;
    if (experiment.recovery.kind == resil::RecoveryKind::kNone ||
        attempt + 1 >= experiment.recovery.max_attempts) {
      break;
    }
    ++result.resil.launch_retries;
    result.resil.retry_delay_s +=
        resil::backoff_delay_s(experiment.recovery, attempt);
    resil_metrics().launch_retries.increment();
  }
  if (!outcome.launched) {
    result.launched = false;
    result.failure_reason = outcome.failure_reason;
    return result;
  }
  result.launched = true;
  result.queue_wait_s = outcome.wait_s + result.resil.retry_delay_s;
  result.hosts = (experiment.ranks + spec.cores_per_node() - 1) /
                 spec.cores_per_node();

  ExperimentResult run_part =
      experiment.mode == Mode::kModeled ? run_modeled(experiment, spec)
                                        : run_direct(experiment, spec);
  // Merge the run-phase output into the availability/effort scaffold.
  // Direct mode decides `launched` itself: an unrecovered injected fault
  // reports failure even though the scheduler said yes.
  run_part.queue_wait_s = result.queue_wait_s;
  run_part.provisioning_hours = result.provisioning_hours;
  run_part.hosts = result.hosts;
  run_part.resil.launch_retries = result.resil.launch_retries;
  run_part.resil.retry_delay_s += result.resil.retry_delay_s;
  if (run_part.resil.final_ranks == 0) {
    run_part.resil.final_ranks = experiment.ranks;
  }
  if (!experiment.metrics_path.empty()) {
    obs::metrics().write_json(experiment.metrics_path);
  }
  return run_part;
}

ExperimentResult ExperimentRunner::run_modeled(
    const Experiment& experiment, const platform::PlatformSpec& spec) {
  ExperimentResult result;
  result.launched = true;
  const perf::ModelConfig model = model_for(experiment);
  result.work_per_rank = perf::work_per_rank(model, experiment.ranks);

  apps::CpuCostModel cpu = spec.cpu_model();
  if (experiment.skew.enabled()) {
    // Synchronized iterations run at the pace of the slowest core: degrade
    // the platform's uniform speed by the *unbalanced* skew slowdown — or,
    // under skew_assume_balanced, by the harmonic-mean slowdown of a
    // perfectly capacity-balanced partition (the analytic twin of direct
    // mode's dynamic balancer; always <= the unbalanced factor).
    const resil::SkewPlan splan = make_skew_plan(experiment, seed_, spec.name);
    const std::vector<double> factors =
        skew_mean_factors(splan, experiment.ranks);
    cpu.speed_factor /= experiment.skew_assume_balanced
                            ? perf::skew_slowdown_balanced(factors)
                            : perf::skew_slowdown_unbalanced(factors);
  }

  if (spec.name == "ec2") {
    // Build the assembly through the cloud service so placement groups,
    // the spot market, and billing semantics all apply.
    cloud::Ec2Service service(seed_ ^ experiment.seed);
    service.authorize_intranet_tcp();
    const int hosts = (experiment.ranks + spec.cores_per_node() - 1) /
                      spec.cores_per_node();
    std::vector<int> groups;
    for (int g = 0; g < std::max(1, experiment.ec2_placement_groups); ++g) {
      groups.push_back(
          service.create_placement_group("hl-" + std::to_string(g)));
    }
    std::vector<cloud::Instance> instances;
    if (experiment.ec2_spot_mix) {
      auto spot = service.request_spot("cc2.8xlarge", hosts,
                                       experiment.ec2_spot_bid_usd, groups);
      instances = spot.instances;
      result.spot_hosts = static_cast<int>(instances.size());
      const int missing = hosts - result.spot_hosts;
      if (missing > 0) {
        // The paper "never succeeded in establishing a full 63-host spot
        // configuration" and topped up with regularly priced hosts.
        auto fill = service.request_on_demand(
            "cc2.8xlarge", missing,
            groups[static_cast<std::size_t>(result.spot_hosts) %
                   groups.size()]);
        instances.insert(instances.end(), fill.instances.begin(),
                         fill.instances.end());
      }
    } else {
      instances =
          service.request_on_demand("cc2.8xlarge", hosts, groups.front())
              .instances;
    }
    const auto topo = service.assembly_topology(
        instances, experiment.ranks, experiment.cross_group_penalty);
    result.iteration =
        perf::project_iteration(model, topo, cpu, experiment.ranks);
    // Per-iteration cost at the blended hourly rate of the assembly.
    double hourly = 0.0;
    for (const auto& inst : instances) {
      hourly += inst.hourly_usd;
    }
    result.cost_per_iteration_usd = hourly * result.iteration.total_s / 3600.0;
    result.est_cost_per_iteration_usd =
        hosts * cloud::instance_type("cc2.8xlarge").typical_spot_hourly_usd *
        result.iteration.total_s / 3600.0;
    result.hosts = hosts;
    return result;
  }

  const auto topo = spec.topology(experiment.ranks);
  result.iteration =
      perf::project_iteration(model, topo, cpu, experiment.ranks);
  result.cost_per_iteration_usd =
      spec.cost_usd(experiment.ranks, result.iteration.total_s);
  result.est_cost_per_iteration_usd = result.cost_per_iteration_usd;
  return result;
}

ExperimentResult ExperimentRunner::run_direct(
    const Experiment& experiment, const platform::PlatformSpec& spec) {
  ExperimentResult result;
  const resil::FaultPlan plan = make_plan(experiment);
  const resil::RecoveryPolicy& policy = experiment.recovery;
  resil::RecoveryStats& rstats = result.resil;

  std::unique_ptr<obs::TraceRecorder> recorder;
  std::optional<ScopedTraceInstall> install;
  if (!experiment.trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>(experiment.ranks);
    install.emplace(recorder.get());
  }

  // Global mesh: cells_per_rank_axis^3 per rank, cube decomposition. The
  // global problem is fixed by the *original* rank count and stays fixed
  // when recovery shrinks the assembly (27 -> 8 after a reclaim) — the
  // survivors take over the lost gids.
  const int k = static_cast<int>(std::round(std::cbrt(experiment.ranks)));
  HETERO_REQUIRE(k * k * k == experiment.ranks,
                 "direct mode needs a cubic rank count (1, 8, 27, ...)");
  const int global_cells = experiment.cells_per_rank_axis * k;
  const int steps = experiment.direct_steps;

  int ranks = experiment.ranks;
  int axis = k;
  rstats.final_ranks = ranks;

  // The platform the job is currently running on; re-brokering migrations
  // swap it mid-run (everything billed or timed below reads through `cur`).
  const platform::PlatformSpec* cur = &spec;

  const bool use_ckpt =
      policy.kind == resil::RecoveryKind::kCheckpointRestart;
  // Re-brokering checkpoints through `io` at the migration step even when
  // the recovery policy itself never checkpoints.
  const rebroker::Policy& rb = experiment.rebroker;
  const bool rb_on = rb.enabled;

  // The load-balancing control loop mirrors the re-brokering one: every
  // rank holds an identical LoadBalancer copy fed the same allgathered
  // step-time vector, so the rebalance verdict is reached on all ranks
  // without communication; rank 0's copy is canonical and is adopted back
  // after the attempt.
  lb::LoadBalancer lb_canonical(experiment.balance, experiment.ranks);
  const bool lb_on = lb_canonical.enabled();
  std::vector<lb::LoadBalancer> rank_lb;
  std::vector<double> rank_weights;  // empty until the first rebalance
  bool rebalance_pending = false;    // set by drive(), consumed by the host

  const bool need_ckpt_file = use_ckpt || rb_on || lb_on;
  const std::string ckpt_path = need_ckpt_file ? checkpoint_scratch_path() : "";
  // Checkpoint bookkeeping. Written by rank 0 of the running attempt, read
  // by the host thread and the next attempt — Runtime::run joins all rank
  // threads first, so there is no cross-attempt race.
  bool have_checkpoint = false;
  int ckpt_step = 0;  // completed steps at the checkpoint

  // Completed-step records by absolute step index; rank 0 writes. Re-run
  // steps overwrite with identical values (same discrete trajectory).
  std::vector<apps::StepRecord> records(static_cast<std::size_t>(steps));
  // Dollar cost of each completed step on the platform it last ran on;
  // rank 0 writes. Migrated runs blend their per-iteration cost from this.
  std::vector<double> step_cost(static_cast<std::size_t>(steps), 0.0);

  // Steps the current attempt re-executes or runs; the crash cell lookup
  // starts here, so a restart from a checkpoint exposes fewer cells.
  auto resume_step = [&] { return have_checkpoint ? ckpt_step : 0; };

  // The re-brokering control loop. `canonical` is the host's copy; each
  // attempt hands every simulated rank an identical copy, so the migrate
  // verdict is reached on all ranks without communication, and rank 0's
  // copy (whose trail saw every completed step) is adopted back. The
  // default-constructed disabled controller still counts storms so a
  // static plan's outcome reports what the market did to it.
  rebroker::Controller canonical;
  std::vector<rebroker::Controller> rank_ctl;
  double rb_elapsed_base_s = 0.0;  // job virtual clock across attempts
  double rb_spent_base_usd = 0.0;  // dollars billed across attempts
  bool migration_pending = false;  // set by drive(), consumed by the host
  if (rb_on) {
    const std::uint64_t rb_seed = hash_combine(
        hash_combine(0x7262726bULL /* "rbrk" */, seed_), experiment.seed);
    const int redo_steps =
        use_ckpt ? std::max(1, policy.checkpoint_every / 2)
                 : std::max(1, steps / 2);
    canonical =
        rebroker::Controller(rb, experiment.app, experiment.cells_per_rank_axis,
                             steps, rb_seed, resil::backoff_delay_s(policy, 0),
                             redo_steps);
  }

  // Runs one attempt of `solver` from `start_step`, injecting the planned
  // crash or spot-reclaim storm, writing periodic checkpoints, and feeding
  // completed steps to the re-brokering controllers. A migrate verdict
  // checkpoints collectively and unwinds the attempt *cleanly* (no
  // exception): every rank reaches the same verdict from the same
  // allreduced step time, so they all return together.
  auto drive = [&](simmpi::Comm& comm, auto& solver, int start_step,
                   const std::optional<resil::RankCrash>& crash,
                   const std::optional<int>& storm) {
    for (int s = start_step; s < steps; ++s) {
      if (storm && s == *storm && comm.rank() == 0) {
        obs::trace_instant("spot_reclaim", "resil", comm.now(), "step",
                           static_cast<double>(s));
        throw resil::SpotReclaim(s);
      }
      if (crash && s == crash->step && comm.rank() == crash->rank) {
        obs::trace_instant("rank_crash", "resil", comm.now(), "step",
                           static_cast<double>(s));
        throw resil::InjectedFault(comm.rank(), s);
      }
      const apps::StepRecord record = solver.step();
      if (comm.rank() == 0) {
        records[static_cast<std::size_t>(s)] = record;
      }
      if (use_ckpt && (s + 1) % policy.checkpoint_every == 0 &&
          s + 1 < steps) {
        io::save_solver_checkpoint(comm, state_now(solver),
                                   state_prev(solver), solver.current_time(),
                                   s + 1, ckpt_path);
        if (comm.rank() == 0) {
          have_checkpoint = true;
          ckpt_step = s + 1;
          ++rstats.checkpoints_written;
          resil_metrics().checkpoints.increment();
          obs::trace_instant("checkpoint", "resil", comm.now(), "step",
                             static_cast<double>(s + 1));
        }
      }
      if (rb_on) {
        // timing.total_s is an allreduced maximum — identical on every
        // rank, so every controller copy folds the same observation.
        const double cost_s = cur->cost_usd(ranks, record.timing.total_s);
        if (comm.rank() == 0) {
          step_cost[static_cast<std::size_t>(s)] = cost_s;
        }
        const bool migrate = rank_ctl[static_cast<std::size_t>(comm.rank())]
                                 .observe_step(s, record.timing.total_s, cost_s);
        if (migrate && s + 1 < steps) {
          io::save_solver_checkpoint(comm, state_now(solver),
                                     state_prev(solver), solver.current_time(),
                                     s + 1, ckpt_path);
          if (comm.rank() == 0) {
            have_checkpoint = true;
            ckpt_step = s + 1;
            ++rstats.checkpoints_written;
            resil_metrics().checkpoints.increment();
            migration_pending = true;
            obs::trace_instant("migration_checkpoint", "rebroker", comm.now(),
                               "step", static_cast<double>(s + 1));
          }
          return;
        }
      }
      if (lb_on && !record.rank_step_s.empty()) {
        // rank_step_s is allgathered — identical on every rank, so every
        // balancer copy folds the same observation and agrees.
        const bool rebalance =
            rank_lb[static_cast<std::size_t>(comm.rank())].observe(
                s, std::span<const double>(record.rank_step_s));
        if (rebalance && s + 1 < steps) {
          io::save_solver_checkpoint(comm, state_now(solver),
                                     state_prev(solver), solver.current_time(),
                                     s + 1, ckpt_path);
          if (comm.rank() == 0) {
            have_checkpoint = true;
            ckpt_step = s + 1;
            ++rstats.checkpoints_written;
            resil_metrics().checkpoints.increment();
            rebalance_pending = true;
            obs::trace_instant("rebalance_checkpoint", "lb", comm.now(),
                               "step", static_cast<double>(s + 1));
          }
          return;
        }
      }
    }
  };

  // One attempt: build the solver (restoring from the checkpoint if we
  // have one) and drive it to the end or to the planned crash.
  auto run_attempt = [&](simmpi::Runtime& runtime, auto make_solver,
                         const std::optional<resil::RankCrash>& crash,
                         const std::optional<int>& storm) {
    runtime.run([&](simmpi::Comm& comm) {
      auto solver = make_solver(comm);
      int start_step = 0;
      if (have_checkpoint) {
        la::DistVector u_now(solver.map());
        la::DistVector u_prev(solver.map());
        const io::SolverCheckpointMeta meta =
            io::load_solver_checkpoint(comm, u_now, u_prev, ckpt_path);
        solver.restore_state(u_now, u_prev, meta.time);
        start_step = meta.steps_done;
      }
      drive(comm, solver, start_step, crash, storm);
    });
  };

  for (int attempt = 0;; ++attempt) {
    rstats.attempts = attempt + 1;
    auto crash = plan.rank_crash(ranks, steps, attempt, resume_step());
    // Spot-reclaim storms only exist where there is a spot market; a
    // migration to an on-premises queue leaves them behind. When both a
    // crash and a storm arm in one attempt, only the earlier one can fire
    // (ties go to the crash): one throwing rank per attempt keeps
    // Runtime::run's first-error propagation deterministic.
    std::optional<int> storm;
    if (cur->spot_node_hour_usd > 0.0) {
      storm = plan.spot_reclaim(steps, attempt, resume_step());
    }
    if (crash && storm) {
      if (*storm < crash->step) {
        crash.reset();
      } else {
        storm.reset();
      }
    }
    if (rb_on) {
      canonical.begin_attempt(attempt, cur->name, ranks, resume_step(),
                              rb_elapsed_base_s, rb_spent_base_usd,
                              canonical.outcome().storms,
                              canonical.steps_observed());
      rank_ctl.assign(static_cast<std::size_t>(ranks), canonical);
    }
    if (lb_on) {
      rank_lb.assign(static_cast<std::size_t>(ranks), lb_canonical);
    }
    simmpi::Runtime runtime(cur->topology(ranks));
    if (plan.enabled()) {
      runtime.set_degradation(plan.degradation());
    }
    if (experiment.skew.enabled()) {
      // Per-rank slow cores and time-windowed noisy neighbors, hashed from
      // (seed, platform, rank): every compute charge on rank r at virtual
      // time t is stretched by the same factor at any --jobs.
      const resil::SkewPlan splan =
          make_skew_plan(experiment, seed_, cur->name);
      runtime.set_compute_scale(
          [splan](int rank, double now) { return splan.factor_at(rank, now); });
    }
    try {
      if (experiment.app == perf::AppKind::kReactionDiffusion) {
        run_attempt(
            runtime,
            [&](simmpi::Comm& comm) {
              apps::RdConfig config;
              config.global_cells = global_cells;
              config.cpu = cur->cpu_model();
              config.rank_weights = rank_weights;
              config.collect_rank_step_s = lb_on;
              return apps::RdSolver(comm, config);
            },
            crash, storm);
      } else {
        run_attempt(
            runtime,
            [&](simmpi::Comm& comm) {
              apps::NsConfig config;
              config.global_cells = global_cells;
              config.velocity_order = experiment.element_order;
              config.cpu = cur->cpu_model();
              config.rank_weights = rank_weights;
              config.collect_rank_step_s = lb_on;
              return apps::NsSolver(comm, config);
            },
            crash, storm);
      }
      if (rb_on) {
        canonical = rank_ctl[0];
      }
      if (lb_on) {
        lb_canonical = rank_lb[0];
      }
      if (rebalance_pending) {
        rebalance_pending = false;
        // Turn the measured speeds into the next attempt's capacity
        // weights; the attempt resumes from the rebalance checkpoint on a
        // freshly weighted partition (gid-keyed restore, as for recovery).
        lb_canonical.record_rebalance();
        rank_weights = lb_canonical.rank_weights();
        lb_metrics().rebalances.increment();
        obs::trace_instant("rebalance", "lb", runtime.elapsed_sim_seconds(),
                           "step", static_cast<double>(ckpt_step));
        continue;
      }
      if (migration_pending) {
        migration_pending = false;
        const double attempt_s = runtime.elapsed_sim_seconds();
        const std::string from_platform = cur->name;
        const int from_ranks = ranks;
        const int target_ranks = canonical.move_ranks();
        const platform::PlatformSpec& target =
            platform::platform_by_name(rb.fallback_platform);
        // The real submission to the fallback, on its own hashed stream:
        // replays of the same seed see the same queue wait at any --jobs.
        Rng migration_rng(hash_mix(hash_combine(
            hash_combine(hash_combine(0x7262726bULL /* "rbrk" */, seed_),
                         experiment.seed),
            static_cast<std::uint64_t>(canonical.outcome().migrations))));
        const sched::JobOutcome moved = sched::make_scheduler(target)->submit(
            {target_ranks, /*estimated_runtime_s=*/3600.0}, migration_rng);
        rb_elapsed_base_s += attempt_s;
        rb_spent_base_usd += cur->cost_usd(ranks, attempt_s);
        if (!moved.launched) {
          // The fallback would not take the job; resume from the migration
          // checkpoint on the platform we never left.
          canonical.record_migration_failed(moved.failure_reason);
          continue;
        }
        canonical.record_migration(ckpt_step, from_platform, from_ranks,
                                   target.name, target_ranks, moved.wait_s);
        rb_elapsed_base_s += moved.wait_s;
        cur = &target;
        ranks = target_ranks;
        axis = static_cast<int>(std::round(std::cbrt(target_ranks)));
        rstats.final_ranks = ranks;
        obs::trace_instant("migration", "rebroker", rb_elapsed_base_s,
                           "to_ranks", static_cast<double>(target_ranks));
        continue;
      }
      break;  // attempt survived
    } catch (const resil::InjectedFault& fault) {
      ++rstats.faults_injected;
      const double dead_s = runtime.elapsed_sim_seconds();
      rstats.wasted_sim_s += dead_s;
      rstats.wasted_cost_usd += cur->cost_usd(ranks, dead_s);
      rstats.steps_wasted += std::max(0, fault.step() - resume_step());
      resil_metrics().faults.increment();
      resil_metrics().steps_wasted.add(
          static_cast<double>(std::max(0, fault.step() - resume_step())));
      resil_metrics().wasted_cost_usd.add(cur->cost_usd(ranks, dead_s));
      if (rb_on) {
        canonical = rank_ctl[0];
      }
      if (lb_on) {
        lb_canonical = rank_lb[0];
      }
      if (fault.rank() < 0) {
        // A storm, not a host: the whole allocation went away. Counted on
        // the canonical controller even when re-brokering is off, so the
        // outcome still reports what the market did.
        canonical.record_storm(fault.step(), rb_elapsed_base_s + dead_s);
      }
      if (policy.kind == resil::RecoveryKind::kNone ||
          attempt + 1 >= policy.max_attempts) {
        resil_metrics().unrecovered.increment();
        result.launched = false;
        result.failure_reason =
            std::string(fault.what()) + "; unrecovered after " +
            std::to_string(attempt + 1) + " attempt(s) with policy '" +
            resil::to_string(policy.kind) + "'";
        if (need_ckpt_file) std::remove(ckpt_path.c_str());
        result.rebroker = canonical.take_outcome();
        result.rebroker.final_platform = cur->name;
        result.balance = lb_canonical.outcome();
        return result;
      }
      const double delay = resil::backoff_delay_s(policy, attempt);
      rstats.retry_delay_s += delay;
      rstats.steps_recovered += resume_step();
      resil_metrics().retry_delay_s.add(delay);
      resil_metrics().steps_recovered.add(
          static_cast<double>(resume_step()));
      rb_elapsed_base_s += dead_s + delay;
      rb_spent_base_usd += cur->cost_usd(ranks, dead_s);
      if (policy.shrink_ranks_on_crash && axis > 1) {
        // A reclaim took hosts: restart on the next smaller cube. The
        // checkpoint redistributes by gid, so the survivors pick up the
        // lost ranks' share.
        --axis;
        ranks = axis * axis * axis;
        rstats.final_ranks = ranks;
      }
      obs::trace_instant("recovery_restart", "resil", dead_s, "attempt",
                         static_cast<double>(attempt + 1));
    }
  }
  if (need_ckpt_file) std::remove(ckpt_path.c_str());
  rstats.recovered = rstats.faults_injected > 0;
  if (rstats.recovered) {
    resil_metrics().recoveries.increment();
  }

  if (recorder) {
    recorder->write_chrome_json(experiment.trace_path);
  }

  SampleStats assembly;
  SampleStats precond;
  SampleStats solve;
  SampleStats total;
  double nodal_error = 0.0;
  bool converged = true;
  apps::WorkCounts work;
  std::int64_t iters_total = 0;
  for (const auto& r : records) {
    assembly.add(r.timing.assembly_s);
    precond.add(r.timing.preconditioner_s);
    solve.add(r.timing.solve_s);
    total.add(r.timing.total_s);
    nodal_error = std::max(nodal_error, r.nodal_error);
    converged = converged && r.solver_converged;
    work = r.work;
    iters_total += r.solver_iterations;
  }

  result.launched = true;
  result.iteration.assembly_s = assembly.mean();
  result.iteration.preconditioner_s = precond.mean();
  result.iteration.solve_s = solve.mean();
  result.iteration.total_s = total.mean();
  result.iteration.solver_iterations =
      static_cast<double>(iters_total) / experiment.direct_steps;
  result.work_per_rank = work;
  result.nodal_error = nodal_error;
  result.solver_converged = converged;
  result.rebroker = canonical.take_outcome();
  result.rebroker.final_platform = cur->name;
  result.balance = lb_canonical.outcome();
  if (lb_on) {
    lb_metrics().checks.add(static_cast<double>(result.balance.checks));
  }
  if (result.rebroker.migrations > 0) {
    // A migrated run blends the per-step dollars each platform billed;
    // without a migration the legacy single-platform formula applies
    // unchanged (so an adaptive run that never moves prices identically
    // to a static one).
    double total_cost = 0.0;
    for (const double c : step_cost) {
      total_cost += c;
    }
    result.cost_per_iteration_usd = total_cost / steps;
  } else {
    result.cost_per_iteration_usd =
        cur->cost_usd(ranks, result.iteration.total_s);
  }
  result.est_cost_per_iteration_usd = result.cost_per_iteration_usd;
  return result;
}

std::vector<double> modeled_skew_factors(const Experiment& experiment,
                                         std::uint64_t runner_seed) {
  if (!experiment.skew.enabled()) {
    return std::vector<double>(static_cast<std::size_t>(experiment.ranks),
                               1.0);
  }
  const platform::PlatformSpec& spec =
      platform::platform_by_name(experiment.platform);
  const resil::SkewPlan plan =
      make_skew_plan(experiment, runner_seed, spec.name);
  return skew_mean_factors(plan, experiment.ranks);
}

}  // namespace hetero::core
