#pragma once

/// \file bench_io.hpp
/// Structured results layer: schema-versioned JSONL records for the bench
/// suite and the CLI, one record per datapoint. This is what
/// `tools/check_bench.py` reads to gate CI on the *shape* of the paper's
/// figures rather than on "it ran".
///
/// Record layout (schema "heterolab-bench-v1"): a flat JSON object per line
///   {"schema":"heterolab-bench-v1","bench":"fig4_rd_weak_scaling",
///    "platform":"lagrange","procs":343,"total_s":9.42,...}
/// Field names derive from table headers via `field_name()` ("assembly[s]"
/// -> "assembly_s", "full real cost[$]" -> "full_real_cost_usd"); numeric
/// cells become JSON numbers and the "-" placeholder becomes null.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace hetero::obs {

/// Version tag stamped on every bench record.
inline constexpr const char* kBenchSchema = "heterolab-bench-v1";

/// Canonical JSON field name for a table column header.
std::string field_name(const std::string& header);

/// Table cell -> JSON: numbers parse to numbers, "-" to null, rest verbatim.
Json cell_value(const std::string& cell);

/// Appends one JSON document per line; creates/truncates `path` on open.
/// The file stays open for the writer's lifetime: every record reaches the
/// OS as one complete line via an EINTR/short-write-safe write_all (a
/// crashed run leaves only whole records behind, never a torn tail for
/// check_bench.py to choke on — and a heartbeat signal interrupting the
/// write(2) mid-record cannot drop bytes either), and close() fsyncs
/// before releasing the descriptor so a reported-done file is durable,
/// not just buffered.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  void write(const Json& record);
  /// fsync + close. Idempotent; the destructor calls it too.
  void close();
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Parses a JSONL file into one Json per non-empty line.
std::vector<Json> read_jsonl(const std::string& path);

/// Per-binary reporter: reads `--json <path>` from the CLI args and, when
/// present, writes every added record on destruction. With no `--json` flag
/// it is a cheap no-op, so bench mains call it unconditionally.
class BenchReporter {
 public:
  /// `bench` is the record's "bench" field (binary name sans path).
  BenchReporter(const CliArgs& args, std::string bench);
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// True when --json was passed (records will be written).
  bool enabled() const { return !path_.empty(); }

  /// One record per table row; `series` tags the record (e.g. which of a
  /// bench's tables it came from) when non-empty.
  void add_table(const Table& table, const std::string& series = "");

  /// One hand-built record; "schema"/"bench" fields are stamped on top.
  void add_record(Json record);

 private:
  std::string bench_;
  std::string path_;
  std::vector<Json> records_;
};

}  // namespace hetero::obs
