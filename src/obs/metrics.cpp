#include "obs/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace hetero::obs {

namespace detail {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void atomic_update_min(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value < current && !slot.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current && !slot.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

double Counter::value() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) {
    shard.value.store(0.0, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::min() const {
  double result = 0.0;
  bool seen = false;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    const double v = shard.min.load(std::memory_order_relaxed);
    result = seen ? std::min(result, v) : v;
    seen = true;
  }
  return result;
}

double Histogram::max() const {
  double result = 0.0;
  bool seen = false;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    const double v = shard.max.load(std::memory_order_relaxed);
    result = seen ? std::max(result, v) : v;
    seen = true;
  }
  return result;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

template <class T>
T& MetricsRegistry::find_or_create(std::vector<Named<T>>& list,
                                   const std::string& name) {
  for (auto& entry : list) {
    if (entry.name == name) {
      return *entry.metric;
    }
  }
  list.push_back(Named<T>{name, std::make_unique<T>()});
  return *list.back().metric;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) {
    entry.metric->reset();
  }
  for (auto& entry : gauges_) {
    entry.metric->reset();
  }
  for (auto& entry : histograms_) {
    entry.metric->reset();
  }
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& entry : counters_) {
    counters.set(entry.name, entry.metric->value());
  }
  Json gauges = Json::object();
  for (const auto& entry : gauges_) {
    gauges.set(entry.name, entry.metric->value());
  }
  Json histograms = Json::object();
  for (const auto& entry : histograms_) {
    Json h = Json::object();
    h.set("count", static_cast<std::uint64_t>(entry.metric->count()));
    h.set("sum", entry.metric->sum());
    h.set("min", entry.metric->min());
    h.set("max", entry.metric->max());
    h.set("mean", entry.metric->mean());
    histograms.set(entry.name, std::move(h));
  }
  Json doc = Json::object();
  doc.set("schema", "heterolab-metrics-v1");
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(histograms));
  return doc;
}

void MetricsRegistry::write_json(const std::string& path) const {
  // Same durability contract as JsonlWriter: the whole document in one
  // write, flushed and fsynced before close, so a metrics file either
  // exists complete or not at all.
  FILE* f = std::fopen(path.c_str(), "w");
  HETERO_REQUIRE(f != nullptr, "cannot open metrics output file: " + path);
  const std::string doc = to_json().dump() + "\n";
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = n == doc.size() && std::fflush(f) == 0;
  ::fsync(fileno(f));
  std::fclose(f);
  HETERO_REQUIRE(ok, "failed writing metrics output file: " + path);
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace hetero::obs
