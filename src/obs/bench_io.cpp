#include "obs/bench_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "support/error.hpp"
#include "support/io_util.hpp"

namespace hetero::obs {

std::string field_name(const std::string& header) {
  std::string out;
  out.reserve(header.size());
  for (std::size_t i = 0; i < header.size(); ++i) {
    const char c = header[i];
    if (c == '[') {
      // Unit suffix: "[s]" -> "_s", "[$]" -> "_usd", "[h]" -> "_h".
      const std::size_t close = header.find(']', i);
      std::string unit = close == std::string::npos
                             ? header.substr(i + 1)
                             : header.substr(i + 1, close - i - 1);
      if (unit == "$") {
        unit = "usd";
      }
      if (!unit.empty()) {
        if (!out.empty() && out.back() != '_') {
          out.push_back('_');
        }
        for (char u : unit) {
          out.push_back(static_cast<char>(
              std::isalnum(static_cast<unsigned char>(u)) ? std::tolower(u)
                                                          : '_'));
        }
      }
      if (close == std::string::npos) {
        break;
      }
      i = close;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (c == '$') {
      if (!out.empty() && out.back() != '_') {
        out.push_back('_');
      }
      out += "usd";
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') {
    out.pop_back();
  }
  HETERO_REQUIRE(!out.empty(),
                 "field_name: header '" + header + "' sanitizes to nothing");
  return out;
}

Json cell_value(const std::string& cell) {
  if (cell.empty() || cell == "-") {
    return Json(nullptr);
  }
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != nullptr && *end == '\0' && end != cell.c_str()) {
    return Json(v);
  }
  return Json(cell);
}

JsonlWriter::JsonlWriter(const std::string& path) : path_(path) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  HETERO_REQUIRE(fd_ >= 0, "cannot open JSONL output file: " + path_);
}

JsonlWriter::~JsonlWriter() { close(); }

void JsonlWriter::write(const Json& record) {
  HETERO_REQUIRE(fd_ >= 0, "JsonlWriter: write after close: " + path_);
  // One write_all per record: the line reaches the OS whole even through
  // EINTR storms and partial writes, so a crashed run leaves complete
  // records only, never half a line.
  const std::string line = record.dump() + '\n';
  HETERO_REQUIRE(support::write_all(fd_, line.data(), line.size()),
                 "cannot append to JSONL file: " + path_);
}

void JsonlWriter::close() {
  if (fd_ < 0) {
    return;
  }
  // fsync before close: once the writer is gone the file is durable, not
  // parked in the page cache waiting for a power cut to truncate it.
  ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
}

std::vector<Json> read_jsonl(const std::string& path) {
  std::ifstream is(path);
  HETERO_REQUIRE(is.good(), "cannot open JSONL file: " + path);
  std::vector<Json> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    records.push_back(Json::parse(line));
  }
  return records;
}

BenchReporter::BenchReporter(const CliArgs& args, std::string bench)
    : bench_(std::move(bench)), path_(args.get_string("json", "")) {}

void BenchReporter::add_table(const Table& table, const std::string& series) {
  if (!enabled()) {
    return;
  }
  std::vector<std::string> fields;
  fields.reserve(table.cols());
  for (const auto& header : table.header()) {
    fields.push_back(field_name(header));
  }
  for (std::size_t r = 0; r < table.rows(); ++r) {
    Json record = Json::object();
    if (!series.empty()) {
      record.set("series", series);
    }
    const auto& row = table.row(r);
    for (std::size_t c = 0; c < fields.size(); ++c) {
      record.set(fields[c], cell_value(row[c]));
    }
    add_record(std::move(record));
  }
}

void BenchReporter::add_record(Json record) {
  if (!enabled()) {
    return;
  }
  HETERO_REQUIRE(record.is_object(), "bench records must be JSON objects");
  Json stamped = Json::object();
  stamped.set("schema", kBenchSchema);
  stamped.set("bench", bench_);
  for (const auto& member : record.as_object()) {
    stamped.set(member.first, member.second);
  }
  records_.push_back(std::move(stamped));
}

BenchReporter::~BenchReporter() {
  if (!enabled()) {
    return;
  }
  try {
    JsonlWriter writer(path_);
    for (const auto& record : records_) {
      writer.write(record);
    }
  } catch (const Error&) {
    // Destructors must not throw; a bench that cannot write its JSONL will
    // be caught by the missing/short file in check_bench.py.
  }
}

}  // namespace hetero::obs
