#pragma once

/// \file drift.hpp
/// Live wall-time drift estimation over a stream of StepRecord timings.
/// A direct-mode run feeds the per-step `timing.total_s` of every completed
/// step (an allreduced maximum, so every rank sees the same number) into a
/// DriftEstimator primed with the Predictor's modeled per-step time; the
/// estimator maintains an exponentially weighted moving average and reports
/// the drift ratio observed/modeled. 1.0 means the run tracks the model;
/// 2.0 means steps take twice as long as priced — the signal the online
/// re-broker acts on (docs/rebrokering.md).
///
/// Deterministic by construction: the state is a pure fold over the
/// observed sequence, so identical step streams give identical drift at
/// any parallelism.

namespace hetero::obs {

class DriftEstimator {
 public:
  DriftEstimator() = default;
  /// `model_s` is the modeled per-step seconds the observations are
  /// measured against; `alpha` is the EWMA weight of the newest sample.
  explicit DriftEstimator(double model_s, double alpha = 0.5);

  /// Folds one observed per-step time (seconds) into the estimate.
  void observe(double observed_s);

  /// Smoothed live per-step seconds; the model value until first observe().
  double smoothed_s() const;

  /// Drift ratio smoothed/model; 1.0 until the first observation (or when
  /// the model time is zero, where a ratio is meaningless).
  double drift() const;

  int samples() const { return samples_; }

 private:
  double model_s_ = 0.0;
  double alpha_ = 0.5;
  double smoothed_s_ = 0.0;
  int samples_ = 0;
};

}  // namespace hetero::obs
