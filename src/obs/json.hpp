#pragma once

/// \file json.hpp
/// Minimal JSON value type with a serializer and a strict parser — just
/// enough for the observability layer's machine-readable outputs (Chrome
/// trace files, metrics snapshots, JSONL bench records) and for tests to
/// round-trip what the Python tooling (`tools/check_bench.py`) consumes.
/// Object keys keep insertion order so emitted files are stable and
/// diffable.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hetero::obs {

class Json;

using JsonArray = std::vector<Json>;
/// Insertion-ordered object: (key, value) pairs plus a key index.
using JsonMember = std::pair<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(std::int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::uint64_t u)
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw hetero::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const std::vector<JsonMember>& as_object() const;

  /// Array building / access.
  void push_back(Json value);
  std::size_t size() const;
  const Json& operator[](std::size_t i) const;

  /// Object building / access. set() replaces an existing key in place.
  void set(const std::string& key, Json value);
  bool contains(const std::string& key) const;
  /// Member lookup; throws if absent.
  const Json& at(const std::string& key) const;
  /// Member lookup; returns nullptr if absent.
  const Json* find(const std::string& key) const;

  /// Compact single-line serialization (doubles print round-trippably;
  /// integral values print without a decimal point).
  std::string dump() const;

  /// Strict parse of one JSON document; throws hetero::Error with position
  /// information on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  std::vector<JsonMember> members_;
};

}  // namespace hetero::obs
