#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace hetero::obs {

bool Json::as_bool() const {
  HETERO_REQUIRE(type_ == Type::kBool, "Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  HETERO_REQUIRE(type_ == Type::kNumber, "Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  HETERO_REQUIRE(type_ == Type::kString, "Json: not a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  HETERO_REQUIRE(type_ == Type::kArray, "Json: not an array");
  return array_;
}

const std::vector<JsonMember>& Json::as_object() const {
  HETERO_REQUIRE(type_ == Type::kObject, "Json: not an object");
  return members_;
}

void Json::push_back(Json value) {
  HETERO_REQUIRE(type_ == Type::kArray, "Json: push_back on a non-array");
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) {
    return array_.size();
  }
  if (type_ == Type::kObject) {
    return members_.size();
  }
  HETERO_REQUIRE(false, "Json: size() on a scalar");
  return 0;
}

const Json& Json::operator[](std::size_t i) const {
  HETERO_REQUIRE(type_ == Type::kArray && i < array_.size(),
                 "Json: array index out of range");
  return array_[i];
}

void Json::set(const std::string& key, Json value) {
  HETERO_REQUIRE(type_ == Type::kObject, "Json: set() on a non-object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

bool Json::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  HETERO_REQUIRE(found != nullptr, "Json: missing key '" + key + "'");
  return *found;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  // JSON has no NaN/Infinity literal. A FAILED experiment row can carry a
  // non-finite phase time; serialize it as null so one bad cell cannot kill
  // a whole JSONL export mid-campaign.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& member : members_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        append_escaped(out, member.first);
        out.push_back(':');
        member.second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    HETERO_REQUIRE(pos_ == text_.size(),
                   "Json: trailing characters at offset " +
                       std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("Json parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      return Json(parse_string());
    }
    if (consume_literal("true")) {
      return Json(true);
    }
    if (consume_literal("false")) {
      return Json(false);
    }
    if (consume_literal("null")) {
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      c = text_[pos_++];
      switch (c) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow and
            // the pair decodes to one supplementary-plane code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate followed by a non-low-surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // UTF-8 encode (full Unicode range, surrogate pairs included).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  bool at_digit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  // Strict RFC 8259 grammar:
  //   -? ( 0 | [1-9][0-9]* ) ( . [0-9]+ )? ( [eE] [+-]? [0-9]+ )?
  // A leading '+', leading zeros, a bare '.', and a dangling exponent are
  // all rejected here instead of being left for strtod to reinterpret.
  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (!at_digit()) {
      fail("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (at_digit()) {
        fail("leading zeros are not valid JSON");
      }
    } else {
      while (at_digit()) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!at_digit()) {
        fail("expected a digit after the decimal point");
      }
      while (at_digit()) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!at_digit()) {
        fail("expected a digit in the exponent");
      }
      while (at_digit()) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    return Json(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace hetero::obs
