#pragma once

/// \file trace.hpp
/// Virtual-clock trace recorder: timestamped spans and instant events per
/// simmpi rank, ring-buffered so steady-state recording never allocates,
/// merged and exported as Chrome `trace_event` JSON that loads directly in
/// `chrome://tracing` / Perfetto (one row per rank, timestamps in virtual
/// microseconds).
///
/// Recording is disabled unless a recorder is installed with
/// `set_current_trace()`; every instrumentation site starts with a single
/// relaxed pointer load, so the cost when tracing is off is one predictable
/// branch. Configuring CMake with `-DHETERO_OBS=OFF` defines
/// `HETERO_OBS_DISABLED`, which turns `current_trace()` into a constant
/// `nullptr` and lets the compiler delete the instrumentation entirely.
///
/// Threading contract: each rank writes only its own buffer (the rank id is
/// bound per thread by `simmpi::Runtime::run`, or explicitly via
/// `bind_trace_rank`), so recording needs no locks. Export runs after the
/// writer threads have joined.
///
/// Event names and categories must be string literals (or otherwise outlive
/// the recorder): the ring buffer stores the pointers, not copies.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace hetero::obs {

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  /// Chrome phase: 'X' = complete span, 'i' = instant.
  char phase = 'X';
  int rank = 0;
  /// Virtual-clock timestamp and duration, in seconds.
  double ts_s = 0.0;
  double dur_s = 0.0;
  /// Optional numeric argument (bytes moved, iteration count, dollars...);
  /// recorded when arg_name != nullptr.
  const char* arg_name = nullptr;
  double arg = 0.0;
};

class TraceRecorder {
 public:
  /// `ranks` rows; each keeps the most recent `capacity_per_rank` events.
  explicit TraceRecorder(int ranks, std::size_t capacity_per_rank = 65536);

  int ranks() const { return static_cast<int>(buffers_.size()); }

  /// A finished span [t0, t1] on `rank`'s row.
  void complete(int rank, const char* name, const char* category, double t0_s,
                double t1_s, const char* arg_name = nullptr, double arg = 0.0);

  /// A zero-duration marker on `rank`'s row.
  void instant(int rank, const char* name, const char* category, double ts_s,
               const char* arg_name = nullptr, double arg = 0.0);

  /// Events recorded on `rank` (oldest first); ring overwrites drop the
  /// oldest. Reader-side only — do not call while rank threads record.
  std::vector<TraceEvent> events(int rank) const;

  /// All ranks merged, sorted by (ts, rank). Stable across runs because the
  /// virtual clocks are deterministic.
  std::vector<TraceEvent> merged() const;

  /// Events ever recorded on `rank` (including overwritten ones).
  std::uint64_t recorded(int rank) const;
  /// Events lost to ring overwrite on `rank`.
  std::uint64_t dropped(int rank) const;

  /// Chrome trace_event document: {"traceEvents": [...], ...} with one
  /// thread (tid = rank) per rank under pid 0 and thread_name metadata.
  Json chrome_json() const;

  /// Serializes chrome_json() to `path`; throws hetero::Error on I/O error.
  void write_chrome_json(const std::string& path) const;

 private:
  struct RankBuffer {
    std::vector<TraceEvent> ring;
    std::uint64_t recorded = 0;
  };

  void record(int rank, const TraceEvent& event);

  std::vector<RankBuffer> buffers_;
  std::size_t capacity_;
};

namespace detail {
/// The process-global recorder; nullptr = tracing off.
inline std::atomic<TraceRecorder*> g_trace{nullptr};
/// Rank bound to the calling thread (the row it records on).
inline thread_local int t_trace_rank = 0;
}  // namespace detail

/// Installs (or, with nullptr, removes) the process-global recorder.
/// The recorder must outlive recording; not owned.
inline void set_current_trace(TraceRecorder* recorder) {
  detail::g_trace.store(recorder, std::memory_order_release);
}

/// The installed recorder, or nullptr when tracing is off (always nullptr
/// when compiled with HETERO_OBS_DISABLED).
inline TraceRecorder* current_trace() {
#ifdef HETERO_OBS_DISABLED
  return nullptr;
#else
  return detail::g_trace.load(std::memory_order_acquire);
#endif
}

/// Binds the calling thread to a rank row. simmpi::Runtime::run does this
/// for every rank thread; host-side code records on the default row 0.
inline void bind_trace_rank(int rank) { detail::t_trace_rank = rank; }
inline int bound_trace_rank() { return detail::t_trace_rank; }

/// Convenience: record an instant event for the bound rank, if tracing.
inline void trace_instant(const char* name, const char* category, double ts_s,
                          const char* arg_name = nullptr, double arg = 0.0) {
  if (TraceRecorder* t = current_trace()) {
    t->instant(bound_trace_rank(), name, category, ts_s, arg_name, arg);
  }
}

/// RAII span over any clock-like object exposing `double now()` returning
/// virtual seconds (simmpi::Comm does). Usage:
///   obs::ScopedSpan span(comm, "assemble", "app");
template <class TimeSource>
class ScopedSpan {
 public:
  ScopedSpan(TimeSource& time_source, const char* name, const char* category)
      : time_source_(&time_source), name_(name), category_(category) {
    if (current_trace() != nullptr) {
      begin_s_ = time_source_->now();
      active_ = true;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument reported with the span.
  void set_arg(const char* arg_name, double value) {
    arg_name_ = arg_name;
    arg_ = value;
  }

  ~ScopedSpan() {
    if (!active_) {
      return;
    }
    if (TraceRecorder* t = current_trace()) {
      t->complete(bound_trace_rank(), name_, category_, begin_s_,
                  time_source_->now(), arg_name_, arg_);
    }
  }

 private:
  TimeSource* time_source_;
  const char* name_;
  const char* category_;
  const char* arg_name_ = nullptr;
  double arg_ = 0.0;
  double begin_s_ = 0.0;
  bool active_ = false;
};

}  // namespace hetero::obs
