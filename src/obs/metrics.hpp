#pragma once

/// \file metrics.hpp
/// Named counters / gauges / histograms with JSON export.
///
/// Hot-path writes (halo bytes, solver iterations, message counts) happen on
/// every simmpi rank concurrently, so counters and histograms shard their
/// state across cache-line-padded slots: each thread picks a shard once
/// (round-robin at first use) and updates it with relaxed atomics — no
/// contention, no locks, and direct-mode timings are not perturbed. Reads
/// aggregate over shards and are not meant for hot paths.
///
/// Recording obeys a process-global enable flag (`set_metrics_enabled`,
/// default on — a relaxed load and one predictable branch per update).
/// Compiling with `-DHETERO_OBS=OFF` defines HETERO_OBS_DISABLED and turns
/// every update into an empty inline function.
///
/// Registry lookups take a mutex; instrument hot loops by hoisting the
/// `Counter&` out of the loop, as the references are stable for the
/// registry's lifetime.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace hetero::obs {

namespace detail {

inline std::atomic<bool> g_metrics_enabled{true};

constexpr std::size_t kShards = 16;

/// One cache line per shard so rank threads never false-share.
struct alignas(64) Shard {
  std::atomic<double> value{0.0};
};

struct alignas(64) HistogramShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
};

/// Round-robin shard assignment, decided once per thread.
std::size_t this_thread_shard();

/// Atomic max/min via CAS (atomic<double> has no fetch_max).
void atomic_update_min(std::atomic<double>& slot, double value);
void atomic_update_max(std::atomic<double>& slot, double value);

}  // namespace detail

/// True when metric updates are recorded.
inline bool metrics_enabled() {
#ifdef HETERO_OBS_DISABLED
  return false;
#else
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

inline void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

/// Monotonically increasing sum (bytes, iterations, dollars, seconds).
class Counter {
 public:
  void add(double delta) {
#ifndef HETERO_OBS_DISABLED
    if (metrics_enabled()) {
      shards_[detail::this_thread_shard()].value.fetch_add(
          delta, std::memory_order_relaxed);
    }
#else
    (void)delta;
#endif
  }
  void increment() { add(1.0); }

  double value() const;
  void reset();

 private:
  detail::Shard shards_[detail::kShards];
};

/// Last-written value (assembly sizes, current prices).
class Gauge {
 public:
  void set(double value) {
#ifndef HETERO_OBS_DISABLED
    if (metrics_enabled()) {
      value_.store(value, std::memory_order_relaxed);
    }
#else
    (void)value;
#endif
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming count/sum/min/max/mean of observed samples.
class Histogram {
 public:
  void observe(double value) {
#ifndef HETERO_OBS_DISABLED
    if (metrics_enabled()) {
      auto& shard = shards_[detail::this_thread_shard()];
      if (shard.count.fetch_add(1, std::memory_order_relaxed) == 0) {
        // First sample in this shard seeds min/max.
        shard.min.store(value, std::memory_order_relaxed);
        shard.max.store(value, std::memory_order_relaxed);
      } else {
        detail::atomic_update_min(shard.min, value);
        detail::atomic_update_max(shard.max, value);
      }
      shard.sum.fetch_add(value, std::memory_order_relaxed);
    }
#else
    (void)value;
#endif
  }

  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// 0 when empty.
  double mean() const;
  void reset();

 private:
  detail::HistogramShard shards_[detail::kShards];
};

/// Name -> metric registry. Metric references remain valid for the
/// registry's lifetime; reset() zeroes values without invalidating them.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered metric (references stay valid).
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, mean}}}, keys sorted by registration order.
  Json to_json() const;

  /// Serializes to_json() to `path`; throws hetero::Error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  template <class T>
  struct Named {
    std::string name;
    std::unique_ptr<T> metric;
  };
  template <class T>
  static T& find_or_create(std::vector<Named<T>>& list,
                           const std::string& name);

  mutable std::mutex mutex_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// The process-global registry used by the built-in instrumentation.
MetricsRegistry& metrics();

}  // namespace hetero::obs
