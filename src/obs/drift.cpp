#include "obs/drift.hpp"

#include "support/error.hpp"

namespace hetero::obs {

DriftEstimator::DriftEstimator(double model_s, double alpha)
    : model_s_(model_s), alpha_(alpha), smoothed_s_(model_s) {
  HETERO_REQUIRE(model_s >= 0.0, "drift: model seconds must be >= 0");
  HETERO_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                 "drift: EWMA alpha must be in (0, 1]");
}

void DriftEstimator::observe(double observed_s) {
  HETERO_REQUIRE(observed_s >= 0.0, "drift: observed seconds must be >= 0");
  if (samples_ == 0) {
    smoothed_s_ = observed_s;
  } else {
    smoothed_s_ = alpha_ * observed_s + (1.0 - alpha_) * smoothed_s_;
  }
  ++samples_;
}

double DriftEstimator::smoothed_s() const { return smoothed_s_; }

double DriftEstimator::drift() const {
  if (samples_ == 0 || model_s_ <= 0.0) {
    return 1.0;
  }
  return smoothed_s_ / model_s_;
}

}  // namespace hetero::obs
