#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace hetero::obs {

namespace {

// Streaming serialization helpers for write_chrome_json: a large direct run
// records ~1e5 events, and building a Json DOM for them (or calling
// snprintf per number) costs more than the run itself. std::to_chars emits
// the shortest round-trippable representation, which any JSON parser reads
// back to the identical double.
void stream_number(std::string& out, double v) {
  HETERO_REQUIRE(std::isfinite(v),
                 "trace: cannot serialize a non-finite number");
  char buf[40];
  std::to_chars_result result;
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    result = std::to_chars(buf, buf + sizeof(buf),
                           static_cast<long long>(v));
  } else {
    result = std::to_chars(buf, buf + sizeof(buf), v);
  }
  out.append(buf, result.ptr);
}

// Event names/categories are string literals chosen by instrumentation
// sites; escape the JSON-special characters anyway so a stray quote cannot
// corrupt the file.
void stream_string(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

TraceRecorder::TraceRecorder(int ranks, std::size_t capacity_per_rank)
    : buffers_(static_cast<std::size_t>(ranks)), capacity_(capacity_per_rank) {
  HETERO_REQUIRE(ranks >= 1, "TraceRecorder needs at least one rank");
  HETERO_REQUIRE(capacity_ >= 1, "TraceRecorder needs a nonzero capacity");
}

void TraceRecorder::record(int rank, const TraceEvent& event) {
  HETERO_REQUIRE(rank >= 0 && rank < ranks(),
                 "TraceRecorder: rank out of range");
  RankBuffer& buffer = buffers_[static_cast<std::size_t>(rank)];
  if (buffer.ring.size() < capacity_) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[buffer.recorded % capacity_] = event;
  }
  ++buffer.recorded;
}

void TraceRecorder::complete(int rank, const char* name, const char* category,
                             double t0_s, double t1_s, const char* arg_name,
                             double arg) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.rank = rank;
  event.ts_s = t0_s;
  event.dur_s = t1_s > t0_s ? t1_s - t0_s : 0.0;
  event.arg_name = arg_name;
  event.arg = arg;
  record(rank, event);
}

void TraceRecorder::instant(int rank, const char* name, const char* category,
                            double ts_s, const char* arg_name, double arg) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.rank = rank;
  event.ts_s = ts_s;
  event.arg_name = arg_name;
  event.arg = arg;
  record(rank, event);
}

std::vector<TraceEvent> TraceRecorder::events(int rank) const {
  HETERO_REQUIRE(rank >= 0 && rank < ranks(),
                 "TraceRecorder: rank out of range");
  const RankBuffer& buffer = buffers_[static_cast<std::size_t>(rank)];
  std::vector<TraceEvent> out;
  out.reserve(buffer.ring.size());
  if (buffer.recorded <= capacity_) {
    out = buffer.ring;
  } else {
    const std::size_t oldest = buffer.recorded % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(buffer.ring[(oldest + i) % capacity_]);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::vector<TraceEvent> all;
  for (int r = 0; r < ranks(); ++r) {
    const auto rank_events = events(r);
    all.insert(all.end(), rank_events.begin(), rank_events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_s != b.ts_s) {
                       return a.ts_s < b.ts_s;
                     }
                     return a.rank < b.rank;
                   });
  return all;
}

std::uint64_t TraceRecorder::recorded(int rank) const {
  HETERO_REQUIRE(rank >= 0 && rank < ranks(),
                 "TraceRecorder: rank out of range");
  return buffers_[static_cast<std::size_t>(rank)].recorded;
}

std::uint64_t TraceRecorder::dropped(int rank) const {
  const std::uint64_t total = recorded(rank);
  return total > capacity_ ? total - capacity_ : 0;
}

Json TraceRecorder::chrome_json() const {
  Json events_json = Json::array();
  // Thread metadata first: Perfetto names each rank's row.
  for (int r = 0; r < ranks(); ++r) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", r);
    Json args = Json::object();
    args.set("name", "rank " + std::to_string(r));
    meta.set("args", std::move(args));
    events_json.push_back(std::move(meta));
  }
  constexpr double kMicro = 1e6;  // virtual seconds -> trace microseconds
  for (const TraceEvent& event : merged()) {
    Json e = Json::object();
    e.set("name", event.name);
    e.set("cat", event.category);
    e.set("ph", std::string(1, event.phase));
    e.set("ts", event.ts_s * kMicro);
    if (event.phase == 'X') {
      e.set("dur", event.dur_s * kMicro);
    }
    if (event.phase == 'i') {
      e.set("s", "t");  // thread-scoped instant
    }
    e.set("pid", 0);
    e.set("tid", event.rank);
    if (event.arg_name != nullptr) {
      Json args = Json::object();
      args.set(event.arg_name, event.arg);
      e.set("args", std::move(args));
    }
    events_json.push_back(std::move(e));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events_json));
  doc.set("displayTimeUnit", "ms");
  Json meta = Json::object();
  meta.set("clock", "virtual platform seconds (simmpi::SimClock), as us");
  doc.set("metadata", std::move(meta));
  return doc;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  HETERO_REQUIRE(os.good(), "cannot open trace output file: " + path);

  // Streamed equivalent of chrome_json().dump(): serialize each event
  // straight into one reused buffer instead of materializing a Json DOM.
  std::string out;
  out.reserve(1 << 20);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (int r = 0; r < ranks(); ++r) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    stream_number(out, r);
    out += ",\"args\":{\"name\":\"rank ";
    stream_number(out, r);
    out += "\"}}";
  }
  constexpr double kMicro = 1e6;  // virtual seconds -> trace microseconds
  for (const TraceEvent& event : merged()) {
    out += ",{\"name\":";
    stream_string(out, event.name);
    out += ",\"cat\":";
    stream_string(out, event.category);
    out += ",\"ph\":\"";
    out.push_back(event.phase);
    out += "\",\"ts\":";
    stream_number(out, event.ts_s * kMicro);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      stream_number(out, event.dur_s * kMicro);
    }
    if (event.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":0,\"tid\":";
    stream_number(out, event.rank);
    if (event.arg_name != nullptr) {
      out += ",\"args\":{";
      stream_string(out, event.arg_name);
      out.push_back(':');
      stream_number(out, event.arg);
      out.push_back('}');
    }
    out.push_back('}');
    if (out.size() >= (1 << 20)) {
      os.write(out.data(), static_cast<std::streamsize>(out.size()));
      out.clear();
    }
  }
  out += "],\"displayTimeUnit\":\"ms\",\"metadata\":{\"clock\":"
         "\"virtual platform seconds (simmpi::SimClock), as us\"}}\n";
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  HETERO_REQUIRE(os.good(), "failed writing trace output file: " + path);
}

}  // namespace hetero::obs
